package fingers

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"fingers/internal/datasets"
)

func TestParseArch(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Arch
	}{
		{"fingers", ArchFingers},
		{"FINGERS", ArchFingers},
		{"Fingers", ArchFingers},
		{"flexminer", ArchFlexMiner},
		{"FlexMiner", ArchFlexMiner},
		{"sisa", ArchSISA},
		{"SISA", ArchSISA},
	} {
		got, err := ParseArch(tc.in)
		if err != nil {
			t.Fatalf("ParseArch(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseArch(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseArch("gpu"); err == nil {
		t.Error("ParseArch accepted an unknown architecture")
	}
}

func TestJobSpecValidate(t *testing.T) {
	ok := JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "tc"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal valid spec rejected: %v", err)
	}
	for name, bad := range map[string]JobSpec{
		"empty arch":             {Graph: "Mi", Pattern: "tc"},
		"bad arch":               {Arch: "gpu", Graph: "Mi", Pattern: "tc"},
		"empty graph":            {Arch: "fingers", Pattern: "tc"},
		"empty pattern":          {Arch: "fingers", Graph: "Mi"},
		"bad pattern":            {Arch: "fingers", Graph: "Mi", Pattern: "zzz"},
		"negative pes":           {Arch: "fingers", Graph: "Mi", Pattern: "tc", PEs: -1},
		"negative ius":           {Arch: "fingers", Graph: "Mi", Pattern: "tc", IUs: -2},
		"negative cache":         {Arch: "fingers", Graph: "Mi", Pattern: "tc", CacheKB: -1},
		"negative workers":       {Arch: "fingers", Graph: "Mi", Pattern: "tc", SimWorkers: -1},
		"negative window":        {Arch: "fingers", Graph: "Mi", Pattern: "tc", SimWindow: -5},
		"window without workers": {Arch: "fingers", Graph: "Mi", Pattern: "tc", SimWindow: 64},
		"negative timeout":       {Arch: "fingers", Graph: "Mi", Pattern: "tc", TimeoutMS: -1},
		"negative shards":        {Arch: "fingers", Graph: "Mi", Pattern: "tc", SimShards: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, bad)
		}
	}
}

func TestJobSpecDerivedValues(t *testing.T) {
	s := JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "tc", CacheKB: 1024, TimeoutMS: 1500}
	if got := s.CacheBytes(); got != 1<<20 {
		t.Errorf("CacheBytes = %d, want %d", got, 1<<20)
	}
	if got := s.Timeout(); got != 1500*time.Millisecond {
		t.Errorf("Timeout = %v", got)
	}
	cfg := s.AcceleratorConfig()
	if cfg.NumIUs != 24 || !cfg.PseudoDFS {
		t.Errorf("default accelerator config: IUs=%d PseudoDFS=%v", cfg.NumIUs, cfg.PseudoDFS)
	}
	off := false
	s2 := JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "tc", IUs: 48, PseudoDFS: &off}
	cfg2 := s2.AcceleratorConfig()
	if cfg2.NumIUs != 48 || cfg2.PseudoDFS {
		t.Errorf("tuned config: IUs=%d PseudoDFS=%v", cfg2.NumIUs, cfg2.PseudoDFS)
	}
	// Iso-area holds #IUs × s_l constant; unlimited does not shrink s_l.
	noIso := JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "tc", IUs: 48, IsoArea: &off}
	if got, want := noIso.AcceleratorConfig().LongSegLen, cfg.LongSegLen; got != want {
		t.Errorf("IsoArea=false changed segment length: %d != %d", got, want)
	}
	if iso := s2.AcceleratorConfig().LongSegLen; iso >= cfg.LongSegLen {
		t.Errorf("IsoArea=true did not shrink segment length: %d", iso)
	}
}

func TestJobSpecParallelSim(t *testing.T) {
	none := JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "tc"}
	if cfg, err := none.ParallelSim(); err != nil || cfg != nil {
		t.Errorf("serial spec: cfg=%v err=%v", cfg, err)
	}
	par := JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "tc", SimWorkers: 4}
	cfg, err := par.ParallelSim()
	if err != nil || cfg == nil {
		t.Fatalf("parallel spec: %v", err)
	}
	if cfg.Workers != 4 || cfg.Window <= 0 {
		t.Errorf("parallel config %+v, want 4 workers and the default window", cfg)
	}
}

func TestJobSpecToOptionsRunsSimulate(t *testing.T) {
	spec := JobSpec{Arch: "flexminer", Graph: "As", Pattern: "tc", PEs: 2}
	opts, err := spec.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.ResolveGraph()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatal(err)
	}
	arch, err := spec.ArchValue()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(arch, g, plans, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Count == 0 {
		t.Error("spec-driven Simulate found no triangles on As")
	}

	// The same options must reproduce the directly configured run.
	direct, err := Simulate(ArchFlexMiner, g, plans, WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Count != direct.Result.Count || rep.Result.Cycles != direct.Result.Cycles {
		t.Errorf("spec run (count=%d cycles=%d) != direct run (count=%d cycles=%d)",
			rep.Result.Count, rep.Result.Cycles, direct.Result.Count, direct.Result.Cycles)
	}
}

func TestJobSpecToOptionsRejectsInvalid(t *testing.T) {
	if _, err := (JobSpec{Arch: "fingers", Graph: "Mi", Pattern: "zzz"}).ToOptions(); err == nil {
		t.Error("ToOptions accepted an invalid pattern")
	}
}

func TestJobSpecJSONRoundTrip(t *testing.T) {
	f := false
	in := JobSpec{
		Arch: "fingers", Graph: "Lj", Pattern: "4cl", PEs: 20, IUs: 48,
		IsoArea: &f, CacheKB: 1024, SimWorkers: 4, SimWindow: 128,
		SimShards: 4, TimeoutMS: 5000, Stats: true, RunTag: "sweep-1",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Arch != in.Arch || out.Graph != in.Graph || out.Pattern != in.Pattern ||
		out.PEs != in.PEs || out.IUs != in.IUs || out.CacheKB != in.CacheKB ||
		out.SimWorkers != in.SimWorkers || out.SimWindow != in.SimWindow ||
		out.SimShards != in.SimShards ||
		out.TimeoutMS != in.TimeoutMS || out.Stats != in.Stats || out.RunTag != in.RunTag {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}
	if out.IsoArea == nil || *out.IsoArea {
		t.Error("IsoArea=false lost in round trip")
	}
	if out.PseudoDFS != nil {
		t.Error("unset PseudoDFS became set")
	}
}

func TestDecodeJobSpecRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeJobSpec([]byte(`{"arch":"fingers","graph":"Mi","pattern":"tc","peez":4}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestJobSpecResolveGraph(t *testing.T) {
	g, err := JobSpec{Graph: "Mi"}.ResolveGraph()
	if err != nil || g == nil {
		t.Fatalf("dataset mnemonic: %v", err)
	}
	// A bare misspelled name surfaces the structured dataset error.
	_, err = JobSpec{Graph: "Mii"}.ResolveGraph()
	var nf *datasets.NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("error %T %v, want *datasets.NotFoundError", err, err)
	}
	if nf.Suggestion != "Mi" {
		t.Errorf("suggestion %q, want Mi", nf.Suggestion)
	}
	// A path-shaped name surfaces the file error instead.
	_, err = JobSpec{Graph: "no/such/file.txt"}.ResolveGraph()
	if err == nil || errors.As(err, &nf) {
		t.Errorf("path-shaped miss: %v, want a file error", err)
	}
	if err != nil && !strings.Contains(err.Error(), "no/such/file.txt") {
		t.Errorf("file error %q does not name the path", err)
	}
}
