GO ?= go

.PHONY: all build test race vet bench bench-smoke bench-gate trend profile clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the software-miner benchmarks in benchstat-friendly text
# form (BENCH_softmine.txt — feed two of these to `benchstat old new`)
# and mirrors the raw go-test output as JSON events in
# BENCH_softmine.json for machine consumption. It then benchmarks the
# simulator itself — serial event loop vs the bounded-lag parallel
# engine on the quick grid — into BENCH_sim.json (wall time, simulated
# cycles/sec, speedup, makespan divergence; wall-clock speedup needs a
# multi-core host, determinism holds anywhere).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSoftMine -benchmem -count 5 \
		./internal/mine/ | tee BENCH_softmine.txt
	$(GO) test -run '^$$' -bench BenchmarkSoftMine -benchmem -count 1 -json \
		./internal/mine/ > BENCH_softmine.json
	$(GO) run ./cmd/simbench -shards 4 -o BENCH_sim.json

# profile captures CPU and heap profiles of one quick-grid cell
# (As/tt on an 8-PE FINGERS chip — long enough to dominate startup,
# short enough to iterate on). Inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/fingersim -graph As -pattern tt -arch fingers -pes 8 \
		-cpuprofile cpu.prof -memprofile mem.prof

# bench-smoke compiles and runs every benchmark once — the CI guard that
# keeps the benchmark suite from bit-rotting without paying full runtime.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-gate guards the soft-miner hot path: it re-measures
# BenchmarkSoftMine with the same protocol that produced the committed
# BENCH_softmine.txt baseline (5 repetitions, medians per cell) and
# fails when the ns/op geomean regresses more than 10%. Regenerate the
# baseline with `make bench` after an intentional performance change.
bench-gate:
	$(GO) test -run '^$$' -bench BenchmarkSoftMine -benchmem -count 5 \
		./internal/mine/ > BENCH_softmine_new.txt
	$(GO) run ./cmd/benchgate -old BENCH_softmine.txt -new BENCH_softmine_new.txt

# trend renders the observability report over every artifact in the
# checkout — the committed BENCH_sim.json plus any *.jsonl run logs the
# CLIs have appended (fingersim/experiments/mine -json, simbench -o) —
# as terminal tables, a self-contained TREND.html, and a
# machine-readable fingers.trend/v1 TREND.json.
trend:
	$(GO) run ./cmd/fingerstat -dir . -html TREND.html -json TREND.json

clean:
	rm -f BENCH_softmine.txt BENCH_softmine.json BENCH_softmine_new.txt \
		BENCH_sim.json TREND.html TREND.json
