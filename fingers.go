// Package fingers is a library-and-simulator reproduction of "FINGERS:
// Exploiting Fine-Grained Parallelism in Graph Mining Accelerators"
// (Chen, Tian, Gao — ASPLOS 2022).
//
// It bundles a pattern-aware graph mining stack — CSR graphs, pattern
// compilation into execution plans with symmetry breaking, and an exact
// software miner — with transaction-level timing models of the FINGERS
// accelerator and its FlexMiner baseline, plus the experiment harness
// that regenerates every table and figure of the paper's evaluation.
//
// This root package is the public façade: it re-exports the types and
// entry points downstream users need, so one import suffices:
//
//	g, _ := fingers.LoadGraph("soc.txt")
//	pat, _ := fingers.PatternByName("tt")
//	pl, _ := fingers.CompilePlan(pat, fingers.PlanOptions{})
//	n := fingers.CountParallel(g, pl, 0)              // software mining
//	res, _ := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl}, fingers.WithPEs(20))
//	fmt.Println(n, res.Result.Cycles)
//
// The building blocks live in internal packages (graph, pattern, plan,
// mine, setops, mem, accel, fingers, flexminer, area, datasets, exp) and
// are documented individually.
package fingers

import (
	"context"

	"fingers/internal/accel"
	"fingers/internal/area"
	"fingers/internal/datasets"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/mem"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// SimError is the structured failure of a simulation or mining run: it
// names the engine ("serial", "parallel", "miner", "facade"), the PE or
// worker, the simulated cycle, and the root vertex being mined, and
// wraps the underlying cause — a recovered panic (with the goroutine
// stack) or the context error of a cancelled run — so errors.Is(err,
// context.Canceled) keeps working through it. Simulate and CountCtx
// return a *SimError for every cancellation, deadline expiry, and
// recovered panic.
type SimError = simerr.SimError

// AsSimError extracts a *SimError from an error chain; ok is false when
// the error did not originate inside a simulation engine.
func AsSimError(err error) (*SimError, bool) { return simerr.As(err) }

// ErrMalformedGraph is the sentinel every graph-ingest format or
// invariant violation wraps: LoadGraph reports bad magic, truncated or
// corrupt binary payloads, and unparseable edge lists as errors
// satisfying errors.Is(err, ErrMalformedGraph), distinguishing bad
// input from genuine I/O failure.
var ErrMalformedGraph = graph.ErrMalformed

// ErrInvalidPlan is the sentinel wrapped by every plan-validation
// failure: Simulate and the chip constructors reject structurally
// unsound execution plans with errors satisfying errors.Is(err,
// ErrInvalidPlan).
var ErrInvalidPlan = plan.ErrInvalid

// Graph is an immutable undirected CSR graph with sorted neighbor lists.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a normalized Graph.
type GraphBuilder = graph.Builder

// Edge is an undirected edge between two vertex IDs.
type Edge = graph.Edge

// GraphStats summarizes a graph as in the paper's Table 1.
type GraphStats = graph.Stats

// Pattern is a small query graph whose embeddings are mined.
type Pattern = pattern.Pattern

// Plan is a compiled execution plan: vertex order, set-operation schedule
// and symmetry-breaking restrictions.
type Plan = plan.Plan

// MultiPlan mines several patterns in one traversal with a shared prefix.
type MultiPlan = plan.MultiPlan

// PlanOptions configures plan compilation.
type PlanOptions = plan.Options

// SimResult is the outcome of one accelerator simulation.
type SimResult = accel.Result

// ParallelConfig parameterizes the bounded-lag parallel simulation
// engine (WithParallelSim): Window is the epoch width Δ in simulated
// cycles (results depend only on it; Window=1 reproduces the serial
// engine exactly), Workers the number of host threads.
type ParallelConfig = accel.ParallelConfig

// AcceleratorConfig parameterizes a FINGERS processing element.
type AcceleratorConfig = fingerspe.Config

// BaselineConfig parameterizes a FlexMiner processing element.
type BaselineConfig = flexminer.Config

// IUStats reports intersect-unit utilization (the paper's Table 3 rates).
type IUStats = fingerspe.IUStats

// CycleBreakdown attributes simulated cycles to compute, exposed memory
// stall, pipeline overhead, and idle; SimResult carries the chip-wide
// rollup and PE-level detail is available from the traced variants.
type CycleBreakdown = telemetry.Breakdown

// Cycles counts simulated accelerator clock cycles — the unit every
// Tracer event and SimResult timing field is expressed in.
type Cycles = mem.Cycles

// Tracer receives fine-grained simulation events (task groups, set-op
// issues, cache accesses, DRAM bursts); nil disables tracing with zero
// overhead.
type Tracer = telemetry.Tracer

// ChromeTrace is a Tracer that renders a Chrome trace_event JSON file,
// viewable in Perfetto (one track per PE).
type ChromeTrace = telemetry.Chrome

// RunRecord is the machine-readable JSONL summary of one simulated run.
type RunRecord = telemetry.RunRecord

// PECycleRecord is one PE's telemetry slice of a simulated run.
type PECycleRecord = telemetry.PERecord

// NewChromeTrace returns an empty Chrome trace collector.
func NewChromeTrace() *ChromeTrace { return telemetry.NewChrome() }

// Dataset is one synthetic analogue of the paper's Table 1 graphs.
type Dataset = datasets.Dataset

// NewGraphBuilder returns a builder for a graph with at least n vertices.
func NewGraphBuilder(n uint32) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a normalized graph from an edge list.
func GraphFromEdges(n uint32, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// LoadGraph reads a graph from a file: ".bin" paths use the binary CSR
// format, anything else is parsed as a SNAP-style text edge list.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph to a file in the format LoadGraph expects.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// Stats computes the Table 1 statistics of a graph.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// NewPattern builds a pattern with n vertices and the given edges.
func NewPattern(n int, edges [][2]int) Pattern { return pattern.New(n, edges) }

// PatternByName returns a named benchmark pattern (tc, 4cl, 5cl, tt, cyc,
// dia, wedge, house, …).
func PatternByName(name string) (Pattern, error) { return pattern.ByName(name) }

// PatternNames lists the available named patterns.
func PatternNames() []string { return pattern.Names() }

// CompilePlan compiles a pattern into an execution plan.
func CompilePlan(p Pattern, opts PlanOptions) (*Plan, error) { return plan.Compile(p, opts) }

// CompileMotif compiles the k-motif multi-pattern plan (every connected
// pattern on k vertices).
func CompileMotif(k int, opts PlanOptions) (*MultiPlan, error) { return plan.Motif(k, opts) }

// Count mines the plan on g with the software reference miner and returns
// the number of embeddings (each automorphism class counted once).
func Count(g *Graph, pl *Plan) uint64 { return mine.Count(g, pl) }

// CountParallel is Count parallelized over root vertices; workers ≤ 0
// uses GOMAXPROCS.
func CountParallel(g *Graph, pl *Plan, workers int) uint64 {
	return mine.CountParallel(g, pl, workers)
}

// CountMotifs mines every plan of a multi-pattern plan, returning counts
// in plan order.
func CountMotifs(g *Graph, mp *MultiPlan) []uint64 { return mine.CountMulti(g, mp) }

// CountMotifsCtx is CountMotifs with cancellation and panic recovery,
// parallelized over root vertices within each pattern (workers ≤ 0 uses
// GOMAXPROCS). On a failure it returns the per-pattern counts completed
// so far alongside a *SimError.
func CountMotifsCtx(ctx context.Context, g *Graph, mp *MultiPlan, workers int) ([]uint64, error) {
	return mine.CountMultiCtx(ctx, g, mp, workers)
}

// ListEmbeddings enumerates embeddings, invoking visit with the mapped
// vertices (slice reused across calls); returning false stops early.
func ListEmbeddings(g *Graph, pl *Plan, visit func(emb []uint32) bool) {
	mine.List(g, pl, visit)
}

// DefaultAcceleratorConfig returns the paper's FINGERS PE configuration:
// 24 IUs, 12 task dividers, 16/4 segment lengths, 32 kB private cache.
func DefaultAcceleratorConfig() AcceleratorConfig { return fingerspe.DefaultConfig() }

// DefaultBaselineConfig returns the FlexMiner PE configuration.
func DefaultBaselineConfig() BaselineConfig { return flexminer.DefaultConfig() }

// DefaultParallelConfig returns the tuned parallel-engine default: the
// divergence-validated epoch window and one worker per host CPU.
func DefaultParallelConfig() ParallelConfig { return accel.DefaultParallelConfig() }

// SimulateFingers runs the FINGERS accelerator timing model with numPEs
// processing elements; sharedCacheBytes = 0 keeps the 4 MB default. The
// returned count is exact.
//
// Deprecated: use Simulate with ArchFingers.
func SimulateFingers(cfg AcceleratorConfig, numPEs int, sharedCacheBytes int64, g *Graph, plans ...*Plan) SimResult {
	rep, err := Simulate(ArchFingers, g, plans,
		WithAcceleratorConfig(cfg), WithPEs(numPEs), WithSharedCache(sharedCacheBytes))
	if err != nil {
		panic(err)
	}
	return rep.Result
}

// SimulateFlexMiner runs the FlexMiner baseline timing model.
//
// Deprecated: use Simulate with ArchFlexMiner.
func SimulateFlexMiner(cfg BaselineConfig, numPEs int, sharedCacheBytes int64, g *Graph, plans ...*Plan) SimResult {
	rep, err := Simulate(ArchFlexMiner, g, plans,
		WithBaselineConfig(cfg), WithPEs(numPEs), WithSharedCache(sharedCacheBytes))
	if err != nil {
		panic(err)
	}
	return rep.Result
}

// SimulateFingersWithStats runs the FINGERS model and also returns the
// aggregated IU utilization statistics (Table 3's rates).
//
// Deprecated: use Simulate with ArchFingers and WithStats.
func SimulateFingersWithStats(cfg AcceleratorConfig, numPEs int, sharedCacheBytes int64, g *Graph, plans ...*Plan) (SimResult, IUStats) {
	rep, err := Simulate(ArchFingers, g, plans,
		WithAcceleratorConfig(cfg), WithPEs(numPEs), WithSharedCache(sharedCacheBytes), WithStats())
	if err != nil {
		panic(err)
	}
	return rep.Result, rep.IU
}

// SimulateFingersTraced runs the FINGERS model with an event tracer
// attached (nil is allowed and costs nothing) and returns the result,
// the per-PE cycle records — each PE's compute/stall/overhead/idle
// buckets sum to the makespan — and the IU utilization rates.
//
// Deprecated: use Simulate with ArchFingers, WithTracer and WithStats.
func SimulateFingersTraced(cfg AcceleratorConfig, numPEs int, sharedCacheBytes int64, g *Graph, tr Tracer, plans ...*Plan) (SimResult, []PECycleRecord, IUStats) {
	rep, err := Simulate(ArchFingers, g, plans,
		WithAcceleratorConfig(cfg), WithPEs(numPEs), WithSharedCache(sharedCacheBytes),
		WithTracer(tr), WithStats())
	if err != nil {
		panic(err)
	}
	return rep.Result, rep.PerPE, rep.IU
}

// SimulateFlexMinerTraced runs the FlexMiner baseline with an event
// tracer attached (nil is allowed) and returns the result and the
// per-PE cycle records.
//
// Deprecated: use Simulate with ArchFlexMiner and WithTracer.
func SimulateFlexMinerTraced(cfg BaselineConfig, numPEs int, sharedCacheBytes int64, g *Graph, tr Tracer, plans ...*Plan) (SimResult, []PECycleRecord) {
	rep, err := Simulate(ArchFlexMiner, g, plans,
		WithBaselineConfig(cfg), WithPEs(numPEs), WithSharedCache(sharedCacheBytes), WithTracer(tr))
	if err != nil {
		panic(err)
	}
	return rep.Result, rep.PerPE
}

// IsoAreaPEs returns the FINGERS PE count that fits the area budget of
// flexPEs FlexMiner PEs (the paper compares 20 vs 40).
func IsoAreaPEs(cfg AcceleratorConfig, flexPEs int) int {
	return area.IsoAreaPECount(cfg, flexPEs)
}

// GeneratePowerLawCluster generates a deterministic power-law clustered
// graph (Holme–Kim): preferential attachment with probability triadP of
// closing a triangle on each extra link. This is the generator behind the
// social-network dataset analogues.
func GeneratePowerLawCluster(n uint32, edgesPerVertex int, triadP float64, seed int64) *Graph {
	return gen.PowerLawCluster(n, edgesPerVertex, triadP, seed)
}

// GenerateErdosRenyi generates a deterministic G(n, m) random graph.
func GenerateErdosRenyi(n uint32, m int, seed int64) *Graph {
	return gen.ErdosRenyi(n, m, seed)
}

// DatasetNames lists the Table 1 dataset mnemonics (As, Mi, Yo, Pa, Lj, Or).
func DatasetNames() []string { return datasets.Names() }

// DatasetByName returns the synthetic analogue of a Table 1 dataset.
func DatasetByName(name string) (*Dataset, error) { return datasets.ByName(name) }
