package fingers_test

import (
	"context"
	"fmt"

	"fingers"
)

// ExampleSimulate shows the unified simulation entry point: pick an
// architecture, pass the graph and plans, and tune with options.
func ExampleSimulate() {
	g := fingers.GenerateErdosRenyi(200, 600, 1)
	pat, _ := fingers.PatternByName("tc")
	pl, _ := fingers.CompilePlan(pat, fingers.PlanOptions{})

	rep, _ := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
		fingers.WithPEs(2), fingers.WithSharedCache(64<<10))

	fmt.Println(rep.Result.Count == fingers.Count(g, pl))
	// Output: true
}

// ExampleSimulate_stats requests telemetry: per-PE cycle records and the
// IU utilization rates of the paper's Table 3.
func ExampleSimulate_stats() {
	g := fingers.GeneratePowerLawCluster(300, 4, 0.5, 2)
	pat, _ := fingers.PatternByName("tt")
	pl, _ := fingers.CompilePlan(pat, fingers.PlanOptions{})

	rep, _ := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
		fingers.WithPEs(2), fingers.WithStats())

	fmt.Println(len(rep.PerPE), rep.IU.ActiveRate() > 0)
	// Output: 2 true
}

// ExampleSimulate_comparison reruns the same workload on both
// architectures, the shape of every speedup figure in the paper.
func ExampleSimulate_comparison() {
	g := fingers.GeneratePowerLawCluster(300, 4, 0.5, 2)
	pat, _ := fingers.PatternByName("cyc")
	pl, _ := fingers.CompilePlan(pat, fingers.PlanOptions{})
	plans := []*fingers.Plan{pl}

	fi, _ := fingers.Simulate(fingers.ArchFingers, g, plans)
	fm, _ := fingers.Simulate(fingers.ArchFlexMiner, g, plans)

	fmt.Println(fi.Result.Count == fm.Result.Count, fi.Result.Speedup(fm.Result) > 1)
	// Output: true true
}

// ExampleCountCtx mines with a cancellable context; an expired context
// returns the partial count and the context's error.
func ExampleCountCtx() {
	g := fingers.GenerateErdosRenyi(500, 2000, 3)
	pat, _ := fingers.PatternByName("tc")
	pl, _ := fingers.CompilePlan(pat, fingers.PlanOptions{})

	n, err := fingers.CountCtx(context.Background(), g, pl, 4)
	fmt.Println(n == fingers.Count(g, pl), err)
	// Output: true <nil>
}
