package fingers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/plan"
)

// JobSpec is the JSON-serializable description of one simulation job:
// which architecture to model, which graph and benchmark pattern to
// mine, and how the chip and engine are shaped. It is the single wire
// and flag format shared by the fingersd daemon (the POST /v1/jobs
// body), cmd/fingersim, and cmd/experiments — flags and request bodies
// populate a spec, and the spec produces the Simulate arguments — so
// every entry point validates and decodes identically.
//
// Zero fields mean "the model's default": 1 PE, the paper's PE
// configuration, the model's shared-cache capacity, the serial event
// loop, and no deadline.
type JobSpec struct {
	// Arch selects the timing model: "fingers", "flexminer", or "sisa"
	// (case-insensitive; the display names FINGERS/FlexMiner/SISA also
	// parse). See ParseArch.
	Arch string `json:"arch"`
	// Graph names the workload graph: a bundled dataset mnemonic
	// (As/Mi/Yo/Pa/Lj/Or) for the daemon and CLIs, or an edge-list /
	// binary CSR path for the CLIs (ResolveGraph).
	Graph string `json:"graph"`
	// Pattern is the benchmark mnemonic (tc/4cl/5cl/tt/cyc/dia or any
	// named pattern; "3mc" expands to the 3-motif multi-pattern plan).
	Pattern string `json:"pattern"`
	// PEs is the processing-element count; 0 means 1.
	PEs int `json:"pes,omitempty"`
	// IUs overrides the FINGERS intersect-unit count per PE; 0 keeps
	// the paper's 24. Ignored by the FlexMiner architecture.
	IUs int `json:"ius,omitempty"`
	// IsoArea, when IUs is set, rescales the segment length so #IUs ×
	// s_l stays constant (the paper's iso-area rule). Nil means true.
	IsoArea *bool `json:"iso_area,omitempty"`
	// PseudoDFS enables the pseudo-DFS task-group order on FINGERS.
	// Nil means true (the paper's default).
	PseudoDFS *bool `json:"pseudo_dfs,omitempty"`
	// CacheKB is the shared-cache capacity in kB; 0 keeps the model's
	// default.
	CacheKB int64 `json:"cache_kb,omitempty"`
	// SimWorkers, when positive, runs the chip on the bounded-lag
	// parallel engine with this many host threads.
	SimWorkers int `json:"sim_workers,omitempty"`
	// SimWindow is the parallel engine's epoch width Δ in simulated
	// cycles; 0 means the tuned default. Results depend only on the
	// window, never on SimWorkers.
	SimWindow int64 `json:"sim_window,omitempty"`
	// SimShards, when > 1, partitions root vertices across this many
	// independent engine instances run on separate OS threads and merged
	// deterministically (see WithShards). Embedding counts are identical
	// at every shard count; cycle totals model an N-chip fleet. Clamped
	// to the PE count, and by a serving daemon to its configured maximum.
	SimShards int `json:"sim_shards,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds of wall time;
	// an expired job stops within one cancellation quantum and reports
	// its partial results. 0 means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stats requests the per-PE cycle records and (on FINGERS) the IU
	// utilization rates in the report.
	Stats bool `json:"stats,omitempty"`
	// RunTag groups this job's run records with others from the same
	// logical session for the trend tooling.
	RunTag string `json:"run_tag,omitempty"`
	// MaxAttempts budgets how many times a serving daemon may run this
	// job (first run included) when attempts fail transiently or hit
	// the deadline. 0 means the daemon's default; 1 disables retries
	// for this job. The daemon clamps it to its own server-wide cap.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Priority hints the daemon's load shedder: "low", "normal" (or
	// empty), "high". Under queue pressure, low-priority jobs are shed
	// first and high-priority jobs last. Ignored outside the daemon.
	Priority string `json:"priority,omitempty"`
}

// ParseArch resolves an architecture name: "fingers"/"FINGERS",
// "flexminer"/"FlexMiner", and "sisa"/"SISA" (case-insensitive).
func ParseArch(name string) (Arch, error) {
	switch strings.ToLower(name) {
	case "fingers":
		return ArchFingers, nil
	case "flexminer":
		return ArchFlexMiner, nil
	case "sisa":
		return ArchSISA, nil
	}
	return 0, fmt.Errorf("fingers: unknown architecture %q (valid: fingers, flexminer, sisa)", name)
}

// ArchValue parses the spec's architecture field.
func (s JobSpec) ArchValue() (Arch, error) { return ParseArch(s.Arch) }

// isoArea reports the iso-area rescaling choice, defaulting to true.
func (s JobSpec) isoArea() bool { return s.IsoArea == nil || *s.IsoArea }

// pseudoDFS reports the pseudo-DFS choice, defaulting to true.
func (s JobSpec) pseudoDFS() bool { return s.PseudoDFS == nil || *s.PseudoDFS }

// CacheBytes converts CacheKB to bytes; 0 keeps the model default.
func (s JobSpec) CacheBytes() int64 { return s.CacheKB << 10 }

// Timeout converts TimeoutMS to a duration; 0 means no deadline.
func (s JobSpec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// AcceleratorConfig materializes the FINGERS PE configuration the spec
// describes: the paper's default reshaped by IUs, IsoArea, and
// PseudoDFS.
func (s JobSpec) AcceleratorConfig() AcceleratorConfig {
	cfg := fingerspe.DefaultConfig()
	if s.IUs > 0 {
		if s.isoArea() {
			cfg = cfg.WithIUs(s.IUs)
		} else {
			cfg = cfg.WithIUsUnlimited(s.IUs)
		}
	}
	cfg.PseudoDFS = s.pseudoDFS()
	return cfg
}

// ParallelSim materializes the parallel-engine configuration, or nil
// when SimWorkers is 0 (the serial event loop). A degenerate window or
// worker count is reported as an error.
func (s JobSpec) ParallelSim() (*ParallelConfig, error) {
	if s.SimWorkers == 0 && s.SimWindow == 0 {
		return nil, nil
	}
	if s.SimWorkers == 0 {
		return nil, fmt.Errorf("fingers: JobSpec: sim_window set without sim_workers")
	}
	window := mem.Cycles(s.SimWindow)
	if window == 0 {
		window = accel.DefaultWindow
	}
	cfg := ParallelConfig{Window: window, Workers: s.SimWorkers}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("fingers: JobSpec: %w", err)
	}
	return &cfg, nil
}

// Validate checks every field of the spec without touching the graph:
// the architecture parses, graph and pattern are named, the pattern
// compiles, and the numeric knobs are in range. ResolveGraph reports
// graph problems separately so a service can map "unknown dataset" to
// its own error surface.
func (s JobSpec) Validate() error {
	if _, err := s.ArchValue(); err != nil {
		return err
	}
	if s.Graph == "" {
		return fmt.Errorf("fingers: JobSpec: graph is empty")
	}
	if s.Pattern == "" {
		return fmt.Errorf("fingers: JobSpec: pattern is empty")
	}
	if _, err := plan.ForBenchmark(s.Pattern); err != nil {
		return fmt.Errorf("fingers: JobSpec: pattern: %w", err)
	}
	if s.PEs < 0 {
		return fmt.Errorf("fingers: JobSpec: pes must be >= 0, got %d", s.PEs)
	}
	if s.IUs < 0 {
		return fmt.Errorf("fingers: JobSpec: ius must be >= 0, got %d", s.IUs)
	}
	if s.CacheKB < 0 {
		return fmt.Errorf("fingers: JobSpec: cache_kb must be >= 0, got %d", s.CacheKB)
	}
	if s.SimWorkers < 0 {
		return fmt.Errorf("fingers: JobSpec: sim_workers must be >= 0, got %d", s.SimWorkers)
	}
	if s.SimWindow < 0 {
		return fmt.Errorf("fingers: JobSpec: sim_window must be >= 0, got %d", s.SimWindow)
	}
	if s.SimShards < 0 {
		return fmt.Errorf("fingers: JobSpec: sim_shards must be >= 0, got %d", s.SimShards)
	}
	if _, err := s.ParallelSim(); err != nil {
		return err
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("fingers: JobSpec: timeout_ms must be >= 0, got %d", s.TimeoutMS)
	}
	if s.MaxAttempts < 0 {
		return fmt.Errorf("fingers: JobSpec: max_attempts must be >= 0, got %d", s.MaxAttempts)
	}
	switch s.Priority {
	case "", "low", "normal", "high":
	default:
		return fmt.Errorf("fingers: JobSpec: priority must be low, normal, or high, got %q", s.Priority)
	}
	return nil
}

// Plans compiles the spec's benchmark pattern into its plan set.
func (s JobSpec) Plans() ([]*Plan, error) {
	plans, err := plan.ForBenchmark(s.Pattern)
	if err != nil {
		return nil, fmt.Errorf("fingers: JobSpec: pattern: %w", err)
	}
	return plans, nil
}

// ResolveGraph loads the spec's graph: a bundled dataset mnemonic
// resolves to its cached analogue, anything else is read as a graph
// file (binary CSR for ".bin", SNAP-style edge list otherwise). A
// service that restricts jobs to registered datasets resolves the name
// against its own registry instead.
func (s JobSpec) ResolveGraph() (*Graph, error) {
	d, derr := datasets.ByName(s.Graph)
	if derr == nil {
		return d.Graph(), nil
	}
	g, ferr := graph.LoadFile(s.Graph)
	if ferr != nil {
		// A bare name with no path shape was probably meant as a
		// dataset: surface the structured not-found error (with its
		// did-you-mean hint) rather than a file-open failure.
		if !strings.ContainsAny(s.Graph, "./\\") {
			return nil, derr
		}
		return nil, ferr
	}
	return g, nil
}

// ToOptions bridges the spec to the Simulate option list: PEs, shared
// cache, PE configuration, parallel engine, deadline, and stats. The
// caller composes extras (WithContext, WithTracer, WithProgress) on
// top. The spec is validated first, so an invalid spec never produces
// a half-applied option set.
func (s JobSpec) ToOptions() ([]SimOption, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts := []SimOption{WithAcceleratorConfig(s.AcceleratorConfig())}
	if s.PEs > 0 {
		opts = append(opts, WithPEs(s.PEs))
	}
	if s.CacheKB > 0 {
		opts = append(opts, WithSharedCache(s.CacheBytes()))
	}
	if pcfg, err := s.ParallelSim(); err != nil {
		return nil, err
	} else if pcfg != nil {
		opts = append(opts, WithParallelSim(*pcfg))
	}
	if s.SimShards > 1 {
		opts = append(opts, WithShards(s.SimShards))
	}
	if s.TimeoutMS > 0 {
		opts = append(opts, WithTimeout(s.Timeout()))
	}
	if s.Stats {
		opts = append(opts, WithStats())
	}
	return opts, nil
}

// DecodeJobSpec parses one JSON job spec, rejecting unknown fields so a
// misspelled knob fails loudly instead of silently running defaults.
func DecodeJobSpec(data []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("fingers: JobSpec: %w", err)
	}
	return s, nil
}
