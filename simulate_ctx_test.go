package fingers_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"fingers"
)

func ctxFixture(t *testing.T) (*fingers.Graph, []*fingers.Plan) {
	t.Helper()
	g := fingers.GeneratePowerLawCluster(400, 5, 0.5, 4)
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, []*fingers.Plan{pl}
}

// TestSimulateCancelledContext: an already-fired context returns a
// partial report (Partial set, root progress populated) and a *SimError
// wrapping ctx.Err(), on both architectures and both engines.
func TestSimulateCancelledContext(t *testing.T) {
	g, plans := ctxFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		opts []fingers.SimOption
	}{
		{"fingers-serial", []fingers.SimOption{fingers.WithPEs(2)}},
		{"fingers-parallel", []fingers.SimOption{fingers.WithPEs(4),
			fingers.WithParallelSim(fingers.ParallelConfig{Window: 64, Workers: 2})}},
		{"flexminer-serial", nil},
	}
	for _, c := range cases {
		arch := fingers.ArchFingers
		if c.name == "flexminer-serial" {
			arch = fingers.ArchFlexMiner
		}
		rep, err := fingers.Simulate(arch, g, plans, append(c.opts, fingers.WithContext(ctx))...)
		if err == nil {
			t.Fatalf("%s: expected an error from a cancelled context", c.name)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", c.name, err)
		}
		se, ok := fingers.AsSimError(err)
		if !ok || !se.IsCancellation() {
			t.Errorf("%s: error %v is not a cancellation *SimError", c.name, err)
		}
		if !rep.Partial {
			t.Errorf("%s: report is not flagged Partial", c.name)
		}
		if rep.RootsTotal != g.NumVertices() {
			t.Errorf("%s: RootsTotal = %d, want %d", c.name, rep.RootsTotal, g.NumVertices())
		}
		if rep.RootsDone != 0 {
			t.Errorf("%s: RootsDone before any step = %d", c.name, rep.RootsDone)
		}
	}
}

// TestSimulateWithTimeout: an expired deadline cancels the run; the
// error chain reports context.DeadlineExceeded.
func TestSimulateWithTimeout(t *testing.T) {
	g, plans := ctxFixture(t)
	rep, err := fingers.Simulate(fingers.ArchFingers, g, plans,
		fingers.WithPEs(2), fingers.WithTimeout(-time.Second))
	if err == nil {
		t.Fatal("expected an error from an expired timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !rep.Partial {
		t.Error("report is not flagged Partial")
	}
}

// TestSimulateUncancelledMatchesPlain: passing a live context must not
// perturb the simulation — bit-identical cycles and counts.
func TestSimulateUncancelledMatchesPlain(t *testing.T) {
	g, plans := ctxFixture(t)
	want, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fingers.Simulate(fingers.ArchFingers, g, plans,
		fingers.WithPEs(2), fingers.WithContext(context.Background()),
		fingers.WithTimeout(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if got.Result != want.Result {
		t.Errorf("ctx run diverges from plain run:\n%+v\n%+v", got.Result, want.Result)
	}
	if got.Partial || want.Partial {
		t.Error("completed runs must not be flagged Partial")
	}
	if got.RootsDone != got.RootsTotal {
		t.Errorf("completed run dispatched %d/%d roots", got.RootsDone, got.RootsTotal)
	}
}

// simPanicTracer triggers a panic inside the simulation from the public
// tracer surface, standing in for a kernel defect.
type simPanicTracer struct{}

func (simPanicTracer) TaskGroupBegin(pe, engine int, at fingers.Cycles, size int) {
	panic("injected fault via public tracer")
}
func (simPanicTracer) TaskGroupEnd(pe int, at fingers.Cycles) {}
func (simPanicTracer) SetOpIssue(pe int, at fingers.Cycles, kind string, longLen, shortLen, workloads int) {
}
func (simPanicTracer) CacheAccess(pe int, at fingers.Cycles, bytes, lines, misses int64, done fingers.Cycles) {
}
func (simPanicTracer) DRAMBurst(start, done fingers.Cycles, addr, bytes int64) {}

// TestSimulatePanicReturnsSimError: a panic inside a PE step surfaces
// from Simulate as a structured *SimError instead of crashing the host.
func TestSimulatePanicReturnsSimError(t *testing.T) {
	g, plans := ctxFixture(t)
	rep, err := fingers.Simulate(fingers.ArchFingers, g, plans,
		fingers.WithPEs(2), fingers.WithTracer(simPanicTracer{}))
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	se, ok := fingers.AsSimError(err)
	if !ok {
		t.Fatalf("error %T is not a *SimError", err)
	}
	if se.IsCancellation() {
		t.Error("a panic must not be classified as cancellation")
	}
	if len(se.Stack) == 0 {
		t.Error("panic SimError is missing its stack capture")
	}
	if !rep.Partial {
		t.Error("report is not flagged Partial")
	}
}

// TestSimulateValidationErrors: degenerate inputs error out instead of
// panicking, with a zero (non-partial) report.
func TestSimulateValidationErrors(t *testing.T) {
	g, plans := ctxFixture(t)
	if _, err := fingers.Simulate(fingers.ArchFingers, nil, plans); err == nil {
		t.Error("nil graph: expected an error")
	}
	if _, err := fingers.Simulate(fingers.ArchFingers, g, nil); err == nil {
		t.Error("no plans: expected an error")
	}
	if _, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(-1)); err == nil {
		t.Error("negative PE count: expected an error")
	}
}
