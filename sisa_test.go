package fingers_test

import (
	"testing"

	"fingers"
)

// TestSISACountsMatchTimingDiffers pins the ArchSISA contract: the
// set-centric cost model is a timing-only variant, so its embedding
// counts must be bit-identical to both other architectures, while on a
// dense graph — where the hybrid view stores most rows as dense bitsets
// or compressed bitmaps — the cheaper fetches and probe-style set ops
// must make it strictly faster than the stock FlexMiner baseline.
func TestSISACountsMatchTimingDiffers(t *testing.T) {
	// Average degree 60 on 200 vertices: well past the hub threshold
	// (n/32) and the bitmap density break-even, so stored rows dominate.
	g := fingers.GenerateErdosRenyi(200, 6000, 7)
	for _, patName := range []string{"tc", "tt"} {
		pat, err := fingers.PatternByName(patName)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		plans := []*fingers.Plan{pl}
		want := fingers.Count(g, pl)

		fm, err := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithPEs(2))
		if err != nil {
			t.Fatal(err)
		}
		sisa, err := fingers.Simulate(fingers.ArchSISA, g, plans, fingers.WithPEs(2))
		if err != nil {
			t.Fatal(err)
		}
		fi, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
		if err != nil {
			t.Fatal(err)
		}
		if fm.Result.Count != want || sisa.Result.Count != want || fi.Result.Count != want {
			t.Errorf("%s: counts diverge: flexminer=%d sisa=%d fingers=%d want=%d",
				patName, fm.Result.Count, sisa.Result.Count, fi.Result.Count, want)
		}
		if sisa.Result.Tasks != fm.Result.Tasks {
			t.Errorf("%s: SISA changed the task stream: %d vs %d",
				patName, sisa.Result.Tasks, fm.Result.Tasks)
		}
		if sisa.Result.Cycles >= fm.Result.Cycles {
			t.Errorf("%s: SISA not faster on a dense graph: %d vs FlexMiner %d cycles",
				patName, sisa.Result.Cycles, fm.Result.Cycles)
		}
	}
	if fingers.ArchSISA.String() != "SISA" {
		t.Errorf("ArchSISA.String() = %q", fingers.ArchSISA)
	}
}
