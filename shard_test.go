package fingers_test

import (
	"reflect"
	"testing"

	fingers "fingers"
	"fingers/internal/accel"
	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

func shardTestPlan(t *testing.T, name string) *fingers.Plan {
	t.Helper()
	p, err := pattern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return plan.MustCompile(p, plan.Options{})
}

// TestShardInvariance is the sharded mode's determinism oracle: on the
// quick-grid workload shape, embedding counts and task totals are
// bit-identical for every shard count (shards=1 ≡ the unsharded
// engines), and for a fixed shard count the entire merged report —
// result and per-PE records — is bit-identical across worker counts.
// Run under -race this also exercises the shards-on-OS-threads path
// for data races.
func TestShardInvariance(t *testing.T) {
	g := gen.PowerLawCluster(900, 5, 0.4, 7)
	for _, arch := range []fingers.Arch{fingers.ArchFingers, fingers.ArchFlexMiner, fingers.ArchSISA} {
		for _, pat := range []string{"tc", "tt", "cyc"} {
			pl := shardTestPlan(t, pat)
			base, err := fingers.Simulate(arch, g, []*fingers.Plan{pl},
				fingers.WithPEs(8), fingers.WithStats())
			if err != nil {
				t.Fatalf("%v/%s serial: %v", arch, pat, err)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				var ref *fingers.SimReport
				for _, workers := range []int{1, 4} {
					rep, err := fingers.Simulate(arch, g, []*fingers.Plan{pl},
						fingers.WithPEs(8), fingers.WithStats(),
						fingers.WithShards(shards),
						fingers.WithParallelSim(fingers.ParallelConfig{
							Window: accel.DefaultWindow, Workers: workers,
						}))
					if err != nil {
						t.Fatalf("%v/%s shards=%d workers=%d: %v", arch, pat, shards, workers, err)
					}
					if rep.Result.Count != base.Result.Count {
						t.Errorf("%v/%s shards=%d workers=%d: count %d, serial %d",
							arch, pat, shards, workers, rep.Result.Count, base.Result.Count)
					}
					if rep.Result.Tasks != base.Result.Tasks {
						t.Errorf("%v/%s shards=%d workers=%d: tasks %d, serial %d",
							arch, pat, shards, workers, rep.Result.Tasks, base.Result.Tasks)
					}
					if rep.RootsDone != base.RootsDone || rep.RootsTotal != base.RootsTotal {
						t.Errorf("%v/%s shards=%d workers=%d: roots %d/%d, serial %d/%d",
							arch, pat, shards, workers,
							rep.RootsDone, rep.RootsTotal, base.RootsDone, base.RootsTotal)
					}
					if rep.Shards != shards {
						t.Errorf("%v/%s shards=%d: report says Shards=%d", arch, pat, shards, rep.Shards)
					}
					// The merged report must depend only on the shard
					// count, never on the worker count (the per-shard
					// engine's determinism contract, lifted to the merge).
					rep.ShardWallNS = nil // host timing, not part of the contract
					if ref == nil {
						r := rep
						ref = &r
					} else if !reflect.DeepEqual(*ref, rep) {
						t.Errorf("%v/%s shards=%d: merged report differs between workers=1 and workers=%d",
							arch, pat, shards, workers)
					}
				}
			}
		}
	}
}

// TestShardMergedBreakdownInvariant checks the merged-report telemetry
// contract: every per-PE record's breakdown buckets sum to the global
// merged makespan, PE ids cover 0..pes-1 exactly once in order, and the
// chip-wide breakdown totals makespan × PEs.
func TestShardMergedBreakdownInvariant(t *testing.T) {
	g := gen.PowerLawCluster(900, 5, 0.4, 7)
	pl := shardTestPlan(t, "tt")
	const pes = 8
	for _, shards := range []int{2, 4, 8} {
		rep, err := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
			fingers.WithPEs(pes), fingers.WithStats(), fingers.WithShards(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got, want := rep.Result.Breakdown.Total(), rep.Result.Cycles*pes; got != want {
			t.Errorf("shards=%d: chip breakdown total %d, want makespan*pes %d", shards, got, want)
		}
		if len(rep.PerPE) != pes {
			t.Fatalf("shards=%d: %d per-PE records, want %d", shards, len(rep.PerPE), pes)
		}
		for i, r := range rep.PerPE {
			if r.PE != i {
				t.Errorf("shards=%d: record %d has PE id %d", shards, i, r.PE)
			}
			if r.Cycles != rep.Result.Cycles {
				t.Errorf("shards=%d: PE %d record cycles %d, want global %d",
					shards, i, r.Cycles, rep.Result.Cycles)
			}
			if got := r.Breakdown.Total(); got != rep.Result.Cycles {
				t.Errorf("shards=%d: PE %d breakdown total %d, want makespan %d",
					shards, i, got, rep.Result.Cycles)
			}
		}
	}
}

// TestShardClamping: more shards than PEs clamps so each shard keeps a
// PE; shards=0/1 run unsharded and report Shards=1 with no wall table.
func TestShardClamping(t *testing.T) {
	g := gen.PowerLawCluster(300, 4, 0.4, 7)
	pl := shardTestPlan(t, "tc")
	rep, err := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
		fingers.WithPEs(4), fingers.WithShards(64))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 4 || len(rep.ShardWallNS) != 4 {
		t.Errorf("shards=64 over 4 PEs: got Shards=%d walls=%d, want 4/4", rep.Shards, len(rep.ShardWallNS))
	}
	for _, n := range []int{0, 1} {
		rep, err := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
			fingers.WithPEs(4), fingers.WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Shards != 1 || rep.ShardWallNS != nil {
			t.Errorf("shards=%d: got Shards=%d walls=%v, want unsharded", n, rep.Shards, rep.ShardWallNS)
		}
	}
	if _, err := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
		fingers.WithShards(-1)); err == nil {
		t.Error("negative shard count: want error")
	}
}

// TestShardTracedRun: a traced sharded run emits PE ids in the global
// id space and the same count as untraced.
func TestShardTracedRun(t *testing.T) {
	g := gen.PowerLawCluster(300, 4, 0.4, 7)
	pl := shardTestPlan(t, "tc")
	trc := &peCollector{}
	rep, err := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl},
		fingers.WithPEs(4), fingers.WithShards(4), fingers.WithTracer(trc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerPE) != 4 {
		t.Fatalf("traced run: %d per-PE records, want 4", len(rep.PerPE))
	}
	if len(trc.seen) == 0 {
		t.Fatal("tracer saw no events")
	}
	for pe := range trc.seen {
		if pe < 0 || pe >= 4 {
			t.Errorf("tracer saw PE id %d outside the global id space [0,4)", pe)
		}
	}
	// With 4 shards of 1 PE each, every shard's events must arrive
	// renamed: seeing >1 distinct id proves the offset wrapper ran.
	if len(trc.seen) < 2 {
		t.Errorf("tracer saw only PE ids %v; want events from multiple shards", trc.seen)
	}
}

// peCollector records which PE ids produced telemetry events.
type peCollector struct{ seen map[int]bool }

func (c *peCollector) mark(pe int) {
	if c.seen == nil {
		c.seen = map[int]bool{}
	}
	c.seen[pe] = true
}

func (c *peCollector) TaskGroupBegin(pe, engine int, at fingers.Cycles, size int) { c.mark(pe) }
func (c *peCollector) TaskGroupEnd(pe int, at fingers.Cycles)                     { c.mark(pe) }
func (c *peCollector) SetOpIssue(pe int, at fingers.Cycles, kind string, longLen, shortLen, workloads int) {
	c.mark(pe)
}
func (c *peCollector) CacheAccess(pe int, at fingers.Cycles, bytes, lines, misses int64, done fingers.Cycles) {
	c.mark(pe)
}
func (c *peCollector) DRAMBurst(start, done fingers.Cycles, addr, bytes int64) {}
