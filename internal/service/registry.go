// Package service is the mining-as-a-service layer behind cmd/fingersd:
// a graph registry that loads and preprocesses each dataset once and
// shares the immutable result across requests, a bounded admission
// queue that runs fingers.JobSpec jobs with per-request deadlines, and
// the HTTP+JSON surface (job lifecycle, fingers.run/v1 progress
// streams, health) that exposes both.
package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/telemetry"
)

// GraphEntry is one fully preprocessed workload graph: the immutable
// CSR, its Table-1 statistics, and the hub-membership index the
// adaptive kernels probe. Entries are built once and shared by every
// job that names the graph; all fields are read-only after
// construction and safe for concurrent use.
type GraphEntry struct {
	// Name is the canonical registry key (a dataset mnemonic, or the
	// name an extra graph was registered under).
	Name string
	// Graph is the immutable CSR.
	Graph *graph.Graph
	// Stats is the graph's summary, computed once at load.
	Stats graph.Stats
	// Hubs is the dense hub-row index, warmed at load so the first job
	// does not pay for it inside its deadline.
	Hubs *graph.HubIndex
	// Info is Stats in run-record form, reused by every record the
	// service emits for this graph.
	Info telemetry.GraphInfo
}

// regEntry is one registry slot: the build runs at most once, and every
// concurrent Get for the same name shares the single result. The built
// entry is published through an atomic pointer so List can report
// loaded-ness without blocking on (or racing with) an in-flight build;
// err is only read after once.Do returns, which orders it.
type regEntry struct {
	name  string
	build func() (*graph.Graph, error)

	once sync.Once
	ge   atomic.Pointer[GraphEntry]
	err  error
}

// Registry resolves graph names to preprocessed GraphEntry values. It
// is seeded with the bundled dataset analogues and can be extended with
// named graphs (files, test fixtures). Loading is lazy and
// deduplicated: the first Get of a name builds the graph, its stats,
// and its hub index exactly once; concurrent requests block on that
// build and then share the immutable entry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	names   []string // registration order, for stable listings
}

// NewRegistry returns a registry seeded with every bundled dataset
// analogue (As/Mi/Yo/Pa/Lj/Or), none of them loaded yet.
func NewRegistry() *Registry {
	r := &Registry{entries: map[string]*regEntry{}}
	for _, d := range datasets.All() {
		d := d
		r.add(d.Name, func() (*graph.Graph, error) { return d.Graph(), nil })
	}
	return r
}

// add registers one lazily built graph under name.
func (r *Registry) add(name string, build func() (*graph.Graph, error)) {
	r.entries[name] = &regEntry{name: name, build: build}
	r.names = append(r.names, name)
}

// Add registers an extra graph under name, replacing any previous
// registration. The build function runs at most once, on first Get.
func (r *Registry) Add(name string, build func() (*graph.Graph, error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		r.names = append(r.names, name)
	}
	r.entries[name] = &regEntry{name: name, build: build}
}

// AddFile registers the graph file at path under name; the file is read
// on first use.
func (r *Registry) AddFile(name, path string) {
	r.Add(name, func() (*graph.Graph, error) { return graph.LoadFile(path) })
}

// Names returns the registered graph names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// Resolve canonicalizes a graph name without loading anything: exact
// registry keys win, then the dataset aliases (case-insensitive
// mnemonic or full name). An unknown name is a *datasets.NotFoundError
// listing every registered name with a did-you-mean hint, which the
// HTTP layer maps to a 404 JSON body.
func (r *Registry) Resolve(name string) (string, error) {
	r.mu.Lock()
	if _, ok := r.entries[name]; ok {
		r.mu.Unlock()
		return name, nil
	}
	r.mu.Unlock()
	if d, err := datasets.ByName(name); err == nil {
		r.mu.Lock()
		_, ok := r.entries[d.Name]
		r.mu.Unlock()
		if ok {
			return d.Name, nil
		}
	}
	known := r.Names()
	sort.Strings(known)
	return "", &datasets.NotFoundError{Name: name, Known: known, Suggestion: datasets.Suggest(name, known)}
}

// Get returns the preprocessed entry for name, building it on first
// use. Concurrent calls for the same name perform one build.
func (r *Registry) Get(name string) (*GraphEntry, error) {
	canon, err := r.Resolve(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	e := r.entries[canon]
	r.mu.Unlock()
	e.once.Do(func() {
		g, err := e.build()
		if err != nil {
			e.err = fmt.Errorf("service: load graph %q: %w", e.name, err)
			return
		}
		if g == nil {
			e.err = fmt.Errorf("service: load graph %q: builder returned nil", e.name)
			return
		}
		st := graph.ComputeStats(g)
		// Warming the hybrid view here (alongside the hub index) also
		// fixes the representation mix the service reports: tier
		// assignment is a pure function of the CSR, so the footprint is
		// exact before any row materializes.
		fp := g.Hybrid().Footprint()
		e.ge.Store(&GraphEntry{
			Name:  e.name,
			Graph: g,
			Stats: st,
			Hubs:  g.Hubs(),
			Info: telemetry.GraphInfo{
				Name:        e.name,
				Vertices:    st.Vertices,
				Edges:       st.Edges,
				AvgDegree:   st.AvgDegree,
				MaxDegree:   st.MaxDegree,
				DenseRows:   fp.DenseRows,
				BitmapRows:  fp.BitmapRows,
				HybridBytes: fp.HybridBytes(),
			},
		})
	})
	return e.ge.Load(), e.err
}

// Preload eagerly builds the named graphs ("all" is every registered
// name), so the cost lands at daemon startup instead of inside the
// first job's deadline.
func (r *Registry) Preload(names ...string) error {
	if len(names) == 1 && names[0] == "all" {
		names = r.Names()
	}
	for _, n := range names {
		if _, err := r.Get(n); err != nil {
			return err
		}
	}
	return nil
}

// GraphSummary is one row of the GET /v1/graphs listing.
type GraphSummary struct {
	Name   string `json:"name"`
	Loaded bool   `json:"loaded"`
	// The statistics are present only once the graph has been loaded;
	// listing the registry never forces a load.
	Vertices  int     `json:"vertices,omitempty"`
	Edges     int64   `json:"edges,omitempty"`
	AvgDegree float64 `json:"avg_degree,omitempty"`
	MaxDegree int     `json:"max_degree,omitempty"`
	// Hybrid-storage representation mix and its fully materialized
	// memory footprint, fixed at load time (tier assignment is a pure
	// function of the CSR).
	DenseRows   int   `json:"dense_rows,omitempty"`
	BitmapRows  int   `json:"bitmap_rows,omitempty"`
	HybridBytes int64 `json:"hybrid_bytes,omitempty"`
}

// List summarizes every registered graph without loading any.
func (r *Registry) List() []GraphSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphSummary, 0, len(r.names))
	for _, n := range r.names {
		e := r.entries[n]
		s := GraphSummary{Name: n}
		if ge := e.ge.Load(); ge != nil {
			s.Loaded = true
			s.Vertices = ge.Stats.Vertices
			s.Edges = ge.Stats.Edges
			s.AvgDegree = ge.Stats.AvgDegree
			s.MaxDegree = ge.Stats.MaxDegree
			s.DenseRows = ge.Info.DenseRows
			s.BitmapRows = ge.Info.BitmapRows
			s.HybridBytes = ge.Info.HybridBytes
		}
		out = append(out, s)
	}
	return out
}
