package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"fingers"
)

// newJSONBody marshals v for a request body.
func newJSONBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// decodeJSONBody decodes a response body into v.
func decodeJSONBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// fakeClock gives admission tests a deterministic time axis.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// holdWorkers parks every worker so admission tests control queue
// occupancy exactly. Returns the release closure.
func holdWorkers(m *Manager, started chan string) func() {
	release := make(chan struct{})
	m.simulate = blockingSim(started, release)
	var once sync.Once
	return func() { once.Do(func() { close(release) }) }
}

// TestRateLimitPerClient: a client's submissions beyond its bucket
// reject with ErrRateLimited and a positive Retry-After, refilling as
// the clock advances; other clients are unaffected.
func TestRateLimitPerClient(t *testing.T) {
	clock := newFakeClock()
	m, _ := newTestServer(t, Config{
		Concurrency: 1, QueueDepth: 32,
		ClientRate: 1, ClientBurst: 2,
	})
	m.now = clock.now
	started := make(chan string, 64)
	release := holdWorkers(m, started)
	defer release()
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}

	for i := 0; i < 2; i++ {
		if _, err := m.SubmitFrom("alice", spec); err != nil {
			t.Fatalf("burst submission %d: %v", i, err)
		}
	}
	_, err := m.SubmitFrom("alice", spec)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third submission error %v, want ErrRateLimited", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.RetryAfter <= 0 || adm.Client != "alice" {
		t.Fatalf("rejection not a well-formed *AdmissionError: %+v", adm)
	}
	// A different client has its own bucket.
	if _, err := m.SubmitFrom("bob", spec); err != nil {
		t.Fatalf("bob rejected alongside alice: %v", err)
	}
	// The bucket refills with time.
	clock.advance(1500 * time.Millisecond)
	if _, err := m.SubmitFrom("alice", spec); err != nil {
		t.Fatalf("post-refill submission rejected: %v", err)
	}
	// Anonymous in-process submissions are never rate limited.
	for i := 0; i < 5; i++ {
		if _, err := m.Submit(spec); err != nil {
			t.Fatalf("anonymous submission %d rejected: %v", i, err)
		}
	}
}

// TestClientQueueShare: one client may hold at most its fair share of
// queued jobs; slots free as workers dequeue.
func TestClientQueueShare(t *testing.T) {
	m, _ := newTestServer(t, Config{
		Concurrency: 1, QueueDepth: 16,
		MaxQueuedPerClient: 2,
	})
	started := make(chan string, 16)
	release := holdWorkers(m, started)
	defer release()
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}

	// First submission is dequeued by the (parked) worker; wait for it
	// so the client's queued count is deterministic.
	if _, err := m.SubmitFrom("alice", spec); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := m.SubmitFrom("alice", spec); err != nil {
			t.Fatalf("submission %d within share: %v", i, err)
		}
	}
	_, err := m.SubmitFrom("alice", spec)
	if !errors.Is(err, ErrClientShare) {
		t.Fatalf("over-share submission error %v, want ErrClientShare", err)
	}
	// Another client still fits.
	if _, err := m.SubmitFrom("bob", spec); err != nil {
		t.Fatalf("bob rejected by alice's share: %v", err)
	}
}

// TestLoadSheddingByPriority: once queue latency crosses the
// threshold, low-priority work sheds first, normal at twice the
// threshold, and high priority rides through.
func TestLoadSheddingByPriority(t *testing.T) {
	clock := newFakeClock()
	m, _ := newTestServer(t, Config{
		Concurrency: 1, QueueDepth: 32,
		ShedLatency: time.Second,
	})
	m.now = clock.now
	started := make(chan string, 32)
	release := holdWorkers(m, started)
	defer release()
	spec := func(prio string) fingers.JobSpec {
		return fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", Priority: prio}
	}

	// Occupy the worker, then leave one job queued and age it.
	if _, err := m.SubmitFrom("c", spec("")); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.SubmitFrom("c", spec("")); err != nil {
		t.Fatal(err)
	}

	clock.advance(1500 * time.Millisecond) // latency ≈ 1.5 s: past shed, under 2×
	if _, err := m.SubmitFrom("c", spec("low")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low-priority at 1.5s latency: %v, want ErrOverloaded", err)
	}
	if _, err := m.SubmitFrom("c", spec("")); err != nil {
		t.Fatalf("normal-priority at 1.5s latency rejected: %v", err)
	}

	clock.advance(time.Second) // latency ≈ 2.5 s: past 2×
	if _, err := m.SubmitFrom("c", spec("normal")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("normal-priority at 2.5s latency: %v, want ErrOverloaded", err)
	}
	if _, err := m.SubmitFrom("c", spec("high")); err != nil {
		t.Fatalf("high-priority shed: %v", err)
	}
}

// TestAdmission429 drives a rate-limit rejection through HTTP and
// checks the 429 carries Retry-After and the client keyed off
// X-Client-ID.
func TestAdmission429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Concurrency: 1, QueueDepth: 32,
		ClientRate: 0.001, ClientBurst: 1,
	})
	post := func(client string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			newJSONBody(t, fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("hot"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: %d", resp.StatusCode)
	}
	resp := post("hot")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// A different client identity is admitted.
	if resp := post("cold"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client POST: %d, want 202", resp.StatusCode)
	}
}

// TestReadyzSplit: /healthz stays 200 while draining (liveness), but
// /readyz flips to 503 with the drain and journal detail in the body.
func TestReadyzSplit(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 1})
	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		decodeJSONBody(t, resp, &body)
		return resp.StatusCode, body
	}

	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh daemon readyz: %d %v", code, body)
	}
	m.Drain(0)
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("draining healthz: %d, want 200 (liveness, not readiness)", code)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: %d, want 503", code)
	}
	if body["ready"] != false || body["draining"] != true {
		t.Errorf("draining readyz body: %v", body)
	}
	if _, ok := body["journal"]; !ok {
		t.Error("readyz body missing journal replay status")
	}
}

// TestQueueLatencyEstimate pins the oldest-queued-job latency measure.
func TestQueueLatencyEstimate(t *testing.T) {
	clock := newFakeClock()
	m, _ := newTestServer(t, Config{Concurrency: 1, QueueDepth: 8})
	m.now = clock.now
	started := make(chan string, 8)
	release := holdWorkers(m, started)
	defer release()
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}

	if m.QueueLatency() != 0 {
		t.Fatalf("idle latency %s, want 0", m.QueueLatency())
	}
	if _, err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	<-started // worker holds job 1; queue empty again
	if _, err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	clock.advance(3 * time.Second)
	if got := m.QueueLatency(); got != 3*time.Second {
		t.Errorf("latency %s, want 3s", got)
	}
}
