package service

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"fingers"
	"fingers/internal/telemetry"
)

// TestShardedJobEndToEnd runs a sharded job through the full HTTP path:
// the sim_shards request is clamped against the server-side maximum,
// the job streams partial records and drains cleanly, the final record
// matches a direct sharded Simulate bit-for-bit, and the effective
// shard count is stamped into the record meta.
func TestShardedJobEndToEnd(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 1, ProgressEvery: 64, MaxShards: 4})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 8, SimShards: 16}
	st, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	if st.Spec.SimShards != 4 {
		t.Errorf("admitted spec sim_shards %d, want clamp to server max 4", st.Spec.SimShards)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	raw, err := io.ReadAll(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := telemetry.ReadRecordsLenient(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("lenient reader skipped %d stream lines: %+v", len(skipped), skipped)
	}
	if len(recs) == 0 {
		t.Fatal("empty stream")
	}
	last := recs[len(recs)-1]
	if last.Partial {
		t.Error("final streamed record is partial")
	}
	waitDone(t, m, st.ID)

	got := getStatus(t, ts, st.ID)
	if got.State != StateDone {
		t.Fatalf("state %s (err %q), want done", got.State, got.Error)
	}
	if got.Record == nil {
		t.Fatal("done job has no record")
	}
	if got.Record.Meta.SimShards != 4 {
		t.Errorf("record meta sim_shards %d, want effective 4", got.Record.Meta.SimShards)
	}

	// Bit-identical to a direct sharded Simulate with the clamped spec.
	direct := st.Spec
	g, err := direct.ResolveGraph()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := direct.Plans()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := direct.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fingers.Simulate(fingers.ArchFingers, g, plans, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Record.Count != want.Result.Count || got.Record.Cycles != want.Result.Cycles {
		t.Errorf("served record count=%d cycles=%d, direct sharded Simulate count=%d cycles=%d",
			got.Record.Count, got.Record.Cycles, want.Result.Count, want.Result.Cycles)
	}
	if want.Shards != 4 {
		t.Errorf("direct run effective shards %d, want 4", want.Shards)
	}

	// The manager must drain cleanly with the sharded job's record kept.
	m.Drain(time.Second)
	if j, ok := m.Get(st.ID); !ok || j.Status().Record == nil {
		t.Error("record lost across drain")
	}
}

// TestShardedJobUnclamped: with no server max, the façade's own PE
// clamp is the only bound.
func TestShardedJobUnclamped(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 1})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2, SimShards: 8}
	st, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	if st.Spec.SimShards != 8 {
		t.Errorf("admitted spec sim_shards %d, want 8 (no server clamp)", st.Spec.SimShards)
	}
	waitDone(t, m, st.ID)
	got := getStatus(t, ts, st.ID)
	if got.State != StateDone {
		t.Fatalf("state %s (err %q), want done", got.State, got.Error)
	}
	// 8 requested over 2 PEs: the façade ran 2, and the record says so.
	if got.Record.Meta.SimShards != 2 {
		t.Errorf("record meta sim_shards %d, want façade-clamped 2", got.Record.Meta.SimShards)
	}
}
