// Fault injection: a deterministic seam for driving the failure paths
// that production traffic only hits at the worst possible moment. An
// injector is armed with an explicit schedule — fire this kind of
// fault at the Nth invocation of this operation — so a chaos test (or
// the CI chaos-smoke job) replays the exact same failure sequence on
// every run. No wall-clock or global RNG feeds the schedule.

package service

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"fingers/internal/journal"
)

// FaultOp names an injectable seam.
type FaultOp string

const (
	// OpSimulate fires inside the manager's run path, immediately
	// before the Simulate call.
	OpSimulate FaultOp = "simulate"
	// OpJournal fires inside the journal's append path, before the
	// record is written (wire via FaultInjector.JournalHook).
	OpJournal FaultOp = "journal"
)

// FaultKind is what happens when a scheduled point fires.
type FaultKind string

const (
	// FaultError returns an ErrInjected-wrapping (and therefore
	// transient, retryable) error from the seam.
	FaultError FaultKind = "error"
	// FaultPanic panics at the seam. The simulate seam recovers it into
	// a *simerr.SimError like any engine panic; the journal seam lets
	// it propagate — a deliberate crash, which is the point of chaos.
	FaultPanic FaultKind = "panic"
	// FaultLatency sleeps for the point's Latency before proceeding.
	FaultLatency FaultKind = "latency"
)

// ErrInjected marks every error the injector produces. It wraps
// ErrRetryable, so injected errors classify as transient.
var ErrInjected = fmt.Errorf("injected fault: %w", ErrRetryable)

// FaultPoint schedules one fault: fire Kind at the Invocation'th call
// (1-based) of Op.
type FaultPoint struct {
	Op         FaultOp
	Kind       FaultKind
	Invocation int64
	// Latency is the injected delay for FaultLatency points.
	Latency time.Duration
}

func (p FaultPoint) String() string {
	if p.Kind == FaultLatency {
		return fmt.Sprintf("%s:latency:%s@%d", p.Op, p.Latency, p.Invocation)
	}
	return fmt.Sprintf("%s:%s@%d", p.Op, p.Kind, p.Invocation)
}

// FaultInjector counts invocations per seam and fires the scheduled
// points. Safe for concurrent use.
type FaultInjector struct {
	mu     sync.Mutex
	counts map[FaultOp]int64
	points []FaultPoint
	fired  int
	// sleep is swappable so latency tests do not wait in real time.
	sleep func(time.Duration)
}

// NewFaultInjector arms an injector with the given schedule.
func NewFaultInjector(points ...FaultPoint) *FaultInjector {
	return &FaultInjector{counts: map[FaultOp]int64{}, points: points, sleep: time.Sleep}
}

// Fired reports how many scheduled points have fired so far.
func (fi *FaultInjector) Fired() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.fired
}

// Fire advances op's invocation counter and triggers any point
// scheduled for it: latency sleeps then continues down the schedule,
// an error returns, a panic panics. A nil injector never fires.
func (fi *FaultInjector) Fire(op FaultOp) error {
	if fi == nil {
		return nil
	}
	fi.mu.Lock()
	fi.counts[op]++
	n := fi.counts[op]
	var due []FaultPoint
	for _, p := range fi.points {
		if p.Op == op && p.Invocation == n {
			due = append(due, p)
			fi.fired++
		}
	}
	fi.mu.Unlock()
	for _, p := range due {
		switch p.Kind {
		case FaultLatency:
			fi.sleep(p.Latency)
		case FaultError:
			return fmt.Errorf("%w: %s", ErrInjected, p)
		case FaultPanic:
			panic(fmt.Sprintf("injected panic: %s", p))
		}
	}
	return nil
}

// JournalHook adapts the injector to the journal's BeforeAppend seam.
func (fi *FaultInjector) JournalHook() func(journal.Record) error {
	return func(journal.Record) error { return fi.Fire(OpJournal) }
}

// ParseFaultSpec parses the -inject flag syntax: a comma-separated
// list of points, each "op:kind@n" or "op:latency:dur@n", e.g.
//
//	simulate:panic@2,journal:error@5,simulate:latency:50ms@1
func ParseFaultSpec(s string) ([]FaultPoint, error) {
	var points []FaultPoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		body, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("service: fault point %q: missing @invocation", part)
		}
		n, err := strconv.ParseInt(at, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("service: fault point %q: bad invocation %q", part, at)
		}
		fields := strings.Split(body, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("service: fault point %q: want op:kind", part)
		}
		p := FaultPoint{Op: FaultOp(fields[0]), Kind: FaultKind(fields[1]), Invocation: n}
		switch p.Op {
		case OpSimulate, OpJournal:
		default:
			return nil, fmt.Errorf("service: fault point %q: unknown op %q (valid: simulate, journal)", part, fields[0])
		}
		switch p.Kind {
		case FaultError, FaultPanic:
			if len(fields) != 2 {
				return nil, fmt.Errorf("service: fault point %q: trailing fields", part)
			}
		case FaultLatency:
			if len(fields) != 3 {
				return nil, fmt.Errorf("service: fault point %q: latency needs a duration (op:latency:50ms@n)", part)
			}
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("service: fault point %q: bad duration %q", part, fields[2])
			}
			p.Latency = d
		default:
			return nil, fmt.Errorf("service: fault point %q: unknown kind %q (valid: error, panic, latency)", part, fields[1])
		}
		points = append(points, p)
	}
	if len(points) == 0 {
		return nil, errors.New("service: empty fault spec")
	}
	return points, nil
}
