// The HTTP+JSON surface of the daemon. Routes (Go 1.22 method
// patterns):
//
//	GET    /healthz              liveness and drain state
//	GET    /v1/graphs            registry listing (never forces a load)
//	POST   /v1/jobs              submit a fingers.JobSpec, 202 + status
//	GET    /v1/jobs              all jobs, submission order
//	GET    /v1/jobs/{id}         one job's status (record when terminal)
//	DELETE /v1/jobs/{id}         cancel (idempotent)
//	GET    /v1/jobs/{id}/stream  fingers.run/v1 JSONL: periodic partial
//	                             records while running, the final record
//	                             on completion
//
// Errors are JSON bodies {"error": ...}; an unknown graph name carries
// the valid names and did-you-mean hint from *datasets.NotFoundError.
package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"fingers"
	"fingers/internal/datasets"
	"fingers/internal/telemetry"
)

// maxSpecBytes bounds a POST /v1/jobs body; a JobSpec is tiny.
const maxSpecBytes = 1 << 20

// Server exposes a Manager over HTTP.
type Server struct {
	m *Manager
	// streamInterval is the cadence of partial records on the stream
	// endpoint; default 500 ms.
	streamInterval time.Duration
}

// NewServer wraps the manager. streamInterval <= 0 takes the 500 ms
// default.
func NewServer(m *Manager, streamInterval time.Duration) *Server {
	if streamInterval <= 0 {
		streamInterval = 500 * time.Millisecond
	}
	return &Server{m: m, streamInterval: streamInterval}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

// errorBody is the JSON error envelope. Known and Suggestion are filled
// for unknown-graph 404s from the structured datasets error.
type errorBody struct {
	Error      string   `json:"error"`
	Known      []string `json:"known,omitempty"`
	Suggestion string   `json:"suggestion,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	var nf *datasets.NotFoundError
	if errors.As(err, &nf) {
		body.Known = nf.Known
		body.Suggestion = nf.Suggestion
	}
	writeJSON(w, code, body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.m.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"draining": s.m.Draining(),
	})
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.m.Registry().List()})
}

// handleSubmit admits one job: 202 with the queued status on success;
// 400 for a malformed body or invalid spec, 404 for an unknown graph,
// 429 when the queue is full, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := fingers.DecodeJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.m.Submit(spec)
	if err != nil {
		var nf *datasets.NotFoundError
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.As(err, &nf):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.List()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job "+id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.m.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

// handleStream serves the job as a fingers.run/v1 JSONL stream
// (application/x-ndjson, chunked): one partial record per interval
// while the job is queued or running, then the terminal record. The
// stream ends when the job finishes or the client disconnects; a
// disconnect does not disturb the job. fingerstat's lenient reader
// ingests the stream file with zero skips.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	tick := time.NewTicker(s.streamInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.Done():
			// The terminal record (absent only when the job failed
			// before simulating; then the stream ends with the last
			// partial snapshot).
			if st := j.Status(); st.Record != nil {
				_ = telemetry.WriteRecord(w, *st.Record)
			}
			flush()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if j.State() == StateRunning {
				_ = telemetry.WriteRecord(w, s.m.PartialRecord(j))
				flush()
			}
		}
	}
}
