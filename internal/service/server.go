// The HTTP+JSON surface of the daemon. Routes (Go 1.22 method
// patterns):
//
//	GET    /healthz              liveness: is the process serving at all
//	GET    /readyz               readiness: should a balancer route here
//	GET    /v1/graphs            registry listing (never forces a load)
//	POST   /v1/jobs              submit a fingers.JobSpec, 202 + status
//	GET    /v1/jobs              all jobs, submission order
//	GET    /v1/jobs/{id}         one job's status (record when terminal)
//	DELETE /v1/jobs/{id}         cancel (idempotent)
//	GET    /v1/jobs/{id}/stream  fingers.run/v1 JSONL: periodic partial
//	                             records while running, always closed by
//	                             a terminal record
//
// Submissions are attributed to a client by the X-Client-ID header
// (fallback: the remote address) for rate limiting and fair-share
// accounting; every admission rejection is a 429 with a Retry-After
// header. Errors are JSON bodies {"error": ...}; an unknown graph name
// carries the valid names and did-you-mean hint from
// *datasets.NotFoundError.
package service

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"fingers"
	"fingers/internal/datasets"
	"fingers/internal/telemetry"
)

// maxSpecBytes bounds a POST /v1/jobs body; a JobSpec is tiny.
const maxSpecBytes = 1 << 20

// Server exposes a Manager over HTTP.
type Server struct {
	m *Manager
	// streamInterval is the cadence of partial records on the stream
	// endpoint; default 500 ms.
	streamInterval time.Duration
}

// NewServer wraps the manager. streamInterval <= 0 takes the 500 ms
// default.
func NewServer(m *Manager, streamInterval time.Duration) *Server {
	if streamInterval <= 0 {
		streamInterval = 500 * time.Millisecond
	}
	return &Server{m: m, streamInterval: streamInterval}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

// errorBody is the JSON error envelope. Known and Suggestion are filled
// for unknown-graph 404s from the structured datasets error.
type errorBody struct {
	Error      string   `json:"error"`
	Known      []string `json:"known,omitempty"`
	Suggestion string   `json:"suggestion,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	var nf *datasets.NotFoundError
	if errors.As(err, &nf) {
		body.Known = nf.Known
		body.Suggestion = nf.Suggestion
	}
	writeJSON(w, code, body)
}

// handleHealth is pure liveness: the process is up and serving HTTP.
// It answers 200 even while draining — the process is alive; whether
// it should receive traffic is /readyz's question.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.m.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"draining": s.m.Draining(),
	})
}

// handleReady is readiness: 200 only while the daemon accepts new
// work. A draining daemon or a saturated queue answers 503 so
// balancers and orchestration route around it; the body always carries
// queue depth and the journal-replay summary for operators.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.m.QueueDepth()
	draining := s.m.Draining()
	ready := !draining && depth < capacity
	body := map[string]any{
		"ready":         ready,
		"draining":      draining,
		"queue_depth":   depth,
		"queue_cap":     capacity,
		"queue_latency": s.m.QueueLatency().String(),
		"journal":       s.m.Recovery(),
	}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.m.Registry().List()})
}

// clientID resolves the submitting client's identity: the X-Client-ID
// header when present, else the remote host (without the ephemeral
// port, so one machine is one client across connections).
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterHeader renders a Retry-After value in whole seconds,
// rounding up so a 200 ms hint does not truncate to "0".
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleSubmit admits one job: 202 with the queued status on success;
// 400 for a malformed body or invalid spec, 404 for an unknown graph,
// 429 with Retry-After when the queue is full or an admission limit
// fired, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := fingers.DecodeJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.m.SubmitFrom(clientID(r), spec)
	if err != nil {
		var nf *datasets.NotFoundError
		var adm *AdmissionError
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &adm):
			w.Header().Set("Retry-After", retryAfterHeader(adm.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.As(err, &nf):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.List()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job "+id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.m.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

// handleStream serves the job as a fingers.run/v1 JSONL stream
// (application/x-ndjson, chunked): one partial record per interval
// while the job is queued or running, then a terminal record — the
// job's run record when it produced one, else a final partial snapshot
// stamped with the terminal job_state, so the stream never ends with a
// bare connection close. A client disconnect does not disturb the job.
// fingerstat's lenient reader ingests the stream file with zero skips.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	tick := time.NewTicker(s.streamInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.Done():
			if st := j.Status(); st.Record != nil {
				_ = telemetry.WriteRecord(w, *st.Record)
			} else {
				_ = telemetry.WriteRecord(w, s.m.FinalRecord(j))
			}
			flush()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if j.State() == StateRunning {
				_ = telemetry.WriteRecord(w, s.m.PartialRecord(j))
				flush()
			}
		}
	}
}
