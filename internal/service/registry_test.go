package service

import (
	"errors"
	"sync"
	"testing"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
)

func TestRegistryResolve(t *testing.T) {
	r := NewRegistry()
	for _, tc := range []struct{ in, want string }{
		{"Mi", "Mi"},
		{"mi", "Mi"},   // case-insensitive mnemonic
		{"Mico", "Mi"}, // full dataset name
		{"Lj", "Lj"},
	} {
		got, err := r.Resolve(tc.in)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("Resolve(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRegistryResolveNotFound(t *testing.T) {
	r := NewRegistry()
	r.Add("extra", func() (*graph.Graph, error) { return gen.ErdosRenyi(10, 20, 1), nil })
	_, err := r.Resolve("extro")
	if err == nil {
		t.Fatal("Resolve of unknown name succeeded")
	}
	var nf *datasets.NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("error is %T, want *datasets.NotFoundError", err)
	}
	if nf.Suggestion != "extra" {
		t.Errorf("Suggestion = %q, want %q", nf.Suggestion, "extra")
	}
	found := false
	for _, k := range nf.Known {
		if k == "extra" {
			found = true
		}
	}
	if !found {
		t.Errorf("Known %v does not include the registered extra graph", nf.Known)
	}
}

// TestRegistryBuildOnce hammers one entry from many goroutines and
// checks the build ran exactly once and everyone shares the pointer.
// Run with -race to verify the publication is sound.
func TestRegistryBuildOnce(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	builds := 0
	r.Add("g", func() (*graph.Graph, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return gen.ErdosRenyi(100, 300, 7), nil
	})
	const n = 16
	entries := make([]*GraphEntry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ge, err := r.Get("g")
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = ge
			// List may race with the build; it must never block or crash.
			r.List()
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a different entry pointer", i)
		}
	}
	if entries[0].Hubs == nil {
		t.Error("entry has no hub index")
	}
	if entries[0].Info.Vertices != entries[0].Stats.Vertices {
		t.Error("Info does not mirror Stats")
	}
}

func TestRegistryListNonForcing(t *testing.T) {
	r := NewRegistry()
	built := false
	r.Add("lazy", func() (*graph.Graph, error) {
		built = true
		return gen.ErdosRenyi(10, 20, 3), nil
	})
	var before GraphSummary
	found := false
	for _, s := range r.List() {
		if s.Name == "lazy" {
			before, found = s, true
		}
	}
	if !found {
		t.Fatal("lazy graph missing from List")
	}
	if built || before.Loaded {
		t.Fatal("List forced a load")
	}
	if _, err := r.Get("lazy"); err != nil {
		t.Fatal(err)
	}
	for _, s := range r.List() {
		if s.Name == "lazy" {
			if !s.Loaded || s.Vertices != 10 {
				t.Errorf("after Get: %+v, want loaded with 10 vertices", s)
			}
		}
	}
}

// TestRegistryFootprintColumns loads a dense graph and checks the
// hybrid representation mix flows from the load-time footprint into
// both the shared run-record Info and the /v1/graphs listing row.
func TestRegistryFootprintColumns(t *testing.T) {
	r := NewRegistry()
	g := gen.ErdosRenyi(512, 40000, 7)
	r.Add("dense", func() (*graph.Graph, error) { return g, nil })
	ge, err := r.Get("dense")
	if err != nil {
		t.Fatal(err)
	}
	fp := g.Hybrid().Footprint()
	if fp.DenseRows+fp.BitmapRows == 0 {
		t.Fatal("dense fixture stores no rows; pick a denser graph")
	}
	if ge.Info.DenseRows != fp.DenseRows || ge.Info.BitmapRows != fp.BitmapRows ||
		ge.Info.HybridBytes != fp.HybridBytes() {
		t.Errorf("Info mix = {%d %d %d}, want {%d %d %d}",
			ge.Info.DenseRows, ge.Info.BitmapRows, ge.Info.HybridBytes,
			fp.DenseRows, fp.BitmapRows, fp.HybridBytes())
	}
	for _, s := range r.List() {
		if s.Name != "dense" {
			continue
		}
		if s.DenseRows != fp.DenseRows || s.BitmapRows != fp.BitmapRows ||
			s.HybridBytes != fp.HybridBytes() {
			t.Errorf("List mix = {%d %d %d}, want {%d %d %d}",
				s.DenseRows, s.BitmapRows, s.HybridBytes,
				fp.DenseRows, fp.BitmapRows, fp.HybridBytes())
		}
	}
}

func TestRegistryBuildError(t *testing.T) {
	r := NewRegistry()
	r.Add("bad", func() (*graph.Graph, error) { return nil, errors.New("boom") })
	if _, err := r.Get("bad"); err == nil {
		t.Fatal("Get of failing builder succeeded")
	}
	// The failure is sticky: the build does not retry.
	if _, err := r.Get("bad"); err == nil {
		t.Fatal("second Get of failing builder succeeded")
	}
}
