package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fingers"
	"fingers/internal/datasets"
	"fingers/internal/telemetry"
)

// newTestServer wires a full stack — registry, manager, HTTP handler —
// and tears it down with the test.
func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(NewRegistry(), cfg)
	ts := httptest.NewServer(NewServer(m, 20*time.Millisecond).Handler())
	t.Cleanup(func() {
		ts.Close()
		m.Drain(0)
	})
	return m, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec fingers.JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, m *Manager, id string) *Job {
	t.Helper()
	j, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	return j
}

// TestSubmitMatchesDirectSimulate runs one job through the full HTTP
// path and checks the served record is bit-identical to a direct
// Simulate call with the same spec.
func TestSubmitMatchesDirectSimulate(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 2})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 4}
	st, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	waitDone(t, m, st.ID)
	got := getStatus(t, ts, st.ID)
	if got.State != StateDone {
		t.Fatalf("state %s (err %q), want done", got.State, got.Error)
	}
	if got.Record == nil {
		t.Fatal("done job has no record")
	}

	opts, err := spec.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.ResolveGraph()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fingers.Simulate(fingers.ArchFingers, g, plans, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Record.Count != want.Result.Count || got.Record.Cycles != want.Result.Cycles {
		t.Errorf("served record count=%d cycles=%d, direct Simulate count=%d cycles=%d",
			got.Record.Count, got.Record.Cycles, want.Result.Count, want.Result.Cycles)
	}
	if got.Record.Meta.JobID != st.ID {
		t.Errorf("record job_id %q, want %q", got.Record.Meta.JobID, st.ID)
	}
}

// TestConcurrentJobsShareGraph serves 8 concurrent jobs against one
// registry graph and checks every result is bit-identical to the direct
// run — the shared immutable CSR and hub index must not interfere.
func TestConcurrentJobsShareGraph(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 8, QueueDepth: 16})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2}

	g, err := spec.ResolveGraph()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fingers.Simulate(fingers.ArchFingers, g, plans, opts...)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := postJob(t, ts, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("POST %d: %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		j := waitDone(t, m, id)
		st := j.Status()
		if st.State != StateDone || st.Record == nil {
			t.Fatalf("job %s: state %s err %q", id, st.State, st.Error)
		}
		if st.Record.Count != want.Result.Count || st.Record.Cycles != want.Result.Cycles {
			t.Errorf("job %s: count=%d cycles=%d, want count=%d cycles=%d",
				id, st.Record.Count, st.Record.Cycles, want.Result.Count, want.Result.Cycles)
		}
	}
}

// blockingSim returns a simulate fake that parks until its context is
// canceled (returning a partial report) or release is closed (returning
// a complete one). started receives one value per invocation.
func blockingSim(started chan<- string, release <-chan struct{}) func(context.Context, fingers.Arch, *fingers.Graph, []*fingers.Plan, ...fingers.SimOption) (fingers.SimReport, error) {
	return func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		if started != nil {
			started <- ""
		}
		select {
		case <-ctx.Done():
			return fingers.SimReport{Partial: true}, ctx.Err()
		case <-release:
			return fingers.SimReport{}, nil
		}
	}
}

func TestQueueFull(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	m, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1})
	m.simulate = blockingSim(started, release)
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}

	// First job occupies the worker, second the queue slot.
	st1, _ := postJob(t, ts, spec)
	<-started
	postJob(t, ts, spec)
	// Third must bounce with 429.
	_, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	waitDone(t, m, st1.ID)
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m, ts := newTestServer(t, Config{Concurrency: 1})
	m.simulate = blockingSim(started, release)

	st, _ := postJob(t, ts, fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	j := waitDone(t, m, st.ID)
	got := j.Status()
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if got.Record == nil || !got.Record.Partial {
		t.Error("canceled job should carry a partial record")
	}
}

// TestDeadlinePartialReport gives a real simulation a 1 ms budget and
// expects a deadline_exceeded state with a partial record.
func TestDeadlinePartialReport(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 1})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "5cl", PEs: 1, TimeoutMS: 1}
	st, _ := postJob(t, ts, spec)
	j := waitDone(t, m, st.ID)
	got := j.Status()
	if got.State != StateDeadline {
		t.Fatalf("state %s (err %q), want deadline_exceeded", got.State, got.Error)
	}
	if got.Record == nil || !got.Record.Partial {
		t.Fatal("expired job should carry a partial record")
	}
}

func TestDefaultAndMaxTimeout(t *testing.T) {
	m := NewManager(NewRegistry(), Config{
		Concurrency:    1,
		DefaultTimeout: 250 * time.Millisecond,
		MaxTimeout:     time.Second,
	})
	defer m.Drain(0)
	release := make(chan struct{})
	defer close(release)
	m.simulate = blockingSim(nil, release)

	j1, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Spec.TimeoutMS != 250 {
		t.Errorf("defaulted timeout %d ms, want 250", j1.Spec.TimeoutMS)
	}
	j2, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Spec.TimeoutMS != 1000 {
		t.Errorf("clamped timeout %d ms, want 1000", j2.Spec.TimeoutMS)
	}
}

// TestStreamWellFormed captures a job's stream and feeds it to the
// lenient run-record reader: every line must parse with zero skips and
// the last record must be the complete (non-partial) result.
func TestStreamWellFormed(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 1, ProgressEvery: 64})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 4}
	st, _ := postJob(t, ts, spec)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := telemetry.ReadRecordsLenient(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("lenient reader skipped %d stream lines: %+v", len(skipped), skipped)
	}
	if len(recs) == 0 {
		t.Fatal("empty stream")
	}
	last := recs[len(recs)-1]
	if last.Partial {
		t.Error("final streamed record is partial")
	}
	if last.Schema != telemetry.RunSchema {
		t.Errorf("final schema %q", last.Schema)
	}
	for _, r := range recs[:len(recs)-1] {
		if !r.Partial {
			t.Error("non-final stream record not marked partial")
		}
	}
	waitDone(t, m, st.ID)
}

// TestStreamClientDisconnect drops a streaming client mid-run and
// checks the job is unaffected and completes.
func TestStreamClientDisconnect(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m, ts := newTestServer(t, Config{Concurrency: 1})
	m.simulate = blockingSim(started, release)

	st, _ := postJob(t, ts, fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little, then hang up.
	buf := make([]byte, 1)
	go resp.Body.Read(buf)
	time.Sleep(50 * time.Millisecond)
	cancel()
	resp.Body.Close()

	// The job must still be running, and must complete once released.
	if s := getStatus(t, ts, st.ID); s.State != StateRunning {
		t.Fatalf("after disconnect job state %s, want running", s.State)
	}
	close(release)
	j := waitDone(t, m, st.ID)
	if s := j.Status(); s.State != StateDone {
		t.Fatalf("final state %s, want done", s.State)
	}
}

// TestDrainFlushesPartials starts a long job, drains with a tiny grace,
// and checks the job was interrupted (not canceled — the daemon
// stopped, the client didn't) with its partial record written to the
// run log, and that post-drain submissions bounce with 503.
func TestDrainFlushesPartials(t *testing.T) {
	var logBuf bytes.Buffer
	log := telemetry.NewRunLog(&logBuf)
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m, ts := newTestServer(t, Config{Concurrency: 1, Log: log})
	m.simulate = blockingSim(started, release)

	st, _ := postJob(t, ts, fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", RunTag: "drain-test"})
	<-started
	m.Drain(10 * time.Millisecond)

	j, _ := m.Get(st.ID)
	got := j.Status()
	if got.State != StateInterrupted {
		t.Fatalf("state %s, want interrupted", got.State)
	}
	if got.Record == nil || !got.Record.Partial {
		t.Fatal("drained job should carry a partial record")
	}
	if got.Record.Meta.JobState != string(StateInterrupted) {
		t.Errorf("record job_state %q, want interrupted", got.Record.Meta.JobState)
	}
	recs, skipped, err := telemetry.ReadRecordsLenient(bytes.NewReader(logBuf.Bytes()))
	if err != nil || len(skipped) != 0 {
		t.Fatalf("run log unreadable: %v, skipped %v", err, skipped)
	}
	if len(recs) != 1 || !recs[0].Partial || recs[0].Meta.JobID != st.ID {
		t.Fatalf("run log records %+v, want one partial record for %s", recs, st.ID)
	}

	// Admission is closed now.
	_, resp := postJob(t, ts, fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST: %d, want 503", resp.StatusCode)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m, _ := newTestServer(t, Config{Concurrency: 1, QueueDepth: 2})
	m.simulate = blockingSim(started, release)

	if _, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	m.Cancel(queued.ID)
	close(release) // job 1 completes; the worker then dequeues the canceled job
	j := waitDone(t, m, queued.ID)
	if s := j.State(); s != StateCanceled {
		t.Fatalf("queued-then-canceled job state %s, want canceled", s)
	}
}

func TestUnknownGraph404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, resp := postJob(t, ts, fingers.JobSpec{Arch: "fingers", Graph: "Mii", Pattern: "tc"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"arch":"fingers","graph":"Mii","pattern":"tc"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var body struct {
		Error      string   `json:"error"`
		Known      []string `json:"known"`
		Suggestion string   `json:"suggestion"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Suggestion != "Mi" {
		t.Errorf("suggestion %q, want Mi", body.Suggestion)
	}
	if len(body.Known) == 0 || body.Error == "" {
		t.Errorf("404 body incomplete: %+v", body)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"malformed json": `{"arch":`,
		"unknown field":  `{"arch":"fingers","graph":"As","pattern":"tc","bogus":1}`,
		"bad arch":       `{"arch":"gpu","graph":"As","pattern":"tc"}`,
		"bad pattern":    `{"arch":"fingers","graph":"As","pattern":"nope"}`,
		"negative pes":   `{"arch":"fingers","graph":"As","pattern":"tc","pes":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestGraphsAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gl struct {
		Graphs []GraphSummary `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gl); err != nil {
		t.Fatal(err)
	}
	if len(gl.Graphs) != 6 {
		t.Errorf("listed %d graphs, want the 6 bundled datasets", len(gl.Graphs))
	}
	for _, g := range gl.Graphs {
		if g.Loaded {
			t.Errorf("graph %s loaded before any job", g.Name)
		}
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", h.StatusCode)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestListJobsOrder(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st, _ := postJob(t, ts, fingers.JobSpec{Arch: "flexminer", Graph: "As", Pattern: "tc"})
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, m, id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(out.Jobs))
	}
	for i, j := range out.Jobs {
		if j.ID != ids[i] {
			t.Errorf("job %d is %s, want %s (submission order)", i, j.ID, ids[i])
		}
	}
}

func TestFailedRunNoRecord(t *testing.T) {
	m, _ := newTestServer(t, Config{Concurrency: 1})
	m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		return fingers.SimReport{}, fmt.Errorf("chip exploded")
	}
	j, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	got := j.Status()
	if got.State != StateFailed {
		t.Fatalf("state %s, want failed", got.State)
	}
	if got.Record != nil {
		t.Error("failed run without a simulated prefix should carry no record")
	}
	if !strings.Contains(got.Error, "chip exploded") {
		t.Errorf("error %q", got.Error)
	}
}

// TestSubmitValidatesBeforeQueueing checks an invalid spec is rejected
// by Submit directly (no queue slot consumed) with the structured
// dataset error intact.
func TestSubmitValidatesBeforeQueueing(t *testing.T) {
	m, _ := newTestServer(t, Config{})
	if _, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "", Pattern: "tc"}); err == nil {
		t.Error("empty graph accepted")
	}
	_, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "Oz", Pattern: "tc"})
	if err == nil {
		t.Fatal("unknown graph accepted")
	}
	var nf *datasets.NotFoundError
	if !errors.As(err, &nf) {
		t.Errorf("error %T %q, want *datasets.NotFoundError", err, err)
	}
}
