// Job lifecycle: a bounded admission queue feeding a fixed worker pool.
// Submit validates the spec and resolves its graph name up front (so a
// bad request never occupies a queue slot), the workers run jobs through
// the Simulate façade with per-job cancellation and deadlines, and every
// finished job — complete or partial — produces one fingers.run/v1
// record that is stored on the job and appended to the run log.

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fingers"
	"fingers/internal/accel"
	"fingers/internal/exp"
	"fingers/internal/telemetry"
)

// Sentinel admission errors, mapped by the HTTP layer to 503 and 429.
var (
	// ErrDraining rejects submissions after Drain has begun.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the admission queue is at
	// capacity; the client should back off and retry.
	ErrQueueFull = errors.New("service: job queue is full")
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued means the job is admitted but no worker has taken it.
	StateQueued State = "queued"
	// StateRunning means a worker is simulating the job.
	StateRunning State = "running"
	// StateDone means the simulation completed; the record is full.
	StateDone State = "done"
	// StateCanceled means the job was canceled (by request or drain);
	// a job canceled mid-run carries a partial record.
	StateCanceled State = "canceled"
	// StateDeadline means the per-job deadline expired mid-run; the job
	// carries a partial record covering the simulated prefix.
	StateDeadline State = "deadline_exceeded"
	// StateFailed means the run errored for a non-cancellation reason
	// (a load failure, an invalid configuration, a recovered panic).
	StateFailed State = "failed"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateCanceled, StateDeadline, StateFailed:
		return true
	}
	return false
}

// Job is one admitted simulation request. All mutable fields are
// guarded by mu; Done is closed when the job reaches a terminal state.
type Job struct {
	// ID is the manager-assigned identifier ("job-000001", ...).
	ID string
	// Spec is the validated request, with the graph name canonicalized
	// and the timeout defaulted/clamped at admission.
	Spec fingers.JobSpec

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu          sync.Mutex
	state       State
	err         error
	record      *telemetry.RunRecord
	gi          telemetry.GraphInfo
	giOK        bool
	progress    accel.Progress
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the JSON view of a job returned by the status endpoints.
type JobStatus struct {
	ID    string          `json:"id"`
	State State           `json:"state"`
	Spec  fingers.JobSpec `json:"spec"`
	// Error is the failure or cancellation message of a terminal job.
	Error string `json:"error,omitempty"`
	// Live progress of a running job: scheduler steps executed, the
	// frontmost simulated cycle, and PEs still active.
	Steps  int64 `json:"steps,omitempty"`
	Cycles int64 `json:"cycles,omitempty"`
	Active int   `json:"active_pes,omitempty"`
	// Record is the run record of a terminal job (Partial set when the
	// run was cut short); absent while queued or running.
	Record      *telemetry.RunRecord `json:"record,omitempty"`
	SubmittedAt string               `json:"submitted_at,omitempty"`
	StartedAt   string               `json:"started_at,omitempty"`
	FinishedAt  string               `json:"finished_at,omitempty"`
}

// Status snapshots the job for serialization.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Spec:        j.Spec,
		Steps:       j.progress.Steps,
		Cycles:      int64(j.progress.Now),
		Active:      j.progress.Active,
		Record:      j.record,
		SubmittedAt: rfc3339(j.submittedAt),
		StartedAt:   rfc3339(j.startedAt),
		FinishedAt:  rfc3339(j.finishedAt),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Config shapes a Manager. Zero fields take the documented defaults.
type Config struct {
	// Concurrency is the worker-pool width: how many jobs simulate at
	// once. Default 2.
	Concurrency int
	// QueueDepth bounds the admission queue (jobs admitted but not yet
	// running); a full queue rejects with ErrQueueFull. Default 16.
	QueueDepth int
	// DefaultTimeout is applied to jobs that set no deadline of their
	// own. Zero leaves them unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-job deadlines. Zero means no clamp.
	MaxTimeout time.Duration
	// MaxShards clamps per-job sim_shards requests, bounding how many
	// OS threads one job may fan out across (on top of the façade's own
	// clamp to the PE count). Zero means no clamp.
	MaxShards int
	// ProgressEvery is the scheduler-step interval between live progress
	// snapshots. Default 65536 steps.
	ProgressEvery int64
	// Meta is the session-wide provenance stamp merged into every record
	// (Source, GitRev, host shape, default RunTag).
	Meta telemetry.Meta
	// Log, when non-nil, receives every terminal record (including
	// partial records from canceled and expired jobs).
	Log *telemetry.RunLog
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 65536
	}
	return c
}

// Manager owns the job table, the admission queue, and the worker pool.
type Manager struct {
	cfg        Config
	reg        *Registry
	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	seq      int64
	draining bool

	// simulate is the run entry point, overridable in tests to inject
	// blocking or failing runs without a real chip. ctx is the per-job
	// context (canceled by Cancel, Drain, or process teardown); the
	// default implementation threads it through WithContext.
	simulate func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error)
}

// NewManager starts a manager over the registry with cfg.Concurrency
// workers. Call Drain to stop it.
func NewManager(reg *Registry, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		reg:        reg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       map[string]*Job{},
		simulate: func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
			return fingers.Simulate(arch, g, plans, append(opts, fingers.WithContext(ctx))...)
		},
	}
	for i := 0; i < cfg.Concurrency; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the graph registry the manager serves from.
func (m *Manager) Registry() *Registry { return m.reg }

// Submit validates and admits one job. The spec's graph name is
// canonicalized against the registry (unknown names return the
// *datasets.NotFoundError), the timeout is defaulted and clamped, and
// the job is placed on the admission queue. ErrDraining and ErrQueueFull
// report the two admission failures.
func (m *Manager) Submit(spec fingers.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	canon, err := m.reg.Resolve(spec.Graph)
	if err != nil {
		return nil, err
	}
	spec.Graph = canon
	if spec.TimeoutMS == 0 && m.cfg.DefaultTimeout > 0 {
		spec.TimeoutMS = m.cfg.DefaultTimeout.Milliseconds()
	}
	if m.cfg.MaxTimeout > 0 && spec.Timeout() > m.cfg.MaxTimeout {
		spec.TimeoutMS = m.cfg.MaxTimeout.Milliseconds()
	}
	if m.cfg.MaxShards > 0 && spec.SimShards > m.cfg.MaxShards {
		spec.SimShards = m.cfg.MaxShards
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.seq++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", m.seq),
		Spec:        spec,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       StateQueued,
		submittedAt: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	return j, nil
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Cancel stops the job: a queued job is finalized without running, a
// running job stops within one cancellation quantum and flushes its
// partial record. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.cancel()
	return j, true
}

// Drain stops admission, lets running and queued jobs proceed for up to
// grace, then cancels everything still in flight (which makes each job
// flush its partial record) and waits for the workers to exit. It is
// idempotent; the first call wins.
func (m *Manager) Drain(grace time.Duration) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
			m.baseCancel()
			return
		case <-time.After(grace):
		}
	}
	m.baseCancel()
	<-done
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// worker consumes the admission queue until Drain closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one dequeued job under its per-job context (canceled by
// Cancel, Drain, or its own deadline via WithTimeout inside Simulate).
func (m *Manager) run(j *Job) {
	defer j.cancel()
	if j.ctx.Err() != nil {
		// Canceled while queued: finalize without running.
		m.finish(j, fingers.SimReport{}, context.Cause(j.ctx))
		return
	}

	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = time.Now()
	j.mu.Unlock()

	entry, err := m.reg.Get(j.Spec.Graph)
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	j.mu.Lock()
	j.gi, j.giOK = entry.Info, true
	j.mu.Unlock()

	arch, err := j.Spec.ArchValue()
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	plans, err := j.Spec.Plans()
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	opts, err := j.Spec.ToOptions()
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	opts = append(opts,
		fingers.WithProgress(m.cfg.ProgressEvery, func(p fingers.SimProgress) {
			j.mu.Lock()
			j.progress = p
			j.mu.Unlock()
		}),
	)
	rep, err := m.simulate(j.ctx, arch, entry.Graph, plans, opts...)
	m.finish(j, rep, err)
}

// finish classifies the run outcome, builds the job's record, appends it
// to the run log, and closes Done.
func (m *Manager) finish(j *Job, rep fingers.SimReport, runErr error) {
	state := StateDone
	switch {
	case runErr == nil:
		state = StateDone
	case errors.Is(runErr, context.DeadlineExceeded):
		state = StateDeadline
	case errors.Is(runErr, context.Canceled):
		state = StateCanceled
	default:
		state = StateFailed
	}

	j.mu.Lock()
	j.state = state
	j.err = runErr
	j.finishedAt = time.Now()
	var rec *telemetry.RunRecord
	// A failed run with no simulated prefix (load error, bad config)
	// gets no record; everything else — done, canceled, expired — does.
	if runErr == nil || rep.Partial {
		r := m.buildRecord(j, rep)
		rec = &r
		j.record = rec
	}
	j.mu.Unlock()
	close(j.done)

	if rec != nil && m.cfg.Log != nil {
		_ = m.cfg.Log.Write(*rec)
	}
}

// buildRecord assembles the job's fingers.run/v1 record. Callers hold
// j.mu.
func (m *Manager) buildRecord(j *Job, rep fingers.SimReport) telemetry.RunRecord {
	spec := j.Spec
	pes := spec.PEs
	if pes == 0 {
		pes = 1
	}
	arch, _ := spec.ArchValue()
	rec := exp.NewRunRecordInfo(arch.String(), "service", j.gi, spec.Pattern,
		pes, spec.AcceleratorConfig().NumIUs, spec.CacheBytes(), rep.Result, nil)
	rec.Partial = rep.Partial
	if rep.IU.TotalCycles > 0 {
		rec.IUActiveRate = rep.IU.ActiveRate()
		rec.IUBalanceRate = rep.IU.BalanceRate()
	}
	rec.Meta = telemetry.Meta{
		StartedAt: rfc3339(j.startedAt),
		WallNS:    j.finishedAt.Sub(j.startedAt).Nanoseconds(),
		RunTag:    spec.RunTag,
		JobID:     j.ID,
	}
	if spec.SimShards > 1 {
		// The effective count after the façade's PE clamp, not the
		// requested one, so the record says what actually ran.
		rec.Meta.SimShards = rep.Shards
	}
	m.cfg.Meta.Fill(&rec.Meta)
	return rec
}

// PartialRecord builds a live fingers.run/v1 snapshot of a running job
// for the streaming endpoint: Partial is set, Cycles is the frontmost
// simulated clock, and the counts cover nothing yet (they are only
// known at completion). The lenient readers ingest these unchanged and
// the trend tooling excludes partial records from regression math.
func (m *Manager) PartialRecord(j *Job) telemetry.RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	spec := j.Spec
	pes := spec.PEs
	if pes == 0 {
		pes = 1
	}
	arch, _ := spec.ArchValue()
	res := accel.Result{Cycles: j.progress.Now}
	rec := exp.NewRunRecordInfo(arch.String(), "service", j.gi, spec.Pattern,
		pes, spec.AcceleratorConfig().NumIUs, spec.CacheBytes(), res, nil)
	rec.Partial = true
	rec.Meta = telemetry.Meta{
		StartedAt: rfc3339(j.startedAt),
		RunTag:    spec.RunTag,
		JobID:     j.ID,
		SimShards: spec.SimShards,
	}
	m.cfg.Meta.Fill(&rec.Meta)
	return rec
}
