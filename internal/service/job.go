// Job lifecycle: a bounded admission queue feeding a fixed worker pool,
// made crash-safe by a write-ahead journal. Submit validates the spec,
// applies per-client admission control, and journals the admission
// before acknowledging it (so an acknowledged job survives kill -9);
// workers journal each start; and every outcome — done, canceled,
// failed, interrupted — is journaled before the job's Done channel
// closes. On construction the manager replays the journal: terminal
// jobs are restored for status queries, jobs that were queued or
// running at crash time re-enter the queue in their original
// submission order. Transient failures retry with capped exponential
// backoff under a per-job attempt budget; permanent ones fail fast.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fingers"
	"fingers/internal/accel"
	"fingers/internal/exp"
	"fingers/internal/journal"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// Sentinel admission errors, mapped by the HTTP layer to 503 and 429.
var (
	// ErrDraining rejects submissions after Drain has begun.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the admission queue is at
	// capacity; the client should back off and retry.
	ErrQueueFull = errors.New("service: job queue is full")
)

// Cancellation causes. Both wrap context.Canceled so errors.Is keeps
// working through them; finish inspects context.Cause to tell a
// client-requested cancellation from a shutdown-forced interruption.
var (
	// ErrDrainInterrupted is the cancellation cause Drain applies when
	// the grace period expires: the job did not fail and was not
	// canceled by its owner — the daemon stopped underneath it. Jobs
	// terminated with this cause report (and journal) as interrupted,
	// which a restart resumes.
	ErrDrainInterrupted = fmt.Errorf("service: interrupted by shutdown: %w", context.Canceled)
	// errClientCanceled is the cause applied by Cancel.
	errClientCanceled = fmt.Errorf("service: canceled by request: %w", context.Canceled)
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued means the job is admitted but no worker has taken it
	// (including a job waiting out a retry backoff).
	StateQueued State = "queued"
	// StateRunning means a worker is simulating the job.
	StateRunning State = "running"
	// StateDone means the simulation completed; the record is full.
	StateDone State = "done"
	// StateCanceled means the job was canceled by request; a job
	// canceled mid-run carries a partial record.
	StateCanceled State = "canceled"
	// StateDeadline means the per-job deadline expired mid-run; the job
	// carries a partial record covering the simulated prefix.
	StateDeadline State = "deadline_exceeded"
	// StateFailed means the run errored for a non-cancellation reason
	// and either the failure was permanent or the attempt budget is
	// spent. The job's error is a *Failure carrying the classification.
	StateFailed State = "failed"
	// StateInterrupted means the daemon stopped the job without
	// completing it — drain grace expiry, or a crash detected at
	// journal replay. Interrupted jobs are resumable: restarting the
	// daemon against the same journal re-enqueues them.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether s is a final state for this process
// lifetime. StateInterrupted is terminal in-process but resumable
// across restarts.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateCanceled, StateDeadline, StateFailed, StateInterrupted:
		return true
	}
	return false
}

// eventForState maps a terminal state to its journal event.
func eventForState(s State) string {
	switch s {
	case StateDone:
		return journal.EventDone
	case StateCanceled:
		return journal.EventCanceled
	case StateDeadline:
		return journal.EventDeadline
	case StateInterrupted:
		return journal.EventInterrupted
	default:
		return journal.EventFailed
	}
}

// stateForEvent maps a replayed terminal journal event to its state.
func stateForEvent(ev string) State {
	switch ev {
	case journal.EventDone:
		return StateDone
	case journal.EventCanceled:
		return StateCanceled
	case journal.EventDeadline:
		return StateDeadline
	case journal.EventInterrupted:
		return StateInterrupted
	default:
		return StateFailed
	}
}

// Job is one admitted simulation request. All mutable fields are
// guarded by mu; Done is closed when the job reaches a terminal state.
type Job struct {
	// ID is the manager-assigned identifier ("job-000001", ...).
	ID string
	// Spec is the validated request, with the graph name canonicalized
	// and the timeout defaulted/clamped at admission.
	Spec fingers.JobSpec
	// ClientID is the admitting client's identity (X-Client-ID header
	// or remote address); empty for direct in-process submissions.
	ClientID string
	// Recovered marks a job that lost in-flight work to a crash or
	// drain and was re-enqueued by journal replay.
	Recovered bool

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu          sync.Mutex
	state       State
	attemptN    int // 1-based; the attempt currently running or queued
	retryAt     time.Time
	err         error
	record      *telemetry.RunRecord
	gi          telemetry.GraphInfo
	giOK        bool
	progress    accel.Progress
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Attempt returns the job's current 1-based attempt number.
func (j *Job) Attempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attemptN
}

// JobStatus is the JSON view of a job returned by the status endpoints.
type JobStatus struct {
	ID    string          `json:"id"`
	State State           `json:"state"`
	Spec  fingers.JobSpec `json:"spec"`
	// Attempt is the 1-based attempt number; >1 means the job retried.
	Attempt int `json:"attempt,omitempty"`
	// ClientID is the admitting client, when admission was attributed.
	ClientID string `json:"client_id,omitempty"`
	// RecoveredFromCrash marks a job re-enqueued by journal replay
	// after losing in-flight work.
	RecoveredFromCrash bool `json:"recovered_from_crash,omitempty"`
	// RetryAt is when a queued retry re-enters the queue (RFC 3339);
	// present only between a transient failure and its next attempt.
	RetryAt string `json:"retry_at,omitempty"`
	// Error is the failure or cancellation message of a terminal job
	// (or the last failure of a job waiting to retry); FailureClass is
	// its classification when one was made.
	Error        string `json:"error,omitempty"`
	FailureClass string `json:"failure_class,omitempty"`
	// Live progress of a running job: scheduler steps executed, the
	// frontmost simulated cycle, and PEs still active.
	Steps  int64 `json:"steps,omitempty"`
	Cycles int64 `json:"cycles,omitempty"`
	Active int   `json:"active_pes,omitempty"`
	// Record is the run record of a terminal job (Partial set when the
	// run was cut short); absent while queued or running, and absent
	// from terminal jobs restored by journal replay (the journal holds
	// transitions, not results — the run log holds those).
	Record      *telemetry.RunRecord `json:"record,omitempty"`
	SubmittedAt string               `json:"submitted_at,omitempty"`
	StartedAt   string               `json:"started_at,omitempty"`
	FinishedAt  string               `json:"finished_at,omitempty"`
}

// Status snapshots the job for serialization.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:                 j.ID,
		State:              j.state,
		Spec:               j.Spec,
		Attempt:            j.attemptN,
		ClientID:           j.ClientID,
		RecoveredFromCrash: j.Recovered,
		Steps:              j.progress.Steps,
		Cycles:             int64(j.progress.Now),
		Active:             j.progress.Active,
		Record:             j.record,
		SubmittedAt:        rfc3339(j.submittedAt),
		StartedAt:          rfc3339(j.startedAt),
		FinishedAt:         rfc3339(j.finishedAt),
	}
	if !j.retryAt.IsZero() && j.state == StateQueued {
		st.RetryAt = rfc3339(j.retryAt)
	}
	if j.err != nil {
		st.Error = j.err.Error()
		var f *Failure
		if errors.As(j.err, &f) {
			st.FailureClass = string(f.Class)
		}
	}
	return st
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Config shapes a Manager. Zero fields take the documented defaults.
type Config struct {
	// Concurrency is the worker-pool width: how many jobs simulate at
	// once. Default 2.
	Concurrency int
	// QueueDepth bounds the admission queue (jobs admitted but not yet
	// running); a full queue rejects with ErrQueueFull. Default 16.
	// Journal replay may size the queue larger when more un-terminal
	// jobs than this are recovered.
	QueueDepth int
	// DefaultTimeout is applied to jobs that set no deadline of their
	// own. Zero leaves them unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-job deadlines. Zero means no clamp.
	MaxTimeout time.Duration
	// MaxShards clamps per-job sim_shards requests, bounding how many
	// OS threads one job may fan out across (on top of the façade's own
	// clamp to the PE count). Zero means no clamp.
	MaxShards int
	// ProgressEvery is the scheduler-step interval between live progress
	// snapshots. Default 65536 steps.
	ProgressEvery int64
	// Meta is the session-wide provenance stamp merged into every record
	// (Source, GitRev, host shape, default RunTag).
	Meta telemetry.Meta
	// Log, when non-nil, receives every terminal record (including
	// partial records from canceled and expired jobs).
	Log *telemetry.RunLog
	// Journal, when non-nil, is the write-ahead log of job lifecycle
	// transitions. NewManager replays it (restoring terminal jobs and
	// re-enqueueing un-terminal ones) and every subsequent transition
	// is journaled before it is acknowledged.
	Journal *journal.Journal
	// Retry shapes the transient-failure backoff schedule and the
	// per-job attempt budget.
	Retry RetryPolicy
	// ClientRate, when > 0, token-bucket rate-limits submissions per
	// client to this many jobs/second (burst ClientBurst); violations
	// reject with a Retry-After carrying *AdmissionError.
	ClientRate float64
	// ClientBurst is the token-bucket capacity; default
	// max(ClientRate, 1).
	ClientBurst int
	// MaxQueuedPerClient, when > 0, bounds one client's share of the
	// admission queue: submissions beyond it reject with 429 while the
	// client's earlier jobs are still queued.
	MaxQueuedPerClient int
	// ShedLatency, when > 0, is the queue-latency threshold for load
	// shedding: beyond it, new low-priority jobs are rejected (normal
	// priority at twice the threshold) so the daemon degrades instead
	// of collapsing. High-priority jobs are never shed.
	ShedLatency time.Duration
	// FaultInjector, when non-nil, arms the simulate seam (and, when
	// wired via JournalHook, the journal seam) with a deterministic
	// fault schedule. Testing only.
	FaultInjector *FaultInjector
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 65536
	}
	return c
}

// RecoveryStatus summarizes what journal replay did at construction.
type RecoveryStatus struct {
	// Enabled reports whether a journal is configured at all.
	Enabled bool `json:"enabled"`
	// Records and Skipped count replayed journal records and damaged
	// lines (torn tails, CRC mismatches) the lenient replayer dropped.
	Records int `json:"records"`
	Skipped int `json:"skipped"`
	// RestoredTerminal jobs were terminal in the journal and restored
	// for status queries only.
	RestoredTerminal int `json:"restored_terminal"`
	// Requeued jobs were un-terminal and re-entered the queue in their
	// original submission order.
	Requeued int `json:"requeued"`
	// Interrupted counts requeued jobs that had lost in-flight work
	// (running at crash time, or interrupted by an earlier drain).
	Interrupted int `json:"interrupted"`
	// Unrecoverable jobs could not be resurrected (no usable spec, or
	// attempt budget exhausted) and were journaled as failed.
	Unrecoverable int `json:"unrecoverable"`
	// AppendErrors counts journal appends that have failed since boot
	// (the daemon keeps serving, but durability is degraded).
	AppendErrors int64 `json:"append_errors"`
}

// Manager owns the job table, the admission queue, and the worker pool.
type Manager struct {
	cfg        Config
	policy     RetryPolicy
	reg        *Registry
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	seq      int64
	draining bool
	buckets  map[string]*tokenBucket
	queuedAt map[string]time.Time
	queuedBy map[string]int
	recovery RecoveryStatus

	journalErrs atomic.Int64

	// now is the clock, overridable in admission tests.
	now func() time.Time

	// simulate is the run entry point, overridable in tests to inject
	// blocking or failing runs without a real chip. ctx is the per-job
	// context (canceled by Cancel, Drain, or process teardown); the
	// default implementation threads it through WithContext.
	simulate func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error)
}

// NewManager starts a manager over the registry with cfg.Concurrency
// workers, replaying cfg.Journal first when one is configured. Call
// Drain to stop it.
func NewManager(reg *Registry, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	m := &Manager{
		cfg:        cfg,
		policy:     cfg.Retry.withDefaults(),
		reg:        reg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		buckets:    map[string]*tokenBucket{},
		queuedAt:   map[string]time.Time{},
		queuedBy:   map[string]int{},
		now:        time.Now,
		simulate: func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
			return fingers.Simulate(arch, g, plans, append(opts, fingers.WithContext(ctx))...)
		},
	}
	pending := m.recoverJobs()
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	m.queue = make(chan *Job, depth)
	for _, j := range pending {
		m.queue <- j
		m.queuedAt[j.ID] = m.now()
		if j.ClientID != "" {
			m.queuedBy[j.ClientID]++
		}
	}
	for i := 0; i < cfg.Concurrency; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// recoverJobs replays the configured journal into the job table:
// terminal jobs are restored as history, un-terminal jobs return as
// the re-enqueue list in original submission order. Jobs that were
// running at crash time get an interrupted record appended now, their
// attempt advanced, and the recovered-from-crash mark.
func (m *Manager) recoverJobs() []*Job {
	jn := m.cfg.Journal
	if jn == nil {
		return nil
	}
	recs := jn.Replayed()
	m.recovery = RecoveryStatus{Enabled: true, Records: len(recs), Skipped: len(jn.Skips())}
	var pending []*Job
	for _, st := range journal.Reduce(recs) {
		var n int64
		if _, err := fmt.Sscanf(st.Job, "job-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		jctx, cancel := context.WithCancelCause(m.baseCtx)
		j := &Job{ID: st.Job, ClientID: st.Client, ctx: jctx, cancel: cancel, done: make(chan struct{})}
		j.attemptN = st.Attempt
		if j.attemptN < 1 {
			j.attemptN = 1
		}
		switch {
		case journal.Terminal(st.Event):
			j.state = stateForEvent(st.Event)
			if st.Err != "" {
				j.err = errors.New(st.Err)
			}
			if len(st.Spec) > 0 {
				_ = json.Unmarshal(st.Spec, &j.Spec)
			}
			cancel(nil)
			close(j.done)
			m.recovery.RestoredTerminal++
		default:
			var spec fingers.JobSpec
			if len(st.Spec) == 0 || json.Unmarshal(st.Spec, &spec) != nil {
				j.state = StateFailed
				j.err = &Failure{Class: ClassPermanent, Attempt: j.attemptN,
					Err: errors.New("service: journal replay: no usable spec")}
				m.appendJournal(journal.Record{Job: j.ID, Event: journal.EventFailed,
					Attempt: j.attemptN, Client: j.ClientID, Err: j.err.Error()})
				cancel(nil)
				close(j.done)
				m.recovery.Unrecoverable++
				break
			}
			j.Spec = spec
			if st.Event == journal.EventStarted {
				// The in-flight attempt died with the process: journal
				// the interruption the crash prevented, then retry.
				m.appendJournal(journal.Record{Job: j.ID, Event: journal.EventInterrupted,
					Attempt: j.attemptN, Client: j.ClientID, Err: ErrDrainInterrupted.Error()})
				j.attemptN++
				j.Recovered = true
				m.recovery.Interrupted++
			}
			if st.Event == journal.EventInterrupted {
				j.Recovered = true
				m.recovery.Interrupted++
			}
			if j.attemptN > m.policy.Budget(spec) {
				j.state = StateFailed
				j.err = &Failure{Class: ClassTransient, Attempt: j.attemptN,
					Err: errors.New("service: attempt budget exhausted recovering from crash")}
				m.appendJournal(journal.Record{Job: j.ID, Event: journal.EventFailed,
					Attempt: j.attemptN, Client: j.ClientID, Err: j.err.Error()})
				cancel(nil)
				close(j.done)
				m.recovery.Unrecoverable++
				break
			}
			j.state = StateQueued
			j.submittedAt = m.now()
			pending = append(pending, j)
			m.recovery.Requeued++
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
	}
	return pending
}

// Recovery reports the journal replay summary plus the live count of
// failed appends since boot.
func (m *Manager) Recovery() RecoveryStatus {
	m.mu.Lock()
	rs := m.recovery
	m.mu.Unlock()
	rs.AppendErrors = m.journalErrs.Load()
	return rs
}

// QueueDepth reports (queued jobs, queue capacity).
func (m *Manager) QueueDepth() (int, int) {
	return len(m.queue), cap(m.queue)
}

// appendJournal writes one record to the journal, if configured.
// Append failures are counted (and surfaced via Recovery) but do not
// stop the daemon: a lost transition means at worst that a restart
// re-runs the affected job.
func (m *Manager) appendJournal(rec journal.Record) error {
	jn := m.cfg.Journal
	if jn == nil {
		return nil
	}
	if rec.At == "" {
		rec.At = m.now().UTC().Format(time.RFC3339Nano)
	}
	if _, err := jn.Append(rec); err != nil {
		m.journalErrs.Add(1)
		return err
	}
	return nil
}

// journalEvent journals one transition of j. specToo attaches the full
// serialized spec (submitted and requeued events, so replay can
// reconstruct the job from its journal suffix alone).
func (m *Manager) journalEvent(j *Job, event string, attempt int, errMsg string, specToo bool) error {
	rec := journal.Record{Job: j.ID, Event: event, Attempt: attempt, Client: j.ClientID, Err: errMsg}
	if specToo {
		if b, err := json.Marshal(j.Spec); err == nil {
			rec.Spec = b
		}
	}
	return m.appendJournal(rec)
}

// Registry returns the graph registry the manager serves from.
func (m *Manager) Registry() *Registry { return m.reg }

// Submit validates and admits one job with no client attribution.
func (m *Manager) Submit(spec fingers.JobSpec) (*Job, error) {
	return m.SubmitFrom("", spec)
}

// SubmitFrom validates and admits one job on behalf of clientID. The
// spec's graph name is canonicalized against the registry (unknown
// names return the *datasets.NotFoundError), the timeout is defaulted
// and clamped, per-client admission control is applied (rate limit,
// queue fair share, load shedding — each rejecting with an
// *AdmissionError), the admission is journaled, and the job is placed
// on the queue. ErrDraining and ErrQueueFull report the two queue-level
// admission failures.
func (m *Manager) SubmitFrom(clientID string, spec fingers.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	canon, err := m.reg.Resolve(spec.Graph)
	if err != nil {
		return nil, err
	}
	spec.Graph = canon
	if spec.TimeoutMS == 0 && m.cfg.DefaultTimeout > 0 {
		spec.TimeoutMS = m.cfg.DefaultTimeout.Milliseconds()
	}
	if m.cfg.MaxTimeout > 0 && spec.Timeout() > m.cfg.MaxTimeout {
		spec.TimeoutMS = m.cfg.MaxTimeout.Milliseconds()
	}
	if m.cfg.MaxShards > 0 && spec.SimShards > m.cfg.MaxShards {
		spec.SimShards = m.cfg.MaxShards
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	now := m.now()
	if err := m.admitLocked(clientID, spec, now); err != nil {
		return nil, err
	}
	if len(m.queue) == cap(m.queue) {
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, cap(m.queue))
	}
	m.seq++
	ctx, cancel := context.WithCancelCause(m.baseCtx)
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", m.seq),
		Spec:        spec,
		ClientID:    clientID,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       StateQueued,
		attemptN:    1,
		submittedAt: now,
	}
	// Write-ahead: the admission is durable before it is acknowledged.
	// A failed append rejects the submission — accepting a job the
	// journal does not know about would break the recovery invariant.
	if err := m.journalEvent(j, journal.EventSubmitted, 1, "", true); err != nil {
		cancel(nil)
		m.seq--
		return nil, fmt.Errorf("service: journal admission: %w", err)
	}
	m.queue <- j // cannot block: capacity was checked under this lock
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.queuedAt[j.ID] = now
	if clientID != "" {
		m.queuedBy[clientID]++
	}
	return j, nil
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Cancel stops the job: a queued job is finalized without running, a
// running job stops within one cancellation quantum and flushes its
// partial record, a job waiting out a retry backoff is finalized
// immediately. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	j.cancel(errClientCanceled)
	return j, true
}

// Drain stops admission, lets running and queued jobs proceed for up to
// grace, then cancels everything still in flight with the
// ErrDrainInterrupted cause — so those jobs finalize (and journal) as
// interrupted, resumable by a restart — and waits for the workers and
// retry waiters to exit. It is idempotent; the first call wins.
func (m *Manager) Drain(grace time.Duration) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
			m.baseCancel(ErrDrainInterrupted)
			return
		case <-time.After(grace):
		}
	}
	m.baseCancel(ErrDrainInterrupted)
	<-done
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// worker consumes the admission queue until Drain closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// dequeued updates the admission bookkeeping when a worker takes j.
func (m *Manager) dequeued(j *Job) {
	m.mu.Lock()
	delete(m.queuedAt, j.ID)
	if j.ClientID != "" {
		if m.queuedBy[j.ClientID]--; m.queuedBy[j.ClientID] <= 0 {
			delete(m.queuedBy, j.ClientID)
		}
	}
	m.mu.Unlock()
}

// run executes one dequeued job under its per-job context (canceled by
// Cancel, Drain, or its own deadline via WithTimeout inside Simulate).
func (m *Manager) run(j *Job) {
	m.dequeued(j)
	if j.ctx.Err() != nil {
		// Canceled while queued: finalize without running.
		m.finish(j, fingers.SimReport{}, context.Cause(j.ctx))
		return
	}

	attempt := j.Attempt()
	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = m.now()
	j.retryAt = time.Time{}
	j.mu.Unlock()
	_ = m.journalEvent(j, journal.EventStarted, attempt, "", false)

	entry, err := m.reg.Get(j.Spec.Graph)
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	j.mu.Lock()
	j.gi, j.giOK = entry.Info, true
	j.mu.Unlock()

	arch, err := j.Spec.ArchValue()
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	plans, err := j.Spec.Plans()
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	opts, err := j.Spec.ToOptions()
	if err != nil {
		m.finish(j, fingers.SimReport{}, err)
		return
	}
	opts = append(opts,
		fingers.WithProgress(m.cfg.ProgressEvery, func(p fingers.SimProgress) {
			j.mu.Lock()
			j.progress = p
			j.mu.Unlock()
		}),
	)
	rep, err := m.runSimulate(j, arch, entry.Graph, plans, opts)
	m.finish(j, rep, err)
}

// runSimulate is the injectable simulate seam: the fault injector
// fires first, and a panic anywhere below (an injected one, or a stub
// in tests — the real Simulate recovers its own) is converted to a
// *simerr.SimError so it classifies as transient instead of killing
// the worker.
func (m *Manager) runSimulate(j *Job, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts []fingers.SimOption) (rep fingers.SimReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = simerr.FromPanic("service", simerr.NoPE, 0, simerr.NoRoot, r)
		}
	}()
	if err := m.cfg.FaultInjector.Fire(OpSimulate); err != nil {
		return fingers.SimReport{}, err
	}
	return m.simulate(j.ctx, arch, g, plans, opts...)
}

// finish classifies the run outcome. Terminal outcomes journal their
// event, build the job's record, append it to the run log, and close
// Done; retryable failures re-enter the queue after a backoff instead.
func (m *Manager) finish(j *Job, rep fingers.SimReport, runErr error) {
	state := StateDone
	switch {
	case runErr == nil:
		state = StateDone
	case errors.Is(runErr, context.DeadlineExceeded):
		state = StateDeadline
	case errors.Is(runErr, context.Canceled):
		if errors.Is(context.Cause(j.ctx), ErrDrainInterrupted) {
			state = StateInterrupted
		} else {
			state = StateCanceled
		}
	default:
		state = StateFailed
	}

	var jobErr error = runErr
	if state == StateFailed || state == StateDeadline {
		attempt := j.Attempt()
		failure := &Failure{Class: Classify(runErr), Attempt: attempt, Err: runErr}
		if state == StateFailed {
			jobErr = failure
		}
		if failure.Retryable(j.Spec) && attempt < m.policy.Budget(j.Spec) &&
			j.ctx.Err() == nil && !m.Draining() {
			failure.RetryAfter = m.policy.Backoff(attempt)
			m.requeue(j, failure)
			return
		}
	}
	m.terminate(j, state, jobErr, rep, runErr)
}

// requeue journals the retry and parks the job until its backoff
// expires, then re-enqueues it. The job stays visible as queued (with
// retry_at) in the meantime; cancellation and drain abort the wait.
func (m *Manager) requeue(j *Job, failure *Failure) {
	j.mu.Lock()
	j.attemptN++
	attempt := j.attemptN
	j.state = StateQueued
	j.err = failure
	j.record = nil
	j.progress = accel.Progress{}
	j.retryAt = m.now().Add(failure.RetryAfter)
	j.mu.Unlock()
	_ = m.journalEvent(j, journal.EventRequeued, attempt, failure.Err.Error(), true)
	m.wg.Add(1)
	go m.retryWaiter(j, failure.RetryAfter)
}

// retryWaiter sleeps out the backoff and pushes the job back on the
// queue; cancellation or drain during the wait finalizes the job
// instead (canceled or interrupted by cause).
func (m *Manager) retryWaiter(j *Job, delay time.Duration) {
	defer m.wg.Done()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-j.ctx.Done():
			m.finish(j, fingers.SimReport{}, context.Cause(j.ctx))
			return
		case <-timer.C:
		}
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			m.finish(j, fingers.SimReport{}, ErrDrainInterrupted)
			return
		}
		select {
		case m.queue <- j:
			m.queuedAt[j.ID] = m.now()
			if j.ClientID != "" {
				m.queuedBy[j.ClientID]++
			}
			m.mu.Unlock()
			return
		default:
			// Queue momentarily full; try again shortly. The slot race
			// is benign — the job already passed admission.
			m.mu.Unlock()
			timer.Reset(50 * time.Millisecond)
		}
	}
}

// terminate finalizes j: terminal state, journal event, record, run
// log, Done. Idempotent — the first terminal transition wins.
func (m *Manager) terminate(j *Job, state State, jobErr error, rep fingers.SimReport, runErr error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = jobErr
	j.finishedAt = m.now()
	var rec *telemetry.RunRecord
	// A failed run with no simulated prefix (load error, bad config)
	// gets no record; everything else — done, canceled, expired,
	// interrupted — does.
	if runErr == nil || rep.Partial {
		r := m.buildRecord(j, rep)
		rec = &r
		j.record = rec
	}
	attempt := j.attemptN
	j.mu.Unlock()
	errMsg := ""
	if jobErr != nil {
		errMsg = jobErr.Error()
	}
	_ = m.journalEvent(j, eventForState(state), attempt, errMsg, false)
	close(j.done)

	if rec != nil && m.cfg.Log != nil {
		_ = m.cfg.Log.Write(*rec)
	}
}

// buildRecord assembles the job's fingers.run/v1 record. Callers hold
// j.mu.
func (m *Manager) buildRecord(j *Job, rep fingers.SimReport) telemetry.RunRecord {
	spec := j.Spec
	pes := spec.PEs
	if pes == 0 {
		pes = 1
	}
	arch, _ := spec.ArchValue()
	rec := exp.NewRunRecordInfo(arch.String(), "service", j.gi, spec.Pattern,
		pes, spec.AcceleratorConfig().NumIUs, spec.CacheBytes(), rep.Result, nil)
	rec.Partial = rep.Partial
	if rep.IU.TotalCycles > 0 {
		rec.IUActiveRate = rep.IU.ActiveRate()
		rec.IUBalanceRate = rep.IU.BalanceRate()
	}
	rec.Meta = telemetry.Meta{
		StartedAt:          rfc3339(j.startedAt),
		WallNS:             j.finishedAt.Sub(j.startedAt).Nanoseconds(),
		RunTag:             spec.RunTag,
		JobID:              j.ID,
		JobState:           string(j.state),
		Attempt:            j.attemptN,
		ClientID:           j.ClientID,
		RecoveredFromCrash: j.Recovered,
	}
	if spec.SimShards > 1 {
		// The effective count after the façade's PE clamp, not the
		// requested one, so the record says what actually ran.
		rec.Meta.SimShards = rep.Shards
	}
	m.cfg.Meta.Fill(&rec.Meta)
	return rec
}

// PartialRecord builds a live fingers.run/v1 snapshot of a running job
// for the streaming endpoint: Partial is set, Cycles is the frontmost
// simulated clock, and the counts cover nothing yet (they are only
// known at completion). The lenient readers ingest these unchanged and
// the trend tooling excludes partial records from regression math.
func (m *Manager) PartialRecord(j *Job) telemetry.RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return m.liveRecord(j)
}

// FinalRecord builds the stream's closing record for a terminal job
// that produced no run record of its own (it failed before
// simulating): a partial snapshot stamped with the terminal state, so
// stream clients always see how the job ended instead of a bare
// connection close.
func (m *Manager) FinalRecord(j *Job) telemetry.RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := m.liveRecord(j)
	rec.Meta.JobState = string(j.state)
	return rec
}

// liveRecord is the shared snapshot builder. Callers hold j.mu.
func (m *Manager) liveRecord(j *Job) telemetry.RunRecord {
	spec := j.Spec
	pes := spec.PEs
	if pes == 0 {
		pes = 1
	}
	arch, _ := spec.ArchValue()
	res := accel.Result{Cycles: j.progress.Now}
	rec := exp.NewRunRecordInfo(arch.String(), "service", j.gi, spec.Pattern,
		pes, spec.AcceleratorConfig().NumIUs, spec.CacheBytes(), res, nil)
	rec.Partial = true
	rec.Meta = telemetry.Meta{
		StartedAt:          rfc3339(j.startedAt),
		RunTag:             spec.RunTag,
		JobID:              j.ID,
		SimShards:          spec.SimShards,
		Attempt:            j.attemptN,
		ClientID:           j.ClientID,
		RecoveredFromCrash: j.Recovered,
	}
	m.cfg.Meta.Fill(&rec.Meta)
	return rec
}
