package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fingers"
	"fingers/internal/datasets"
	"fingers/internal/simerr"
)

// TestClassify drives the classifier over every error shape the run
// path can produce, including sentinels wrapped by engine layers.
func TestClassify(t *testing.T) {
	simPanic := simerr.FromPanic("serial", 3, 1000, 42, "index out of range")
	simCancel := simerr.Cancelled("parallel", 500, context.Canceled)
	simDeadline := simerr.Cancelled("serial", 500, context.DeadlineExceeded)
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, ClassPermanent},
		{"deadline", context.DeadlineExceeded, ClassDeadline},
		{"canceled", context.Canceled, ClassCanceled},
		{"wrapped deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), ClassDeadline},
		{"wrapped canceled", fmt.Errorf("run: %w", context.Canceled), ClassCanceled},
		{"simerr cancellation", simCancel, ClassCanceled},
		{"simerr deadline", simDeadline, ClassDeadline},
		{"simerr panic", simPanic, ClassTransient},
		{"wrapped simerr panic", fmt.Errorf("facade: %w", simPanic), ClassTransient},
		{"retryable marker", fmt.Errorf("flaky: %w", ErrRetryable), ClassTransient},
		{"injected fault", fmt.Errorf("%w: simulate:error@1", ErrInjected), ClassTransient},
		{"malformed graph", fmt.Errorf("load: %w", fingers.ErrMalformedGraph), ClassPermanent},
		{"invalid plan", fmt.Errorf("compile: %w", fingers.ErrInvalidPlan), ClassPermanent},
		{"unknown dataset", &datasets.NotFoundError{Name: "Oz"}, ClassPermanent},
		{"wrapped unknown dataset", fmt.Errorf("resolve: %w", &datasets.NotFoundError{Name: "Oz"}), ClassPermanent},
		{"arbitrary error", errors.New("chip exploded"), ClassPermanent},
		{"drain interruption", ErrDrainInterrupted, ClassCanceled},
		{"client cancel cause", errClientCanceled, ClassCanceled},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestFailureRetryable pins the class × spec retry matrix: transient
// always retries, deadline only with a client attempt budget, the rest
// never.
func TestFailureRetryable(t *testing.T) {
	plain := fingers.JobSpec{}
	budgeted := fingers.JobSpec{MaxAttempts: 3}
	cases := []struct {
		class FailureClass
		spec  fingers.JobSpec
		want  bool
	}{
		{ClassTransient, plain, true},
		{ClassTransient, budgeted, true},
		{ClassDeadline, plain, false},
		{ClassDeadline, fingers.JobSpec{MaxAttempts: 1}, false},
		{ClassDeadline, budgeted, true},
		{ClassPermanent, budgeted, false},
		{ClassCanceled, budgeted, false},
	}
	for _, tc := range cases {
		f := &Failure{Class: tc.class, Err: errors.New("x")}
		if got := f.Retryable(tc.spec); got != tc.want {
			t.Errorf("Retryable(%s, max_attempts=%d) = %v, want %v",
				tc.class, tc.spec.MaxAttempts, got, tc.want)
		}
	}
}

// TestBackoffMonotone checks the schedule is monotone non-decreasing
// in the attempt number across several seeds, bounded below by
// BaseDelay and above by MaxDelay.
func TestBackoffMonotone(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: seed}
		prev := time.Duration(0)
		for failed := 1; failed <= 12; failed++ {
			d := p.Backoff(failed)
			if d < prev {
				t.Fatalf("seed %d: backoff(%d) = %s < backoff(%d) = %s — not monotone",
					seed, failed, d, failed-1, prev)
			}
			if d < p.BaseDelay {
				t.Errorf("seed %d: backoff(%d) = %s below base %s", seed, failed, d, p.BaseDelay)
			}
			if d > p.MaxDelay {
				t.Errorf("seed %d: backoff(%d) = %s above cap %s", seed, failed, d, p.MaxDelay)
			}
			prev = d
		}
		if p.Backoff(12) != p.MaxDelay {
			t.Errorf("seed %d: deep backoff %s never reached the cap %s", seed, p.Backoff(12), p.MaxDelay)
		}
	}
}

// TestBackoffDeterministic: equal (seed, attempt) pairs produce equal
// delays; the schedule carries no wall-clock or global-RNG dependence.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Seed: 99}
	for failed := 1; failed <= 6; failed++ {
		a, b := p.Backoff(failed), p.Backoff(failed)
		if a != b {
			t.Fatalf("backoff(%d) nondeterministic: %s vs %s", failed, a, b)
		}
	}
	q := RetryPolicy{Seed: 100}
	same := true
	for failed := 1; failed <= 4; failed++ {
		if p.Backoff(failed) != q.Backoff(failed) {
			same = false
		}
	}
	if same {
		t.Error("two seeds produced identical jitter everywhere — jitter inert?")
	}
}

// TestBudget pins the client/server attempt-budget clamp.
func TestBudget(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5}
	cases := []struct {
		specMax, want int
	}{
		{0, 5}, // unset → server default
		{1, 1}, // client disables retries
		{3, 3}, // under the cap → honored
		{9, 5}, // over the cap → clamped
	}
	for _, tc := range cases {
		if got := p.Budget(fingers.JobSpec{MaxAttempts: tc.specMax}); got != tc.want {
			t.Errorf("Budget(max_attempts=%d) = %d, want %d", tc.specMax, got, tc.want)
		}
	}
	if got := (RetryPolicy{}).Budget(fingers.JobSpec{}); got != 3 {
		t.Errorf("zero policy budget = %d, want default 3", got)
	}
}

// TestTransientFailureRetriesThenSucceeds fails the first attempt with
// a recovered-panic shape and lets the second succeed: the job must
// end done on attempt 2 with the attempt stamped into its record.
func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	m, _ := newTestServer(t, Config{
		Concurrency: 1,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	calls := 0
	m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		calls++
		if calls == 1 {
			return fingers.SimReport{}, simerr.FromPanic("serial", 0, 10, 5, "flaky")
		}
		return fingers.SimReport{}, nil
	}
	j, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempt != 2 {
		t.Errorf("attempt %d, want 2", st.Attempt)
	}
	if st.Record == nil || st.Record.Meta.Attempt != 2 {
		t.Errorf("record attempt not stamped: %+v", st.Record)
	}
	if calls != 2 {
		t.Errorf("simulate called %d times, want 2", calls)
	}
}

// TestTransientFailureExhaustsBudget fails every attempt and checks
// the job terminates failed with the transient class and the full
// budget consumed — no infinite retry loop.
func TestTransientFailureExhaustsBudget(t *testing.T) {
	m, _ := newTestServer(t, Config{
		Concurrency: 1,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	calls := 0
	m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		calls++
		return fingers.SimReport{}, fmt.Errorf("always flaky: %w", ErrRetryable)
	}
	j, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	st := j.Status()
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed", st.State)
	}
	if st.FailureClass != string(ClassTransient) {
		t.Errorf("failure class %q, want transient", st.FailureClass)
	}
	if st.Attempt != 3 || calls != 3 {
		t.Errorf("attempt %d after %d calls, want 3 and 3", st.Attempt, calls)
	}
}

// TestPermanentFailureFailsFast: a permanent error consumes exactly
// one attempt even with budget to spare.
func TestPermanentFailureFailsFast(t *testing.T) {
	m, _ := newTestServer(t, Config{
		Concurrency: 1,
		Retry:       RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
	})
	calls := 0
	m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		calls++
		return fingers.SimReport{}, fmt.Errorf("bad input: %w", fingers.ErrMalformedGraph)
	}
	j, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	st := j.Status()
	if st.State != StateFailed || st.FailureClass != string(ClassPermanent) {
		t.Fatalf("state %s class %s, want failed/permanent", st.State, st.FailureClass)
	}
	if calls != 1 {
		t.Errorf("simulate called %d times, want 1 (fail fast)", calls)
	}
}

// TestDeadlineRetryOnlyWithBudget: a deadline expiry retries only when
// the client set max_attempts > 1.
func TestDeadlineRetryOnlyWithBudget(t *testing.T) {
	for _, tc := range []struct {
		name        string
		maxAttempts int
		wantCalls   int
		wantState   State
	}{
		{"no budget", 0, 1, StateDeadline},
		{"budgeted", 2, 2, StateDeadline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := newTestServer(t, Config{
				Concurrency: 1,
				Retry:       RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
			})
			calls := 0
			m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
				calls++
				return fingers.SimReport{Partial: true}, fmt.Errorf("sim: %w", context.DeadlineExceeded)
			}
			j, err := m.Submit(fingers.JobSpec{
				Arch: "fingers", Graph: "As", Pattern: "tc",
				TimeoutMS: 50, MaxAttempts: tc.maxAttempts,
			})
			if err != nil {
				t.Fatal(err)
			}
			waitDone(t, m, j.ID)
			st := j.Status()
			if st.State != tc.wantState {
				t.Fatalf("state %s, want %s", st.State, tc.wantState)
			}
			if calls != tc.wantCalls {
				t.Errorf("simulate called %d times, want %d", calls, tc.wantCalls)
			}
			if st.Record == nil || !st.Record.Partial {
				t.Error("deadline-expired job should carry the partial record of its last attempt")
			}
		})
	}
}

// TestCancelDuringBackoffWait cancels a job parked between attempts
// and checks it finalizes canceled without another run.
func TestCancelDuringBackoffWait(t *testing.T) {
	m, _ := newTestServer(t, Config{
		Concurrency: 1,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: 2 * time.Hour},
	})
	calls := 0
	m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		calls++
		return fingers.SimReport{}, fmt.Errorf("flaky: %w", ErrRetryable)
	}
	j, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is parked (queued with retry_at set).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := j.Status()
		if st.State == StateQueued && st.RetryAt != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never parked for retry; state %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	m.Cancel(j.ID)
	waitDone(t, m, j.ID)
	if st := j.Status(); st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if calls != 1 {
		t.Errorf("simulate ran %d times, want 1 — cancel must abort the backoff wait", calls)
	}
}

// TestInjectedPanicIsTransient: a simulate-seam panic from the fault
// injector classifies transient and the retry succeeds.
func TestInjectedPanicIsTransient(t *testing.T) {
	fi := NewFaultInjector(FaultPoint{Op: OpSimulate, Kind: FaultPanic, Invocation: 1})
	m, _ := newTestServer(t, Config{
		Concurrency:   1,
		Retry:         RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		FaultInjector: fi,
	})
	j, err := m.Submit(fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done after retrying past the injected panic", st.State, st.Error)
	}
	if st.Attempt != 2 {
		t.Errorf("attempt %d, want 2", st.Attempt)
	}
	if fi.Fired() != 1 {
		t.Errorf("injector fired %d times, want 1", fi.Fired())
	}
}

// TestParseFaultSpec pins the -inject flag grammar.
func TestParseFaultSpec(t *testing.T) {
	pts, err := ParseFaultSpec("simulate:panic@2, journal:error@5 ,simulate:latency:50ms@1")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("parsed %d points, want 3", len(pts))
	}
	if pts[0].Op != OpSimulate || pts[0].Kind != FaultPanic || pts[0].Invocation != 2 {
		t.Errorf("point 0: %+v", pts[0])
	}
	if pts[2].Kind != FaultLatency || pts[2].Latency != 50*time.Millisecond {
		t.Errorf("point 2: %+v", pts[2])
	}
	for _, bad := range []string{
		"", "simulate:panic", "simulate@1", "simulate:panic@0", "simulate:panic@x",
		"disk:error@1", "simulate:melt@1", "simulate:latency@1", "simulate:latency:zzz@1",
		"simulate:error:extra@1",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}
