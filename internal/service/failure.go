// Failure classification and retry policy: the piece of the service
// layer that decides, for every run error, whether the job dies now or
// re-enters the queue. Transient failures — recovered simulation
// panics, injected faults, deadline expiries the client budgeted
// retries for — back off exponentially (capped, with deterministic
// jitter) under a per-job attempt budget; permanent failures — a
// malformed graph, an invalid plan, a spec that never validated — fail
// fast on the first attempt, because re-running them can only waste a
// queue slot.

package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"fingers"
	"fingers/internal/datasets"
	"fingers/internal/simerr"
)

// FailureClass partitions run errors by what the service should do
// about them.
type FailureClass string

const (
	// ClassTransient failures may succeed on a retry: recovered panics
	// from either engine, injected faults, marked-retryable errors.
	ClassTransient FailureClass = "transient"
	// ClassPermanent failures will fail identically on every attempt:
	// malformed graphs, invalid plans, unknown datasets, spec errors.
	ClassPermanent FailureClass = "permanent"
	// ClassCanceled is a client- or shutdown-initiated cancellation —
	// not a failure; never retried by the service on its own.
	ClassCanceled FailureClass = "canceled"
	// ClassDeadline is a per-job deadline expiry. Retried only when the
	// client budgeted more than one attempt (JobSpec.MaxAttempts > 1).
	ClassDeadline FailureClass = "deadline"
)

// ErrRetryable is a marker: any error wrapping it classifies as
// transient regardless of its concrete type. The fault injector and
// tests use it to force the retry path.
var ErrRetryable = errors.New("retryable")

// Failure is the typed outcome of a failed attempt: what kind of
// failure, which attempt it was, and — when the service decided to
// retry — how long the job waits before re-entering the queue.
// Terminal failed jobs carry a *Failure as their error, so callers can
// errors.As their way to the classification.
type Failure struct {
	Class FailureClass
	// Attempt is the 1-based attempt that produced the failure.
	Attempt int
	// RetryAfter is the backoff delay before the next attempt; zero
	// when the failure is terminal.
	RetryAfter time.Duration
	// Err is the underlying run error.
	Err error
}

// Error renders the classified failure.
func (f *Failure) Error() string {
	if f.RetryAfter > 0 {
		return fmt.Sprintf("%s failure on attempt %d (retrying in %s): %v", f.Class, f.Attempt, f.RetryAfter, f.Err)
	}
	return fmt.Sprintf("%s failure on attempt %d: %v", f.Class, f.Attempt, f.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (f *Failure) Unwrap() error { return f.Err }

// Retryable reports whether the class re-enters the queue, given the
// job's spec: transient always, deadline only when the client budgeted
// retries.
func (f *Failure) Retryable(spec fingers.JobSpec) bool {
	switch f.Class {
	case ClassTransient:
		return true
	case ClassDeadline:
		return spec.MaxAttempts > 1
	}
	return false
}

// Classify maps a run error to its failure class. The rules, most
// specific first:
//
//   - context cancellation → ClassCanceled; deadline → ClassDeadline
//     (checked through simerr.SimError wrapping, since both engines
//     wrap context errors)
//   - anything marked with ErrRetryable → ClassTransient
//   - malformed graph (graph.ErrMalformed), invalid plan
//     (plan.ErrInvalid), unknown dataset (*datasets.NotFoundError) →
//     ClassPermanent
//   - a recovered panic from either engine (*simerr.SimError that is
//     not a cancellation) → ClassTransient: panics are load- and
//     timing-dependent, and the chip state is rebuilt from scratch on
//     every attempt
//   - everything else → ClassPermanent (fail fast by default)
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return ClassPermanent
	case errors.Is(err, context.DeadlineExceeded):
		return ClassDeadline
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	case errors.Is(err, ErrRetryable):
		return ClassTransient
	case errors.Is(err, fingers.ErrMalformedGraph), errors.Is(err, fingers.ErrInvalidPlan):
		return ClassPermanent
	}
	var nf *datasets.NotFoundError
	if errors.As(err, &nf) {
		return ClassPermanent
	}
	if se, ok := simerr.As(err); ok && !se.IsCancellation() {
		return ClassTransient
	}
	return ClassPermanent
}

// RetryPolicy shapes the backoff schedule. The zero value takes the
// documented defaults.
type RetryPolicy struct {
	// MaxAttempts is the server-wide per-job attempt budget (first run
	// included). Default 3; 1 disables retries entirely. A job's own
	// MaxAttempts, when set, is honored up to this cap.
	MaxAttempts int
	// BaseDelay is the backoff before attempt 2. Default 100 ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 5 s.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter; runs with equal seeds
	// produce identical schedules, so chaos tests replay exactly.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// Budget resolves the effective attempt budget for one spec: the
// client's max_attempts when set, clamped by the server's; otherwise
// the server default.
func (p RetryPolicy) Budget(spec fingers.JobSpec) int {
	p = p.withDefaults()
	if spec.MaxAttempts > 0 && spec.MaxAttempts < p.MaxAttempts {
		return spec.MaxAttempts
	}
	return p.MaxAttempts
}

// Backoff returns the delay before attempt failed+1, after the
// failed'th attempt (1-based) has failed: BaseDelay · 2^(failed−1),
// stretched by a deterministic jitter factor in [1, 1.5), capped at
// MaxDelay. Because the jitter factor never reaches the next step's
// 2× growth, the schedule is monotone non-decreasing in failed — the
// property the backoff tests pin.
func (p RetryPolicy) Backoff(failed int) time.Duration {
	p = p.withDefaults()
	if failed < 1 {
		failed = 1
	}
	d := p.BaseDelay
	for i := 1; i < failed; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	// Deterministic jitter: a hash of (seed, attempt) spread over
	// [1.0, 1.5). No time-of-day or global RNG enters the schedule.
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(p.Seed >> (8 * i))
		buf[8+i] = byte(int64(failed) >> (8 * i))
	}
	h.Write(buf[:])
	frac := float64(h.Sum64()%1000) / 1000.0
	d = time.Duration(float64(d) * (1 + 0.5*frac))
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}
