// Per-client admission control: token-bucket rate limiting, a bounded
// fair share of the admission queue per client, and a load-shedding
// mode that starts rejecting low-priority work when queue latency
// crosses a threshold — so one hot client degrades gracefully instead
// of starving everyone, and an overloaded daemon sheds load instead of
// collapsing. Clients are keyed by the X-Client-ID header (fallback:
// the remote address), and every rejection carries a Retry-After hint
// the HTTP layer surfaces as a 429.

package service

import (
	"errors"
	"fmt"
	"time"

	"fingers"
)

// Admission rejection sentinels; each reaches the client as a 429 with
// a Retry-After header.
var (
	// ErrRateLimited rejects a client that exhausted its token bucket.
	ErrRateLimited = errors.New("service: client rate limit exceeded")
	// ErrClientShare rejects a client already holding its fair share of
	// the admission queue.
	ErrClientShare = errors.New("service: client queue share exhausted")
	// ErrOverloaded rejects low-priority work while the queue latency
	// exceeds the shedding threshold.
	ErrOverloaded = errors.New("service: shedding load, queue latency over threshold")
)

// AdmissionError is a structured admission rejection: which limit
// fired, for which client, and when a retry is worth attempting.
type AdmissionError struct {
	Client     string
	RetryAfter time.Duration
	Err        error
}

func (e *AdmissionError) Error() string {
	if e.Client != "" {
		return fmt.Sprintf("%v (client %q, retry after %s)", e.Err, e.Client, e.RetryAfter)
	}
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.RetryAfter)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *AdmissionError) Unwrap() error { return e.Err }

// Priority levels a JobSpec may carry. The empty string means normal.
const (
	PriorityLow    = "low"
	PriorityNormal = "normal"
	PriorityHigh   = "high"
)

// priorityRank orders priorities: -1 low, 0 normal, 1 high.
func priorityRank(p string) int {
	switch p {
	case PriorityLow:
		return -1
	case PriorityHigh:
		return 1
	}
	return 0
}

// tokenBucket is one client's rate-limit state under the manager lock.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// take refills the bucket for elapsed time and consumes one token,
// or reports how long until one is available.
func (b *tokenBucket) take(now time.Time, rate float64, burst float64) (ok bool, wait time.Duration) {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * rate
	}
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}

// admitLocked applies the three admission gates in order — rate limit,
// fair share, load shedding — for one submission. Called under m.mu,
// with the spec already validated. A nil return admits the job.
func (m *Manager) admitLocked(clientID string, spec fingers.JobSpec, now time.Time) error {
	if rate := m.cfg.ClientRate; rate > 0 && clientID != "" {
		b, ok := m.buckets[clientID]
		if !ok {
			b = &tokenBucket{tokens: m.burst()}
			m.buckets[clientID] = b
		}
		if ok, wait := b.take(now, rate, m.burst()); !ok {
			return &AdmissionError{Client: clientID, RetryAfter: wait, Err: ErrRateLimited}
		}
	}
	if share := m.cfg.MaxQueuedPerClient; share > 0 && clientID != "" {
		if m.queuedBy[clientID] >= share {
			return &AdmissionError{Client: clientID, RetryAfter: time.Second, Err: ErrClientShare}
		}
	}
	if shed := m.cfg.ShedLatency; shed > 0 {
		lat := m.queueLatencyLocked(now)
		rank := priorityRank(spec.Priority)
		// Shed low-priority work at the threshold, normal-priority work
		// at twice the threshold; high priority rides through until the
		// queue itself is full.
		if (rank < 0 && lat > shed) || (rank == 0 && lat > 2*shed) {
			return &AdmissionError{Client: clientID, RetryAfter: lat, Err: ErrOverloaded}
		}
	}
	return nil
}

// burst resolves the token-bucket capacity: ClientBurst, defaulting to
// the larger of the per-second rate and 1.
func (m *Manager) burst() float64 {
	if m.cfg.ClientBurst > 0 {
		return float64(m.cfg.ClientBurst)
	}
	if m.cfg.ClientRate > 1 {
		return m.cfg.ClientRate
	}
	return 1
}

// queueLatencyLocked estimates admission-queue latency as the age of
// the oldest job still waiting for a worker. Zero when the queue is
// empty. Called under m.mu.
func (m *Manager) queueLatencyLocked(now time.Time) time.Duration {
	var oldest time.Time
	for _, at := range m.queuedAt {
		if oldest.IsZero() || at.Before(oldest) {
			oldest = at
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// QueueLatency reports the current admission-queue latency estimate.
func (m *Manager) QueueLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queueLatencyLocked(m.now())
}
