// Chaos suite: crash the daemon (in effigy) at every journal record
// boundary and prove the recovery invariants the design promises —
// replaying any journal prefix yields a queue state equivalent to the
// crash-free run's state at that point, every recovered job reaches a
// terminal state, and completed-job counts are bit-identical to a
// direct Simulate of the same spec. The real kill -9 lives in CI's
// chaos-smoke job; here crashes are simulated by truncating copies of
// the journal at record boundaries, which exercises the identical
// replay path without sacrificing the test process.

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fingers"
	"fingers/internal/accel"
	"fingers/internal/journal"
	"fingers/internal/telemetry"
)

// openJournal opens a journal in dir, failing the test on error.
func openJournal(t *testing.T, dir string, opt journal.Options) *journal.Journal {
	t.Helper()
	jn, err := journal.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return jn
}

// drainAll waits for every job in the manager to reach a terminal
// state.
func drainAll(t *testing.T, m *Manager) {
	t.Helper()
	for _, st := range m.List() {
		waitDone(t, m, st.ID)
	}
}

// TestJournalReplayRestoresJobs: run jobs to completion, reopen the
// journal in a fresh manager, and check the history is restored —
// terminal states, attempts, clients — with nothing re-enqueued.
func TestJournalReplayRestoresJobs(t *testing.T) {
	dir := t.TempDir()
	jn := openJournal(t, dir, journal.Options{})
	m1 := NewManager(NewRegistry(), Config{Concurrency: 2, Journal: jn})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m1.SubmitFrom("alice", spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	drainAll(t, m1)
	m1.Drain(time.Second)
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	jn2 := openJournal(t, dir, journal.Options{})
	m2 := NewManager(NewRegistry(), Config{Concurrency: 2, Journal: jn2})
	defer m2.Drain(0)
	rs := m2.Recovery()
	if !rs.Enabled || rs.RestoredTerminal != 3 || rs.Requeued != 0 {
		t.Fatalf("recovery %+v, want 3 restored, 0 requeued", rs)
	}
	for _, id := range ids {
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		st := j.Status()
		if st.State != StateDone || st.ClientID != "alice" {
			t.Errorf("job %s restored as %s client %q, want done/alice", id, st.State, st.ClientID)
		}
	}
	// New submissions continue the ID sequence instead of colliding.
	j, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-000004" {
		t.Errorf("post-restart ID %s, want job-000004", j.ID)
	}
	waitDone(t, m2, j.ID)
}

// TestCrashWhileQueuedRequeues: journal a submission, "crash" before
// it runs (new manager over a copied journal), and check the job is
// re-enqueued, runs, and its count matches the direct simulation.
func TestCrashWhileQueuedRequeues(t *testing.T) {
	dir := t.TempDir()
	jn := openJournal(t, dir, journal.Options{})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2}
	b, err := jsonMarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jn.Append(journal.Record{Job: "job-000001", Event: journal.EventSubmitted,
		Attempt: 1, Client: "alice", Spec: b}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	jn2 := openJournal(t, dir, journal.Options{})
	m := NewManager(NewRegistry(), Config{Concurrency: 1, Journal: jn2})
	defer m.Drain(time.Second)
	rs := m.Recovery()
	if rs.Requeued != 1 || rs.Interrupted != 0 {
		t.Fatalf("recovery %+v, want 1 requeued (not interrupted)", rs)
	}
	j, ok := m.Get("job-000001")
	if !ok {
		t.Fatal("queued job not recovered")
	}
	waitDone(t, m, j.ID)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("recovered job state %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempt != 1 {
		t.Errorf("attempt %d, want 1 — a queued job lost no work", st.Attempt)
	}
	if st.RecoveredFromCrash {
		t.Error("queued-only job marked recovered_from_crash")
	}
	want := directResult(t, spec)
	if st.Record.Count != want.Count || st.Record.Cycles != want.Cycles {
		t.Errorf("recovered run count=%d cycles=%d, direct count=%d cycles=%d",
			st.Record.Count, st.Record.Cycles, want.Count, want.Cycles)
	}
}

// TestCrashMidRunInterruptsAndRetries: a journal ending in a started
// event means the process died mid-run. Replay must append the
// interrupted record the crash swallowed, advance the attempt, mark
// the job recovered, and complete it with counts bit-identical to a
// direct Simulate.
func TestCrashMidRunInterruptsAndRetries(t *testing.T) {
	dir := t.TempDir()
	jn := openJournal(t, dir, journal.Options{})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2}
	b, err := jsonMarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jn.Append(journal.Record{Job: "job-000001", Event: journal.EventSubmitted,
		Attempt: 1, Client: "alice", Spec: b}); err != nil {
		t.Fatal(err)
	}
	if _, err := jn.Append(journal.Record{Job: "job-000001", Event: journal.EventStarted,
		Attempt: 1, Client: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	jn2 := openJournal(t, dir, journal.Options{})
	m := NewManager(NewRegistry(), Config{Concurrency: 1, Journal: jn2})
	defer m.Drain(time.Second)
	rs := m.Recovery()
	if rs.Requeued != 1 || rs.Interrupted != 1 {
		t.Fatalf("recovery %+v, want 1 requeued and 1 interrupted", rs)
	}
	j, _ := m.Get("job-000001")
	waitDone(t, m, j.ID)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempt != 2 {
		t.Errorf("attempt %d, want 2 — the crashed attempt counts", st.Attempt)
	}
	if !st.RecoveredFromCrash {
		t.Error("mid-run crash not marked recovered_from_crash")
	}
	if st.Record == nil || !st.Record.Meta.RecoveredFromCrash || st.Record.Meta.Attempt != 2 {
		t.Errorf("record meta not stamped: %+v", st.Record.Meta)
	}
	want := directResult(t, spec)
	if st.Record.Count != want.Count || st.Record.Cycles != want.Cycles {
		t.Errorf("recovered run count=%d cycles=%d, direct count=%d cycles=%d",
			st.Record.Count, st.Record.Cycles, want.Count, want.Cycles)
	}
}

// TestCrashAtEveryRecordBoundary is the core recovery-invariant test:
// run a real multi-job session against a journal, then for every
// prefix of that journal (a crash between any two fsyncs), boot a
// fresh manager on the prefix and check (a) replay never fails, (b)
// every job present in the prefix is accounted for, (c) all recovered
// jobs reach a terminal state, and (d) every job that completes —
// before or after the crash — reports the same bit-identical count as
// the direct simulation.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	jn := openJournal(t, dir, journal.Options{})
	m1 := NewManager(NewRegistry(), Config{Concurrency: 2, Journal: jn})
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2}
	for i := 0; i < 3; i++ {
		if _, err := m1.SubmitFrom("chaos", spec); err != nil {
			t.Fatal(err)
		}
	}
	drainAll(t, m1)
	m1.Drain(time.Second)
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, firstSegment(t, dir))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(full, []byte("\n"))
	want := directResult(t, spec)

	boundaries := 0
	for cut := 0; cut <= len(lines); cut++ {
		prefix := bytes.Join(lines[:cut], nil)
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "journal-000001.jsonl"), prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		cj := openJournal(t, cdir, journal.Options{})
		m := NewManager(NewRegistry(), Config{Concurrency: 2, Journal: cj})
		rs := m.Recovery()
		if rs.Skipped != 0 {
			t.Errorf("cut %d: %d skips replaying a clean prefix", cut, rs.Skipped)
		}
		// Every job mentioned in the prefix must be in the table, and
		// every one must reach a terminal state.
		states := journal.Reduce(cj.Replayed())
		for _, jst := range states {
			j, ok := m.Get(jst.Job)
			if !ok {
				t.Fatalf("cut %d: job %s from prefix missing after replay", cut, jst.Job)
			}
			waitDone(t, m, j.ID)
			st := j.Status()
			if !st.State.Terminal() {
				t.Fatalf("cut %d: job %s stuck in %s", cut, jst.Job, st.State)
			}
			// The invariant: any job that completed — in the original
			// run or after recovery — has the bit-identical count.
			if st.State == StateDone && st.Record != nil {
				if st.Record.Count != want.Count || st.Record.Cycles != want.Cycles {
					t.Errorf("cut %d: job %s count=%d cycles=%d, want %d/%d",
						cut, jst.Job, st.Record.Count, st.Record.Cycles, want.Count, want.Cycles)
				}
			}
		}
		m.Drain(time.Second)
		if err := cj.Close(); err != nil {
			t.Fatal(err)
		}
		boundaries++
	}
	if boundaries < 10 {
		t.Fatalf("only %d crash boundaries exercised — journal suspiciously short", boundaries)
	}
}

// TestJournalFaultRejectsSubmission: when the journal's append seam
// fails at admission time, the submission is rejected — the daemon
// never acknowledges a job it cannot make durable.
func TestJournalFaultRejectsSubmission(t *testing.T) {
	fi := NewFaultInjector(FaultPoint{Op: OpJournal, Kind: FaultError, Invocation: 1})
	dir := t.TempDir()
	jn := openJournal(t, dir, journal.Options{BeforeAppend: fi.JournalHook()})
	m := NewManager(NewRegistry(), Config{Concurrency: 1, Journal: jn})
	defer m.Drain(0)
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"}

	if _, err := m.Submit(spec); err == nil {
		t.Fatal("submission acknowledged despite journal append failure")
	}
	if rs := m.Recovery(); rs.AppendErrors != 1 {
		t.Errorf("append errors %d, want 1", rs.AppendErrors)
	}
	// The next submission (injector exhausted) succeeds, and the
	// journal contains no trace of the rejected one.
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, j.ID)
	if j.ID != "job-000001" {
		t.Errorf("ID %s, want job-000001 — the rejected submission must not burn a sequence number", j.ID)
	}
}

// TestDrainJournalsInterrupted: drain with running work journals the
// jobs as interrupted, and a restart against the same journal
// re-enqueues and completes them.
func TestDrainJournalsInterrupted(t *testing.T) {
	dir := t.TempDir()
	jn := openJournal(t, dir, journal.Options{})
	m1 := NewManager(NewRegistry(), Config{Concurrency: 1, Journal: jn})
	started := make(chan string, 1)
	release := make(chan struct{})
	m1.simulate = blockingSim(started, release)
	spec := fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc", PEs: 2}
	j1, err := m1.SubmitFrom("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m1.Drain(10 * time.Millisecond)
	close(release)
	if st := j1.Status(); st.State != StateInterrupted {
		t.Fatalf("drained job state %s, want interrupted", st.State)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the interrupted job must come back and complete.
	jn2 := openJournal(t, dir, journal.Options{})
	m2 := NewManager(NewRegistry(), Config{Concurrency: 1, Journal: jn2})
	defer m2.Drain(time.Second)
	rs := m2.Recovery()
	if rs.Requeued != 1 || rs.Interrupted != 1 {
		t.Fatalf("recovery %+v, want the interrupted job requeued", rs)
	}
	j2, _ := m2.Get(j1.ID)
	waitDone(t, m2, j2.ID)
	st := j2.Status()
	if st.State != StateDone {
		t.Fatalf("resumed job state %s (err %q), want done", st.State, st.Error)
	}
	if !st.RecoveredFromCrash || st.ClientID != "alice" {
		t.Errorf("resumed job lost its provenance: %+v", st)
	}
	want := directResult(t, spec)
	if st.Record.Count != want.Count {
		t.Errorf("resumed count %d, want %d", st.Record.Count, want.Count)
	}
}

// TestStreamEndsWithTerminalRecord: a stream over a job that fails
// before simulating still closes with a terminal record carrying the
// job state, not a bare connection close.
func TestStreamEndsWithTerminalRecord(t *testing.T) {
	m, ts := newTestServer(t, Config{Concurrency: 1})
	m.simulate = func(ctx context.Context, arch fingers.Arch, g *fingers.Graph, plans []*fingers.Plan, opts ...fingers.SimOption) (fingers.SimReport, error) {
		return fingers.SimReport{}, fmt.Errorf("dead on arrival: %w", fingers.ErrInvalidPlan)
	}
	st, _ := postJob(t, ts, fingers.JobSpec{Arch: "fingers", Graph: "As", Pattern: "tc"})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := telemetry.ReadRecordsLenient(bytes.NewReader(raw))
	if err != nil || len(skipped) != 0 {
		t.Fatalf("stream unreadable: %v, skipped %v", err, skipped)
	}
	if len(recs) == 0 {
		t.Fatal("stream ended with no terminal record")
	}
	last := recs[len(recs)-1]
	if last.Meta.JobState != string(StateFailed) {
		t.Errorf("final record job_state %q, want failed", last.Meta.JobState)
	}
	if !last.Partial {
		t.Error("no-result terminal record should be marked partial")
	}
	waitDone(t, m, st.ID)
}

// firstSegment returns the name of the lone journal segment in dir.
func firstSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 1 {
		t.Fatalf("journal dir has %d segments %v, want 1", len(names), names)
	}
	return names[0]
}

// directResult runs spec through the Simulate façade once for
// comparison against daemon-served runs.
func directResult(t *testing.T, spec fingers.JobSpec) accel.Result {
	t.Helper()
	g, err := spec.ResolveGraph()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := spec.Plans()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	arch, err := spec.ArchValue()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fingers.Simulate(arch, g, plans, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Result
}

// jsonMarshalSpec serializes a spec the way Submit journals it.
func jsonMarshalSpec(spec fingers.JobSpec) ([]byte, error) {
	return json.Marshal(spec)
}
