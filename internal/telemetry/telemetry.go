// Package telemetry is the simulator's instrumentation layer: per-PE
// cycle attribution (where did the makespan go — compute, exposed memory
// stalls, divider/collector overhead, or end-of-run idle), an optional
// event tracer threaded through the PE models and the memory system, and
// two exporters — Chrome trace_event JSON (one track per PE, viewable in
// Perfetto) and append-only JSONL run records for downstream tooling.
//
// The layer is zero-overhead when disabled: attribution counters are
// plain integer adds on paths that already execute, and every tracing
// hook is guarded by a nil check, so a simulation without a tracer
// attached produces bit-identical cycle counts to one compiled without
// telemetry at all.
package telemetry

import (
	"fmt"

	"fingers/internal/mem"
)

// Breakdown attributes one PE's share of the chip makespan to four
// exclusive buckets. The invariant maintained by the PE models is
//
//	Compute + MemStall + Overhead == the PE's local finishing time
//
// and the chip rollup sets Idle to makespan − finishing time, so the
// four buckets always sum to the makespan (Total).
type Breakdown struct {
	// Compute is time the IU array (or the baseline's merge unit) was the
	// task pipeline's bottleneck stage.
	Compute mem.Cycles `json:"compute"`
	// MemStall is exposed memory latency: fetch time not hidden behind
	// computation (the quantity pseudo-DFS grouping attacks, §4.1).
	MemStall mem.Cycles `json:"mem_stall"`
	// Overhead is divider, result-collection and fixed task-scheduling
	// time that exceeded the compute stage (§4.2, §4.3).
	Overhead mem.Cycles `json:"overhead"`
	// Idle is time after the PE ran out of roots while slower PEs kept
	// the chip busy (tree-level load imbalance, §6.3).
	Idle mem.Cycles `json:"idle"`
}

// Total returns the sum of all four buckets — the chip makespan once the
// rollup has filled Idle.
func (b Breakdown) Total() mem.Cycles {
	return b.Compute + b.MemStall + b.Overhead + b.Idle
}

// Accumulate adds o's buckets into b, for chip-wide rollups.
func (b *Breakdown) Accumulate(o Breakdown) {
	b.Compute += o.Compute
	b.MemStall += o.MemStall
	b.Overhead += o.Overhead
	b.Idle += o.Idle
}

// String renders the buckets as percentages of the total.
func (b Breakdown) String() string {
	t := b.Total()
	if t == 0 {
		return "compute 0% stall 0% overhead 0% idle 0%"
	}
	pct := func(c mem.Cycles) float64 { return 100 * float64(c) / float64(t) }
	return fmt.Sprintf("compute %.1f%% stall %.1f%% overhead %.1f%% idle %.1f%%",
		pct(b.Compute), pct(b.MemStall), pct(b.Overhead), pct(b.Idle))
}

// Tracer receives the simulator's fine-grained events. Implementations
// must not advance any clocks: tracing is observational only, and the
// PE models call it with the same timestamps whether or not it is
// attached. A nil Tracer disables all hooks.
type Tracer interface {
	// TaskGroupBegin marks PE pe starting a pseudo-DFS task group of the
	// given size at cycle at; engine is the plan index (-1 for the
	// root-start group spanning all engines).
	TaskGroupBegin(pe, engine int, at mem.Cycles, size int)
	// TaskGroupEnd marks the group's last task completing at cycle at.
	TaskGroupEnd(pe int, at mem.Cycles)
	// SetOpIssue reports one distinct set operation entering the compute
	// stage: its kind ("intersect", "subtract", "anti-subtract"), input
	// lengths, and the number of IU workloads it was divided into.
	SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int)
	// CacheAccess reports one shared-cache access by PE pe covering
	// bytes, touching lines cache lines of which misses missed, issued at
	// cycle at and completing at done (including NoC traversal).
	CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles)
	// DRAMBurst reports one off-chip burst serving a shared-cache miss.
	DRAMBurst(start, done mem.Cycles, addr, bytes int64)
}

// Multi fans every event out to several tracers.
type Multi []Tracer

// TaskGroupBegin implements Tracer.
func (m Multi) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) {
	for _, t := range m {
		t.TaskGroupBegin(pe, engine, at, size)
	}
}

// TaskGroupEnd implements Tracer.
func (m Multi) TaskGroupEnd(pe int, at mem.Cycles) {
	for _, t := range m {
		t.TaskGroupEnd(pe, at)
	}
}

// SetOpIssue implements Tracer.
func (m Multi) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
	for _, t := range m {
		t.SetOpIssue(pe, at, kind, longLen, shortLen, workloads)
	}
}

// CacheAccess implements Tracer.
func (m Multi) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
	for _, t := range m {
		t.CacheAccess(pe, at, bytes, lines, misses, done)
	}
}

// DRAMBurst implements Tracer.
func (m Multi) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {
	for _, t := range m {
		t.DRAMBurst(start, done, addr, bytes)
	}
}

// Counting is a Tracer that only counts events — the cheapest possible
// sink, used by tests and overhead benchmarks.
type Counting struct {
	TaskGroups    int64
	SetOps        int64
	Workloads     int64
	CacheAccesses int64
	CacheLines    int64
	CacheMisses   int64
	DRAMBursts    int64
	DRAMBytes     int64
}

// TaskGroupBegin implements Tracer.
func (c *Counting) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) { c.TaskGroups++ }

// TaskGroupEnd implements Tracer.
func (c *Counting) TaskGroupEnd(pe int, at mem.Cycles) {}

// SetOpIssue implements Tracer.
func (c *Counting) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
	c.SetOps++
	c.Workloads += int64(workloads)
}

// CacheAccess implements Tracer.
func (c *Counting) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
	c.CacheAccesses++
	c.CacheLines += lines
	c.CacheMisses += misses
}

// DRAMBurst implements Tracer.
func (c *Counting) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {
	c.DRAMBursts++
	c.DRAMBytes += bytes
}
