package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestReadRecordsLenientSkipsCorruptLines checks that intact records
// survive a log containing a truncated flush, a foreign-schema line,
// raw garbage, and blank lines — with skip reasons and line numbers.
func TestReadRecordsLenientSkipsCorruptLines(t *testing.T) {
	var buf bytes.Buffer
	log := NewRunLog(&buf)
	for _, r := range fixedRecords() {
		if err := log.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	good := buf.String()
	lines := strings.SplitAfter(good, "\n")
	input := lines[0] + // line 1: good
		`{"schema":"other.thing/v9","arch":"x"}` + "\n" + // line 2: foreign schema
		"\n" + // line 3: blank (ignored, not counted)
		lines[1][:len(lines[1])/2] + "\n" + // line 4: truncated JSON
		"not json at all\n" + // line 5: garbage
		lines[1] // line 6: good

	recs, skipped, err := ReadRecordsLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Arch != "fingers" || recs[1].Arch != "flexminer" {
		t.Fatalf("got %d records (%+v), want the 2 intact ones", len(recs), recs)
	}
	if len(skipped) != 3 {
		t.Fatalf("skipped %d lines (%+v), want 3", len(skipped), skipped)
	}
	wantLines := []int{2, 4, 5}
	for i, s := range skipped {
		if s.Line != wantLines[i] {
			t.Errorf("skip %d at line %d, want %d (%+v)", i, s.Line, wantLines[i], s)
		}
		if s.Err == "" {
			t.Errorf("skip %d has empty reason", i)
		}
	}
	if !strings.Contains(skipped[0].Err, "other.thing/v9") {
		t.Errorf("foreign-schema skip reason %q does not name the schema", skipped[0].Err)
	}
}

// TestReadRecordsLenientMatchesStrictOnCleanLog checks the two readers
// agree when nothing is wrong.
func TestReadRecordsLenientMatchesStrictOnCleanLog(t *testing.T) {
	var buf bytes.Buffer
	log := NewRunLog(&buf)
	for _, r := range fixedRecords() {
		if err := log.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	strict, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lenient, skipped, err := ReadRecordsLenient(bytes.NewReader(buf.Bytes()))
	if err != nil || len(skipped) != 0 {
		t.Fatalf("lenient read of clean log: skipped=%v err=%v", skipped, err)
	}
	if len(strict) != len(lenient) {
		t.Fatalf("strict read %d records, lenient %d", len(strict), len(lenient))
	}
}

// TestRunLogSetMetaStamps checks session-wide provenance is filled into
// records that lack it while per-record values win.
func TestRunLogSetMetaStamps(t *testing.T) {
	var buf bytes.Buffer
	log := NewRunLog(&buf)
	log.SetMeta(Meta{StartedAt: "2026-08-07T00:00:00Z", GitRev: "abc123", HostCores: 4, GoMaxProcs: 4, RunTag: "session"})

	rec := fixedRecords()[0]
	rec.StartedAt = "2026-08-07T11:22:33Z" // per-record value must win
	rec.WallNS = 77
	if err := log.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := log.Write(fixedRecords()[1]); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].StartedAt != "2026-08-07T11:22:33Z" || recs[0].WallNS != 77 {
		t.Errorf("per-record meta overwritten: %+v", recs[0].Meta)
	}
	if recs[0].GitRev != "abc123" || recs[0].RunTag != "session" || recs[0].HostCores != 4 {
		t.Errorf("stamp not filled: %+v", recs[0].Meta)
	}
	if recs[1].StartedAt != "2026-08-07T00:00:00Z" || recs[1].GoMaxProcs != 4 {
		t.Errorf("stamp not filled on bare record: %+v", recs[1].Meta)
	}
}

// TestMetaBackwardCompatible checks the two directions of the schema
// contract: a record without meta round-trips byte-identically (old
// writers), and a record with unknown extra fields still parses (new
// writers, old-era reader).
func TestMetaBackwardCompatible(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, fixedRecords()[1]); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "started_at") || strings.Contains(s, "run_tag") {
		t.Errorf("zero meta leaked into JSON: %s", s)
	}

	withMeta := `{"schema":"fingers.run/v1","arch":"fingers","pattern":"tc","cycles":10,` +
		`"started_at":"2026-08-07T00:00:00Z","wall_ns":123,"git_rev":"deadbeef","run_tag":"t1",` +
		`"graph":{"name":"As"},"some_future_field":true}` + "\n"
	recs, err := ReadRecords(strings.NewReader(withMeta))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].RunTag != "t1" || recs[0].WallNS != 123 || recs[0].GitRev != "deadbeef" {
		t.Errorf("meta fields not decoded: %+v", recs[0].Meta)
	}
	if ts, ok := recs[0].StartTime(); !ok || !ts.Equal(time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("StartTime = %v, %v", ts, ok)
	}
}

// TestHostMeta sanity-checks the live helper: host shape populated and
// a parseable timestamp.
func TestHostMeta(t *testing.T) {
	m := HostMeta()
	if m.HostCores < 1 || m.GoMaxProcs < 1 {
		t.Errorf("host shape missing: %+v", m)
	}
	if _, ok := m.StartTime(); !ok {
		t.Errorf("StartedAt %q does not parse", m.StartedAt)
	}
	if m.RunTag != "" || m.WallNS != 0 {
		t.Errorf("HostMeta must leave per-run fields empty: %+v", m)
	}
}

// FuzzReadRecordsLenient proves lenient ingest never panics or errors
// on arbitrary input (only reader-level failures may surface, and a
// bytes.Reader has none under the scanner's line cap).
func FuzzReadRecordsLenient(f *testing.F) {
	var buf bytes.Buffer
	log := NewRunLog(&buf)
	for _, r := range fixedRecords() {
		if err := log.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	clean := buf.String()
	f.Add(clean)
	f.Add(clean[:len(clean)/3])                   // torn tail
	f.Add("{\"schema\":\"fingers.run/v1\"\n{]\n") // malformed brace soup
	f.Add("\n\n\n")                               // blanks only
	f.Add("{\"schema\":\"other/v1\"}\n" + clean)  // foreign schema first
	f.Add("{\"cycles\":\"not-a-number\"}\n")      // type mismatch
	f.Add(strings.Repeat("a", 70<<10) + "\n")     // longer than the initial buffer
	f.Fuzz(func(t *testing.T, s string) {
		recs, skipped, err := ReadRecordsLenient(strings.NewReader(s))
		if err != nil && !strings.Contains(err.Error(), "token too long") {
			t.Fatalf("unexpected reader error: %v", err)
		}
		for _, sk := range skipped {
			if sk.Line < 1 {
				t.Fatalf("skip with non-positive line: %+v", sk)
			}
		}
		_ = recs
	})
}

// TestMetaSourceAndJobID checks the service-provenance fields fill from
// the session stamp like every other meta field and that per-record
// values win.
func TestMetaSourceAndJobID(t *testing.T) {
	var buf bytes.Buffer
	log := NewRunLog(&buf)
	log.SetMeta(Meta{Source: "fingersd", RunTag: "svc"})

	rec := fixedRecords()[0]
	rec.JobID = "job-000042"
	if err := log.Write(rec); err != nil {
		t.Fatal(err)
	}
	other := fixedRecords()[1]
	other.Source = "fingersim" // per-record source wins over the stamp
	if err := log.Write(other); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Source != "fingersd" || recs[0].JobID != "job-000042" {
		t.Errorf("record 0 meta %+v, want stamped source and its own job id", recs[0].Meta)
	}
	if recs[1].Source != "fingersim" || recs[1].JobID != "" {
		t.Errorf("record 1 meta %+v, want its own source and no job id", recs[1].Meta)
	}
}
