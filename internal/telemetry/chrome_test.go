package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedChrome builds a deterministic trace exercising every event kind.
func fixedChrome() *Chrome {
	c := NewChrome()
	c.StartProcess("FINGERS")
	c.TaskGroupBegin(0, 0, 100, 8)
	c.SetOpIssue(0, 110, "intersect", 64, 12, 3)
	c.CacheAccess(0, 112, 256, 4, 0, 130)
	c.SetOpIssue(0, 140, "subtract", 32, 8, 2)
	c.TaskGroupEnd(0, 180)
	c.TaskGroupBegin(1, -1, 90, 2)
	c.CacheAccess(1, 95, 512, 8, 8, 400)
	c.DRAMBurst(120, 320, 4096, 512)
	c.TaskGroupEnd(1, 420)
	c.StartProcess("FlexMiner")
	c.TaskGroupBegin(0, -1, 0, 1)
	c.SetOpIssue(0, 60, "anti-subtract", 16, 4, 1)
	c.TaskGroupEnd(0, 75)
	return c
}

// TestChromeGoldenRoundTrip checks the exporter against its committed
// golden file and that encode → decode → deep-equal is lossless.
func TestChromeGoldenRoundTrip(t *testing.T) {
	c := fixedChrome()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded trace differs from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	decoded, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantFile := TraceFile{TraceEvents: c.Events(), DisplayTimeUnit: "ms"}
	if !reflect.DeepEqual(decoded, wantFile) {
		t.Errorf("decode(encode(trace)) != trace\ngot:  %+v\nwant: %+v", decoded, wantFile)
	}

	// A second encode of the decoded form must be byte-identical.
	var buf2 bytes.Buffer
	if _, err := (&Chrome{events: decoded.TraceEvents}).WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding the decoded trace changed the bytes")
	}
}

// TestChromeTrackMetadata checks each PE track is named exactly once per
// process and group slices land on the right (pid, tid).
func TestChromeTrackMetadata(t *testing.T) {
	c := fixedChrome()
	type key struct {
		pid, tid int
		name     string
	}
	meta := map[key]int{}
	slices := 0
	for _, e := range c.Events() {
		if e.Phase == "M" {
			meta[key{e.Pid, e.Tid, e.Name}]++
		}
		if e.Phase == "X" && e.Name == "task-group" {
			slices++
		}
	}
	for k, n := range meta {
		if n != 1 {
			t.Errorf("metadata %+v emitted %d times, want 1", k, n)
		}
	}
	if slices != 3 {
		t.Errorf("task-group slices = %d, want 3", slices)
	}
	if meta[key{1, 0, "thread_name"}] != 1 || meta[key{2, 0, "thread_name"}] != 1 {
		t.Error("expected PE 0 thread metadata in both processes")
	}
}

// TestChromeUnmatchedGroupEnd checks a stray end event is ignored.
func TestChromeUnmatchedGroupEnd(t *testing.T) {
	c := NewChrome()
	c.TaskGroupEnd(3, 50)
	if len(c.Events()) != 0 {
		t.Errorf("stray TaskGroupEnd emitted %d events", len(c.Events()))
	}
}
