package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixedRecords builds two deterministic run records (one per arch).
func fixedRecords() []RunRecord {
	return []RunRecord{
		{
			Schema:     RunSchema,
			Arch:       "fingers",
			Experiment: "fig9",
			Graph:      GraphInfo{Name: "Mi", Vertices: 6000, Edges: 25188, AvgDegree: 8.4, MaxDegree: 278},
			Pattern:    "tt", PEs: 2, IUs: 24, SharedCacheBytes: 1 << 20,
			Cycles: 1000, Count: 42, Tasks: 17,
			SharedAccesses: 900, SharedMisses: 90, SharedMissRate: 0.1,
			DRAMAccesses: 12, DRAMBytes: 4096,
			IUActiveRate: 0.25, IUBalanceRate: 0.8,
			Breakdown: Breakdown{Compute: 1200, MemStall: 500, Overhead: 100, Idle: 200},
			PerPE: []PERecord{
				{PE: 0, Cycles: 1000, FinishedAt: 1000, Breakdown: Breakdown{Compute: 700, MemStall: 250, Overhead: 50}, Tasks: 9, Groups: 4, Count: 22},
				{PE: 1, Cycles: 1000, FinishedAt: 800, Breakdown: Breakdown{Compute: 500, MemStall: 250, Overhead: 50, Idle: 200}, Tasks: 8, Groups: 3, Count: 20},
			},
		},
		{
			Schema:  RunSchema,
			Arch:    "flexminer",
			Graph:   GraphInfo{Name: "As", Vertices: 3000, Edges: 29945, AvgDegree: 19.9, MaxDegree: 321},
			Pattern: "tc", PEs: 1, SharedCacheBytes: 1 << 20,
			Cycles: 2500, Count: 7, Tasks: 5,
			Breakdown: Breakdown{Compute: 1700, MemStall: 700, Overhead: 100},
		},
	}
}

// TestRunRecordGoldenRoundTrip checks JSONL encode → decode → deep-equal
// against the committed golden file.
func TestRunRecordGoldenRoundTrip(t *testing.T) {
	recs := fixedRecords()
	var buf bytes.Buffer
	log := NewRunLog(&buf)
	for _, r := range recs {
		if err := log.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	golden := filepath.Join("testdata", "runrecord.golden.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded records differ from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	decoded, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, recs) {
		t.Errorf("decode(encode(records)) != records\ngot:  %+v\nwant: %+v", decoded, recs)
	}
}

// TestRunLogAppends checks OpenRunLog appends across reopen, the
// property the experiment sweeps rely on.
func TestRunLogAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	for i := 0; i < 2; i++ {
		log, err := OpenRunLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Write(fixedRecords()[i]); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Arch != "fingers" || recs[1].Arch != "flexminer" {
		t.Fatalf("reopened log holds %d records: %+v", len(recs), recs)
	}
}

// TestWriteRecordFillsSchema checks the schema tag is stamped when the
// caller leaves it empty.
func TestWriteRecordFillsSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, RunRecord{Arch: "fingers"}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Schema != RunSchema {
		t.Fatalf("schema not stamped: %+v", recs)
	}
}

// TestBreakdownTotalAndString covers the helper arithmetic.
func TestBreakdownTotalAndString(t *testing.T) {
	b := Breakdown{Compute: 50, MemStall: 30, Overhead: 10, Idle: 10}
	if b.Total() != 100 {
		t.Fatalf("Total = %d, want 100", b.Total())
	}
	var acc Breakdown
	acc.Accumulate(b)
	acc.Accumulate(b)
	if acc.Total() != 200 || acc.Compute != 100 {
		t.Fatalf("Accumulate wrong: %+v", acc)
	}
	if s := b.String(); s != "compute 50.0% stall 30.0% overhead 10.0% idle 10.0%" {
		t.Errorf("String = %q", s)
	}
	if s := (Breakdown{}).String(); s != "compute 0% stall 0% overhead 0% idle 0%" {
		t.Errorf("zero String = %q", s)
	}
}
