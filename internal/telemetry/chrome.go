// Chrome trace_event exporter: buffers simulator events and writes the
// JSON format consumed by Perfetto (ui.perfetto.dev) and chrome://tracing.
// One simulated cycle maps to one microsecond of trace time, so a 1 GHz
// chip renders at true scale. Each architecture run is a trace "process"
// and each PE a "thread" (its own track); DRAM bursts get a dedicated
// process so off-chip occupancy lines up under the PE tracks.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"fingers/internal/mem"
)

// dramPID is the trace process hosting the DRAM-burst track.
const dramPID = 9999

// ChromeEvent is one trace_event entry. Args is pre-encoded JSON so the
// file round-trips exactly (encode → decode → deep-equal) regardless of
// the argument value types.
type ChromeEvent struct {
	Name  string          `json:"name"`
	Phase string          `json:"ph"`
	Ts    int64           `json:"ts"`
	Dur   int64           `json:"dur,omitempty"`
	Pid   int             `json:"pid"`
	Tid   int             `json:"tid"`
	Scope string          `json:"s,omitempty"`
	Args  json.RawMessage `json:"args,omitempty"`
}

// TraceFile is the top-level Chrome trace JSON object.
type TraceFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome is a Tracer that accumulates Chrome trace events in memory.
// Traces grow with event count, so attach it to bounded runs (small
// graphs or -quick experiments), not multi-hour sweeps.
type Chrome struct {
	events     []ChromeEvent
	pid        int
	openGroups map[int]openGroup
	named      map[[2]int]bool
	dramNamed  bool
}

type openGroup struct {
	start  mem.Cycles
	engine int
	size   int
}

// NewChrome returns an empty trace under a process named "sim". Call
// StartProcess to open a named process per simulated architecture.
func NewChrome() *Chrome {
	return &Chrome{openGroups: map[int]openGroup{}, named: map[[2]int]bool{}}
}

// args encodes event arguments, sorted-key deterministic.
func args(m map[string]interface{}) json.RawMessage {
	raw, err := json.Marshal(m)
	if err != nil {
		return nil
	}
	return raw
}

// StartProcess opens a new trace process (e.g. one per simulated
// architecture) and routes subsequent PE events onto its tracks.
func (c *Chrome) StartProcess(name string) {
	c.pid++
	c.events = append(c.events, ChromeEvent{
		Name:  "process_name",
		Phase: "M",
		Pid:   c.pid,
		Args:  args(map[string]interface{}{"name": name}),
	})
}

// ensureProcess lazily opens a default process for callers that never
// call StartProcess.
func (c *Chrome) ensureProcess() {
	if c.pid == 0 {
		c.StartProcess("sim")
	}
}

// ensureThread emits the one-time thread_name metadata for a PE track.
func (c *Chrome) ensureThread(tid int) {
	key := [2]int{c.pid, tid}
	if c.named[key] {
		return
	}
	c.named[key] = true
	c.events = append(c.events, ChromeEvent{
		Name:  "thread_name",
		Phase: "M",
		Pid:   c.pid,
		Tid:   tid,
		Args:  args(map[string]interface{}{"name": fmt.Sprintf("PE %d", tid)}),
	})
}

// TaskGroupBegin implements Tracer.
func (c *Chrome) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) {
	c.ensureProcess()
	c.ensureThread(pe)
	c.openGroups[pe] = openGroup{start: at, engine: engine, size: size}
}

// TaskGroupEnd implements Tracer: emits the complete ("X") slice for the
// group opened by the matching TaskGroupBegin.
func (c *Chrome) TaskGroupEnd(pe int, at mem.Cycles) {
	g, ok := c.openGroups[pe]
	if !ok {
		return
	}
	delete(c.openGroups, pe)
	dur := int64(at - g.start)
	if dur < 1 {
		dur = 1
	}
	c.events = append(c.events, ChromeEvent{
		Name:  "task-group",
		Phase: "X",
		Ts:    int64(g.start),
		Dur:   dur,
		Pid:   c.pid,
		Tid:   pe,
		Args:  args(map[string]interface{}{"engine": g.engine, "size": g.size}),
	})
}

// SetOpIssue implements Tracer: an instant event on the PE track.
func (c *Chrome) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
	c.ensureProcess()
	c.ensureThread(pe)
	c.events = append(c.events, ChromeEvent{
		Name:  kind,
		Phase: "i",
		Ts:    int64(at),
		Pid:   c.pid,
		Tid:   pe,
		Scope: "t",
		Args:  args(map[string]interface{}{"long": longLen, "short": shortLen, "workloads": workloads}),
	})
}

// CacheAccess implements Tracer: an instant event on the PE track,
// named by outcome so hits and misses can be filtered apart in the UI.
func (c *Chrome) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
	c.ensureProcess()
	c.ensureThread(pe)
	name := "shared-hit"
	if misses > 0 {
		name = "shared-miss"
	}
	c.events = append(c.events, ChromeEvent{
		Name:  name,
		Phase: "i",
		Ts:    int64(at),
		Pid:   c.pid,
		Tid:   pe,
		Scope: "t",
		Args:  args(map[string]interface{}{"bytes": bytes, "lines": lines, "misses": misses, "latency": int64(done - at)}),
	})
}

// DRAMBurst implements Tracer: a complete slice on the DRAM track.
func (c *Chrome) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {
	if !c.dramNamed {
		c.dramNamed = true
		c.events = append(c.events, ChromeEvent{
			Name:  "process_name",
			Phase: "M",
			Pid:   dramPID,
			Args:  args(map[string]interface{}{"name": "memory"}),
		}, ChromeEvent{
			Name:  "thread_name",
			Phase: "M",
			Pid:   dramPID,
			Args:  args(map[string]interface{}{"name": "DRAM"}),
		})
	}
	dur := int64(done - start)
	if dur < 1 {
		dur = 1
	}
	c.events = append(c.events, ChromeEvent{
		Name:  "burst",
		Phase: "X",
		Ts:    int64(start),
		Dur:   dur,
		Pid:   dramPID,
		Args:  args(map[string]interface{}{"addr": addr, "bytes": bytes}),
	})
}

// Events returns the buffered events (shared slice; do not mutate).
func (c *Chrome) Events() []ChromeEvent { return c.events }

// WriteTo encodes the trace as Chrome trace_event JSON.
func (c *Chrome) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	err := enc.Encode(TraceFile{TraceEvents: c.events, DisplayTimeUnit: "ms"})
	return cw.n, err
}

// ReadTrace decodes a trace written by WriteTo, for tests and tooling.
func ReadTrace(r io.Reader) (TraceFile, error) {
	var tf TraceFile
	err := json.NewDecoder(r).Decode(&tf)
	return tf, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
