// JSONL run records: one self-describing JSON object per simulated run,
// appended to a log file so sweeps accumulate a machine-readable history
// that downstream tooling (plots, regression checks, the BENCH
// trajectory) can consume without re-running the simulator.

package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"

	"fingers/internal/mem"
)

// RunSchema identifies the record layout; bump on breaking changes.
const RunSchema = "fingers.run/v1"

// GraphInfo is the input graph's Table-1 summary embedded in a record.
type GraphInfo struct {
	Name      string  `json:"name"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	AvgDegree float64 `json:"avg_degree"`
	MaxDegree int     `json:"max_degree"`
}

// PERecord is one PE's slice of a run: its cycle attribution (the four
// buckets sum to Cycles, the chip makespan), local finishing time, and
// work counters.
type PERecord struct {
	PE         int        `json:"pe"`
	Cycles     mem.Cycles `json:"cycles"`
	FinishedAt mem.Cycles `json:"finished_at"`
	Breakdown  Breakdown  `json:"breakdown"`
	Tasks      int64      `json:"tasks"`
	Groups     int64      `json:"groups,omitempty"`
	Count      uint64     `json:"count"`
}

// RunRecord is the machine-readable summary of one simulated run.
type RunRecord struct {
	Schema           string     `json:"schema"`
	Arch             string     `json:"arch"`
	Experiment       string     `json:"experiment,omitempty"`
	Graph            GraphInfo  `json:"graph"`
	Pattern          string     `json:"pattern"`
	PEs              int        `json:"pes"`
	IUs              int        `json:"ius,omitempty"`
	SharedCacheBytes int64      `json:"shared_cache_bytes"`
	Cycles           mem.Cycles `json:"cycles"`
	Count            uint64     `json:"count"`
	Tasks            int64      `json:"tasks"`
	// Partial marks a run cut short by cancellation: Cycles is the
	// simulated horizon reached and Count covers only the mined prefix.
	Partial        bool       `json:"partial,omitempty"`
	SharedAccesses int64      `json:"shared_line_accesses"`
	SharedMisses   int64      `json:"shared_line_misses"`
	SharedMissRate float64    `json:"shared_miss_rate"`
	DRAMAccesses   int64      `json:"dram_accesses"`
	DRAMBytes      int64      `json:"dram_bytes"`
	IUActiveRate   float64    `json:"iu_active_rate,omitempty"`
	IUBalanceRate  float64    `json:"iu_balance_rate,omitempty"`
	Breakdown      Breakdown  `json:"breakdown"`
	PerPE          []PERecord `json:"per_pe,omitempty"`
}

// WriteRecord appends one record to w as a single JSONL line.
func WriteRecord(w io.Writer, rec RunRecord) error {
	if rec.Schema == "" {
		rec.Schema = RunSchema
	}
	return json.NewEncoder(w).Encode(rec)
}

// ReadRecords decodes every JSONL line of r, skipping blank lines.
func ReadRecords(r io.Reader) ([]RunRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []RunRecord
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// RunLog is a concurrency-safe append-only JSONL sink.
type RunLog struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// NewRunLog wraps any writer (e.g. a bytes.Buffer in tests).
func NewRunLog(w io.Writer) *RunLog { return &RunLog{w: w} }

// OpenRunLog opens (creating or appending to) the JSONL file at path.
func OpenRunLog(path string) (*RunLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &RunLog{w: f, c: f}, nil
}

// Write appends one record.
func (l *RunLog) Write(rec RunRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return WriteRecord(l.w, rec)
}

// Close closes the underlying file, if the log owns one.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c != nil {
		return l.c.Close()
	}
	return nil
}
