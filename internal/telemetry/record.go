// JSONL run records: one self-describing JSON object per simulated run,
// appended to a log file so sweeps accumulate a machine-readable history
// that downstream tooling (plots, regression checks, the BENCH
// trajectory) can consume without re-running the simulator.

package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"fingers/internal/mem"
)

// RunSchema identifies the record layout; bump on breaking changes.
const RunSchema = "fingers.run/v1"

// GraphInfo is the input graph's Table-1 summary embedded in a record.
type GraphInfo struct {
	Name      string  `json:"name"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	AvgDegree float64 `json:"avg_degree"`
	MaxDegree int     `json:"max_degree"`
	// Hybrid-storage representation mix under the adaptive policy:
	// how many adjacency rows the hybrid view promotes to the dense hub
	// tier and the bitmap tier, and the total bytes those stored rows
	// cost when fully materialized. Zero for records predating the
	// hybrid layer (the fields omit when empty).
	DenseRows   int   `json:"dense_rows,omitempty"`
	BitmapRows  int   `json:"bitmap_rows,omitempty"`
	HybridBytes int64 `json:"hybrid_bytes,omitempty"`
}

// PERecord is one PE's slice of a run: its cycle attribution (the four
// buckets sum to Cycles, the chip makespan), local finishing time, and
// work counters.
type PERecord struct {
	PE         int        `json:"pe"`
	Cycles     mem.Cycles `json:"cycles"`
	FinishedAt mem.Cycles `json:"finished_at"`
	Breakdown  Breakdown  `json:"breakdown"`
	Tasks      int64      `json:"tasks"`
	Groups     int64      `json:"groups,omitempty"`
	Count      uint64     `json:"count"`
}

// RunRecord is the machine-readable summary of one simulated run.
type RunRecord struct {
	Schema           string     `json:"schema"`
	Arch             string     `json:"arch"`
	Experiment       string     `json:"experiment,omitempty"`
	Graph            GraphInfo  `json:"graph"`
	Pattern          string     `json:"pattern"`
	PEs              int        `json:"pes"`
	IUs              int        `json:"ius,omitempty"`
	SharedCacheBytes int64      `json:"shared_cache_bytes"`
	Cycles           mem.Cycles `json:"cycles"`
	Count            uint64     `json:"count"`
	Tasks            int64      `json:"tasks"`
	// Partial marks a run cut short by cancellation: Cycles is the
	// simulated horizon reached and Count covers only the mined prefix.
	Partial bool `json:"partial,omitempty"`
	// Meta is the optional provenance header (start time, wall time,
	// git revision, host shape, run tag). Its fields marshal inline and
	// omitempty, so records predating it round-trip unchanged.
	Meta
	SharedAccesses int64      `json:"shared_line_accesses"`
	SharedMisses   int64      `json:"shared_line_misses"`
	SharedMissRate float64    `json:"shared_miss_rate"`
	DRAMAccesses   int64      `json:"dram_accesses"`
	DRAMBytes      int64      `json:"dram_bytes"`
	IUActiveRate   float64    `json:"iu_active_rate,omitempty"`
	IUBalanceRate  float64    `json:"iu_balance_rate,omitempty"`
	Breakdown      Breakdown  `json:"breakdown"`
	PerPE          []PERecord `json:"per_pe,omitempty"`
}

// WriteRecord appends one record to w as a single JSONL line.
func WriteRecord(w io.Writer, rec RunRecord) error {
	if rec.Schema == "" {
		rec.Schema = RunSchema
	}
	return json.NewEncoder(w).Encode(rec)
}

// ReadRecords decodes every JSONL line of r, skipping blank lines.
func ReadRecords(r io.Reader) ([]RunRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []RunRecord
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// SkippedLine reports one JSONL line the lenient reader rejected: its
// 1-based line number and a short reason (a JSON syntax error from a
// truncated flush, or a foreign schema tag).
type SkippedLine struct {
	Line int
	Err  string
}

// ReadRecordsLenient decodes the JSONL lines of r like ReadRecords but
// skips — rather than aborts on — lines that fail to parse or carry a
// non-run-record schema, returning them with line numbers so a
// directory scan can report what it dropped. A partial log from a
// SIGINT'd run (the CLIs flush records mid-sweep) therefore yields
// every intact record plus a skip entry for the torn tail. The error
// return covers only reader-level failures (I/O, an over-long line).
func ReadRecordsLenient(r io.Reader) ([]RunRecord, []SkippedLine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var out []RunRecord
	var skipped []SkippedLine
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(bytes.TrimSpace(b)) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			skipped = append(skipped, SkippedLine{Line: line, Err: err.Error()})
			continue
		}
		if rec.Schema != "" && !strings.HasPrefix(rec.Schema, "fingers.run/") {
			skipped = append(skipped, SkippedLine{Line: line, Err: fmt.Sprintf("foreign schema %q", rec.Schema)})
			continue
		}
		out = append(out, rec)
	}
	return out, skipped, sc.Err()
}

// RunLog is a concurrency-safe append-only JSONL sink.
type RunLog struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	stamp Meta
}

// SetMeta attaches a session-wide provenance stamp: every subsequent
// Write fills the record's empty Meta fields from it (per-record values
// win). Call once after OpenRunLog, typically with HostMeta().
func (l *RunLog) SetMeta(m Meta) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stamp = m
}

// NewRunLog wraps any writer (e.g. a bytes.Buffer in tests).
func NewRunLog(w io.Writer) *RunLog { return &RunLog{w: w} }

// OpenRunLog opens (creating or appending to) the JSONL file at path.
func OpenRunLog(path string) (*RunLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &RunLog{w: f, c: f}, nil
}

// Write appends one record, filling empty provenance fields from the
// SetMeta stamp.
func (l *RunLog) Write(rec RunRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stamp.Fill(&rec.Meta)
	return WriteRecord(l.w, rec)
}

// Close closes the underlying file, if the log owns one.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c != nil {
		return l.c.Close()
	}
	return nil
}
