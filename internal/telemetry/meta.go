// Run-record provenance: where and when a record was produced. Trend
// tooling (internal/trend, cmd/fingerstat) needs a time axis and host
// attribution to order records across sessions; every field is optional
// so old logs parse unchanged and old readers ignore the additions.

package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Meta is the optional provenance header shared by run records and
// benchmark reports. All fields are omitempty: a zero Meta marshals to
// nothing, so records written before this header existed are
// byte-identical to records written with it left unset.
type Meta struct {
	// StartedAt is the wall-clock start of the run, RFC 3339 (UTC).
	StartedAt string `json:"started_at,omitempty"`
	// WallNS is the measured wall time of the run in nanoseconds.
	WallNS int64 `json:"wall_ns,omitempty"`
	// GitRev is the repository revision the binary was built from.
	GitRev string `json:"git_rev,omitempty"`
	// HostCores is runtime.NumCPU() on the producing host.
	HostCores int `json:"host_cores,omitempty"`
	// GoMaxProcs is the scheduler width the run executed under.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// SimShards is the effective shard count of a sharded run — the
	// number of independent engine instances the root set was
	// partitioned across after clamping. Zero for unsharded runs.
	SimShards int `json:"sim_shards,omitempty"`
	// RunTag groups records from one logical session (a sweep, a CI
	// run) into a batch the trend viewer can slice on.
	RunTag string `json:"run_tag,omitempty"`
	// Source names the producing program ("fingersim", "fingersd",
	// ...), distinguishing daemon-served runs from batch CLI runs in a
	// mixed log directory.
	Source string `json:"source,omitempty"`
	// JobID is the service job identifier of a daemon-served run, tying
	// every streamed and logged record back to its POST /v1/jobs
	// lifecycle. Empty for batch CLI runs.
	JobID string `json:"job_id,omitempty"`
	// JobState is the terminal lifecycle state that produced the record
	// ("done", "canceled", "deadline_exceeded", "interrupted", ...).
	// Empty for batch CLI runs and for records predating the field.
	JobState string `json:"job_state,omitempty"`
	// Attempt is the 1-based attempt number of a daemon-served run;
	// values above 1 mean the job retried after a transient failure.
	// Zero for batch CLI runs.
	Attempt int `json:"attempt,omitempty"`
	// ClientID attributes a daemon-served run to the submitting client
	// (the X-Client-ID header, or the remote address). Empty for batch
	// CLI runs and anonymous submissions.
	ClientID string `json:"client_id,omitempty"`
	// RecoveredFromCrash marks a run whose job lost in-flight work to a
	// daemon crash or drain and was re-enqueued by journal replay.
	RecoveredFromCrash bool `json:"recovered_from_crash,omitempty"`
}

// HostMeta captures the producing host's provenance: start time (now,
// UTC), git revision, core count, and GOMAXPROCS. Callers set RunTag
// and WallNS themselves — the tag is a user choice and the wall time is
// only known when the run finishes.
func HostMeta() Meta {
	return Meta{
		StartedAt:  time.Now().UTC().Format(time.RFC3339Nano),
		GitRev:     GitRevision(),
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// Fill copies m's fields into dst wherever dst's are zero, so a
// per-record value (a run-specific start time, say) always wins over
// the session-wide stamp.
func (m Meta) Fill(dst *Meta) {
	if dst.StartedAt == "" {
		dst.StartedAt = m.StartedAt
	}
	if dst.WallNS == 0 {
		dst.WallNS = m.WallNS
	}
	if dst.GitRev == "" {
		dst.GitRev = m.GitRev
	}
	if dst.HostCores == 0 {
		dst.HostCores = m.HostCores
	}
	if dst.GoMaxProcs == 0 {
		dst.GoMaxProcs = m.GoMaxProcs
	}
	if dst.SimShards == 0 {
		dst.SimShards = m.SimShards
	}
	if dst.RunTag == "" {
		dst.RunTag = m.RunTag
	}
	if dst.Source == "" {
		dst.Source = m.Source
	}
	if dst.JobID == "" {
		dst.JobID = m.JobID
	}
	if dst.JobState == "" {
		dst.JobState = m.JobState
	}
	if dst.Attempt == 0 {
		dst.Attempt = m.Attempt
	}
	if dst.ClientID == "" {
		dst.ClientID = m.ClientID
	}
	if !dst.RecoveredFromCrash {
		dst.RecoveredFromCrash = m.RecoveredFromCrash
	}
}

// StartTime parses StartedAt; ok is false when the field is absent or
// malformed (the trend reader then falls back to file mtime).
func (m Meta) StartTime() (t time.Time, ok bool) {
	if m.StartedAt == "" {
		return time.Time{}, false
	}
	t, err := time.Parse(time.RFC3339Nano, m.StartedAt)
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}

var (
	gitRevOnce sync.Once
	gitRev     string
)

// GitRevision best-effort resolves the source revision: the VCS stamp
// Go embeds in built binaries, else the checked-out commit read from
// the enclosing .git directory (covers `go run` and `go test`, which
// skip VCS stamping). Empty when neither is available; never errors.
func GitRevision() string {
	gitRevOnce.Do(func() {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && s.Value != "" {
					gitRev = s.Value
					return
				}
			}
		}
		gitRev = dotGitHead()
	})
	return gitRev
}

// dotGitHead walks up from the working directory to the nearest .git
// and resolves HEAD one level of indirection deep. All reads are
// bounded; any irregularity yields "".
func dotGitHead() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		head := readSmall(filepath.Join(dir, ".git", "HEAD"))
		if head != "" {
			if ref, ok := strings.CutPrefix(head, "ref: "); ok {
				return readSmall(filepath.Join(dir, ".git", filepath.FromSlash(ref)))
			}
			return head
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// readSmall returns the trimmed first line of a file, or "" for any
// file over 1 KiB (a .git ref never is) or on error.
func readSmall(path string) string {
	b, err := os.ReadFile(path)
	if err != nil || len(b) > 1024 {
		return ""
	}
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	return strings.TrimSpace(string(b))
}
