// Package stats provides the small statistical containers the profiling
// and experiment code shares: streaming summaries and fixed-bucket
// histograms with text rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of observations and reports moments and
// quantiles. The zero value is ready to use.
type Summary struct {
	values []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// AddN records an integer observation, a convenience for counters.
func (s *Summary) AddN(v int) { s.Add(float64(v)) }

// Merge folds every observation of other into s, so per-PE telemetry
// summaries can be aggregated chip-wide without re-streaming the
// underlying observations. other is unmodified.
func (s *Summary) Merge(other Summary) {
	if len(other.values) == 0 {
		return
	}
	s.values = append(s.values, other.values...)
	s.sum += other.sum
	s.sorted = false
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.values) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, zero when empty.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Max returns the largest observation, zero when empty.
func (s *Summary) Max() float64 {
	max := 0.0
	for i, v := range s.values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank; zero when
// empty.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	idx := int(math.Ceil(q*float64(len(s.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.values) {
		idx = len(s.values) - 1
	}
	return s.values[idx]
}

// String renders "n=… mean=… p50=… p95=… max=…".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.0f p95=%.0f max=%.0f",
		s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Max())
}

// Histogram counts observations into power-of-two buckets: bucket i holds
// values in [2^(i-1), 2^i), with bucket 0 holding zeros and ones.
type Histogram struct {
	buckets []int64
	total   int64
}

// Add records a non-negative observation.
func (h *Histogram) Add(v int) {
	b := 0
	for x := v; x > 1; x >>= 1 {
		b++
	}
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the raw bucket counts (bucket i ≈ values around 2^i).
func (h *Histogram) Buckets() []int64 { return append([]int64(nil), h.buckets...) }

// String renders an ASCII bar chart, one row per non-empty bucket.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)\n"
	}
	var max int64
	for _, c := range h.buckets {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := 0
		if i > 0 {
			lo = 1 << uint(i-1)
		}
		hi := 1<<uint(i) - 1
		bar := strings.Repeat("#", int(40*c/max))
		fmt.Fprintf(&sb, "%10d-%-10d %10d %s\n", lo, hi, c, bar)
	}
	return sb.String()
}
