package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Error("zero-value summary not zeroed")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Sum() != 15 || s.Mean() != 3 || s.Max() != 5 {
		t.Errorf("summary = %v", s.String())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Quantile(1.0); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Quantile(0.0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestSummaryAddN(t *testing.T) {
	var s Summary
	s.AddN(7)
	if s.Sum() != 7 {
		t.Errorf("AddN sum = %v", s.Sum())
	}
}

func TestSummaryQuantileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		var s Summary
		for _, v := range raw {
			s.AddN(int(v))
		}
		return s.Quantile(0.25) <= s.Quantile(0.5) &&
			s.Quantile(0.5) <= s.Quantile(0.75) &&
			s.Quantile(0.75) <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryInterleavedAddAndQuantile(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Quantile(0.5)
	s.Add(1) // must re-sort on the next quantile call
	if got := s.Quantile(0.0); got != 1 {
		t.Errorf("min after interleaved add = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	b := h.Buckets()
	if b[0] != 2 { // 0 and 1
		t.Errorf("bucket 0 = %d", b[0])
	}
	if b[1] != 2 { // 2 and 3
		t.Errorf("bucket 1 = %d", b[1])
	}
	if b[2] != 2 { // 4 and 7
		t.Errorf("bucket 2 = %d", b[2])
	}
	if b[3] != 1 { // 8
		t.Errorf("bucket 3 = %d", b[3])
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty histogram rendering")
	}
	h.Add(5)
	h.Add(6)
	if !strings.Contains(h.String(), "#") {
		t.Error("bar missing")
	}
}

func TestHistogramTotalMatchesAdds(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, v := range raw {
			h.Add(int(v))
		}
		var sum int64
		for _, c := range h.Buckets() {
			sum += c
		}
		return sum == int64(len(raw)) && h.Total() == int64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	for i, v := range []float64{5, 1, 9, 2, 8, 3} {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		whole.Add(v)
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() {
		t.Fatalf("merge lost observations: n=%d sum=%v", a.Count(), a.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %v, streamed %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Errorf("merged moments differ: max %v/%v mean %v/%v", a.Max(), whole.Max(), a.Mean(), whole.Mean())
	}
}

func TestSummaryMergeEmptyAndSelf(t *testing.T) {
	var a, empty Summary
	a.Add(4)
	a.Merge(empty)
	if a.Count() != 1 || a.Sum() != 4 {
		t.Fatalf("merging empty changed summary: %+v", a)
	}
	empty.Merge(a)
	if empty.Count() != 1 || empty.Quantile(0.5) != 4 {
		t.Fatalf("merge into empty failed: n=%d", empty.Count())
	}
	// The source must be untouched and still usable afterwards.
	a.Add(6)
	if a.Count() != 2 || a.Quantile(1) != 6 {
		t.Fatalf("source summary corrupted after merge: %+v", a)
	}
}
