package simerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	full := &SimError{Engine: "serial", PE: 3, Cycle: 1200, Root: 17,
		Err: errors.New("boom")}
	got := full.Error()
	for _, want := range []string{"serial engine", "PE 3", "cycle 1200", "root 17", "boom"} {
		if !strings.Contains(got, want) {
			t.Errorf("%q is missing %q", got, want)
		}
	}
	bare := Cancelled("parallel", 0, context.Canceled)
	got = bare.Error()
	for _, absent := range []string{"PE", "cycle", "root"} {
		if strings.Contains(got, absent) {
			t.Errorf("%q mentions unattributed field %q", got, absent)
		}
	}
}

func TestUnwrapChain(t *testing.T) {
	inner := errors.New("root cause")
	se := &SimError{Engine: "miner", PE: NoPE, Root: NoRoot,
		Err: fmt.Errorf("wrapped: %w", inner)}
	if !errors.Is(se, inner) {
		t.Error("errors.Is does not reach the wrapped cause")
	}
	outer := fmt.Errorf("cli: %w", se)
	got, ok := As(outer)
	if !ok || got != se {
		t.Errorf("As(%v) = %v, %v", outer, got, ok)
	}
}

func TestIsCancellation(t *testing.T) {
	if !Cancelled("serial", 5, context.Canceled).IsCancellation() {
		t.Error("Canceled not classified as cancellation")
	}
	if !Cancelled("serial", 5, context.DeadlineExceeded).IsCancellation() {
		t.Error("DeadlineExceeded not classified as cancellation")
	}
	if (&SimError{Engine: "serial", Err: errors.New("boom")}).IsCancellation() {
		t.Error("a crash classified as cancellation")
	}
}

func TestFromPanic(t *testing.T) {
	cause := errors.New("typed panic value")
	var se *SimError
	func() {
		defer func() {
			if r := recover(); r != nil {
				se = FromPanic("parallel", 2, 900, 41, r)
			}
		}()
		panic(cause)
	}()
	if se == nil {
		t.Fatal("no SimError captured")
	}
	if se.Engine != "parallel" || se.PE != 2 || se.Cycle != 900 || se.Root != 41 {
		t.Errorf("attribution lost: %+v", se)
	}
	if !errors.Is(se, cause) {
		t.Error("an error panic value must stay errors.Is-reachable")
	}
	if len(se.Stack) == 0 || !strings.Contains(string(se.Stack), "simerr") {
		t.Error("stack capture missing or implausible")
	}
	// Non-error panic values render via %v.
	var se2 *SimError
	func() {
		defer func() { se2 = FromPanic("serial", NoPE, 0, NoRoot, recover()) }()
		panic("plain string")
	}()
	if !strings.Contains(se2.Error(), "plain string") {
		t.Errorf("%q is missing the panic value", se2.Error())
	}
}
