// Package simerr defines the structured failure type shared by every
// execution engine in the repository: the serial event loop and the
// bounded-lag parallel engine (internal/accel), the software miner
// (internal/mine), and the public Simulate façade. A SimError pinpoints
// where a run stopped — which engine, which PE or worker, at which
// simulated cycle, mining which root — and wraps the underlying cause,
// which is either a recovered panic (with the goroutine stack captured
// at the recovery point) or a context error for a cancelled or
// deadline-expired run.
//
// The package deliberately depends on nothing inside the repository so
// every layer, from setops up to the façade, can use it without import
// cycles.
package simerr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
)

// NoPE and NoRoot mark the PE and Root fields as unattributable: the
// failure happened outside any single PE's step (e.g. a cancelled run),
// or the PE was between search trees.
const (
	NoPE   = -1
	NoRoot = -1
)

// SimError is the structured failure of one simulation or mining run.
// It always wraps an underlying cause, so errors.Is(err,
// context.Canceled) and friends keep working through it.
type SimError struct {
	// Engine names the execution engine that failed: "serial",
	// "parallel", "miner", or "facade".
	Engine string
	// PE is the processing-element (or miner-worker) index the failure
	// is attributed to; NoPE when the failure is not PE-local.
	PE int
	// Cycle is the simulated cycle at the failure point: the failing
	// PE's local clock for a panic, the partially simulated horizon for
	// a cancellation. Zero when the run never started.
	Cycle int64
	// Root is the root vertex of the search tree being mined when the
	// failure hit; NoRoot when unknown or not applicable.
	Root int64
	// Stack is the goroutine stack captured at the recovery point;
	// nil for non-panic failures.
	Stack []byte
	// Err is the underlying cause: the recovered panic value (wrapped)
	// or the context error of a cancelled run.
	Err error
}

// Error renders the failure with its attribution, most specific last.
func (e *SimError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim: %s engine", e.Engine)
	if e.PE != NoPE {
		fmt.Fprintf(&sb, ", PE %d", e.PE)
	}
	if e.Cycle > 0 {
		fmt.Fprintf(&sb, ", cycle %d", e.Cycle)
	}
	if e.Root != NoRoot {
		fmt.Fprintf(&sb, ", root %d", e.Root)
	}
	fmt.Fprintf(&sb, ": %v", e.Err)
	return sb.String()
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *SimError) Unwrap() error { return e.Err }

// IsCancellation reports whether the failure is a context cancellation
// or deadline expiry rather than a crash.
func (e *SimError) IsCancellation() bool {
	return errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded)
}

// FromPanic converts a recovered panic value into a SimError, capturing
// the current goroutine's stack. Call it only from a deferred function
// whose recover() returned non-nil.
func FromPanic(engine string, pe int, cycle, root int64, recovered interface{}) *SimError {
	var err error
	if cause, ok := recovered.(error); ok {
		err = fmt.Errorf("panic: %w", cause)
	} else {
		err = fmt.Errorf("panic: %v", recovered)
	}
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &SimError{Engine: engine, PE: pe, Cycle: cycle, Root: root, Stack: buf, Err: err}
}

// Cancelled wraps a context error (context.Canceled or
// context.DeadlineExceeded) observed at the given simulated horizon.
func Cancelled(engine string, cycle int64, cause error) *SimError {
	return &SimError{Engine: engine, PE: NoPE, Cycle: cycle, Root: NoRoot, Err: cause}
}

// As extracts a *SimError from an error chain.
func As(err error) (*SimError, bool) {
	var se *SimError
	ok := errors.As(err, &se)
	return se, ok
}
