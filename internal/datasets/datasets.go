// Package datasets provides deterministic synthetic analogues of the six
// real-world graphs in the paper's Table 1. The originals (SNAP and
// GraMi distributions) cannot be bundled offline, so each analogue is
// generated to sit in the same regime along the axes the evaluation
// depends on:
//
//   - footprint class: whether the adjacency data fits the shared cache
//     (As, Mi fit; Yo, Pa, Lj, Or exceed it). Because the graphs are
//     scaled down, the experiments scale the shared cache with them
//     (ScaledSharedCacheBytes): the paper's 4 MB default becomes 1 MB and
//     the Figure 13 sweep 2/4/8/16 MB becomes 0.5/1/2/4 MB, preserving
//     every fits-vs-thrashes relationship;
//   - average degree: set sizes, and therefore available set- and
//     segment-level parallelism (Yo lowest, Or highest);
//   - degree skew: load imbalance across search trees (Pa low skew,
//     Yo/Lj/Or heavy tails);
//   - clustering: density of cliques and dense clusters (Mi and Lj rich,
//     Or less so relative to its degree, Pa sparse).
//
// Vertex counts are scaled down (recorded per dataset) so full experiment
// sweeps run in minutes; the paper's absolute magnitudes are not
// reproducible anyway, while the cross-graph ordering — which is what the
// evaluation interprets — is preserved.
package datasets

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fingers/internal/graph"
	"fingers/internal/graph/gen"
)

// ScaledSharedCacheBytes is the shared-cache capacity the experiments use
// as the paper's "4 MB" operating point, scaled down with the analogue
// graphs (package comment). CacheScale converts any of the paper's
// Figure 13 capacities to the scaled system.
const (
	ScaledSharedCacheBytes = 1 << 20
	CacheScale             = 4 // paper bytes ÷ CacheScale = scaled bytes
)

// PaperStats records the original graph's Table 1 row.
type PaperStats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// Dataset describes one analogue.
type Dataset struct {
	// Name is the paper's two-letter mnemonic (As, Mi, Yo, Pa, Lj, Or).
	Name string
	// FullName is the original dataset's name.
	FullName string
	// Paper is the original's published statistics.
	Paper PaperStats
	// Regime summarizes why this analogue matches the original's role.
	Regime string
	// Build generates the analogue graph.
	Build func() *graph.Graph

	once sync.Once
	g    *graph.Graph
}

// Graph returns the analogue graph, generating it on first use and
// caching it for the process lifetime.
func (d *Dataset) Graph() *graph.Graph {
	d.once.Do(func() { d.g = d.Build() })
	return d.g
}

// registry lists the analogues in the paper's Table 1 order.
var registry = []*Dataset{
	{
		Name:     "As",
		FullName: "AstroPh",
		Paper:    PaperStats{Vertices: 18_800, Edges: 198_000, AvgDegree: 21.1, MaxDegree: 504},
		Regime:   "small collaboration graph, fits on chip, high clustering",
		Build: func() *graph.Graph {
			return gen.PowerLawCluster(3000, 10, 0.50, 101)
		},
	},
	{
		Name:     "Mi",
		FullName: "Mico",
		Paper:    PaperStats{Vertices: 80_000, Edges: 432_000, AvgDegree: 10.8, MaxDegree: 936},
		Regime:   "small co-authorship graph, fits on chip, clique-rich",
		Build: func() *graph.Graph {
			base := gen.PowerLawCluster(6000, 4, 0.85, 102)
			return gen.WithPlantedCliques(base, 80, 6, 202)
		},
	},
	{
		Name:     "Yo",
		FullName: "Youtube",
		Paper:    PaperStats{Vertices: 1_100_000, Edges: 3_000_000, AvgDegree: 5.3, MaxDegree: 28_754},
		Regime:   "large graph, lowest average degree, small sets limit parallelism",
		Build: func() *graph.Graph {
			return gen.PowerLawCluster(120_000, 2, 0.15, 103)
		},
	},
	{
		Name:     "Pa",
		FullName: "Patents",
		Paper:    PaperStats{Vertices: 3_800_000, Edges: 16_500_000, AvgDegree: 8.8, MaxDegree: 793},
		Regime:   "large graph, low degree skew, much data but limited work",
		Build: func() *graph.Graph {
			return gen.ErdosRenyi(150_000, 660_000, 104)
		},
	},
	{
		Name:     "Lj",
		FullName: "LiveJournal",
		Paper:    PaperStats{Vertices: 4_800_000, Edges: 42_900_000, AvgDegree: 17.7, MaxDegree: 20_333},
		Regime:   "large social graph exceeding the shared cache, rich dense structure",
		Build: func() *graph.Graph {
			return gen.PowerLawCluster(40_000, 9, 0.55, 105)
		},
	},
	{
		Name:     "Or",
		FullName: "Orkut",
		Paper:    PaperStats{Vertices: 3_100_000, Edges: 117_200_000, AvgDegree: 76.3, MaxDegree: 33_313},
		Regime:   "largest and densest, highest degree, fewer dense clusters than Lj",
		Build: func() *graph.Graph {
			return gen.PowerLawCluster(12_000, 16, 0.35, 106)
		},
	},
}

// Names returns the dataset mnemonics in Table 1 order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// NotFoundError reports an unknown dataset name with enough structure
// for callers to build rich error surfaces — an HTTP 404 JSON body, a
// CLI hint — without parsing the message: the rejected name, the
// sorted valid mnemonics, and the nearest plausible match (empty when
// nothing is within typo distance).
type NotFoundError struct {
	Name       string
	Known      []string
	Suggestion string
}

// Error renders the message ByName has always produced, so callers
// that do display the string see no change.
func (e *NotFoundError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("datasets: unknown dataset %q (did you mean %q? known: %v)", e.Name, e.Suggestion, e.Known)
	}
	return fmt.Sprintf("datasets: unknown dataset %q (known: %v)", e.Name, e.Known)
}

// ByName returns the dataset with the given mnemonic. An unknown name
// is reported as a *NotFoundError carrying the full list of valid
// names and, when one is close enough to look like a typo, a
// nearest-match suggestion.
func ByName(name string) (*Dataset, error) {
	for _, d := range registry {
		if d.Name == name || strings.EqualFold(d.Name, name) || strings.EqualFold(d.FullName, name) {
			return d, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return nil, &NotFoundError{Name: name, Known: known, Suggestion: nearest(name)}
}

// nearest returns the registered mnemonic or full name closest to name,
// or "" when nothing is within typo distance.
func nearest(name string) string {
	var cands []string
	for _, d := range registry {
		cands = append(cands, d.Name, d.FullName)
	}
	return Suggest(name, cands)
}

// Suggest returns the candidate with the smallest case-insensitive edit
// distance from name, or "" when nothing is within a plausible typo
// distance (2 edits, and strictly closer than the name's own length).
// It powers ByName's did-you-mean hint; registries that extend the
// bundled set use it to build the same NotFoundError shape over their
// own name list.
func Suggest(name string, candidates []string) string {
	lower := strings.ToLower(name)
	best, bestDist := "", len(lower)
	for _, cand := range candidates {
		if cand == "" {
			continue
		}
		if dist := editDistance(lower, strings.ToLower(cand)); dist < bestDist {
			best, bestDist = cand, dist
		}
	}
	if bestDist > 2 {
		return ""
	}
	return best
}

// editDistance returns the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// All returns every dataset in Table 1 order.
func All() []*Dataset { return registry }

// Small returns the datasets whose adjacency fits the default 4 MB shared
// cache (the paper's As and Mi class).
func Small() []*Dataset {
	var out []*Dataset
	for _, d := range registry {
		if d.Name == "As" || d.Name == "Mi" {
			out = append(out, d)
		}
	}
	return out
}

// Table1 renders the dataset table: the original's published statistics
// beside the analogue's measured ones.
func Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-12s | %-32s | %-32s\n", "", "", "paper original", "synthetic analogue (this repo)")
	fmt.Fprintf(&sb, "%-4s %-12s | %10s %11s %5s %6s | %10s %11s %5s %6s\n",
		"name", "dataset", "vertices", "edges", "avgD", "maxD", "vertices", "edges", "avgD", "maxD")
	for _, d := range registry {
		st := graph.ComputeStats(d.Graph())
		fmt.Fprintf(&sb, "%-4s %-12s | %10d %11d %5.1f %6d | %10d %11d %5.1f %6d\n",
			d.Name, d.FullName,
			d.Paper.Vertices, d.Paper.Edges, d.Paper.AvgDegree, d.Paper.MaxDegree,
			st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	}
	return sb.String()
}
