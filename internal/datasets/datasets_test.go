package datasets

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fingers/internal/graph"
	"fingers/internal/mem"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"As", "Mi", "Yo", "Pa", "Lj", "Or"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s (Table 1 order)", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, key := range []string{"Mi", "mi", "Mico"} {
		d, err := ByName(key)
		if err != nil || d.Name != "Mi" {
			t.Errorf("ByName(%q) = %v, %v", key, d, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestGraphsValidAndCached(t *testing.T) {
	for _, d := range All() {
		g := d.Graph()
		if g != d.Graph() {
			t.Errorf("%s: graph not cached", d.Name)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", d.Name)
		}
	}
}

// TestRegimePreserved checks the properties the evaluation depends on
// (package comment): footprint class, degree ordering, and skew.
func TestRegimePreserved(t *testing.T) {
	stats := map[string]graph.Stats{}
	adj := map[string]int64{}
	for _, d := range All() {
		g := d.Graph()
		stats[d.Name] = graph.ComputeStats(g)
		adj[d.Name] = g.TotalAdjacencyBytes()
	}
	cache := int64(ScaledSharedCacheBytes)
	// As and Mi fit in the scaled shared cache; the rest exceed it.
	for _, n := range []string{"As", "Mi"} {
		if adj[n] >= cache {
			t.Errorf("%s adjacency (%d B) should fit the %d B cache", n, adj[n], cache)
		}
	}
	for _, n := range []string{"Yo", "Pa", "Lj", "Or"} {
		if adj[n] <= cache {
			t.Errorf("%s adjacency (%d B) should exceed the %d B cache", n, adj[n], cache)
		}
	}
	// The scaled default must stay a CacheScale-fold reduction of the
	// paper's 4 MB so Figure 13's capacity labels translate directly.
	if ScaledSharedCacheBytes*CacheScale != mem.DefaultSharedCacheConfig().CapacityBytes {
		t.Error("scaled cache capacity no longer matches the paper default")
	}
	// Yo has the lowest average degree; Or the highest (Table 1).
	for n, st := range stats {
		if n == "Yo" {
			continue
		}
		if st.AvgDegree <= stats["Yo"].AvgDegree {
			t.Errorf("Yo should have the lowest average degree, but %s has %.1f ≤ %.1f",
				n, st.AvgDegree, stats["Yo"].AvgDegree)
		}
		if n != "Or" && st.AvgDegree >= stats["Or"].AvgDegree {
			t.Errorf("Or should have the highest average degree, but %s has %.1f ≥ %.1f",
				n, st.AvgDegree, stats["Or"].AvgDegree)
		}
	}
	// Pa has low skew (max within ~30× average, like Patents' 793 vs 8.8
	// being far below the social graphs' ratios); the social graphs have
	// heavy tails (max over 30× average).
	paSkew := float64(stats["Pa"].MaxDegree) / stats["Pa"].AvgDegree
	if paSkew > 30 {
		t.Errorf("Pa skew = %.0f×, want low-skew regime", paSkew)
	}
	for _, n := range []string{"Yo", "Lj", "Or"} {
		skew := float64(stats[n].MaxDegree) / stats[n].AvgDegree
		if skew < 10 {
			t.Errorf("%s skew = %.0f×, want heavy tail", n, skew)
		}
	}
}

func TestSmallSubset(t *testing.T) {
	small := Small()
	if len(small) != 2 || small[0].Name != "As" || small[1].Name != "Mi" {
		t.Errorf("Small() = %v", small)
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"AstroPh", "Orkut", "paper original", "analogue"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 8 {
		t.Errorf("Table1 row count unexpected:\n%s", out)
	}
}

func TestByNameUnknownListsValidNames(t *testing.T) {
	_, err := ByName("nosuch")
	if err == nil {
		t.Fatal("expected an error for an unknown dataset")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid name %q", err, name)
		}
	}
}

func TestByNameSuggestsNearestMatch(t *testing.T) {
	cases := []struct {
		typo, want string
	}{
		{"Mj", "Mi"},       // one substitution off a mnemonic
		{"LJ!", "Lj"},      // case fold plus one insertion
		{"Orkot", "Orkut"}, // full-name typo
		{"MiCoo", "Mico"},  // full-name insertion
	}
	for _, c := range cases {
		_, err := ByName(c.typo)
		if err == nil {
			t.Fatalf("%q: expected an error", c.typo)
		}
		want := fmt.Sprintf("did you mean %q", c.want)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q: error %q is missing suggestion %q", c.typo, err, c.want)
		}
	}
}

func TestByNameNoSuggestionWhenFar(t *testing.T) {
	_, err := ByName("zzzzzzzz")
	if err == nil {
		t.Fatal("expected an error")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("error %q suggests a match for a hopeless name", err)
	}
}

func TestByNameStructuredError(t *testing.T) {
	_, err := ByName("Mj")
	if err == nil {
		t.Fatal("expected an error")
	}
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("error is %T, want *NotFoundError", err)
	}
	if nf.Name != "Mj" || nf.Suggestion != "Mi" {
		t.Errorf("NotFoundError %+v, want Name=Mj Suggestion=Mi", nf)
	}
	if len(nf.Known) != len(Names()) {
		t.Errorf("Known has %d names, want %d", len(nf.Known), len(Names()))
	}
}

func TestSuggestOverCustomCandidates(t *testing.T) {
	cands := []string{"As", "Mi", "wiki-local"}
	if got := Suggest("wiki-locl", cands); got != "wiki-local" {
		t.Errorf("Suggest = %q, want wiki-local", got)
	}
	if got := Suggest("completely-different", cands); got != "" {
		t.Errorf("Suggest for a hopeless name = %q, want empty", got)
	}
}
