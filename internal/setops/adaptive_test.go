package setops

import (
	"testing"
	"testing/quick"
)

// mkbits builds a dense membership bitset over [0, universe) from a set.
func mkbits(universe int, members []uint32) []uint64 {
	bits := make([]uint64, (universe+63)/64)
	for _, v := range members {
		bits[v>>6] |= 1 << (v & 63)
	}
	return bits
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		if !eq(IntersectGallopingInto(nil, a, b), Intersect(a, b)) {
			return false
		}
		if !eq(SubtractGallopingInto(nil, a, b), Subtract(a, b)) {
			return false
		}
		if IntersectCountGalloping(a, b) != IntersectCount(a, b) {
			return false
		}
		scratch := append([]uint32(nil), a...)
		return eq(SubtractInPlace(scratch, b), Subtract(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsKernelsMatchMerge(t *testing.T) {
	const universe = 4096
	f := func(av, bv []uint32) bool {
		a, b := mksetMod(av, universe), mksetMod(bv, universe)
		bits := mkbits(universe, b)
		if !eq(IntersectBitsInto(nil, a, bits), Intersect(a, b)) {
			return false
		}
		if !eq(SubtractBitsInto(nil, a, bits), Subtract(a, b)) {
			return false
		}
		if IntersectCountBits(a, bits) != IntersectCount(a, b) {
			return false
		}
		scratch := append([]uint32(nil), a...)
		return eq(SubtractBitsInPlace(scratch, bits), Subtract(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitsContain(t *testing.T) {
	bits := mkbits(200, []uint32{0, 63, 64, 199})
	for _, v := range []uint32{0, 63, 64, 199} {
		if !BitsContain(bits, v) {
			t.Errorf("BitsContain(%d) = false", v)
		}
	}
	for _, v := range []uint32{1, 65, 198, 200, 1 << 20} {
		if BitsContain(bits, v) {
			t.Errorf("BitsContain(%d) = true", v)
		}
	}
}

// mksetMod is mkset with values folded into [0, universe), preserving
// strict ascent.
func mksetMod(vs []uint32, universe uint32) []uint32 {
	var out []uint32
	for _, v := range vs {
		v %= universe
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func TestGallopingIntoSkewedForced(t *testing.T) {
	big := make([]uint32, 8192)
	for i := range big {
		big[i] = uint32(i * 3)
	}
	small := []uint32{0, 7, 9, 300, 8191 * 3}
	if !eq(IntersectGallopingInto(nil, small, big), Intersect(small, big)) {
		t.Error("forced-gallop intersect diverges")
	}
	if !eq(IntersectGallopingInto(nil, big, small), Intersect(small, big)) {
		t.Error("forced-gallop intersect (swapped) diverges")
	}
	if !eq(SubtractGallopingInto(nil, small, big), Subtract(small, big)) {
		t.Error("forced-gallop subtract diverges")
	}
	if got, want := IntersectCountGalloping(small, big), IntersectCount(small, big); got != want {
		t.Errorf("forced-gallop count = %d, want %d", got, want)
	}
	scratch := append([]uint32(nil), small...)
	if !eq(SubtractInPlace(scratch, big), Subtract(small, big)) {
		t.Error("forced-gallop in-place subtract diverges")
	}
}
