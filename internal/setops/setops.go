// Package setops implements merge-based operations on sorted vertex-ID
// lists, the core computation of pattern-aware graph mining (FINGERS §2.1).
//
// Sets are represented as strictly increasing []uint32 slices, matching the
// paper's "ordered lists of vertex IDs" representation. All operations are
// one-pass merges so results stay sorted without explicit sort steps.
//
// The package also provides the segment-level primitives used by the
// FINGERS processing element: fixed-length segments, head lists, the
// segment-pairing binary search, and the bitvector result format produced
// by the intersect units (paper §3.4, §4.2, §4.3).
//
// # Aliasing contract
//
// Every function that returns a set allocates fresh storage: results
// never alias an input slice, so callers may mutate or append to them
// freely. The explicit exceptions are the *Into variants, which append to
// a caller-owned dst (dst must not alias either input), and the *InPlace
// variants, which compact their first argument's prefix.
package setops

// Op identifies one of the three set operations of Equation (1) in the
// paper: S∩N, S−N, and the postponed anti-subtraction N−S.
type Op uint8

const (
	// OpIntersect computes S ∩ N(u): the new vertex u is connected to
	// the pattern vertex being materialized.
	OpIntersect Op = iota
	// OpSubtract computes S − N(u): the new vertex u is disconnected
	// from the pattern vertex being materialized (vertex-induced mining).
	OpSubtract
	// OpAntiSubtract computes N(u) − S. It arises when the pattern vertex
	// is connected to u but to none of the earlier ancestors, whose
	// neighbor-list union was postponed rather than materialized (§2.1).
	OpAntiSubtract
)

// String returns the conventional short name of the operation.
func (op Op) String() string {
	switch op {
	case OpIntersect:
		return "intersect"
	case OpSubtract:
		return "subtract"
	case OpAntiSubtract:
		return "anti-subtract"
	default:
		return "unknown-op"
	}
}

// IsSorted reports whether s is strictly increasing, the invariant every
// set in this package maintains.
func IsSorted(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Intersect returns a ∩ b as a new sorted slice.
func Intersect(a, b []uint32) []uint32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	return IntersectInto(make([]uint32, 0, n), a, b)
}

// IntersectInto appends a ∩ b to dst and returns the extended slice.
// dst may be a zero-length slice sharing storage with neither input.
func IntersectInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectCount returns |a ∩ b| without materializing the result.
func IntersectCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Subtract returns a − b as a new sorted slice.
func Subtract(a, b []uint32) []uint32 {
	return SubtractInto(make([]uint32, 0, len(a)), a, b)
}

// SubtractInto appends a − b to dst and returns the extended slice.
func SubtractInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			i++
			continue
		}
		dst = append(dst, a[i])
		i++
	}
	return dst
}

// SubtractCount returns |a − b| without materializing the result.
func SubtractCount(a, b []uint32) int {
	return len(a) - IntersectCount(a, b)
}

// Union returns a ∪ b as a new sorted slice.
func Union(a, b []uint32) []uint32 {
	return UnionInto(make([]uint32, 0, len(a)+len(b)), a, b)
}

// UnionInto appends a ∪ b to dst and returns the extended slice,
// completing the Into family (intersect and subtract always had one).
// dst follows the aliasing contract: caller-owned, aliasing neither
// input.
func UnionInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// UnionCount returns |a ∪ b| without materializing the result, via
// inclusion–exclusion on the merge-counted intersection.
func UnionCount(a, b []uint32) int {
	return len(a) + len(b) - IntersectCount(a, b)
}

// Apply evaluates the operation on (s, n) following Equation (1):
// intersection and subtraction treat s as the partial candidate set and n
// as the neighbor list; anti-subtraction computes n − s.
func Apply(op Op, s, n []uint32) []uint32 {
	switch op {
	case OpIntersect:
		return Intersect(s, n)
	case OpSubtract:
		return Subtract(s, n)
	case OpAntiSubtract:
		return Subtract(n, s)
	default:
		panic("setops: unknown op")
	}
}

// ApplyInto is Apply appending into dst.
func ApplyInto(op Op, dst, s, n []uint32) []uint32 {
	switch op {
	case OpIntersect:
		return IntersectInto(dst, s, n)
	case OpSubtract:
		return SubtractInto(dst, s, n)
	case OpAntiSubtract:
		return SubtractInto(dst, n, s)
	default:
		panic("setops: unknown op")
	}
}

// Contains reports whether v is in the sorted set s, via binary search.
func Contains(s []uint32, v uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// LowerBound returns the index of the first element ≥ v.
func LowerBound(s []uint32, v uint32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the index of the first element > v.
func UpperBound(s []uint32, v uint32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountLess returns the number of elements strictly below bound, used to
// apply symmetry-breaking restrictions of the form u_j < u_i when only the
// cardinality of the filtered candidate set is needed.
func CountLess(s []uint32, bound uint32) int {
	return LowerBound(s, bound)
}

// FilterLess appends to dst the elements of s strictly below bound.
func FilterLess(dst, s []uint32, bound uint32) []uint32 {
	return append(dst, s[:LowerBound(s, bound)]...)
}

// FilterGreater appends to dst the elements of s strictly above bound.
func FilterGreater(dst, s []uint32, bound uint32) []uint32 {
	return append(dst, s[UpperBound(s, bound):]...)
}

// Clone returns a copy of s.
func Clone(s []uint32) []uint32 {
	out := make([]uint32, len(s))
	copy(out, s)
	return out
}
