package setops

// Adaptive-dispatch kernels for the software miner's hot path. The three
// families trade the same work differently:
//
//   - merge (setops.go): one pass over both inputs, O(|a|+|b|). The
//     baseline, and the best choice when the inputs are of similar size.
//   - galloping (gallop.go and the *Into variants here): exponential
//     probes through the larger input, O(|small| · log |large|). Wins when
//     one side is ≥ gallopSkewThreshold× the other.
//   - bits (this file): probes a precomputed dense membership bitset —
//     one word load per element of the list input, O(|list|), independent
//     of the bitset owner's degree. Wins whenever a bitset exists, i.e.
//     for hub vertices (graph.HubIndex) whose neighbor lists are long
//     enough that n/8 bytes of bitset pay for themselves.
//
// All Into/InPlace variants follow the package's aliasing contract: Into
// appends to a caller-owned dst that must not alias either input; InPlace
// rewrites its first argument's prefix (output length ≤ input length, so
// the compaction is safe) and returns the shortened slice.

// IntersectGallopingInto appends a ∩ b to dst with the skew-adaptive
// kernel of IntersectGalloping and returns the extended slice.
func IntersectGallopingInto(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) < gallopSkewThreshold*len(a) {
		return IntersectInto(dst, a, b)
	}
	j := 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			dst = append(dst, v)
			j++
		}
	}
	return dst
}

// SubtractGallopingInto appends a − b to dst, galloping through b when it
// is much larger than a, and returns the extended slice.
func SubtractGallopingInto(dst, a, b []uint32) []uint32 {
	if len(a) == 0 {
		return dst
	}
	if len(b) < gallopSkewThreshold*len(a) {
		return SubtractInto(dst, a, b)
	}
	j := 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j < len(b) && b[j] == v {
			j++
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// IntersectCountGalloping returns |a ∩ b| with the skew-adaptive kernel,
// without materializing the result.
func IntersectCountGalloping(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) < gallopSkewThreshold*len(a) {
		return IntersectCount(a, b)
	}
	j, n := 0, 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			n++
			j++
		}
	}
	return n
}

// SubtractInPlace compacts a to a − b in place and returns the shortened
// slice, galloping through b when the skew warrants it. a's tail beyond
// the returned length is left in an unspecified state.
func SubtractInPlace(a, b []uint32) []uint32 {
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	w, j := 0, 0
	gallop := len(b) >= gallopSkewThreshold*len(a)
	for _, v := range a {
		if gallop {
			j = gallopSearch(b, j, v)
		} else {
			for j < len(b) && b[j] < v {
				j++
			}
		}
		if j < len(b) && b[j] == v {
			j++
			continue
		}
		a[w] = v
		w++
	}
	return a[:w]
}

// BitsContain reports membership of v in a dense bitset indexed by value.
// Out-of-range values are absent.
func BitsContain(bits []uint64, v uint32) bool {
	w := int(v >> 6)
	return w < len(bits) && bits[w]&(1<<(v&63)) != 0
}

// IntersectBitsInto appends to dst the elements of a present in the dense
// bitset and returns the extended slice: a ∩ bits in O(|a|). The bitset
// must cover every value in a (the *Bits kernels are built per graph, so
// rows span the whole vertex universe).
func IntersectBitsInto(dst, a []uint32, bits []uint64) []uint32 {
	for _, v := range a {
		if bits[v>>6]&(1<<(v&63)) != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// SubtractBitsInto appends to dst the elements of a absent from the dense
// bitset and returns the extended slice: a − bits in O(|a|).
func SubtractBitsInto(dst, a []uint32, bits []uint64) []uint32 {
	for _, v := range a {
		if bits[v>>6]&(1<<(v&63)) == 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// SubtractBitsInPlace compacts a to a − bits in place and returns the
// shortened slice.
func SubtractBitsInPlace(a []uint32, bits []uint64) []uint32 {
	w := 0
	for _, v := range a {
		if bits[v>>6]&(1<<(v&63)) == 0 {
			a[w] = v
			w++
		}
	}
	return a[:w]
}

// IntersectCountBits returns |a ∩ bits| without materializing the result.
func IntersectCountBits(a []uint32, bits []uint64) int {
	n := 0
	for _, v := range a {
		if bits[v>>6]&(1<<(v&63)) != 0 {
			n++
		}
	}
	return n
}
