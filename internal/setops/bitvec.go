package setops

// Bitvec is the result format produced by an intersect unit for one
// segment (Figure 8): bit i tells whether the i-th element of the
// associated segment is in the intersection of the two inputs. Segment
// lengths are small (16 by default) but the iso-area IU sweep of Figure 12
// grows them to 384, so the vector is backed by multiple words.
type Bitvec []uint64

// NewBitvec returns a zeroed bitvector able to hold n bits.
func NewBitvec(n int) Bitvec {
	return make(Bitvec, (n+63)/64)
}

// Set sets bit i.
func (b Bitvec) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitvec) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Or merges other into b with bitwise OR, the collector's aggregation
// primitive for all three set operations (§4.3).
func (b Bitvec) Or(other Bitvec) {
	for i := range other {
		b[i] |= other[i]
	}
}

// SegResult is one intersect-unit output: a bitvector together with the
// segment it annotates. For intersection and anti-subtraction the
// associated segment is the long segment; for subtraction it is the short
// segment (with the padding 1s beyond the segment's real length implied).
type SegResult struct {
	// Assoc identifies the associated segment: its index within its
	// segmentation. Results with equal Assoc are OR-merged.
	Assoc int
	// Seg is the associated segment's elements.
	Seg []uint32
	// Bits marks, per element of Seg, membership in the intersection of
	// the workload's two inputs.
	Bits Bitvec
}

// CompareSegments runs the IU compare unit on one workload: the long
// segment is streamed against each paired short segment, always computing
// the *intersection* regardless of op (A − B = A − (A∩B), §4.3).
//
// It returns one SegResult per associated segment and the number of
// comparator cycles consumed (one element consumed per cycle, so a long
// segment paired with m short segments costs s_l + m·s_s).
func CompareSegments(op Op, p Pairing, w Workload) (results []SegResult, cycles int) {
	switch {
	case w.LongSeg < 0:
		// Unpaired short segment under subtraction: nothing intersects,
		// the all-zero bitvector keeps every element.
		seg := p.Short.Seg(w.ShortStart)
		results = append(results, SegResult{
			Assoc: w.ShortStart,
			Seg:   seg,
			Bits:  NewBitvec(len(seg)),
		})
		cycles = len(seg)
	case w.ShortCount == 0:
		// Anti-subtraction long segment with no paired shorts: the
		// all-zero bitvector keeps the entire long segment.
		seg := p.Long.Seg(w.LongSeg)
		results = append(results, SegResult{
			Assoc: w.LongSeg,
			Seg:   seg,
			Bits:  NewBitvec(len(seg)),
		})
		cycles = len(seg)
	default:
		long := p.Long.Seg(w.LongSeg)
		cycles = len(long)
		switch op {
		case OpSubtract:
			// One bitvector per short segment, marking elements of the
			// short segment found in the long segment.
			for s := w.ShortStart; s < w.ShortStart+w.ShortCount; s++ {
				short := p.Short.Seg(s)
				cycles += len(short)
				bv := NewBitvec(len(short))
				i, j := 0, 0
				for i < len(short) && j < len(long) {
					switch {
					case short[i] < long[j]:
						i++
					case short[i] > long[j]:
						j++
					default:
						bv.Set(i)
						i++
						j++
					}
				}
				results = append(results, SegResult{Assoc: s, Seg: short, Bits: bv})
			}
		default: // OpIntersect, OpAntiSubtract
			// One bitvector over the long segment, marking elements found
			// in any of the paired short segments (which cover disjoint
			// value ranges).
			bv := NewBitvec(len(long))
			for s := w.ShortStart; s < w.ShortStart+w.ShortCount; s++ {
				short := p.Short.Seg(s)
				cycles += len(short)
				i, j := 0, 0
				for i < len(short) && j < len(long) {
					switch {
					case short[i] < long[j]:
						i++
					case short[i] > long[j]:
						j++
					default:
						bv.Set(j)
						i++
						j++
					}
				}
			}
			results = append(results, SegResult{Assoc: w.LongSeg, Seg: long, Bits: bv})
		}
	}
	return results, cycles
}

// Collector aggregates SegResults arriving from the IUs in round-robin
// order and rebuilds the well-formed sorted output list (§4.3). Results
// for the same associated segment must arrive consecutively, which the
// Balance emission order guarantees.
type Collector struct {
	op    Op
	out   []uint32
	cur   SegResult
	valid bool
}

// NewCollector returns a collector for the given operation.
func NewCollector(op Op) *Collector { return &Collector{op: op} }

// Add receives one IU result. Same-segment results are OR-merged; a new
// segment flushes the previous one into the output list.
func (c *Collector) Add(r SegResult) {
	if c.valid && c.cur.Assoc == r.Assoc {
		c.cur.Bits.Or(r.Bits)
		return
	}
	c.flush()
	// Own a copy of the bitvector: the producer may reuse its buffer.
	bits := NewBitvec(len(r.Seg))
	bits.Or(r.Bits)
	c.cur = SegResult{Assoc: r.Assoc, Seg: r.Seg, Bits: bits}
	c.valid = true
}

func (c *Collector) flush() {
	if !c.valid {
		return
	}
	keepSet := c.op == OpIntersect // subtraction keeps the zero bits
	for i, v := range c.cur.Seg {
		if c.cur.Bits.Get(i) == keepSet {
			c.out = append(c.out, v)
		}
	}
	c.valid = false
}

// Finish flushes the pending segment and returns the aggregated sorted
// result list.
func (c *Collector) Finish() []uint32 {
	c.flush()
	return c.out
}
