package setops

// PipelineStats summarizes one segmented set operation: how much work the
// task divider and the intersect units performed. The accelerator timing
// model consumes these numbers; software callers may ignore them.
type PipelineStats struct {
	// Workloads is the number of IU work units the operation divided into,
	// i.e. the available segment-level parallelism.
	Workloads int
	// CompareCycles is the total comparator cycles across all workloads
	// (one element streamed per cycle).
	CompareCycles int
	// SearchSteps is the binary-search work of segment pairing.
	SearchSteps int
	// WorkloadCycles lists the comparator cycles of each workload, in
	// emission order, for list-scheduling onto concrete IUs.
	WorkloadCycles []int
}

// SegmentedApply runs a full set operation through the FINGERS segment
// pipeline — segmentation, head-list pairing, load balancing, per-workload
// compare units, and bitvector aggregation — and returns the result list.
//
// For intersection and subtraction, s is the (short) partial candidate set
// and n the (long) neighbor list; for anti-subtraction the result is n − s.
// The output always equals Apply(op, s, n); the segmented path exists so
// the simulator's functional and timing behaviour come from one mechanism.
func SegmentedApply(op Op, s, n []uint32, longSegLen, shortSegLen, maxLoad int) ([]uint32, PipelineStats) {
	long := Segment(n, longSegLen)
	short := Segment(s, shortSegLen)
	pairing := Pair(long, short)
	workloads := Balance(pairing, op, maxLoad)
	stats := PipelineStats{
		Workloads:      len(workloads),
		SearchSteps:    pairing.SearchSteps,
		WorkloadCycles: make([]int, 0, len(workloads)),
	}
	collector := NewCollector(op)
	for _, w := range workloads {
		results, cycles := CompareSegments(op, pairing, w)
		stats.CompareCycles += cycles
		stats.WorkloadCycles = append(stats.WorkloadCycles, cycles)
		for _, r := range results {
			collector.Add(r)
		}
	}
	return collector.Finish(), stats
}
