package setops

// Skew-aware set operations. The merge kernels in setops.go stream both
// inputs at one element per cycle — exactly what the IU hardware does —
// but the *software* reference miner is free to exploit size skew: when
// one input is much smaller, galloping (exponential-probe binary search)
// finds each element's position in O(log) instead of O(linear). These
// variants keep the software baseline honest for CPU comparisons and are
// used by the plan-cost estimator on very skewed inputs.

// GallopSkewThreshold is the size ratio beyond which galloping beats the
// linear merge (a conventional cutoff; the exact value is not critical).
// It is exported so adaptive dispatchers above this package can predict
// which kernel the *Galloping entry points will select.
const GallopSkewThreshold = 16

// gallopSkewThreshold is the internal alias the kernels use.
const gallopSkewThreshold = GallopSkewThreshold

// gallopSearch returns the first index i ≥ lo with s[i] >= v, probing
// exponentially from lo before binary-searching the bracketed range.
func gallopSearch(s []uint32, lo int, v uint32) int {
	if lo >= len(s) || s[lo] >= v {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(s) && s[hi] < v {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(s) {
		hi = len(s)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntersectGalloping returns a ∩ b, galloping through the larger input
// when the size skew warrants it and falling back to the linear merge
// otherwise.
func IntersectGalloping(a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	if len(b) < gallopSkewThreshold*len(a) {
		return Intersect(a, b)
	}
	out := make([]uint32, 0, len(a))
	j := 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			out = append(out, v)
			j++
		}
	}
	return out
}

// SubtractGalloping returns a − b with the same skew adaptation.
func SubtractGalloping(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return nil
	}
	if len(b) < gallopSkewThreshold*len(a) {
		return Subtract(a, b)
	}
	out := make([]uint32, 0, len(a))
	j := 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j < len(b) && b[j] == v {
			j++
			continue
		}
		out = append(out, v)
	}
	return out
}

// IntersectMany returns the intersection of all sets, smallest-first so
// the running result only shrinks. Zero sets yield an empty, non-nil
// slice (the caller supplies the universe; there is no implicit one).
//
// Like every set-returning function in this package, the result is
// freshly allocated and never aliases an input — in particular the
// single-set call returns a copy — so callers may mutate it freely.
func IntersectMany(sets ...[]uint32) []uint32 {
	if len(sets) == 0 {
		return []uint32{}
	}
	smallest := 0
	for i, s := range sets {
		if len(s) < len(sets[smallest]) {
			smallest = i
		}
	}
	out := Clone(sets[smallest])
	for i, s := range sets {
		if i == smallest || len(out) == 0 {
			continue
		}
		out = IntersectGalloping(out, s)
	}
	return out
}

// SubtractMany returns a minus the union of all bs, without materializing
// the union (the postponed anti-subtraction evaluation order, §2.1). The
// result is freshly allocated and never aliases a or any b.
func SubtractMany(a []uint32, bs ...[]uint32) []uint32 {
	out := Clone(a)
	for _, b := range bs {
		if len(out) == 0 {
			break
		}
		out = SubtractGalloping(out, b)
	}
	return out
}
