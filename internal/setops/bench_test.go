package setops

import (
	"math/rand"
	"testing"
)

func benchSets(shortLen, longLen int) (s, n []uint32) {
	rng := rand.New(rand.NewSource(1))
	s = randomSet(rng, shortLen, uint32(longLen*4))
	n = randomSet(rng, longLen, uint32(longLen*4))
	return s, n
}

func BenchmarkIntersect(b *testing.B) {
	s, n := benchSets(96, 1024)
	b.ReportAllocs()
	dst := make([]uint32, 0, len(s))
	for i := 0; i < b.N; i++ {
		dst = IntersectInto(dst[:0], s, n)
	}
	_ = dst
}

func BenchmarkSubtract(b *testing.B) {
	s, n := benchSets(96, 1024)
	b.ReportAllocs()
	dst := make([]uint32, 0, len(s))
	for i := 0; i < b.N; i++ {
		dst = SubtractInto(dst[:0], s, n)
	}
	_ = dst
}

// BenchmarkSegmentedApply measures the full segment pipeline (pairing,
// balancing, compare units, bitvector aggregation) against the plain
// merge of BenchmarkIntersect.
func BenchmarkSegmentedApply(b *testing.B) {
	s, n := benchSets(96, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SegmentedApply(OpIntersect, s, n, DefaultLongSegLen, DefaultShortSegLen, 2)
	}
}

func BenchmarkPair(b *testing.B) {
	s, n := benchSets(96, 1024)
	long := Segment(n, DefaultLongSegLen)
	short := Segment(s, DefaultShortSegLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pair(long, short)
	}
}
