package setops

// HybridSet is one set under the adaptive storage scheme: exactly one
// of the two representations is populated. The zero value is the empty
// array-format set. Construction via MakeHybrid applies the
// ChooseFormat density heuristic; ArraySet/BitmapSet force a format
// (the forced storage policies of graph.HybridAdj and the differential
// tests).
//
// The dispatcher functions below route every operand-format pair to
// the cheapest kernel in the matrix:
//
//	           array operand            bitmap operand
//	array ×    merge / gallop           container probe (AB)
//	bitmap ×   container probe (BA)     word-parallel AND/ANDNOT/OR
//
// Into variants decode results to the package's native sorted []uint32
// interchange format (appending to caller-owned dst, per the aliasing
// contract); Count variants never materialize.
type HybridSet struct {
	arr []uint32
	bm  *Bitmap
}

// MakeHybrid stores the strictly increasing slice s in the format the
// density heuristic picks. The array format aliases s; the bitmap
// format copies it into fresh container storage.
func MakeHybrid(s []uint32) HybridSet {
	if len(s) == 0 {
		return HybridSet{}
	}
	span := s[len(s)-1] - s[0] + 1
	if ChooseFormat(len(s), span) == FormatBitmap {
		return HybridSet{bm: NewBitmapFromSorted(s)}
	}
	return HybridSet{arr: s}
}

// ArraySet wraps s (aliased, not copied) as an array-format set.
func ArraySet(s []uint32) HybridSet { return HybridSet{arr: s} }

// BitmapSet wraps b as a bitmap-format set; a nil b is the empty set.
func BitmapSet(b *Bitmap) HybridSet {
	if b == nil {
		return HybridSet{}
	}
	return HybridSet{bm: b}
}

// Format reports the set's physical representation.
func (h HybridSet) Format() Format {
	if h.bm != nil {
		return FormatBitmap
	}
	return FormatArray
}

// Card returns the cardinality.
func (h HybridSet) Card() int {
	if h.bm != nil {
		return h.bm.Card()
	}
	return len(h.arr)
}

// Bytes returns the set's in-memory footprint: 4 bytes per element for
// arrays, 12 per stored container for bitmaps.
func (h HybridSet) Bytes() int64 {
	if h.bm != nil {
		return h.bm.Bytes()
	}
	return int64(4 * len(h.arr))
}

// Contains reports membership of v.
func (h HybridSet) Contains(v uint32) bool {
	if h.bm != nil {
		return h.bm.Contains(v)
	}
	return Contains(h.arr, v)
}

// AppendTo appends the set's elements to dst in increasing order.
func (h HybridSet) AppendTo(dst []uint32) []uint32 {
	if h.bm != nil {
		return h.bm.AppendTo(dst)
	}
	return append(dst, h.arr...)
}

// IntersectHybridInto appends a ∩ b to dst, sorted.
func IntersectHybridInto(dst []uint32, a, b HybridSet) []uint32 {
	switch {
	case a.bm == nil && b.bm == nil:
		return IntersectGallopingInto(dst, a.arr, b.arr)
	case a.bm == nil:
		return IntersectArrayBitmapInto(dst, a.arr, b.bm)
	case b.bm == nil:
		return IntersectArrayBitmapInto(dst, b.arr, a.bm)
	default:
		return IntersectBitmapsInto(dst, a.bm, b.bm)
	}
}

// IntersectHybridCount returns |a ∩ b| without materializing.
func IntersectHybridCount(a, b HybridSet) int {
	switch {
	case a.bm == nil && b.bm == nil:
		return IntersectCountGalloping(a.arr, b.arr)
	case a.bm == nil:
		return IntersectArrayBitmapCount(a.arr, b.bm)
	case b.bm == nil:
		return IntersectArrayBitmapCount(b.arr, a.bm)
	default:
		return IntersectBitmapsCount(a.bm, b.bm)
	}
}

// SubtractHybridInto appends a − b to dst, sorted.
func SubtractHybridInto(dst []uint32, a, b HybridSet) []uint32 {
	switch {
	case a.bm == nil && b.bm == nil:
		return SubtractGallopingInto(dst, a.arr, b.arr)
	case a.bm == nil:
		return SubtractArrayBitmapInto(dst, a.arr, b.bm)
	case b.bm == nil:
		return SubtractBitmapArrayInto(dst, a.bm, b.arr)
	default:
		return SubtractBitmapsInto(dst, a.bm, b.bm)
	}
}

// SubtractHybridCount returns |a − b| without materializing.
func SubtractHybridCount(a, b HybridSet) int {
	switch {
	case a.bm == nil && b.bm == nil:
		return len(a.arr) - IntersectCountGalloping(a.arr, b.arr)
	case a.bm == nil:
		return SubtractArrayBitmapCount(a.arr, b.bm)
	case b.bm == nil:
		return SubtractBitmapArrayCount(a.bm, b.arr)
	default:
		return SubtractBitmapsCount(a.bm, b.bm)
	}
}

// UnionHybridInto appends a ∪ b to dst, sorted.
func UnionHybridInto(dst []uint32, a, b HybridSet) []uint32 {
	switch {
	case a.bm == nil && b.bm == nil:
		return UnionInto(dst, a.arr, b.arr)
	case a.bm == nil:
		return UnionArrayBitmapInto(dst, a.arr, b.bm)
	case b.bm == nil:
		return UnionArrayBitmapInto(dst, b.arr, a.bm)
	default:
		return UnionBitmapsInto(dst, a.bm, b.bm)
	}
}

// UnionHybridCount returns |a ∪ b| without materializing.
func UnionHybridCount(a, b HybridSet) int {
	switch {
	case a.bm == nil && b.bm == nil:
		return UnionCount(a.arr, b.arr)
	case a.bm == nil:
		return UnionArrayBitmapCount(a.arr, b.bm)
	case b.bm == nil:
		return UnionArrayBitmapCount(b.arr, a.bm)
	default:
		return UnionBitmapsCount(a.bm, b.bm)
	}
}

// ApplyHybridInto evaluates op on (s, n) like ApplyInto, format-aware.
func ApplyHybridInto(op Op, dst []uint32, s, n HybridSet) []uint32 {
	switch op {
	case OpIntersect:
		return IntersectHybridInto(dst, s, n)
	case OpSubtract:
		return SubtractHybridInto(dst, s, n)
	case OpAntiSubtract:
		return SubtractHybridInto(dst, n, s)
	default:
		panic("setops: unknown op")
	}
}
