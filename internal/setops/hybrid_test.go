package setops

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// adversarialSets is the shared grid of densities the hybrid kernels
// must survive: empty, singleton, full-universe runs, clustered bursts,
// container-boundary values, and sparse spreads.
func adversarialSets() [][]uint32 {
	full := make([]uint32, 256)
	for i := range full {
		full[i] = uint32(i)
	}
	clustered := []uint32{0, 1, 2, 3, 63, 64, 65, 127, 128, 129, 1000, 1001, 1002, 1003, 1004}
	sparse := []uint32{7, 300, 9000, 70000, 1 << 20, 1 << 25, 1<<31 + 5}
	boundary := []uint32{63, 64, 127, 128, 191, 192}
	run := make([]uint32, 100)
	for i := range run {
		run[i] = uint32(500 + i)
	}
	return [][]uint32{
		nil,
		{},
		{42},
		{0},
		{1<<32 - 1},
		full,
		clustered,
		sparse,
		boundary,
		run,
		{0, 1<<32 - 1},
	}
}

func TestChooseFormat(t *testing.T) {
	cases := []struct {
		card int
		span uint32
		want Format
	}{
		{0, 0, FormatArray},
		{1, 1, FormatArray},          // 4 bytes < 12
		{3, 1, FormatBitmap},         // 12 >= 12·1
		{64, 64, FormatBitmap},       // full container
		{10, 1 << 20, FormatArray},   // sparse spread
		{1000, 1100, FormatBitmap},   // dense run
		{100, 6400, FormatArray},     // one per container: 400 < 12·101
		{400, 6400, FormatBitmap},    // four per container
	}
	for _, c := range cases {
		if got := ChooseFormat(c.card, c.span); got != c.want {
			t.Errorf("ChooseFormat(%d, %d) = %v, want %v", c.card, c.span, got, c.want)
		}
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	for i, s := range adversarialSets() {
		b := NewBitmapFromSorted(s)
		if b.Card() != len(s) {
			t.Errorf("set %d: Card = %d, want %d", i, b.Card(), len(s))
		}
		got := b.AppendTo(nil)
		if len(got) == 0 && len(s) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, []uint32(s)) {
			t.Errorf("set %d: round trip = %v, want %v", i, got, s)
		}
		for _, v := range s {
			if !b.Contains(v) {
				t.Errorf("set %d: Contains(%d) = false", i, v)
			}
		}
		if len(s) > 0 && b.Contains(s[0]+1) != Contains(s, s[0]+1) {
			t.Errorf("set %d: Contains(%d) disagrees with array", i, s[0]+1)
		}
		if b.Bytes() != int64(12*b.Containers()) {
			t.Errorf("set %d: Bytes = %d, want %d", i, b.Bytes(), 12*b.Containers())
		}
	}
}

// checkHybridPair runs the full kernel matrix on one (a, b) pair under
// every operand-format combination and compares against the merge
// oracles.
func checkHybridPair(t *testing.T, a, b []uint32) {
	t.Helper()
	wantI := Intersect(a, b)
	wantS := Subtract(a, b)
	wantU := Union(a, b)
	forms := []struct {
		name string
		wrap func([]uint32) HybridSet
	}{
		{"array", func(s []uint32) HybridSet { return ArraySet(s) }},
		{"bitmap", func(s []uint32) HybridSet { return BitmapSet(NewBitmapFromSorted(s)) }},
	}
	for _, fa := range forms {
		for _, fb := range forms {
			ha, hb := fa.wrap(a), fb.wrap(b)
			label := fa.name + "×" + fb.name
			if got := IntersectHybridInto(nil, ha, hb); !equalSets(got, wantI) {
				t.Errorf("%s IntersectHybridInto(%v, %v) = %v, want %v", label, a, b, got, wantI)
			}
			if got := IntersectHybridCount(ha, hb); got != len(wantI) {
				t.Errorf("%s IntersectHybridCount(%v, %v) = %d, want %d", label, a, b, got, len(wantI))
			}
			if got := SubtractHybridInto(nil, ha, hb); !equalSets(got, wantS) {
				t.Errorf("%s SubtractHybridInto(%v, %v) = %v, want %v", label, a, b, got, wantS)
			}
			if got := SubtractHybridCount(ha, hb); got != len(wantS) {
				t.Errorf("%s SubtractHybridCount(%v, %v) = %d, want %d", label, a, b, got, len(wantS))
			}
			if got := UnionHybridInto(nil, ha, hb); !equalSets(got, wantU) {
				t.Errorf("%s UnionHybridInto(%v, %v) = %v, want %v", label, a, b, got, wantU)
			}
			if got := UnionHybridCount(ha, hb); got != len(wantU) {
				t.Errorf("%s UnionHybridCount(%v, %v) = %d, want %d", label, a, b, got, len(wantU))
			}
			for _, op := range []Op{OpIntersect, OpSubtract, OpAntiSubtract} {
				want := Apply(op, a, b)
				if got := ApplyHybridInto(op, nil, ha, hb); !equalSets(got, want) {
					t.Errorf("%s ApplyHybridInto(%v, %v, %v) = %v, want %v", label, op, a, b, got, want)
				}
			}
		}
	}
}

func equalSets(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHybridKernelMatrix(t *testing.T) {
	sets := adversarialSets()
	for i, a := range sets {
		for j, b := range sets {
			t.Run(fmt.Sprintf("%dx%d", i, j), func(t *testing.T) {
				checkHybridPair(t, a, b)
			})
		}
	}
}

func TestUnionIntoAndCount(t *testing.T) {
	sets := adversarialSets()
	for _, a := range sets {
		for _, b := range sets {
			want := Union(a, b)
			prefix := []uint32{9999}
			got := UnionInto(Clone(prefix), a, b)
			if !equalSets(got[:1], prefix) || !equalSets(got[1:], want) {
				t.Fatalf("UnionInto(%v, %v) = %v, want prefix+%v", a, b, got, want)
			}
			if n := UnionCount(a, b); n != len(want) {
				t.Fatalf("UnionCount(%v, %v) = %d, want %d", a, b, n, len(want))
			}
		}
	}
}

// bruteBounded filters s to the open window (lo, hi).
func bruteBounded(s []uint32, lo, hi uint32, hasLo, hasHi bool) []uint32 {
	var out []uint32
	for _, v := range s {
		if hasLo && v <= lo {
			continue
		}
		if hasHi && v >= hi {
			continue
		}
		out = append(out, v)
	}
	return out
}

func TestBoundedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := uint32(2048)
	denseWords := func(s []uint32) []uint64 {
		w := make([]uint64, (universe+63)/64)
		for _, v := range s {
			w[v>>6] |= 1 << (v & 63)
		}
		return w
	}
	randSet := func(n int) []uint32 {
		seen := map[uint32]bool{}
		var out []uint32
		for len(out) < n {
			v := uint32(rng.Intn(int(universe)))
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sortU32(out)
		return out
	}
	for trial := 0; trial < 200; trial++ {
		a := randSet(rng.Intn(120))
		b := randSet(rng.Intn(120))
		lo := uint32(rng.Intn(int(universe)))
		hi := uint32(rng.Intn(int(universe)))
		hasLo := rng.Intn(2) == 0
		hasHi := rng.Intn(2) == 0
		wantA := len(bruteBounded(a, lo, hi, hasLo, hasHi))
		wantAB := len(bruteBounded(Intersect(a, b), lo, hi, hasLo, hasHi))
		ba, bb := NewBitmapFromSorted(a), NewBitmapFromSorted(b)
		da, db := denseWords(a), denseWords(b)
		if got := ba.CountBounded(lo, hi, hasLo, hasHi); got != wantA {
			t.Fatalf("trial %d: CountBounded = %d, want %d", trial, got, wantA)
		}
		if got := IntersectBitmapsCountBounded(ba, bb, lo, hi, hasLo, hasHi); got != wantAB {
			t.Fatalf("trial %d: IntersectBitmapsCountBounded = %d, want %d", trial, got, wantAB)
		}
		if got := IntersectBitmapBitsCountBounded(ba, db, lo, hi, hasLo, hasHi); got != wantAB {
			t.Fatalf("trial %d: IntersectBitmapBitsCountBounded = %d, want %d", trial, got, wantAB)
		}
		if got := CountBitsBounded(da, lo, hi, hasLo, hasHi); got != wantA {
			t.Fatalf("trial %d: CountBitsBounded = %d, want %d", trial, got, wantA)
		}
		if got := IntersectBitsCountBounded(da, db, lo, hi, hasLo, hasHi); got != wantAB {
			t.Fatalf("trial %d: IntersectBitsCountBounded = %d, want %d", trial, got, wantAB)
		}
	}
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestMakeHybridPicksByDensity(t *testing.T) {
	run := make([]uint32, 128)
	for i := range run {
		run[i] = uint32(1000 + i)
	}
	if f := MakeHybrid(run).Format(); f != FormatBitmap {
		t.Errorf("dense run stored as %v, want bitmap", f)
	}
	sparse := []uint32{1, 10_000, 20_000_000}
	if f := MakeHybrid(sparse).Format(); f != FormatArray {
		t.Errorf("sparse spread stored as %v, want array", f)
	}
	if f := MakeHybrid(nil).Format(); f != FormatArray {
		t.Errorf("empty set stored as %v, want array", f)
	}
}
