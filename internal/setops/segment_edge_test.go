package setops

import "testing"

// TestPairEmptySegmentations covers the degenerate pairings: an empty
// long or short side must produce an all-zero load table (sized to the
// long side) and charge no search steps.
func TestPairEmptySegmentations(t *testing.T) {
	empty := Segment(nil, 4)
	full := Segment([]uint32{1, 2, 3, 4, 5}, 2)

	p := Pair(empty, full) // no long segments
	if len(p.Loads) != 0 || p.SearchSteps != 0 {
		t.Errorf("Pair(∅, s): loads=%v steps=%d, want none", p.Loads, p.SearchSteps)
	}

	p = Pair(full, empty) // no short segments
	if len(p.Loads) != full.NumSegments() {
		t.Fatalf("Pair(s, ∅): %d loads, want %d", len(p.Loads), full.NumSegments())
	}
	for i, ld := range p.Loads {
		if ld.ShortCount != 0 {
			t.Errorf("Pair(s, ∅): load[%d] = %+v, want zero", i, ld)
		}
	}
	if p.SearchSteps != 0 {
		t.Errorf("Pair(s, ∅): steps=%d, want 0", p.SearchSteps)
	}

	p = Pair(empty, empty)
	if len(p.Loads) != 0 || p.SearchSteps != 0 {
		t.Errorf("Pair(∅, ∅): loads=%v steps=%d, want none", p.Loads, p.SearchSteps)
	}
}

// TestPairBoundaryHeads pins the inclusive overlap semantics at segment
// boundaries: a short head equal to a long segment's max, and a short
// max equal to a long head, both count as overlap.
func TestPairBoundaryHeads(t *testing.T) {
	long := Segment([]uint32{10, 20, 30, 40}, 2) // ranges [10,20] and [30,40]
	short := Segment([]uint32{20, 30}, 1)        // heads exactly on the boundaries
	p := Pair(long, short)
	want := []SegLoad{
		{ShortStart: 0, ShortCount: 1}, // [10,20] ← {20}
		{ShortStart: 1, ShortCount: 1}, // [30,40] ← {30}
	}
	for i, w := range want {
		if p.Loads[i] != w {
			t.Errorf("load[%d] = %+v, want %+v", i, p.Loads[i], w)
		}
	}

	// One short value past the last long max must pair with nothing.
	p = Pair(long, Segment([]uint32{41}, 1))
	for i, ld := range p.Loads {
		if ld.ShortCount != 0 {
			t.Errorf("past-the-end head paired with load[%d] = %+v", i, ld)
		}
	}

	// One short value below the first long head must pair with nothing.
	p = Pair(long, Segment([]uint32{9}, 1))
	for i, ld := range p.Loads {
		if ld.ShortCount != 0 {
			t.Errorf("before-the-start head paired with load[%d] = %+v", i, ld)
		}
	}
}

// TestBalanceMaxLoadExactlyMet checks the split boundary: a long segment
// whose load equals maxLoad must stay a single workload, and one past it
// must split.
func TestBalanceMaxLoadExactlyMet(t *testing.T) {
	long := Segment([]uint32{0, 100}, 16)
	short := Segment([]uint32{1, 2, 3, 4, 5, 6}, 2) // 3 short segments
	p := Pair(long, short)
	if p.Loads[0].ShortCount != 3 {
		t.Fatalf("load = %+v, want ShortCount 3", p.Loads[0])
	}
	if ws := Balance(p, OpIntersect, 3); len(ws) != 1 {
		t.Errorf("load == maxLoad split into %d workloads, want 1", len(ws))
	}
	if ws := Balance(p, OpIntersect, 2); len(ws) != 2 {
		t.Errorf("load == maxLoad+1 split into %d workloads, want 2", len(ws))
	}
}

// TestPairIntoReuse checks PairInto against Pair and that a reused
// Pairing clears stale loads from a previous, larger pairing.
func TestPairIntoReuse(t *testing.T) {
	var p Pairing
	big := Segment([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2)
	shrt := Segment([]uint32{3, 7}, 1)
	PairInto(&p, big, shrt)
	ref := Pair(big, shrt)
	if len(p.Loads) != len(ref.Loads) || p.SearchSteps != ref.SearchSteps {
		t.Fatalf("PairInto != Pair: %+v vs %+v", p, ref)
	}
	for i := range ref.Loads {
		if p.Loads[i] != ref.Loads[i] {
			t.Errorf("load[%d] = %+v, want %+v", i, p.Loads[i], ref.Loads[i])
		}
	}
	// Re-pair into the same Pairing with fewer long segments: stale loads
	// beyond the new length must be gone, and the shared ones reset.
	small := Segment([]uint32{100, 200}, 2)
	PairInto(&p, small, Segment([]uint32{1}, 1))
	if len(p.Loads) != 1 || p.Loads[0].ShortCount != 0 {
		t.Errorf("reused pairing kept stale state: %+v", p.Loads)
	}
}

// TestPairIntoZeroAllocSteadyState gates the hot path: once Loads has
// warmed to capacity, PairInto must not allocate.
func TestPairIntoZeroAllocSteadyState(t *testing.T) {
	long := Segment([]uint32{2, 5, 9, 25, 26, 40, 42, 48, 50, 58}, 2)
	short := Segment([]uint32{3, 12, 14, 27, 33, 55}, 2)
	var p Pairing
	PairInto(&p, long, short) // warm Loads
	allocs := testing.AllocsPerRun(100, func() {
		PairInto(&p, long, short)
	})
	if allocs != 0 {
		t.Errorf("PairInto allocates %.1f objects per call at steady state, want 0", allocs)
	}
}
