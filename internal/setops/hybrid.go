package setops

// SISA-style hybrid set storage (ROADMAP "hybrid set representations";
// PAPERS.md, SISA). The merge/gallop/bits kernels above dispatch per
// *call*; this file makes the *storage* adaptive per set: each set is
// kept either as the package's native sorted []uint32 or as a
// roaring-like compressed bitmap — 64-bit word containers keyed by the
// value's high bits, with only the nonzero containers stored — chosen
// by a density heuristic (ChooseFormat). The full operand-format kernel
// matrix lives here too: intersect / subtract / union with Into and
// Count variants for every pairing of the two formats. Array×array
// delegates to the existing merge/gallop kernels, array×bitmap probes
// containers while galloping through the key list, and bitmap×bitmap
// is word-parallel AND / ANDNOT / OR with popcount counting.
//
// The bounded-count kernels at the bottom serve the software miner's
// leaf fast path: counting |a ∩ b| or |a − b| restricted to an open
// interval (lo, hi) — the symmetry-breaking window — without decoding,
// via partial-word masks at the boundary containers.
//
// Aliasing contract: identical to the rest of the package. *Into
// variants append decoded sorted values to a caller-owned dst that must
// not alias any input; functions returning a *Bitmap allocate fresh
// container storage.

import "math/bits"

// Format identifies the physical representation of one hybrid set.
type Format uint8

const (
	// FormatArray stores the set as a strictly increasing []uint32.
	FormatArray Format = iota
	// FormatBitmap stores the set as a compressed bitmap of nonzero
	// 64-bit word containers.
	FormatBitmap
)

// String returns the conventional short name of the format.
func (f Format) String() string {
	switch f {
	case FormatArray:
		return "array"
	case FormatBitmap:
		return "bitmap"
	default:
		return "unknown-format"
	}
}

// bitmapWordBytes is the in-memory cost of one stored container: a
// 4-byte key plus an 8-byte word.
const bitmapWordBytes = 12

// ChooseFormat picks the cheaper representation for a set of the given
// cardinality whose values span the half-open range [first, first+span)
// — span is last−first+1 for a nonempty set. An array costs 4 bytes per
// element; a bitmap costs at most 12 bytes per container (4-byte key +
// 8-byte word) and the span bounds the container count by span/64+1, so
// the bitmap wins once the set packs at least three elements per
// potential container. Dense sets (cliques, hubs of community graphs)
// clear that easily; sparse power-law tails never do.
func ChooseFormat(card int, span uint32) Format {
	if card == 0 {
		return FormatArray
	}
	maxContainers := int(span>>6) + 1
	if 4*card >= bitmapWordBytes*maxContainers {
		return FormatBitmap
	}
	return FormatArray
}

// Bitmap is a compressed bitmap over uint32 values: strictly increasing
// container keys (value >> 6) with a parallel slice of nonzero 64-bit
// words. Absent containers are all-zero. The zero value is the empty
// set.
type Bitmap struct {
	keys  []uint32
	words []uint64
	card  int
}

// NewBitmapFromSorted builds a bitmap from a strictly increasing slice.
func NewBitmapFromSorted(s []uint32) *Bitmap {
	b := &Bitmap{}
	b.SetSorted(s)
	return b
}

// SetSorted replaces b's contents with the strictly increasing slice s,
// reusing b's container storage when capacity allows.
func (b *Bitmap) SetSorted(s []uint32) {
	b.keys = b.keys[:0]
	b.words = b.words[:0]
	b.card = len(s)
	for i := 0; i < len(s); {
		key := s[i] >> 6
		var w uint64
		for i < len(s) && s[i]>>6 == key {
			w |= 1 << (s[i] & 63)
			i++
		}
		b.keys = append(b.keys, key)
		b.words = append(b.words, w)
	}
}

// Card returns the cardinality.
func (b *Bitmap) Card() int {
	if b == nil {
		return 0
	}
	return b.card
}

// Containers returns the number of stored (nonzero) containers.
func (b *Bitmap) Containers() int {
	if b == nil {
		return 0
	}
	return len(b.keys)
}

// Bytes returns the in-memory footprint of the container storage.
func (b *Bitmap) Bytes() int64 {
	if b == nil {
		return 0
	}
	return int64(len(b.keys)) * bitmapWordBytes
}

// Contains reports membership of v, binary-searching the key list.
func (b *Bitmap) Contains(v uint32) bool {
	if b == nil {
		return false
	}
	key := v >> 6
	i := LowerBound(b.keys, key)
	return i < len(b.keys) && b.keys[i] == key && b.words[i]&(1<<(v&63)) != 0
}

// AppendTo appends the set's elements to dst in increasing order and
// returns the extended slice.
func (b *Bitmap) AppendTo(dst []uint32) []uint32 {
	if b == nil {
		return dst
	}
	for i, key := range b.keys {
		base := key << 6
		w := b.words[i]
		for w != 0 {
			dst = append(dst, base|uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ---------------------------------------------------------------------
// array × bitmap probe kernels
//
// Both the array and the bitmap's key list are sorted, so a probe walks
// the key list monotonically, galloping when the array jumps containers.

// probeAdvance returns the first index i ≥ j with keys[i] >= key.
func probeAdvance(keys []uint32, j int, key uint32) int {
	return gallopSearch(keys, j, key)
}

// IntersectArrayBitmapInto appends a ∩ b to dst: one container probe
// per element of a, O(|a| · log containers) worst case but O(|a|) on
// clustered inputs. The result is sorted.
func IntersectArrayBitmapInto(dst, a []uint32, b *Bitmap) []uint32 {
	if b == nil || len(a) == 0 || len(b.keys) == 0 {
		return dst
	}
	j := 0
	for _, v := range a {
		key := v >> 6
		if b.keys[j] != key {
			j = probeAdvance(b.keys, j, key)
			if j == len(b.keys) {
				break
			}
			if b.keys[j] != key {
				continue
			}
		}
		if b.words[j]&(1<<(v&63)) != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// IntersectArrayBitmapCount returns |a ∩ b| without materializing.
func IntersectArrayBitmapCount(a []uint32, b *Bitmap) int {
	if b == nil || len(a) == 0 || len(b.keys) == 0 {
		return 0
	}
	j, n := 0, 0
	for _, v := range a {
		key := v >> 6
		if b.keys[j] != key {
			j = probeAdvance(b.keys, j, key)
			if j == len(b.keys) {
				break
			}
			if b.keys[j] != key {
				continue
			}
		}
		if b.words[j]&(1<<(v&63)) != 0 {
			n++
		}
	}
	return n
}

// SubtractArrayBitmapInto appends a − b to dst.
func SubtractArrayBitmapInto(dst, a []uint32, b *Bitmap) []uint32 {
	if b == nil || len(b.keys) == 0 {
		return append(dst, a...)
	}
	j := 0
	for _, v := range a {
		key := v >> 6
		if j < len(b.keys) && b.keys[j] != key {
			j = probeAdvance(b.keys, j, key)
		}
		if j < len(b.keys) && b.keys[j] == key && b.words[j]&(1<<(v&63)) != 0 {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// SubtractArrayBitmapCount returns |a − b| without materializing.
func SubtractArrayBitmapCount(a []uint32, b *Bitmap) int {
	return len(a) - IntersectArrayBitmapCount(a, b)
}

// SubtractArrayBitmapInPlace compacts a to a − b in place and returns
// the shortened slice, following the package's *InPlace contract.
func SubtractArrayBitmapInPlace(a []uint32, b *Bitmap) []uint32 {
	if b == nil || len(b.keys) == 0 {
		return a
	}
	w, j := 0, 0
	for _, v := range a {
		key := v >> 6
		if j < len(b.keys) && b.keys[j] != key {
			j = probeAdvance(b.keys, j, key)
		}
		if j < len(b.keys) && b.keys[j] == key && b.words[j]&(1<<(v&63)) != 0 {
			continue
		}
		a[w] = v
		w++
	}
	return a[:w]
}

// SubtractBitmapArrayInto appends b − a to dst (the anti-subtraction
// orientation N−S when N is stored as a bitmap): decode b's containers
// in order, clearing the bits named by a first so the decode loop does
// the subtraction for free.
func SubtractBitmapArrayInto(dst []uint32, b *Bitmap, a []uint32) []uint32 {
	if b == nil {
		return dst
	}
	i := 0
	for k, key := range b.keys {
		w := b.words[k]
		// Clear every bit of this container that a names.
		for i < len(a) && a[i]>>6 < key {
			i++
		}
		for i < len(a) && a[i]>>6 == key {
			w &^= 1 << (a[i] & 63)
			i++
		}
		base := key << 6
		for w != 0 {
			dst = append(dst, base|uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// SubtractBitmapArrayCount returns |b − a| without materializing.
func SubtractBitmapArrayCount(b *Bitmap, a []uint32) int {
	return b.Card() - IntersectArrayBitmapCount(a, b)
}

// ---------------------------------------------------------------------
// bitmap × bitmap word-parallel kernels
//
// All walk the two sorted key lists in one merge pass and combine the
// paired words with AND / ANDNOT / OR; counting replaces the decode
// with popcount.

// AndBitmaps returns a ∩ b as a fresh bitmap.
func AndBitmaps(a, b *Bitmap) *Bitmap {
	out := &Bitmap{}
	if a == nil || b == nil {
		return out
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if w := a.words[i] & b.words[j]; w != 0 {
				out.keys = append(out.keys, a.keys[i])
				out.words = append(out.words, w)
				out.card += bits.OnesCount64(w)
			}
			i++
			j++
		}
	}
	return out
}

// AndNotBitmaps returns a − b as a fresh bitmap.
func AndNotBitmaps(a, b *Bitmap) *Bitmap {
	out := &Bitmap{}
	if a == nil {
		return out
	}
	j := 0
	for i, key := range a.keys {
		w := a.words[i]
		if b != nil {
			for j < len(b.keys) && b.keys[j] < key {
				j++
			}
			if j < len(b.keys) && b.keys[j] == key {
				w &^= b.words[j]
			}
		}
		if w != 0 {
			out.keys = append(out.keys, key)
			out.words = append(out.words, w)
			out.card += bits.OnesCount64(w)
		}
	}
	return out
}

// OrBitmaps returns a ∪ b as a fresh bitmap.
func OrBitmaps(a, b *Bitmap) *Bitmap {
	out := &Bitmap{}
	if a == nil {
		a = out
	}
	if b == nil {
		b = out
	}
	i, j := 0, 0
	push := func(key uint32, w uint64) {
		out.keys = append(out.keys, key)
		out.words = append(out.words, w)
		out.card += bits.OnesCount64(w)
	}
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			push(a.keys[i], a.words[i])
			i++
		case a.keys[i] > b.keys[j]:
			push(b.keys[j], b.words[j])
			j++
		default:
			push(a.keys[i], a.words[i]|b.words[j])
			i++
			j++
		}
	}
	for ; i < len(a.keys); i++ {
		push(a.keys[i], a.words[i])
	}
	for ; j < len(b.keys); j++ {
		push(b.keys[j], b.words[j])
	}
	return out
}

// IntersectBitmapsCount returns |a ∩ b| by popcounting paired words.
func IntersectBitmapsCount(a, b *Bitmap) int {
	if a == nil || b == nil {
		return 0
	}
	i, j, n := 0, 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			n += bits.OnesCount64(a.words[i] & b.words[j])
			i++
			j++
		}
	}
	return n
}

// SubtractBitmapsCount returns |a − b|.
func SubtractBitmapsCount(a, b *Bitmap) int {
	return a.Card() - IntersectBitmapsCount(a, b)
}

// UnionBitmapsCount returns |a ∪ b|.
func UnionBitmapsCount(a, b *Bitmap) int {
	return a.Card() + b.Card() - IntersectBitmapsCount(a, b)
}

// IntersectBitmapsInto appends a ∩ b to dst as decoded sorted values.
func IntersectBitmapsInto(dst []uint32, a, b *Bitmap) []uint32 {
	if a == nil || b == nil {
		return dst
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			w := a.words[i] & b.words[j]
			base := a.keys[i] << 6
			for w != 0 {
				dst = append(dst, base|uint32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
			i++
			j++
		}
	}
	return dst
}

// SubtractBitmapsInto appends a − b to dst as decoded sorted values.
func SubtractBitmapsInto(dst []uint32, a, b *Bitmap) []uint32 {
	if a == nil {
		return dst
	}
	j := 0
	for i, key := range a.keys {
		w := a.words[i]
		if b != nil {
			for j < len(b.keys) && b.keys[j] < key {
				j++
			}
			if j < len(b.keys) && b.keys[j] == key {
				w &^= b.words[j]
			}
		}
		base := key << 6
		for w != 0 {
			dst = append(dst, base|uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// UnionBitmapsInto appends a ∪ b to dst as decoded sorted values.
func UnionBitmapsInto(dst []uint32, a, b *Bitmap) []uint32 {
	return OrBitmaps(a, b).AppendTo(dst)
}

// UnionArrayBitmapInto appends a ∪ b to dst as decoded sorted values,
// merging the array against the bitmap's container decode in one pass.
func UnionArrayBitmapInto(dst, a []uint32, b *Bitmap) []uint32 {
	if b == nil || len(b.keys) == 0 {
		return append(dst, a...)
	}
	i := 0
	for k, key := range b.keys {
		w := b.words[k]
		// Fold this container's slice of a into the word, then emit all
		// earlier array elements before decoding.
		for i < len(a) && a[i]>>6 < key {
			dst = append(dst, a[i])
			i++
		}
		for i < len(a) && a[i]>>6 == key {
			w |= 1 << (a[i] & 63)
			i++
		}
		base := key << 6
		for w != 0 {
			dst = append(dst, base|uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return append(dst, a[i:]...)
}

// UnionArrayBitmapCount returns |a ∪ b|.
func UnionArrayBitmapCount(a []uint32, b *Bitmap) int {
	return len(a) + b.Card() - IntersectArrayBitmapCount(a, b)
}

// ---------------------------------------------------------------------
// bounded (windowed) popcount kernels
//
// The miner's leaf fast path counts candidates inside an open interval:
// v > lo when hasLo, v < hi when hasHi (the symmetry-breaking window of
// plan restrictions). These count directly on the container words with
// partial masks at the interval's boundary containers.

// boundMasks returns, for the container key, the mask selecting only
// the in-window bits, and whether the container is entirely outside the
// window (mask 0 with outside=true short-circuits the caller's loop
// direction checks).
func boundMask(key uint32, lo, hi uint32, hasLo, hasHi bool) uint64 {
	m := ^uint64(0)
	if hasLo {
		if key < lo>>6 {
			return 0
		}
		if key == lo>>6 {
			m &= ^uint64(0) << ((lo & 63) + 1) // bits strictly above lo
		}
	}
	if hasHi {
		if key > hi>>6 {
			return 0
		}
		if key == hi>>6 {
			m &= (1 << (hi & 63)) - 1 // bits strictly below hi
		}
	}
	return m
}

// CountBounded returns the number of elements of b inside the open
// window: v > lo when hasLo and v < hi when hasHi.
func (b *Bitmap) CountBounded(lo, hi uint32, hasLo, hasHi bool) int {
	if b == nil {
		return 0
	}
	if !hasLo && !hasHi {
		return b.card
	}
	i := 0
	if hasLo {
		i = LowerBound(b.keys, lo>>6)
	}
	n := 0
	for ; i < len(b.keys); i++ {
		key := b.keys[i]
		if hasHi && key > hi>>6 {
			break
		}
		if m := boundMask(key, lo, hi, hasLo, hasHi); m != 0 {
			n += bits.OnesCount64(b.words[i] & m)
		}
	}
	return n
}

// IntersectBitmapsCountBounded returns |a ∩ b| restricted to the open
// window, popcounting masked word pairs.
func IntersectBitmapsCountBounded(a, b *Bitmap, lo, hi uint32, hasLo, hasHi bool) int {
	if a == nil || b == nil {
		return 0
	}
	if !hasLo && !hasHi {
		return IntersectBitmapsCount(a, b)
	}
	i, j := 0, 0
	if hasLo {
		i = LowerBound(a.keys, lo>>6)
		j = LowerBound(b.keys, lo>>6)
	}
	n := 0
	for i < len(a.keys) && j < len(b.keys) {
		ka, kb := a.keys[i], b.keys[j]
		switch {
		case ka < kb:
			i++
		case ka > kb:
			j++
		default:
			if hasHi && ka > hi>>6 {
				return n
			}
			if m := boundMask(ka, lo, hi, hasLo, hasHi); m != 0 {
				n += bits.OnesCount64(a.words[i] & b.words[j] & m)
			}
			i++
			j++
		}
	}
	return n
}

// IntersectBitmapBitsCountBounded returns |b ∩ bits| restricted to the
// open window, where bits is a dense full-universe bitset (a hub row).
func IntersectBitmapBitsCountBounded(b *Bitmap, bitset []uint64, lo, hi uint32, hasLo, hasHi bool) int {
	if b == nil {
		return 0
	}
	i := 0
	if hasLo {
		i = LowerBound(b.keys, lo>>6)
	}
	n := 0
	for ; i < len(b.keys); i++ {
		key := b.keys[i]
		if hasHi && key > hi>>6 {
			break
		}
		if int(key) >= len(bitset) {
			break
		}
		if m := boundMask(key, lo, hi, hasLo, hasHi); m != 0 {
			n += bits.OnesCount64(b.words[i] & bitset[key] & m)
		}
	}
	return n
}

// CountBitsBounded returns the popcount of the dense full-universe
// bitset restricted to the open window.
func CountBitsBounded(bitset []uint64, lo, hi uint32, hasLo, hasHi bool) int {
	ws := 0
	if hasLo {
		ws = int(lo >> 6)
	}
	we := len(bitset) - 1
	if hasHi && int(hi>>6) < we {
		we = int(hi >> 6)
	}
	n := 0
	for w := ws; w <= we && w < len(bitset); w++ {
		if m := boundMask(uint32(w), lo, hi, hasLo, hasHi); m != 0 {
			n += bits.OnesCount64(bitset[w] & m)
		}
	}
	return n
}

// IntersectBitsCountBounded returns |x ∩ y| restricted to the open
// window, where both are dense full-universe bitsets.
func IntersectBitsCountBounded(x, y []uint64, lo, hi uint32, hasLo, hasHi bool) int {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	ws := 0
	if hasLo {
		ws = int(lo >> 6)
	}
	we := n - 1
	if hasHi && int(hi>>6) < we {
		we = int(hi >> 6)
	}
	c := 0
	for w := ws; w <= we && w < n; w++ {
		if m := boundMask(uint32(w), lo, hi, hasLo, hasHi); m != 0 {
			c += bits.OnesCount64(x[w] & y[w] & m)
		}
	}
	return c
}
