package setops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentationBasics(t *testing.T) {
	data := []uint32{1, 2, 3, 4, 5, 6, 7}
	s := Segment(data, 3)
	if got := s.NumSegments(); got != 3 {
		t.Fatalf("NumSegments = %d, want 3", got)
	}
	if got := s.Seg(0); !eq(got, []uint32{1, 2, 3}) {
		t.Errorf("Seg(0) = %v", got)
	}
	if got := s.Seg(2); !eq(got, []uint32{7}) {
		t.Errorf("Seg(2) = %v", got)
	}
	if got := s.Heads(); !eq(got, []uint32{1, 4, 7}) {
		t.Errorf("Heads = %v", got)
	}
}

func TestSegmentationEmpty(t *testing.T) {
	s := Segment(nil, 4)
	if s.NumSegments() != 0 {
		t.Errorf("NumSegments(empty) = %d", s.NumSegments())
	}
	if len(s.Heads()) != 0 {
		t.Errorf("Heads(empty) = %v", s.Heads())
	}
}

func TestSegmentPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Segment(…, 0) did not panic")
		}
	}()
	Segment([]uint32{1}, 0)
}

// TestPairFigure4 reproduces the pairing of Figure 4 in the paper: the
// short set {3,12,14,27,33,55} (segments of 2) against the long set
// {2,8,9,25,26,40,42,48,50,58,82,…} style ranges.
func TestPairFigure4(t *testing.T) {
	short := Segment([]uint32{3, 12, 14, 27, 33, 55}, 2)
	long := Segment([]uint32{2, 5, 9, 25, 26, 40, 42, 48, 50, 58}, 2)
	p := Pair(long, short)
	// Short seg [3,12] overlaps long segs [2,5] and [9,25].
	// Short seg [14,27] overlaps long segs [9,25] and [26,40].
	// Short seg [33,55] overlaps long segs [26,40], [42,48] and [50,58].
	wantLoads := []SegLoad{
		{ShortStart: 0, ShortCount: 1}, // [2,5] ← [3,12]
		{ShortStart: 0, ShortCount: 2}, // [9,25] ← [3,12],[14,27]
		{ShortStart: 1, ShortCount: 2}, // [26,40] ← [14,27],[33,55]
		{ShortStart: 2, ShortCount: 1}, // [42,48] ← [33,55]
		{ShortStart: 2, ShortCount: 1}, // [50,58] ← [33,55]
	}
	if len(p.Loads) != len(wantLoads) {
		t.Fatalf("got %d loads, want %d", len(p.Loads), len(wantLoads))
	}
	for i, want := range wantLoads {
		if p.Loads[i] != want {
			t.Errorf("load[%d] = %+v, want %+v", i, p.Loads[i], want)
		}
	}
	if p.SearchSteps <= 0 {
		t.Error("SearchSteps not accounted")
	}
}

func TestPairDisjointRanges(t *testing.T) {
	short := Segment([]uint32{1, 2, 3, 4}, 4)
	long := Segment([]uint32{100, 200}, 16)
	p := Pair(long, short)
	if p.Loads[0].ShortCount != 0 {
		t.Errorf("disjoint ranges paired: %+v", p.Loads[0])
	}
}

func TestBalanceMaxLoadSplit(t *testing.T) {
	// One long segment overlapped by 5 short segments, maxLoad 2 → 3 workloads.
	long := Segment([]uint32{0, 100}, 16)
	short := Segment([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2)
	p := Pair(long, short)
	ws := Balance(p, OpIntersect, 2)
	if len(ws) != 3 {
		t.Fatalf("got %d workloads, want 3", len(ws))
	}
	total := 0
	for _, w := range ws {
		if w.ShortCount > 2 {
			t.Errorf("workload exceeds maxLoad: %+v", w)
		}
		total += w.ShortCount
	}
	if total != 5 {
		t.Errorf("short segments covered = %d, want 5", total)
	}
}

func TestBalanceSkipsZeroLoadForIntersect(t *testing.T) {
	long := Segment([]uint32{1, 2, 50, 60, 100, 110}, 2)
	short := Segment([]uint32{55}, 4)
	p := Pair(long, short)
	if got := len(Balance(p, OpIntersect, 4)); got != 1 {
		t.Errorf("intersect workloads = %d, want 1", got)
	}
	// Anti-subtraction must keep the zero-load long segments.
	if got := len(Balance(p, OpAntiSubtract, 4)); got != 3 {
		t.Errorf("anti-subtract workloads = %d, want 3", got)
	}
}

func TestBalanceSubtractCoversUnpairedShorts(t *testing.T) {
	long := Segment([]uint32{50, 51}, 16)
	short := Segment([]uint32{1, 2, 3, 4, 50, 52, 53, 54, 100, 101}, 4)
	p := Pair(long, short)
	ws := Balance(p, OpSubtract, 4)
	seen := map[int]bool{}
	for _, w := range ws {
		for s := w.ShortStart; s < w.ShortStart+w.ShortCount; s++ {
			seen[s] = true
		}
	}
	for s := 0; s < short.NumSegments(); s++ {
		if !seen[s] {
			t.Errorf("short segment %d not covered by any workload", s)
		}
	}
}

func TestWorkloadLengths(t *testing.T) {
	long := Segment([]uint32{1, 2, 3, 4, 5}, 4)
	short := Segment([]uint32{2, 3}, 2)
	p := Pair(long, short)
	w := Workload{LongSeg: 0, ShortStart: 0, ShortCount: 1}
	if w.LongLen(p) != 4 || w.ShortLen(p) != 2 {
		t.Errorf("lengths = %d,%d want 4,2", w.LongLen(p), w.ShortLen(p))
	}
	unpaired := Workload{LongSeg: -1, ShortStart: 0, ShortCount: 1}
	if unpaired.LongLen(p) != 0 {
		t.Error("unpaired workload long length should be 0")
	}
}

// TestSegmentedApplyMatchesApply is the central fidelity property: the
// whole segment pipeline (pairing, balancing, compare units, bitvector
// aggregation) must compute exactly what the plain merge computes, for all
// three operations and arbitrary segment geometries.
func TestSegmentedApplyMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []Op{OpIntersect, OpSubtract, OpAntiSubtract}
	geoms := [][3]int{{16, 4, 3}, {4, 2, 1}, {1, 1, 1}, {64, 8, 2}, {3, 5, 2}}
	for trial := 0; trial < 400; trial++ {
		s := randomSet(rng, 60, 300)
		n := randomSet(rng, 120, 300)
		for _, op := range ops {
			for _, g := range geoms {
				got, stats := SegmentedApply(op, s, n, g[0], g[1], g[2])
				want := Apply(op, s, n)
				if !eq(got, want) {
					t.Fatalf("op=%v geom=%v s=%v n=%v: got %v want %v", op, g, s, n, got, want)
				}
				if len(stats.WorkloadCycles) != stats.Workloads {
					t.Fatalf("stats inconsistent: %+v", stats)
				}
			}
		}
	}
}

func TestSegmentedApplyQuick(t *testing.T) {
	f := func(sv, nv []uint32, opSel uint8) bool {
		s, n := mkset(sv), mkset(nv)
		op := Op(opSel % 3)
		got, _ := SegmentedApply(op, s, n, DefaultLongSegLen, DefaultShortSegLen, 2)
		return eq(got, Apply(op, s, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentedApplyEmptyInputs(t *testing.T) {
	s := []uint32{1, 2, 3}
	if got, _ := SegmentedApply(OpIntersect, nil, s, 16, 4, 2); len(got) != 0 {
		t.Errorf("∅∩s = %v", got)
	}
	if got, _ := SegmentedApply(OpSubtract, s, nil, 16, 4, 2); !eq(got, s) {
		t.Errorf("s−∅ = %v", got)
	}
	if got, _ := SegmentedApply(OpAntiSubtract, nil, s, 16, 4, 2); !eq(got, s) {
		t.Errorf("anti: s−∅ = %v", got)
	}
	if got, _ := SegmentedApply(OpAntiSubtract, s, nil, 16, 4, 2); len(got) != 0 {
		t.Errorf("anti: ∅−s = %v", got)
	}
}

func TestCompareCyclesModel(t *testing.T) {
	// One long segment of 16 paired with 3 short segments of 4 must cost
	// about s_l + 3·s_s = 28 comparator cycles (§4.3).
	long := make([]uint32, 16)
	for i := range long {
		long[i] = uint32(i * 2)
	}
	short := []uint32{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23}
	_, stats := SegmentedApply(OpIntersect, short, long, 16, 4, 3)
	if stats.Workloads != 1 {
		t.Fatalf("workloads = %d, want 1", stats.Workloads)
	}
	if stats.CompareCycles != 28 {
		t.Errorf("compare cycles = %d, want 28", stats.CompareCycles)
	}
}

func TestBitvecOps(t *testing.T) {
	b := NewBitvec(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("bitvec get/set mismatch")
	}
	o := NewBitvec(130)
	o.Set(65)
	b.Or(o)
	if !b.Get(65) || !b.Get(64) {
		t.Error("bitvec OR mismatch")
	}
}

func TestCollectorMergesSameSegment(t *testing.T) {
	seg := []uint32{10, 20, 30, 40}
	c := NewCollector(OpIntersect)
	b1 := NewBitvec(4)
	b1.Set(0)
	b2 := NewBitvec(4)
	b2.Set(2)
	c.Add(SegResult{Assoc: 0, Seg: seg, Bits: b1})
	c.Add(SegResult{Assoc: 0, Seg: seg, Bits: b2})
	if got := c.Finish(); !eq(got, []uint32{10, 30}) {
		t.Errorf("collector = %v, want [10 30]", got)
	}
}

func TestCollectorSubtractKeepsZeros(t *testing.T) {
	seg := []uint32{10, 20, 30}
	c := NewCollector(OpSubtract)
	b := NewBitvec(3)
	b.Set(1)
	c.Add(SegResult{Assoc: 0, Seg: seg, Bits: b})
	if got := c.Finish(); !eq(got, []uint32{10, 30}) {
		t.Errorf("collector = %v, want [10 30]", got)
	}
}

// TestFigure8Subtraction replays the worked example of §4.3: short segment
// {11,18} paired with long segments {3,5,7,12} and {13,15,18,22} under
// subtraction must yield {11}.
func TestFigure8Subtraction(t *testing.T) {
	s := []uint32{11, 18}
	n := []uint32{3, 5, 7, 12, 13, 15, 18, 22}
	got, _ := SegmentedApply(OpSubtract, s, n, 4, 2, 2)
	if !eq(got, []uint32{11}) {
		t.Errorf("Figure 8 subtraction = %v, want [11]", got)
	}
}
