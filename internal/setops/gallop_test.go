package setops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGallopSearch(t *testing.T) {
	s := []uint32{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	cases := []struct {
		lo   int
		v    uint32
		want int
	}{
		{0, 1, 0},
		{0, 2, 0},
		{0, 3, 1},
		{0, 20, 9},
		{0, 21, 10},
		{5, 12, 5},
		{5, 100, 10},
	}
	for _, c := range cases {
		if got := gallopSearch(s, c.lo, c.v); got != c.want {
			t.Errorf("gallopSearch(lo=%d, v=%d) = %d, want %d", c.lo, c.v, got, c.want)
		}
	}
}

func TestGallopingMatchesMerge(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		if !eq(IntersectGalloping(a, b), Intersect(a, b)) {
			return false
		}
		return eq(SubtractGalloping(a, b), Subtract(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGallopingSkewedInputs(t *testing.T) {
	// Force the galloping path: a tiny set against a huge one.
	rng := rand.New(rand.NewSource(5))
	big := make([]uint32, 10000)
	for i := range big {
		big[i] = uint32(i * 3)
	}
	small := randomSet(rng, 20, 30000)
	if !eq(IntersectGalloping(small, big), Intersect(small, big)) {
		t.Error("galloping intersect diverges on skewed inputs")
	}
	if !eq(SubtractGalloping(small, big), Subtract(small, big)) {
		t.Error("galloping subtract diverges on skewed inputs")
	}
	// Symmetric argument order must not matter for intersection.
	if !eq(IntersectGalloping(big, small), Intersect(small, big)) {
		t.Error("galloping intersect not symmetric")
	}
}

func TestIntersectMany(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5, 6}
	b := []uint32{2, 4, 6, 8}
	c := []uint32{4, 6, 10}
	if got := IntersectMany(a, b, c); !eq(got, []uint32{4, 6}) {
		t.Errorf("IntersectMany = %v", got)
	}
	if got := IntersectMany(a); !eq(got, a) {
		t.Errorf("single-set IntersectMany = %v", got)
	}
	if got := IntersectMany(); got == nil || len(got) != 0 {
		t.Errorf("zero-set IntersectMany = %v, want empty non-nil", got)
	}
	if got := IntersectMany(a, nil); len(got) != 0 {
		t.Errorf("IntersectMany with empty = %v", got)
	}
}

func TestIntersectManyDoesNotAliasInput(t *testing.T) {
	a := []uint32{1, 2, 3}
	got := IntersectMany(a)
	got[0] = 99
	if a[0] != 1 {
		t.Error("IntersectMany aliases its input")
	}
}

func TestSubtractMany(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	if got := SubtractMany(a, []uint32{2, 4}, []uint32{6, 9}); !eq(got, []uint32{1, 3, 5, 7, 8}) {
		t.Errorf("SubtractMany = %v", got)
	}
	if got := SubtractMany(a); !eq(got, a) {
		t.Errorf("no-op SubtractMany = %v", got)
	}
	got := SubtractMany(a)
	got[0] = 99
	if a[0] != 1 {
		t.Error("SubtractMany aliases its input")
	}
}

func TestManyOpsMatchPairwise(t *testing.T) {
	f := func(av, bv, cv []uint32) bool {
		a, b, c := mkset(av), mkset(bv), mkset(cv)
		if !eq(IntersectMany(a, b, c), Intersect(Intersect(a, b), c)) {
			return false
		}
		return eq(SubtractMany(a, b, c), Subtract(Subtract(a, b), c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectGallopingSkewed(b *testing.B) {
	big := make([]uint32, 100000)
	for i := range big {
		big[i] = uint32(i * 2)
	}
	small := []uint32{5, 1001, 20002, 40005, 80000, 160001, 199998}
	b.Run("gallop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectGalloping(small, big)
		}
	})
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Intersect(small, big)
		}
	})
}
