package setops_test

import (
	"fmt"

	"fingers/internal/setops"
)

func ExampleApply() {
	s := []uint32{1, 3, 5, 7}
	n := []uint32{3, 4, 5, 6}
	fmt.Println(setops.Apply(setops.OpIntersect, s, n))
	fmt.Println(setops.Apply(setops.OpSubtract, s, n))
	fmt.Println(setops.Apply(setops.OpAntiSubtract, s, n))
	// Output:
	// [3 5]
	// [1 7]
	// [4 6]
}

func ExampleSegmentedApply() {
	// The same operation through the FINGERS segment pipeline: segment
	// pairing, load balancing, compare units and bitvector aggregation.
	short := []uint32{11, 18}
	long := []uint32{3, 5, 7, 12, 13, 15, 18, 22}
	result, stats := setops.SegmentedApply(setops.OpSubtract, short, long, 4, 2, 2)
	fmt.Println(result, stats.Workloads > 0)
	// Output: [11] true
}

func ExamplePair() {
	long := setops.Segment([]uint32{2, 5, 9, 25, 26, 40}, 2)
	short := setops.Segment([]uint32{3, 12, 14, 27}, 2)
	p := setops.Pair(long, short)
	for i, ld := range p.Loads {
		fmt.Printf("long segment %d carries %d short segment(s)\n", i, ld.ShortCount)
	}
	// Output:
	// long segment 0 carries 1 short segment(s)
	// long segment 1 carries 2 short segment(s)
	// long segment 2 carries 1 short segment(s)
}
