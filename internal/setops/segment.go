package setops

// Default segment lengths from the paper (§3.4): vertex neighbor lists
// (the long input) are pre-divided into read-only segments of 16 elements,
// and candidate vertex sets (the short input) into segments of 4 elements.
const (
	DefaultLongSegLen  = 16
	DefaultShortSegLen = 4
)

// Segmentation is a sorted set divided into fixed-length segments of
// distinct, non-overlapping ranges. The last segment may be shorter.
type Segmentation struct {
	Data   []uint32
	SegLen int
}

// Segment divides data into segments of segLen elements.
func Segment(data []uint32, segLen int) Segmentation {
	if segLen <= 0 {
		panic("setops: segment length must be positive")
	}
	return Segmentation{Data: data, SegLen: segLen}
}

// NumSegments returns the number of segments, zero for an empty set.
func (s Segmentation) NumSegments() int {
	return (len(s.Data) + s.SegLen - 1) / s.SegLen
}

// Seg returns the i-th segment as a subslice of the underlying data.
func (s Segmentation) Seg(i int) []uint32 {
	lo := i * s.SegLen
	hi := lo + s.SegLen
	if hi > len(s.Data) {
		hi = len(s.Data)
	}
	return s.Data[lo:hi]
}

// SegSize returns len(Seg(i)) without forming the subslice — segments
// are contiguous, so the size is pure index arithmetic.
func (s Segmentation) SegSize(i int) int {
	lo := i * s.SegLen
	hi := lo + s.SegLen
	if hi > len(s.Data) {
		hi = len(s.Data)
	}
	return hi - lo
}

// SpanSize returns the total element count of count consecutive segments
// starting at segment start: len(Seg(start)) + … + len(Seg(start+count-1)).
func (s Segmentation) SpanSize(start, count int) int {
	lo := start * s.SegLen
	hi := lo + count*s.SegLen
	if hi > len(s.Data) {
		hi = len(s.Data)
	}
	return hi - lo
}

// Heads returns the head list: the first element of every segment. The
// data controller generates this list before segment pairing (§4 stage 2).
func (s Segmentation) Heads() []uint32 {
	n := s.NumSegments()
	heads := make([]uint32, n)
	for i := 0; i < n; i++ {
		heads[i] = s.Data[i*s.SegLen]
	}
	return heads
}

// segMin and segMax return the value range covered by segment i.
func (s Segmentation) segMin(i int) uint32 { return s.Data[i*s.SegLen] }

func (s Segmentation) segMax(i int) uint32 {
	hi := (i+1)*s.SegLen - 1
	if hi >= len(s.Data) {
		hi = len(s.Data) - 1
	}
	return s.Data[hi]
}

// SegLoad records, for one long segment, which short segments overlap it —
// one column of the task divider's load table (§4.2, Figure 7).
type SegLoad struct {
	// ShortStart is the index of the first overlapping short segment.
	ShortStart int
	// ShortCount is the number of overlapping short segments (the load).
	ShortCount int
}

// Pairing is the result of matching the segments of a long and a short set
// by overlapping value ranges: the task divider's load table.
type Pairing struct {
	Long, Short Segmentation
	// Loads has one entry per long segment.
	Loads []SegLoad
	// SearchSteps counts the total binary-search comparisons performed
	// while streaming short heads through the long head tree, used by the
	// timing model of the task divider.
	SearchSteps int
}

// Pair computes the load table pairing every long segment with the short
// segments whose value ranges overlap it. Both inputs must be sorted.
//
// The hardware streams each short head through a binary tree of long heads
// (Figure 7); the equivalent software join here walks both segment lists
// once and charges ceil(log2) comparisons per short segment to
// SearchSteps, matching the hardware's work.
func Pair(long, short Segmentation) Pairing {
	var p Pairing
	PairInto(&p, long, short)
	return p
}

// PairInto is Pair writing into a caller-owned Pairing, reusing its Loads
// storage — the PE models' hot path calls it once per set operation, with
// zero steady-state allocation.
func PairInto(p *Pairing, long, short Segmentation) {
	nl, ns := long.NumSegments(), short.NumSegments()
	p.Long, p.Short = long, short
	p.SearchSteps = 0
	if cap(p.Loads) < nl {
		p.Loads = make([]SegLoad, nl)
	}
	p.Loads = p.Loads[:nl]
	for i := range p.Loads {
		p.Loads[i] = SegLoad{}
	}
	if nl == 0 || ns == 0 {
		return
	}
	depth := 1
	for 1<<depth < nl+1 {
		depth++
	}
	p.SearchSteps = ns * depth
	j := 0 // current long segment
	for i := 0; i < ns; i++ {
		sMin, sMax := short.segMin(i), short.segMax(i)
		for j < nl && long.segMax(j) < sMin {
			j++
		}
		for k := j; k < nl && long.segMin(k) <= sMax; k++ {
			ld := &p.Loads[k]
			if ld.ShortCount == 0 {
				ld.ShortStart = i
			}
			ld.ShortCount++
		}
	}
}

// Workload is one unit of work issued to an intersect unit: one long
// segment merged against a contiguous range of paired short segments. For
// subtraction, a workload may instead carry a short segment with no
// overlapping long segment (whose elements all survive).
type Workload struct {
	// LongSeg is the long segment index, or -1 for an unpaired-short
	// workload (subtraction only).
	LongSeg int
	// ShortStart and ShortCount give the range of short segments.
	ShortCount int
	ShortStart int
}

// LongLen returns the element count of the workload's long segment.
func (w Workload) LongLen(p Pairing) int {
	if w.LongSeg < 0 {
		return 0
	}
	return len(p.Long.Seg(w.LongSeg))
}

// ShortLen returns the total element count of the workload's short range.
func (w Workload) ShortLen(p Pairing) int {
	n := 0
	for i := 0; i < w.ShortCount; i++ {
		n += len(p.Short.Seg(w.ShortStart + i))
	}
	return n
}

// Balance converts a pairing into per-IU workloads under the given
// operation, applying the paper's two load-balancing rules (§4.2):
//
//  1. long segments with load 0 are omitted, except for anti-subtraction
//     where their elements survive and must still flow to the collector;
//  2. a long segment whose load exceeds maxLoad is split across multiple
//     workloads of at most maxLoad short segments each.
//
// For subtraction, short segments that overlap no long segment survive
// wholesale; they are emitted as LongSeg = -1 workloads so the result
// collector sees every short segment exactly once, in order.
func Balance(p Pairing, op Op, maxLoad int) []Workload {
	if maxLoad <= 0 {
		maxLoad = 1
	}
	var out []Workload
	nl := p.Long.NumSegments()
	switch op {
	case OpSubtract:
		// The bitvectors of a subtraction are associated with *short*
		// segments, and short ranges grow monotonically with the long
		// segment index, so emitting workloads in long-segment order keeps
		// results for the same short segment adjacent for the collector.
		// Short segments overlapping no long segment survive wholesale and
		// are interleaved as LongSeg = -1 workloads at their sorted place.
		ns := p.Short.NumSegments()
		touched := make([]bool, ns)
		for j := 0; j < nl; j++ {
			ld := p.Loads[j]
			for s := ld.ShortStart; s < ld.ShortStart+ld.ShortCount; s++ {
				touched[s] = true
			}
		}
		next := 0 // next unpaired short segment to consider emitting
		emitUnpairedBelow := func(bound int) {
			for ; next < bound; next++ {
				if !touched[next] {
					out = append(out, Workload{LongSeg: -1, ShortStart: next, ShortCount: 1})
				}
			}
		}
		for j := 0; j < nl; j++ {
			ld := p.Loads[j]
			if ld.ShortCount == 0 {
				continue
			}
			emitUnpairedBelow(ld.ShortStart)
			for s := 0; s < ld.ShortCount; s += maxLoad {
				n := ld.ShortCount - s
				if n > maxLoad {
					n = maxLoad
				}
				out = append(out, Workload{LongSeg: j, ShortStart: ld.ShortStart + s, ShortCount: n})
			}
		}
		emitUnpairedBelow(ns)
	default:
		for j := 0; j < nl; j++ {
			ld := p.Loads[j]
			if ld.ShortCount == 0 {
				if op == OpAntiSubtract {
					out = append(out, Workload{LongSeg: j})
				}
				continue
			}
			for s := 0; s < ld.ShortCount; s += maxLoad {
				n := ld.ShortCount - s
				if n > maxLoad {
					n = maxLoad
				}
				out = append(out, Workload{LongSeg: j, ShortStart: ld.ShortStart + s, ShortCount: n})
			}
		}
	}
	return out
}
