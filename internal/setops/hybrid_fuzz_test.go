package setops

import "testing"

// decodeFuzzSet turns fuzz bytes into a strictly increasing set. Each
// byte is a positive delta; the scale byte stretches deltas so the
// fuzzer reaches sparse spreads (large scale) and packed runs (scale 0)
// with equal ease.
func decodeFuzzSet(data []byte, scale byte) []uint32 {
	out := make([]uint32, 0, len(data))
	cur := uint64(0)
	for _, d := range data {
		cur += uint64(d)<<(scale&15) + 1
		if cur > 1<<32-1 {
			break
		}
		out = append(out, uint32(cur-1))
	}
	return out
}

// FuzzHybridSetOps differentially checks every operand-format-pair
// kernel of the hybrid matrix — intersect/subtract/union, Into and
// Count, plus the bounded popcount kernels — against the merge-kernel
// oracle. The two scale bytes steer density: 0 packs values into runs
// (bitmap territory), 15 spreads them across the whole uint32 universe.
func FuzzHybridSetOps(f *testing.F) {
	f.Add([]byte{}, []byte{}, byte(0), byte(0))                            // empty × empty
	f.Add([]byte{5}, []byte{5}, byte(0), byte(0))                          // singleton overlap
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{0, 0, 0, 0}, byte(0), byte(0)) // dense runs
	f.Add([]byte{1, 1, 1, 1}, []byte{255, 255, 255}, byte(0), byte(15))    // clustered × sparse
	f.Add([]byte{255, 255, 255, 255}, []byte{1}, byte(15), byte(15))       // full-universe spread
	f.Add([]byte{63, 1, 63, 1}, []byte{64, 64}, byte(0), byte(0))          // container boundaries
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, scaleA, scaleB byte) {
		if len(rawA) > 512 || len(rawB) > 512 {
			return
		}
		a := decodeFuzzSet(rawA, scaleA)
		b := decodeFuzzSet(rawB, scaleB)
		checkHybridPair(t, a, b)

		// Bounded kernels against the brute-force window filter, using
		// elements of the inputs as window edges so boundaries are hit.
		lo, hi := uint32(0), uint32(1<<32-1)
		if len(a) > 0 {
			lo = a[len(a)/2]
		}
		if len(b) > 0 {
			hi = b[len(b)/2]
		}
		ba, bb := NewBitmapFromSorted(a), NewBitmapFromSorted(b)
		for _, w := range []struct{ hasLo, hasHi bool }{
			{false, false}, {true, false}, {false, true}, {true, true},
		} {
			wantA := len(bruteBounded(a, lo, hi, w.hasLo, w.hasHi))
			wantAB := len(bruteBounded(Intersect(a, b), lo, hi, w.hasLo, w.hasHi))
			if got := ba.CountBounded(lo, hi, w.hasLo, w.hasHi); got != wantA {
				t.Fatalf("CountBounded(%v, lo=%d hi=%d %+v) = %d, want %d", a, lo, hi, w, got, wantA)
			}
			if got := IntersectBitmapsCountBounded(ba, bb, lo, hi, w.hasLo, w.hasHi); got != wantAB {
				t.Fatalf("IntersectBitmapsCountBounded(%v, %v, lo=%d hi=%d %+v) = %d, want %d",
					a, b, lo, hi, w, got, wantAB)
			}
		}
	})
}
