package setops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mkset turns arbitrary values into a valid sorted deduplicated set.
func mkset(vals []uint32) []uint32 {
	seen := make(map[uint32]bool, len(vals))
	out := make([]uint32, 0, len(vals))
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// naive reference implementations over maps.
func naiveIntersect(a, b []uint32) []uint32 {
	inB := make(map[uint32]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	out := []uint32{}
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func naiveSubtract(a, b []uint32) []uint32 {
	inB := make(map[uint32]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	out := []uint32{}
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func eq(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIsSorted(t *testing.T) {
	cases := []struct {
		s    []uint32
		want bool
	}{
		{nil, true},
		{[]uint32{1}, true},
		{[]uint32{1, 2, 3}, true},
		{[]uint32{1, 1}, false},
		{[]uint32{2, 1}, false},
	}
	for _, c := range cases {
		if got := IsSorted(c.s); got != c.want {
			t.Errorf("IsSorted(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestIntersectBasic(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9}
	b := []uint32{3, 4, 5, 6, 7}
	want := []uint32{3, 5, 7}
	if got := Intersect(a, b); !eq(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got := IntersectCount(a, b); got != 3 {
		t.Errorf("IntersectCount = %d, want 3", got)
	}
}

func TestIntersectEmpty(t *testing.T) {
	if got := Intersect(nil, []uint32{1, 2}); len(got) != 0 {
		t.Errorf("Intersect(nil, ...) = %v, want empty", got)
	}
	if got := Intersect([]uint32{1, 2}, nil); len(got) != 0 {
		t.Errorf("Intersect(..., nil) = %v, want empty", got)
	}
}

func TestSubtractBasic(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9}
	b := []uint32{3, 4, 5, 6}
	want := []uint32{1, 7, 9}
	if got := Subtract(a, b); !eq(got, want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got := SubtractCount(a, b); got != 3 {
		t.Errorf("SubtractCount = %d, want 3", got)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	a := []uint32{1, 2, 3}
	b := []uint32{10, 20}
	if got := Subtract(a, b); !eq(got, a) {
		t.Errorf("Subtract disjoint = %v, want %v", got, a)
	}
}

func TestUnionBasic(t *testing.T) {
	a := []uint32{1, 3, 5}
	b := []uint32{2, 3, 6}
	want := []uint32{1, 2, 3, 5, 6}
	if got := Union(a, b); !eq(got, want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestApplyAllOps(t *testing.T) {
	s := []uint32{2, 4, 6, 8}
	n := []uint32{4, 5, 6, 7}
	if got := Apply(OpIntersect, s, n); !eq(got, []uint32{4, 6}) {
		t.Errorf("Apply intersect = %v", got)
	}
	if got := Apply(OpSubtract, s, n); !eq(got, []uint32{2, 8}) {
		t.Errorf("Apply subtract = %v", got)
	}
	if got := Apply(OpAntiSubtract, s, n); !eq(got, []uint32{5, 7}) {
		t.Errorf("Apply anti-subtract = %v", got)
	}
}

func TestOpString(t *testing.T) {
	if OpIntersect.String() != "intersect" || OpSubtract.String() != "subtract" ||
		OpAntiSubtract.String() != "anti-subtract" || Op(99).String() != "unknown-op" {
		t.Error("Op.String mismatch")
	}
}

func TestBounds(t *testing.T) {
	s := []uint32{2, 4, 4, 6} // LowerBound handles non-strict input too
	if got := LowerBound(s, 4); got != 1 {
		t.Errorf("LowerBound = %d, want 1", got)
	}
	if got := UpperBound(s, 4); got != 3 {
		t.Errorf("UpperBound = %d, want 3", got)
	}
	if got := LowerBound(s, 7); got != 4 {
		t.Errorf("LowerBound beyond = %d, want 4", got)
	}
	if !Contains(s, 6) || Contains(s, 5) {
		t.Error("Contains mismatch")
	}
}

func TestFilters(t *testing.T) {
	s := []uint32{1, 3, 5, 7}
	if got := FilterLess(nil, s, 5); !eq(got, []uint32{1, 3}) {
		t.Errorf("FilterLess = %v", got)
	}
	if got := FilterGreater(nil, s, 5); !eq(got, []uint32{7}) {
		t.Errorf("FilterGreater = %v", got)
	}
	if got := CountLess(s, 6); got != 3 {
		t.Errorf("CountLess = %d, want 3", got)
	}
}

func TestClone(t *testing.T) {
	s := []uint32{1, 2, 3}
	c := Clone(s)
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone aliases input")
	}
}

func TestIntersectMatchesNaive(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		return eq(Intersect(a, b), naiveIntersect(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubtractMatchesNaive(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		return eq(Subtract(a, b), naiveSubtract(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		inter := Intersect(a, b)
		sub := Subtract(a, b)
		// a = (a∩b) ∪ (a−b), disjointly.
		if len(inter)+len(sub) != len(a) {
			return false
		}
		if !eq(Union(inter, sub), a) {
			return false
		}
		// Commutativity of intersection and union.
		if !eq(inter, Intersect(b, a)) {
			return false
		}
		if !eq(Union(a, b), Union(b, a)) {
			return false
		}
		// A − B = A − (A ∩ B), the identity the IU hardware exploits.
		return eq(sub, Subtract(a, inter))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultsStaySorted(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := mkset(av), mkset(bv)
		return IsSorted(Intersect(a, b)) && IsSorted(Subtract(a, b)) && IsSorted(Union(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomSet(rng *rand.Rand, maxLen int, maxVal uint32) []uint32 {
	n := rng.Intn(maxLen + 1)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32() % maxVal
	}
	return mkset(vals)
}

func TestIntoVariantsAppend(t *testing.T) {
	a := []uint32{1, 2, 3}
	b := []uint32{2, 3, 4}
	prefix := []uint32{100}
	if got := IntersectInto(Clone(prefix), a, b); !eq(got, []uint32{100, 2, 3}) {
		t.Errorf("IntersectInto = %v", got)
	}
	if got := SubtractInto(Clone(prefix), a, b); !eq(got, []uint32{100, 1}) {
		t.Errorf("SubtractInto = %v", got)
	}
	if got := ApplyInto(OpAntiSubtract, Clone(prefix), a, b); !eq(got, []uint32{100, 4}) {
		t.Errorf("ApplyInto anti = %v", got)
	}
}
