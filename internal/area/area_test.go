package area

import (
	"math"
	"strings"
	"testing"

	"fingers/internal/fingers"
)

func TestPETotalMatchesPaper(t *testing.T) {
	// Table 2 reports 0.934 mm² for the default configuration.
	got := float64(PEBreakdown(fingers.DefaultConfig()).Total())
	if math.Abs(got-0.934) > 0.002 {
		t.Errorf("PE total = %.4f mm², want ≈ 0.934", got)
	}
}

func TestBreakdownPercentagesMatchPaper(t *testing.T) {
	b := PEBreakdown(fingers.DefaultConfig())
	total := float64(b.Total())
	cases := []struct {
		name string
		area MM2
		want float64 // percent
	}{
		{"IUs", b.IUs, 12.3},
		{"dividers", b.TaskDividers, 7.4},
		{"stream buffers", b.StreamBufs, 22.9},
		{"private cache", b.PrivateCache, 12.6},
		{"others", b.Others, 44.8},
	}
	for _, c := range cases {
		pct := 100 * float64(c.area) / total
		if math.Abs(pct-c.want) > 0.3 {
			t.Errorf("%s = %.1f%%, want ≈ %.1f%%", c.name, pct, c.want)
		}
	}
}

func TestPEArea15nmUnderTwiceFlexMiner(t *testing.T) {
	// §6.1: the FINGERS PE at 15 nm is less than twice a FlexMiner PE.
	got := PEArea15nm(fingers.DefaultConfig())
	if got >= 2*FlexMinerPEArea15nm {
		t.Errorf("PE at 15 nm = %.3f, not under 2 × %.3f", float64(got), float64(FlexMinerPEArea15nm))
	}
	if math.Abs(float64(got)-0.26) > 0.005 {
		t.Errorf("PE at 15 nm = %.3f, want ≈ 0.26", float64(got))
	}
}

func TestIsoAreaPECountIs20(t *testing.T) {
	// §6.3: a 20-PE FINGERS chip is iso-area with the 40-PE FlexMiner chip.
	n := IsoAreaPECount(fingers.DefaultConfig(), FlexMinerChipPEs)
	if n < 20 || n > 27 {
		t.Errorf("iso-area PE count = %d, want ≈ 20 (paper uses 20)", n)
	}
}

func TestIsoAreaIUSweepKeepsBufferArea(t *testing.T) {
	base := PEBreakdown(fingers.DefaultConfig())
	for _, ius := range []int{1, 2, 4, 8, 16, 48} {
		cfg := fingers.DefaultConfig().WithIUs(ius)
		b := PEBreakdown(cfg)
		if b.StreamBufs != base.StreamBufs {
			t.Errorf("%d IUs: stream buffer area changed", ius)
		}
	}
}

func TestChipPower(t *testing.T) {
	// §6.1: "the total power of FINGERS would be just a few watts".
	w := ChipPowerW(20)
	if w < 1 || w > 10 {
		t.Errorf("chip power = %.2f W, want a few watts", w)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(fingers.DefaultConfig())
	for _, want := range []string{"24 Intersect Units", "12 Task Dividers", "PE Total", "Iso-area"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}
