// Package area models chip area, power, and frequency. The paper obtains
// these numbers from RTL synthesis (Synopsys DC, 28 nm) and CACTI; since
// no hardware flow exists here, the model is seeded with the paper's
// published per-component results (Table 2 and §6.1) and scales them with
// configuration. The evaluation uses area only to fix iso-area
// comparisons — 20 FINGERS PEs vs 40 FlexMiner PEs, and the
// #IUs × s_l = const IU sweep — which these constants reproduce exactly.
package area

import (
	"fmt"
	"strings"

	"fingers/internal/fingers"
)

// MM2 is chip area in square millimetres.
type MM2 float64

// Published 28 nm component constants, derived from Table 2.
const (
	// IUArea is one intersect unit (0.115 mm² / 24).
	IUArea MM2 = 0.115 / 24
	// DividerArea is one task divider (0.069 mm² / 12).
	DividerArea MM2 = 0.069 / 12
	// StreamBufferAreaPerKB scales the two stream buffers (0.214 mm² for
	// 16 kB).
	StreamBufferAreaPerKB MM2 = 0.214 / 16
	// PrivateCacheAreaPerKB scales the PE private cache (0.118 mm² for
	// 32 kB).
	PrivateCacheAreaPerKB MM2 = 0.118 / 32
	// OthersArea is the control logic, NoC interface and data fetchers,
	// conservatively scaled from FlexMiner by the paper.
	OthersArea MM2 = 0.418
)

// Published §6.1 figures.
const (
	// FlexMinerPEArea15nm is the baseline PE at 15 nm.
	FlexMinerPEArea15nm MM2 = 0.18
	// TechScale28to15 converts 28 nm area to 15 nm (the paper reports the
	// 0.934 mm² FINGERS PE as 0.26 mm² at 15 nm).
	TechScale28to15 = 0.26 / 0.934
	// ComputePowerMW and CachePowerMW are one PE's power split.
	ComputePowerMW = 98.5
	CachePowerMW   = 85.6
	// FrequencyGHz is the synthesized PE clock at 28 nm.
	FrequencyGHz = 1.0
	// FlexMinerChipPEs is the baseline chip configuration compared
	// against (its largest in the original paper).
	FlexMinerChipPEs = 40
)

// Breakdown itemizes one FINGERS PE, mirroring Table 2.
type Breakdown struct {
	IUs          MM2
	TaskDividers MM2
	StreamBufs   MM2
	PrivateCache MM2
	Others       MM2
}

// Total returns the PE area.
func (b Breakdown) Total() MM2 {
	return b.IUs + b.TaskDividers + b.StreamBufs + b.PrivateCache + b.Others
}

// PEBreakdown computes the component areas of a FINGERS PE configuration
// at 28 nm. Under the Figure 12 iso-area rule (#IUs × s_l constant) the
// stream buffers hold the same total segment storage, so their area is
// configuration-independent.
func PEBreakdown(cfg fingers.Config) Breakdown {
	return Breakdown{
		IUs:          IUArea * MM2(cfg.NumIUs),
		TaskDividers: DividerArea * MM2(cfg.NumDividers),
		StreamBufs:   StreamBufferAreaPerKB * MM2(float64(cfg.StreamBufferBytes)/1024),
		PrivateCache: PrivateCacheAreaPerKB * MM2(float64(cfg.PrivateCacheBytes)/1024),
		Others:       OthersArea,
	}
}

// PEArea15nm returns the FINGERS PE area scaled to the baseline's 15 nm
// node for iso-area chip sizing.
func PEArea15nm(cfg fingers.Config) MM2 {
	return PEBreakdown(cfg).Total() * TechScale28to15
}

// IsoAreaPECount returns the largest FINGERS PE count whose total area
// fits the FlexMiner chip budget of flexPEs baseline PEs. With the default
// configuration and the paper's 40-PE baseline this yields 20 PEs (§6.3
// compares 20 vs 40).
func IsoAreaPECount(cfg fingers.Config, flexPEs int) int {
	budget := FlexMinerPEArea15nm * MM2(flexPEs)
	per := PEArea15nm(cfg)
	n := int(budget / per)
	if n < 1 {
		n = 1
	}
	return n
}

// ChipPowerW estimates total chip power in watts for n PEs.
func ChipPowerW(n int) float64 {
	return float64(n) * (ComputePowerMW + CachePowerMW) / 1000
}

// Table2 renders the Table 2 area breakdown for a configuration.
func Table2(cfg fingers.Config) string {
	b := PEBreakdown(cfg)
	total := b.Total()
	var sb strings.Builder
	row := func(name string, a MM2) {
		fmt.Fprintf(&sb, "%-22s %8.3f mm²  %5.1f%%\n", name, float64(a), 100*float64(a/total))
	}
	fmt.Fprintf(&sb, "Area breakdown of one FINGERS PE (28 nm)\n")
	row(fmt.Sprintf("%d Intersect Units", cfg.NumIUs), b.IUs)
	row(fmt.Sprintf("%d Task Dividers", cfg.NumDividers), b.TaskDividers)
	row("2 Stream Buffers", b.StreamBufs)
	row("Private Cache", b.PrivateCache)
	row("Others", b.Others)
	fmt.Fprintf(&sb, "%-22s %8.3f mm²  100.0%%\n", "PE Total", float64(total))
	fmt.Fprintf(&sb, "PE at 15 nm: %.3f mm² (FlexMiner PE: %.3f mm²)\n",
		float64(PEArea15nm(cfg)), float64(FlexMinerPEArea15nm))
	fmt.Fprintf(&sb, "Iso-area chip: %d FINGERS PEs vs %d FlexMiner PEs\n",
		IsoAreaPECount(cfg, FlexMinerChipPEs), FlexMinerChipPEs)
	fmt.Fprintf(&sb, "PE power: %.1f mW compute + %.1f mW caches; chip ≈ %.1f W at %d PEs\n",
		ComputePowerMW, CachePowerMW, ChipPowerW(IsoAreaPECount(cfg, FlexMinerChipPEs)),
		IsoAreaPECount(cfg, FlexMinerChipPEs))
	return sb.String()
}
