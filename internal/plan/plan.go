// Package plan compiles patterns into the execution plans that guide
// pattern-aware graph mining (paper §2.1): a vertex ordering, the
// incremental set-operation schedule of Equation (1) — including postponed
// anti-subtractions — and symmetry-breaking restrictions derived from the
// pattern's automorphism group. It also merges the plans of several
// patterns into a multi-pattern plan with a shared search-tree prefix
// (paper §2.1 "Multi-pattern mining").
//
// The plan format is the generic one the paper's hardware consumes, so the
// software reference miner and both accelerator models execute identical
// schedules — the property the paper relies on for fair comparison (§5).
package plan

import (
	"errors"
	"fmt"
	"strings"

	"fingers/internal/pattern"
	"fingers/internal/setops"
)

// ErrInvalid marks a structurally malformed plan: every Validate failure
// wraps it, so callers can test errors.Is(err, plan.ErrInvalid).
var ErrInvalid = errors.New("invalid plan")

// OpKind classifies one scheduled candidate-set update.
type OpKind uint8

const (
	// OpInit sets S_j := N(u_i) with no computation: the target's first
	// connected ancestor is the current level and nothing was postponed.
	OpInit OpKind = iota
	// OpIntersect sets S_j := S_j ∩ N(u_i).
	OpIntersect
	// OpSubtract sets S_j := S_j − N(u_i) (vertex-induced mining only).
	OpSubtract
	// OpAntiSubtract sets S_j := N(u_i) − pending, executed at the
	// target's first connected ancestor for every postponed disconnected
	// ancestor (paper §2.1: the union of earlier neighbor lists is never
	// materialized; multiple anti-subtractions run instead).
	OpAntiSubtract
)

// String returns a compact mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpInit:
		return "init"
	case OpIntersect:
		return "∩"
	case OpSubtract:
		return "−"
	case OpAntiSubtract:
		return "anti−"
	default:
		return "?"
	}
}

// SetOp converts the plan-level op into the setops primitive executed by
// the compute units. OpInit performs no set operation.
func (k OpKind) SetOp() setops.Op {
	switch k {
	case OpIntersect:
		return setops.OpIntersect
	case OpSubtract:
		return setops.OpSubtract
	case OpAntiSubtract:
		return setops.OpAntiSubtract
	default:
		panic("plan: op kind has no set operation")
	}
}

// Action is one scheduled update of candidate set S_Target, emitted right
// after the vertex of its level is selected.
type Action struct {
	// Target is the level whose candidate set this action updates.
	Target int
	// Op is the update kind.
	Op OpKind
	// Pending lists the earlier disconnected ancestor levels whose
	// neighbor lists must be anti-subtracted right after an OpInit; it is
	// non-empty only when Op == OpInit.
	Pending []int
}

// Restriction constrains the vertex selected at its level against an
// earlier level's vertex, pruning automorphic duplicates (paper §2.1).
type Restriction struct {
	// Earlier is the earlier level to compare against.
	Earlier int
	// Greater reports the comparison direction: true means the current
	// level's vertex ID must exceed the earlier one's, false means it must
	// be smaller.
	Greater bool
}

// Level holds the per-level schedule.
type Level struct {
	// Restrictions filter the candidates selected at this level.
	Restrictions []Restriction
	// Actions update future candidate sets once this level's vertex is
	// chosen. Empty at the last level.
	Actions []Action
	// ConnectedAncestors lists the earlier levels adjacent to this one in
	// the pattern (diagnostics and planning heuristics).
	ConnectedAncestors []int
}

// Plan is a compiled execution plan. Levels are identified with pattern
// vertices: the pattern is relabeled so that level i maps pattern vertex i.
type Plan struct {
	// Pattern is the relabeled pattern (level i == pattern vertex i).
	Pattern pattern.Pattern
	// Order maps level → original pattern vertex, recording the ordering
	// decision for reporting.
	Order []int
	// Levels holds the per-level schedules, len == Pattern.Size().
	Levels []Level
	// EdgeInduced reports whether subtraction ops were suppressed to mine
	// edge-induced subgraphs.
	EdgeInduced bool
	// AutSize is the order of the pattern's automorphism group; the
	// number of restricted embeddings times AutSize equals the number of
	// unrestricted (labeled) embeddings.
	AutSize int
}

// K returns the pattern size (number of levels).
func (p *Plan) K() int { return len(p.Levels) }

// Validate checks the structural invariants the miners and accelerator
// models rely on, so a hand-built or deserialized plan fails fast with a
// typed error (wrapping ErrInvalid) instead of panicking mid-simulation:
// at least two levels matching the pattern size, Order a permutation,
// action targets strictly ahead of their level, pending anti-subtract
// ancestors and restriction references strictly behind, and every
// non-root level initialized before use.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("plan: nil plan: %w", ErrInvalid)
	}
	k := len(p.Levels)
	if k < 2 {
		return fmt.Errorf("plan: %d levels, need at least 2: %w", k, ErrInvalid)
	}
	if p.Pattern.Size() != k {
		return fmt.Errorf("plan: pattern size %d != %d levels: %w", p.Pattern.Size(), k, ErrInvalid)
	}
	if len(p.Order) != k {
		return fmt.Errorf("plan: order length %d != %d levels: %w", len(p.Order), k, ErrInvalid)
	}
	seen := make([]bool, k)
	for _, v := range p.Order {
		if v < 0 || v >= k || seen[v] {
			return fmt.Errorf("plan: order %v is not a permutation of [0,%d): %w", p.Order, k, ErrInvalid)
		}
		seen[v] = true
	}
	if p.AutSize < 1 {
		return fmt.Errorf("plan: automorphism group size %d < 1: %w", p.AutSize, ErrInvalid)
	}
	started := make([]bool, k)
	started[0] = true
	for i, lvl := range p.Levels {
		for _, r := range lvl.Restrictions {
			if r.Earlier < 0 || r.Earlier >= i {
				return fmt.Errorf("plan: level %d restriction references level %d, want [0,%d): %w",
					i, r.Earlier, i, ErrInvalid)
			}
		}
		for _, a := range lvl.Actions {
			if a.Target <= i || a.Target >= k {
				return fmt.Errorf("plan: level %d action targets level %d, want (%d,%d): %w",
					i, a.Target, i, k, ErrInvalid)
			}
			if a.Op > OpAntiSubtract {
				return fmt.Errorf("plan: level %d action has unknown op %d: %w", i, a.Op, ErrInvalid)
			}
			if len(a.Pending) > 0 && a.Op != OpInit {
				return fmt.Errorf("plan: level %d %v action carries pending ancestors: %w", i, a.Op, ErrInvalid)
			}
			for _, anc := range a.Pending {
				if anc < 0 || anc >= i {
					return fmt.Errorf("plan: level %d pending ancestor %d out of range [0,%d): %w",
						i, anc, i, ErrInvalid)
				}
			}
			switch a.Op {
			case OpInit:
				started[a.Target] = true
			default:
				if !started[a.Target] {
					return fmt.Errorf("plan: level %d %v action on uninitialized set S%d: %w",
						i, a.Op, a.Target, ErrInvalid)
				}
			}
		}
	}
	for j := 1; j < k; j++ {
		if !started[j] {
			return fmt.Errorf("plan: candidate set S%d is never initialized: %w", j, ErrInvalid)
		}
	}
	return nil
}

// Options configures compilation.
type Options struct {
	// EdgeInduced mines edge-induced subgraphs: subtraction operations
	// are omitted (paper §2.1 "Set operations and representation").
	EdgeInduced bool
	// NoSymmetryBreaking skips restriction generation, counting every
	// automorphic image separately. Used by tests and ablations.
	NoSymmetryBreaking bool
	// Order forces a specific vertex order (level → pattern vertex)
	// instead of the connectivity heuristic. Must be a permutation with
	// every non-initial vertex adjacent to an earlier one.
	Order []int
}

// Compile builds the execution plan for a connected pattern.
func Compile(p pattern.Pattern, opts Options) (*Plan, error) {
	k := p.Size()
	if k < 2 {
		return nil, fmt.Errorf("plan: pattern must have at least 2 vertices, got %d", k)
	}
	if !p.IsConnected() {
		return nil, fmt.Errorf("plan: pattern is not connected: %v", p)
	}
	order := opts.Order
	if order == nil {
		order = chooseOrder(p)
	} else if err := checkOrder(p, order); err != nil {
		return nil, err
	}
	q := p.Relabel(order)

	pl := &Plan{
		Pattern:     q,
		Order:       append([]int(nil), order...),
		Levels:      make([]Level, k),
		EdgeInduced: opts.EdgeInduced,
		AutSize:     len(q.Automorphisms()),
	}

	// Schedule the incremental materialization of Equation (1). For each
	// target level j we track whether S_j has been initialized and which
	// disconnected ancestors are postponed.
	started := make([]bool, k)
	pending := make([][]int, k)
	for i := 0; i < k-1; i++ {
		lvl := &pl.Levels[i]
		for j := i + 1; j < k; j++ {
			connected := q.HasEdge(i, j)
			switch {
			case connected && !started[j]:
				act := Action{Target: j, Op: OpInit}
				if len(pending[j]) > 0 {
					act.Pending = append([]int(nil), pending[j]...)
					pending[j] = nil
				}
				lvl.Actions = append(lvl.Actions, act)
				started[j] = true
			case connected:
				lvl.Actions = append(lvl.Actions, Action{Target: j, Op: OpIntersect})
			case opts.EdgeInduced:
				// Edge-induced mining enforces no edge absence.
			case started[j]:
				lvl.Actions = append(lvl.Actions, Action{Target: j, Op: OpSubtract})
			default:
				pending[j] = append(pending[j], i)
			}
		}
	}
	for j := 1; j < k; j++ {
		if !started[j] {
			return nil, fmt.Errorf("plan: level %d has no connected ancestor under order %v", j, order)
		}
	}
	for j := 0; j < k; j++ {
		for i := 0; i < j; i++ {
			if q.HasEdge(i, j) {
				pl.Levels[j].ConnectedAncestors = append(pl.Levels[j].ConnectedAncestors, i)
			}
		}
	}

	if !opts.NoSymmetryBreaking {
		for _, r := range symmetryRestrictions(q) {
			lvl := &pl.Levels[r.level]
			lvl.Restrictions = append(lvl.Restrictions, r.Restriction)
		}
	}
	return pl, nil
}

// MustCompile is Compile panicking on error. It exists for static
// pattern tables and tests whose patterns are known-good at authoring
// time; any code compiling user- or file-supplied patterns must call
// Compile and handle the error instead.
//
// Deprecated: prefer Compile at every boundary that ingests untrusted
// patterns; MustCompile remains for compile-time-constant tables only.
func MustCompile(p pattern.Pattern, opts Options) *Plan {
	pl, err := Compile(p, opts)
	if err != nil {
		panic(err)
	}
	return pl
}

// chooseOrder implements the connectivity-greedy ordering heuristic used
// by pattern-aware compilers (AutoMine-style): start at a maximum-degree
// vertex, then repeatedly append the vertex with the most edges into the
// ordered prefix, breaking ties by total degree then by index.
func chooseOrder(p pattern.Pattern) []int {
	k := p.Size()
	order := make([]int, 0, k)
	used := make([]bool, k)
	best := 0
	for v := 1; v < k; v++ {
		if p.Degree(v) > p.Degree(best) {
			best = v
		}
	}
	order = append(order, best)
	used[best] = true
	for len(order) < k {
		bestV, bestConn := -1, -1
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			conn := 0
			for _, u := range order {
				if p.HasEdge(u, v) {
					conn++
				}
			}
			if conn > bestConn || (conn == bestConn && p.Degree(v) > p.Degree(bestV)) {
				bestV, bestConn = v, conn
			}
		}
		order = append(order, bestV)
		used[bestV] = true
	}
	return order
}

func checkOrder(p pattern.Pattern, order []int) error {
	k := p.Size()
	if len(order) != k {
		return fmt.Errorf("plan: order length %d != pattern size %d", len(order), k)
	}
	seen := make([]bool, k)
	for _, v := range order {
		if v < 0 || v >= k || seen[v] {
			return fmt.Errorf("plan: order %v is not a permutation of [0,%d)", order, k)
		}
		seen[v] = true
	}
	for i := 1; i < k; i++ {
		ok := false
		for j := 0; j < i; j++ {
			if p.HasEdge(order[i], order[j]) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("plan: order %v leaves level %d with no connected ancestor", order, i)
		}
	}
	return nil
}

type levelRestriction struct {
	level int
	Restriction
}

// symmetryRestrictions derives symmetry-breaking restrictions from the
// automorphism group with the orbit–stabilizer construction (GraphZero-
// style): take the first level moved by the group, force its vertex ID
// below every other member of its orbit, then recurse on the stabilizer.
// Exactly one member of each automorphism class of embeddings survives.
func symmetryRestrictions(q pattern.Pattern) []levelRestriction {
	k := q.Size()
	auts := q.Automorphisms()
	var out []levelRestriction
	for {
		if len(auts) <= 1 {
			return out
		}
		// First level moved by any remaining automorphism.
		a := -1
		orbit := map[int]bool{}
		for lvl := 0; lvl < k && a < 0; lvl++ {
			for _, perm := range auts {
				if perm[lvl] != lvl {
					a = lvl
					break
				}
			}
		}
		for _, perm := range auts {
			if perm[a] != a {
				orbit[perm[a]] = true
			}
		}
		for b := 0; b < k; b++ {
			if !orbit[b] {
				continue
			}
			// Force u_a < u_b: at the later level, compare against the
			// earlier one.
			if a < b {
				out = append(out, levelRestriction{level: b, Restriction: Restriction{Earlier: a, Greater: true}})
			} else {
				out = append(out, levelRestriction{level: a, Restriction: Restriction{Earlier: b, Greater: false}})
			}
		}
		// Stabilize a.
		var next [][]int
		for _, perm := range auts {
			if perm[a] == a {
				next = append(next, perm)
			}
		}
		auts = next
	}
}

// String renders the plan in the paper's notation, e.g. for the tailed
// triangle: "S1 = N(u0); S2 = N(u0)∩N(u1); S3 = N(u0)−N(u1)−N(u2)".
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan k=%d order=%v aut=%d", p.K(), p.Order, p.AutSize)
	if p.EdgeInduced {
		sb.WriteString(" edge-induced")
	}
	sb.WriteString("\n")
	for i, lvl := range p.Levels {
		fmt.Fprintf(&sb, "  level %d:", i)
		for _, r := range lvl.Restrictions {
			cmp := "<"
			if r.Greater {
				cmp = ">"
			}
			fmt.Fprintf(&sb, " [u%d %s u%d]", i, cmp, r.Earlier)
		}
		for _, a := range lvl.Actions {
			fmt.Fprintf(&sb, " S%d:%v", a.Target, a.Op)
			if len(a.Pending) > 0 {
				fmt.Fprintf(&sb, "%v", a.Pending)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
