package plan

import "fingers/internal/pattern"

// ForBenchmark compiles the plan set of one benchmark mnemonic: a named
// pattern (pattern.ByName) compiles to a single plan, and "3mc" expands
// to the 3-motif multi-pattern plan. This is the one place a workload
// name turns into plans — the experiment harness, the CLIs, and the
// service daemon all resolve patterns through it.
func ForBenchmark(name string) ([]*Plan, error) {
	if name == "3mc" {
		mp, err := Motif(3, Options{})
		if err != nil {
			return nil, err
		}
		return mp.Plans, nil
	}
	p, err := pattern.ByName(name)
	if err != nil {
		return nil, err
	}
	pl, err := Compile(p, Options{})
	if err != nil {
		return nil, err
	}
	return []*Plan{pl}, nil
}
