package plan

import (
	"fmt"
	"reflect"

	"fingers/internal/pattern"
)

// MultiPlan executes several patterns in one traversal with a shared
// search-tree prefix (paper §2.1 "Multi-pattern mining"): the first
// SharedLevels levels are common, then the trunks of different patterns
// diverge and are explored like extra branches.
type MultiPlan struct {
	// Plans holds one compiled plan per pattern.
	Plans []*Plan
	// SharedLevels is the number of leading levels whose schedules
	// (actions and restrictions) coincide across every plan; the
	// intermediate results of these levels are computed once.
	SharedLevels int
}

// CompileMulti compiles each pattern and computes the shared prefix.
// All patterns must have at least two vertices; sizes may differ.
func CompileMulti(ps []pattern.Pattern, opts Options) (*MultiPlan, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("plan: no patterns to compile")
	}
	mp := &MultiPlan{}
	for _, p := range ps {
		pl, err := Compile(p, opts)
		if err != nil {
			return nil, err
		}
		mp.Plans = append(mp.Plans, pl)
	}
	mp.SharedLevels = sharedPrefix(mp.Plans)
	return mp, nil
}

// Motif returns the multi-plan for k-motif counting: every connected
// pattern on k vertices (paper §2.1; 3mc mines the triangle and the wedge).
func Motif(k int, opts Options) (*MultiPlan, error) {
	return CompileMulti(pattern.ConnectedSubpatternsOfSize(k), opts)
}

// MaxK returns the largest pattern size in the multi-plan.
func (mp *MultiPlan) MaxK() int {
	max := 0
	for _, pl := range mp.Plans {
		if pl.K() > max {
			max = pl.K()
		}
	}
	return max
}

func sharedPrefix(plans []*Plan) int {
	if len(plans) == 1 {
		return plans[0].K()
	}
	minK := plans[0].K()
	for _, pl := range plans[1:] {
		if pl.K() < minK {
			minK = pl.K()
		}
	}
	shared := 0
	for lvl := 0; lvl < minK-1; lvl++ {
		ref := plans[0].Levels[lvl]
		same := true
		for _, pl := range plans[1:] {
			l := pl.Levels[lvl]
			if !reflect.DeepEqual(ref.Actions, l.Actions) ||
				!reflect.DeepEqual(ref.Restrictions, l.Restrictions) {
				same = false
				break
			}
		}
		if !same {
			break
		}
		shared = lvl + 1
	}
	return shared
}
