package plan

import (
	"errors"
	"strings"
	"testing"

	"fingers/internal/pattern"
)

func mustPattern(t *testing.T, n int, edges [][2]int) pattern.Pattern {
	t.Helper()
	p, err := pattern.TryNew(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compile(t *testing.T, p pattern.Pattern, opts Options) *Plan {
	t.Helper()
	pl, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestTailedTrianglePlan checks the compiled plan against Figure 2 of the
// paper: S1 = N(u0); S2 = N(u0) ∩ N(u1); S3 = N(u0) − N(u1) − N(u2).
func TestTailedTrianglePlan(t *testing.T) {
	pl := compile(t, pattern.TailedTriangle(), Options{})
	if pl.K() != 4 {
		t.Fatalf("K = %d", pl.K())
	}
	if pl.Order[0] != 0 {
		t.Errorf("order should start at the hub, got %v", pl.Order)
	}
	l0 := pl.Levels[0].Actions
	if len(l0) != 3 {
		t.Fatalf("level 0 actions = %v", l0)
	}
	for _, a := range l0 {
		if a.Op != OpInit || len(a.Pending) != 0 {
			t.Errorf("level 0 action not a plain init: %+v", a)
		}
	}
	// Level 1: S2 gets an intersect, S3 a subtract.
	ops := map[int]OpKind{}
	for _, a := range pl.Levels[1].Actions {
		ops[a.Target] = a.Op
	}
	if ops[2] != OpIntersect || ops[3] != OpSubtract {
		t.Errorf("level 1 ops = %v", ops)
	}
	// Level 2: S3 gets another subtract.
	if len(pl.Levels[2].Actions) != 1 || pl.Levels[2].Actions[0].Op != OpSubtract {
		t.Errorf("level 2 actions = %v", pl.Levels[2].Actions)
	}
	// One symmetric pair (u1, u2) → exactly one restriction.
	total := 0
	for _, lvl := range pl.Levels {
		total += len(lvl.Restrictions)
	}
	if total != 1 || pl.AutSize != 2 {
		t.Errorf("restrictions = %d, aut = %d", total, pl.AutSize)
	}
}

func TestCliquePlanSharesEverything(t *testing.T) {
	pl := compile(t, pattern.Clique(4), Options{})
	// Every action is an init or an intersect; no subtractions in cliques.
	for i, lvl := range pl.Levels {
		for _, a := range lvl.Actions {
			if a.Op == OpSubtract || a.Op == OpAntiSubtract {
				t.Errorf("level %d has %v in a clique plan", i, a.Op)
			}
		}
	}
	// Full symmetry: restrictions at every level beyond the first, and
	// counts divided by 4! = 24.
	if pl.AutSize != 24 {
		t.Errorf("AutSize = %d, want 24", pl.AutSize)
	}
	total := 0
	for _, lvl := range pl.Levels {
		total += len(lvl.Restrictions)
	}
	if total != 6 { // orbits of sizes 4,3,2 → 3+2+1 restrictions
		t.Errorf("restrictions = %d, want 6", total)
	}
}

func TestCyclePlanHasPostponedInit(t *testing.T) {
	// In the 4-cycle ordered 0,1,2,3 (0-1, 1-2, 2-3, 3-0), vertex 3 is
	// disconnected from one earlier vertex; depending on the chosen order
	// the plan must either subtract or postpone. The compiled plan must
	// contain at least one subtract or pending init (vertex-induced needs
	// the absent-edge check).
	pl := compile(t, pattern.Cycle(4), Options{})
	found := false
	for _, lvl := range pl.Levels {
		for _, a := range lvl.Actions {
			if a.Op == OpSubtract || len(a.Pending) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("4-cycle plan lacks absent-edge enforcement:\n%v", pl)
	}
}

func TestEdgeInducedDropsSubtractions(t *testing.T) {
	pl := compile(t, pattern.TailedTriangle(), Options{EdgeInduced: true})
	for i, lvl := range pl.Levels {
		for _, a := range lvl.Actions {
			if a.Op == OpSubtract || a.Op == OpAntiSubtract || len(a.Pending) > 0 {
				t.Errorf("edge-induced plan has removal at level %d: %+v", i, a)
			}
		}
	}
	if !pl.EdgeInduced {
		t.Error("EdgeInduced flag not set")
	}
}

func TestForcedOrder(t *testing.T) {
	p := pattern.TailedTriangle()
	pl := compile(t, p, Options{Order: []int{0, 2, 1, 3}})
	if pl.Order[1] != 2 {
		t.Errorf("forced order not honored: %v", pl.Order)
	}
	// Invalid orders must be rejected.
	bad := [][]int{
		{0, 1, 2},    // wrong length
		{0, 0, 1, 2}, // not a permutation
		{3, 1, 0, 2}, // level 1 (vertex 1) not adjacent to vertex 3
		{0, 1, 2, 5}, // out of range
	}
	for _, o := range bad {
		if _, err := Compile(p, Options{Order: o}); err == nil {
			t.Errorf("order %v accepted", o)
		}
	}
}

func TestCompileRejectsBadPatterns(t *testing.T) {
	if _, err := Compile(mustPattern(t, 1, nil), Options{}); err == nil {
		t.Error("single-vertex pattern accepted")
	}
	disconnected := mustPattern(t, 4, [][2]int{{0, 1}, {2, 3}})
	if _, err := Compile(disconnected, Options{}); err == nil {
		t.Error("disconnected pattern accepted")
	}
}

func TestNoSymmetryBreaking(t *testing.T) {
	pl := compile(t, pattern.Triangle(), Options{NoSymmetryBreaking: true})
	for _, lvl := range pl.Levels {
		if len(lvl.Restrictions) != 0 {
			t.Error("restrictions present despite NoSymmetryBreaking")
		}
	}
}

func TestRestrictionsAreWellFormed(t *testing.T) {
	for _, name := range pattern.Names() {
		p, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pl := compile(t, p, Options{})
		for lvl, l := range pl.Levels {
			for _, r := range l.Restrictions {
				if r.Earlier < 0 || r.Earlier >= lvl {
					t.Errorf("%s: restriction at level %d references level %d", name, lvl, r.Earlier)
				}
			}
		}
	}
}

func TestPlanString(t *testing.T) {
	s := compile(t, pattern.Triangle(), Options{}).String()
	for _, want := range []string{"k=3", "level 0", "S1:init", "∩"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad pattern")
		}
	}()
	MustCompile(mustPattern(t, 4, [][2]int{{0, 1}, {2, 3}}), Options{})
}

func TestMotifMulti(t *testing.T) {
	mp, err := Motif(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Plans) != 2 {
		t.Fatalf("3-motif plans = %d, want 2 (wedge + triangle)", len(mp.Plans))
	}
	if mp.SharedLevels < 1 {
		t.Errorf("3-motif shares %d levels, want ≥ 1 (the root)", mp.SharedLevels)
	}
	if mp.MaxK() != 3 {
		t.Errorf("MaxK = %d", mp.MaxK())
	}
}

func TestCompileMultiErrors(t *testing.T) {
	if _, err := CompileMulti(nil, Options{}); err == nil {
		t.Error("empty pattern list accepted")
	}
}

func TestSingletonMultiSharesAll(t *testing.T) {
	mp, err := CompileMulti([]pattern.Pattern{pattern.Triangle()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.SharedLevels != 3 {
		t.Errorf("singleton shared levels = %d, want 3", mp.SharedLevels)
	}
}

func TestOpKindStringAndSetOp(t *testing.T) {
	if OpInit.String() != "init" || OpIntersect.String() != "∩" {
		t.Error("OpKind strings wrong")
	}
	if OpIntersect.SetOp().String() != "intersect" {
		t.Error("SetOp mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("OpInit.SetOp() did not panic")
		}
	}()
	OpInit.SetOp()
}

func TestValidateRejectsCorruptedPlans(t *testing.T) {
	if err := (*Plan)(nil).Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil plan: err = %v, want ErrInvalid", err)
	}
	fresh := func() *Plan { return compile(t, pattern.TailedTriangle(), Options{}) }
	if err := fresh().Validate(); err != nil {
		t.Fatalf("compiled plan fails Validate: %v", err)
	}
	corrupt := []struct {
		name string
		mut  func(*Plan)
	}{
		{"order not a permutation", func(p *Plan) { p.Order[0] = p.Order[1] }},
		{"order length mismatch", func(p *Plan) { p.Order = p.Order[:2] }},
		{"zero automorphisms", func(p *Plan) { p.AutSize = 0 }},
		{"restriction on later level", func(p *Plan) {
			for i := range p.Levels {
				if len(p.Levels[i].Restrictions) > 0 {
					p.Levels[i].Restrictions[0].Earlier = len(p.Levels)
					return
				}
			}
			t.Skip("plan has no restrictions")
		}},
	}
	for _, c := range corrupt {
		pl := fresh()
		c.mut(pl)
		if err := pl.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}
