package plan_test

import (
	"fmt"

	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// ExampleCompile reproduces Figure 2 of the paper: the execution plan of
// the tailed triangle.
func ExampleCompile() {
	pl, err := plan.Compile(pattern.TailedTriangle(), plan.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Print(pl)
	// Output:
	// plan k=4 order=[0 1 2 3] aut=2
	//   level 0: S1:init S2:init S3:init
	//   level 1: S2:∩ S3:−
	//   level 2: [u2 > u1] S3:−
	//   level 3:
}

func ExampleMotif() {
	mp, err := plan.Motif(3, plan.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d patterns, %d shared level(s)\n", len(mp.Plans), mp.SharedLevels)
	// Output: 2 patterns, 1 shared level(s)
}
