package plan

import (
	"testing"

	"fingers/internal/pattern"
)

// FuzzCompilePlan feeds arbitrary pattern shapes through the compiler.
// The contract under fuzz: pattern.TryNew rejects malformed shapes with
// an error (never a panic), and every pattern it accepts compiles —
// possibly to a rejection for disconnected shapes — without panicking,
// with any compiled plan passing Validate.
func FuzzCompilePlan(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 1, 2, 2, 0}, false)
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 3, 3, 0}, true)
	f.Add(uint8(1), []byte{}, false)
	f.Add(uint8(9), []byte{0, 1}, false)
	f.Add(uint8(5), []byte{0, 0}, false)
	f.Fuzz(func(t *testing.T, n uint8, edgeBytes []byte, edgeInduced bool) {
		edges := make([][2]int, 0, len(edgeBytes)/2)
		for i := 0; i+1 < len(edgeBytes); i += 2 {
			edges = append(edges, [2]int{int(edgeBytes[i]), int(edgeBytes[i+1])})
		}
		p, err := pattern.TryNew(int(n), edges)
		if err != nil {
			return
		}
		pl, err := Compile(p, Options{EdgeInduced: edgeInduced})
		if err != nil {
			return
		}
		if verr := pl.Validate(); verr != nil {
			t.Fatalf("compiler emitted an invalid plan for %v: %v", p, verr)
		}
	})
}
