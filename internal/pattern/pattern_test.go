package pattern

import (
	"testing"
)

// mustNew builds a pattern through the validating constructor; the
// panic-contract and New/TryNew equivalence tests are the only remaining
// callers of the deprecated New.
func mustNew(t *testing.T, n int, edges [][2]int) Pattern {
	t.Helper()
	p, err := TryNew(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewAndAccessors(t *testing.T) {
	p := TailedTriangle()
	if p.Size() != 4 || p.NumEdges() != 4 {
		t.Fatalf("size=%d edges=%d", p.Size(), p.NumEdges())
	}
	if !p.HasEdge(0, 1) || !p.HasEdge(1, 0) || p.HasEdge(1, 3) {
		t.Error("adjacency wrong")
	}
	if p.Degree(0) != 3 || p.Degree(3) != 1 {
		t.Error("degrees wrong")
	}
	if got := p.Neighbors(0); len(got) != 3 {
		t.Errorf("Neighbors(0) = %v", got)
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, nil) },
		func() { New(9, nil) },
		func() { New(3, [][2]int{{0, 3}}) },
		func() { New(3, [][2]int{{1, 1}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestIsConnected(t *testing.T) {
	if !Triangle().IsConnected() {
		t.Error("triangle not connected")
	}
	disconnected := mustNew(t, 4, [][2]int{{0, 1}, {2, 3}})
	if disconnected.IsConnected() {
		t.Error("disconnected pattern reported connected")
	}
	if !mustNew(t, 1, nil).IsConnected() {
		t.Error("single vertex should be connected")
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
		want int
	}{
		{"triangle", Triangle(), 6},              // S3
		{"4-clique", Clique(4), 24},              // S4
		{"wedge", Wedge(), 2},                    // swap leaves
		{"tailed triangle", TailedTriangle(), 2}, // swap u1,u2
		{"4-cycle", Cycle(4), 8},                 // dihedral D4
		{"diamond", Diamond(), 4},                // swap degree-2 pair × swap degree-3 pair
		{"path-4", PathOf(4), 2},                 // reversal
	}
	for _, c := range cases {
		if got := len(c.p.Automorphisms()); got != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAutomorphismsPreserveAdjacency(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, perm := range p.Automorphisms() {
			if !p.Relabel(perm).Equal(p) {
				t.Errorf("%s: %v is not an automorphism", name, perm)
			}
		}
	}
}

func TestIsomorphicTo(t *testing.T) {
	// The same diamond with different labels.
	d1 := Diamond()
	d2 := mustNew(t, 4, [][2]int{{1, 0}, {1, 2}, {1, 3}, {0, 3}, {3, 2}})
	if !d1.IsomorphicTo(d2) {
		t.Error("relabeled diamond not isomorphic")
	}
	if d1.IsomorphicTo(Cycle(4)) {
		t.Error("diamond isomorphic to 4-cycle")
	}
	if Triangle().IsomorphicTo(Wedge()) {
		t.Error("triangle isomorphic to wedge")
	}
}

func TestCanonicalCode(t *testing.T) {
	d2 := mustNew(t, 4, [][2]int{{1, 0}, {1, 2}, {1, 3}, {0, 3}, {3, 2}})
	if Diamond().CanonicalCode() != d2.CanonicalCode() {
		t.Error("isomorphic patterns have different canonical codes")
	}
	if Diamond().CanonicalCode() == Cycle(4).CanonicalCode() {
		t.Error("non-isomorphic patterns share canonical code")
	}
	if Triangle().CanonicalCode() == Wedge().CanonicalCode() {
		t.Error("triangle and wedge share canonical code")
	}
}

func TestConnectedSubpatternsOfSize(t *testing.T) {
	// Known counts of connected graphs on k vertices: 1, 1, 2, 6, 21.
	wants := map[int]int{1: 1, 2: 1, 3: 2, 4: 6, 5: 21}
	for k, want := range wants {
		if got := len(ConnectedSubpatternsOfSize(k)); got != want {
			t.Errorf("size %d: %d connected patterns, want %d", k, got, want)
		}
	}
}

func TestByNameLibrary(t *testing.T) {
	shapes := map[string]struct{ n, m int }{
		"tc":    {3, 3},
		"4cl":   {4, 6},
		"5cl":   {5, 10},
		"tt":    {4, 4},
		"cyc":   {4, 4},
		"dia":   {4, 5},
		"wedge": {3, 2},
		"house": {5, 6},
	}
	for name, want := range shapes {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() != want.n || p.NumEdges() != want.m {
			t.Errorf("%s: size=%d edges=%d, want %d/%d", name, p.Size(), p.NumEdges(), want.n, want.m)
		}
		if !p.IsConnected() {
			t.Errorf("%s: not connected", name)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

func TestStringRendering(t *testing.T) {
	got := Triangle().String()
	want := "pattern(3): 0-1 0-2 1-2"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRelabelIdentity(t *testing.T) {
	p := House()
	id := []int{0, 1, 2, 3, 4}
	if !p.Relabel(id).Equal(p) {
		t.Error("identity relabel changed pattern")
	}
}

func TestTryNewErrors(t *testing.T) {
	if _, err := TryNew(0, nil); err == nil {
		t.Error("size 0: expected an error")
	}
	if _, err := TryNew(MaxSize+1, nil); err == nil {
		t.Error("oversized pattern: expected an error")
	}
	if _, err := TryNew(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge: expected an error")
	}
	if _, err := TryNew(3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop: expected an error")
	}
	got, err := TryNew(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if want := New(3, [][2]int{{0, 1}, {1, 2}, {2, 0}}); got != want {
		t.Errorf("TryNew diverges from New: %v vs %v", got, want)
	}
}
