package pattern

import (
	"fmt"
	"sort"
)

// The named patterns evaluated in the paper (§5 "Benchmarks"): 3-, 4- and
// 5-clique, tailed triangle, 4-cycle and diamond, plus the wedge that
// 3-motif counting needs.

// Triangle returns the 3-clique (tc).
func Triangle() Pattern { return Clique(3) }

// Clique returns the complete pattern K_k.
func Clique(k int) Pattern {
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return New(k, edges)
}

// TailedTriangle returns the tailed triangle (tt): a triangle 0-1-2 with a
// tail vertex 3 attached to vertex 0 — the running example of the paper's
// Figures 1 and 2.
func TailedTriangle() Pattern {
	return New(4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 3}})
}

// Cycle returns the k-cycle; Cycle(4) is the paper's cyc pattern.
func Cycle(k int) Pattern {
	var edges [][2]int
	for i := 0; i < k; i++ {
		edges = append(edges, [2]int{i, (i + 1) % k})
	}
	return New(k, edges)
}

// Diamond returns the diamond (dia): a 4-clique missing one edge.
func Diamond() Pattern {
	return New(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}})
}

// Wedge returns the open triangle (path on three vertices, centered at
// vertex 0), the second constituent of 3-motif counting.
func Wedge() Pattern {
	return New(3, [][2]int{{0, 1}, {0, 2}})
}

// PathOf returns the path pattern on k vertices.
func PathOf(k int) Pattern {
	var edges [][2]int
	for i := 0; i+1 < k; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return New(k, edges)
}

// StarOf returns the star pattern with one hub and k−1 leaves.
func StarOf(k int) Pattern {
	var edges [][2]int
	for i := 1; i < k; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return New(k, edges)
}

// House returns the 5-vertex house pattern (4-cycle with a triangle roof),
// a common extension benchmark.
func House() Pattern {
	return New(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}})
}

// named maps the paper's benchmark mnemonics to constructors.
var named = map[string]func() Pattern{
	"tc":       Triangle,
	"4cl":      func() Pattern { return Clique(4) },
	"5cl":      func() Pattern { return Clique(5) },
	"tt":       TailedTriangle,
	"cyc":      func() Pattern { return Cycle(4) },
	"dia":      Diamond,
	"wedge":    Wedge,
	"house":    House,
	"5cyc":     func() Pattern { return Cycle(5) },
	"4path":    func() Pattern { return PathOf(4) },
	"4star":    func() Pattern { return StarOf(4) },
	"triangle": Triangle,
}

// ByName returns the named pattern. Names follow the paper's mnemonics:
// tc, 4cl, 5cl, tt, cyc, dia — plus wedge, house, 5cyc, 4path, 4star.
func ByName(name string) (Pattern, error) {
	if f, ok := named[name]; ok {
		return f(), nil
	}
	return Pattern{}, fmt.Errorf("pattern: unknown name %q (known: %v)", name, Names())
}

// Names lists the available named patterns in sorted order.
func Names() []string {
	out := make([]string, 0, len(named))
	for k := range named {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
