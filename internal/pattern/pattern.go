// Package pattern represents the small query graphs ("patterns") whose
// embeddings graph mining enumerates, together with the structural
// analyses the execution-plan compiler needs: automorphism enumeration
// (for symmetry breaking), connectivity, and canonical forms (for motif
// classification).
//
// Patterns are tiny (the paper evaluates sizes 3–5), so brute-force
// permutation algorithms are both adequate and simple to verify.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// MaxSize bounds the pattern size; brute-force automorphism and canonical
// form enumeration is factorial so sizes stay small, as in all
// pattern-aware mining systems.
const MaxSize = 8

// Pattern is an undirected connected query graph over vertices 0..n−1.
// The zero value is an empty pattern; construct with New.
type Pattern struct {
	n   int
	adj [MaxSize]uint16 // adjacency bitmasks
}

// New builds a pattern with n vertices and the given edges. It panics on
// out-of-range vertices, self-loops, or n > MaxSize: patterns are
// compile-time program inputs, so malformed ones are programmer errors.
// TryNew reports the same conditions as an error, for boundaries that
// ingest patterns from outside the program (files, flags, network).
func New(n int, edges [][2]int) Pattern {
	p, err := TryNew(n, edges)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// TryNew is New with validation instead of panics: a size outside
// [1, MaxSize], an out-of-range edge endpoint, or a self-loop is
// reported as an error.
func TryNew(n int, edges [][2]int) (Pattern, error) {
	var p Pattern
	if n < 1 || n > MaxSize {
		return p, fmt.Errorf("pattern: size %d out of range [1,%d]", n, MaxSize)
	}
	p.n = n
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n {
			return Pattern{}, fmt.Errorf("pattern: edge (%d,%d) out of range for size %d", u, v, n)
		}
		if u == v {
			return Pattern{}, fmt.Errorf("pattern: self-loop at %d", u)
		}
		p.adj[u] |= 1 << uint(v)
		p.adj[v] |= 1 << uint(u)
	}
	return p, nil
}

// Size returns the number of pattern vertices.
func (p Pattern) Size() int { return p.n }

// HasEdge reports whether vertices i and j are adjacent.
func (p Pattern) HasEdge(i, j int) bool { return p.adj[i]&(1<<uint(j)) != 0 }

// Degree returns the degree of pattern vertex i.
func (p Pattern) Degree(i int) int {
	d := 0
	for m := p.adj[i]; m != 0; m &= m - 1 {
		d++
	}
	return d
}

// NumEdges returns the pattern's edge count.
func (p Pattern) NumEdges() int {
	total := 0
	for i := 0; i < p.n; i++ {
		total += p.Degree(i)
	}
	return total / 2
}

// Edges returns all edges with i < j in sorted order.
func (p Pattern) Edges() [][2]int {
	var out [][2]int
	for i := 0; i < p.n; i++ {
		for j := i + 1; j < p.n; j++ {
			if p.HasEdge(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Neighbors returns the sorted neighbor indices of vertex i.
func (p Pattern) Neighbors(i int) []int {
	var out []int
	for j := 0; j < p.n; j++ {
		if p.HasEdge(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// IsConnected reports whether the pattern is connected; mining plans only
// make sense for connected patterns.
func (p Pattern) IsConnected() bool {
	if p.n == 0 {
		return false
	}
	var visited uint16 = 1
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < p.n; j++ {
			bit := uint16(1) << uint(j)
			if p.HasEdge(v, j) && visited&bit == 0 {
				visited |= bit
				stack = append(stack, j)
			}
		}
	}
	return visited == (1<<uint(p.n))-1
}

// Relabel returns the pattern with vertices permuted by perm: vertex i of
// the result is vertex perm[i] of p.
func (p Pattern) Relabel(perm []int) Pattern {
	var q Pattern
	q.n = p.n
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if p.HasEdge(perm[i], perm[j]) {
				q.adj[i] |= 1 << uint(j)
			}
		}
	}
	return q
}

// Equal reports whether p and q have identical size and adjacency (as
// labeled graphs, not up to isomorphism).
func (p Pattern) Equal(q Pattern) bool {
	if p.n != q.n {
		return false
	}
	for i := 0; i < p.n; i++ {
		if p.adj[i] != q.adj[i] {
			return false
		}
	}
	return true
}

// permutations invokes f on every permutation of [0,n); f returning false
// stops the enumeration.
func permutations(n int, f func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return f(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}

// Automorphisms returns every permutation σ with σ(p) = p, including the
// identity. Symmetry breaking derives its restrictions from this group
// (paper §2.1).
func (p Pattern) Automorphisms() [][]int {
	var out [][]int
	permutations(p.n, func(perm []int) bool {
		if p.Relabel(perm).Equal(p) {
			cp := make([]int, p.n)
			copy(cp, perm)
			out = append(out, cp)
		}
		return true
	})
	return out
}

// IsomorphicTo reports whether p and q are isomorphic, by brute force.
func (p Pattern) IsomorphicTo(q Pattern) bool {
	if p.n != q.n || p.NumEdges() != q.NumEdges() {
		return false
	}
	found := false
	permutations(p.n, func(perm []int) bool {
		if p.Relabel(perm).Equal(q) {
			found = true
			return false
		}
		return true
	})
	return found
}

// CanonicalCode returns a label-invariant encoding of the pattern: the
// lexicographically smallest adjacency bitstring over all relabelings.
// Two patterns have equal codes iff they are isomorphic; motif counting
// uses it to classify embeddings.
func (p Pattern) CanonicalCode() uint64 {
	best := ^uint64(0)
	permutations(p.n, func(perm []int) bool {
		q := p.Relabel(perm)
		var code uint64
		bit := 0
		for i := 0; i < p.n; i++ {
			for j := i + 1; j < p.n; j++ {
				if q.HasEdge(i, j) {
					code |= 1 << uint(bit)
				}
				bit++
			}
		}
		if code < best {
			best = code
		}
		return true
	})
	return best | uint64(p.n)<<56
}

// String renders the pattern as "K(n): 0-1 0-2 …".
func (p Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern(%d):", p.n)
	for _, e := range p.Edges() {
		fmt.Fprintf(&sb, " %d-%d", e[0], e[1])
	}
	return sb.String()
}

// ConnectedSubpatternsOfSize enumerates all non-isomorphic connected
// patterns with k vertices, used by k-motif counting to build the pattern
// set (paper §2.1: "counts the number of occurrences for each size-k
// pattern").
func ConnectedSubpatternsOfSize(k int) []Pattern {
	if k < 1 || k > 5 {
		panic("pattern: motif enumeration supported for sizes 1-5")
	}
	pairs := k * (k - 1) / 2
	var out []Pattern
	seen := map[uint64]bool{}
	for mask := 0; mask < 1<<uint(pairs); mask++ {
		var edges [][2]int
		bit := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if mask&(1<<uint(bit)) != 0 {
					edges = append(edges, [2]int{i, j})
				}
				bit++
			}
		}
		p := New(k, edges)
		if !p.IsConnected() {
			continue
		}
		code := p.CanonicalCode()
		if seen[code] {
			continue
		}
		seen[code] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CanonicalCode() < out[j].CanonicalCode() })
	return out
}
