// Package simreport holds the BENCH_sim.json schema shared by its
// producer (cmd/simbench) and its consumers (internal/trend,
// cmd/fingerstat, the CI regression gate). Keeping the types in one
// place is what lets the trend viewer parse every vintage of committed
// report: v1 (no geomeans), v2 (allocation profile + regression gate),
// and the current header with provenance metadata.
package simreport

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"fingers/internal/mem"
	"fingers/internal/telemetry"
)

// Schema is the current report schema tag: v3 adds the sharded-mode
// columns (shards, per-shard wall times, sharded speedup) and the
// single-core warning annotation; v4 adds the representation-mix
// columns (per-cell dense rows, bitmap rows, and hybrid storage bytes
// of the graph's adaptive set-storage view). All v3/v4 fields are
// omitempty, so a v4 report without them is byte-compatible with v2 and
// older readers ignore the extras; readers accept any
// "fingers/simbench/" prefix.
const Schema = "fingers/simbench/v4"

// SchemaPrefix matches every vintage of simbench report.
const SchemaPrefix = "fingers/simbench/"

// Cell is one (graph, pattern) benchmark measurement.
type Cell struct {
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`

	SimCycles       mem.Cycles `json:"sim_cycles"`        // serial makespan
	ParallelCycles  mem.Cycles `json:"parallel_cycles"`   // parallel makespan
	DivergencePct   float64    `json:"divergence_pct"`    // |par-serial|/serial × 100
	CountsIdentical bool       `json:"counts_identical"`  // embedding counts bit-identical
	SerialWallNS    int64      `json:"serial_wall_ns"`    // serial engine wall time
	ParallelWallNS  int64      `json:"parallel_wall_ns"`  // parallel engine wall time
	Workers1WallNS  int64      `json:"workers1_wall_ns"`  // parallel engine, Workers=1
	Speedup         float64    `json:"speedup"`           // serial wall / parallel wall
	Workers1Factor  float64    `json:"workers1_factor"`   // serial wall / workers=1 wall
	SerialCyclesSec float64    `json:"serial_cycles_sec"` // simulated cycles per wall second
	ParCyclesSec    float64    `json:"parallel_cycles_sec"`

	// Allocation profile of the best-time repetition (runtime.MemStats
	// deltas around the run: mallocs, bytes, and stop-the-world pause).
	SerialAllocs     uint64 `json:"serial_allocs"`
	SerialAllocBytes uint64 `json:"serial_alloc_bytes"`
	SerialGCPauseNS  uint64 `json:"serial_gc_pause_ns"`
	ParAllocs        uint64 `json:"parallel_allocs"`
	ParAllocBytes    uint64 `json:"parallel_alloc_bytes"`
	ParGCPauseNS     uint64 `json:"parallel_gc_pause_ns"`

	// Sharded-mode columns (v3), present only when the run was measured
	// with -shards > 1. ShardWallsNS is each shard's own wall time in
	// shard order — the spread is the root-partition balance signal.
	ShardedWallNS   int64   `json:"sharded_wall_ns,omitempty"`
	ShardWallsNS    []int64 `json:"shard_walls_ns,omitempty"`
	ShardedSpeedup  float64 `json:"sharded_speedup,omitempty"`
	ShardedCountsOK bool    `json:"sharded_counts_identical,omitempty"`
	ShardedAllocs   uint64  `json:"sharded_allocs,omitempty"`

	// Representation-mix columns (v4): how the graph's adaptive hybrid
	// set-storage view classified this cell's graph. DenseRows is the
	// hub tier, BitmapRows the compressed-bitmap tier, and HybridBytes
	// the total non-array storage when fully materialized
	// (graph.Footprint.HybridBytes). Zero/absent in pre-v4 reports.
	DenseRows   int   `json:"dense_rows,omitempty"`
	BitmapRows  int   `json:"bitmap_rows,omitempty"`
	HybridBytes int64 `json:"hybrid_bytes,omitempty"`
}

// Report is the BENCH_sim.json schema. The embedded telemetry.Meta
// contributes started_at / wall_ns / git_rev / host_cores / gomaxprocs
// / run_tag; reports written before the header round-trip unchanged
// (every meta field is omitempty) and old readers ignore the extras.
type Report struct {
	Schema string `json:"schema"`
	telemetry.Meta
	PEs     int        `json:"pes"`
	Workers int        `json:"workers"`
	Window  mem.Cycles `json:"window"`
	// Runs is the number of measured repetitions each cell is the
	// median of (1 = single-shot, the pre-header behaviour).
	Runs int `json:"runs,omitempty"`
	// Shards is the effective shard count of the sharded measurements
	// (v3); zero when the run was not sharded.
	Shards        int     `json:"shards,omitempty"`
	Cells         []Cell  `json:"cells"`
	GeomeanSpeed  float64 `json:"geomean_speedup"`
	GeomeanW1     float64 `json:"geomean_workers1_factor"`
	GeomeanSerCPS float64 `json:"geomean_serial_cycles_sec"`
	GeomeanDivPc  float64 `json:"geomean_divergence_pct"`
	MaxDivPct     float64 `json:"max_divergence_pct"`
	// GeomeanShardSpeed is the sharded/serial wall-clock speedup geomean
	// (v3); zero when the run was not sharded.
	GeomeanShardSpeed float64 `json:"geomean_shard_speedup,omitempty"`
	Note              string  `json:"note"`
	// Warning flags a measurement that cannot support an engine verdict
	// — today, a single-core host (host_cores or GOMAXPROCS of 1), where
	// every wall-clock speedup is an artifact of time slicing.
	Warning string `json:"warning,omitempty"`
}

// SerialGeomeanCPS returns the serial cycles/sec geomean, recomputing
// it from the cells when the header field is absent (v1 reports
// predate it). Zero when no cell carries data.
func (r *Report) SerialGeomeanCPS() float64 {
	if r.GeomeanSerCPS > 0 {
		return r.GeomeanSerCPS
	}
	logSum, n := 0.0, 0
	for _, c := range r.Cells {
		if c.SerialCyclesSec > 0 {
			logSum += math.Log(c.SerialCyclesSec)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Parse decodes one report, rejecting JSON whose schema tag is not a
// simbench report (a BENCH_softmine.json full of go-test events, say).
func Parse(raw []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(r.Schema, SchemaPrefix) {
		return nil, fmt.Errorf("schema %q is not a %s* report", r.Schema, SchemaPrefix)
	}
	return &r, nil
}

// ParseFile reads and decodes the report at path.
func ParseFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
