package planopt

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
)

// BenchmarkCompileBest measures full order-space search with sampled
// costing for a 4-vertex pattern.
func BenchmarkCompileBest(b *testing.B) {
	g := gen.PowerLawCluster(500, 5, 0.5, 3)
	p, _ := pattern.ByName("tt")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompileBest(g, p, Options{SampleRoots: 64}); err != nil {
			b.Fatal(err)
		}
	}
}
