package planopt

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

func TestValidOrdersConnectivity(t *testing.T) {
	p := pattern.TailedTriangle()
	orders := validOrders(p, 0)
	if len(orders) == 0 {
		t.Fatal("no valid orders")
	}
	for _, order := range orders {
		for i := 1; i < len(order); i++ {
			ok := false
			for j := 0; j < i; j++ {
				if p.HasEdge(order[j], order[i]) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("order %v violates connectivity at %d", order, i)
			}
		}
	}
	// The second vertex must always be adjacent to the first; vertex 3
	// (the tail) only neighbors vertex 0.
	for _, order := range orders {
		if order[0] == 3 && order[1] != 0 {
			t.Errorf("order %v: %d does not follow the tail's only neighbor", order, order[1])
		}
	}
}

func TestValidOrdersCap(t *testing.T) {
	if got := len(validOrders(pattern.Clique(4), 5)); got != 5 {
		t.Errorf("capped orders = %d", got)
	}
	// A clique admits all k! orders.
	if got := len(validOrders(pattern.Clique(4), 0)); got != 24 {
		t.Errorf("4-clique orders = %d, want 24", got)
	}
}

func TestCompileBestNeverWorse(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 13)
	for _, name := range []string{"tt", "cyc", "dia", "4cl"} {
		p, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileBest(g, p, Options{SampleRoots: 64})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > res.DefaultCost {
			t.Errorf("%s: best cost %d exceeds default %d", name, res.Cost, res.DefaultCost)
		}
		if res.Evaluated < 2 {
			t.Errorf("%s: evaluated only %d orders", name, res.Evaluated)
		}
		// Optimized order must not change the answer.
		def := plan.MustCompile(p, plan.Options{})
		if got, want := mine.Count(g, res.Plan), mine.Count(g, def); got != want {
			t.Errorf("%s: optimized plan counts %d, want %d", name, got, want)
		}
	}
}

func TestEstimateCostMonotoneInSample(t *testing.T) {
	g := gen.PowerLawCluster(400, 5, 0.5, 17)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	small := EstimateCost(g, pl, 10)
	large := EstimateCost(g, pl, 200)
	if small > large {
		t.Errorf("cost shrank with more roots: %d → %d", small, large)
	}
	if large <= 0 {
		t.Error("no cost accumulated")
	}
}

func TestCompileBestEdgeInduced(t *testing.T) {
	g := gen.ErdosRenyi(100, 400, 9)
	p, _ := pattern.ByName("dia")
	res, err := CompileBest(g, p, Options{
		Plan:        plan.Options{EdgeInduced: true},
		SampleRoots: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.EdgeInduced {
		t.Error("EdgeInduced dropped")
	}
	def := plan.MustCompile(p, plan.Options{EdgeInduced: true})
	if got, want := mine.Count(g, res.Plan), mine.Count(g, def); got != want {
		t.Errorf("edge-induced optimized count %d, want %d", got, want)
	}
}
