// Package planopt selects execution-plan vertex orders with an empirical
// cost model, the role the plan compilers of AutoMine/GraphZero/GraphPi
// play in the paper's software stack (§2.1: "How to compile an optimized
// execution plan is an extensively studied topic"). The default compiler
// in package plan uses a connectivity heuristic; this package enumerates
// every valid order, estimates each plan's cost by walking a sample of
// root vertices and counting comparator work, and returns the cheapest.
//
// Both accelerator models accept any compiled plan, so a better order
// benefits FINGERS and FlexMiner alike — order selection is orthogonal to
// the architectural comparison, exactly as the paper treats it (§5).
package planopt

import (
	"fmt"

	"fingers/internal/graph"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// Options configures the search.
type Options struct {
	// Plan is forwarded to plan.Compile (EdgeInduced etc.); its Order
	// field is ignored.
	Plan plan.Options
	// SampleRoots is the number of root vertices walked per candidate
	// order; 0 uses a size-dependent default.
	SampleRoots int
	// MaxOrders caps the candidate orders evaluated; 0 evaluates all
	// valid orders (at most k! for a size-k pattern).
	MaxOrders int
}

// Cost is the estimated comparator work (elements streamed through merge
// units) of executing a plan over the sampled roots.
type Cost int64

// Result reports the chosen plan and the candidates considered.
type Result struct {
	Plan *plan.Plan
	Cost Cost
	// Evaluated is the number of candidate orders costed.
	Evaluated int
	// DefaultCost is the heuristic order's cost, for comparison.
	DefaultCost Cost
}

// CompileBest compiles p with the cheapest vertex order for graph g.
func CompileBest(g *graph.Graph, p pattern.Pattern, opts Options) (*Result, error) {
	base := opts.Plan
	base.Order = nil
	defaultPlan, err := plan.Compile(p, base)
	if err != nil {
		return nil, err
	}
	sample := opts.SampleRoots
	if sample <= 0 {
		sample = g.NumVertices()
		if sample > 512 {
			sample = 512
		}
	}
	res := &Result{
		Plan:        defaultPlan,
		Cost:        EstimateCost(g, defaultPlan, sample),
		DefaultCost: 0,
		Evaluated:   1,
	}
	res.DefaultCost = res.Cost

	orders := validOrders(p, opts.MaxOrders)
	for _, order := range orders {
		o := base
		o.Order = order
		cand, err := plan.Compile(p, o)
		if err != nil {
			// Orders are pre-validated; an error here is a bug.
			return nil, fmt.Errorf("planopt: candidate order %v: %w", order, err)
		}
		cost := EstimateCost(g, cand, sample)
		res.Evaluated++
		if cost < res.Cost {
			res.Plan = cand
			res.Cost = cost
		}
	}
	return res, nil
}

// EstimateCost walks the search trees of the first sampleRoots root
// vertices and sums the comparator work of every task's set operations —
// the quantity both PE models charge cycles for.
func EstimateCost(g *graph.Graph, pl *plan.Plan, sampleRoots int) Cost {
	e := mine.NewEngine(g, pl)
	roots := g.NumVertices()
	if sampleRoots > 0 && roots > sampleRoots {
		roots = sampleRoots
	}
	var total Cost
	var walk func(n *mine.Node)
	walk = func(n *mine.Node) {
		if n.Level == pl.K()-2 {
			return
		}
		for _, v := range e.Candidates(n) {
			child, info := e.Extend(n, v)
			for _, op := range info.Ops {
				total += Cost(len(op.Short) + len(op.Long))
			}
			walk(child)
		}
	}
	for v := 0; v < roots; v++ {
		root, info := e.Start(uint32(v))
		for _, op := range info.Ops {
			total += Cost(len(op.Short) + len(op.Long))
		}
		walk(root)
	}
	return total
}

// validOrders enumerates vertex orders where every non-initial vertex is
// adjacent to an earlier one (the connectivity requirement candidate
// plans must satisfy), up to the cap.
func validOrders(p pattern.Pattern, cap int) [][]int {
	k := p.Size()
	var out [][]int
	used := make([]bool, k)
	order := make([]int, 0, k)
	var rec func()
	rec = func() {
		if cap > 0 && len(out) >= cap {
			return
		}
		if len(order) == k {
			out = append(out, append([]int(nil), order...))
			return
		}
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			if len(order) > 0 {
				connected := false
				for _, u := range order {
					if p.HasEdge(u, v) {
						connected = true
						break
					}
				}
				if !connected {
					continue
				}
			}
			used[v] = true
			order = append(order, v)
			rec()
			order = order[:len(order)-1]
			used[v] = false
		}
	}
	rec()
	return out
}
