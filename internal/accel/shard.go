package accel

// PartitionRootsWeighted splits roots 0..n-1 into len(shares) contiguous
// ranges [lo, hi) whose cumulative weight is proportional to each
// share — the degree-aware contiguous batching of the fork-processing-
// patterns literature: every shard streams one disjoint CSR region
// instead of interleaving cache lines with its siblings. weight(i) is
// the cost estimate of root i (degree-derived in practice; it must be
// non-negative). Shares are integer capacities, typically each shard's
// PE count. The union of the ranges is exactly [0, n); a range may be
// empty when its share is zero or the weight mass runs out. The split
// is a pure function of its inputs, so a partitioned run remains
// deterministic.
func PartitionRootsWeighted(n int, weight func(int) int64, shares []int) [][2]int {
	parts := make([][2]int, len(shares))
	if len(shares) == 0 {
		return parts
	}
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	share := func(s int) int64 {
		if shares[s] > 0 {
			return int64(shares[s])
		}
		return 0
	}
	var shareSum int64
	for s := range shares {
		shareSum += share(s)
	}
	if shareSum == 0 {
		// Degenerate shares: fall back to an even split by weight.
		share = func(int) int64 { return 1 }
		shareSum = int64(len(shares))
	}
	lo, cum, cumShare := 0, int64(0), int64(0)
	for s := range shares {
		if s == len(shares)-1 {
			parts[s] = [2]int{lo, n}
			break
		}
		cumShare += share(s)
		// The shard ends where the cumulative weight first reaches its
		// proportional target. Weights are bounded by total edge counts
		// (well under 2^40) and shareSum by the PE count, so the product
		// cannot overflow int64.
		target := total * cumShare / shareSum
		hi := lo
		for hi < n && cum < target {
			cum += weight(hi)
			hi++
		}
		parts[s] = [2]int{lo, hi}
		lo = hi
	}
	return parts
}
