package accel

import "testing"

func TestPartitionRootsWeightedCoversRange(t *testing.T) {
	weight := func(i int) int64 { return int64(i%7) + 1 }
	for _, tc := range []struct {
		n      int
		shares []int
	}{
		{100, []int{1, 1, 1, 1}},
		{100, []int{3, 1}},
		{5, []int{2, 2, 2, 2}}, // more shards than roots
		{0, []int{1, 1}},       // no roots
		{100, []int{0, 0}},     // degenerate shares fall back to even
		{1, []int{4}},
	} {
		parts := PartitionRootsWeighted(tc.n, weight, tc.shares)
		if len(parts) != len(tc.shares) {
			t.Fatalf("n=%d shares=%v: %d parts", tc.n, tc.shares, len(parts))
		}
		lo := 0
		for s, p := range parts {
			if p[0] != lo {
				t.Errorf("n=%d shares=%v: part %d starts at %d, want %d", tc.n, tc.shares, s, p[0], lo)
			}
			if p[1] < p[0] {
				t.Errorf("n=%d shares=%v: part %d inverted %v", tc.n, tc.shares, s, p)
			}
			lo = p[1]
		}
		if lo != tc.n {
			t.Errorf("n=%d shares=%v: union ends at %d", tc.n, tc.shares, lo)
		}
	}
}

func TestPartitionRootsWeightedProportional(t *testing.T) {
	// Uniform weights, equal shares: the split must be (near-)even.
	parts := PartitionRootsWeighted(1000, func(int) int64 { return 1 }, []int{1, 1, 1, 1})
	for s, p := range parts {
		if size := p[1] - p[0]; size < 240 || size > 260 {
			t.Errorf("part %d has %d roots, want ~250", s, size)
		}
	}
	// One heavy head root: the first shard should take little else.
	parts = PartitionRootsWeighted(100, func(i int) int64 {
		if i == 0 {
			return 1000
		}
		return 1
	}, []int{1, 1})
	if parts[0][1]-parts[0][0] > 10 {
		t.Errorf("head shard took %v; heavy root should satisfy most of its share", parts[0])
	}
}

func TestNewRootSchedulerRange(t *testing.T) {
	r := NewRootSchedulerRange(10, 14)
	if r.Total() != 4 || r.Remaining() != 4 {
		t.Fatalf("total=%d remaining=%d, want 4/4", r.Total(), r.Remaining())
	}
	for want := uint32(10); want < 14; want++ {
		v, ok := r.Next()
		if !ok || v != want {
			t.Fatalf("Next = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("exhausted range still yields roots")
	}
	if e := NewRootSchedulerRange(5, 5); e.Total() != 0 {
		t.Error("empty range has non-zero total")
	}
	if e := NewRootSchedulerRange(7, 3); e.Total() != 0 {
		t.Error("inverted range has non-zero total")
	}
}
