package accel

import "testing"

// TestRootSchedulerZeroValue pins the documented contract: the zero
// value is an empty, exhausted scheduler.
func TestRootSchedulerZeroValue(t *testing.T) {
	var r RootScheduler
	if _, ok := r.Next(); ok {
		t.Error("zero-value Next returned ok=true")
	}
	if r.Total() != 0 || r.Remaining() != 0 {
		t.Errorf("zero-value Total=%d Remaining=%d, want 0,0", r.Total(), r.Remaining())
	}
}

// TestRootSchedulerNilReceiver pins the defensive nil contract: a nil
// scheduler behaves like the zero value instead of dereferencing.
func TestRootSchedulerNilReceiver(t *testing.T) {
	var r *RootScheduler
	if _, ok := r.Next(); ok {
		t.Error("nil Next returned ok=true")
	}
	if r.Total() != 0 {
		t.Errorf("nil Total = %d, want 0", r.Total())
	}
	if r.Remaining() != 0 {
		t.Errorf("nil Remaining = %d, want 0", r.Remaining())
	}
}

// TestRootSchedulerExhaustion checks Remaining bookkeeping across a full
// drain, for both the ID-order and the custom-order constructors.
func TestRootSchedulerExhaustion(t *testing.T) {
	r := NewRootScheduler(3)
	for i := 0; i < 3; i++ {
		v, ok := r.Next()
		if !ok || v != uint32(i) {
			t.Fatalf("Next #%d = %d,%v", i, v, ok)
		}
		if got := r.Remaining(); got != 2-i {
			t.Errorf("Remaining after %d draws = %d", i+1, got)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("exhausted scheduler returned ok=true")
	}
	if r.Remaining() != 0 || r.Total() != 3 {
		t.Errorf("drained: Remaining=%d Total=%d, want 0,3", r.Remaining(), r.Total())
	}

	o := NewRootSchedulerWithOrder([]uint32{7, 5})
	if v, _ := o.Next(); v != 7 {
		t.Errorf("ordered first = %d, want 7", v)
	}
	if v, _ := o.Next(); v != 5 {
		t.Errorf("ordered second = %d, want 5", v)
	}
	if _, ok := o.Next(); ok {
		t.Error("ordered scheduler not exhausted after its order")
	}
}
