package accel

import (
	"strings"
	"testing"

	"fingers/internal/mem"
)

func TestParallelConfigValidate(t *testing.T) {
	cases := []struct {
		cfg  ParallelConfig
		want string // substring of the error; "" means valid
	}{
		{ParallelConfig{Window: 1, Workers: 1}, ""},
		{ParallelConfig{Window: 1 << 20, Workers: 64}, ""},
		{ParallelConfig{Window: 0, Workers: 4}, "window"},
		{ParallelConfig{Window: -1, Workers: 4}, "window"},
		{ParallelConfig{Window: 16, Workers: 0}, "workers"},
		{ParallelConfig{Window: 16, Workers: -2}, "workers"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%+v: unexpected error %v", c.cfg, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%+v: expected an error", c.cfg)
		} else if !strings.Contains(strings.ToLower(err.Error()), c.want) {
			t.Errorf("%+v: error %q does not mention %q", c.cfg, err, c.want)
		}
	}
}

func TestDefaultParallelConfigIsValid(t *testing.T) {
	if err := DefaultParallelConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelRejectsMismatchedPorts(t *testing.T) {
	hier := mem.NewHierarchy(0)
	if _, err := RunParallel(make([]SpecPE, 2), hier, nil, DefaultParallelConfig()); err == nil {
		t.Error("expected an error for 2 PEs and 0 ports")
	}
	if _, err := RunParallel(make([]SpecPE, 1), nil, nil, DefaultParallelConfig()); err == nil {
		t.Error("expected an error for a nil hierarchy")
	}
}

func TestRunParallelEmpty(t *testing.T) {
	hier := mem.NewHierarchy(0)
	got, err := RunParallel(nil, hier, nil, DefaultParallelConfig())
	if err != nil || got != 0 {
		t.Errorf("empty run = %d, %v", got, err)
	}
}

// TestRunWithProgressNowNeverRegresses: Progress.Now is the simulation
// frontier; successive snapshots must be monotonically non-decreasing.
func TestRunWithProgressNowNeverRegresses(t *testing.T) {
	pes := []PE{
		&fakePE{step: 13, left: 40},
		&fakePE{step: 7, left: 80},
		&fakePE{step: 29, left: 11},
	}
	var prev mem.Cycles
	RunWithProgress(pes, 3, func(p Progress) {
		if p.Now < prev {
			t.Fatalf("Now regressed: %d after %d (steps=%d)", p.Now, prev, p.Steps)
		}
		prev = p.Now
	})
}
