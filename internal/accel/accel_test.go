package accel

import (
	"testing"

	"fingers/internal/mem"
)

func TestRootSchedulerHandsOutAllRoots(t *testing.T) {
	r := NewRootScheduler(5)
	seen := map[uint32]bool{}
	for {
		v, ok := r.Next()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("root %d handed out twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("got %d roots, want 5", len(seen))
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

// fakePE consumes a fixed number of steps, each advancing time.
type fakePE struct {
	now   mem.Cycles
	step  mem.Cycles
	left  int
	count uint64
}

func (f *fakePE) Time() mem.Cycles { return f.now }
func (f *fakePE) Count() uint64    { return f.count }
func (f *fakePE) Step() bool {
	if f.left == 0 {
		return false
	}
	f.left--
	f.now += f.step
	return true
}

func TestRunReturnsMakespan(t *testing.T) {
	pes := []PE{
		&fakePE{step: 10, left: 3}, // finishes at 30
		&fakePE{step: 7, left: 10}, // finishes at 70
	}
	if got := Run(pes); got != 70 {
		t.Errorf("makespan = %d, want 70", got)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(nil); got != 0 {
		t.Errorf("empty makespan = %d", got)
	}
}

func TestResultSpeedup(t *testing.T) {
	a := Result{Cycles: 100}
	b := Result{Cycles: 400}
	if got := a.Speedup(b); got != 4 {
		t.Errorf("speedup = %v, want 4", got)
	}
	zero := Result{}
	if zero.Speedup(b) != 0 {
		t.Error("zero-cycle speedup should be 0")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Cycles: 5, Count: 2, Tasks: 3}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// orderedPE records the times at which it steps, via a shared log.
type orderedPE struct {
	now  mem.Cycles
	step mem.Cycles
	left int
	log  *[]mem.Cycles
}

func (o *orderedPE) Time() mem.Cycles { return o.now }
func (o *orderedPE) Count() uint64    { return 0 }
func (o *orderedPE) Step() bool {
	if o.left == 0 {
		return false
	}
	*o.log = append(*o.log, o.now)
	o.left--
	o.now += o.step
	return true
}

// TestRunInterleavesInEventOrder: the harness must always step the PE
// with the smallest local clock, so the shared memory system observes
// accesses in near-global time order.
func TestRunInterleavesInEventOrder(t *testing.T) {
	var log []mem.Cycles
	pes := []PE{
		&orderedPE{step: 7, left: 5, log: &log},
		&orderedPE{step: 3, left: 10, log: &log},
		&orderedPE{step: 11, left: 3, log: &log},
	}
	Run(pes)
	for i := 1; i < len(log); i++ {
		if log[i] < log[i-1] {
			t.Fatalf("steps out of order at %d: %v", i, log)
		}
	}
	if len(log) != 18 {
		t.Errorf("steps = %d, want 18", len(log))
	}
}

// TestSchedulerWithOrder hands out a custom order verbatim.
func TestSchedulerWithOrder(t *testing.T) {
	order := []uint32{5, 2, 9}
	r := NewRootSchedulerWithOrder(order)
	for i, want := range order {
		v, ok := r.Next()
		if !ok || v != want {
			t.Fatalf("root %d = %d,%v want %d", i, v, ok, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("scheduler did not exhaust")
	}
}

// TestRunWithProgressFiresPeriodically checks the progress callback
// cadence and snapshot fields.
func TestRunWithProgressFiresPeriodically(t *testing.T) {
	pes := []PE{
		&fakePE{step: 10, left: 3},
		&fakePE{step: 7, left: 10},
	}
	var snaps []Progress
	got := RunWithProgress(pes, 4, func(p Progress) { snaps = append(snaps, p) })
	if got != 70 {
		t.Fatalf("makespan = %d, want 70", got)
	}
	// 13 work steps + 2 retiring pops = 15 quanta → callbacks at 4, 8, 12.
	if len(snaps) != 3 {
		t.Fatalf("got %d progress callbacks: %+v", len(snaps), snaps)
	}
	for i, p := range snaps {
		if p.Steps != int64(4*(i+1)) {
			t.Errorf("snapshot %d at steps %d", i, p.Steps)
		}
	}
	if last := snaps[len(snaps)-1]; last.Active < 0 || last.Now == 0 {
		t.Errorf("implausible final snapshot %+v", last)
	}
}

// TestRunWithProgressDisabled checks every disabled combination reduces
// to Run.
func TestRunWithProgressDisabled(t *testing.T) {
	for _, every := range []int64{0, -1, 5} {
		pes := []PE{&fakePE{step: 5, left: 4}}
		var fn func(Progress)
		if every == 5 {
			fn = nil // explicit nil fn with a period must also be silent
		}
		if got := RunWithProgress(pes, every, fn); got != 20 {
			t.Errorf("every=%d: makespan = %d, want 20", every, got)
		}
	}
}
