// Package accel provides the chip-level harness shared by the FlexMiner
// baseline and the FINGERS accelerator models: a global root-vertex
// scheduler (the coarse-grained, tree-level parallelism of §3.1), an
// event-ordered multi-PE execution loop over the shared memory system,
// and the result/statistics types the experiment harness consumes.
package accel

import (
	"container/heap"
	"context"
	"fmt"

	"fingers/internal/mem"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// RootScheduler hands out search-tree root vertices to PEs — the paper's
// global scheduler that "assigns individual search trees rooted at
// different vertices to separate PEs" (§4). The default hands out vertex
// IDs in sequence, which places adjacent-ID roots on different PEs at the
// same time — the locality-friendly policy §6.3 suggests; a custom order
// enables load-balance and locality ablations.
// The zero value (and, defensively, a nil *RootScheduler) is an empty,
// exhausted scheduler: Next reports ok=false, Total and Remaining report
// zero. Callers holding an optional scheduler can therefore query it
// without a nil check of their own.
type RootScheduler struct {
	next  int
	n     int
	base  int
	order []uint32
}

// NewRootScheduler schedules roots 0..n-1 in ID order.
func NewRootScheduler(n int) *RootScheduler { return &RootScheduler{n: n} }

// NewRootSchedulerRange schedules roots lo..hi-1 in ID order — the
// contiguous root slice one shard of a partitioned run owns. A range
// with hi <= lo is empty.
func NewRootSchedulerRange(lo, hi int) *RootScheduler {
	if hi < lo {
		hi = lo
	}
	return &RootScheduler{n: hi - lo, base: lo}
}

// Total returns the number of roots the scheduler was built with; zero
// for a nil or zero-value scheduler.
func (r *RootScheduler) Total() int {
	if r == nil {
		return 0
	}
	return r.n
}

// NewRootSchedulerWithOrder schedules the given roots in the given order.
func NewRootSchedulerWithOrder(order []uint32) *RootScheduler {
	return &RootScheduler{n: len(order), order: order}
}

// Next returns the next root, or ok=false when the graph is exhausted.
// A nil or zero-value scheduler is exhausted from the start.
func (r *RootScheduler) Next() (v uint32, ok bool) {
	if r == nil || r.next >= r.n {
		return 0, false
	}
	if r.order != nil {
		v = r.order[r.next]
	} else {
		v = uint32(r.base + r.next)
	}
	r.next++
	return v, true
}

// Remaining returns the number of unassigned roots; zero for a nil or
// zero-value scheduler.
func (r *RootScheduler) Remaining() int {
	if r == nil {
		return 0
	}
	return r.n - r.next
}

// MemPort is a PE's view of the shared memory system: the shared cache,
// reached through the NoC. *mem.Cache satisfies it directly (zero NoC
// latency); noc.Port adds the mesh round trip.
type MemPort interface {
	// Access reads [addr, addr+bytes) at time now, returning completion.
	Access(now mem.Cycles, addr, bytes int64) mem.Cycles
	// Probe reports whether the range is resident, without side effects.
	Probe(addr, bytes int64) bool
}

// PE is one processing element driven by the chip's event loop. Step
// executes the PE's next unit of work (a task, or a task group) beginning
// at its local time, advancing it; it returns false once the PE is
// permanently idle (empty stack and no roots left).
type PE interface {
	// Time returns the PE's local clock.
	Time() mem.Cycles
	// Step advances the PE by one scheduling quantum.
	Step() bool
	// Count returns the embeddings found so far (per pattern for
	// multi-pattern runs, summed by the harness).
	Count() uint64
}

// peEntry is one scheduled PE with its chip index.
type peEntry struct {
	pe PE
	id int
}

// peHeap orders PEs by local time so shared-resource accesses interleave
// in approximately global time order. Ties break by PE index, making the
// serial schedule the exact (cycle, PE-id) order the parallel epoch
// engine commits in — the property the Window=1 equivalence oracle
// depends on.
type peHeap []peEntry

func (h peHeap) Len() int { return len(h) }
func (h peHeap) Less(i, j int) bool {
	ti, tj := h[i].pe.Time(), h[j].pe.Time()
	return ti < tj || (ti == tj && h[i].id < h[j].id)
}
func (h peHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *peHeap) Push(x interface{}) { *h = append(*h, x.(peEntry)) }
func (h *peHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Result summarizes one simulated run.
type Result struct {
	// Cycles is the makespan: the largest finishing time over all PEs.
	Cycles mem.Cycles
	// Count is the total embeddings found (symmetry-broken).
	Count uint64
	// SharedCache reports shared-cache hit/miss statistics.
	SharedCache mem.CacheStats
	// DRAM reports off-chip traffic.
	DRAM mem.DRAMStats
	// PEBusy sums per-PE busy (non-idle) cycles, for utilization studies.
	PEBusy mem.Cycles
	// Tasks counts the extension tasks executed across all PEs.
	Tasks int64
	// Breakdown attributes the chip's PE-cycles (makespan × #PEs) to
	// compute, exposed memory stall, pipeline overhead, and idle — the
	// chip-wide rollup of the per-PE telemetry counters.
	Breakdown telemetry.Breakdown
}

// Speedup returns other.Cycles / r.Cycles: how much faster r is.
func (r Result) Speedup(other Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(other.Cycles) / float64(r.Cycles)
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("cycles=%d count=%d tasks=%d missRate=%.1f%%",
		r.Cycles, r.Count, r.Tasks, 100*r.SharedCache.MissRate())
}

// Progress is a snapshot of the event loop handed to the progress
// callback of RunWithProgress.
type Progress struct {
	// Steps is the number of scheduling quanta executed so far.
	Steps int64
	// Now is the frontmost local clock: no shared state precedes it.
	Now mem.Cycles
	// Active is the number of PEs that still have work.
	Active int
}

// CancelCheckQuantum is how many scheduling quanta the serial event loop
// executes between context checks: a cancelled RunCtx returns within this
// many PE steps of the context firing. The value keeps the check off the
// per-step hot path while bounding the cancellation latency to well under
// a millisecond of host time.
const CancelCheckQuantum = 64

// RootHolder is an optional PE capability: a PE that can report the root
// vertex of the search tree it is currently mining, for failure
// attribution and partial-progress reporting. Both accelerator PE models
// implement it; the engines fall back to simerr.NoRoot when absent.
type RootHolder interface {
	CurrentRoot() (root uint32, ok bool)
}

// currentRoot reports the PE's in-flight root for error attribution.
func currentRoot(pe PE) int64 {
	if rh, ok := pe.(RootHolder); ok {
		if v, ok := rh.CurrentRoot(); ok {
			return int64(v)
		}
	}
	return simerr.NoRoot
}

// safeStep advances one PE, converting a panic inside the step into a
// structured *simerr.SimError attributed to the PE, its local clock, and
// the root it was mining.
func safeStep(pe PE, id int, engine string) (alive bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = simerr.FromPanic(engine, id, int64(pe.Time()), currentRoot(pe), r)
		}
	}()
	return pe.Step(), nil
}

// Run drives the PEs in event order until all are idle and returns the
// makespan. Each heap pop selects the PE with the smallest local clock so
// shared cache and DRAM state evolve in near-global order. A panic inside
// a PE step propagates as a panicking *simerr.SimError; use RunCtx to
// receive it as an error instead.
func Run(pes []PE) mem.Cycles { return RunWithProgress(pes, 0, nil) }

// RunWithProgress is Run with a periodic observer: every `every`
// scheduling quanta it calls fn with a Progress snapshot (every <= 0 or
// fn == nil disables the callback, reducing to Run). The callback must
// not mutate simulation state.
func RunWithProgress(pes []PE, every int64, fn func(Progress)) mem.Cycles {
	makespan, err := RunCtxWithProgress(context.Background(), pes, every, fn)
	if err != nil {
		// Unreachable for a background context unless a PE step panicked;
		// preserve the legacy crash contract of the ctx-less entry point.
		panic(err)
	}
	return makespan
}

// RunCtx is Run with cancellation and panic recovery: the loop checks ctx
// every CancelCheckQuantum scheduling quanta, and a fired context stops
// the run within that bound. The returned makespan is then the partially
// simulated horizon (the largest local clock reached) alongside a
// *simerr.SimError wrapping ctx.Err(); shared cache, DRAM, and per-PE
// state remain consistent and inspectable — graceful degradation, not
// data loss. A panic inside a PE step likewise returns as a *SimError
// attributed to the PE, cycle, and root.
func RunCtx(ctx context.Context, pes []PE) (mem.Cycles, error) {
	return RunCtxWithProgress(ctx, pes, 0, nil)
}

// RunCtxWithProgress is RunCtx with the periodic observer of
// RunWithProgress.
func RunCtxWithProgress(ctx context.Context, pes []PE, every int64, fn func(Progress)) (mem.Cycles, error) {
	h := make(peHeap, 0, len(pes))
	var makespan mem.Cycles
	for i, pe := range pes {
		h = append(h, peEntry{pe: pe, id: i})
	}
	heap.Init(&h)
	// horizon is the partially simulated makespan at an early return: the
	// largest local clock any PE reached, retired or not.
	horizon := func() mem.Cycles {
		out := makespan
		for _, en := range h {
			if t := en.pe.Time(); t > out {
				out = t
			}
		}
		return out
	}
	var steps int64
	for h.Len() > 0 {
		if steps%CancelCheckQuantum == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return horizon(), simerr.Cancelled("serial", int64(horizon()), cerr)
			}
		}
		pe, id := h[0].pe, h[0].id
		alive, err := safeStep(pe, id, "serial")
		if err != nil {
			return horizon(), err
		}
		steps++
		if alive {
			heap.Fix(&h, 0)
		} else {
			if pe.Time() > makespan {
				makespan = pe.Time()
			}
			heap.Pop(&h)
		}
		if every > 0 && fn != nil && steps%every == 0 {
			var now mem.Cycles
			if h.Len() > 0 {
				now = h[0].pe.Time()
			} else {
				now = makespan
			}
			fn(Progress{Steps: steps, Now: now, Active: h.Len()})
		}
	}
	return makespan, nil
}
