package accel

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fingers/internal/mem"
	"fingers/internal/noc"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// DefaultWindow is the default bounded-lag epoch width Δ in cycles. It
// trades epoch-barrier overhead against commit-order fidelity: wider
// windows amortize synchronization over more PE steps but let same-epoch
// PEs interleave their shared-memory traffic in (cycle, PE-id) block
// order instead of exact global time order. The value is chosen so the
// quick-grid makespan divergence stays well under 1% geomean (see
// BENCH_sim.json) while epochs carry enough work to scale.
const DefaultWindow mem.Cycles = 256

// maxStepsPerEpoch bounds one PE's speculative steps inside a single
// epoch. It exists to bound block memory and to keep pathological
// zero-latency configurations (where a step may not advance the local
// clock) from spinning inside one epoch forever.
const maxStepsPerEpoch = 4096

// ParallelConfig configures the bounded-lag parallel engine.
type ParallelConfig struct {
	// Window is the epoch width Δ: all PEs whose local clocks fall in
	// [T, T+Δ) step concurrently, then commit at the epoch barrier in
	// (cycle, PE-id) order. Window=1 reproduces the serial event loop
	// exactly (see RunParallel).
	Window mem.Cycles
	// Workers is the size of the host worker pool the speculative phase
	// fans PEs across. Results are identical for every worker count;
	// only wall-clock time changes.
	Workers int
}

// DefaultParallelConfig returns the default engine configuration:
// DefaultWindow and one worker per host CPU.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{Window: DefaultWindow, Workers: runtime.GOMAXPROCS(0)}
}

// Validate reports a descriptive error for degenerate configurations.
func (c ParallelConfig) Validate() error {
	if c.Window < 1 {
		return fmt.Errorf("accel: parallel window must be >= 1 cycle, got %d", c.Window)
	}
	if c.Workers < 1 {
		return fmt.Errorf("accel: parallel workers must be >= 1, got %d", c.Workers)
	}
	return nil
}

// SpecPE is a PE the parallel engine can execute speculatively. Beyond
// the serial PE contract it must expose enough of its scheduling state
// for the engine to (a) reserve root handouts at epoch barriers so the
// shared RootScheduler is never pulled from concurrently, and (b) rewind
// a speculated step that validated false and re-execute it against the
// live memory state.
type SpecPE interface {
	PE
	// WillTakeRoot reports whether the PE's next Step would request a new
	// root vertex from the shared scheduler. It must be a pure function
	// of PE-local state.
	WillTakeRoot() bool
	// StageRoot pulls the next root from the PE's scheduler (if none is
	// already staged) and holds it for the PE's next root request, fixing
	// the handout order at the epoch barrier.
	StageRoot()
	// StagedRoot reports whether a staged root is pending consumption.
	StagedRoot() bool
	// SpecActivate toggles undo journaling: while on, every Step records
	// enough to rewind it. SpecSave marks the current journal position and
	// captures the PE's scalar state, returning a mark; SpecRewind rewinds
	// the PE to a mark, discarding later marks (each mark is rewound to at
	// most once, and only in reverse order). SpecFlush retires the whole
	// journal once its steps can no longer be rewound — the engine calls
	// it before each speculative phase, so journals never outlive an
	// epoch. Steps taken with journaling off (the serial engine, solo
	// fast-path and post-rewind commit stepping) carry zero journal cost.
	SpecActivate(on bool)
	SpecSave() int
	SpecRewind(mark int)
	SpecFlush()
	// SwapPort replaces the PE's shared-memory port, returning the
	// previous one.
	SwapPort(p MemPort) MemPort
	// SwapTracer replaces the PE's event tracer, returning the previous
	// one.
	SwapTracer(t telemetry.Tracer) telemetry.Tracer
}

// specEvent is one recorded action of a speculative step: a shared-memory
// operation to revalidate and replay at commit, or a telemetry event to
// re-emit in commit order. The struct is kept to the memory-op fields —
// telemetry payloads (recorded only on traced runs) live in the block's
// side table, indexed by tel — because the commit phase streams through
// millions of these and entry size is directly memory traffic.
type specEvent struct {
	kind evKind
	// Probe answer.
	ok    bool
	tel   int32 // index into specBlock.tel for telemetry kinds
	at    mem.Cycles
	addr  int64
	bytes int64
	// Access results under the speculative view.
	done   mem.Cycles
	misses int64
}

// telEvent is the payload of one recorded telemetry event.
type telEvent struct {
	at                           mem.Cycles
	engine, size                 int
	longLen, shortLen, workloads int
	str                          string
}

type evKind uint8

const (
	evAccess evKind = iota
	evProbe
	evGroupBegin
	evGroupEnd
	evSetOp
)

// specBlock is one speculatively executed PE step: the atomic unit the
// commit phase validates and applies. Blocks commit in
// (start, PE-id, seq) order — the canonical order the engine's whole
// determinism contract is stated in.
type specBlock struct {
	pe      int
	seq     int
	start   mem.Cycles
	snap    int // the PE's SpecSave mark taken before the step
	alive   bool
	entries []specEvent
	tel     []telEvent // payloads of the telemetry entries, in entry order
}

// specAgent is the recording harness installed into one PE during the
// speculative phase: it implements the PE-facing MemPort against the
// PE's private speculative view and the telemetry.Tracer interface as an
// event recorder.
type specAgent struct {
	peID    int
	view    *mem.SpecMem
	spec    *noc.SpecPort
	cur     *specBlock
	blocks  []*specBlock
	free    []*specBlock
	traceOn bool
}

func (a *specAgent) takeBlock() *specBlock {
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free = a.free[:n-1]
		b.entries = b.entries[:0]
		b.tel = b.tel[:0]
		return b
	}
	return &specBlock{}
}

// Access implements accel.MemPort over the speculative view, recording
// the resolved completion and line geometry for commit-time validation.
func (a *specAgent) Access(now mem.Cycles, addr, bytes int64) mem.Cycles {
	done, _, misses := a.spec.Access(now, addr, bytes)
	a.cur.entries = append(a.cur.entries, specEvent{
		kind: evAccess, at: now, addr: addr, bytes: bytes, done: done, misses: misses,
	})
	return done
}

// Probe implements accel.MemPort over the speculative view.
func (a *specAgent) Probe(addr, bytes int64) bool {
	ok := a.spec.Probe(addr, bytes)
	a.cur.entries = append(a.cur.entries, specEvent{kind: evProbe, addr: addr, bytes: bytes, ok: ok})
	return ok
}

// TaskGroupBegin implements telemetry.Tracer as a recorder.
func (a *specAgent) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) {
	if a.traceOn {
		a.cur.tel = append(a.cur.tel, telEvent{at: at, engine: engine, size: size})
		a.cur.entries = append(a.cur.entries, specEvent{kind: evGroupBegin, tel: int32(len(a.cur.tel) - 1)})
	}
}

// TaskGroupEnd implements telemetry.Tracer as a recorder.
func (a *specAgent) TaskGroupEnd(pe int, at mem.Cycles) {
	if a.traceOn {
		a.cur.tel = append(a.cur.tel, telEvent{at: at})
		a.cur.entries = append(a.cur.entries, specEvent{kind: evGroupEnd, tel: int32(len(a.cur.tel) - 1)})
	}
}

// SetOpIssue implements telemetry.Tracer as a recorder.
func (a *specAgent) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
	if a.traceOn {
		a.cur.tel = append(a.cur.tel, telEvent{
			at: at, str: kind, longLen: longLen, shortLen: shortLen, workloads: workloads,
		})
		a.cur.entries = append(a.cur.entries, specEvent{kind: evSetOp, tel: int32(len(a.cur.tel) - 1)})
	}
}

// CacheAccess implements telemetry.Tracer; cache events are regenerated
// by the live port during commit replay, so nothing is recorded here.
func (a *specAgent) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
}

// DRAMBurst implements telemetry.Tracer; DRAM events are regenerated by
// the live DRAM model during commit replay.
func (a *specAgent) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {}

// commitItem is one entry of the commit priority queue: a speculative
// block, or (blk == nil) a serial re-execution continuation of a PE whose
// speculation failed validation.
type commitItem struct {
	start mem.Cycles
	pe    int
	seq   int
	blk   *specBlock
}

// commitHeap is a concrete-typed binary min-heap in (start, pe, seq)
// order. It deliberately does not implement container/heap: that
// interface boxes every popped item into an interface{}, and the commit
// phase pops one item per committed block — the single largest
// allocation source of the parallel path before this replacement.
type commitHeap []commitItem

func (h commitHeap) less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	if h[i].pe != h[j].pe {
		return h[i].pe < h[j].pe
	}
	return h[i].seq < h[j].seq
}

// init establishes heap order over an arbitrarily filled slice.
func (h commitHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// push appends it and sifts it up. Zero-allocation once the backing
// array has grown to the epoch's block count (retained across epochs).
func (h *commitHeap) push(it commitItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum item.
func (h *commitHeap) pop() commitItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = commitItem{} // drop the *specBlock reference for GC
	*h = s[:n]
	(*h).down(0)
	return top
}

// down restores heap order below index i.
func (h commitHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// parEngine is the bounded-lag epoch engine's run state.
type parEngine struct {
	ctx   context.Context
	pes   []SpecPE
	ports []*noc.Port
	hier  *mem.Hierarchy
	cfg   ParallelConfig

	agents    []*specAgent
	checkView *mem.SpecMem
	checks    []*noc.SpecPort
	real      []telemetry.Tracer
	onSpec    []bool
	alive     []bool

	// fastCommit merges validation and application into one walk: blocks
	// validate against an accumulating view whose state then bulk-flushes
	// into the base, instead of re-walking every access through the live
	// port. Only sound when nothing observes the live access path — no PE
	// tracers, no port observers, no DRAM observer — since a flush emits
	// no per-access events.
	fastCommit bool
	// viewDirty marks the commit view stale against the live base (a
	// serial continuation or the epoch boundary mutated live state).
	viewDirty bool

	// Commit bookkeeping: a PE's speculative view was frozen at epoch
	// start, so a block may skip validation only while the live state is
	// still base-plus-its-own-replayed-blocks — i.e. while every commit
	// this epoch so far belongs to that one PE (its own commits cannot
	// invalidate its own later speculation: the overlay already contains
	// them). firstCommitter is the sole PE to have committed this epoch
	// (-1: none yet); mixed flips once a second PE commits, after which
	// every block validates.
	firstCommitter int
	mixed          bool

	makespan  mem.Cycles
	steps     int64
	conflicts int64

	epochEnd mem.Cycles

	// Per-epoch scratch, reused across epochs.
	ordered     []int
	h           commitHeap
	invalidated []bool

	// inline dispatches speculative steps on the coordinator goroutine
	// when the effective worker count is 1: the channel round-trip and
	// scheduler handoff would buy no concurrency, only latency.
	inline bool
	jobs   chan int
	wg     sync.WaitGroup

	// errMu guards firstErr, the first panic recovered on a speculative
	// worker goroutine; the coordinator observes it after the epoch
	// barrier and aborts the run.
	errMu    sync.Mutex
	firstErr error
	// curPE is the PE whose block or serial continuation the commit
	// phase is currently executing, for coordinator-side panic
	// attribution (simerr.NoPE outside the commit phase).
	curPE int
}

// RunParallel drives the PEs with the bounded-lag epoch engine and
// returns the makespan. Determinism contract:
//
//   - Results (makespan, counts, cache/DRAM state and statistics, and
//     the telemetry event stream) depend only on cfg.Window, never on
//     cfg.Workers or host scheduling.
//   - With Window=1 the committed schedule is the serial event loop's
//     (cycle, PE-id) schedule, so every Result field matches Run exactly
//     whenever each PE step advances its local clock (true for any
//     configuration with a positive hit, hop, or task-overhead latency).
//   - Embedding counts are latency-independent, hence bit-identical to
//     the serial loop at every window.
//
// ports[i] must be PE i's live connection to hier.Shared.
func RunParallel(pes []SpecPE, hier *mem.Hierarchy, ports []*noc.Port, cfg ParallelConfig) (mem.Cycles, error) {
	return RunParallelWithProgress(pes, hier, ports, cfg, 0, nil)
}

// RunParallelWithProgress is RunParallel with a periodic observer: fn is
// invoked at epoch barriers, at least every `every` committed scheduling
// quanta (every <= 0 or fn == nil disables it). Now never regresses
// between calls.
func RunParallelWithProgress(pes []SpecPE, hier *mem.Hierarchy, ports []*noc.Port, cfg ParallelConfig, every int64, fn func(Progress)) (mem.Cycles, error) {
	return RunParallelCtxWithProgress(context.Background(), pes, hier, ports, cfg, every, fn)
}

// RunParallelCtx is RunParallel with cancellation and panic recovery:
// the engine checks ctx at every epoch barrier, so a fired context stops
// the run within one epoch window. The returned makespan is then the
// partially simulated horizon alongside a *simerr.SimError wrapping
// ctx.Err(); everything committed before the barrier (counts, cache and
// DRAM state, telemetry) remains consistent. A panic on any engine
// goroutine — speculative worker or commit coordinator — likewise
// returns as a *SimError instead of crashing the host process.
func RunParallelCtx(ctx context.Context, pes []SpecPE, hier *mem.Hierarchy, ports []*noc.Port, cfg ParallelConfig) (mem.Cycles, error) {
	return RunParallelCtxWithProgress(ctx, pes, hier, ports, cfg, 0, nil)
}

// RunParallelCtxWithProgress is RunParallelCtx with the periodic
// observer of RunParallelWithProgress.
func RunParallelCtxWithProgress(ctx context.Context, pes []SpecPE, hier *mem.Hierarchy, ports []*noc.Port, cfg ParallelConfig, every int64, fn func(Progress)) (mem.Cycles, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(pes) != len(ports) {
		return 0, fmt.Errorf("accel: RunParallel needs one port per PE, got %d PEs and %d ports", len(pes), len(ports))
	}
	if hier == nil {
		return 0, fmt.Errorf("accel: RunParallel needs the shared memory hierarchy")
	}
	if len(pes) == 0 {
		return 0, nil
	}

	e := &parEngine{
		ctx:       ctx,
		pes:       pes,
		ports:     ports,
		hier:      hier,
		cfg:       cfg,
		curPE:     simerr.NoPE,
		agents:    make([]*specAgent, len(pes)),
		checkView: hier.Speculate(),
		checks:    make([]*noc.SpecPort, len(pes)),
		real:      make([]telemetry.Tracer, len(pes)),
		onSpec:    make([]bool, len(pes)),
		alive:     make([]bool, len(pes)),
	}
	fast := !hier.DRAM.Observed()
	for i, pe := range pes {
		view := hier.Speculate()
		e.agents[i] = &specAgent{peID: i, view: view, spec: ports[i].Speculative(view)}
		e.checks[i] = ports[i].Speculative(e.checkView)
		// Capture the PE's real tracer without disturbing it.
		r := pe.SwapTracer(nil)
		pe.SwapTracer(r)
		e.real[i] = r
		e.agents[i].traceOn = r != nil
		e.alive[i] = true
		if r != nil || ports[i].Obs != nil {
			fast = false
		}
	}
	e.fastCommit = fast
	if fast {
		// The commit view is the only writer while it runs, so it can
		// also keep the base walk memo warm, exactly as live replay did.
		e.checkView.RecordMemos(true)
	}

	workers := cfg.Workers
	if workers > len(pes) {
		workers = len(pes)
	}
	if workers <= 1 {
		e.inline = true
	} else {
		e.jobs = make(chan int, len(pes))
		for w := 0; w < workers; w++ {
			go func() {
				for i := range e.jobs {
					e.stepSpecSafe(i)
					e.wg.Done()
				}
			}()
		}
		defer close(e.jobs)
	}

	err := e.runSafe(every, fn)

	// Leave every PE on its live port and tracer so post-run inspection
	// and later serial stepping see the chip exactly as Run would.
	for i := range pes {
		e.ensureLive(i)
	}
	return e.horizon(), err
}

// horizon returns the simulated makespan reached so far: the maximum of
// the retired PEs' makespan and every live PE's local clock. At normal
// completion all PEs are retired and it equals the makespan.
func (e *parEngine) horizon() mem.Cycles {
	out := e.makespan
	for i, pe := range e.pes {
		if e.alive[i] {
			if t := pe.Time(); t > out {
				out = t
			}
		}
	}
	return out
}

// runSafe executes the epoch loop with coordinator-side panic recovery:
// a panic in the commit phase (a PE step, a tracer callback, or a
// violated engine invariant) surfaces as a *simerr.SimError attributed
// to the PE being committed instead of crashing the host.
func (e *parEngine) runSafe(every int64, fn func(Progress)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			root := int64(simerr.NoRoot)
			if e.curPE != simerr.NoPE {
				root = currentRoot(e.pes[e.curPE])
			}
			err = simerr.FromPanic("parallel", e.curPE, int64(e.horizon()), root, r)
		}
	}()
	return e.run(every, fn)
}

// stepSpecSafe runs one PE's speculative phase, recovering a panic into
// the engine's first-error slot: the worker pool must never crash the
// process, and the coordinator aborts the run after the epoch barrier.
func (e *parEngine) stepSpecSafe(i int) {
	defer func() {
		if r := recover(); r != nil {
			se := simerr.FromPanic("parallel", i, int64(e.pes[i].Time()), currentRoot(e.pes[i]), r)
			e.errMu.Lock()
			if e.firstErr == nil {
				e.firstErr = se
			}
			e.errMu.Unlock()
		}
	}()
	e.stepSpec(i)
}

// specErr returns the first speculative-phase failure, if any. Called by
// the coordinator after wg.Wait(), so no worker is concurrently writing.
func (e *parEngine) specErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// ensureSpec installs PE i's recording agent as its port (and, when the
// run is traced, as its tracer).
func (e *parEngine) ensureSpec(i int) {
	if e.onSpec[i] {
		return
	}
	e.onSpec[i] = true
	e.pes[i].SwapPort(e.agents[i])
	if e.real[i] != nil {
		e.pes[i].SwapTracer(e.agents[i])
	}
}

// ensureLive restores PE i's live port and tracer.
func (e *parEngine) ensureLive(i int) {
	if !e.onSpec[i] {
		return
	}
	e.onSpec[i] = false
	e.pes[i].SwapPort(e.ports[i])
	if e.real[i] != nil {
		e.pes[i].SwapTracer(e.real[i])
	}
}

// run executes epochs until every PE is permanently idle, the context
// fires (checked once per epoch barrier, so cancellation latency is
// bounded by one epoch window), or an engine goroutine fails.
func (e *parEngine) run(every int64, fn func(Progress)) error {
	selected := make([]int, 0, len(e.pes))
	e.invalidated = make([]bool, len(e.pes))
	var lastFired int64
	for {
		if cerr := e.ctx.Err(); cerr != nil {
			return simerr.Cancelled("parallel", int64(e.horizon()), cerr)
		}
		// Epoch start: T = min local clock over live PEs.
		var t mem.Cycles
		active := 0
		for i, pe := range e.pes {
			if !e.alive[i] {
				continue
			}
			if active == 0 || pe.Time() < t {
				t = pe.Time()
			}
			active++
		}
		if active == 0 {
			if every > 0 && fn != nil {
				fn(Progress{Steps: e.steps, Now: e.makespan, Active: 0})
			}
			return nil
		}
		e.epochEnd = t + e.cfg.Window
		selected = selected[:0]
		for i, pe := range e.pes {
			if e.alive[i] && pe.Time() < e.epochEnd {
				selected = append(selected, i)
			}
		}

		if len(selected) == 1 {
			// Sole PE in the window: nothing can interleave with it, so
			// step it directly against the live state — zero speculation
			// overhead, and root handouts keep their scheduler order.
			if err := e.runSolo(selected[0]); err != nil {
				return err
			}
		} else if err := e.runEpoch(selected); err != nil {
			return err
		}

		if every > 0 && fn != nil && e.steps-lastFired >= every {
			lastFired = e.steps
			var now mem.Cycles
			act := 0
			for i, pe := range e.pes {
				if e.alive[i] {
					if act == 0 || pe.Time() < now {
						now = pe.Time()
					}
					act++
				}
			}
			if act == 0 {
				now = e.makespan
			}
			fn(Progress{Steps: e.steps, Now: now, Active: act})
		}
	}
}

// runSolo steps the only in-window PE serially until it leaves the
// window or dies.
func (e *parEngine) runSolo(i int) error {
	e.ensureLive(i)
	pe := e.pes[i]
	e.curPE = i
	defer func() { e.curPE = simerr.NoPE }()
	for n := 0; n < maxStepsPerEpoch; n++ {
		if pe.Time() >= e.epochEnd {
			return nil
		}
		alive, err := safeStep(pe, i, "parallel")
		if err != nil {
			return err
		}
		e.steps++
		if !alive {
			e.retire(i)
			return nil
		}
	}
	return nil
}

// retire marks PE i permanently idle and folds its finishing time into
// the makespan.
func (e *parEngine) retire(i int) {
	e.alive[i] = false
	if t := e.pes[i].Time(); t > e.makespan {
		e.makespan = t
	}
}

// runEpoch executes one bounded-lag epoch over the selected PEs:
// root reservation, concurrent speculative stepping, then the
// deterministic commit.
func (e *parEngine) runEpoch(selected []int) error {
	// Reserve root handouts in (local clock, PE-id) order — the order
	// the serial loop would pop these PEs in — so the shared scheduler
	// is never touched during the concurrent phase.
	ordered := append(e.ordered[:0], selected...)
	e.ordered = ordered
	for a := 1; a < len(ordered); a++ {
		for b := a; b > 0; b-- {
			ti, tj := e.pes[ordered[b-1]].Time(), e.pes[ordered[b]].Time()
			if ti < tj || (ti == tj && ordered[b-1] < ordered[b]) {
				break
			}
			ordered[b-1], ordered[b] = ordered[b], ordered[b-1]
		}
	}
	for _, i := range ordered {
		if e.pes[i].WillTakeRoot() {
			e.pes[i].StageRoot()
		}
	}

	// Speculative phase: every selected PE steps concurrently against
	// its private view of the epoch-start memory state.
	for _, i := range selected {
		e.ensureSpec(i)
	}
	if e.inline {
		for _, i := range selected {
			e.stepSpecSafe(i)
		}
	} else {
		e.wg.Add(len(selected))
		for _, i := range selected {
			e.jobs <- i
		}
		e.wg.Wait()
	}
	if err := e.specErr(); err != nil {
		// A speculative step panicked: nothing from this epoch has been
		// committed, so the live state is exactly the last barrier's.
		return err
	}

	// Commit phase: validate and apply blocks in (cycle, PE-id, seq)
	// order; failed validations rewind the PE and re-execute serially
	// against the live state, interleaved into the same order.
	h := e.h[:0]
	for _, i := range selected {
		e.invalidated[i] = false
		for _, blk := range e.agents[i].blocks {
			h = append(h, commitItem{start: blk.start, pe: blk.pe, seq: blk.seq, blk: blk})
		}
	}
	h.init()
	invalidated := e.invalidated
	contSeq := maxStepsPerEpoch
	e.firstCommitter, e.mixed = -1, false
	e.viewDirty = true // live state may have moved since the last commit phase
	for len(h) > 0 {
		it := h.pop()
		i := it.pe
		e.curPE = i
		if it.blk != nil {
			blk := it.blk
			if invalidated[i] {
				e.recycle(blk)
				continue
			}
			var ok bool
			if e.fastCommit {
				ok = e.validateFlush(blk)
			} else {
				skipOK := !e.mixed && (e.firstCommitter == -1 || e.firstCommitter == i)
				ok = skipOK || e.validate(blk)
				if ok {
					e.apply(blk)
				}
			}
			if ok {
				e.committed(i)
				e.steps++
				if !blk.alive {
					e.retire(i)
				}
			} else {
				e.conflicts++
				invalidated[i] = true
				e.pes[i].SpecRewind(blk.snap)
				e.ensureLive(i)
				contSeq++
				h.push(commitItem{start: e.pes[i].Time(), pe: i, seq: contSeq})
			}
			e.recycle(blk)
			continue
		}
		// Serial continuation of a rewound PE.
		pe := e.pes[i]
		if pe.Time() >= e.epochEnd {
			continue // parked until the next epoch
		}
		if pe.WillTakeRoot() && !pe.StagedRoot() {
			continue // root handouts happen at epoch barriers
		}
		alive, err := safeStep(pe, i, "parallel")
		if err != nil {
			e.curPE = simerr.NoPE
			return err
		}
		e.viewDirty = true // the step walked the live port directly
		e.steps++
		e.committed(i)
		if !alive {
			e.retire(i)
			continue
		}
		contSeq++
		h.push(commitItem{start: pe.Time(), pe: i, seq: contSeq})
	}
	e.curPE = simerr.NoPE
	e.h = h // keep the (drained) heap's grown backing for the next epoch
	return nil
}

// committed records that PE i mutated the live state during the current
// epoch's commit phase, for the skip-validation bookkeeping.
func (e *parEngine) committed(i int) {
	if e.firstCommitter == -1 {
		e.firstCommitter = i
	} else if e.firstCommitter != i {
		e.mixed = true
	}
}

// recycle returns a committed or discarded block to its agent's pool.
func (e *parEngine) recycle(blk *specBlock) {
	blk.snap = 0
	a := e.agents[blk.pe]
	a.free = append(a.free, blk)
}

// stepSpec runs PE i's speculative phase for the current epoch: step
// until the PE's clock leaves the window, it needs an unstaged root, or
// it dies. Runs on a worker goroutine; touches only PE-i state and PE
// i's private view over the frozen epoch-start memory.
func (e *parEngine) stepSpec(i int) {
	a := e.agents[i]
	a.view.Reset()
	a.blocks = a.blocks[:0]
	pe := e.pes[i]
	// The previous epoch's journal can no longer be rewound to; retire it
	// before recording this epoch's steps.
	pe.SpecFlush()
	pe.SpecActivate(true)
	for seq := 0; seq < maxStepsPerEpoch; seq++ {
		if seq > 0 {
			if pe.Time() >= e.epochEnd {
				break
			}
			if pe.WillTakeRoot() && !pe.StagedRoot() {
				break
			}
		}
		blk := a.takeBlock()
		blk.pe = i
		blk.seq = seq
		blk.start = pe.Time()
		blk.snap = pe.SpecSave()
		a.cur = blk
		blk.alive = pe.Step()
		a.blocks = append(a.blocks, blk)
		if !blk.alive {
			break
		}
	}
	// Stop journaling: commit-phase re-execution after a rewind must run
	// at live-stepping cost. The journal itself stays until the next
	// flush, so SpecRewind keeps working during commit.
	pe.SpecActivate(false)
	a.cur = nil
}

// validate replays a block's shared-memory operations against a fresh
// speculative view over the *current* live state and reports whether
// every completion, miss count, and probe answer matches what the
// speculative phase observed. It never mutates live state, so a failed
// block can simply be re-executed.
func (e *parEngine) validate(blk *specBlock) bool {
	e.checkView.Reset()
	cp := e.checks[blk.pe]
	for k := range blk.entries {
		en := &blk.entries[k]
		switch en.kind {
		case evAccess:
			done, _, misses := cp.Access(en.at, en.addr, en.bytes)
			if done != en.done || misses != en.misses {
				return false
			}
		case evProbe:
			if cp.Probe(en.addr, en.bytes) != en.ok {
				return false
			}
		}
	}
	return true
}

// validateFlush is the merged validate+apply of the fast commit path:
// the block's operations walk an accumulating view over the live state
// exactly once, and if every completion, miss count, and probe answer
// matches the speculation, the view's state bulk-flushes into the base —
// bit-identical to live replay, at one walk instead of two. On mismatch
// the view resets, leaving the live state untouched, and the caller
// rewinds the PE as usual. Untraced runs only (see fastCommit).
func (e *parEngine) validateFlush(blk *specBlock) bool {
	switch e.tryDirectCommit(blk) {
	case directCommitted:
		e.viewDirty = true // the stamps advanced the live LRU clock
		return true
	case directFailed:
		return false
	}
	if e.viewDirty {
		e.checkView.Reset()
		e.viewDirty = false
	}
	cp := e.checks[blk.pe]
	for k := range blk.entries {
		en := &blk.entries[k]
		switch en.kind {
		case evAccess:
			done, _, misses := cp.Access(en.at, en.addr, en.bytes)
			if done != en.done || misses != en.misses {
				e.checkView.Reset() // discard the failed block's partial walk
				return false
			}
		case evProbe:
			if cp.Probe(en.addr, en.bytes) != en.ok {
				e.checkView.Reset()
				return false
			}
		}
	}
	e.checkView.FlushToBase()
	return true
}

// tryDirectCommit outcomes.
const (
	directBail      = iota // undecided: the general walk path must decide
	directCommitted        // validated and applied straight to the base
	directFailed           // definitively refuted: a probe answer diverged
)

// tryDirectCommit handles the dominant commit case — a block whose every
// access was all-hit under speculation — without touching the commit
// view. If the live walk memo proves each accessed range still fully
// resident, the block's completions are forced (hit latency plus NoC
// trip, independent of LRU and DRAM state), so validation reduces to
// read-only residency proofs plus probe-answer checks, and application
// to replaying the all-hit LRU bookkeeping on the base. Nothing mutates
// until the whole block is proven, so a refuted or unprovable block
// leaves the live state untouched.
func (e *parEngine) tryDirectCommit(blk *specBlock) int {
	c := e.hier.Shared
	for k := range blk.entries {
		en := &blk.entries[k]
		switch en.kind {
		case evAccess:
			if en.bytes <= 0 {
				continue
			}
			if en.misses != 0 || !c.ProvenResident(en.addr, en.bytes) {
				return directBail
			}
		case evProbe:
			// All accesses in a committable block are hits, so residency
			// is static across the block and probes check against the
			// base in any order.
			if c.Probe(en.addr, en.bytes) != en.ok {
				return directFailed
			}
		}
	}
	for k := range blk.entries {
		en := &blk.entries[k]
		if en.kind == evAccess && en.bytes > 0 {
			c.StampHitWalk(en.addr, en.bytes)
		}
	}
	return directCommitted
}

// apply commits a validated block: shared-memory operations replay
// through the PE's live port — mutating cache/DRAM state and statistics
// and re-emitting cache/DRAM telemetry exactly as the serial loop would
// — and recorded PE events flush to the real tracer in program order.
func (e *parEngine) apply(blk *specBlock) {
	port := e.ports[blk.pe]
	trc := e.real[blk.pe]
	for k := range blk.entries {
		en := &blk.entries[k]
		switch en.kind {
		case evAccess:
			done := port.Access(en.at, en.addr, en.bytes)
			if done != en.done {
				panic("accel: parallel engine invariant violated: validated access resolved differently at commit")
			}
		case evProbe:
			// Probes have no side effects; nothing to replay.
		case evGroupBegin:
			t := &blk.tel[en.tel]
			trc.TaskGroupBegin(blk.pe, t.engine, t.at, t.size)
		case evGroupEnd:
			trc.TaskGroupEnd(blk.pe, blk.tel[en.tel].at)
		case evSetOp:
			t := &blk.tel[en.tel]
			trc.SetOpIssue(blk.pe, t.at, t.str, t.longLen, t.shortLen, t.workloads)
		}
	}
}

// Conflicts returns the number of speculative blocks that failed
// commit-time validation during the last run (engine diagnostics).
func (e *parEngine) Conflicts() int64 { return e.conflicts }
