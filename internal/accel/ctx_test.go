package accel

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fingers/internal/mem"
	"fingers/internal/simerr"
)

// cancellingPE is a fakePE that fires its context after a fixed number
// of its own steps, so the test can measure how many more steps the
// engine executes before honouring the cancellation.
type cancellingPE struct {
	fakePE
	cancelAt int
	cancel   context.CancelFunc
	steps    int
}

func (c *cancellingPE) Step() bool {
	c.steps++
	if c.steps == c.cancelAt {
		c.cancel()
	}
	return c.fakePE.Step()
}

// panicPE panics on its Nth step and reports a current root.
type panicPE struct {
	fakePE
	panicAt int
	steps   int
	root    uint32
}

func (p *panicPE) Step() bool {
	p.steps++
	if p.steps == p.panicAt {
		panic("injected PE fault")
	}
	return p.fakePE.Step()
}

func (p *panicPE) CurrentRoot() (uint32, bool) { return p.root, true }

func TestRunCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pes := []PE{&fakePE{step: 10, left: 100}}
	got, err := RunCtx(ctx, pes)
	if err == nil {
		t.Fatal("expected an error from a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("error %T is not a *simerr.SimError", err)
	}
	if se.Engine != "serial" || !se.IsCancellation() {
		t.Errorf("SimError = %+v, want serial cancellation", se)
	}
	if got != 0 {
		t.Errorf("horizon before any step = %d, want 0", got)
	}
}

func TestRunCtxCancelWithinQuantum(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pe := &cancellingPE{
		fakePE:   fakePE{step: 3, left: 1 << 20},
		cancelAt: 100,
		cancel:   cancel,
	}
	got, err := RunCtx(ctx, []PE{pe})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	extra := pe.steps - pe.cancelAt
	if extra < 0 || extra > CancelCheckQuantum {
		t.Errorf("engine ran %d steps past cancellation, want <= %d", extra, CancelCheckQuantum)
	}
	// The partial horizon reflects the simulated time actually reached.
	if want := mem.Cycles(pe.steps) * 3; got != want {
		t.Errorf("partial horizon = %d, want %d", got, want)
	}
}

func TestRunCtxPanicBecomesSimError(t *testing.T) {
	pes := []PE{
		&fakePE{step: 5, left: 10},
		&panicPE{fakePE: fakePE{step: 5, left: 100}, panicAt: 7, root: 42},
	}
	_, err := RunCtx(context.Background(), pes)
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("error %T is not a *simerr.SimError", err)
	}
	if se.Engine != "serial" {
		t.Errorf("Engine = %q, want serial", se.Engine)
	}
	if se.PE != 1 {
		t.Errorf("PE = %d, want 1", se.PE)
	}
	if se.Root != 42 {
		t.Errorf("Root = %d, want 42", se.Root)
	}
	if se.IsCancellation() {
		t.Error("a panic must not be classified as cancellation")
	}
	if len(se.Stack) == 0 {
		t.Error("panic SimError is missing its stack capture")
	}
	if !strings.Contains(err.Error(), "injected PE fault") {
		t.Errorf("error %q does not mention the panic value", err)
	}
}

// TestRunCtxMatchesRun: an uncancelled RunCtx is bit-identical to the
// legacy Run — same makespan, no error.
func TestRunCtxMatchesRun(t *testing.T) {
	build := func() []PE {
		return []PE{
			&fakePE{step: 10, left: 3},
			&fakePE{step: 7, left: 10},
			&fakePE{step: 13, left: 5},
		}
	}
	want := Run(build())
	got, err := RunCtx(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunCtx = %d, Run = %d", got, want)
	}
}

// TestRunWithProgressPanicsOnPEFault: the legacy ctx-less entry keeps
// its crash contract — a PE fault propagates as a panicking *SimError.
func TestRunWithProgressPanicsOnPEFault(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected Run to panic on a PE fault")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T is not an error", r)
		}
		if _, ok := simerr.As(err); !ok {
			t.Errorf("panic value %v is not a *simerr.SimError", err)
		}
	}()
	Run([]PE{&panicPE{fakePE: fakePE{step: 5, left: 10}, panicAt: 2}})
}
