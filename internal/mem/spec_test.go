package mem

import (
	"math/rand"
	"testing"
)

// warm drives an identical access pattern into a hierarchy so two
// hierarchies can be brought to the same non-trivial state.
func warm(h *Hierarchy, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	now := Cycles(0)
	for i := 0; i < 500; i++ {
		addr := int64(rng.Intn(1 << 16))
		bytes := int64(1 + rng.Intn(512))
		now = h.Shared.Access(now, addr, bytes)
	}
}

func smallHierarchy() *Hierarchy {
	dram := NewDRAM(DRAMConfig{Channels: 2, LatencyCycles: 50, BytesPerCycle: 16})
	cache := NewCache(CacheConfig{CapacityBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 8}, dram)
	return &Hierarchy{DRAM: dram, Shared: cache}
}

// TestSpecMemMatchesLive replays one random access/probe sequence both
// through a speculative view over a frozen base and directly on an
// identically warmed live hierarchy: completions, line/miss geometry and
// probe answers must agree exactly, and the frozen base must be untouched.
func TestSpecMemMatchesLive(t *testing.T) {
	frozen := smallHierarchy()
	live := smallHierarchy()
	warm(frozen, 42)
	warm(live, 42)

	baseCache := frozen.Shared.Stats()
	baseDRAM := frozen.DRAM.Stats()

	view := frozen.Speculate()
	rng := rand.New(rand.NewSource(7))
	now := Cycles(1000)
	for i := 0; i < 2000; i++ {
		addr := int64(rng.Intn(1 << 16))
		bytes := int64(1 + rng.Intn(300))
		if rng.Intn(4) == 0 {
			sp := view.Probe(addr, bytes)
			lp := live.Shared.Probe(addr, bytes)
			if sp != lp {
				t.Fatalf("step %d: Probe(%d,%d) spec=%v live=%v", i, addr, bytes, sp, lp)
			}
			continue
		}
		sd, _, _ := view.Access(now, addr, bytes)
		ld := live.Shared.Access(now, addr, bytes)
		if sd != ld {
			t.Fatalf("step %d: Access(%d,%d,%d) spec done=%d live done=%d", i, now, addr, bytes, sd, ld)
		}
		now = sd
	}
	if view.Stats() != live.Shared.Stats().sub(baseCache) {
		t.Fatalf("view cache stats %+v != live delta %+v", view.Stats(), live.Shared.Stats().sub(baseCache))
	}
	if view.DRAMStats() != live.DRAM.Stats().sub(baseDRAM) {
		t.Fatalf("view dram stats %+v != live delta %+v", view.DRAMStats(), live.DRAM.Stats().sub(baseDRAM))
	}
	if frozen.Shared.Stats() != baseCache || frozen.DRAM.Stats() != baseDRAM {
		t.Fatal("speculative view mutated the base hierarchy")
	}
}

func (s CacheStats) sub(o CacheStats) CacheStats {
	return CacheStats{LineAccesses: s.LineAccesses - o.LineAccesses, LineMisses: s.LineMisses - o.LineMisses}
}

func (s DRAMStats) sub(o DRAMStats) DRAMStats {
	return DRAMStats{Accesses: s.Accesses - o.Accesses, BytesMoved: s.BytesMoved - o.BytesMoved}
}

// TestSpecMemReset re-syncs a stale view after base mutations and checks
// it matches the live state again.
func TestSpecMemReset(t *testing.T) {
	h := smallHierarchy()
	warm(h, 3)
	view := h.Speculate()
	view.Access(0, 0, 4096) // diverge the overlay
	// Mutate the base behind the view's back, then re-sync.
	h.Shared.Access(0, 1<<14, 4096)
	view.Reset()

	twin := smallHierarchy()
	warm(twin, 3)
	twin.Shared.Access(0, 1<<14, 4096)

	rng := rand.New(rand.NewSource(9))
	now := Cycles(500)
	for i := 0; i < 500; i++ {
		addr := int64(rng.Intn(1 << 15))
		bytes := int64(1 + rng.Intn(200))
		sd, _, _ := view.Access(now, addr, bytes)
		ld := twin.Shared.Access(now, addr, bytes)
		if sd != ld {
			t.Fatalf("step %d after Reset: spec done=%d live done=%d", i, sd, ld)
		}
		now = sd
	}
}
