package mem

import (
	"math/rand"
	"testing"
)

// refAccess replays the pre-memo Access path: a plain walkAccess with no
// recording and no fast path. Driving a second cache through it gives a
// bit-exact reference for the memoized implementation.
func refAccess(c *Cache, now Cycles, addr, bytes int64) Cycles {
	done, _, _ := walkAccess(c.cfg, c, now, addr, bytes)
	return done
}

// refProbe replays the pre-memo Probe path.
func refProbe(c *Cache, addr, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	first := addr / c.cfg.LineBytes
	last := (addr + bytes - 1) / c.cfg.LineBytes
	for line := first; line <= last; line++ {
		lineAddr := line * c.cfg.LineBytes
		setIdx := (lineAddr / c.cfg.LineBytes) % c.numSets
		tag := lineAddr / c.cfg.LineBytes / c.numSets
		if !resident(c.sets[setIdx], tag) {
			return false
		}
	}
	return true
}

// tinyCacheConfig is small enough that the random workloads below evict
// constantly, exercising memo invalidation by way reuse.
func tinyCacheConfig() CacheConfig {
	return CacheConfig{CapacityBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: 16}
}

func sameCacheState(t *testing.T, got, want *Cache) {
	t.Helper()
	if got.clock != want.clock {
		t.Fatalf("clock diverged: got %d want %d", got.clock, want.clock)
	}
	if got.stats != want.stats {
		t.Fatalf("stats diverged: got %+v want %+v", got.stats, want.stats)
	}
	for i := range want.sets {
		for j := range want.sets[i] {
			if got.sets[i][j] != want.sets[i][j] {
				t.Fatalf("set %d way %d diverged: got %+v want %+v",
					i, j, got.sets[i][j], want.sets[i][j])
			}
		}
	}
}

// TestMemoAccessEquivalence drives a memoized cache and a reference cache
// through the same randomized access/probe sequence — a small working set
// for memo hits, a moving front for evictions — and requires identical
// completion cycles, probe answers, counters, and final line state.
func TestMemoAccessEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dramA := NewDRAM(DefaultDRAMConfig())
	dramB := NewDRAM(DefaultDRAMConfig())
	memoized := NewCache(tinyCacheConfig(), dramA)
	reference := NewCache(tinyCacheConfig(), dramB)

	// Ranges overlap and repeat: ~16 hot neighbor lists plus a streaming
	// front that keeps evicting them.
	hot := make([][2]int64, 16)
	for i := range hot {
		hot[i] = [2]int64{int64(rng.Intn(64)) * 32, int64(1 + rng.Intn(300))}
	}
	front := int64(0)
	now := Cycles(0)
	for step := 0; step < 20000; step++ {
		var addr, bytes int64
		switch rng.Intn(4) {
		case 0: // streaming front
			addr, bytes = front, int64(64+rng.Intn(256))
			front += bytes
		default:
			h := hot[rng.Intn(len(hot))]
			addr, bytes = h[0], h[1]
		}
		if rng.Intn(5) == 0 {
			pg, pw := memoized.Probe(addr, bytes), refProbe(reference, addr, bytes)
			if pg != pw {
				t.Fatalf("step %d: Probe(%d,%d) = %v, reference %v", step, addr, bytes, pg, pw)
			}
			continue
		}
		dg := memoized.Access(now, addr, bytes)
		dw := refAccess(reference, now, addr, bytes)
		if dg != dw {
			t.Fatalf("step %d: Access(%d,%d,%d) = %d, reference %d", step, now, addr, bytes, dg, dw)
		}
		now += Cycles(rng.Intn(40))
	}
	sameCacheState(t, memoized, reference)
	if dramA.Stats() != dramB.Stats() {
		t.Fatalf("DRAM stats diverged: got %+v want %+v", dramA.Stats(), dramB.Stats())
	}
}

// TestMemoZeroAndEdgeBytes pins the degenerate ranges.
func TestMemoZeroAndEdgeBytes(t *testing.T) {
	c := NewCache(tinyCacheConfig(), NewDRAM(DefaultDRAMConfig()))
	if got := c.Access(0, 128, 0); got != c.cfg.HitLatency {
		t.Fatalf("zero-byte access: got %d want %d", got, c.cfg.HitLatency)
	}
	if !c.Probe(128, 0) {
		t.Fatal("zero-byte probe should be resident")
	}
	if c.stats.LineAccesses != 0 {
		t.Fatalf("zero-byte access counted lines: %+v", c.stats)
	}
	// One-byte range at a line boundary: exactly one line, twice — the
	// second access must take the memo path yet keep identical counters to
	// a reference.
	ref := NewCache(tinyCacheConfig(), NewDRAM(DefaultDRAMConfig()))
	for i := 0; i < 2; i++ {
		if g, w := c.Access(0, 64, 1), refAccess(ref, 0, 64, 1); g != w {
			t.Fatalf("access %d: got %d want %d", i, g, w)
		}
	}
	sameCacheState(t, c, ref)
}

// TestMemoSurvivesReset checks Reset drops stale geometry: entries from
// before a Reset must not report hits on the emptied cache.
func TestMemoSurvivesReset(t *testing.T) {
	dram := NewDRAM(DefaultDRAMConfig())
	c := NewCache(tinyCacheConfig(), dram)
	c.Access(0, 0, 256)
	if !c.Probe(0, 256) {
		t.Fatal("range should be resident after access")
	}
	c.Reset()
	dram.Reset()
	if c.Probe(0, 256) {
		t.Fatal("range resident after Reset")
	}
	ref := NewCache(tinyCacheConfig(), NewDRAM(DefaultDRAMConfig()))
	if g, w := c.Access(0, 0, 256), refAccess(ref, 0, 0, 256); g != w {
		t.Fatalf("post-Reset access: got %d want %d", g, w)
	}
}

// TestSpecMemMemoEquivalence compares a speculative view over a
// memo-warmed base against a view over an identically-warmed base with an
// empty memo table: every access and probe must resolve identically, and
// so must the views' counters.
func TestSpecMemMemoEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warm := make([][2]int64, 400)
	for i := range warm {
		warm[i] = [2]int64{int64(rng.Intn(96)) * 32, int64(1 + rng.Intn(300))}
	}

	build := func(memoized bool) *Hierarchy {
		h := &Hierarchy{DRAM: NewDRAM(DefaultDRAMConfig())}
		h.Shared = NewCache(tinyCacheConfig(), h.DRAM)
		now := Cycles(0)
		for _, w := range warm {
			if memoized {
				h.Shared.Access(now, w[0], w[1])
			} else {
				refAccess(h.Shared, now, w[0], w[1])
			}
			now += 13
		}
		return h
	}
	hm, hr := build(true), build(false)
	sameCacheState(t, hm.Shared, hr.Shared)
	warmed := false
	for i := range hm.Shared.memo {
		if hm.Shared.memo[i].used {
			warmed = true
			break
		}
	}
	if !warmed {
		t.Fatal("warmup left the memo table empty")
	}

	sm, sr := hm.Speculate(), hr.Speculate()
	now := Cycles(0)
	for step := 0; step < 8000; step++ {
		w := warm[rng.Intn(len(warm))]
		addr, bytes := w[0], w[1]
		if rng.Intn(6) == 0 { // occasional cold range to force overlay fills
			addr, bytes = int64(8192+rng.Intn(4096)), int64(1+rng.Intn(200))
		}
		if rng.Intn(5) == 0 {
			pg, pw := sm.Probe(addr, bytes), sr.Probe(addr, bytes)
			if pg != pw {
				t.Fatalf("step %d: spec Probe(%d,%d) = %v, reference %v", step, addr, bytes, pg, pw)
			}
			continue
		}
		dg, lg, mg := sm.Access(now, addr, bytes)
		dw, lw, mw := sr.Access(now, addr, bytes)
		if dg != dw || lg != lw || mg != mw {
			t.Fatalf("step %d: spec Access(%d,%d,%d) = (%d,%d,%d), reference (%d,%d,%d)",
				step, now, addr, bytes, dg, lg, mg, dw, lw, mw)
		}
		now += Cycles(rng.Intn(30))
	}
	if sm.Stats() != sr.Stats() {
		t.Fatalf("spec cache stats diverged: got %+v want %+v", sm.Stats(), sr.Stats())
	}
	if sm.DRAMStats() != sr.DRAMStats() {
		t.Fatalf("spec DRAM stats diverged: got %+v want %+v", sm.DRAMStats(), sr.DRAMStats())
	}
	if sm.clock != sr.clock {
		t.Fatalf("spec clock diverged: got %d want %d", sm.clock, sr.clock)
	}

	// Reset must recycle overlays and resync both views to equal state.
	sm.Reset()
	sr.Reset()
	if len(sm.touched) != 0 || len(sm.pool) == 0 {
		t.Fatalf("Reset did not pool overlays: %d live, %d pooled", len(sm.touched), len(sm.pool))
	}
	dg, lg, mg := sm.Access(0, warm[0][0], warm[0][1])
	dw, lw, mw := sr.Access(0, warm[0][0], warm[0][1])
	if dg != dw || lg != lw || mg != mw {
		t.Fatalf("post-Reset spec access diverged: (%d,%d,%d) vs (%d,%d,%d)", dg, lg, mg, dw, lw, mw)
	}
}
