package mem

// SpecMem is a speculative view of a Hierarchy for the parallel epoch
// engine: accesses observe the base cache/DRAM state as of the last
// Reset plus this view's own accesses, while every mutation (LRU
// updates, fills, evictions, channel occupancy) lands in a private
// copy-on-write overlay. Because the replacement and scheduling cores
// (touch, walkAccess, DRAMConfig.schedule) are shared with the live
// models, a view over an unchanged base resolves exactly the latencies
// the live hierarchy would.
//
// A SpecMem is confined to one goroutine; concurrent views over the same
// base are safe as long as the base is not mutated while they run.
type SpecMem struct {
	cache *Cache
	dram  *DRAM

	// sets overlays copied cache sets by set index; untouched sets read
	// through to the base.
	sets map[int64][]cacheLine
	// clock continues the base cache's LRU tick privately.
	clock int64
	// nextFree is a private copy of the DRAM channel occupancy.
	nextFree []Cycles

	cstats CacheStats
	dstats DRAMStats
}

// Speculate returns a new speculative view over the hierarchy's current
// state. The view stays coherent only until the base is next mutated;
// call Reset to re-sync it.
func (h *Hierarchy) Speculate() *SpecMem {
	s := &SpecMem{
		cache:    h.Shared,
		dram:     h.DRAM,
		sets:     make(map[int64][]cacheLine),
		nextFree: make([]Cycles, len(h.DRAM.nextFree)),
	}
	s.Reset()
	return s
}

// Reset discards the overlay and re-syncs the view to the base state,
// reusing the view's allocations.
func (s *SpecMem) Reset() {
	for k := range s.sets {
		delete(s.sets, k)
	}
	s.clock = s.cache.clock
	copy(s.nextFree, s.dram.nextFree)
	s.cstats = CacheStats{}
	s.dstats = DRAMStats{}
}

// set returns the overlay copy of one cache set, cloning it from the
// base on first touch.
func (s *SpecMem) set(setIdx int64) []cacheLine {
	if set, ok := s.sets[setIdx]; ok {
		return set
	}
	set := append([]cacheLine(nil), s.cache.sets[setIdx]...)
	s.sets[setIdx] = set
	return set
}

// look implements lineWalker over the overlay.
func (s *SpecMem) look(lineAddr int64) bool {
	s.clock++
	setIdx := (lineAddr / s.cache.cfg.LineBytes) % s.cache.numSets
	tag := lineAddr / s.cache.cfg.LineBytes / s.cache.numSets
	s.cstats.LineAccesses++
	if touch(s.set(setIdx), tag, s.clock) {
		return true
	}
	s.cstats.LineMisses++
	return false
}

// charge implements lineWalker over the private channel occupancy.
func (s *SpecMem) charge(now Cycles, addr, bytes int64) Cycles {
	_, done := s.dram.cfg.schedule(s.nextFree, now, addr, bytes)
	s.dstats.Accesses++
	s.dstats.BytesMoved += bytes
	return done
}

// Access reads [addr, addr+bytes) at time now through the view and
// returns the completion cycle plus the access's line and miss counts —
// the geometry commit-time validation compares against the live state.
func (s *SpecMem) Access(now Cycles, addr, bytes int64) (done Cycles, lines, misses int64) {
	return walkAccess(s.cache.cfg, s, now, addr, bytes)
}

// Probe reports residency in the view (overlay where present, base
// otherwise) without side effects, mirroring Cache.Probe.
func (s *SpecMem) Probe(addr, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	cfg := s.cache.cfg
	first := addr / cfg.LineBytes
	last := (addr + bytes - 1) / cfg.LineBytes
	for line := first; line <= last; line++ {
		lineAddr := line * cfg.LineBytes
		setIdx := (lineAddr / cfg.LineBytes) % s.cache.numSets
		tag := lineAddr / cfg.LineBytes / s.cache.numSets
		set := s.cache.sets[setIdx]
		if ov, ok := s.sets[setIdx]; ok {
			set = ov
		}
		if !resident(set, tag) {
			return false
		}
	}
	return true
}

// Stats returns the view's own line-access counters since the last Reset.
func (s *SpecMem) Stats() CacheStats { return s.cstats }

// DRAMStats returns the view's own off-chip counters since the last Reset.
func (s *SpecMem) DRAMStats() DRAMStats { return s.dstats }
