package mem

// SpecMem is a speculative view of a Hierarchy for the parallel epoch
// engine: accesses observe the base cache/DRAM state as of the last
// Reset plus this view's own accesses, while every mutation (LRU
// updates, fills, evictions, channel occupancy) lands in a private
// copy-on-write overlay. Because the replacement and scheduling cores
// (touch, walkAccess, DRAMConfig.schedule) are shared with the live
// models, a view over an unchanged base resolves exactly the latencies
// the live hierarchy would.
//
// A SpecMem is confined to one goroutine; concurrent views over the same
// base are safe as long as the base is not mutated while they run. The
// views also read (never write) the base cache's walk memo: its entries
// are validated against the view's effective sets before use, so a hint
// recorded against the live state can only accelerate, never corrupt, a
// speculative walk.
type SpecMem struct {
	cache *Cache
	dram  *DRAM

	// overlay holds copied cache sets indexed by set number; a nil entry
	// reads through to the base. Direct indexing keeps the per-access
	// overlay check branch-cheap (the map it replaces dominated the
	// parallel engine's profile).
	overlay [][]cacheLine
	// touched lists the set indices with overlay copies, so Reset
	// releases exactly those instead of sweeping the whole overlay.
	touched []int64
	// pool recycles overlay set clones across Resets.
	pool [][]cacheLine
	// clock continues the base cache's LRU tick privately.
	clock int64
	// nextFree is a private copy of the DRAM channel occupancy.
	nextFree []Cycles

	// record, when set, makes slow walks (re)build memo entries in the
	// base cache's table, exactly as the live cache does. Only safe for a
	// view used while no other goroutine touches the base — the parallel
	// engine's commit view — so it is off by default.
	record bool
	// rec receives one wayRef per line from look while a recording slow
	// walk is in flight.
	rec *[]wayRef

	cstats CacheStats
	dstats DRAMStats
}

// Speculate returns a new speculative view over the hierarchy's current
// state. The view stays coherent only until the base is next mutated;
// call Reset to re-sync it.
func (h *Hierarchy) Speculate() *SpecMem {
	s := &SpecMem{
		cache:    h.Shared,
		dram:     h.DRAM,
		overlay:  make([][]cacheLine, h.Shared.numSets),
		nextFree: make([]Cycles, len(h.DRAM.nextFree)),
	}
	s.Reset()
	return s
}

// Reset discards the overlay and re-syncs the view to the base state,
// reusing the view's allocations (overlay clones return to a pool).
func (s *SpecMem) Reset() {
	for _, k := range s.touched {
		s.pool = append(s.pool, s.overlay[k])
		s.overlay[k] = nil
	}
	s.touched = s.touched[:0]
	s.clock = s.cache.clock
	copy(s.nextFree, s.dram.nextFree)
	s.cstats = CacheStats{}
	s.dstats = DRAMStats{}
}

// set returns the overlay copy of one cache set, cloning it from the
// base on first touch.
func (s *SpecMem) set(setIdx int64) []cacheLine {
	if set := s.overlay[setIdx]; set != nil {
		return set
	}
	var set []cacheLine
	if n := len(s.pool); n > 0 {
		set = s.pool[n-1]
		s.pool = s.pool[:n-1]
		set = append(set[:0], s.cache.sets[setIdx]...)
	} else {
		set = append([]cacheLine(nil), s.cache.sets[setIdx]...)
	}
	s.overlay[setIdx] = set
	s.touched = append(s.touched, setIdx)
	return set
}

// effective returns the set the view currently observes: the overlay copy
// when present, the base otherwise. Read-only.
func (s *SpecMem) effective(setIdx int64) []cacheLine {
	if set := s.overlay[setIdx]; set != nil {
		return set
	}
	return s.cache.sets[setIdx]
}

// look implements lineWalker over the overlay.
func (s *SpecMem) look(lineAddr int64) bool {
	s.clock++
	setIdx := (lineAddr / s.cache.cfg.LineBytes) % s.cache.numSets
	tag := lineAddr / s.cache.cfg.LineBytes / s.cache.numSets
	s.cstats.LineAccesses++
	hit, way := touch(s.set(setIdx), tag, s.clock)
	if s.rec != nil {
		*s.rec = append(*s.rec, wayRef{set: int32(setIdx), way: int32(way), tag: tag})
	}
	if hit {
		return true
	}
	s.cstats.LineMisses++
	return false
}

// charge implements lineWalker over the private channel occupancy.
func (s *SpecMem) charge(now Cycles, addr, bytes int64) Cycles {
	_, done := s.dram.cfg.schedule(s.nextFree, now, addr, bytes)
	s.dstats.Accesses++
	s.dstats.BytesMoved += bytes
	return done
}

// tryMemo is Cache.tryMemo against the view: refs validate against the
// overlay where present and the base otherwise, and the all-hit replay
// stamps overlay copies exactly as the slow walk would.
func (s *SpecMem) tryMemo(e *memoEntry) bool {
	for _, r := range e.refs {
		ln := &s.effective(int64(r.set))[r.way]
		if !ln.valid || ln.tag != r.tag {
			return false
		}
	}
	s.cstats.LineAccesses += int64(len(e.refs))
	for _, r := range e.refs {
		s.clock++
		s.set(int64(r.set))[r.way].lastUsed = s.clock
	}
	return true
}

// RecordMemos makes the view's slow walks rebuild base-table memo
// entries like the live cache's walks do. Enable it only on a view that
// runs while the base is otherwise untouched (the parallel engine's
// single-threaded commit view): the base memo table is written in place.
func (s *SpecMem) RecordMemos(on bool) { s.record = on }

// Access reads [addr, addr+bytes) at time now through the view and
// returns the completion cycle plus the access's line and miss counts —
// the geometry commit-time validation compares against the live state.
func (s *SpecMem) Access(now Cycles, addr, bytes int64) (done Cycles, lines, misses int64) {
	cfg := s.cache.cfg
	if bytes > 0 {
		first := addr / cfg.LineBytes
		n := (addr+bytes-1)/cfg.LineBytes - first + 1
		key := memoKey{first: first, lines: n}
		if e := s.cache.memoFind(key); e != nil && s.tryMemo(e) {
			return now + cfg.HitLatency, n, 0
		}
		if s.record {
			e := s.cache.memoClaim(key)
			s.rec = &e.refs
			done, lines, misses = walkAccess(cfg, s, now, addr, bytes)
			s.rec = nil
			return done, lines, misses
		}
	}
	return walkAccess(cfg, s, now, addr, bytes)
}

// FlushToBase commits the view's private state into the base hierarchy:
// overlay sets overwrite their base sets, the LRU clock and DRAM channel
// occupancy replace the base's, and the view's counters add onto the
// base's. Because the view resolved its accesses with the same
// replacement and scheduling cores the live models use, the flushed base
// is bit-identical to having replayed those accesses live. The view ends
// synced to the new base state, as after Reset.
func (s *SpecMem) FlushToBase() {
	for _, k := range s.touched {
		copy(s.cache.sets[k], s.overlay[k])
		s.pool = append(s.pool, s.overlay[k])
		s.overlay[k] = nil
	}
	s.touched = s.touched[:0]
	s.cache.clock = s.clock
	s.cache.stats.LineAccesses += s.cstats.LineAccesses
	s.cache.stats.LineMisses += s.cstats.LineMisses
	copy(s.dram.nextFree, s.nextFree)
	s.dram.stats.Accesses += s.dstats.Accesses
	s.dram.stats.BytesMoved += s.dstats.BytesMoved
	s.cstats = CacheStats{}
	s.dstats = DRAMStats{}
}

// Probe reports residency in the view (overlay where present, base
// otherwise) without side effects, mirroring Cache.Probe.
func (s *SpecMem) Probe(addr, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	cfg := s.cache.cfg
	first := addr / cfg.LineBytes
	last := (addr + bytes - 1) / cfg.LineBytes
	if e := s.cache.memoFind(memoKey{first: first, lines: last - first + 1}); e != nil {
		ok := true
		for _, r := range e.refs {
			ln := &s.effective(int64(r.set))[r.way]
			if !ln.valid || ln.tag != r.tag {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	for line := first; line <= last; line++ {
		lineAddr := line * cfg.LineBytes
		setIdx := (lineAddr / cfg.LineBytes) % s.cache.numSets
		tag := lineAddr / cfg.LineBytes / s.cache.numSets
		if !resident(s.effective(setIdx), tag) {
			return false
		}
	}
	return true
}

// Stats returns the view's own line-access counters since the last Reset.
func (s *SpecMem) Stats() CacheStats { return s.cstats }

// DRAMStats returns the view's own off-chip counters since the last Reset.
func (s *SpecMem) DRAMStats() DRAMStats { return s.dstats }
