// Package mem models the accelerator's memory system: multi-channel
// DDR4-style DRAM with latency and bandwidth occupancy, and a
// set-associative LRU shared cache with miss statistics (paper §5: 4 MB
// shared cache, four channels of DDR4-2666 at 85 GB/s).
//
// The model is transaction-level: an access covers a byte range (e.g. one
// neighbor list) and returns the cycle at which the data is fully
// available, charging one exposed miss latency plus pipelined per-line
// transfers. This reproduces the behaviours the paper's evaluation turns
// on — streaming reuse, capacity pressure, and bandwidth saturation —
// without per-beat simulation.
package mem

// Cycles counts accelerator clock cycles (1 GHz in the default config).
type Cycles int64

// DRAMConfig describes the off-chip memory.
type DRAMConfig struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// LatencyCycles is the exposed access latency of one request.
	LatencyCycles Cycles
	// BytesPerCycle is the aggregate bandwidth across all channels.
	BytesPerCycle float64
}

// DefaultDRAMConfig matches the paper's setup: four channels of
// DDR4-2666 delivering 85 GB/s against a 1 GHz core clock.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Channels: 4, LatencyCycles: 120, BytesPerCycle: 85}
}

// DRAMStats aggregates traffic counters.
type DRAMStats struct {
	Accesses   int64
	BytesMoved int64
}

// DRAMObserver receives one event per off-chip burst, for telemetry.
// Implementations must not mutate timing state; a nil observer (the
// default) adds no work to the access path.
type DRAMObserver interface {
	// DRAMBurst reports a burst that started occupying its channel at
	// start and delivered its last byte at done.
	DRAMBurst(start, done Cycles, addr, bytes int64)
}

// DRAM is the off-chip memory timing model. Each access picks a channel
// by address interleave and occupies its bandwidth for bytes divided by
// the per-channel rate, on top of the fixed latency.
type DRAM struct {
	cfg      DRAMConfig
	nextFree []Cycles
	stats    DRAMStats
	obs      DRAMObserver
}

// SetObserver attaches (or, with nil, detaches) a burst observer.
func (d *DRAM) SetObserver(o DRAMObserver) { d.obs = o }

// Observed reports whether a burst observer is attached — consumers that
// would bypass the access path (and so skip its events) must not.
func (d *DRAM) Observed() bool { return d.obs != nil }

// NewDRAM builds a DRAM model from the config.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	return &DRAM{cfg: cfg, nextFree: make([]Cycles, cfg.Channels)}
}

// schedule places one burst on its channel against the given occupancy
// state, advancing it, and returns the burst's start and completion. It
// is the single timing core behind both the live DRAM model and the
// speculative views, so the two can never drift.
func (cfg DRAMConfig) schedule(nextFree []Cycles, now Cycles, addr, bytes int64) (start, done Cycles) {
	ch := int(uint64(addr) / 4096 % uint64(cfg.Channels))
	start = now
	if nextFree[ch] > start {
		start = nextFree[ch]
	}
	perChannel := cfg.BytesPerCycle / float64(cfg.Channels)
	transfer := Cycles(float64(bytes) / perChannel)
	if transfer < 1 {
		transfer = 1
	}
	nextFree[ch] = start + transfer
	return start, start + transfer + cfg.LatencyCycles
}

// Access requests bytes at addr at time now and returns the completion
// cycle. Requests to a busy channel queue behind it (bandwidth model).
func (d *DRAM) Access(now Cycles, addr int64, bytes int64) Cycles {
	start, done := d.cfg.schedule(d.nextFree, now, addr, bytes)
	d.stats.Accesses++
	d.stats.BytesMoved += bytes
	if d.obs != nil {
		d.obs.DRAMBurst(start, done, addr, bytes)
	}
	return done
}

// Stats returns the traffic counters so far.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// Reset clears timing and counters, keeping the configuration.
func (d *DRAM) Reset() {
	for i := range d.nextFree {
		d.nextFree[i] = 0
	}
	d.stats = DRAMStats{}
}

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	// CapacityBytes is the total data capacity.
	CapacityBytes int64
	// LineBytes is the cache-line size.
	LineBytes int64
	// Ways is the associativity.
	Ways int
	// HitLatency is charged on every access.
	HitLatency Cycles
}

// DefaultSharedCacheConfig matches the paper: 4 MB, 64 B lines, 16-way.
func DefaultSharedCacheConfig() CacheConfig {
	return CacheConfig{CapacityBytes: 4 << 20, LineBytes: 64, Ways: 16, HitLatency: 16}
}

// CacheStats aggregates line-granularity hit/miss counters.
type CacheStats struct {
	LineAccesses int64
	LineMisses   int64
}

// MissRate returns misses per access in [0,1].
func (s CacheStats) MissRate() float64 {
	if s.LineAccesses == 0 {
		return 0
	}
	return float64(s.LineMisses) / float64(s.LineAccesses)
}

type cacheLine struct {
	tag      int64
	valid    bool
	lastUsed int64
}

// Cache is a set-associative LRU cache backed by DRAM. It is shared by
// all PEs; accesses carry the requesting time so the interleaved
// multi-PE simulation keeps one coherent LRU state.
type Cache struct {
	cfg     CacheConfig
	sets    [][]cacheLine
	numSets int64
	backing *DRAM
	clock   int64 // LRU tick
	stats   CacheStats

	// memo caches line-walk geometry per byte range: the dominant access
	// pattern is re-fetching the same neighbor lists, and a validated memo
	// entry resolves such a fetch in O(lines) single compares instead of
	// O(lines × ways) scans with per-line address divisions. The table is
	// direct-mapped (collisions replace — entries are hints, losing one
	// only costs a slow walk), which keeps the per-access lookup a hash,
	// a mask, and one key compare. Speculative views read the table
	// concurrently during the parallel engine's speculative phase (the
	// live cache is quiescent then); only the live cache writes it.
	memo []memoEntry
	// rec, when non-nil, receives one wayRef per line from look — the
	// slow-walk recording that (re)builds a memo entry.
	rec *[]wayRef
}

// NewCache builds a cache from the config over the given DRAM.
func NewCache(cfg CacheConfig, backing *DRAM) *Cache {
	if cfg.Ways < 1 {
		cfg.Ways = 1
	}
	if cfg.LineBytes < 4 {
		cfg.LineBytes = 64
	}
	numSets := cfg.CapacityBytes / (cfg.LineBytes * int64(cfg.Ways))
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]cacheLine, numSets)
	for i := range sets {
		sets[i] = make([]cacheLine, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, numSets: numSets, backing: backing,
		memo: make([]memoEntry, memoTableSlots)}
}

// memoTableSlots sizes the direct-mapped walk memo; must be a power of
// two. 8 Ki slots cover the hot neighbor lists of the bundled datasets
// with few collisions at ~400 KB per cache.
const memoTableSlots = 1 << 13

// memoHash spreads a memoKey over the table (SplitMix64-style mixing).
func memoHash(k memoKey) uint64 {
	h := uint64(k.first)*0x9E3779B97F4A7C15 + uint64(k.lines)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	return h ^ h>>32
}

// memoFind returns the table's entry for key when it currently holds
// key, nil otherwise. Read-only; safe for concurrent speculative views
// while the live cache is quiescent.
func (c *Cache) memoFind(key memoKey) *memoEntry {
	e := &c.memo[memoHash(key)&(memoTableSlots-1)]
	if e.used && e.key == key {
		return e
	}
	return nil
}

// memoClaim claims key's slot for (re)recording, displacing whatever the
// slot held and resetting the ref list (its storage is reused).
func (c *Cache) memoClaim(key memoKey) *memoEntry {
	e := &c.memo[memoHash(key)&(memoTableSlots-1)]
	e.key = key
	e.used = true
	e.refs = e.refs[:0]
	return e
}

// tryMemo attempts the memoized all-hit fast path: if every ref of the
// range's memo entry still matches its way, the access is a pure hit walk
// and its bookkeeping (line-access counters, per-line LRU stamps, clock
// ticks) is replayed exactly as the slow walk would. Validation strictly
// precedes mutation so a failed attempt leaves no trace.
func (c *Cache) tryMemo(e *memoEntry) bool {
	for _, r := range e.refs {
		ln := &c.sets[r.set][r.way]
		if !ln.valid || ln.tag != r.tag {
			return false
		}
	}
	c.stats.LineAccesses += int64(len(e.refs))
	for _, r := range e.refs {
		c.clock++
		c.sets[r.set][r.way].lastUsed = c.clock
	}
	return true
}

// touch looks tag up in one set at LRU tick clock, updating replacement
// state in place: a hit refreshes the line's stamp, a miss installs the
// line over the LRU way (the last invalid way wins, otherwise the least
// recently used). It returns the way the line now occupies, so callers
// can memoize the location. It is the single replacement core behind both
// the live cache and the speculative views.
func touch(set []cacheLine, tag int64, clock int64) (hit bool, way int) {
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUsed = clock
			return true, i
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUsed < set[victim].lastUsed {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, lastUsed: clock}
	return false, victim
}

// wayRef pins one cache line of a memoized byte range to the way it was
// last seen in. The ref is valid exactly while sets[set][way] still holds
// tag — the same condition under which the line is resident — so a memo
// entry whose refs all validate proves an all-hit walk without scanning
// ways or dividing addresses.
type wayRef struct {
	set int32
	way int32
	tag int64
}

// memoKey identifies one byte range at line granularity.
type memoKey struct {
	first int64 // first line index
	lines int64 // line count
}

// memoEntry is one direct-mapped table slot: the cached line-walk
// geometry of the byte range in key — the way locations of all its lines
// as of the last slow walk. Entries are hints, not authority — every use
// revalidates each ref against the current sets, so neither eviction nor
// slot displacement needs an invalidation protocol. The refs slice is
// reused across refreshes and displacements.
type memoEntry struct {
	key  memoKey
	used bool
	refs []wayRef
}

// ProvenResident reports whether the walk memo proves [addr, addr+bytes)
// fully resident right now, without mutating anything. False means
// "unproven" (no entry, or stale refs), not "absent".
func (c *Cache) ProvenResident(addr, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	first := addr / c.cfg.LineBytes
	e := c.memoFind(memoKey{first: first, lines: (addr+bytes-1)/c.cfg.LineBytes - first + 1})
	if e == nil {
		return false
	}
	for _, r := range e.refs {
		ln := &c.sets[r.set][r.way]
		if !ln.valid || ln.tag != r.tag {
			return false
		}
	}
	return true
}

// StampHitWalk replays the bookkeeping of an all-hit walk over a range
// the caller just proved resident (ProvenResident, with no intervening
// fills or evictions): line-access counters, LRU clock ticks, and
// per-line stamps, bit-identical to the slow walk on an all-hit range.
func (c *Cache) StampHitWalk(addr, bytes int64) {
	first := addr / c.cfg.LineBytes
	e := c.memoFind(memoKey{first: first, lines: (addr+bytes-1)/c.cfg.LineBytes - first + 1})
	if e == nil || !c.tryMemo(e) {
		panic("mem: StampHitWalk on an unproven range")
	}
}

// resident reports whether tag is in the set, without touching LRU state.
func resident(set []cacheLine, tag int64) bool {
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// lineWalker is what walkAccess drives: a per-line lookup (with
// replacement side effects) and a backing-store charge for missed bytes.
// The live Cache and the speculative SpecMem both implement it, sharing
// one access-walk core.
type lineWalker interface {
	look(lineAddr int64) bool
	charge(now Cycles, addr, bytes int64) Cycles
}

// walkAccess walks every line of [addr, addr+bytes) through w, then
// charges the missed bytes to the backing store as one pipelined burst
// starting at the first missed line. It returns the completion cycle and
// the line/miss counts of this access.
func walkAccess(cfg CacheConfig, w lineWalker, now Cycles, addr, bytes int64) (done Cycles, lines, misses int64) {
	if bytes <= 0 {
		return now + cfg.HitLatency, 0, 0
	}
	first := addr / cfg.LineBytes
	last := (addr + bytes - 1) / cfg.LineBytes
	lines = last - first + 1
	missedBytes := int64(0)
	firstMissAddr := int64(-1)
	for line := first; line <= last; line++ {
		if !w.look(line * cfg.LineBytes) {
			misses++
			missedBytes += cfg.LineBytes
			if firstMissAddr < 0 {
				firstMissAddr = line * cfg.LineBytes
			}
		}
	}
	done = now + cfg.HitLatency
	if missedBytes > 0 {
		done = w.charge(now+cfg.HitLatency, firstMissAddr, missedBytes)
	}
	return done, lines, misses
}

// look implements lineWalker over the live sets.
func (c *Cache) look(lineAddr int64) bool {
	c.clock++
	setIdx := (lineAddr / c.cfg.LineBytes) % c.numSets
	tag := lineAddr / c.cfg.LineBytes / c.numSets
	c.stats.LineAccesses++
	hit, way := touch(c.sets[setIdx], tag, c.clock)
	if c.rec != nil {
		// The line is resident in `way` after touch, hit or fill.
		*c.rec = append(*c.rec, wayRef{set: int32(setIdx), way: int32(way), tag: tag})
	}
	if hit {
		return true
	}
	c.stats.LineMisses++
	return false
}

// charge implements lineWalker over the live DRAM.
func (c *Cache) charge(now Cycles, addr, bytes int64) Cycles {
	return c.backing.Access(now, addr, bytes)
}

// Access reads the byte range [addr, addr+bytes) at time now and returns
// the completion cycle. Hit lines cost the hit latency; missing lines are
// fetched from DRAM as one pipelined burst (a single exposed latency plus
// bandwidth occupancy for the missing bytes), modeling the streaming
// neighbor-list fetches of §3.3.
func (c *Cache) Access(now Cycles, addr int64, bytes int64) Cycles {
	if bytes <= 0 {
		return now + c.cfg.HitLatency
	}
	key := memoKey{first: addr / c.cfg.LineBytes, lines: (addr+bytes-1)/c.cfg.LineBytes - addr/c.cfg.LineBytes + 1}
	if e := c.memoFind(key); e != nil && c.tryMemo(e) {
		return now + c.cfg.HitLatency
	}
	e := c.memoClaim(key)
	c.rec = &e.refs
	done, _, _ := walkAccess(c.cfg, c, now, addr, bytes)
	c.rec = nil
	return done
}

// Probe reports whether the whole byte range is currently resident,
// without updating LRU state or statistics — the pseudo-DFS scheduler's
// implicit "hits return immediately" selection (§4.1).
func (c *Cache) Probe(addr int64, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	first := addr / c.cfg.LineBytes
	last := (addr + bytes - 1) / c.cfg.LineBytes
	if e := c.memoFind(memoKey{first: first, lines: last - first + 1}); e != nil {
		ok := true
		for _, r := range e.refs {
			ln := &c.sets[r.set][r.way]
			if !ln.valid || ln.tag != r.tag {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		// Stale refs prove nothing either way; fall through to the walk.
	}
	for line := first; line <= last; line++ {
		lineAddr := line * c.cfg.LineBytes
		setIdx := (lineAddr / c.cfg.LineBytes) % c.numSets
		tag := lineAddr / c.cfg.LineBytes / c.numSets
		if !resident(c.sets[setIdx], tag) {
			return false
		}
	}
	return true
}

// Stats returns the hit/miss counters so far.
func (c *Cache) Stats() CacheStats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Reset invalidates all lines and clears counters and the walk memo.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = cacheLine{}
		}
	}
	c.stats = CacheStats{}
	c.clock = 0
	for i := range c.memo {
		c.memo[i].used = false
	}
	c.rec = nil
}

// Hierarchy bundles the chip-level shared memory system.
type Hierarchy struct {
	DRAM   *DRAM
	Shared *Cache
}

// NewHierarchy builds the default shared memory system, optionally
// overriding the shared-cache capacity (bytes; 0 keeps the default).
func NewHierarchy(sharedCapacity int64) *Hierarchy {
	dram := NewDRAM(DefaultDRAMConfig())
	cfg := DefaultSharedCacheConfig()
	if sharedCapacity > 0 {
		cfg.CapacityBytes = sharedCapacity
	}
	return &Hierarchy{DRAM: dram, Shared: NewCache(cfg, dram)}
}
