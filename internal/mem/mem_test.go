package mem

import (
	"testing"
)

func TestDRAMLatencyAndBandwidth(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 1, LatencyCycles: 100, BytesPerCycle: 10})
	done := d.Access(0, 0, 100) // 10 cycles transfer + 100 latency
	if done != 110 {
		t.Errorf("done = %d, want 110", done)
	}
	// A second access to the same channel queues behind the first.
	done2 := d.Access(0, 0, 100)
	if done2 != 120 {
		t.Errorf("done2 = %d, want 120", done2)
	}
	st := d.Stats()
	if st.Accesses != 2 || st.BytesMoved != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDRAMChannelsIndependent(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 2, LatencyCycles: 10, BytesPerCycle: 8})
	// Addresses 0 and 4096 interleave onto different channels.
	a := d.Access(0, 0, 40)
	b := d.Access(0, 4096, 40)
	if a != b {
		t.Errorf("parallel channels should complete together: %d vs %d", a, b)
	}
}

func TestDRAMReset(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0, 0, 1000)
	d.Reset()
	if d.Stats() != (DRAMStats{}) {
		t.Error("reset did not clear stats")
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 1, LatencyCycles: 100, BytesPerCycle: 64})
	c := NewCache(CacheConfig{CapacityBytes: 1 << 12, LineBytes: 64, Ways: 4, HitLatency: 5}, d)
	miss := c.Access(0, 0, 64)
	if miss <= 5 {
		t.Errorf("miss completed too fast: %d", miss)
	}
	hit := c.Access(miss, 0, 64)
	if hit != miss+5 {
		t.Errorf("hit latency = %d, want 5", hit-miss)
	}
	st := c.Stats()
	if st.LineAccesses != 2 || st.LineMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One set (capacity = 2 lines, 2 ways): the third distinct line evicts
	// the least recently used.
	d := NewDRAM(DefaultDRAMConfig())
	c := NewCache(CacheConfig{CapacityBytes: 128, LineBytes: 64, Ways: 2, HitLatency: 1}, d)
	c.Access(0, 0, 1)   // miss, installs line 0
	c.Access(0, 64, 1)  // miss, installs line 1
	c.Access(0, 0, 1)   // hit, refreshes line 0
	c.Access(0, 128, 1) // miss, evicts line 1 (LRU)
	if !c.Probe(0, 1) {
		t.Error("line 0 evicted despite being MRU")
	}
	if c.Probe(64, 1) {
		t.Error("line 1 still resident despite eviction")
	}
	st := c.Stats()
	if st.LineMisses != 3 {
		t.Errorf("misses = %d, want 3", st.LineMisses)
	}
}

func TestCacheRangeAccessCountsAllLines(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	c := NewCache(DefaultSharedCacheConfig(), d)
	c.Access(0, 0, 256) // 4 lines
	st := c.Stats()
	if st.LineAccesses != 4 || st.LineMisses != 4 {
		t.Errorf("stats = %+v, want 4/4", st)
	}
	c.Access(100, 0, 256)
	st = c.Stats()
	if st.LineMisses != 4 {
		t.Errorf("refetch missed: %+v", st)
	}
}

func TestCacheMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Error("empty miss rate not 0")
	}
	s = CacheStats{LineAccesses: 10, LineMisses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	c := NewCache(DefaultSharedCacheConfig(), d)
	before := c.Stats()
	if c.Probe(0, 4096) {
		t.Error("cold cache probe reported resident")
	}
	if c.Stats() != before {
		t.Error("probe changed statistics")
	}
}

func TestCacheZeroByteAccess(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	c := NewCache(DefaultSharedCacheConfig(), d)
	done := c.Access(7, 0, 0)
	if done != 7+c.Config().HitLatency {
		t.Errorf("zero-byte access done = %d", done)
	}
	if !c.Probe(0, 0) {
		t.Error("zero-byte probe should be resident")
	}
}

func TestLargerCacheReducesMisses(t *testing.T) {
	// Stream a 64 kB working set twice through small and large caches.
	run := func(capacity int64) float64 {
		d := NewDRAM(DefaultDRAMConfig())
		c := NewCache(CacheConfig{CapacityBytes: capacity, LineBytes: 64, Ways: 16, HitLatency: 1}, d)
		now := Cycles(0)
		for pass := 0; pass < 2; pass++ {
			for addr := int64(0); addr < 64<<10; addr += 4096 {
				now = c.Access(now, addr, 4096)
			}
		}
		return c.Stats().MissRate()
	}
	small, large := run(8<<10), run(128<<10)
	if large >= small {
		t.Errorf("larger cache did not reduce miss rate: %v vs %v", large, small)
	}
}

func TestHierarchyDefaults(t *testing.T) {
	h := NewHierarchy(0)
	if h.Shared.Config().CapacityBytes != 4<<20 {
		t.Errorf("default capacity = %d", h.Shared.Config().CapacityBytes)
	}
	h2 := NewHierarchy(2 << 20)
	if h2.Shared.Config().CapacityBytes != 2<<20 {
		t.Errorf("override capacity = %d", h2.Shared.Config().CapacityBytes)
	}
}

func TestCacheReset(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	c := NewCache(DefaultSharedCacheConfig(), d)
	c.Access(0, 0, 4096)
	c.Reset()
	if c.Stats() != (CacheStats{}) {
		t.Error("reset did not clear stats")
	}
	if c.Probe(0, 64) {
		t.Error("reset did not invalidate lines")
	}
}

type burstRecorder struct {
	start, done Cycles
	addr, bytes int64
	calls       int
}

func (b *burstRecorder) DRAMBurst(start, done Cycles, addr, bytes int64) {
	b.start, b.done, b.addr, b.bytes = start, done, addr, bytes
	b.calls++
}

func TestDRAMObserverSeesBursts(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	var rec burstRecorder
	d.SetObserver(&rec)
	done := d.Access(50, 1<<16, 256)
	if rec.calls != 1 {
		t.Fatalf("observer called %d times", rec.calls)
	}
	if rec.done != done || rec.addr != 1<<16 || rec.bytes != 256 {
		t.Errorf("burst fields: %+v, done=%d", rec, done)
	}
	if rec.start < 50 || rec.start > done {
		t.Errorf("burst start %d outside [50, %d]", rec.start, done)
	}
	d.SetObserver(nil)
	d.Access(done, 0, 64)
	if rec.calls != 1 {
		t.Error("detached observer still called")
	}
}

func TestDRAMObserverDoesNotChangeTiming(t *testing.T) {
	run := func(obs DRAMObserver) Cycles {
		d := NewDRAM(DefaultDRAMConfig())
		d.SetObserver(obs)
		t0 := d.Access(0, 0, 512)
		return d.Access(t0, 1<<20, 128)
	}
	if plain, observed := run(nil), run(&burstRecorder{}); plain != observed {
		t.Errorf("observer changed timing: %d vs %d", plain, observed)
	}
}
