// Package flexminer models the paper's baseline accelerator, FlexMiner
// (ISCA '21), as reimplemented by the FINGERS authors for their
// methodology (§5): multiple PEs exploit only coarse-grained tree-level
// parallelism; each PE executes a strict DFS with one merge-based compute
// unit processing one element per cycle, so neighbor-list fetch latencies
// are fully exposed by the DFS dependency chain (§2.3), and a neighbor
// list too large for the PE-private cache is refetched for every set
// operation that consumes it (§3.3, Figure 3).
//
// As in the paper's own reimplementation, the c-map module is omitted:
// candidate sets are cached in the PE private cache instead (§5).
package flexminer

import (
	"context"
	"fmt"

	"fingers/internal/accel"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/mine"
	"fingers/internal/noc"
	"fingers/internal/plan"
	"fingers/internal/telemetry"
)

// Config parameterizes a FlexMiner PE.
type Config struct {
	// PrivateCacheBytes is the PE-local cache for candidate sets and the
	// current neighbor list; lists larger than this are refetched per set
	// operation.
	PrivateCacheBytes int64
	// TaskOverheadCycles is the fixed scheduling cost per task.
	TaskOverheadCycles mem.Cycles
	// SetCentric switches the PE cost model to the SISA-style
	// set-centric design point (ArchSISA): neighbor lists move in their
	// hybrid storage representation — dense hub row, compressed bitmap,
	// or raw array, whichever the graph's adaptive view chose — so
	// fetch traffic shrinks to graph.HybridAdj.RowBytes, and a set
	// operation whose long side has a stored row costs one probe cycle
	// per short-side element instead of the full two-sided merge.
	// Counts are unaffected; only timing changes.
	SetCentric bool
}

// DefaultConfig matches the paper's FlexMiner setup.
func DefaultConfig() Config {
	return Config{PrivateCacheBytes: 32 << 10, TaskOverheadCycles: 4}
}

// workItem is one pending task: start a new root tree or extend a node.
type workItem struct {
	engine int
	start  bool
	root   uint32
	node   *mine.Node
	cand   uint32
}

// PE is one FlexMiner processing element.
type PE struct {
	cfg     Config
	g       *graph.Graph
	adj     *graph.HybridAdj // non-nil only under Config.SetCentric
	engines []*mine.Engine
	roots   *accel.RootScheduler
	shared  accel.MemPort
	now     mem.Cycles
	count   uint64
	tasks   int64
	stack   []workItem

	// id is the PE's chip index, for telemetry attribution.
	id int
	// trc receives events; nil (the default) disables every hook.
	trc telemetry.Tracer
	// bd attributes every clock advance: Compute + MemStall + Overhead
	// == now at all times (Idle is filled by the chip rollup).
	bd telemetry.Breakdown

	// staged holds a root reservation made at a parallel-engine epoch
	// barrier; Step consumes it before pulling from the shared scheduler.
	staged stagedRoot

	// Undo journal (accel.SpecPE): while jactive, every stack mutation
	// appends its inverse, and SpecSave checkpoints the scalar state.
	jactive bool
	journal []jEntry
	saves   []peSave
	nsaves  int
}

// jEntry is one undo record for the DFS stack: n == -1 undoes a pop by
// re-appending item; n > 0 undoes a batch of n pushes by truncation.
type jEntry struct {
	item workItem
	n    int32
}

// peSave checkpoints the PE's scalar state plus a journal position; the
// stack itself is rewound by replaying the journal, not by copying.
type peSave struct {
	now    mem.Cycles
	count  uint64
	tasks  int64
	bd     telemetry.Breakdown
	staged stagedRoot
	jlen   int
	marks  []int32
	parks  []int
}

// stagedRoot is a pre-reserved root handout: the result the next root
// request will observe.
type stagedRoot struct {
	set bool
	v   uint32
	ok  bool
}

// NewPE builds a PE mining the given plans (one for single-pattern runs,
// several for multi-pattern) against the shared cache.
func NewPE(cfg Config, g *graph.Graph, plans []*plan.Plan, roots *accel.RootScheduler, shared accel.MemPort) *PE {
	pe := &PE{cfg: cfg, g: g, roots: roots, shared: shared}
	if cfg.SetCentric {
		pe.adj = g.Hybrid() // shared cached view: PEs never duplicate rows
	}
	for _, pl := range plans {
		pe.engines = append(pe.engines, mine.NewEngine(g, pl))
	}
	return pe
}

// Time returns the PE's local clock.
func (pe *PE) Time() mem.Cycles { return pe.now }

// Count returns the embeddings found so far.
func (pe *PE) Count() uint64 { return pe.count }

// Tasks returns the number of extension tasks executed.
func (pe *PE) Tasks() int64 { return pe.tasks }

// Breakdown returns the PE's cycle attribution so far. Idle is zero; the
// chip rollup fills it in as makespan − Time().
func (pe *PE) Breakdown() telemetry.Breakdown { return pe.bd }

// SetTracer attaches (or, with nil, detaches) an event tracer.
func (pe *PE) SetTracer(t telemetry.Tracer) { pe.trc = t }

// takeRoot returns the PE's next root: the staged reservation when one
// is pending (parallel engine), otherwise straight from the scheduler
// (serial loop).
func (pe *PE) takeRoot() (uint32, bool) {
	if pe.staged.set {
		pe.staged.set = false
		return pe.staged.v, pe.staged.ok
	}
	return pe.roots.Next()
}

// WillTakeRoot reports whether the next Step would request a new root:
// true exactly when the DFS stack is empty. Pure (accel.SpecPE).
func (pe *PE) WillTakeRoot() bool { return len(pe.stack) == 0 }

// StageRoot reserves the PE's next root handout from the shared
// scheduler (accel.SpecPE); a no-op when one is already staged.
func (pe *PE) StageRoot() {
	if pe.staged.set {
		return
	}
	v, ok := pe.roots.Next()
	pe.staged = stagedRoot{set: true, v: v, ok: ok}
}

// StagedRoot reports whether a reserved root is pending (accel.SpecPE).
func (pe *PE) StagedRoot() bool { return pe.staged.set }

// CurrentRoot reports the root vertex of the search tree the PE is
// mining right now (accel.RootHolder): the root of the bottommost DFS
// work item. ok is false between search trees, when a failure cannot be
// attributed to any root.
func (pe *PE) CurrentRoot() (uint32, bool) {
	if len(pe.stack) == 0 {
		return 0, false
	}
	bottom := pe.stack[0]
	if bottom.start {
		return bottom.root, true
	}
	if bottom.node != nil && len(bottom.node.Verts) > 0 {
		return bottom.node.Verts[0], true
	}
	return 0, false
}

// SpecActivate implements accel.SpecPE: toggles undo journaling on the
// PE and node parking on its engines for a speculative phase.
func (pe *PE) SpecActivate(on bool) {
	pe.jactive = on
	for _, e := range pe.engines {
		e.Speculate(on)
	}
}

// SpecSave implements accel.SpecPE: checkpoints the scalar state and
// marks the current journal position, returning a mark for SpecRewind.
func (pe *PE) SpecSave() int {
	idx := pe.nsaves
	if idx == len(pe.saves) {
		pe.saves = append(pe.saves, peSave{})
	}
	pe.nsaves++
	s := &pe.saves[idx]
	s.now, s.count, s.tasks = pe.now, pe.count, pe.tasks
	s.bd, s.staged = pe.bd, pe.staged
	s.jlen = len(pe.journal)
	s.marks = s.marks[:0]
	s.parks = s.parks[:0]
	for _, e := range pe.engines {
		s.marks = append(s.marks, e.Mark())
		s.parks = append(s.parks, e.ParkMark())
	}
	return idx
}

// SpecRewind implements accel.SpecPE: undoes every stack mutation after
// the mark in reverse order, restores the scalar state, and revives the
// parked nodes the restored work items reference.
func (pe *PE) SpecRewind(mark int) {
	s := &pe.saves[mark]
	for k := len(pe.journal) - 1; k >= s.jlen; k-- {
		en := &pe.journal[k]
		if en.n < 0 {
			pe.stack = append(pe.stack, en.item)
		} else {
			pe.stack = pe.stack[:len(pe.stack)-int(en.n)]
		}
	}
	pe.journal = pe.journal[:s.jlen]
	pe.now, pe.count, pe.tasks = s.now, s.count, s.tasks
	pe.bd, pe.staged = s.bd, s.staged
	for i, e := range pe.engines {
		e.Rewind(s.marks[i])
		e.ReviveParked(s.parks[i])
	}
	pe.nsaves = mark
}

// SpecFlush implements accel.SpecPE: retires the journal and save marks
// of a fully committed speculative phase and returns parked nodes to the
// engine pools.
func (pe *PE) SpecFlush() {
	for i := range pe.journal {
		pe.journal[i].item = workItem{}
	}
	pe.journal = pe.journal[:0]
	pe.nsaves = 0
	for _, e := range pe.engines {
		e.FlushParked()
	}
}

// SwapPort implements accel.SpecPE: replaces the PE's shared-memory
// port, returning the previous one.
func (pe *PE) SwapPort(p accel.MemPort) accel.MemPort {
	old := pe.shared
	pe.shared = p
	return old
}

// SwapTracer implements accel.SpecPE: replaces the PE's event tracer,
// returning the previous one.
func (pe *PE) SwapTracer(t telemetry.Tracer) telemetry.Tracer {
	old := pe.trc
	pe.trc = t
	return old
}

// Step executes one task in DFS order.
//
// Node pooling: only nodes no remaining work item can reference — leaves
// and dead ends — are released; interior nodes stay live for their
// pending sibling extensions and are left to the garbage collector.
func (pe *PE) Step() bool {
	if len(pe.stack) == 0 {
		v, ok := pe.takeRoot()
		if !ok {
			return false
		}
		// The trunks of all patterns share the root (multi-pattern, §2.1);
		// push one start item per plan so the later ones reuse the
		// freshly cached neighbor list.
		for i := len(pe.engines) - 1; i >= 0; i-- {
			pe.stack = append(pe.stack, workItem{engine: i, start: true, root: v})
		}
		if pe.jactive {
			pe.journal = append(pe.journal, jEntry{n: int32(len(pe.engines))})
		}
		return true
	}
	item := pe.stack[len(pe.stack)-1]
	pe.stack = pe.stack[:len(pe.stack)-1]
	if pe.jactive {
		pe.journal = append(pe.journal, jEntry{item: item, n: -1})
	}
	e := pe.engines[item.engine]

	var node *mine.Node
	var info mine.TaskInfo
	if item.start {
		node, info = e.Start(item.root)
	} else {
		node, info = e.Extend(item.node, item.cand)
	}
	pe.charge(info)

	if node.Level == e.Plan.K()-2 {
		pe.count += e.LeafCount(node)
		e.Release(node)
		return true
	}
	cands := e.Candidates(node)
	if len(cands) == 0 {
		e.Release(node)
		return true
	}
	for i := len(cands) - 1; i >= 0; i-- {
		pe.stack = append(pe.stack, workItem{engine: item.engine, node: node, cand: cands[i]})
	}
	if pe.jactive {
		pe.journal = append(pe.journal, jEntry{n: int32(len(cands))})
	}
	return true
}

// charge advances the PE clock by the task's cost under the FlexMiner
// model: exposed serial fetches, then serial merge compute at one element
// per cycle, with per-op refetch of neighbor lists that overflow the
// private cache.
func (pe *PE) charge(info mine.TaskInfo) {
	pe.tasks++
	start := pe.now
	if pe.trc != nil {
		pe.trc.TaskGroupBegin(pe.id, -1, start, 1)
	}
	pe.now += pe.cfg.TaskOverheadCycles
	pe.bd.Overhead += pe.cfg.TaskOverheadCycles
	// DFS dependency: each fetch is fully exposed before compute starts.
	// The fetch list is at most a few entries (the new vertex plus
	// postponed ancestors), so duplicates are found by a prefix scan
	// instead of a per-task map allocation.
	for i, v := range info.FetchVertices {
		dup := false
		for j := 0; j < i; j++ {
			if info.FetchVertices[j] == v {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		t0 := pe.now
		pe.now = pe.shared.Access(pe.now, pe.g.NeighborAddr(v), pe.rowBytes(v))
		pe.bd.MemStall += pe.now - t0
	}
	// Serial set operations on the single merge unit. Sequential updates
	// refetch a long input that does not fit in the private cache
	// (Figure 3's motivating inefficiency). An op's long input counts as
	// already used when any earlier op of this task consumed it.
	for i, op := range info.Ops {
		usedBefore := false
		for j := 0; j < i; j++ {
			if info.Ops[j].LongVertex == op.LongVertex {
				usedBefore = true
				break
			}
		}
		if usedBefore && pe.rowBytes(op.LongVertex) > pe.cfg.PrivateCacheBytes {
			t0 := pe.now
			pe.now = pe.shared.Access(pe.now, pe.g.NeighborAddr(op.LongVertex), pe.rowBytes(op.LongVertex))
			pe.bd.MemStall += pe.now - t0
		}
		// A candidate set spilled beyond the private cache is read back
		// through the shared cache.
		if int64(len(op.Short))*4 > pe.cfg.PrivateCacheBytes {
			t0 := pe.now
			pe.now = pe.shared.Access(pe.now, spillAddr(pe.g), int64(len(op.Short))*4)
			pe.bd.MemStall += pe.now - t0
		}
		if pe.trc != nil {
			pe.trc.SetOpIssue(pe.id, pe.now, op.Kind.String(), len(op.Long), len(op.Short), 1)
		}
		merge := mem.Cycles(len(op.Short) + len(op.Long))
		if pe.adj != nil && pe.adj.HasStoredRow(op.LongVertex) {
			// Set-centric: the long side is a stored row, so the op is
			// one membership probe per short-side element.
			merge = mem.Cycles(len(op.Short))
		}
		pe.now += merge
		pe.bd.Compute += merge
	}
	if pe.trc != nil {
		pe.trc.TaskGroupEnd(pe.id, pe.now)
	}
}

// rowBytes returns the fetch size of v's neighbor list: its hybrid
// storage representation under the set-centric model, the raw CSR list
// otherwise.
func (pe *PE) rowBytes(v uint32) int64 {
	if pe.adj != nil {
		return pe.adj.RowBytes(v)
	}
	return pe.g.NeighborBytes(v)
}

// spillAddr places candidate-set spill traffic in an address region
// beyond the graph adjacency data.
func spillAddr(g *graph.Graph) int64 { return g.TotalAdjacencyBytes() + (1 << 20) }

// Chip assembles a multi-PE FlexMiner accelerator.
type Chip struct {
	PEs  []*PE
	Hier *mem.Hierarchy

	ports    []*noc.Port
	sched    *accel.RootScheduler
	makespan mem.Cycles
}

// NewChip builds a FlexMiner chip with numPEs PEs. sharedCacheBytes = 0
// keeps the paper's 4 MB default.
//
// Deprecated: NewChip panics on a degenerate configuration; prefer
// NewChipErr at any boundary that ingests untrusted configurations.
func NewChip(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans, nil)
}

// NewChipErr is NewChip with validation instead of panics: a
// non-positive PE count, a nil graph, an empty or nil-holding plan list,
// or a plan failing plan.Validate is reported as an error. This is the
// constructor the Simulate façade uses.
func NewChipErr(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) (*Chip, error) {
	if err := validateChipArgs("flexminer", numPEs, g, plans); err != nil {
		return nil, err
	}
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans, nil), nil
}

// validateChipArgs checks the chip-construction arguments (mirrors the
// fingers-model check, with this model's name in the errors).
func validateChipArgs(model string, numPEs int, g *graph.Graph, plans []*plan.Plan) error {
	if numPEs < 1 {
		return fmt.Errorf("%s: NewChip: number of PEs must be >= 1, got %d", model, numPEs)
	}
	if g == nil {
		return fmt.Errorf("%s: NewChip: graph is nil", model)
	}
	if len(plans) == 0 {
		return fmt.Errorf("%s: NewChip: no plans given", model)
	}
	for i, pl := range plans {
		if err := pl.Validate(); err != nil {
			return fmt.Errorf("%s: NewChip: plan %d: %w", model, i, err)
		}
	}
	return nil
}

// NewChipWithScheduler builds the chip with a custom root scheduler, for
// root-ordering studies (locality and load-balance policies, §6.3); a
// nil scheduler gets the default ID-order handout. Degenerate
// configurations fail fast: numPEs must be positive (the public Simulate
// façade and NewChipErr report the same condition as an error).
func NewChipWithScheduler(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan, sched *accel.RootScheduler) *Chip {
	if numPEs < 1 {
		panic(fmt.Sprintf("flexminer: NewChip: number of PEs must be >= 1, got %d", numPEs))
	}
	if sched == nil {
		sched = accel.NewRootScheduler(g.NumVertices())
	}
	hier := mem.NewHierarchy(sharedCacheBytes)
	c := &Chip{Hier: hier, sched: sched}
	net := noc.New(noc.DefaultConfig(), numPEs)
	for i := 0; i < numPEs; i++ {
		port := noc.NewPort(net, i, hier.Shared)
		pe := NewPE(cfg, g, plans, sched, port)
		pe.id = i
		c.PEs = append(c.PEs, pe)
		c.ports = append(c.ports, port)
	}
	return c
}

// RootsTotal returns the number of search-tree roots the chip's
// scheduler was built with.
func (c *Chip) RootsTotal() int { return c.sched.Total() }

// RootsDispatched returns the number of roots handed to PEs so far — the
// completed-root progress measure of a partial run.
func (c *Chip) RootsDispatched() int { return c.sched.Total() - c.sched.Remaining() }

// SetTracer attaches an event tracer to every PE, every NoC port, and
// the DRAM model; nil detaches, restoring the zero-overhead path.
func (c *Chip) SetTracer(t telemetry.Tracer) {
	for _, pe := range c.PEs {
		pe.trc = t
	}
	if t == nil {
		for _, p := range c.ports {
			p.Obs = nil
		}
		c.Hier.DRAM.SetObserver(nil)
		return
	}
	for _, p := range c.ports {
		p.Obs = t
	}
	c.Hier.DRAM.SetObserver(t)
}

// Run simulates the chip to completion.
func (c *Chip) Run() accel.Result { return c.RunWithProgress(0, nil) }

// RunWithProgress simulates the chip to completion, invoking fn with a
// progress snapshot every `every` scheduling quanta (0 disables).
func (c *Chip) RunWithProgress(every int64, fn func(accel.Progress)) accel.Result {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	return c.assemble(accel.RunWithProgress(pes, every, fn))
}

// RunCtx simulates the chip with cancellation and panic recovery: a
// fired context stops the run within accel.CancelCheckQuantum scheduling
// quanta and returns the partial Result assembled from everything
// simulated so far alongside a *simerr.SimError wrapping ctx.Err(). A
// panic inside a PE step returns the same way instead of crashing.
func (c *Chip) RunCtx(ctx context.Context) (accel.Result, error) {
	return c.RunCtxWithProgress(ctx, 0, nil)
}

// RunCtxWithProgress is RunCtx with the periodic observer of
// RunWithProgress.
func (c *Chip) RunCtxWithProgress(ctx context.Context, every int64, fn func(accel.Progress)) (accel.Result, error) {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan, err := accel.RunCtxWithProgress(ctx, pes, every, fn)
	return c.assemble(makespan), err
}

// RunParallel simulates the chip to completion on the bounded-lag
// parallel engine. Results depend only on pcfg.Window, never on
// pcfg.Workers; Window=1 matches Run exactly (accel.RunParallel).
func (c *Chip) RunParallel(pcfg accel.ParallelConfig) (accel.Result, error) {
	return c.RunParallelWithProgress(pcfg, 0, nil)
}

// RunParallelWithProgress is RunParallel with a progress callback fired
// at epoch barriers, at least every `every` committed quanta.
func (c *Chip) RunParallelWithProgress(pcfg accel.ParallelConfig, every int64, fn func(accel.Progress)) (accel.Result, error) {
	return c.RunParallelCtxWithProgress(context.Background(), pcfg, every, fn)
}

// RunParallelCtx is RunParallel with cancellation and panic recovery: a
// fired context stops the run within one epoch window, returning the
// partial Result of everything committed so far alongside a
// *simerr.SimError wrapping ctx.Err(); engine goroutine panics return
// the same way instead of crashing the host.
func (c *Chip) RunParallelCtx(ctx context.Context, pcfg accel.ParallelConfig) (accel.Result, error) {
	return c.RunParallelCtxWithProgress(ctx, pcfg, 0, nil)
}

// RunParallelCtxWithProgress is RunParallelCtx with the progress
// callback of RunParallelWithProgress.
func (c *Chip) RunParallelCtxWithProgress(ctx context.Context, pcfg accel.ParallelConfig, every int64, fn func(accel.Progress)) (accel.Result, error) {
	pes := make([]accel.SpecPE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan, err := accel.RunParallelCtxWithProgress(ctx, pes, c.Hier, c.ports, pcfg, every, fn)
	if err != nil && makespan == 0 {
		// Config-validation failures happen before any simulation; keep
		// the legacy zero Result so callers can't mistake them for runs.
		return accel.Result{}, err
	}
	return c.assemble(makespan), err
}

// assemble rolls the per-PE outcomes of a completed run into a Result.
func (c *Chip) assemble(makespan mem.Cycles) accel.Result {
	c.makespan = makespan
	res := accel.Result{
		Cycles:      makespan,
		SharedCache: c.Hier.Shared.Stats(),
		DRAM:        c.Hier.DRAM.Stats(),
	}
	for _, pe := range c.PEs {
		res.Count += pe.Count()
		res.Tasks += pe.Tasks()
		res.PEBusy += pe.Time()
		bd := pe.Breakdown()
		bd.Idle = makespan - pe.Time()
		res.Breakdown.Accumulate(bd)
	}
	return res
}

// PERecords returns each PE's telemetry record for the completed run.
// Call after Run.
func (c *Chip) PERecords() []telemetry.PERecord {
	out := make([]telemetry.PERecord, len(c.PEs))
	for i, pe := range c.PEs {
		bd := pe.Breakdown()
		bd.Idle = c.makespan - pe.Time()
		out[i] = telemetry.PERecord{
			PE:         i,
			Cycles:     c.makespan,
			FinishedAt: pe.Time(),
			Breakdown:  bd,
			Tasks:      pe.Tasks(),
			Count:      pe.Count(),
		}
	}
	return out
}
