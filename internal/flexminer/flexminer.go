// Package flexminer models the paper's baseline accelerator, FlexMiner
// (ISCA '21), as reimplemented by the FINGERS authors for their
// methodology (§5): multiple PEs exploit only coarse-grained tree-level
// parallelism; each PE executes a strict DFS with one merge-based compute
// unit processing one element per cycle, so neighbor-list fetch latencies
// are fully exposed by the DFS dependency chain (§2.3), and a neighbor
// list too large for the PE-private cache is refetched for every set
// operation that consumes it (§3.3, Figure 3).
//
// As in the paper's own reimplementation, the c-map module is omitted:
// candidate sets are cached in the PE private cache instead (§5).
package flexminer

import (
	"fingers/internal/accel"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/mine"
	"fingers/internal/noc"
	"fingers/internal/plan"
)

// Config parameterizes a FlexMiner PE.
type Config struct {
	// PrivateCacheBytes is the PE-local cache for candidate sets and the
	// current neighbor list; lists larger than this are refetched per set
	// operation.
	PrivateCacheBytes int64
	// TaskOverheadCycles is the fixed scheduling cost per task.
	TaskOverheadCycles mem.Cycles
}

// DefaultConfig matches the paper's FlexMiner setup.
func DefaultConfig() Config {
	return Config{PrivateCacheBytes: 32 << 10, TaskOverheadCycles: 4}
}

// workItem is one pending task: start a new root tree or extend a node.
type workItem struct {
	engine int
	start  bool
	root   uint32
	node   *mine.Node
	cand   uint32
}

// PE is one FlexMiner processing element.
type PE struct {
	cfg     Config
	g       *graph.Graph
	engines []*mine.Engine
	roots   *accel.RootScheduler
	shared  accel.MemPort
	now     mem.Cycles
	count   uint64
	tasks   int64
	stack   []workItem
}

// NewPE builds a PE mining the given plans (one for single-pattern runs,
// several for multi-pattern) against the shared cache.
func NewPE(cfg Config, g *graph.Graph, plans []*plan.Plan, roots *accel.RootScheduler, shared accel.MemPort) *PE {
	pe := &PE{cfg: cfg, g: g, roots: roots, shared: shared}
	for _, pl := range plans {
		pe.engines = append(pe.engines, mine.NewEngine(g, pl))
	}
	return pe
}

// Time returns the PE's local clock.
func (pe *PE) Time() mem.Cycles { return pe.now }

// Count returns the embeddings found so far.
func (pe *PE) Count() uint64 { return pe.count }

// Tasks returns the number of extension tasks executed.
func (pe *PE) Tasks() int64 { return pe.tasks }

// Step executes one task in DFS order.
func (pe *PE) Step() bool {
	if len(pe.stack) == 0 {
		v, ok := pe.roots.Next()
		if !ok {
			return false
		}
		// The trunks of all patterns share the root (multi-pattern, §2.1);
		// push one start item per plan so the later ones reuse the
		// freshly cached neighbor list.
		for i := len(pe.engines) - 1; i >= 0; i-- {
			pe.stack = append(pe.stack, workItem{engine: i, start: true, root: v})
		}
		return true
	}
	item := pe.stack[len(pe.stack)-1]
	pe.stack = pe.stack[:len(pe.stack)-1]
	e := pe.engines[item.engine]

	var node *mine.Node
	var info mine.TaskInfo
	if item.start {
		node, info = e.Start(item.root)
	} else {
		node, info = e.Extend(item.node, item.cand)
	}
	pe.charge(info)

	if node.Level == e.Plan.K()-2 {
		pe.count += e.LeafCount(node)
		return true
	}
	cands := e.Candidates(node)
	for i := len(cands) - 1; i >= 0; i-- {
		pe.stack = append(pe.stack, workItem{engine: item.engine, node: node, cand: cands[i]})
	}
	return true
}

// charge advances the PE clock by the task's cost under the FlexMiner
// model: exposed serial fetches, then serial merge compute at one element
// per cycle, with per-op refetch of neighbor lists that overflow the
// private cache.
func (pe *PE) charge(info mine.TaskInfo) {
	pe.tasks++
	pe.now += pe.cfg.TaskOverheadCycles
	// DFS dependency: each fetch is fully exposed before compute starts.
	fetched := make(map[uint32]bool, len(info.FetchVertices))
	for _, v := range info.FetchVertices {
		if fetched[v] {
			continue
		}
		fetched[v] = true
		pe.now = pe.shared.Access(pe.now, pe.g.NeighborAddr(v), pe.g.NeighborBytes(v))
	}
	// Serial set operations on the single merge unit. Sequential updates
	// refetch a long input that does not fit in the private cache
	// (Figure 3's motivating inefficiency).
	used := make(map[uint32]bool, 2)
	for _, op := range info.Ops {
		if used[op.LongVertex] && pe.g.NeighborBytes(op.LongVertex) > pe.cfg.PrivateCacheBytes {
			pe.now = pe.shared.Access(pe.now, pe.g.NeighborAddr(op.LongVertex), pe.g.NeighborBytes(op.LongVertex))
		}
		used[op.LongVertex] = true
		// A candidate set spilled beyond the private cache is read back
		// through the shared cache.
		if int64(len(op.Short))*4 > pe.cfg.PrivateCacheBytes {
			pe.now = pe.shared.Access(pe.now, spillAddr(pe.g), int64(len(op.Short))*4)
		}
		pe.now += mem.Cycles(len(op.Short) + len(op.Long))
	}
}

// spillAddr places candidate-set spill traffic in an address region
// beyond the graph adjacency data.
func spillAddr(g *graph.Graph) int64 { return g.TotalAdjacencyBytes() + (1 << 20) }

// Chip assembles a multi-PE FlexMiner accelerator.
type Chip struct {
	PEs  []*PE
	Hier *mem.Hierarchy
}

// NewChip builds a FlexMiner chip with numPEs PEs. sharedCacheBytes = 0
// keeps the paper's 4 MB default.
func NewChip(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans,
		accel.NewRootScheduler(g.NumVertices()))
}

// NewChipWithScheduler builds the chip with a custom root scheduler, for
// root-ordering studies (locality and load-balance policies, §6.3).
func NewChipWithScheduler(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan, sched *accel.RootScheduler) *Chip {
	hier := mem.NewHierarchy(sharedCacheBytes)
	c := &Chip{Hier: hier}
	net := noc.New(noc.DefaultConfig(), numPEs)
	for i := 0; i < numPEs; i++ {
		c.PEs = append(c.PEs, NewPE(cfg, g, plans, sched, noc.NewPort(net, i, hier.Shared)))
	}
	return c
}

// Run simulates the chip to completion.
func (c *Chip) Run() accel.Result {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan := accel.Run(pes)
	res := accel.Result{
		Cycles:      makespan,
		SharedCache: c.Hier.Shared.Stats(),
		DRAM:        c.Hier.DRAM.Stats(),
	}
	for _, pe := range c.PEs {
		res.Count += pe.Count()
		res.Tasks += pe.Tasks()
		res.PEBusy += pe.Time()
	}
	return res
}
