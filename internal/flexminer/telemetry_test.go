package flexminer

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/telemetry"
)

// TestFlexBreakdownSumsToMakespan checks the baseline's cycle
// attribution: per-PE compute + stall + overhead equals the finishing
// time, and the idle-completed buckets sum to the makespan.
func TestFlexBreakdownSumsToMakespan(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 31)
	pls := compiled(t, "tt")
	chip := mustChip(t, DefaultConfig(), 3, 0, g, pls)
	res := chip.Run()
	var roll telemetry.Breakdown
	for _, r := range chip.PERecords() {
		bd := r.Breakdown
		if busy := bd.Compute + bd.MemStall + bd.Overhead; busy != r.FinishedAt {
			t.Errorf("PE %d: compute+stall+overhead = %d, finishing time %d", r.PE, busy, r.FinishedAt)
		}
		if bd.Total() != res.Cycles {
			t.Errorf("PE %d: breakdown total %d != makespan %d", r.PE, bd.Total(), res.Cycles)
		}
		roll.Accumulate(bd)
	}
	if roll != res.Breakdown {
		t.Errorf("Result.Breakdown %+v != rollup %+v", res.Breakdown, roll)
	}
	// The strict-DFS baseline exposes every fetch, so stalls must be a
	// visible share of the makespan on a cold cache.
	if res.Breakdown.MemStall == 0 {
		t.Error("FlexMiner run shows zero exposed memory stall")
	}
}

// TestFlexTracerSeesEventsWithoutPerturbing mirrors the FINGERS test on
// the baseline model.
func TestFlexTracerSeesEventsWithoutPerturbing(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 37)
	pls := compiled(t, "tc")
	plain := mustChip(t, DefaultConfig(), 2, 0, g, pls).Run()
	var cnt telemetry.Counting
	chip := mustChip(t, DefaultConfig(), 2, 0, g, pls)
	chip.SetTracer(&cnt)
	traced := chip.Run()
	if plain != traced {
		t.Errorf("tracer changed the simulation:\n%+v\n%+v", plain, traced)
	}
	if cnt.TaskGroups == 0 || cnt.SetOps == 0 || cnt.CacheAccesses == 0 {
		t.Errorf("tracer saw no events: %+v", cnt)
	}
}
