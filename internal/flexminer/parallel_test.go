package flexminer

import (
	"testing"

	"fingers/internal/accel"
	"fingers/internal/graph/gen"
	"fingers/internal/mem"
)

// TestFlexParallelWindow1MatchesSerial: the equivalence oracle for the
// FlexMiner chip — with Window=1 the parallel engine reproduces the
// serial Result exactly at any worker count.
func TestFlexParallelWindow1MatchesSerial(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 71)
	for _, name := range []string{"tc", "tt", "cyc"} {
		pls := compiled(t, name)
		for _, pes := range []int{1, 4, 7} {
			serial := mustChip(t, DefaultConfig(), pes, 0, g, pls).Run()
			for _, workers := range []int{1, 3, 8} {
				par, err := mustChip(t, DefaultConfig(), pes, 0, g, pls).
					RunParallel(accel.ParallelConfig{Window: 1, Workers: workers})
				if err != nil {
					t.Fatalf("%s pes=%d workers=%d: %v", name, pes, workers, err)
				}
				if par != serial {
					t.Errorf("%s pes=%d workers=%d: Window=1 diverges from serial:\nserial %+v\npar    %+v",
						name, pes, workers, serial, par)
				}
			}
		}
	}
}

// TestFlexParallelCountsAndWorkerInvariance: counts are bit-identical at
// every window, and the whole Result depends only on the window.
func TestFlexParallelCountsAndWorkerInvariance(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 77)
	pls := compiled(t, "tt")
	serial := mustChip(t, DefaultConfig(), 6, 0, g, pls).Run()
	for _, win := range []mem.Cycles{1, 64, accel.DefaultWindow, 1 << 20} {
		var want accel.Result
		for i, workers := range []int{1, 4} {
			par, err := mustChip(t, DefaultConfig(), 6, 0, g, pls).
				RunParallel(accel.ParallelConfig{Window: win, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Count != serial.Count || par.Tasks != serial.Tasks {
				t.Errorf("window=%d workers=%d: count/tasks diverge: serial %d/%d, parallel %d/%d",
					win, workers, serial.Count, serial.Tasks, par.Count, par.Tasks)
			}
			if i == 0 {
				want = par
			} else if par != want {
				t.Errorf("window=%d: workers=%d result differs from workers=1:\n%+v\n%+v",
					win, workers, par, want)
			}
		}
	}
}

// TestFlexNewChipRejectsNonPositivePEs mirrors the fingers-side check.
func TestFlexNewChipRejectsNonPositivePEs(t *testing.T) {
	g := gen.PowerLawCluster(50, 3, 0.4, 7)
	pls := compiled(t, "tc")
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewChip with %d PEs did not panic", n)
				}
			}()
			NewChip(DefaultConfig(), n, 0, g, pls)
		}()
	}
}
