package flexminer

import (
	"testing"

	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

func compiled(t *testing.T, name string) []*plan.Plan {
	t.Helper()
	p, err := pattern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return []*plan.Plan{plan.MustCompile(p, plan.Options{})}
}

// mustChip builds a chip through the validating constructor, failing the
// test on error. Only the panic-contract test still calls the deprecated
// NewChip directly.
func mustChip(tb testing.TB, cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	tb.Helper()
	chip, err := NewChipErr(cfg, numPEs, sharedCacheBytes, g, plans)
	if err != nil {
		tb.Fatal(err)
	}
	return chip
}

func TestChipCountMatchesReference(t *testing.T) {
	g := gen.PowerLawCluster(350, 5, 0.5, 99)
	for _, name := range []string{"tc", "4cl", "tt", "cyc", "dia"} {
		pls := compiled(t, name)
		want := mine.Count(g, pls[0])
		for _, pes := range []int{1, 3, 8} {
			res := mustChip(t, DefaultConfig(), pes, 0, g, pls).Run()
			if res.Count != want {
				t.Errorf("%s with %d PEs: count = %d, want %d", name, pes, res.Count, want)
			}
		}
	}
}

func TestTimeAdvancesMonotonically(t *testing.T) {
	g := gen.ErdosRenyi(100, 400, 7)
	pls := compiled(t, "tc")
	res := mustChip(t, DefaultConfig(), 2, 0, g, pls).Run()
	if res.Cycles <= 0 {
		t.Errorf("cycles = %d", res.Cycles)
	}
	if res.Tasks <= 0 {
		t.Errorf("tasks = %d", res.Tasks)
	}
}

// TestRefetchPenalty: with a tiny private cache, long neighbor lists must
// be refetched per set operation, so the run takes longer — Figure 3's
// motivating inefficiency.
func TestRefetchPenalty(t *testing.T) {
	g := gen.PowerLawCluster(300, 12, 0.4, 5) // high degrees → long lists
	pls := compiled(t, "tt")                  // two ops per task share N(u1)
	big := DefaultConfig()
	small := DefaultConfig()
	small.PrivateCacheBytes = 16 // essentially no private cache
	resBig := mustChip(t, big, 1, 0, g, pls).Run()
	resSmall := mustChip(t, small, 1, 0, g, pls).Run()
	if resSmall.Count != resBig.Count {
		t.Fatal("private cache size changed the answer")
	}
	if resSmall.Cycles <= resBig.Cycles {
		t.Errorf("no refetch penalty: small %d ≤ big %d", resSmall.Cycles, resBig.Cycles)
	}
}

// TestMorePEsScale checks coarse-grained scaling of the baseline.
func TestMorePEsScale(t *testing.T) {
	g := gen.PowerLawCluster(500, 5, 0.5, 55)
	pls := compiled(t, "tc")
	one := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
	eight := mustChip(t, DefaultConfig(), 8, 0, g, pls).Run()
	if eight.Cycles >= one.Cycles {
		t.Errorf("8 PEs (%d) not faster than 1 (%d)", eight.Cycles, one.Cycles)
	}
}

func TestSharedCacheStatsPopulated(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.5, 77)
	pls := compiled(t, "tc")
	res := mustChip(t, DefaultConfig(), 2, 0, g, pls).Run()
	if res.SharedCache.LineAccesses == 0 {
		t.Error("no shared-cache accesses recorded")
	}
	if res.DRAM.BytesMoved == 0 {
		t.Error("no DRAM traffic recorded")
	}
}
