// Package noc models the network-on-chip connecting the PEs to the
// shared cache (Figure 5). The model is a 2D mesh with XY routing and a
// centrally placed cache node: each PE's requests pay a per-hop latency
// both ways. Queueing inside routers is not modeled — the shared cache
// and DRAM bandwidth models already capture the throughput limits the
// evaluation depends on — so the NoC contributes a deterministic per-PE
// round-trip latency.
package noc

import (
	"fmt"

	"fingers/internal/mem"
)

// Config describes the mesh.
type Config struct {
	// HopLatency is the per-hop router+link traversal cost in cycles.
	HopLatency mem.Cycles
}

// DefaultConfig uses a conventional 2-cycle hop.
func DefaultConfig() Config { return Config{HopLatency: 2} }

// Network is a 2D mesh NoC for a given PE count: PEs occupy the mesh
// nodes of a near-square grid and the shared cache sits at the mesh
// center.
type Network struct {
	cfg            Config
	cols, rows     int
	cacheX, cacheY int
}

// New builds the mesh for numPEs processing elements.
func New(cfg Config, numPEs int) *Network {
	if numPEs < 1 {
		numPEs = 1
	}
	cols := 1
	for cols*cols < numPEs {
		cols++
	}
	rows := (numPEs + cols - 1) / cols
	return &Network{
		cfg:    cfg,
		cols:   cols,
		rows:   rows,
		cacheX: cols / 2,
		cacheY: rows / 2,
	}
}

// Shape returns the mesh dimensions (columns, rows).
func (n *Network) Shape() (cols, rows int) { return n.cols, n.rows }

// position returns PE i's mesh coordinates (row-major placement).
func (n *Network) position(pe int) (x, y int) {
	return pe % n.cols, pe / n.cols
}

// Hops returns the XY-routing hop count between PE pe and the cache node.
func (n *Network) Hops(pe int) int {
	x, y := n.position(pe)
	dx := x - n.cacheX
	if dx < 0 {
		dx = -dx
	}
	dy := y - n.cacheY
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// RoundTrip returns the request+response NoC latency for PE pe: two
// traversals of its hop distance, at least one hop each way (the cache
// port itself).
func (n *Network) RoundTrip(pe int) mem.Cycles {
	h := n.Hops(pe)
	if h < 1 {
		h = 1
	}
	return 2 * mem.Cycles(h) * n.cfg.HopLatency
}

// MeanRoundTrip returns the average round-trip latency over numPEs PEs,
// for reporting.
func (n *Network) MeanRoundTrip(numPEs int) float64 {
	total := mem.Cycles(0)
	for pe := 0; pe < numPEs; pe++ {
		total += n.RoundTrip(pe)
	}
	return float64(total) / float64(numPEs)
}

// String describes the topology.
func (n *Network) String() string {
	return fmt.Sprintf("mesh %d×%d, cache at (%d,%d), %d-cycle hops",
		n.cols, n.rows, n.cacheX, n.cacheY, n.cfg.HopLatency)
}

// AccessObserver receives one event per shared-cache access made through
// a Port, attributed to the requesting PE. telemetry.Tracer satisfies it.
type AccessObserver interface {
	// CacheAccess reports an access covering bytes that touched lines
	// cache lines, of which misses missed, issued at at and completing
	// at done (NoC round trip included).
	CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles)
}

// Port is one PE's connection to the shared cache through the NoC: it
// forwards accesses with the PE's round-trip latency added. It implements
// the memory interface both accelerator PE models consume.
type Port struct {
	Cache *mem.Cache
	Trip  mem.Cycles
	// PE is the owning PE's index, for event attribution.
	PE int
	// Obs, when non-nil, observes every access through this port.
	Obs AccessObserver
}

// NewPort returns PE pe's port onto the shared cache through network n.
func NewPort(n *Network, pe int, cache *mem.Cache) *Port {
	return &Port{Cache: cache, Trip: n.RoundTrip(pe), PE: pe}
}

// Access reads the byte range through the NoC: the request departs at
// now, traverses to the cache, and the completion includes the response
// traversal.
func (p *Port) Access(now mem.Cycles, addr, bytes int64) mem.Cycles {
	if p.Obs == nil {
		return p.Cache.Access(now+p.Trip/2, addr, bytes) + p.Trip/2
	}
	// The event loop interleaves PEs but never preempts mid-access, so
	// the stats delta around this call is exactly this access's lines.
	before := p.Cache.Stats()
	done := p.Cache.Access(now+p.Trip/2, addr, bytes) + p.Trip/2
	after := p.Cache.Stats()
	p.Obs.CacheAccess(p.PE, now, bytes,
		after.LineAccesses-before.LineAccesses, after.LineMisses-before.LineMisses, done)
	return done
}

// Probe reports residency without timing or statistics side effects.
func (p *Port) Probe(addr, bytes int64) bool { return p.Cache.Probe(addr, bytes) }

// SpecPort is the deferred-access counterpart of a Port for the parallel
// epoch engine: it routes one PE's accesses through a speculative memory
// view instead of the live shared cache, preserving the port's NoC round
// trip, and reports the line/miss geometry each access resolved to so the
// engine can validate it against the live state at commit time.
type SpecPort struct {
	View *mem.SpecMem
	Trip mem.Cycles
	// PE is the owning PE's index, for event attribution.
	PE int
}

// Speculative returns a speculative twin of the port over the given view.
func (p *Port) Speculative(view *mem.SpecMem) *SpecPort {
	return &SpecPort{View: view, Trip: p.Trip, PE: p.PE}
}

// Access reads the byte range through the view with the port's NoC
// round trip applied exactly as Port.Access does.
func (s *SpecPort) Access(now mem.Cycles, addr, bytes int64) (done mem.Cycles, lines, misses int64) {
	done, lines, misses = s.View.Access(now+s.Trip/2, addr, bytes)
	return done + s.Trip/2, lines, misses
}

// Probe reports residency in the view without side effects.
func (s *SpecPort) Probe(addr, bytes int64) bool { return s.View.Probe(addr, bytes) }
