package noc

import (
	"testing"

	"fingers/internal/mem"
)

func TestMeshShape(t *testing.T) {
	cases := []struct {
		pes        int
		cols, rows int
	}{
		{1, 1, 1},
		{4, 2, 2},
		{20, 5, 4},
		{40, 7, 6},
	}
	for _, c := range cases {
		n := New(DefaultConfig(), c.pes)
		cols, rows := n.Shape()
		if cols != c.cols || rows != c.rows {
			t.Errorf("%d PEs: mesh %d×%d, want %d×%d", c.pes, cols, rows, c.cols, c.rows)
		}
		if cols*rows < c.pes {
			t.Errorf("%d PEs do not fit mesh %d×%d", c.pes, cols, rows)
		}
	}
}

func TestHopsSymmetricAndBounded(t *testing.T) {
	n := New(DefaultConfig(), 20)
	cols, rows := n.Shape()
	maxHops := cols + rows
	for pe := 0; pe < 20; pe++ {
		h := n.Hops(pe)
		if h < 0 || h > maxHops {
			t.Errorf("PE %d: hops = %d", pe, h)
		}
	}
	// The PE at the cache node has zero hops but a minimum 1-hop trip.
	center := (rows/2)*cols + cols/2
	if n.Hops(center) != 0 {
		t.Errorf("center PE hops = %d", n.Hops(center))
	}
	if n.RoundTrip(center) != 2*DefaultConfig().HopLatency {
		t.Errorf("center round trip = %d", n.RoundTrip(center))
	}
}

func TestCornerFartherThanCenter(t *testing.T) {
	n := New(DefaultConfig(), 20)
	cols, rows := n.Shape()
	center := (rows/2)*cols + cols/2
	if n.RoundTrip(0) <= n.RoundTrip(center) {
		t.Errorf("corner (%d) should pay more than center (%d)", n.RoundTrip(0), n.RoundTrip(center))
	}
}

func TestMeanRoundTrip(t *testing.T) {
	n := New(DefaultConfig(), 16)
	mean := n.MeanRoundTrip(16)
	if mean <= 0 {
		t.Errorf("mean round trip = %v", mean)
	}
}

func TestPortAddsLatency(t *testing.T) {
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	cache := mem.NewCache(mem.DefaultSharedCacheConfig(), dram)
	n := New(DefaultConfig(), 4)
	port := NewPort(n, 0, cache)
	direct := cache.Access(0, 0, 64)
	through := port.Access(direct, 0, 64) // now a hit
	hitOnly := cache.Config().HitLatency
	if through-direct != hitOnly+port.Trip {
		t.Errorf("port latency = %d, want hit %d + trip %d", through-direct, hitOnly, port.Trip)
	}
	if !port.Probe(0, 64) {
		t.Error("probe through port failed")
	}
}

func TestStringDescribesTopology(t *testing.T) {
	if New(DefaultConfig(), 20).String() == "" {
		t.Error("empty description")
	}
}

func TestZeroPEs(t *testing.T) {
	n := New(DefaultConfig(), 0)
	if n.RoundTrip(0) <= 0 {
		t.Error("degenerate mesh has no latency")
	}
}

type recordingObserver struct {
	pe     int
	at     mem.Cycles
	bytes  int64
	lines  int64
	misses int64
	done   mem.Cycles
	calls  int
}

func (r *recordingObserver) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
	r.pe, r.at, r.bytes, r.lines, r.misses, r.done = pe, at, bytes, lines, misses, done
	r.calls++
}

func TestPortObserverSeesAccess(t *testing.T) {
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	cache := mem.NewCache(mem.DefaultSharedCacheConfig(), dram)
	n := New(DefaultConfig(), 4)
	port := NewPort(n, 2, cache)
	var obs recordingObserver
	port.Obs = &obs
	done := port.Access(100, 0, 200) // cold: 4 lines, 4 misses
	if obs.calls != 1 {
		t.Fatalf("observer called %d times", obs.calls)
	}
	if obs.pe != 2 || obs.at != 100 || obs.bytes != 200 || obs.done != done {
		t.Errorf("observer saw pe=%d at=%d bytes=%d done=%d (port done %d)", obs.pe, obs.at, obs.bytes, obs.done, done)
	}
	if obs.lines != 4 || obs.misses != 4 {
		t.Errorf("cold access attribution: lines=%d misses=%d, want 4/4", obs.lines, obs.misses)
	}
	// A repeat access hits; the delta attribution must show zero misses.
	port.Access(done, 0, 200)
	if obs.misses != 0 || obs.lines != 4 {
		t.Errorf("hot access attribution: lines=%d misses=%d, want 4/0", obs.lines, obs.misses)
	}
}

func TestPortObserverDoesNotChangeTiming(t *testing.T) {
	mk := func(withObs bool) mem.Cycles {
		dram := mem.NewDRAM(mem.DefaultDRAMConfig())
		cache := mem.NewCache(mem.DefaultSharedCacheConfig(), dram)
		port := NewPort(New(DefaultConfig(), 4), 1, cache)
		if withObs {
			port.Obs = &recordingObserver{}
		}
		t0 := port.Access(0, 0, 512)
		return port.Access(t0, 4096, 512)
	}
	if plain, observed := mk(false), mk(true); plain != observed {
		t.Errorf("observer changed timing: %d vs %d", plain, observed)
	}
}

// TestSpecPortMirrorsPort: a speculative twin must resolve an access
// sequence to exactly the timings the live port would, without touching
// the live cache, and its probes must see speculative installs.
func TestSpecPortMirrorsPort(t *testing.T) {
	live := mem.NewHierarchy(0)
	spec := mem.NewHierarchy(0)
	n := New(DefaultConfig(), 4)
	livePort := NewPort(n, 1, live.Shared)
	specPort := NewPort(n, 1, spec.Shared).Speculative(spec.Speculate())

	seq := []struct {
		now   mem.Cycles
		addr  int64
		bytes int64
	}{{0, 0, 200}, {500, 4096, 64}, {900, 0, 200}, {1400, 1 << 20, 128}}
	for _, a := range seq {
		want := livePort.Access(a.now, a.addr, a.bytes)
		got, lines, _ := specPort.Access(a.now, a.addr, a.bytes)
		if got != want {
			t.Errorf("access %+v: spec done %d, live done %d", a, got, want)
		}
		if lines <= 0 {
			t.Errorf("access %+v: lines = %d", a, lines)
		}
	}
	// The speculative traffic never reached the twin's live cache...
	if st := spec.Shared.Stats(); st.LineAccesses != 0 {
		t.Errorf("live cache behind the view saw %d line accesses", st.LineAccesses)
	}
	// ...yet probes through the spec port see the overlay's installs.
	if !specPort.Probe(0, 200) {
		t.Error("spec probe missed a speculatively installed range")
	}
	if specPort.Probe(1<<30, 64) {
		t.Error("spec probe hit an untouched range")
	}
}
