package noc

import (
	"testing"

	"fingers/internal/mem"
)

func TestMeshShape(t *testing.T) {
	cases := []struct {
		pes        int
		cols, rows int
	}{
		{1, 1, 1},
		{4, 2, 2},
		{20, 5, 4},
		{40, 7, 6},
	}
	for _, c := range cases {
		n := New(DefaultConfig(), c.pes)
		cols, rows := n.Shape()
		if cols != c.cols || rows != c.rows {
			t.Errorf("%d PEs: mesh %d×%d, want %d×%d", c.pes, cols, rows, c.cols, c.rows)
		}
		if cols*rows < c.pes {
			t.Errorf("%d PEs do not fit mesh %d×%d", c.pes, cols, rows)
		}
	}
}

func TestHopsSymmetricAndBounded(t *testing.T) {
	n := New(DefaultConfig(), 20)
	cols, rows := n.Shape()
	maxHops := cols + rows
	for pe := 0; pe < 20; pe++ {
		h := n.Hops(pe)
		if h < 0 || h > maxHops {
			t.Errorf("PE %d: hops = %d", pe, h)
		}
	}
	// The PE at the cache node has zero hops but a minimum 1-hop trip.
	center := (rows/2)*cols + cols/2
	if n.Hops(center) != 0 {
		t.Errorf("center PE hops = %d", n.Hops(center))
	}
	if n.RoundTrip(center) != 2*DefaultConfig().HopLatency {
		t.Errorf("center round trip = %d", n.RoundTrip(center))
	}
}

func TestCornerFartherThanCenter(t *testing.T) {
	n := New(DefaultConfig(), 20)
	cols, rows := n.Shape()
	center := (rows/2)*cols + cols/2
	if n.RoundTrip(0) <= n.RoundTrip(center) {
		t.Errorf("corner (%d) should pay more than center (%d)", n.RoundTrip(0), n.RoundTrip(center))
	}
}

func TestMeanRoundTrip(t *testing.T) {
	n := New(DefaultConfig(), 16)
	mean := n.MeanRoundTrip(16)
	if mean <= 0 {
		t.Errorf("mean round trip = %v", mean)
	}
}

func TestPortAddsLatency(t *testing.T) {
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	cache := mem.NewCache(mem.DefaultSharedCacheConfig(), dram)
	n := New(DefaultConfig(), 4)
	port := NewPort(n, 0, cache)
	direct := cache.Access(0, 0, 64)
	through := port.Access(direct, 0, 64) // now a hit
	hitOnly := cache.Config().HitLatency
	if through-direct != hitOnly+port.Trip {
		t.Errorf("port latency = %d, want hit %d + trip %d", through-direct, hitOnly, port.Trip)
	}
	if !port.Probe(0, 64) {
		t.Error("probe through port failed")
	}
}

func TestStringDescribesTopology(t *testing.T) {
	if New(DefaultConfig(), 20).String() == "" {
		t.Error("empty description")
	}
}

func TestZeroPEs(t *testing.T) {
	n := New(DefaultConfig(), 0)
	if n.RoundTrip(0) <= 0 {
		t.Error("degenerate mesh has no latency")
	}
}
