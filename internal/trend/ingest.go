// Directory-tree ingest: classify and parse every observability
// artifact under a root — *.jsonl run-record logs (lenient, so a
// SIGINT-torn tail cannot poison the scan) and *.json simbench reports
// (any schema vintage; other JSON such as go-test event streams is
// counted and skipped, never fatal).

package trend

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fingers/internal/simreport"
	"fingers/internal/telemetry"
)

// Skip is one ingest rejection: a whole file (Line 0) or one JSONL
// line within it.
type Skip struct {
	File   string `json:"file"`
	Line   int    `json:"line,omitempty"`
	Reason string `json:"reason"`
}

// Corpus is everything a scan collected, before series grouping.
type Corpus struct {
	// Points holds run-record points grouped by series key.
	Points map[Key][]Point
	// Bench holds every simbench report cell, across all reports.
	Bench []BenchPoint
	// Records and BenchReports count parsed inputs; RunFiles and
	// BenchFiles the files they came from.
	Records, BenchReports int
	RunFiles, BenchFiles  int
	Skips                 []Skip
	// mtime resolves a file's fallback timestamp; tests inject a fixed
	// clock so goldens do not depend on checkout times.
	mtime func(path string) (time.Time, error)
}

// ScanOptions tunes ingest. MTime overrides the file-modification-time
// fallback used for records and reports that predate the provenance
// header (nil uses os.Stat); tests inject a deterministic clock.
type ScanOptions struct {
	MTime func(path string) (time.Time, error)
}

func statMTime(path string) (time.Time, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return time.Time{}, err
	}
	return fi.ModTime().UTC(), nil
}

// NewCorpus returns an empty corpus ready for AddRunLog/AddBenchFile.
func NewCorpus(opt ScanOptions) *Corpus {
	mt := opt.MTime
	if mt == nil {
		mt = statMTime
	}
	return &Corpus{Points: map[Key][]Point{}, mtime: mt}
}

// Scan walks root and ingests every *.jsonl as a run log and every
// *.json as a simbench report, recording (not failing on) files and
// lines that do not parse. Paths in the corpus are root-relative with
// forward slashes, so output is stable across machines.
func Scan(root string, opt ScanOptions) (*Corpus, error) {
	c := NewCorpus(opt)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Artifacts never live under VCS metadata.
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		switch strings.ToLower(filepath.Ext(path)) {
		case ".jsonl":
			return c.AddRunLog(path, rel)
		case ".json":
			c.AddBenchFile(path, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.sortPoints()
	return c, nil
}

// AddFiles ingests explicitly named files (the CLI's positional args),
// classifying by extension like Scan. Unlike Scan, an unreadable path
// is an error — the user asked for that exact file.
func (c *Corpus) AddFiles(paths []string) error {
	for _, p := range paths {
		switch strings.ToLower(filepath.Ext(p)) {
		case ".jsonl":
			if err := c.AddRunLog(p, filepath.ToSlash(p)); err != nil {
				return err
			}
		case ".json":
			if _, err := os.Stat(p); err != nil {
				return err
			}
			c.AddBenchFile(p, filepath.ToSlash(p))
		default:
			return fmt.Errorf("%s: unknown artifact type (want .jsonl run log or .json simbench report)", p)
		}
	}
	c.sortPoints()
	return nil
}

// AddRunLog ingests one JSONL run-record log leniently: intact records
// become points, corrupt or foreign lines become Skips.
func (c *Corpus) AddRunLog(path, rel string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, skipped, err := telemetry.ReadRecordsLenient(f)
	if err != nil {
		c.Skips = append(c.Skips, Skip{File: rel, Reason: err.Error()})
		return nil
	}
	for _, s := range skipped {
		c.Skips = append(c.Skips, Skip{File: rel, Line: s.Line, Reason: s.Err})
	}
	if len(recs) == 0 && len(skipped) == 0 {
		return nil
	}
	c.RunFiles++
	fallback, ferr := c.mtime(path)
	for i, rec := range recs {
		p := Point{
			Tag:       rec.RunTag,
			GitRev:    rec.GitRev,
			Partial:   rec.Partial,
			Attempt:   rec.Attempt,
			ClientID:  rec.ClientID,
			Recovered: rec.RecoveredFromCrash,
			PEs:       rec.PEs,
			Cycles:    int64(rec.Cycles),
			Count:     rec.Count,
			WallNS:    rec.WallNS,
			MissRate:  rec.SharedMissRate,
			DRAMBytes: rec.DRAMBytes,
			Frac:      Frac(rec.Breakdown),
			File:      rel,
			Line:      i + 1,
		}
		if at, ok := rec.StartTime(); ok {
			p.At = at.UTC()
		} else if ferr == nil {
			p.At, p.FromMTime = fallback, true
		}
		if p.WallNS > 0 && p.Cycles > 0 {
			p.CyclesPerSec = float64(p.Cycles) / (float64(p.WallNS) / 1e9)
		}
		k := Key{Arch: rec.Arch, Graph: rec.Graph.Name, Pattern: rec.Pattern}
		c.Points[k] = append(c.Points[k], p)
		c.Records++
	}
	return nil
}

// AddBenchFile ingests one simbench report; a JSON file with a foreign
// schema (BENCH_softmine.json go-test events, say) is recorded as a
// skip, never an error. Reports without a started_at header fall back
// to file mtime — legacy committed reports stay usable, just coarsely
// ordered.
func (c *Corpus) AddBenchFile(path, rel string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		c.Skips = append(c.Skips, Skip{File: rel, Reason: err.Error()})
		return
	}
	rep, err := simreport.Parse(raw)
	if err != nil {
		// Parse errors name only the cause; Skip.File carries the path.
		c.Skips = append(c.Skips, Skip{File: rel, Reason: err.Error()})
		return
	}
	c.BenchFiles++
	c.BenchReports++
	at, fromMTime := time.Time{}, false
	if t, ok := rep.StartTime(); ok {
		at = t.UTC()
	} else if t, err := c.mtime(path); err == nil {
		at, fromMTime = t, true
	}
	for _, cell := range rep.Cells {
		c.Bench = append(c.Bench, BenchPoint{
			At:            at,
			FromMTime:     fromMTime,
			Tag:           rep.RunTag,
			GitRev:        rep.GitRev,
			Runs:          rep.Runs,
			Graph:         cell.Graph,
			Pattern:       cell.Pattern,
			SerialCPS:     cell.SerialCyclesSec,
			ParCPS:        cell.ParCyclesSec,
			Speedup:       cell.Speedup,
			Workers1:      cell.Workers1Factor,
			DivergencePct: cell.DivergencePct,
			SerialAllocs:  cell.SerialAllocs,
			Shards:        rep.Shards,
			ShardSpeedup:  cell.ShardedSpeedup,
			DenseRows:     cell.DenseRows,
			BitmapRows:    cell.BitmapRows,
			HybridBytes:   cell.HybridBytes,
			File:          rel,
		})
	}
}

// sortPoints fixes the time order of every collected series: by
// timestamp, then file, then line, so records without provenance (all
// sharing their file's mtime) keep their append order.
func (c *Corpus) sortPoints() {
	for _, pts := range c.Points {
		sort.SliceStable(pts, func(i, j int) bool {
			if !pts[i].At.Equal(pts[j].At) {
				return pts[i].At.Before(pts[j].At)
			}
			if pts[i].File != pts[j].File {
				return pts[i].File < pts[j].File
			}
			return pts[i].Line < pts[j].Line
		})
	}
	sort.SliceStable(c.Bench, func(i, j int) bool {
		if !c.Bench[i].At.Equal(c.Bench[j].At) {
			return c.Bench[i].At.Before(c.Bench[j].At)
		}
		return c.Bench[i].File < c.Bench[j].File
	})
}
