// fingers.trend/v1: the machine-readable projection of a Model, stable
// enough for CI to diff across runs and for golden tests to pin.

package trend

import (
	"encoding/json"
	"io"
	"math"
	"time"
)

// SummarySchema identifies the trend summary layout; bump on breaking
// changes.
const SummarySchema = "fingers.trend/v1"

// Summary is the fingers.trend/v1 document.
type Summary struct {
	Schema string `json:"schema"`
	// GeneratedAt is stamped by the caller (empty in golden tests so
	// output is reproducible).
	GeneratedAt   string          `json:"generated_at,omitempty"`
	Window        int             `json:"window"`
	MaxRegressPct float64         `json:"max_regress_pct"`
	Sources       Sources         `json:"sources"`
	Regressions   int             `json:"regressions"`
	Series        []SeriesSummary `json:"series"`
	Bench         []BenchSummary  `json:"bench"`
	Skips         []Skip          `json:"skips,omitempty"`
}

// Sources counts what the scan ingested and dropped.
type Sources struct {
	RunFiles   int `json:"run_files"`
	BenchFiles int `json:"bench_files"`
	Records    int `json:"records"`
	BenchCells int `json:"bench_cells"`
	Skipped    int `json:"skipped"`
}

// SeriesSummary condenses one run-record series: latest values,
// rolling statistics, breakdown evolution from the first to the newest
// point, and the regression flag if any.
type SeriesSummary struct {
	Key
	Points  int    `json:"points"`
	Partial int    `json:"partial,omitempty"`
	// Retried counts points whose run took more than one attempt;
	// Recovered counts points whose job was resurrected by journal
	// replay after a daemon crash or drain. Both zero for batch logs.
	Retried   int    `json:"retried,omitempty"`
	Recovered int    `json:"recovered,omitempty"`
	First     string `json:"first,omitempty"`
	Last      string `json:"last,omitempty"`

	LatestCycles int64   `json:"latest_cycles"`
	MeanCycles   float64 `json:"mean_cycles"`
	SigmaCycles  float64 `json:"sigma_cycles"`
	// CyclesDeltaPct is the latest point vs the rolling mean of the
	// preceding window (positive = more cycles).
	CyclesDeltaPct float64 `json:"cycles_delta_pct"`

	LatestCPS float64 `json:"latest_cps,omitempty"`
	MeanCPS   float64 `json:"mean_cps,omitempty"`
	SigmaCPS  float64 `json:"sigma_cps,omitempty"`

	LatestMissRate  float64 `json:"latest_miss_rate"`
	LatestDRAMBytes int64   `json:"latest_dram_bytes"`

	BreakdownFirst  BreakdownFrac `json:"breakdown_first"`
	BreakdownLatest BreakdownFrac `json:"breakdown_latest"`

	Regression *Regression `json:"regression,omitempty"`
}

// BenchSummary condenses one simbench cell series.
type BenchSummary struct {
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`
	Points  int    `json:"points"`
	First   string `json:"first,omitempty"`
	Last    string `json:"last,omitempty"`

	LatestSerialCPS float64 `json:"latest_serial_cps"`
	MeanSerialCPS   float64 `json:"mean_serial_cps"`
	SigmaSerialCPS  float64 `json:"sigma_serial_cps"`
	LatestSpeedup   float64 `json:"latest_speedup"`
	LatestWorkers1  float64 `json:"latest_workers1_factor"`
	LatestDivPct    float64 `json:"latest_divergence_pct"`
	// Sharded-mode columns of the newest point (simbench v3); zero when
	// the latest report was not sharded.
	Shards             int     `json:"shards,omitempty"`
	LatestShardSpeedup float64 `json:"latest_shard_speedup,omitempty"`
	// Representation-mix columns of the newest point (simbench v4);
	// zero when the latest report predates them.
	DenseRows   int   `json:"dense_rows,omitempty"`
	BitmapRows  int   `json:"bitmap_rows,omitempty"`
	HybridBytes int64 `json:"hybrid_bytes,omitempty"`

	Regression *Regression `json:"regression,omitempty"`
}

// round6 trims floats to six decimals so summaries stay readable and
// goldens stay diffable.
func round6(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1e6) / 1e6
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339)
}

func roundFrac(f BreakdownFrac) BreakdownFrac {
	return BreakdownFrac{
		Compute:  round6(f.Compute),
		Stall:    round6(f.Stall),
		Overhead: round6(f.Overhead),
		Idle:     round6(f.Idle),
	}
}

func roundRegression(r *Regression) *Regression {
	if r == nil {
		return nil
	}
	return &Regression{
		Metric:   r.Metric,
		Latest:   round6(r.Latest),
		Baseline: round6(r.Baseline),
		Sigma:    round6(r.Sigma),
		DeltaPct: round6(r.DeltaPct),
	}
}

// Summary projects the model onto the fingers.trend/v1 schema.
// generatedAt is stamped verbatim; pass "" for reproducible output.
func (m *Model) Summary(generatedAt string) Summary {
	s := Summary{
		Schema:        SummarySchema,
		GeneratedAt:   generatedAt,
		Window:        m.Window,
		MaxRegressPct: m.MaxRegressPct,
		Regressions:   m.Regressions(),
		Series:        []SeriesSummary{},
		Bench:         []BenchSummary{},
		Skips:         m.Corpus.Skips,
	}
	s.Sources = Sources{
		RunFiles:   m.Corpus.RunFiles,
		BenchFiles: m.Corpus.BenchFiles,
		Records:    m.Corpus.Records,
		BenchCells: len(m.Corpus.Bench),
		Skipped:    len(m.Corpus.Skips),
	}
	for _, sr := range m.Series {
		n := len(sr.Points)
		last := sr.Points[n-1]
		roll := sr.Roll[n-1]
		ss := SeriesSummary{
			Key:             sr.Key,
			Points:          n,
			First:           fmtTime(sr.Points[0].At),
			Last:            fmtTime(last.At),
			LatestCycles:    last.Cycles,
			MeanCycles:      round6(roll.MeanCycles),
			SigmaCycles:     round6(roll.SigmaCycles),
			LatestCPS:       round6(last.CyclesPerSec),
			MeanCPS:         round6(roll.MeanCPS),
			SigmaCPS:        round6(roll.SigmaCPS),
			LatestMissRate:  round6(last.MissRate),
			LatestDRAMBytes: last.DRAMBytes,
			BreakdownFirst:  roundFrac(sr.Points[0].Frac),
			BreakdownLatest: roundFrac(last.Frac),
			Regression:      roundRegression(sr.Flag),
		}
		for _, p := range sr.Points {
			if p.Partial {
				ss.Partial++
			}
			if p.Attempt > 1 {
				ss.Retried++
			}
			if p.Recovered {
				ss.Recovered++
			}
		}
		if n > 1 && sr.Roll[n-2].MeanCycles > 0 {
			ss.CyclesDeltaPct = round6((float64(last.Cycles) - sr.Roll[n-2].MeanCycles) / sr.Roll[n-2].MeanCycles * 100)
		}
		s.Series = append(s.Series, ss)
	}
	for _, b := range m.Bench {
		n := len(b.Points)
		last := b.Points[n-1]
		roll := b.Roll[n-1]
		s.Bench = append(s.Bench, BenchSummary{
			Graph:              b.Graph,
			Pattern:            b.Pattern,
			Points:             n,
			First:              fmtTime(b.Points[0].At),
			Last:               fmtTime(last.At),
			LatestSerialCPS:    round6(last.SerialCPS),
			MeanSerialCPS:      round6(roll.MeanCPS),
			SigmaSerialCPS:     round6(roll.SigmaCPS),
			LatestSpeedup:      round6(last.Speedup),
			LatestWorkers1:     round6(last.Workers1),
			LatestDivPct:       round6(last.DivergencePct),
			Shards:             last.Shards,
			LatestShardSpeedup: round6(last.ShardSpeedup),
			DenseRows:          last.DenseRows,
			BitmapRows:         last.BitmapRows,
			HybridBytes:        last.HybridBytes,
			Regression:         roundRegression(b.Flag),
		})
	}
	return s
}

// WriteSummary encodes s as indented JSON.
func WriteSummary(w io.Writer, s Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSummary decodes a fingers.trend/v1 document (the golden-test
// round-trip and any CI differ use this).
func ParseSummary(raw []byte) (Summary, error) {
	var s Summary
	err := json.Unmarshal(raw, &s)
	return s, err
}
