// Series construction: group the corpus into per-key series, compute
// rolling means ±1σ over a sliding window, and flag regressions of the
// latest point against the window preceding it.

package trend

import (
	"sort"
)

// DefaultWindow is the rolling-statistics window in points.
const DefaultWindow = 5

// DefaultMaxRegressPct mirrors the simbench gate's default.
const DefaultMaxRegressPct = 10.0

// Options filters and tunes series construction.
type Options struct {
	// Window is the rolling-statistics width in points (default 5).
	Window int
	// MaxRegressPct is the regression-flag threshold (default 10).
	MaxRegressPct float64
	// Arch/Graph/Pattern/Tag keep only matching series or batches;
	// empty matches everything (the viewer's situation filter).
	Arch, Graph, Pattern, Tag string
	// Last keeps only the newest N points of each series (0 = all).
	Last int
}

func (o Options) window() int {
	if o.Window > 0 {
		return o.Window
	}
	return DefaultWindow
}

func (o Options) maxRegressPct() float64 {
	if o.MaxRegressPct > 0 {
		return o.MaxRegressPct
	}
	return DefaultMaxRegressPct
}

// Roll is the rolling statistics at one point: mean and population σ
// over the window ending there (shorter near the series head).
type Roll struct {
	MeanCycles  float64 `json:"mean_cycles"`
	SigmaCycles float64 `json:"sigma_cycles"`
	// MeanCPS/SigmaCPS cover cycles/sec and are zero when the window
	// holds no wall-time data (records predating the wall_ns field).
	MeanCPS  float64 `json:"mean_cps"`
	SigmaCPS float64 `json:"sigma_cps"`
}

// Series is one (arch, graph, pattern) cell's history.
type Series struct {
	Key    Key
	Points []Point
	// Roll is aligned with Points: Roll[i] summarises the window
	// ending at Points[i].
	Roll []Roll
	// Flag is non-nil when the newest point regressed against the
	// window preceding it.
	Flag *Regression
}

// BenchSeries is one (graph, pattern) simbench cell's history across
// reports; the tracked metric is serial cycles/sec, the same quantity
// the CI gate guards.
type BenchSeries struct {
	Graph, Pattern string
	Points         []BenchPoint
	Roll           []Roll // MeanCPS/SigmaCPS of SerialCPS; cycle fields unused
	Flag           *Regression
}

// Model is the shared structure all three renderers consume.
type Model struct {
	Window        int
	MaxRegressPct float64
	Series        []*Series
	Bench         []*BenchSeries
	Corpus        *Corpus
}

// Regressions counts flagged series of both kinds.
func (m *Model) Regressions() int {
	n := 0
	for _, s := range m.Series {
		if s.Flag != nil {
			n++
		}
	}
	for _, b := range m.Bench {
		if b.Flag != nil {
			n++
		}
	}
	return n
}

// Build groups the corpus into sorted series and computes rolling
// statistics and regression flags.
func Build(c *Corpus, opt Options) *Model {
	w := opt.window()
	maxPct := opt.maxRegressPct()
	m := &Model{Window: w, MaxRegressPct: maxPct, Corpus: c}

	keys := make([]Key, 0, len(c.Points))
	for k := range c.Points {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, k := range keys {
		if !match(opt.Arch, k.Arch) || !match(opt.Graph, k.Graph) || !match(opt.Pattern, k.Pattern) {
			continue
		}
		pts := filterTag(c.Points[k], opt.Tag)
		pts = lastN(pts, opt.Last)
		if len(pts) == 0 {
			continue
		}
		s := &Series{Key: k, Points: pts}
		s.Roll = rollStats(pts, w)
		s.Flag = seriesFlag(pts, w, maxPct)
		m.Series = append(m.Series, s)
	}

	byCell := map[Key][]BenchPoint{}
	var cells []Key
	for _, bp := range c.Bench {
		if !match(opt.Graph, bp.Graph) || !match(opt.Pattern, bp.Pattern) {
			continue
		}
		if opt.Tag != "" && bp.Tag != opt.Tag {
			continue
		}
		k := Key{Graph: bp.Graph, Pattern: bp.Pattern}
		if _, seen := byCell[k]; !seen {
			cells = append(cells, k)
		}
		byCell[k] = append(byCell[k], bp)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Less(cells[j]) })
	for _, k := range cells {
		pts := byCell[k]
		if opt.Last > 0 && len(pts) > opt.Last {
			pts = pts[len(pts)-opt.Last:]
		}
		b := &BenchSeries{Graph: k.Graph, Pattern: k.Pattern, Points: pts}
		cps := make([]float64, len(pts))
		for i, p := range pts {
			cps[i] = p.SerialCPS
		}
		b.Roll = rollCPS(cps, w)
		if n := len(cps); n >= 3 {
			lo := n - 1 - w
			if lo < 0 {
				lo = 0
			}
			b.Flag = flagRegress("serial_cycles_sec", cps[n-1], cps[lo:n-1], maxPct, false)
		}
		m.Bench = append(m.Bench, b)
	}
	return m
}

func match(filter, v string) bool { return filter == "" || filter == v }

func filterTag(pts []Point, tag string) []Point {
	if tag == "" {
		return pts
	}
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.Tag == tag {
			out = append(out, p)
		}
	}
	return out
}

func lastN(pts []Point, n int) []Point {
	if n > 0 && len(pts) > n {
		return pts[len(pts)-n:]
	}
	return pts
}

// rollStats computes the windowed mean/σ of cycles and cycles/sec at
// every point. Cycles/sec averages only the points that carry wall
// time, so a series mixing old (no wall_ns) and new records still
// trends the measurable suffix.
func rollStats(pts []Point, w int) []Roll {
	out := make([]Roll, len(pts))
	for i := range pts {
		lo := i - w + 1
		if lo < 0 {
			lo = 0
		}
		var cyc, cps []float64
		for _, p := range pts[lo : i+1] {
			cyc = append(cyc, float64(p.Cycles))
			if p.CyclesPerSec > 0 {
				cps = append(cps, p.CyclesPerSec)
			}
		}
		out[i].MeanCycles, out[i].SigmaCycles = meanStd(cyc)
		if len(cps) > 0 {
			out[i].MeanCPS, out[i].SigmaCPS = meanStd(cps)
		}
	}
	return out
}

func rollCPS(cps []float64, w int) []Roll {
	out := make([]Roll, len(cps))
	for i := range cps {
		lo := i - w + 1
		if lo < 0 {
			lo = 0
		}
		out[i].MeanCPS, out[i].SigmaCPS = meanStd(cps[lo : i+1])
	}
	return out
}

// seriesFlag checks the newest point against the window before it.
// Cycles/sec is preferred when both the latest point and the baseline
// window carry wall time (a wall-clock slowdown is the actionable
// signal); otherwise simulated cycles stand in (an algorithmic
// regression — more cycles for the same cell — is still visible
// without timestamps). Partial records never participate: a truncated
// run's cycle count says nothing about speed.
func seriesFlag(pts []Point, w int, maxPct float64) *Regression {
	full := make([]Point, 0, len(pts))
	for _, p := range pts {
		if !p.Partial {
			full = append(full, p)
		}
	}
	n := len(full)
	if n < 3 {
		return nil
	}
	lo := n - 1 - w
	if lo < 0 {
		lo = 0
	}
	latest, base := full[n-1], full[lo:n-1]
	var baseCPS []float64
	for _, p := range base {
		if p.CyclesPerSec > 0 {
			baseCPS = append(baseCPS, p.CyclesPerSec)
		}
	}
	if latest.CyclesPerSec > 0 && len(baseCPS) >= 2 {
		return flagRegress("cycles_per_sec", latest.CyclesPerSec, baseCPS, maxPct, false)
	}
	baseCyc := make([]float64, len(base))
	for i, p := range base {
		baseCyc[i] = float64(p.Cycles)
	}
	return flagRegress("cycles", float64(latest.Cycles), baseCyc, maxPct, true)
}
