package trend

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fingers/internal/mem"
	"fingers/internal/telemetry"
)

// fixedMTime is the deterministic mtime injector tests use.
func fixedMTime(path string) (time.Time, error) {
	return time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC), nil
}

// writeLog writes records (plus optional raw trailing lines) to a file.
func writeLog(t *testing.T, path string, recs []telemetry.RunRecord, raw ...string) {
	t.Helper()
	var buf bytes.Buffer
	log := telemetry.NewRunLog(&buf)
	for _, r := range recs {
		if err := log.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range raw {
		buf.WriteString(s)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// rec builds one record for series (fingers, As, tc) at a given start
// time offset with the given cycles and wall time.
func rec(minute int, cycles mem.Cycles, wallNS int64) telemetry.RunRecord {
	r := telemetry.RunRecord{
		Arch:    "fingers",
		Graph:   telemetry.GraphInfo{Name: "As", Vertices: 3000},
		Pattern: "tc",
		PEs:     8,
		Cycles:  cycles,
		Count:   100,
		Breakdown: telemetry.Breakdown{
			Compute: cycles * 8 / 2, MemStall: cycles * 8 / 4,
			Overhead: cycles * 8 / 8, Idle: cycles * 8 / 8,
		},
		SharedMissRate: 0.25,
		DRAMBytes:      1 << 20,
	}
	r.StartedAt = time.Date(2026, 8, 1, 10, minute, 0, 0, time.UTC).Format(time.RFC3339)
	r.WallNS = wallNS
	r.RunTag = "t"
	return r
}

func TestScanGroupsAndOrders(t *testing.T) {
	dir := t.TempDir()
	// Two logs, timestamps interleaved, plus a corrupt tail.
	writeLog(t, filepath.Join(dir, "a.jsonl"),
		[]telemetry.RunRecord{rec(0, 1000, 1e6), rec(20, 1200, 1e6)},
		"{\"schema\":\"fingers.run/v1\",\"arch\":\"fing\n")
	writeLog(t, filepath.Join(dir, "b.jsonl"),
		[]telemetry.RunRecord{rec(10, 1100, 1e6)})

	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	if c.Records != 3 || c.RunFiles != 2 {
		t.Fatalf("records=%d files=%d, want 3/2", c.Records, c.RunFiles)
	}
	if len(c.Skips) != 1 || c.Skips[0].File != "a.jsonl" || c.Skips[0].Line != 3 {
		t.Fatalf("skips = %+v", c.Skips)
	}
	k := Key{Arch: "fingers", Graph: "As", Pattern: "tc"}
	pts := c.Points[k]
	if len(pts) != 3 {
		t.Fatalf("series holds %d points", len(pts))
	}
	if pts[0].Cycles != 1000 || pts[1].Cycles != 1100 || pts[2].Cycles != 1200 {
		t.Errorf("points not time-ordered across files: %v %v %v", pts[0].Cycles, pts[1].Cycles, pts[2].Cycles)
	}
	if pts[0].CyclesPerSec != 1000/(1e6/1e9) {
		t.Errorf("cycles/sec = %v", pts[0].CyclesPerSec)
	}
	if f := pts[0].Frac; f.Compute != 0.5 || f.Stall != 0.25 {
		t.Errorf("breakdown fraction = %+v", f)
	}
}

func TestMTimeFallbackOrdering(t *testing.T) {
	dir := t.TempDir()
	// Records without started_at share the file mtime and must keep
	// their append (line) order.
	old := []telemetry.RunRecord{
		{Arch: "fingers", Graph: telemetry.GraphInfo{Name: "Mi"}, Pattern: "tt", Cycles: 10},
		{Arch: "fingers", Graph: telemetry.GraphInfo{Name: "Mi"}, Pattern: "tt", Cycles: 20},
	}
	writeLog(t, filepath.Join(dir, "old.jsonl"), old)
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points[Key{Arch: "fingers", Graph: "Mi", Pattern: "tt"}]
	if len(pts) != 2 || !pts[0].FromMTime || pts[0].Cycles != 10 || pts[1].Cycles != 20 {
		t.Fatalf("mtime fallback points wrong: %+v", pts)
	}
}

func TestScanSkipsForeignJSON(t *testing.T) {
	dir := t.TempDir()
	// A go-test event stream: valid JSON, wrong schema.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_softmine.json"),
		[]byte(`{"Time":"2026-08-01T00:00:00Z","Action":"run"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	if c.BenchFiles != 0 || len(c.Skips) != 1 {
		t.Fatalf("foreign JSON not skipped: bench=%d skips=%+v", c.BenchFiles, c.Skips)
	}
}

func TestBenchIngestLegacyMTimeFallback(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"schema":"fingers/simbench/v2","pes":8,"cells":[
	  {"graph":"As","pattern":"tc","serial_cycles_sec":5e6,"speedup":0.55,"workers1_factor":0.6,"divergence_pct":0.02}]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_sim.json"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bench) != 1 {
		t.Fatalf("bench cells = %d", len(c.Bench))
	}
	bp := c.Bench[0]
	if !bp.FromMTime || bp.At.IsZero() {
		t.Errorf("legacy report did not fall back to mtime: %+v", bp)
	}
}

// TestBenchIngestMixedVintage scans a directory holding v2, v3, and v4
// reports for the same cell: all must ingest skip-free into a single
// time-ordered series, with the sharded columns populated only from v3
// on and the representation-mix columns only on the v4 point.
func TestBenchIngestMixedVintage(t *testing.T) {
	dir := t.TempDir()
	v2 := `{"schema":"fingers/simbench/v2","started_at":"2026-08-01T09:00:00Z","cells":[
	  {"graph":"As","pattern":"tc","serial_cycles_sec":5e6,"speedup":0.55,"workers1_factor":0.6,"divergence_pct":0.02}]}`
	v3 := `{"schema":"fingers/simbench/v3","started_at":"2026-08-02T09:00:00Z","shards":4,"cells":[
	  {"graph":"As","pattern":"tc","serial_cycles_sec":5.1e6,"speedup":0.56,"workers1_factor":0.61,"divergence_pct":0.02,
	   "sharded_wall_ns":70000000,"shard_walls_ns":[70000000,65000000,68000000,61000000],
	   "sharded_speedup":2.9,"sharded_counts_identical":true,"sharded_allocs":1500}]}`
	v4 := `{"schema":"fingers/simbench/v4","started_at":"2026-08-03T09:00:00Z","cells":[
	  {"graph":"As","pattern":"tc","serial_cycles_sec":5.2e6,"speedup":0.57,"workers1_factor":0.62,"divergence_pct":0.02,
	   "dense_rows":12,"bitmap_rows":340,"hybrid_bytes":51200}]}`
	for name, body := range map[string]string{"v2.json": v2, "v3.json": v3, "v4.json": v4} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Skips) != 0 {
		t.Fatalf("mixed-vintage corpus produced skips: %+v", c.Skips)
	}
	if c.BenchFiles != 3 || len(c.Bench) != 3 {
		t.Fatalf("bench files=%d cells=%d, want 3/3", c.BenchFiles, len(c.Bench))
	}
	old, cur, mix := c.Bench[0], c.Bench[1], c.Bench[2]
	if old.Shards != 0 || old.ShardSpeedup != 0 {
		t.Errorf("v2 point carries shard columns: %+v", old)
	}
	if cur.Shards != 4 || cur.ShardSpeedup != 2.9 {
		t.Errorf("v3 shard columns lost: shards=%d speedup=%v", cur.Shards, cur.ShardSpeedup)
	}
	if old.HybridBytes != 0 || cur.HybridBytes != 0 {
		t.Errorf("pre-v4 points carry representation-mix columns: %+v / %+v", old, cur)
	}
	if mix.DenseRows != 12 || mix.BitmapRows != 340 || mix.HybridBytes != 51200 {
		t.Errorf("v4 representation-mix columns lost: %+v", mix)
	}
	m := Build(c, Options{})
	if len(m.Bench) != 1 || len(m.Bench[0].Points) != 3 {
		t.Fatalf("mixed vintages did not merge into one series: %+v", m.Bench)
	}
	sum := m.Summary("")
	if b := sum.Bench[0]; b.Shards != 0 || b.LatestShardSpeedup != 0 {
		t.Errorf("summary shard columns should follow the latest (unsharded v4) point: %+v", b)
	}
	if b := sum.Bench[0]; b.DenseRows != 12 || b.BitmapRows != 340 || b.HybridBytes != 51200 {
		t.Errorf("summary representation-mix columns: %+v", b)
	}
}

// TestRollingAndRegression drives the rolling window and the σ-guarded
// flag end to end: a stable series with one big final slowdown flags;
// the same slowdown inside a noisy baseline does not.
func TestRollingAndRegression(t *testing.T) {
	dir := t.TempDir()
	stable := make([]telemetry.RunRecord, 0, 6)
	for i := 0; i < 5; i++ {
		stable = append(stable, rec(i, 1000, int64(1e6+float64(i)*1e3))) // ~1e9 cps, tight
	}
	stable = append(stable, rec(10, 1000, 2e6)) // half the cycles/sec
	writeLog(t, filepath.Join(dir, "s.jsonl"), stable)
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	m := Build(c, Options{Window: 5, MaxRegressPct: 10})
	if len(m.Series) != 1 {
		t.Fatalf("series = %d", len(m.Series))
	}
	s := m.Series[0]
	if s.Flag == nil {
		t.Fatal("slowdown not flagged")
	}
	if s.Flag.Metric != "cycles_per_sec" || s.Flag.DeltaPct < 40 {
		t.Errorf("flag = %+v", s.Flag)
	}
	if m.Regressions() != 1 {
		t.Errorf("Regressions() = %d", m.Regressions())
	}
	// Rolling stats aligned and windowed.
	if len(s.Roll) != len(s.Points) {
		t.Fatalf("roll misaligned: %d vs %d", len(s.Roll), len(s.Points))
	}
	if s.Roll[0].SigmaCycles != 0 {
		t.Errorf("single-point window has σ=%v", s.Roll[0].SigmaCycles)
	}
}

func TestSigmaGuardSuppressesNoisyFlag(t *testing.T) {
	dir := t.TempDir()
	// Wildly noisy wall times: the final value is within the noise band.
	walls := []int64{1e6, 3e6, 1e6, 3e6, 1e6, 2.2e6}
	recs := make([]telemetry.RunRecord, len(walls))
	for i, w := range walls {
		recs[i] = rec(i, 1000, w)
	}
	writeLog(t, filepath.Join(dir, "n.jsonl"), recs)
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	m := Build(c, Options{Window: 5, MaxRegressPct: 10})
	if f := m.Series[0].Flag; f != nil {
		t.Errorf("noisy series flagged: %+v", f)
	}
}

func TestPartialPointsExcludedFromFlagging(t *testing.T) {
	dir := t.TempDir()
	recs := []telemetry.RunRecord{rec(0, 1000, 1e6), rec(1, 1000, 1e6), rec(2, 1000, 1e6)}
	bad := rec(3, 100, 2e6) // torn run: fewer cycles, slower
	bad.Partial = true
	recs = append(recs, bad)
	writeLog(t, filepath.Join(dir, "p.jsonl"), recs)
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	m := Build(c, Options{})
	if f := m.Series[0].Flag; f != nil {
		t.Errorf("partial record drove a flag: %+v", f)
	}
}

func TestCyclesFallbackFlagWithoutWallTime(t *testing.T) {
	dir := t.TempDir()
	// Old-style records: no wall time, so the cycle count is the metric.
	recs := make([]telemetry.RunRecord, 4)
	for i := range recs {
		recs[i] = telemetry.RunRecord{Arch: "fingers", Graph: telemetry.GraphInfo{Name: "As"}, Pattern: "tc", Cycles: 1000}
	}
	recs[3].Cycles = 1500 // 50% more simulated cycles
	writeLog(t, filepath.Join(dir, "c.jsonl"), recs)
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	m := Build(c, Options{})
	f := m.Series[0].Flag
	if f == nil || f.Metric != "cycles" {
		t.Fatalf("cycle regression not flagged: %+v", f)
	}
}

func TestBuildFilters(t *testing.T) {
	dir := t.TempDir()
	a := rec(0, 1000, 1e6)
	b := rec(1, 1000, 1e6)
	b.Arch = "flexminer"
	writeLog(t, filepath.Join(dir, "f.jsonl"), []telemetry.RunRecord{a, b})
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	if m := Build(c, Options{Arch: "flexminer"}); len(m.Series) != 1 || m.Series[0].Key.Arch != "flexminer" {
		t.Errorf("arch filter failed: %+v", m.Series)
	}
	if m := Build(c, Options{Tag: "nope"}); len(m.Series) != 0 {
		t.Errorf("tag filter failed: %+v", m.Series)
	}
	if m := Build(c, Options{Last: 1}); len(m.Series) != 2 || len(m.Series[0].Points) != 1 {
		t.Errorf("last-N failed")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := make([]telemetry.RunRecord, 5)
	for i := range recs {
		recs[i] = rec(i, mem.Cycles(1000+i*10), 1e6)
	}
	writeLog(t, filepath.Join(dir, "r.jsonl"), recs)
	bench := `{"schema":"fingers/simbench/v2","started_at":"2026-08-01T09:00:00Z","runs":3,"cells":[
	  {"graph":"As","pattern":"tc","serial_cycles_sec":5e6,"speedup":0.55,"workers1_factor":0.6,"divergence_pct":0.02}]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_sim.json"), []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Scan(dir, ScanOptions{MTime: fixedMTime})
	if err != nil {
		t.Fatal(err)
	}
	m := Build(c, Options{})
	sum := m.Summary("")
	if sum.Schema != SummarySchema || len(sum.Series) != 1 || len(sum.Bench) != 1 {
		t.Fatalf("summary shape: %+v", sum)
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, sum); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSummary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, back) {
		t.Errorf("summary did not round-trip:\n%+v\n%+v", sum, back)
	}
	if sum.Bench[0].Points != 1 || sum.Bench[0].LatestSerialCPS != 5e6 {
		t.Errorf("bench summary: %+v", sum.Bench[0])
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Errorf("meanStd = %v, %v (want 5, 2)", mean, std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty meanStd = %v, %v", m, s)
	}
}

func TestFlagRegressDirections(t *testing.T) {
	base := []float64{100, 100, 100}
	if f := flagRegress("cycles", 150, base, 10, true); f == nil || f.DeltaPct != 50 {
		t.Errorf("higher-is-worse: %+v", f)
	}
	if f := flagRegress("cps", 50, base, 10, false); f == nil || f.DeltaPct != 50 {
		t.Errorf("lower-is-worse: %+v", f)
	}
	if f := flagRegress("cps", 95, base, 10, false); f != nil {
		t.Errorf("within threshold flagged: %+v", f)
	}
	if f := flagRegress("cps", 50, base[:1], 10, false); f != nil {
		t.Errorf("single baseline point flagged: %+v", f)
	}
}

// Silence unused-import drift if helpers change.
var _ = fmt.Sprintf
