// Package trend turns the repo's accumulated observability artifacts —
// JSONL fingers.run/v1 record logs and BENCH_sim.json simbench reports
// of every vintage — into time-ordered per-(arch, graph, pattern)
// series with rolling statistics and self-auditing regression flags.
// It is the analysis layer under cmd/fingerstat: ingest a directory
// tree (Scan), group and order the records (Build), then render the
// resulting Model as terminal tables, static HTML/SVG, or the
// machine-readable fingers.trend/v1 summary (Summary).
//
// The paper's whole evaluation is a grid of per-workload cycle
// breakdowns and speedups; this package is what makes that grid
// comparable across commits: rolling means ±1σ of cycles and
// cycles/sec, breakdown-bucket evolution (compute / stall / overhead /
// idle as fractions of makespan), shared-cache and DRAM traffic
// trends, and per-cell regression flags reusing the simbench
// -max-regress-pct semantics.
package trend

import (
	"math"
	"time"

	"fingers/internal/telemetry"
)

// Key identifies one trend series: an architecture × graph × pattern
// cell of the evaluation grid.
type Key struct {
	Arch    string `json:"arch"`
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`
}

// Less orders keys lexicographically for stable output.
func (k Key) Less(o Key) bool {
	if k.Arch != o.Arch {
		return k.Arch < o.Arch
	}
	if k.Graph != o.Graph {
		return k.Graph < o.Graph
	}
	return k.Pattern < o.Pattern
}

// BreakdownFrac is a cycle breakdown normalised to fractions of the
// makespan (the four buckets sum to 1 when the record carried one).
type BreakdownFrac struct {
	Compute  float64 `json:"compute"`
	Stall    float64 `json:"stall"`
	Overhead float64 `json:"overhead"`
	Idle     float64 `json:"idle"`
}

// Frac normalises a raw breakdown. A zero breakdown (a record written
// before attribution existed, or a software-miner record) yields the
// zero fraction, which renderers treat as "no data".
func Frac(b telemetry.Breakdown) BreakdownFrac {
	t := float64(b.Total())
	if t == 0 {
		return BreakdownFrac{}
	}
	return BreakdownFrac{
		Compute:  float64(b.Compute) / t,
		Stall:    float64(b.MemStall) / t,
		Overhead: float64(b.Overhead) / t,
		Idle:     float64(b.Idle) / t,
	}
}

// Zero reports whether the fraction carries no attribution data.
func (f BreakdownFrac) Zero() bool {
	return f.Compute == 0 && f.Stall == 0 && f.Overhead == 0 && f.Idle == 0
}

// Point is one run record projected onto the trend axes.
type Point struct {
	// At is the point's position on the time axis; FromMTime marks it
	// as inferred from file modification time because the record
	// predates the provenance header.
	At        time.Time `json:"at"`
	FromMTime bool      `json:"from_mtime,omitempty"`
	Tag       string    `json:"tag,omitempty"`
	GitRev    string    `json:"git_rev,omitempty"`
	Partial   bool      `json:"partial,omitempty"`
	// Daemon provenance, present only on fingersd-served records:
	// Attempt > 1 marks a run that retried past a transient failure,
	// Recovered one whose job was re-enqueued by journal replay after a
	// crash or drain, ClientID the submitting client. All zero on batch
	// CLI records of any vintage.
	Attempt   int    `json:"attempt,omitempty"`
	ClientID  string `json:"client_id,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`

	PEs          int           `json:"pes,omitempty"`
	Cycles       int64         `json:"cycles"`
	Count        uint64        `json:"count"`
	WallNS       int64         `json:"wall_ns,omitempty"`
	CyclesPerSec float64       `json:"cycles_per_sec,omitempty"`
	MissRate     float64       `json:"miss_rate"`
	DRAMBytes    int64         `json:"dram_bytes"`
	Frac         BreakdownFrac `json:"breakdown"`

	File string `json:"file"`
	Line int    `json:"line"`
}

// BenchPoint is one simbench report cell (or geomean row) on the time
// axis.
type BenchPoint struct {
	At        time.Time `json:"at"`
	FromMTime bool      `json:"from_mtime,omitempty"`
	Tag       string    `json:"tag,omitempty"`
	GitRev    string    `json:"git_rev,omitempty"`
	Runs      int       `json:"runs,omitempty"`

	Graph         string  `json:"graph"`
	Pattern       string  `json:"pattern"`
	SerialCPS     float64 `json:"serial_cycles_sec"`
	ParCPS        float64 `json:"parallel_cycles_sec,omitempty"`
	Speedup       float64 `json:"speedup"`
	Workers1      float64 `json:"workers1_factor"`
	DivergencePct float64 `json:"divergence_pct"`
	SerialAllocs  uint64  `json:"serial_allocs"`

	// Sharded-mode columns, present only on simbench v3 cells measured
	// with -shards > 1; zero on every earlier vintage, so mixed
	// directories of v1/v2/v3 reports ingest side by side.
	Shards       int     `json:"shards,omitempty"`
	ShardSpeedup float64 `json:"sharded_speedup,omitempty"`

	// Representation-mix columns (simbench v4): the adaptive hybrid
	// set-storage view's classification of the cell's graph. Zero on
	// every earlier vintage, same mixed-directory contract as above.
	DenseRows   int   `json:"dense_rows,omitempty"`
	BitmapRows  int   `json:"bitmap_rows,omitempty"`
	HybridBytes int64 `json:"hybrid_bytes,omitempty"`

	File string `json:"file"`
}

// Regression is one flagged metric movement: the latest point against
// the rolling mean of the preceding window, in the metric's "worse"
// direction. Flagging follows the simbench gate semantics (a relative
// drop beyond MaxRegressPct) tightened by a noise guard: when the
// baseline window has measurable spread, the excursion must also clear
// one standard deviation.
type Regression struct {
	// Metric is "cycles_per_sec", "cycles", or "serial_cycles_sec".
	Metric string `json:"metric"`
	// Latest is the newest point's value; Baseline the rolling mean of
	// the window preceding it; Sigma that window's stddev.
	Latest   float64 `json:"latest"`
	Baseline float64 `json:"baseline"`
	Sigma    float64 `json:"sigma"`
	// DeltaPct is how far Latest moved in the worse direction, as a
	// percentage of Baseline (positive = regressed).
	DeltaPct float64 `json:"delta_pct"`
}

// meanStd returns the mean and population standard deviation of vs.
func meanStd(vs []float64) (mean, std float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	for _, v := range vs {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(vs)))
}

// flagRegress applies the rolling-window/σ heuristic to one metric:
// baseline is the mean of base (the window preceding the latest
// point), and the latest value is flagged when it moved more than
// maxPct in the worse direction AND the move clears the window's ±1σ
// noise band. higherIsWorse selects the direction (cycles up = bad;
// cycles/sec down = bad). Returns nil with fewer than two baseline
// points — a single prior sample has no measurable noise floor.
func flagRegress(metric string, latest float64, base []float64, maxPct float64, higherIsWorse bool) *Regression {
	if len(base) < 2 || latest == 0 {
		return nil
	}
	mean, sigma := meanStd(base)
	if mean == 0 {
		return nil
	}
	delta := (latest - mean) / mean * 100
	if !higherIsWorse {
		delta = -delta
	}
	if delta <= maxPct {
		return nil
	}
	if sigma > 0 && math.Abs(latest-mean) <= sigma {
		return nil
	}
	return &Regression{Metric: metric, Latest: latest, Baseline: mean, Sigma: sigma, DeltaPct: delta}
}
