package graph

import "fmt"

// Preprocessing algorithms graph mining systems apply before plan
// execution: k-core decomposition (whose degeneracy order bounds clique
// search), connected components, vertex relabeling, and induced-subgraph
// extraction.

// CoreNumbers returns the k-core number of every vertex: the largest k
// such that the vertex survives in the subgraph where every vertex has
// degree ≥ k. Computed with the standard peeling algorithm in O(V+E).
func (g *Graph) CoreNumbers() []int {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(uint32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := 1; i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int, n)  // position of vertex in vert
	vert := make([]int, n) // vertices sorted by current degree
	fill := append([]int(nil), binStart...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	core := make([]int, n)
	cur := append([]int(nil), deg...)
	start := append([]int(nil), binStart...)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = cur[v]
		for _, w := range g.Neighbors(uint32(v)) {
			u := int(w)
			if cur[u] > cur[v] {
				// Move u one bucket down: swap with the first vertex of
				// its current bucket.
				du := cur[u]
				pu := pos[u]
				pw := start[du]
				firstV := vert[pw]
				if u != firstV {
					vert[pu], vert[pw] = firstV, u
					pos[u], pos[firstV] = pw, pu
				}
				start[du]++
				cur[u]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the maximum core number.
// Any k-clique requires degeneracy ≥ k−1, so it bounds feasible clique
// sizes cheaply.
func (g *Graph) Degeneracy() int {
	max := 0
	for _, c := range g.CoreNumbers() {
		if c > max {
			max = c
		}
	}
	return max
}

// DegeneracyOrder returns the peeling order: vertices sorted by
// non-decreasing core number (ties by ID). Mining roots in this order
// front-loads the shallow trees.
func (g *Graph) DegeneracyOrder() []uint32 {
	core := g.CoreNumbers()
	n := g.NumVertices()
	maxCore := 0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	counts := make([]int, maxCore+2)
	for _, c := range core {
		counts[c+1]++
	}
	for i := 1; i <= maxCore+1; i++ {
		counts[i] += counts[i-1]
	}
	order := make([]uint32, n)
	for v := 0; v < n; v++ {
		order[counts[core[v]]] = uint32(v)
		counts[core[v]]++
	}
	return order
}

// ConnectedComponents labels each vertex with a component ID in [0,
// numComponents) and returns the labels with the component count.
func (g *Graph) ConnectedComponents() (labels []int, num int) {
	n := g.NumVertices()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []uint32
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = num
		stack = append(stack[:0], uint32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if labels[w] < 0 {
					labels[w] = num
					stack = append(stack, w)
				}
			}
		}
		num++
	}
	return labels, num
}

// Relabel returns the graph with vertices renamed so that newID[i] =
// position of oldID order[i]; i.e. order lists the old IDs in their new
// order. Relabeling by degree or degeneracy improves locality of the
// adjacency array for mining.
//
// Relabel panics on an order that is not a permutation of the vertex
// IDs; RelabelErr reports the same conditions as an error, for callers
// that ingest the order from outside the process.
func (g *Graph) Relabel(order []uint32) *Graph {
	r, err := g.RelabelErr(order)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// RelabelErr is Relabel with validation instead of panics: an order
// whose length differs from the vertex count, holds an out-of-range ID,
// or repeats an ID is reported as an error.
func (g *Graph) RelabelErr(order []uint32) (*Graph, error) {
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("graph: relabel order length mismatch: got %d, want %d", len(order), n)
	}
	newID := make([]uint32, n)
	seen := make([]bool, n)
	for i, old := range order {
		if int(old) >= n {
			return nil, fmt.Errorf("graph: relabel order holds out-of-range vertex %d", old)
		}
		if seen[old] {
			return nil, fmt.Errorf("graph: relabel order is not a permutation: vertex %d repeats", old)
		}
		seen[old] = true
		newID[old] = uint32(i)
	}
	b := NewBuilder(uint32(n))
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(uint32(v)) {
			if uint32(v) < w {
				b.AddEdge(newID[v], newID[w])
			}
		}
	}
	return b.Build(), nil
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled densely in the order supplied, plus the mapping from new IDs
// back to the originals.
func (g *Graph) InducedSubgraph(vertices []uint32) (*Graph, []uint32) {
	newID := make(map[uint32]uint32, len(vertices))
	back := make([]uint32, len(vertices))
	for i, v := range vertices {
		if _, dup := newID[v]; dup {
			panic("graph: duplicate vertex in induced subgraph")
		}
		newID[v] = uint32(i)
		back[i] = v
	}
	b := NewBuilder(uint32(len(vertices)))
	for _, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if j, ok := newID[w]; ok && v < w {
				b.AddEdge(newID[v], j)
			}
		}
	}
	return b.Build(), back
}

// TriangleCount returns the exact triangle count by degree-ordered
// adjacency intersection — a fast special-case checker used by tests and
// dataset characterization (independent of the plan machinery).
func (g *Graph) TriangleCount() int64 {
	var count int64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nv := g.Neighbors(uint32(v))
		for _, u := range nv {
			if u <= uint32(v) {
				continue
			}
			// Count common neighbors w > u.
			nu := g.Neighbors(u)
			i, j := 0, 0
			for i < len(nv) && j < len(nu) {
				a, b := nv[i], nu[j]
				switch {
				case a < b:
					i++
				case a > b:
					j++
				default:
					if a > u {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}
