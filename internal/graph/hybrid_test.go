package graph

import (
	"sync"
	"testing"

	"fingers/internal/setops"
)

// hybridTestGraph builds a graph with all three tiers populated: a
// 40-clique (dense over its span → bitmap tier), one hub wired to
// everything (dense tier under a low threshold), and a sparse path
// (array tier).
func hybridTestGraph() *Graph {
	b := NewBuilder(0)
	for i := uint32(0); i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			b.AddEdge(i, j)
		}
	}
	hub := uint32(200)
	for i := uint32(0); i < 120; i++ {
		b.AddEdge(hub, i)
	}
	for i := uint32(300); i < 330; i++ {
		b.AddEdge(i, i+60)
	}
	return b.Build()
}

func TestHybridAdjTiers(t *testing.T) {
	g := hybridTestGraph()
	h := NewHybridAdj(g, StorageAdaptive, 100) // hub=200 (deg 120) qualifies
	if h.DenseRow(200) == nil {
		t.Fatal("vertex 200 should be in the dense tier")
	}
	if h.BitmapRow(200) != nil {
		t.Fatal("dense vertex must not also have a bitmap row")
	}
	// Clique member: 39 neighbors in a span of 40+ (plus the hub edge).
	if h.BitmapRow(1) == nil {
		t.Fatal("clique vertex 1 should be in the bitmap tier")
	}
	if got := h.BitmapRow(1).AppendTo(nil); !equalU32(got, g.Neighbors(1)) {
		t.Fatalf("bitmap row decode = %v, want %v", got, g.Neighbors(1))
	}
	// Path vertex: one neighbor far away.
	if h.BitmapRow(305) != nil || h.DenseRow(305) != nil {
		t.Fatal("sparse vertex 305 should stay on the array tier")
	}
	if got, want := h.RowBytes(305), g.NeighborBytes(305); got != want {
		t.Fatalf("array-tier RowBytes = %d, want %d", got, want)
	}
}

func TestHybridAdjForcedPolicies(t *testing.T) {
	g := hybridTestGraph()
	arr := NewHybridAdj(g, StorageArray, 0)
	for v := 0; v < g.NumVertices(); v++ {
		if arr.BitmapRow(uint32(v)) != nil || arr.DenseRow(uint32(v)) != nil {
			t.Fatalf("forced-array policy materialized a row for %d", v)
		}
	}
	if fp := arr.Footprint(); fp.HybridBytes() != 0 {
		t.Fatalf("forced-array footprint = %+v, want zero", fp)
	}
	bm := NewHybridAdj(g, StorageBitmap, 0)
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) == 0 {
			continue
		}
		row := bm.BitmapRow(uint32(v))
		if row == nil {
			t.Fatalf("forced-bitmap policy left vertex %d without a row", v)
		}
		if got := row.AppendTo(nil); !equalU32(got, g.Neighbors(uint32(v))) {
			t.Fatalf("vertex %d bitmap decode mismatch", v)
		}
	}
}

func TestHybridFootprintExact(t *testing.T) {
	g := hybridTestGraph()
	h := NewHybridAdj(g, StorageAdaptive, 100)
	before := h.Footprint()
	if before.MaterializedRows != 0 {
		t.Fatalf("rows materialized before first use: %+v", before)
	}
	h.MaterializeAll()
	after := h.Footprint()
	if after.MaterializedRows != after.BitmapRows || after.MaterializedBytes != after.BitmapBytes {
		t.Fatalf("materialized %d rows/%d bytes, eligible %d rows/%d bytes — the eager counts must match the classification",
			after.MaterializedRows, after.MaterializedBytes, after.BitmapRows, after.BitmapBytes)
	}
	// Cross-check the classification-time byte estimate against the
	// rows actually built.
	var sum int64
	var rows int
	for v := 0; v < g.NumVertices(); v++ {
		if b := h.BitmapRow(uint32(v)); b != nil {
			sum += b.Bytes()
			rows++
		}
	}
	if sum != after.BitmapBytes || rows != after.BitmapRows {
		t.Fatalf("summed row bytes %d (%d rows) != footprint %d (%d rows)",
			sum, rows, after.BitmapBytes, after.BitmapRows)
	}
	if after.DenseRows != h.Hub().NumHubs() || after.DenseBytes != h.Hub().MemoryBytes() {
		t.Fatalf("dense tier accounting mismatch: %+v", after)
	}
	if after.HybridBytes() != after.DenseBytes+after.BitmapBytes {
		t.Fatalf("HybridBytes = %d", after.HybridBytes())
	}
}

func TestHybridConcurrentMaterialize(t *testing.T) {
	g := hybridTestGraph()
	h := NewHybridAdj(g, StorageBitmap, 0)
	var wg sync.WaitGroup
	rows := make([][]*setops.Bitmap, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows[w] = make([]*setops.Bitmap, g.NumVertices())
			for v := 0; v < g.NumVertices(); v++ {
				rows[w][v] = h.BitmapRow(uint32(v))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for v := range rows[w] {
			if rows[w][v] != rows[0][v] {
				t.Fatalf("worker %d saw a different row pointer for vertex %d", w, v)
			}
		}
	}
	fp := h.Footprint()
	if fp.MaterializedRows != fp.BitmapRows {
		t.Fatalf("materialized %d of %d rows", fp.MaterializedRows, fp.BitmapRows)
	}
}

func TestGraphHybridCached(t *testing.T) {
	g := hybridTestGraph()
	if g.Hybrid() != g.Hybrid() {
		t.Fatal("Hybrid() must cache")
	}
	if g.Hybrid().Policy() != StorageAdaptive {
		t.Fatal("cached view must be adaptive")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
