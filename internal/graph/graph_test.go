package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTriangleWithTail(t *testing.T) *Graph {
	t.Helper()
	// Vertices 0-1-2 form a triangle; 3 hangs off vertex 0.
	return FromEdges(4, []Edge{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
}

func TestBuilderNormalizes(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 0) // reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop: dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestDegreeAndStats(t *testing.T) {
	g := buildTriangleWithTail(t)
	if g.Degree(0) != 3 || g.Degree(3) != 1 {
		t.Errorf("degrees = %d, %d", g.Degree(0), g.Degree(3))
	}
	st := ComputeStats(g)
	if st.Vertices != 4 || st.Edges != 4 || st.MaxDegree != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.AvgDegree != 2.0 {
		t.Errorf("avg degree = %v, want 2", st.AvgDegree)
	}
}

func TestHasEdge(t *testing.T) {
	g := buildTriangleWithTail(t)
	cases := []struct {
		u, v uint32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 3, false}, {2, 3, false}, {0, 3, true},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := buildTriangleWithTail(t)
	edges := g.Edges()
	g2 := FromEdges(uint32(g.NumVertices()), edges)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for _, e := range edges {
		if !g2.HasEdge(e.U, e.V) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestAddressingModel(t *testing.T) {
	g := buildTriangleWithTail(t)
	if g.NeighborBytes(0) != 12 {
		t.Errorf("NeighborBytes(0) = %d, want 12", g.NeighborBytes(0))
	}
	if g.NeighborAddr(0) != 0 {
		t.Errorf("NeighborAddr(0) = %d, want 0", g.NeighborAddr(0))
	}
	if g.TotalAdjacencyBytes() != 4*2*g.NumEdges() {
		t.Errorf("TotalAdjacencyBytes = %d", g.TotalAdjacencyBytes())
	}
	// Address ranges of distinct vertices must not overlap.
	end0 := g.NeighborAddr(0) + g.NeighborBytes(0)
	if g.NeighborAddr(1) < end0 {
		t.Error("neighbor address ranges overlap")
	}
}

func TestDegreeOrder(t *testing.T) {
	g := buildTriangleWithTail(t)
	order := g.DegreeOrder()
	if order[0] != 0 {
		t.Errorf("highest-degree vertex = %d, want 0", order[0])
	}
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i-1]) < g.Degree(order[i]) {
			t.Error("DegreeOrder not descending")
		}
	}
}

func TestEdgeListTextRoundTrip(t *testing.T) {
	g := buildTriangleWithTail(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% also comment\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "1 x\n"} {
		if _, err := ReadEdgeList(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(rng.Uint32()%50, rng.Uint32()%50)
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed shape")
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(uint32(v)), g2.Neighbors(uint32(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: neighbor count differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: neighbors differ", v)
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("not a graph at all, sorry")); err == nil {
		t.Error("ReadBinary accepted garbage")
	}
}

func TestBuildAlwaysValid(t *testing.T) {
	f := func(pairs [][2]uint32) bool {
		b := NewBuilder(0)
		for _, p := range pairs {
			b.AddEdge(p[0]%64, p[1]%64)
		}
		return b.Build().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNeighborListsAreSortedSets(t *testing.T) {
	f := func(pairs [][2]uint32) bool {
		b := NewBuilder(0)
		for _, p := range pairs {
			b.AddEdge(p[0]%100, p[1]%100)
		}
		g := b.Build()
		for v := 0; v < g.NumVertices(); v++ {
			ns := g.Neighbors(uint32(v))
			for i := 1; i < len(ns); i++ {
				if ns[i] <= ns[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.AvgDegree() != 0 {
		t.Error("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}
