package graph

import (
	"sync/atomic"

	"fingers/internal/setops"
)

// HybridAdj is the graph's adaptive set-storage view (SISA-style): each
// neighbor list is classified at construction into one of three tiers,
// cheapest representation first —
//
//   - dense: hub vertices (degree ≥ the hub threshold) keep the
//     HubIndex's full-universe bitset rows, one bit per vertex. The
//     HubIndex *is* the dense tier; HybridAdj subsumes rather than
//     replaces it.
//   - bitmap: vertices whose list is dense over its own span
//     (setops.ChooseFormat) get a roaring-like compressed bitmap,
//     materialized lazily per vertex on first use and published with a
//     compare-and-swap so racing builders agree byte-for-byte.
//   - array: everything else stays on the CSR's sorted []uint32 —
//     zero added memory.
//
// Classification itself is O(1) per vertex (degree plus first/last
// neighbor give the span); only the per-vertex container counts need a
// scan, and only for bitmap-eligible rows. A HybridAdj is safe for
// concurrent readers, including concurrent lazy materialization.
type HybridAdj struct {
	g      *Graph
	policy StoragePolicy
	hub    *HubIndex // dense tier; nil under forced policies

	tiers      []tier
	containers []int32 // per-vertex container count, bitmap tier only
	rows       []atomic.Pointer[setops.Bitmap]

	eligibleRows  int
	eligibleBytes int64

	matRows  atomic.Int64
	matBytes atomic.Int64
}

// StoragePolicy selects how HybridAdj classifies neighbor lists. The
// forced policies exist for differential testing and ablations; serving
// paths use StorageAdaptive.
type StoragePolicy uint8

const (
	// StorageAdaptive picks dense rows for hubs, compressed bitmaps
	// where the density heuristic approves, arrays otherwise.
	StorageAdaptive StoragePolicy = iota
	// StorageArray forces every list to stay on the CSR arrays.
	StorageArray
	// StorageBitmap forces a compressed bitmap for every nonempty list
	// (no dense tier), however sparse.
	StorageBitmap
)

// String returns the policy's conventional name.
func (p StoragePolicy) String() string {
	switch p {
	case StorageAdaptive:
		return "adaptive"
	case StorageArray:
		return "array"
	case StorageBitmap:
		return "bitmap"
	default:
		return "unknown-policy"
	}
}

type tier uint8

const (
	tierArray tier = iota
	tierBitmap
	tierDense
)

// NewHybridAdj classifies every vertex of g under the policy.
// hubThreshold ≤ 0 selects the default hub threshold; it is ignored by
// the forced policies, which build no dense tier.
func NewHybridAdj(g *Graph, policy StoragePolicy, hubThreshold int) *HybridAdj {
	n := g.NumVertices()
	h := &HybridAdj{
		g:      g,
		policy: policy,
		tiers:  make([]tier, n),
	}
	if policy == StorageArray {
		return h
	}
	if policy == StorageAdaptive {
		if hubThreshold <= 0 {
			h.hub = g.Hubs()
		} else {
			h.hub = NewHubIndex(g, hubThreshold)
		}
	}
	h.containers = make([]int32, n)
	h.rows = make([]atomic.Pointer[setops.Bitmap], n)
	for v := 0; v < n; v++ {
		nv := g.Neighbors(uint32(v))
		if len(nv) == 0 {
			continue
		}
		if h.hub != nil && h.hub.Row(uint32(v)) != nil {
			h.tiers[v] = tierDense
			continue
		}
		if policy == StorageAdaptive {
			span := nv[len(nv)-1] - nv[0] + 1
			if setops.ChooseFormat(len(nv), span) != setops.FormatBitmap {
				continue
			}
		}
		h.tiers[v] = tierBitmap
		c := int32(1)
		for i := 1; i < len(nv); i++ {
			if nv[i]>>6 != nv[i-1]>>6 {
				c++
			}
		}
		h.containers[v] = c
		h.eligibleRows++
		h.eligibleBytes += 12 * int64(c)
	}
	return h
}

// Hybrid returns the graph's adaptive-policy hybrid view, building it on
// first use and caching it for the graph's lifetime. Safe for concurrent
// callers.
func (g *Graph) Hybrid() *HybridAdj {
	g.hybridOnce.Do(func() { g.hybridAdj = NewHybridAdj(g, StorageAdaptive, 0) })
	return g.hybridAdj
}

// Policy returns the classification policy the view was built with.
func (h *HybridAdj) Policy() StoragePolicy {
	if h == nil {
		return StorageArray
	}
	return h.policy
}

// Hub returns the dense tier's index (nil under forced policies).
func (h *HybridAdj) Hub() *HubIndex {
	if h == nil {
		return nil
	}
	return h.hub
}

// DenseRow returns v's full-universe bitset when v is in the dense
// tier, nil otherwise.
func (h *HybridAdj) DenseRow(v uint32) []uint64 {
	if h == nil || h.hub == nil {
		return nil
	}
	return h.hub.Row(v)
}

// BitmapRow returns v's compressed bitmap, materializing it on first
// use, or nil when v is not in the bitmap tier. The returned bitmap is
// shared and must not be modified.
func (h *HybridAdj) BitmapRow(v uint32) *setops.Bitmap {
	if h == nil || int(v) >= len(h.tiers) || h.tiers[v] != tierBitmap {
		return nil
	}
	return h.bitmapRow(v)
}

// bitmapRow materializes v's bitmap; the caller has already checked the
// tier.
func (h *HybridAdj) bitmapRow(v uint32) *setops.Bitmap {
	if b := h.rows[v].Load(); b != nil {
		return b
	}
	b := setops.NewBitmapFromSorted(h.g.Neighbors(v))
	if h.rows[v].CompareAndSwap(nil, b) {
		// Only the winning builder counts the row, so the footprint
		// tally stays exact under racing materializers.
		h.matRows.Add(1)
		h.matBytes.Add(b.Bytes())
		return b
	}
	return h.rows[v].Load()
}

// Rows returns v's stored representations — the dense full-universe
// bitset when v is in the dense tier, or its compressed bitmap
// (materializing lazily) when in the bitmap tier; at most one is
// non-nil. The tier check is a single slice load, so hot dispatch
// loops can call this per operand without paying the HubIndex map
// hash for the common array-tier vertex.
func (h *HybridAdj) Rows(v uint32) ([]uint64, *setops.Bitmap) {
	if h == nil || int(v) >= len(h.tiers) {
		return nil, nil
	}
	switch h.tiers[v] {
	case tierDense:
		return h.hub.Row(v), nil
	case tierBitmap:
		return nil, h.bitmapRow(v)
	}
	return nil, nil
}

// HasStoredRow reports whether v's list lives in a non-array tier
// (dense row or compressed bitmap) without materializing anything —
// the membership-probe eligibility check of the set-centric PE model.
func (h *HybridAdj) HasStoredRow(v uint32) bool {
	return h != nil && int(v) < len(h.tiers) && h.tiers[v] != tierArray
}

// RowBytes returns the in-memory cost of v's neighbor list in its
// chosen tier: the dense row's words, the bitmap's containers, or the
// CSR slice itself. This is the fetch cost the set-centric PE model
// charges.
func (h *HybridAdj) RowBytes(v uint32) int64 {
	if h == nil || int(v) >= len(h.tiers) {
		return 0
	}
	switch h.tiers[v] {
	case tierDense:
		return int64(8 * len(h.hub.Row(v)))
	case tierBitmap:
		return 12 * int64(h.containers[v])
	default:
		return h.g.NeighborBytes(v)
	}
}

// MaterializeAll eagerly builds every eligible bitmap row, so Footprint
// reports the full cost and steady-state mining never allocates.
func (h *HybridAdj) MaterializeAll() {
	if h == nil {
		return
	}
	for v := range h.tiers {
		if h.tiers[v] == tierBitmap {
			h.BitmapRow(uint32(v))
		}
	}
}

// Footprint is the memory cost of a hybrid view's non-array tiers.
type Footprint struct {
	// DenseRows / DenseBytes cover the hub tier's full-universe rows.
	DenseRows  int
	DenseBytes int64
	// BitmapRows / BitmapBytes cover every bitmap-eligible vertex at
	// its exact container cost, whether or not the row is materialized
	// yet — the number capacity planning wants.
	BitmapRows  int
	BitmapBytes int64
	// MaterializedRows / MaterializedBytes are the bitmap rows actually
	// built so far (≤ the eligible numbers; lazy materialization).
	MaterializedRows  int
	MaterializedBytes int64
}

// HybridBytes is the total non-array storage the view costs when fully
// materialized: the representation-mix number reported per graph by
// GraphInfo and per cell by simbench v4.
func (f Footprint) HybridBytes() int64 { return f.DenseBytes + f.BitmapBytes }

// Footprint returns the view's memory accounting. Safe to call
// concurrently with materialization.
func (h *HybridAdj) Footprint() Footprint {
	if h == nil {
		return Footprint{}
	}
	return Footprint{
		DenseRows:         h.hub.NumHubs(),
		DenseBytes:        h.hub.MemoryBytes(),
		BitmapRows:        h.eligibleRows,
		BitmapBytes:       h.eligibleBytes,
		MaterializedRows:  int(h.matRows.Load()),
		MaterializedBytes: h.matBytes.Load(),
	}
}
