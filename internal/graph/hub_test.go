package graph

import "testing"

func hubTestGraph() *Graph {
	// Star center 0 with 10 leaves, plus a 1-2 edge for a non-hub op.
	b := NewBuilder(11)
	for v := uint32(1); v <= 10; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(1, 2)
	return b.Build()
}

func TestHubIndexRows(t *testing.T) {
	g := hubTestGraph()
	h := NewHubIndex(g, 5)
	if h.Threshold() != 5 {
		t.Fatalf("Threshold = %d", h.Threshold())
	}
	if h.NumHubs() != 1 {
		t.Fatalf("NumHubs = %d, want 1 (only the star center)", h.NumHubs())
	}
	row := h.Row(0)
	if row == nil {
		t.Fatal("center has no row")
	}
	for v := 0; v < g.NumVertices(); v++ {
		got := row[v>>6]&(1<<(uint(v)&63)) != 0
		if want := g.HasEdge(0, uint32(v)); got != want {
			t.Errorf("row bit %d = %v, want %v", v, got, want)
		}
	}
	if h.Row(1) != nil {
		t.Error("leaf vertex has a row")
	}
	var nilIdx *HubIndex
	if nilIdx.Row(0) != nil {
		t.Error("nil index returned a row")
	}
}

func TestHubsCachedAndDefaultThreshold(t *testing.T) {
	g := hubTestGraph()
	if g.Hubs() != g.Hubs() {
		t.Error("Hubs not cached")
	}
	// Default threshold floors at hubMinDegree, so this tiny graph has none.
	if g.Hubs().NumHubs() != 0 {
		t.Errorf("tiny graph has %d default hubs, want 0", g.Hubs().NumHubs())
	}
	if got := DefaultHubThreshold(100); got != hubMinDegree {
		t.Errorf("DefaultHubThreshold(100) = %d, want floor %d", got, hubMinDegree)
	}
	if got := DefaultHubThreshold(1 << 20); got != (1<<20)/hubFraction {
		t.Errorf("DefaultHubThreshold(1M) = %d", got)
	}
}
