package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"one field", "0 1\n2\n"},
		{"non-numeric u", "a 1\n"},
		{"non-numeric v", "1 b\n"},
		{"negative", "-1 2\n"},
		{"overflow", "0 4294967296\n"},
		{"sparse hostile ID", "0 4294967295\n"},
		{"oversized line", "0 1\n# " + strings.Repeat("x", 2<<20) + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(c.input))
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("error %v does not wrap ErrMalformed", err)
			}
		})
	}
}

func TestReadEdgeListAccepts(t *testing.T) {
	in := "# comment\n% also comment\n\n0 1\n1 2\n0 1\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("got %d vertices, %d edges; want 3, 3", g.NumVertices(), g.NumEdges())
	}
}

// failingReader simulates a genuine I/O failure mid-stream.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, fmt.Errorf("disk on fire") }

// TestReadEdgeListIOErrorNotMalformed: a transport failure must stay
// distinguishable from bad input.
func TestReadEdgeListIOErrorNotMalformed(t *testing.T) {
	_, err := ReadEdgeList(failingReader{})
	if err == nil {
		t.Fatal("expected an error")
	}
	if errors.Is(err, ErrMalformed) {
		t.Errorf("I/O failure %v must not wrap ErrMalformed", err)
	}
}

// binFile assembles a binary CSR image from raw header words, offsets,
// and adjacency, bypassing WriteBinary's invariants.
func binFile(hdr []uint64, offsets []int64, neigh []uint32) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, hdr)
	binary.Write(&buf, binary.LittleEndian, offsets)
	binary.Write(&buf, binary.LittleEndian, neigh)
	return buf.Bytes()
}

func TestReadBinaryMalformed(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", binFile([]uint64{binaryMagic, 2}, nil, nil)},
		{"bad magic", binFile([]uint64{0xDEAD, 0, 0}, nil, nil)},
		{"implausible vertex count", binFile([]uint64{binaryMagic, 1 << 41, 0}, nil, nil)},
		{"implausible edge count", binFile([]uint64{binaryMagic, 1, 1 << 41}, nil, nil)},
		{"huge count truncated payload", binFile([]uint64{binaryMagic, 1 << 30, 1 << 30}, []int64{0}, nil)},
		{"truncated offsets", binFile([]uint64{binaryMagic, 2, 0}, []int64{0, 0}, nil)},
		{"truncated adjacency", binFile([]uint64{binaryMagic, 2, 2}, []int64{0, 1, 2}, []uint32{1})},
		{"offsets not starting at zero", binFile([]uint64{binaryMagic, 2, 2}, []int64{1, 1, 2}, []uint32{1, 0})},
		{"non-monotone offsets", binFile([]uint64{binaryMagic, 2, 2}, []int64{0, 2, 1}, []uint32{1, 0})},
		{"offset beyond adjacency", binFile([]uint64{binaryMagic, 2, 2}, []int64{0, 3, 2}, []uint32{1, 0})},
		{"offsets end mismatch", binFile([]uint64{binaryMagic, 2, 2}, []int64{0, 1, 1}, []uint32{1, 0})},
		{"neighbor out of range", binFile([]uint64{binaryMagic, 2, 2}, []int64{0, 1, 2}, []uint32{5, 0})},
		{"asymmetric adjacency", binFile([]uint64{binaryMagic, 2, 1}, []int64{0, 1, 1}, []uint32{1})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("error %v does not wrap ErrMalformed", err)
			}
		})
	}
}

func TestReadBinaryRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	want := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Errorf("round trip changed shape: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
}
