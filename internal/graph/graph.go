// Package graph provides the input-graph substrate for the miner and the
// accelerator models: an immutable CSR (compressed sparse row) graph with
// sorted neighbor lists, builders with the preprocessing the paper assumes
// (undirected, no self-loops, no duplicate edges, sorted adjacency), text
// and binary serialization, and degree statistics.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an undirected graph in CSR form. Neighbor lists are sorted
// ascending, contain no self-loops and no duplicates — the representation
// pattern-aware mining requires so all set operations are one-pass merges
// (paper §2.1). A Graph is immutable after construction and safe for
// concurrent readers.
type Graph struct {
	offsets []int64  // len = NumVertices()+1
	neigh   []uint32 // len = 2 × undirected edge count

	hubOnce sync.Once
	hubIdx  *HubIndex // lazily built by Hubs

	hybridOnce sync.Once
	hybridAdj  *HybridAdj // lazily built by Hybrid
}

// Edge is one undirected edge between two vertex IDs.
type Edge struct {
	U, V uint32
}

// Builder accumulates edges and produces a normalized Graph.
type Builder struct {
	numVertices uint32
	edges       []Edge
}

// NewBuilder returns a builder for a graph with at least n vertices.
// Vertices are dense IDs in [0, n); adding an edge with a larger endpoint
// grows the vertex count automatically.
func NewBuilder(n uint32) *Builder {
	return &Builder{numVertices: n}
}

// AddEdge records an undirected edge. Self-loops are dropped silently,
// matching the paper's input preprocessing. Duplicates are removed at
// Build time.
func (b *Builder) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v >= b.numVertices {
		b.numVertices = v + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
}

// NumEdgesAdded returns the number of (possibly duplicate) edges recorded.
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build normalizes the accumulated edges into a CSR graph: duplicates
// removed, both directions materialized, neighbor lists sorted.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	uniq := b.edges[:0]
	var last Edge
	for i, e := range b.edges {
		if i > 0 && e == last {
			continue
		}
		uniq = append(uniq, e)
		last = e
	}
	b.edges = uniq

	n := int(b.numVertices)
	deg := make([]int64, n+1)
	for _, e := range uniq {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	neigh := make([]uint32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range uniq {
		neigh[cursor[e.U]] = e.V
		cursor[e.U]++
		neigh[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, neigh: neigh}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(uint32(v))
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n uint32, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return g.offsets[len(g.offsets)-1] / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.neigh[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v uint32) bool {
	ns := g.Neighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean vertex degree (2E/V).
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(len(g.neigh)) / float64(g.NumVertices())
}

// NeighborBytes returns the size in bytes of v's neighbor list as stored
// in memory (4 bytes per vertex ID), used by the memory timing model.
func (g *Graph) NeighborBytes(v uint32) int64 {
	return 4 * (g.offsets[v+1] - g.offsets[v])
}

// NeighborAddr returns the byte address of v's neighbor list within the
// graph's flat adjacency array, used as the cache/DRAM address.
func (g *Graph) NeighborAddr(v uint32) int64 {
	return 4 * g.offsets[v]
}

// TotalAdjacencyBytes returns the byte size of the whole adjacency array.
func (g *Graph) TotalAdjacencyBytes() int64 { return 4 * int64(len(g.neigh)) }

// Validate checks the CSR invariants: monotone offsets, sorted duplicate-
// free neighbor lists, no self-loops, and symmetric adjacency.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		ns := g.Neighbors(uint32(v))
		for i, w := range ns {
			if int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == uint32(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: neighbor list of %d not strictly sorted", v)
			}
			if !g.HasEdge(w, uint32(v)) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", v, w)
			}
		}
	}
	return nil
}

// Edges returns all undirected edges with U < V, in sorted order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(uint32(v)) {
			if uint32(v) < w {
				out = append(out, Edge{U: uint32(v), V: w})
			}
		}
	}
	return out
}

// Stats summarizes a graph in the format of the paper's Table 1.
type Stats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats returns the Table-1 statistics of g.
func ComputeStats(g *Graph) Stats {
	return Stats{
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
}

// DegreeOrder returns a permutation of vertices sorted by descending
// degree, used by root-vertex scheduling studies.
func (g *Graph) DegreeOrder() []uint32 {
	order := make([]uint32, g.NumVertices())
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}
