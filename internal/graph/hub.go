package graph

// HubIndex holds dense membership bitsets for the graph's hub vertices —
// those whose degree is at least its threshold. A hub's row spans the
// whole vertex universe (one bit per vertex), so a set operation against
// the hub's neighbor list degenerates into per-element bit probes over
// the other input: O(|other|) instead of O(|other| + degree). On
// power-law graphs the handful of hubs absorb a disproportionate share
// of set-operation work (SISA's bitvector-kernel observation), which is
// what makes the index pay for itself.
//
// A HubIndex is immutable after construction and safe for concurrent
// readers.
type HubIndex struct {
	threshold int
	rows      map[uint32][]uint64
}

// hubMinDegree floors the default threshold so small graphs build no
// index at all (the lists are too short for bit probes to matter).
const hubMinDegree = 128

// hubFraction sets the default threshold to NumVertices/hubFraction: a
// row costs n/8 bytes versus 4·degree bytes for the list, so degree ≥
// n/32 is the break-even point where the bitset is no larger than the
// neighbor list it shadows. Total index memory is then bounded by
// 2E/threshold rows × n/8 bytes = E bytes.
const hubFraction = 32

// DefaultHubThreshold returns the degree threshold Hubs uses for a graph
// with n vertices.
func DefaultHubThreshold(n int) int {
	t := n / hubFraction
	if t < hubMinDegree {
		t = hubMinDegree
	}
	return t
}

// NewHubIndex builds an index with an explicit degree threshold, chiefly
// for tests and tuning studies; threshold ≤ 0 selects the default.
func NewHubIndex(g *Graph, threshold int) *HubIndex {
	n := g.NumVertices()
	if threshold <= 0 {
		threshold = DefaultHubThreshold(n)
	}
	idx := &HubIndex{threshold: threshold, rows: map[uint32][]uint64{}}
	words := (n + 63) / 64
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) < threshold {
			continue
		}
		row := make([]uint64, words)
		for _, w := range g.Neighbors(uint32(v)) {
			row[w>>6] |= 1 << (w & 63)
		}
		idx.rows[uint32(v)] = row
	}
	return idx
}

// Hubs returns the graph's hub index with the default threshold, building
// it on first use and caching it for the graph's lifetime. Safe for
// concurrent callers.
func (g *Graph) Hubs() *HubIndex {
	g.hubOnce.Do(func() { g.hubIdx = NewHubIndex(g, 0) })
	return g.hubIdx
}

// Threshold returns the degree at or above which vertices have rows.
func (h *HubIndex) Threshold() int { return h.threshold }

// NumHubs returns the number of indexed vertices.
func (h *HubIndex) NumHubs() int {
	if h == nil {
		return 0
	}
	return len(h.rows)
}

// MemoryBytes returns the RAM the index's rows occupy, the dense-tier
// share of a hybrid view's footprint.
func (h *HubIndex) MemoryBytes() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for _, row := range h.rows {
		n += int64(8 * len(row))
	}
	return n
}

// Row returns v's membership bitset, or nil when v is not a hub. The
// returned slice is shared and must not be modified.
func (h *HubIndex) Row(v uint32) []uint64 {
	if h == nil || len(h.rows) == 0 {
		return nil
	}
	return h.rows[v]
}
