package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list text stream, the
// format used by SNAP datasets: one "u v" pair per line, '#' or '%'
// prefixed lines are comments. The result is normalized (undirected,
// deduplicated, sorted).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two vertex IDs, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a "u v" per line text edge list with
// u < v, suitable for ReadEdgeList round-tripping.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary CSR file format.
const binaryMagic = 0x46475253 // "FGRS"

// WriteBinary serializes the graph in a compact little-endian CSR format:
// magic, vertex count, adjacency length, offsets, neighbors.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.NumVertices()), uint64(len(g.neigh))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return fmt.Errorf("graph: writing offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.neigh); err != nil {
		return fmt.Errorf("graph: writing adjacency: %w", err)
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates
// its invariants.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	hdr := make([]uint64, 3)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, m := int(hdr[1]), int(hdr[2])
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: corrupt header (n=%d, m=%d)", n, m)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		neigh:   make([]uint32, m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.neigh); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	if g.offsets[n] != int64(m) {
		return nil, fmt.Errorf("graph: offsets end %d does not match adjacency length %d", g.offsets[n], m)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadFile loads a graph from path, detecting the format: ".bin" files use
// the binary CSR format, anything else is parsed as a text edge list.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadEdgeList(f)
}

// SaveFile writes a graph to path, using the binary format for ".bin"
// paths and the text edge list otherwise.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return WriteBinary(f, g)
	}
	return WriteEdgeList(f, g)
}
