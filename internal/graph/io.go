package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ErrMalformed is the sentinel every graph-ingest format or invariant
// violation wraps: bad magic, truncated payloads, non-monotone or
// out-of-range offsets, unsorted or asymmetric adjacency, unparseable
// edge lists, and implausible headers. errors.Is(err, ErrMalformed)
// distinguishes bad input from genuine I/O failure.
var ErrMalformed = errors.New("malformed graph")

// malformedf wraps ErrMalformed with a formatted detail message.
func malformedf(format string, args ...interface{}) error {
	return fmt.Errorf("graph: "+format+": %w", append(args, ErrMalformed)...)
}

// maxSparseVertexID bounds the largest vertex ID a text edge list may
// introduce without a proportional number of edges backing it: builder
// memory is O(max ID), so a single hostile line ("0 4294967295") must
// not force a multi-gigabyte allocation. Dense real-world graphs are
// unaffected — the cap scales with the edge count.
const maxSparseVertexID = 1 << 20

// ReadEdgeList parses a whitespace-separated edge-list text stream, the
// format used by SNAP datasets: one "u v" pair per line, '#' or '%'
// prefixed lines are comments. The result is normalized (undirected,
// deduplicated, sorted). Malformed lines and implausibly sparse vertex
// IDs (see maxSparseVertexID) are reported as ErrMalformed-wrapping
// errors.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var maxID uint64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, malformedf("line %d: want two vertex IDs, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, malformedf("line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, malformedf("line %d: %v", lineNo, err)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		b.AddEdge(uint32(u), uint32(v))
		if maxID > maxSparseVertexID && maxID > uint64(1024*b.NumEdgesAdded()) {
			return nil, malformedf("line %d: vertex ID %d implausibly sparse for %d edges",
				lineNo, maxID, b.NumEdgesAdded())
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, malformedf("line %d: %v", lineNo+1, err)
		}
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a "u v" per line text edge list with
// u < v, suitable for ReadEdgeList round-tripping.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary CSR file format.
const binaryMagic = 0x46475253 // "FGRS"

// maxBinaryCount bounds the vertex and adjacency counts a binary header
// may claim, far above any graph this simulator models but low enough to
// reject a corrupt header before any allocation math can overflow.
const maxBinaryCount = 1 << 40

// WriteBinary serializes the graph in a compact little-endian CSR format:
// magic, vertex count, adjacency length, offsets, neighbors.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.NumVertices()), uint64(len(g.neigh))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return fmt.Errorf("graph: writing offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.neigh); err != nil {
		return fmt.Errorf("graph: writing adjacency: %w", err)
	}
	return bw.Flush()
}

// readChunkInt64 reads count little-endian int64s in bounded chunks, so
// a header claiming a huge count cannot force an allocation larger than
// the data actually present in the stream.
func readChunkInt64(r io.Reader, count int) ([]int64, error) {
	const chunk = 1 << 16
	cap0 := count
	if cap0 > chunk {
		cap0 = chunk
	}
	out := make([]int64, 0, cap0)
	buf := make([]int64, chunk)
	for len(out) < count {
		k := count - len(out)
		if k > chunk {
			k = chunk
		}
		if err := binary.Read(r, binary.LittleEndian, buf[:k]); err != nil {
			return nil, err
		}
		out = append(out, buf[:k]...)
	}
	return out, nil
}

// readChunkUint32 is readChunkInt64 for uint32 payloads.
func readChunkUint32(r io.Reader, count int) ([]uint32, error) {
	const chunk = 1 << 16
	cap0 := count
	if cap0 > chunk {
		cap0 = chunk
	}
	out := make([]uint32, 0, cap0)
	buf := make([]uint32, chunk)
	for len(out) < count {
		k := count - len(out)
		if k > chunk {
			k = chunk
		}
		if err := binary.Read(r, binary.LittleEndian, buf[:k]); err != nil {
			return nil, err
		}
		out = append(out, buf[:k]...)
	}
	return out, nil
}

// ReadBinary deserializes a graph written by WriteBinary, rejecting any
// structurally unsound input with an ErrMalformed-wrapping error before
// a single neighbor list is dereferenced: implausible headers, truncated
// payloads, offsets that are non-monotone, out of range, or don't start
// at zero, and CSR invariant violations (Validate). Allocation is
// bounded by the bytes actually present in the stream, so a hostile
// header cannot exhaust memory.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	hdr := make([]uint64, 3)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, malformedf("reading header: %v", err)
	}
	if hdr[0] != binaryMagic {
		return nil, malformedf("bad magic %#x", hdr[0])
	}
	if hdr[1] > maxBinaryCount || hdr[2] > maxBinaryCount {
		return nil, malformedf("implausible header (n=%d, m=%d)", hdr[1], hdr[2])
	}
	n, m := int(hdr[1]), int(hdr[2])
	offsets, err := readChunkInt64(br, n+1)
	if err != nil {
		return nil, malformedf("reading offsets: %v", err)
	}
	neigh, err := readChunkUint32(br, m)
	if err != nil {
		return nil, malformedf("reading adjacency: %v", err)
	}
	// Bounds-check every offset before Validate walks neighbor lists:
	// Neighbors slices the adjacency array with these values, so a
	// negative or oversized offset would panic, not error.
	if offsets[0] != 0 {
		return nil, malformedf("offsets start at %d, want 0", offsets[0])
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, malformedf("offsets not monotone at vertex %d", v)
		}
		if offsets[v+1] > int64(m) {
			return nil, malformedf("offset %d of vertex %d exceeds adjacency length %d", offsets[v+1], v, m)
		}
	}
	if offsets[n] != int64(m) {
		return nil, malformedf("offsets end %d does not match adjacency length %d", offsets[n], m)
	}
	g := &Graph{offsets: offsets, neigh: neigh}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrMalformed)
	}
	return g, nil
}

// LoadFile loads a graph from path, detecting the format: ".bin" files use
// the binary CSR format, anything else is parsed as a text edge list.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadEdgeList(f)
}

// SaveFile writes a graph to path, using the binary format for ".bin"
// paths and the text edge list otherwise.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return WriteBinary(f, g)
	}
	return WriteEdgeList(f, g)
}
