package graph

import (
	"bytes"
	"testing"
)

// FuzzLoadGraph drives both ingest formats with arbitrary bytes. The
// contract under fuzz: never panic, never allocate proportionally to a
// hostile header, and any accepted graph satisfies the CSR invariants.
func FuzzLoadGraph(f *testing.F) {
	// Text edge-list seeds.
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n% comment\n\n3 4\n"))
	f.Add([]byte("0 4294967295\n"))
	f.Add([]byte("a b\n"))
	// Binary seeds: a valid round-trip image and corruptions of it.
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		if g, err := ReadEdgeList(bytes.NewReader(data)); err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("ReadEdgeList accepted an invalid graph: %v", verr)
			}
		}
		if g, err := ReadBinary(bytes.NewReader(data)); err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("ReadBinary accepted an invalid graph: %v", verr)
			}
		}
	})
}
