package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGraph(seed int64, n uint32, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Uint32()%n, rng.Uint32()%n)
	}
	return b.Build()
}

// naiveCoreNumbers peels iteratively without bucketing.
func naiveCoreNumbers(g *Graph) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	removed := make([]bool, n)
	core := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(uint32(v))
	}
	for k := 0; ; k++ {
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] <= k {
					removed[v] = true
					core[v] = k
					changed = true
					for _, w := range g.Neighbors(uint32(v)) {
						if !removed[w] {
							deg[w]--
						}
					}
				}
			}
		}
		done := true
		for v := 0; v < n; v++ {
			if !removed[v] {
				done = false
				break
			}
		}
		if done {
			return core
		}
	}
}

func TestCoreNumbersAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed, 40, 120)
		got := g.CoreNumbers()
		want := naiveCoreNumbers(g)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("seed %d: core[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestCoreNumbersKnownShapes(t *testing.T) {
	// K5: every vertex has core 4.
	k5 := FromEdges(5, completeEdges(5))
	for v, c := range k5.CoreNumbers() {
		if c != 4 {
			t.Errorf("K5 core[%d] = %d", v, c)
		}
	}
	if k5.Degeneracy() != 4 {
		t.Errorf("K5 degeneracy = %d", k5.Degeneracy())
	}
	// A path: all cores 1 (ends included — after peeling degree-1s
	// repeatedly everything unravels at k=1... the ends have core 1).
	path := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	for v, c := range path.CoreNumbers() {
		if c != 1 {
			t.Errorf("path core[%d] = %d", v, c)
		}
	}
	// A star: hub and leaves all core 1.
	star := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if star.Degeneracy() != 1 {
		t.Errorf("star degeneracy = %d", star.Degeneracy())
	}
}

func completeEdges(n int) []Edge {
	var out []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Edge{U: uint32(i), V: uint32(j)})
		}
	}
	return out
}

func TestDegeneracyOrderSorted(t *testing.T) {
	g := randomGraph(3, 60, 200)
	core := g.CoreNumbers()
	order := g.DegeneracyOrder()
	if len(order) != g.NumVertices() {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if core[order[i-1]] > core[order[i]] {
			t.Fatalf("order not sorted by core at %d", i)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := FromEdges(7, []Edge{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	labels, num := g.ConnectedComponents()
	if num != 3 {
		t.Fatalf("components = %d, want 3", num)
	}
	if labels[0] != labels[1] || labels[0] != labels[2] {
		t.Error("first triangle split")
	}
	if labels[3] != labels[4] || labels[0] == labels[3] {
		t.Error("components mislabeled")
	}
	if labels[6] == labels[0] || labels[6] == labels[3] {
		t.Error("isolated vertex merged into a triangle's component")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := randomGraph(9, 30, 80)
	order := g.DegreeOrder()
	r := g.Relabel(order)
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatal("relabel changed size")
	}
	if r.TriangleCount() != g.TriangleCount() {
		t.Error("relabel changed triangle count")
	}
	// New vertex 0 is the old highest-degree vertex.
	if r.Degree(0) != g.Degree(order[0]) {
		t.Error("relabel order not honored")
	}
}

func TestRelabelRejectsBadOrders(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}})
	for _, order := range [][]uint32{{0, 1}, {0, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v accepted", order)
				}
			}()
			g.Relabel(order)
		}()
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}})
	sub, back := g.InducedSubgraph([]uint32{0, 1, 2, 3})
	if sub.NumVertices() != 4 || sub.NumEdges() != 4 {
		t.Fatalf("subgraph %d/%d", sub.NumVertices(), sub.NumEdges())
	}
	if back[0] != 0 || back[3] != 3 {
		t.Error("back mapping wrong")
	}
	if sub.TriangleCount() != 1 {
		t.Errorf("subgraph triangles = %d", sub.TriangleCount())
	}
}

func TestInducedSubgraphRejectsDuplicates(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Error("duplicate vertex accepted")
		}
	}()
	g.InducedSubgraph([]uint32{0, 0})
}

func TestTriangleCountClosedForms(t *testing.T) {
	if got := FromEdges(6, completeEdges(6)).TriangleCount(); got != 20 {
		t.Errorf("K6 triangles = %d, want 20", got)
	}
	ring := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if got := ring.TriangleCount(); got != 0 {
		t.Errorf("C5 triangles = %d", got)
	}
}

func TestTriangleCountMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 60)
		var naive int64
		n := g.NumVertices()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if g.HasEdge(uint32(a), uint32(b)) && g.HasEdge(uint32(b), uint32(c)) && g.HasEdge(uint32(a), uint32(c)) {
						naive++
					}
				}
			}
		}
		return g.TriangleCount() == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDegeneracyBoundsCliques(t *testing.T) {
	// A graph with a planted K6 must have degeneracy ≥ 5.
	b := NewBuilder(30)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(uint32(i), uint32(j))
		}
	}
	for v := uint32(6); v < 30; v++ {
		b.AddEdge(v-1, v)
	}
	g := b.Build()
	if g.Degeneracy() < 5 {
		t.Errorf("degeneracy = %d, want ≥ 5", g.Degeneracy())
	}
}

func TestRelabelErr(t *testing.T) {
	g := randomGraph(7, 10, 30)
	if _, err := g.RelabelErr([]uint32{0, 1}); err == nil {
		t.Error("short order: expected an error")
	}
	bad := make([]uint32, g.NumVertices())
	for i := range bad {
		bad[i] = uint32(i)
	}
	bad[3] = uint32(g.NumVertices()) // out of range
	if _, err := g.RelabelErr(bad); err == nil {
		t.Error("out-of-range vertex: expected an error")
	}
	bad[3] = bad[4] // repeated vertex
	if _, err := g.RelabelErr(bad); err == nil {
		t.Error("repeated vertex: expected an error")
	}
	order := make([]uint32, g.NumVertices())
	for i := range order {
		order[i] = uint32(g.NumVertices() - 1 - i)
	}
	got, err := g.RelabelErr(order)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Relabel(order)
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Error("RelabelErr diverges from Relabel")
	}
}
