// Package gen generates deterministic synthetic graphs. It substitutes
// for the real-world SNAP datasets of the paper's Table 1 (which cannot be
// redistributed here): the power-law cluster model reproduces the three
// properties the evaluation depends on — heavy-tailed degree distribution
// (load imbalance), tunable average degree (set sizes and thus available
// parallelism), and tunable triadic closure (clique density).
package gen

import (
	"math/rand"

	"fingers/internal/graph"
)

// ErdosRenyi returns a G(n, m) random graph: m distinct undirected edges
// chosen uniformly. Degree distribution is binomial (no heavy tail).
func ErdosRenyi(n uint32, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[uint64]bool, m)
	for len(seen) < m {
		u := rng.Uint32() % n
		v := rng.Uint32() % n
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches to mPer existing vertices chosen proportionally to degree,
// producing a power-law degree distribution.
func BarabasiAlbert(n uint32, mPer int, seed int64) *graph.Graph {
	return PowerLawCluster(n, mPer, 0, seed)
}

// PowerLawCluster returns a Holme–Kim power-law clustered graph: like
// Barabási–Albert, but after each preferential attachment step, with
// probability triadP the next link closes a triangle with a neighbor of
// the previous target. Higher triadP plants more triangles and cliques.
func PowerLawCluster(n uint32, mPer int, triadP float64, seed int64) *graph.Graph {
	if mPer < 1 {
		mPer = 1
	}
	if int(n) < mPer+1 {
		mPer = int(n) - 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// repeated holds every edge endpoint once per incidence, so sampling a
	// uniform element samples vertices proportionally to degree.
	repeated := make([]uint32, 0, 2*int(n)*mPer)
	adj := make(map[uint64]bool)
	addEdge := func(u, v uint32) bool {
		if u == v {
			return false
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		key := uint64(a)<<32 | uint64(c)
		if adj[key] {
			return false
		}
		adj[key] = true
		b.AddEdge(u, v)
		repeated = append(repeated, u, v)
		return true
	}
	// Seed clique of mPer+1 vertices.
	m0 := uint32(mPer + 1)
	for u := uint32(0); u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			addEdge(u, v)
		}
	}
	// partner caches each vertex's partners so the triad-formation step
	// samples a neighbor of the last target without quadratic scans.
	partner := make(map[uint32][]uint32, n)
	recordPartner := func(u, v uint32) {
		partner[u] = append(partner[u], v)
		partner[v] = append(partner[v], u)
	}
	for u := uint32(0); u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			recordPartner(u, v)
		}
	}
	for v := m0; v < n; v++ {
		var lastTarget uint32
		haveLast := false
		for added := 0; added < mPer; {
			var target uint32
			if haveLast && rng.Float64() < triadP {
				// Triad formation: link to a random partner of the last
				// preferential target.
				cands := partner[lastTarget]
				target = cands[rng.Intn(len(cands))]
			} else {
				target = repeated[rng.Intn(len(repeated))]
			}
			if addEdge(v, target) {
				recordPartner(v, target)
				lastTarget = target
				haveLast = true
				added++
			} else if haveLast && rng.Float64() < 0.5 {
				// Avoid livelock on saturated neighborhoods.
				haveLast = false
			}
		}
	}
	return b.Build()
}

// WithPlantedCliques returns a copy of g with extra k-cliques planted on
// randomly chosen vertex sets, increasing dense-subgraph counts the way
// community-structured graphs (Mico, LiveJournal) have them.
func WithPlantedCliques(g *graph.Graph, cliques, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := uint32(g.NumVertices())
	b := graph.NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	members := make([]uint32, k)
	for c := 0; c < cliques; c++ {
		seen := make(map[uint32]bool, k)
		for i := 0; i < k; {
			v := rng.Uint32() % n
			if !seen[v] {
				seen[v] = true
				members[i] = v
				i++
			}
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Star returns a star with one hub (vertex 0) and n−1 leaves — the
// maximally skewed degree distribution.
func Star(n uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := uint32(1); v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Ring returns the cycle graph C_n.
func Ring(n uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := uint32(0); v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Path returns the path graph P_n.
func Path(n uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := uint32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}
