package gen

import (
	"testing"

	"fingers/internal/graph"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumEdges() != 300 {
		t.Errorf("NumEdges = %d, want 300", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 100, 42)
	b := ErdosRenyi(50, 100, 42)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := ErdosRenyi(50, 100, 43)
	same := true
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	// Preferential attachment must produce a heavy tail: the max degree
	// should far exceed the average.
	if float64(st.MaxDegree) < 5*st.AvgDegree {
		t.Errorf("no heavy tail: max=%d avg=%.1f", st.MaxDegree, st.AvgDegree)
	}
	if st.Vertices != 2000 {
		t.Errorf("vertices = %d", st.Vertices)
	}
}

func countTriangles(g *graph.Graph) int {
	n := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u <= uint32(v) {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if w > u && g.HasEdge(uint32(v), w) {
					n++
				}
			}
		}
	}
	return n
}

func TestPowerLawClusterAddsTriangles(t *testing.T) {
	plain := PowerLawCluster(1000, 4, 0, 11)
	clustered := PowerLawCluster(1000, 4, 0.8, 11)
	tp, tc := countTriangles(plain), countTriangles(clustered)
	if tc <= tp {
		t.Errorf("triad step did not increase triangles: plain=%d clustered=%d", tp, tc)
	}
	if err := clustered.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithPlantedCliques(t *testing.T) {
	base := ErdosRenyi(200, 100, 3)
	before := countTriangles(base)
	planted := WithPlantedCliques(base, 5, 5, 9)
	after := countTriangles(planted)
	// Each planted 5-clique contributes C(5,3)=10 triangles (minus overlap).
	if after < before+30 {
		t.Errorf("cliques not planted: triangles %d → %d", before, after)
	}
	if err := planted.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityGraphs(t *testing.T) {
	k5 := Complete(5)
	if k5.NumEdges() != 10 || countTriangles(k5) != 10 {
		t.Errorf("K5: edges=%d triangles=%d", k5.NumEdges(), countTriangles(k5))
	}
	star := Star(10)
	if star.MaxDegree() != 9 || star.NumEdges() != 9 {
		t.Errorf("star shape wrong: max=%d m=%d", star.MaxDegree(), star.NumEdges())
	}
	ring := Ring(6)
	if ring.NumEdges() != 6 || ring.MaxDegree() != 2 {
		t.Errorf("ring shape wrong")
	}
	path := Path(5)
	if path.NumEdges() != 4 {
		t.Errorf("path shape wrong")
	}
	for _, g := range []*graph.Graph{k5, star, ring, path} {
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestPowerLawClusterSmallN(t *testing.T) {
	// Degenerate sizes must not loop forever or panic.
	g := PowerLawCluster(3, 5, 0.5, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Error("empty graph for small n")
	}
}
