package profile

import (
	"strings"
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

func TestProfileCountsMatchMiner(t *testing.T) {
	g := gen.PowerLawCluster(400, 5, 0.6, 3)
	for _, name := range []string{"tc", "tt", "cyc", "dia"} {
		p, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pl := plan.MustCompile(p, plan.Options{})
		prof := Run(g, pl, Config{})
		if want := mine.Count(g, pl); prof.Embeddings != want {
			t.Errorf("%s: profile found %d embeddings, want %d", name, prof.Embeddings, want)
		}
		if prof.TotalTasks() == 0 {
			t.Errorf("%s: no tasks recorded", name)
		}
	}
}

// TestCliqueHasNoSetLevelParallelism verifies the paper's §6.2 claim:
// clique plans update one shared candidate set per task (no set-level
// parallelism), while the tailed triangle carries more distinct updates.
func TestCliqueHasNoSetLevelParallelism(t *testing.T) {
	g := gen.PowerLawCluster(400, 6, 0.7, 5)
	clique := Run(g, plan.MustCompile(pattern.Clique(4), plan.Options{}), Config{})
	tt := Run(g, plan.MustCompile(pattern.TailedTriangle(), plan.Options{}), Config{})
	if c := clique.MeanOpsPerTask(); c > 1.01 {
		t.Errorf("4-clique set-level parallelism = %.2f, want ≈ 1 (all sets shared)", c)
	}
	if ttOps := tt.MeanOpsPerTask(); ttOps <= clique.MeanOpsPerTask() {
		t.Errorf("tt set-level (%.2f) not above clique (%.2f)", ttOps, clique.MeanOpsPerTask())
	}
}

// TestDenserGraphMoreSegments verifies that segment-level parallelism
// grows with vertex degree (§3.4: huge neighbor lists divide into more
// workloads).
func TestDenserGraphMoreSegments(t *testing.T) {
	sparse := gen.PowerLawCluster(500, 2, 0.3, 7)
	dense := gen.PowerLawCluster(500, 12, 0.3, 7)
	pl := plan.MustCompile(pattern.TailedTriangle(), plan.Options{})
	ps := Run(sparse, pl, Config{})
	pd := Run(dense, pl, Config{})
	if pd.MeanWorkloadsPerOp() <= ps.MeanWorkloadsPerOp() {
		t.Errorf("dense graph segments (%.2f) not above sparse (%.2f)",
			pd.MeanWorkloadsPerOp(), ps.MeanWorkloadsPerOp())
	}
}

func TestMaxRootsBoundsWork(t *testing.T) {
	g := gen.PowerLawCluster(500, 4, 0.5, 9)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	full := Run(g, pl, Config{})
	partial := Run(g, pl, Config{MaxRoots: 50})
	if partial.RootsWalked != 50 {
		t.Errorf("roots walked = %d", partial.RootsWalked)
	}
	if partial.TotalTasks() >= full.TotalTasks() {
		t.Error("partial profile did not reduce work")
	}
}

func TestBranchingDecreasesWithDepthForCliques(t *testing.T) {
	// §6.2: branch-level parallelism shrinks as the clique search deepens.
	g := gen.PowerLawCluster(600, 8, 0.8, 11)
	pl := plan.MustCompile(pattern.Clique(5), plan.Options{})
	prof := Run(g, pl, Config{})
	// Compare the first interior level's mean branching with the last's.
	var first, last float64
	seen := false
	for i := range prof.Levels {
		lp := &prof.Levels[i]
		if lp.Branching.Count() == 0 {
			continue
		}
		if !seen {
			first = lp.Branching.Mean()
			seen = true
		}
		last = lp.Branching.Mean()
	}
	if !seen {
		t.Skip("no interior levels (graph too sparse for 5-cliques)")
	}
	if last > first {
		t.Errorf("branching grew with depth: %.2f → %.2f", first, last)
	}
}

func TestProfileRendering(t *testing.T) {
	g := gen.Complete(8)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	out := Run(g, pl, Config{}).String()
	for _, want := range []string{"parallelism profile", "level", "overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.longSeg() != 16 || c.shortSeg() != 4 || c.maxLoad() != 2 {
		t.Errorf("defaults = %d/%d/%d", c.longSeg(), c.shortSeg(), c.maxLoad())
	}
}
