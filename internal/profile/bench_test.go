package profile

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// BenchmarkProfile measures the §3 parallelism profiling pass.
func BenchmarkProfile(b *testing.B) {
	g := gen.PowerLawCluster(2000, 5, 0.5, 3)
	pl := plan.MustCompile(pattern.TailedTriangle(), plan.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(g, pl, Config{MaxRoots: 500})
	}
}
