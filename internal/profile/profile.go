// Package profile quantifies the fine-grained parallelism a workload
// exposes — the analysis of the paper's §3. Walking a plan's search tree
// once, it measures the three levels FINGERS exploits:
//
//   - branch-level: how many sibling tasks each node spawns (§3.2) — the
//     scheduling slack pseudo-DFS task groups draw from;
//   - set-level: how many distinct candidate-set updates each task
//     carries after sharing (§3.3) — the concurrent operations one task
//     offers the IU array;
//   - segment-level: how many segment workloads each set operation
//     divides into (§3.4) — the intra-operation parallelism.
//
// The paper's §6.2 explains every speedup difference through these
// quantities (cliques have no set-level parallelism, tt has huge
// segment-level parallelism, Yo's low degrees bound everything); this
// package makes those claims measurable on any graph and pattern.
package profile

import (
	"fmt"
	"strings"

	"fingers/internal/graph"
	"fingers/internal/mine"
	"fingers/internal/plan"
	"fingers/internal/setops"
	"fingers/internal/stats"
)

// Config bounds a profiling pass.
type Config struct {
	// MaxRoots caps the number of root vertices walked; 0 walks all.
	// Profiles converge quickly, so a few thousand roots suffice on
	// large graphs.
	MaxRoots int
	// LongSegLen and ShortSegLen set the segment geometry used to count
	// segment-level workloads; zero values use the paper defaults.
	LongSegLen, ShortSegLen int
	// MaxLoad is the load-balance split threshold; zero uses the default.
	MaxLoad int
}

func (c Config) longSeg() int {
	if c.LongSegLen > 0 {
		return c.LongSegLen
	}
	return setops.DefaultLongSegLen
}

func (c Config) shortSeg() int {
	if c.ShortSegLen > 0 {
		return c.ShortSegLen
	}
	return setops.DefaultShortSegLen
}

func (c Config) maxLoad() int {
	if c.MaxLoad > 0 {
		return c.MaxLoad
	}
	return 2
}

// LevelProfile aggregates one tree level.
type LevelProfile struct {
	// Level is the tree depth (0 = root tasks).
	Level int
	// Tasks is the number of extension tasks executed at this level.
	Tasks int64
	// Branching summarizes the branch-level parallelism: the number of
	// children each task at this level spawns.
	Branching stats.Summary
	// OpsPerTask summarizes set-level parallelism: distinct set
	// operations per task after sharing.
	OpsPerTask stats.Summary
	// WorkloadsPerOp summarizes segment-level parallelism: balanced
	// workloads per set operation.
	WorkloadsPerOp stats.Summary
	// SetSizes histograms the materialized candidate-set sizes.
	SetSizes stats.Histogram
}

// Profile is the full parallelism profile of (graph, plan).
type Profile struct {
	Levels []LevelProfile
	// RootsWalked is the number of search trees included.
	RootsWalked int
	// Embeddings is the count found during the walk (a correctness
	// cross-check when all roots are walked).
	Embeddings uint64
}

// Run profiles the plan on g.
func Run(g *graph.Graph, pl *plan.Plan, cfg Config) *Profile {
	e := mine.NewEngine(g, pl)
	p := &Profile{Levels: make([]LevelProfile, pl.K())}
	for i := range p.Levels {
		p.Levels[i].Level = i
	}
	roots := g.NumVertices()
	if cfg.MaxRoots > 0 && roots > cfg.MaxRoots {
		roots = cfg.MaxRoots
	}
	var walk func(n *mine.Node)
	walk = func(n *mine.Node) {
		if n.Level == pl.K()-2 {
			p.Embeddings += e.LeafCount(n)
			return
		}
		cands := e.Candidates(n)
		p.Levels[n.Level].Branching.AddN(len(cands))
		for _, v := range cands {
			child, info := e.Extend(n, v)
			p.record(child.Level, info, cfg)
			walk(child)
		}
	}
	for v := 0; v < roots; v++ {
		root, info := e.Start(uint32(v))
		p.record(0, info, cfg)
		walk(root)
	}
	p.RootsWalked = roots
	return p
}

func (p *Profile) record(level int, info mine.TaskInfo, cfg Config) {
	lp := &p.Levels[level]
	lp.Tasks++
	lp.OpsPerTask.AddN(len(info.Ops))
	for _, op := range info.Ops {
		long := setops.Segment(op.Long, cfg.longSeg())
		short := setops.Segment(op.Short, cfg.shortSeg())
		pairing := setops.Pair(long, short)
		workloads := setops.Balance(pairing, op.Kind, cfg.maxLoad())
		lp.WorkloadsPerOp.AddN(len(workloads))
		lp.SetSizes.Add(len(op.Result))
	}
}

// TotalTasks returns the task count over all levels.
func (p *Profile) TotalTasks() int64 {
	var n int64
	for i := range p.Levels {
		n += p.Levels[i].Tasks
	}
	return n
}

// MeanOpsPerTask returns the overall set-level parallelism.
func (p *Profile) MeanOpsPerTask() float64 {
	var sum, n float64
	for i := range p.Levels {
		sum += p.Levels[i].OpsPerTask.Sum()
		n += float64(p.Levels[i].OpsPerTask.Count())
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// MeanWorkloadsPerOp returns the overall segment-level parallelism.
func (p *Profile) MeanWorkloadsPerOp() float64 {
	var sum, n float64
	for i := range p.Levels {
		sum += p.Levels[i].WorkloadsPerOp.Sum()
		n += float64(p.Levels[i].WorkloadsPerOp.Count())
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// MeanBranching returns the overall branch-level parallelism (children
// per interior task).
func (p *Profile) MeanBranching() float64 {
	var sum, n float64
	for i := range p.Levels {
		sum += p.Levels[i].Branching.Sum()
		n += float64(p.Levels[i].Branching.Count())
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// String renders the per-level profile table.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "parallelism profile: %d roots, %d tasks, %d embeddings\n",
		p.RootsWalked, p.TotalTasks(), p.Embeddings)
	fmt.Fprintf(&sb, "%-6s %12s %14s %14s %16s\n",
		"level", "tasks", "branch (mean)", "sets (mean)", "segments (mean)")
	for i := range p.Levels {
		lp := &p.Levels[i]
		if lp.Tasks == 0 && lp.Branching.Count() == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-6d %12d %14.2f %14.2f %16.2f\n",
			lp.Level, lp.Tasks, lp.Branching.Mean(), lp.OpsPerTask.Mean(), lp.WorkloadsPerOp.Mean())
	}
	fmt.Fprintf(&sb, "overall: branch %.2f × sets %.2f × segments %.2f\n",
		p.MeanBranching(), p.MeanOpsPerTask(), p.MeanWorkloadsPerOp())
	return sb.String()
}
