package exp

import (
	"strings"
	"testing"

	"fingers/internal/datasets"
	"fingers/internal/fingers"
	"fingers/internal/mine"
)

var quick = Options{Quick: true, FlexPEs: 4, FingersPEs: 2}

func TestPlansFor(t *testing.T) {
	for _, name := range Benchmarks {
		plans, err := PlansFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := 1
		if name == "3mc" {
			want = 2
		}
		if len(plans) != want {
			t.Errorf("%s: %d plans, want %d", name, len(plans), want)
		}
	}
	if _, err := PlansFor("bogus"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFig9QuickShape(t *testing.T) {
	grid := Fig9(quick)
	if len(grid.Graphs) != 2 || len(grid.Patterns) != 3 {
		t.Fatalf("quick grid shape %v × %v", grid.Patterns, grid.Graphs)
	}
	for _, p := range grid.Patterns {
		for _, g := range grid.Graphs {
			c := grid.Cells[p][g]
			if c.Fingers.Count != c.Flex.Count {
				t.Errorf("%s/%s: counts diverge", p, g)
			}
			if c.Speedup <= 1 {
				t.Errorf("%s/%s: single-PE speedup %.2f ≤ 1", p, g, c.Speedup)
			}
		}
	}
	if grid.Mean() <= 1 || grid.Max() < grid.Mean() {
		t.Errorf("mean %.2f max %.2f inconsistent", grid.Mean(), grid.Max())
	}
	out := grid.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "geomean") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestFig10QuickIsoArea(t *testing.T) {
	grid := Fig10(quick)
	for _, p := range grid.Patterns {
		for _, g := range grid.Graphs {
			c := grid.Cells[p][g]
			if c.Fingers.Count != c.Flex.Count {
				t.Errorf("%s/%s: counts diverge", p, g)
			}
			if c.Speedup <= 0 {
				t.Errorf("%s/%s: speedup %.2f", p, g, c.Speedup)
			}
		}
	}
}

func TestFig11QuickDirection(t *testing.T) {
	grid := Fig11(quick)
	for _, p := range grid.Patterns {
		for _, g := range grid.Graphs {
			c := grid.Cells[p][g]
			if c.Fingers.Count != c.Flex.Count {
				t.Errorf("%s/%s: pseudo-DFS changed counts", p, g)
			}
			if c.Speedup < 0.95 {
				t.Errorf("%s/%s: pseudo-DFS hurt badly: %.2f", p, g, c.Speedup)
			}
		}
	}
}

func TestFig12QuickMonotoneStart(t *testing.T) {
	r := Fig12(quick)
	if len(r.Series) == 0 {
		t.Fatal("no series")
	}
	s := r.Series[0]
	if len(s.Points) != len(Fig12IUCounts) {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Speedup != 1.0 {
		t.Errorf("baseline speedup = %v", s.Points[0].Speedup)
	}
	// More IUs must help somewhere in the sweep.
	improved := false
	for _, p := range s.Points[1:] {
		if p.Speedup > 1.1 {
			improved = true
		}
	}
	if !improved {
		t.Error("IU scaling showed no improvement at any point")
	}
	if !strings.Contains(r.String(), "Figure 12") {
		t.Error("rendering broken")
	}
}

func TestFig13QuickRates(t *testing.T) {
	r := Fig13(quick)
	if len(r.Curves) != 2 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Points) != len(Fig13PaperCapacitiesMB) {
			t.Fatalf("%s-%s: %d points", c.Graph, c.Design, len(c.Points))
		}
		for i, p := range c.Points {
			if p.MissRate < 0 || p.MissRate > 1 {
				t.Errorf("%s-%s: miss rate %v", c.Graph, c.Design, p.MissRate)
			}
			if i > 0 && p.MissRate > c.Points[i-1].MissRate+0.02 {
				t.Errorf("%s-%s: miss rate increased with capacity: %v → %v",
					c.Graph, c.Design, c.Points[i-1].MissRate, p.MissRate)
			}
		}
	}
	if !strings.Contains(r.String(), "Figure 13") {
		t.Error("rendering broken")
	}
}

func TestTable3QuickRates(t *testing.T) {
	r := Table3(quick)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ActiveRate <= 0 || row.ActiveRate > 1 {
			t.Errorf("%s: active rate %v", row.Pattern, row.ActiveRate)
		}
		if row.BalanceRate <= 0 || row.BalanceRate > 1.0001 {
			t.Errorf("%s: balance rate %v", row.Pattern, row.BalanceRate)
		}
	}
	if !strings.Contains(r.String(), "Table 3") {
		t.Error("rendering broken")
	}
}

func TestTables1And2Render(t *testing.T) {
	if !strings.Contains(Table1(), "Orkut") {
		t.Error("Table1 broken")
	}
	if !strings.Contains(Table2(), "Intersect Units") {
		t.Error("Table2 broken")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.flexPEs() != 40 || o.fingersPEs() != 20 {
		t.Errorf("default PEs = %d/%d", o.flexPEs(), o.fingersPEs())
	}
	if o.cacheBytes() != datasets.ScaledSharedCacheBytes {
		t.Errorf("default cache = %d", o.cacheBytes())
	}
	if len(o.graphs()) != 6 || len(o.patterns()) != 7 {
		t.Errorf("default grid %d × %d", len(o.graphs()), len(o.patterns()))
	}
}

// TestCellCountsAgainstReference spot-checks that a full harness cell
// produces the software-reference count.
func TestCellCountsAgainstReference(t *testing.T) {
	d := datasets.Small()[0]
	plans, _ := PlansFor("tt")
	want := mine.Count(d.Graph(), plans[0])
	res := RunFingers(fingers.DefaultConfig(), 2, quick.cacheBytes(), d.Graph(), plans)
	if res.Count != want {
		t.Errorf("harness count = %d, want %d", res.Count, want)
	}
}
