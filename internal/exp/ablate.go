package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/fingers"
	"fingers/internal/mem"
)

// AblationPoint is one configuration sample of an ablation sweep.
type AblationPoint struct {
	Label   string
	Cycles  mem.Cycles
	Speedup float64 // versus the sweep's default configuration
}

// AblationResult is one design-choice sweep on one workload.
type AblationResult struct {
	Name    string
	Graph   string
	Pattern string
	Points  []AblationPoint
}

// String renders the sweep.
func (r *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ablation %s (%s on %s)\n", r.Name, r.Pattern, r.Graph)
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %-18s %12d cycles %7.2fx\n", p.Label, p.Cycles, p.Speedup)
	}
	return sb.String()
}

// ablationWorkload picks the sweep workload: a set-operation-rich pattern
// on a graph small enough to sweep repeatedly.
func ablationWorkload(opts Options) (*datasets.Dataset, string) {
	if opts.Quick {
		return datasets.Small()[1], "tt" // Mi
	}
	d, err := datasets.ByName("As")
	if err != nil {
		panic(err)
	}
	return d, "tt"
}

// ablConfig labels one swept PE configuration.
type ablConfig struct {
	label string
	cfg   fingers.Config
}

func runAblation(opts Options, name string, configs []ablConfig, defaultIdx int) *AblationResult {
	d, pat := ablationWorkload(opts)
	plans, err := PlansFor(pat)
	if err != nil {
		panic(err)
	}
	res := &AblationResult{Name: name, Graph: d.Name, Pattern: pat}
	cycles := make([]mem.Cycles, len(configs))
	for i, c := range configs {
		cycles[i] = RunFingers(c.cfg, 1, opts.cacheBytes(), d.Graph(), plans).Cycles
	}
	base := cycles[defaultIdx]
	for i, c := range configs {
		res.Points = append(res.Points, AblationPoint{
			Label:   c.label,
			Cycles:  cycles[i],
			Speedup: float64(base) / float64(cycles[i]),
		})
	}
	return res
}

// AblateGroupSize sweeps the pseudo-DFS task-group size against the
// adaptive default (§4.1: "performance is insensitive to these
// parameters" — this sweep verifies that claim).
func AblateGroupSize(opts Options) *AblationResult {
	sizes := []int{1, 2, 4, 8, 16, 32}
	configs := []ablConfig{{"auto (paper)", fingers.DefaultConfig()}}
	for _, s := range sizes {
		c := fingers.DefaultConfig()
		c.GroupSize = s
		configs = append(configs, ablConfig{fmt.Sprintf("group=%d", s), c})
	}
	return runAblation(opts, "task-group size", configs, 0)
}

// AblateMaxLoad sweeps the load-balance split threshold of the task
// dividers (§4.2).
func AblateMaxLoad(opts Options) *AblationResult {
	var configs []ablConfig
	for _, ml := range []int{1, 2, 4, 8, 24} {
		c := fingers.DefaultConfig()
		c.MaxLoad = ml
		configs = append(configs, ablConfig{fmt.Sprintf("maxload=%d", ml), c})
	}
	return runAblation(opts, "divider max load", configs, 1) // default 2
}

// AblateDividers sweeps the task-divider count (§4.2: 12 per PE).
func AblateDividers(opts Options) *AblationResult {
	var configs []ablConfig
	idx := 0
	for i, nd := range []int{1, 2, 4, 12, 24} {
		c := fingers.DefaultConfig()
		c.NumDividers = nd
		if nd == 12 {
			idx = i
		}
		configs = append(configs, ablConfig{fmt.Sprintf("dividers=%d", nd), c})
	}
	return runAblation(opts, "task dividers", configs, idx)
}

// AblateSegmentGeometry sweeps the (s_l, s_s) segment lengths at a fixed
// IU count, isolating the geometry choice from the iso-area IU sweep of
// Figure 12.
func AblateSegmentGeometry(opts Options) *AblationResult {
	var configs []ablConfig
	idx := 0
	for i, geo := range [][2]int{{4, 2}, {8, 2}, {16, 4}, {32, 8}, {64, 16}} {
		c := fingers.DefaultConfig()
		c.LongSegLen, c.ShortSegLen = geo[0], geo[1]
		if geo[0] == 16 {
			idx = i
		}
		configs = append(configs, ablConfig{fmt.Sprintf("sl=%d ss=%d", geo[0], geo[1]), c})
	}
	return runAblation(opts, "segment geometry", configs, idx)
}

// AblateRootOrder compares root-vertex scheduling policies on a full
// FINGERS chip: sequential IDs (adjacent roots co-scheduled — the
// locality policy §6.3 proposes), degree-descending (big trees first, a
// load-balance policy), and a deterministic shuffle (locality destroyed).
func AblateRootOrder(opts Options) *AblationResult {
	d, pat := ablationWorkload(opts)
	g := d.Graph()
	plans, err := PlansFor(pat)
	if err != nil {
		panic(err)
	}
	n := g.NumVertices()
	shuffled := make([]uint32, n)
	for i := range shuffled {
		shuffled[i] = uint32(i)
	}
	rng := rand.New(rand.NewSource(12345))
	rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	policies := []struct {
		label string
		sched func() *accel.RootScheduler
	}{
		{"sequential", func() *accel.RootScheduler { return accel.NewRootScheduler(n) }},
		{"degree-desc", func() *accel.RootScheduler { return accel.NewRootSchedulerWithOrder(g.DegreeOrder()) }},
		{"shuffled", func() *accel.RootScheduler { return accel.NewRootSchedulerWithOrder(shuffled) }},
	}
	res := &AblationResult{Name: "root scheduling", Graph: d.Name, Pattern: pat}
	pes := opts.fingersPEs()
	var base mem.Cycles
	for i, pol := range policies {
		chip := fingers.NewChipWithScheduler(fingers.DefaultConfig(), pes, opts.cacheBytes(), g, plans, pol.sched())
		r, _ := opts.runChip(chip.RunCtx, chip.RunParallelCtx)
		if i == 0 {
			base = r.Cycles
		}
		res.Points = append(res.Points, AblationPoint{
			Label:   pol.label,
			Cycles:  r.Cycles,
			Speedup: float64(base) / float64(r.Cycles),
		})
	}
	return res
}

// AblateHybridStorage compares the set-operation substrate on one
// workload: the list-centric FlexMiner baseline, the SISA-style
// set-centric model running over the graph's adaptive hybrid storage
// view (ArchSISA), and the FINGERS segment-parallel design — the
// hybrid-storage-versus-segments question. Counts are identical across
// all three; only the timing model changes.
func AblateHybridStorage(opts Options) *AblationResult {
	d, pat := ablationWorkload(opts)
	g := d.Graph()
	plans, err := PlansFor(pat)
	if err != nil {
		panic(err)
	}
	points := []struct {
		label string
		run   func() mem.Cycles
	}{
		{"list-centric", func() mem.Cycles { return RunFlexMiner(1, opts.cacheBytes(), g, plans).Cycles }},
		{"set-centric (SISA)", func() mem.Cycles { return RunSISA(1, opts.cacheBytes(), g, plans).Cycles }},
		{"segments (FINGERS)", func() mem.Cycles {
			return RunFingers(fingers.DefaultConfig(), 1, opts.cacheBytes(), g, plans).Cycles
		}},
	}
	res := &AblationResult{Name: "hybrid set storage", Graph: d.Name, Pattern: pat}
	var base mem.Cycles
	for i, p := range points {
		cy := p.run()
		if i == 0 {
			base = cy
		}
		res.Points = append(res.Points, AblationPoint{
			Label:   p.label,
			Cycles:  cy,
			Speedup: float64(base) / float64(cy),
		})
	}
	return res
}

// Ablations runs every design-choice sweep.
func Ablations(opts Options) []*AblationResult {
	return []*AblationResult{
		AblateGroupSize(opts),
		AblateMaxLoad(opts),
		AblateDividers(opts),
		AblateSegmentGeometry(opts),
		AblateRootOrder(opts),
		AblateHybridStorage(opts),
	}
}
