package exp

import (
	"strings"
	"testing"
)

func TestParallelismQuickCensus(t *testing.T) {
	r := Parallelism(quick)
	if len(r.Rows) != 3 { // Mi × {tc, tt, cyc}
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byPattern := map[string]ParallelismRow{}
	for _, row := range r.Rows {
		byPattern[row.Pattern] = row
		if row.Branch <= 0 || row.Sets <= 0 || row.Segments <= 0 {
			t.Errorf("%s/%s: degenerate parallelism %+v", row.Graph, row.Pattern, row)
		}
	}
	// §6.2: cliques have no set-level parallelism (one shared update per
	// task); tt carries more distinct updates.
	if tc, tt := byPattern["tc"], byPattern["tt"]; tc.Sets > 1.01 || tt.Sets <= tc.Sets {
		t.Errorf("set-level census off: tc=%.2f tt=%.2f", tc.Sets, tt.Sets)
	}
	out := r.String()
	if !strings.Contains(out, "census") || !strings.Contains(out, "segment") {
		t.Errorf("rendering:\n%s", out)
	}
}
