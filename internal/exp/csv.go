package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export of every experiment result, one row per measurement, for
// downstream plotting. All writers emit a header row and use the same
// field conventions (speedups as plain floats, rates in [0,1]).

// WriteCSV emits the grid as pattern,graph,fingers_cycles,flex_cycles,speedup.
func (g *SpeedupGrid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"pattern", "graph", "fingers_cycles", "baseline_cycles", "speedup"}); err != nil {
		return err
	}
	for _, p := range g.Patterns {
		for _, gr := range g.Graphs {
			c, ok := g.Cells[p][gr]
			if !ok {
				continue
			}
			err := cw.Write([]string{
				p, gr,
				strconv.FormatInt(int64(c.Fingers.Cycles), 10),
				strconv.FormatInt(int64(c.Flex.Cycles), 10),
				strconv.FormatFloat(c.Speedup, 'f', 4, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits series,ius,seg_len,cycles,speedup rows.
func (r *Fig12Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"series", "ius", "seg_len", "cycles", "speedup"}); err != nil {
		return err
	}
	for _, s := range r.Series {
		label := s.Pattern
		if s.Unlimited {
			label += "-unlimited"
		}
		for _, p := range s.Points {
			err := cw.Write([]string{
				label,
				strconv.Itoa(p.IUs),
				strconv.Itoa(p.SegLen),
				strconv.FormatInt(int64(p.Cycles), 10),
				strconv.FormatFloat(p.Speedup, 'f', 4, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits graph,design,paper_capacity_mb,scaled_bytes,miss_rate rows.
func (r *Fig13Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"graph", "design", "paper_capacity_mb", "scaled_bytes", "miss_rate"}); err != nil {
		return err
	}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			err := cw.Write([]string{
				c.Graph, c.Design,
				strconv.FormatFloat(p.PaperCapacityMB, 'f', 1, 64),
				strconv.FormatInt(p.ScaledBytes, 10),
				strconv.FormatFloat(p.MissRate, 'f', 6, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits pattern,active_rate,balance_rate rows.
func (r *Table3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"pattern", "active_rate", "balance_rate"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		err := cw.Write([]string{
			row.Pattern,
			strconv.FormatFloat(row.ActiveRate, 'f', 6, 64),
			strconv.FormatFloat(row.BalanceRate, 'f', 6, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits ablation,label,cycles,speedup rows.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"ablation", "label", "cycles", "speedup"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		err := cw.Write([]string{
			r.Name, p.Label,
			strconv.FormatInt(int64(p.Cycles), 10),
			strconv.FormatFloat(p.Speedup, 'f', 4, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits graph,pattern,branch,set,segment rows.
func (r *ParallelismResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"graph", "pattern", "branch", "set", "segment"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		err := cw.Write([]string{
			row.Graph, row.Pattern,
			fmt.Sprintf("%.4f", row.Branch),
			fmt.Sprintf("%.4f", row.Sets),
			fmt.Sprintf("%.4f", row.Segments),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
