package exp

import (
	"strings"
	"testing"
)

func TestAblateGroupSize(t *testing.T) {
	r := AblateGroupSize(quick)
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[0].Label != "auto (paper)" || r.Points[0].Speedup != 1.0 {
		t.Errorf("baseline point = %+v", r.Points[0])
	}
	// §4.1's insensitivity claim: no fixed group size should beat or trail
	// the adaptive default by an order of magnitude.
	for _, p := range r.Points {
		if p.Speedup < 0.2 || p.Speedup > 5 {
			t.Errorf("group-size sweep wildly sensitive: %+v", p)
		}
	}
}

func TestAblateMaxLoad(t *testing.T) {
	r := AblateMaxLoad(quick)
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Cycles <= 0 {
			t.Errorf("no cycles for %s", p.Label)
		}
	}
}

func TestAblateDividersMoreIsNotWorse(t *testing.T) {
	r := AblateDividers(quick)
	// More dividers shorten the divider pipeline stage: cycles must be
	// non-increasing along the sweep.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Cycles > r.Points[i-1].Cycles {
			t.Errorf("dividers sweep not monotone: %s (%d) > %s (%d)",
				r.Points[i].Label, r.Points[i].Cycles,
				r.Points[i-1].Label, r.Points[i-1].Cycles)
		}
	}
}

func TestAblateSegmentGeometry(t *testing.T) {
	r := AblateSegmentGeometry(quick)
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	found := false
	for _, p := range r.Points {
		if p.Label == "sl=16 ss=4" && p.Speedup == 1.0 {
			found = true
		}
	}
	if !found {
		t.Error("paper-default geometry is not the baseline")
	}
}

func TestAblateRootOrderSameAnswerDifferentTiming(t *testing.T) {
	r := AblateRootOrder(quick)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[0].Label != "sequential" {
		t.Errorf("baseline = %s", r.Points[0].Label)
	}
	for _, p := range r.Points {
		if p.Cycles <= 0 {
			t.Errorf("no cycles for %s", p.Label)
		}
	}
}

func TestAblationsRenderAll(t *testing.T) {
	for _, r := range Ablations(quick) {
		out := r.String()
		if !strings.Contains(out, "ablation") || !strings.Contains(out, "cycles") {
			t.Errorf("rendering broken:\n%s", out)
		}
	}
}
