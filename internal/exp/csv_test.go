package exp

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestSpeedupGridCSV(t *testing.T) {
	grid := Fig9(Options{Quick: true})
	var buf bytes.Buffer
	if err := grid.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+len(grid.Patterns)*len(grid.Graphs) {
		t.Fatalf("rows = %d", len(rows))
	}
	if strings.Join(rows[0], ",") != "pattern,graph,fingers_cycles,baseline_cycles,speedup" {
		t.Errorf("header = %v", rows[0])
	}
	for _, row := range rows[1:] {
		if s, err := strconv.ParseFloat(row[4], 64); err != nil || s <= 0 {
			t.Errorf("bad speedup cell %v", row)
		}
	}
}

func TestFig12CSV(t *testing.T) {
	r := Fig12(Options{Quick: true})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+len(Fig12IUCounts)*len(r.Series) {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestFig13CSV(t *testing.T) {
	r := Fig13(Options{Quick: true, FingersPEs: 2, FlexPEs: 4})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+len(r.Curves)*len(Fig13PaperCapacitiesMB) {
		t.Errorf("rows = %d", len(rows))
	}
	for _, row := range rows[1:] {
		if m, err := strconv.ParseFloat(row[4], 64); err != nil || m < 0 || m > 1 {
			t.Errorf("bad miss rate %v", row)
		}
	}
}

func TestTable3AndAblationAndParallelismCSV(t *testing.T) {
	var buf bytes.Buffer
	t3 := Table3(quick)
	if err := t3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1+len(t3.Rows) {
		t.Errorf("table3 rows = %d", len(rows))
	}
	buf.Reset()
	ab := AblateMaxLoad(quick)
	if err := ab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1+len(ab.Points) {
		t.Errorf("ablation rows = %d", len(rows))
	}
	buf.Reset()
	pc := Parallelism(quick)
	if err := pc.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 1+len(pc.Rows) {
		t.Errorf("parallelism rows = %d", len(rows))
	}
}
