package exp

import (
	"context"
	"testing"
)

// TestParallelMatchesSerial runs the same quick sweeps with one worker
// and with a wide pool and requires identical results: the worker pool
// only reorders cell evaluation, and each cell's simulated chip is
// deterministic and isolated, so cycles, counts and rates must not move.
func TestParallelMatchesSerial(t *testing.T) {
	serial := quick
	serial.Workers = 1
	wide := quick
	wide.Workers = 8

	gs, gw := Fig9(serial), Fig9(wide)
	for _, p := range gs.Patterns {
		for _, g := range gs.Graphs {
			cs, cw := gs.Cells[p][g], gw.Cells[p][g]
			if cs.Fingers.Cycles != cw.Fingers.Cycles || cs.Flex.Cycles != cw.Flex.Cycles ||
				cs.Fingers.Count != cw.Fingers.Count {
				t.Errorf("fig9 %s/%s: serial %+v parallel %+v", p, g, cs, cw)
			}
		}
	}

	fs, fw := Fig12(serial), Fig12(wide)
	for si := range fs.Series {
		for pi := range fs.Series[si].Points {
			ps, pw := fs.Series[si].Points[pi], fw.Series[si].Points[pi]
			if ps != pw {
				t.Errorf("fig12 series %d point %d: serial %+v parallel %+v", si, pi, ps, pw)
			}
		}
	}

	ts, tw := Table3(serial), Table3(wide)
	for i := range ts.Rows {
		if ts.Rows[i] != tw.Rows[i] {
			t.Errorf("table3 row %d: serial %+v parallel %+v", i, ts.Rows[i], tw.Rows[i])
		}
	}
}

// TestParallelCancellation checks that a pre-cancelled context yields an
// empty (but well-formed) grid rather than hanging or panicking.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := quick
	opts.Workers = 4
	opts.Ctx = ctx
	grid := Fig9(opts)
	for _, p := range grid.Patterns {
		for _, g := range grid.Graphs {
			if _, ok := grid.Cells[p][g]; ok {
				t.Errorf("cancelled sweep still produced cell %s/%s", p, g)
			}
		}
	}
}
