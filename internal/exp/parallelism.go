package exp

import (
	"fmt"
	"strings"

	"fingers/internal/datasets"
	"fingers/internal/profile"
)

// ParallelismRow is one (graph, pattern) measurement of the three
// fine-grained parallelism levels of §3.
type ParallelismRow struct {
	Graph, Pattern string
	Branch         float64 // children per interior task (§3.2)
	Sets           float64 // distinct set ops per task (§3.3)
	Segments       float64 // workloads per set op (§3.4)
}

// ParallelismResult is the §3 parallelism census across the benchmark
// grid — the quantitative backing for the paper's conclusion that
// "different patterns and graphs exhibit drastically different degrees of
// each fine-grained parallelism".
type ParallelismResult struct {
	Rows []ParallelismRow
}

// Parallelism measures the available branch-, set- and segment-level
// parallelism of every benchmark pattern on a subset of graphs (single
// patterns only; the profile of a multi-pattern run is the union of its
// members').
func Parallelism(opts Options) *ParallelismResult {
	graphNames := []string{"As", "Yo", "Lj"}
	if opts.Quick {
		graphNames = []string{"Mi"}
	}
	res := &ParallelismResult{}
	for _, gn := range graphNames {
		d, err := datasets.ByName(gn)
		if err != nil {
			panic(err)
		}
		g := d.Graph()
		maxRoots := 0
		if g.NumVertices() > 4000 {
			maxRoots = 4000 // profiles converge well before this
		}
		for _, name := range opts.patterns() {
			if name == "3mc" {
				continue
			}
			plans, err := PlansFor(name)
			if err != nil {
				panic(err)
			}
			p := profile.Run(g, plans[0], profile.Config{MaxRoots: maxRoots})
			res.Rows = append(res.Rows, ParallelismRow{
				Graph:    gn,
				Pattern:  name,
				Branch:   p.MeanBranching(),
				Sets:     p.MeanOpsPerTask(),
				Segments: p.MeanWorkloadsPerOp(),
			})
		}
	}
	return res
}

// String renders the census.
func (r *ParallelismResult) String() string {
	var sb strings.Builder
	sb.WriteString("Fine-grained parallelism census (§3): mean available parallelism per level\n")
	fmt.Fprintf(&sb, "%-6s %-8s %10s %10s %10s\n", "graph", "pattern", "branch", "set", "segment")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-6s %-8s %10.2f %10.2f %10.2f\n",
			row.Graph, row.Pattern, row.Branch, row.Sets, row.Segments)
	}
	return sb.String()
}
