// Package exp regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic dataset analogues: Table 1 (datasets),
// Table 2 (area), Figure 9 (single-PE speedup), Figure 10 (iso-area chip
// speedup), Figure 11 (branch-level parallelism ablation), Figure 12 (IU
// scaling), Figure 13 (shared-cache miss curves) and Table 3 (IU
// utilization). Each experiment returns a structured result and renders a
// text table; absolute magnitudes differ from the paper (re-built
// simulator, scaled graphs) but the comparative shape is the deliverable.
package exp

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/plan"
	"fingers/internal/telemetry"
)

// Benchmarks is the paper's pattern list (§5): cliques of size 3–5,
// tailed triangle, 4-cycle, diamond, and the 3-motif multi-pattern task.
var Benchmarks = []string{"tc", "4cl", "5cl", "tt", "cyc", "dia", "3mc"}

// Options configures an experiment run.
type Options struct {
	// Quick restricts graphs and patterns to a fast subset for smoke
	// tests; full runs reproduce the paper's whole grid.
	Quick bool
	// FlexPEs and FingersPEs set the chip sizes for Figure 10; zero keeps
	// the paper's iso-area 40 vs 20.
	FlexPEs, FingersPEs int
	// SharedCacheBytes overrides the scaled default shared cache.
	SharedCacheBytes int64
	// Log, when non-nil, receives one telemetry.RunRecord per simulated
	// chip run (one JSONL line per experiment cell and architecture).
	Log *telemetry.RunLog
	// Workers bounds the worker pool the experiments fan their
	// independent (dataset, pattern, arch) cells across; zero or negative
	// uses GOMAXPROCS. Unless SimParallel is also set, the simulated
	// chips themselves stay single-threaded — parallelism is across
	// cells only, so cycle results are identical to a serial run.
	Workers int
	// SimParallel, when non-nil, runs every simulated chip on the
	// bounded-lag parallel engine with this configuration. Results are
	// deterministic in the window (never the worker count); Window=1
	// reproduces the serial engine exactly.
	SimParallel *accel.ParallelConfig
	// Ctx, when non-nil, cancels a sweep early: in-flight cells finish,
	// remaining cells are skipped and left out of the result. Nil means
	// run to completion.
	Ctx context.Context
}

func (o Options) flexPEs() int {
	if o.FlexPEs > 0 {
		return o.FlexPEs
	}
	return 40
}

func (o Options) fingersPEs() int {
	if o.FingersPEs > 0 {
		return o.FingersPEs
	}
	return 20
}

func (o Options) cacheBytes() int64 {
	if o.SharedCacheBytes > 0 {
		return o.SharedCacheBytes
	}
	return datasets.ScaledSharedCacheBytes
}

func (o Options) graphs() []*datasets.Dataset {
	if o.Quick {
		return datasets.Small()
	}
	return datasets.All()
}

func (o Options) patterns() []string {
	if o.Quick {
		return []string{"tc", "tt", "cyc"}
	}
	return Benchmarks
}

// PlansFor compiles the plan set of one benchmark mnemonic; "3mc" expands
// to the 3-motif multi-pattern plan.
func PlansFor(name string) ([]*plan.Plan, error) {
	return plan.ForBenchmark(name)
}

// RunFingers simulates a FINGERS chip on one benchmark cell.
func RunFingers(cfg fingers.Config, pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) accel.Result {
	return newFingersChip(cfg, pes, cacheBytes, g, plans).Run()
}

// RunFlexMiner simulates a FlexMiner chip on one benchmark cell.
func RunFlexMiner(pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) accel.Result {
	return newFlexChip(pes, cacheBytes, g, plans).Run()
}

// RunSISA simulates the set-centric FlexMiner variant (ArchSISA) on one
// benchmark cell: same PE organization, but neighbor lists move in their
// hybrid storage representation and stored-row set ops cost one probe
// per short-side element.
func RunSISA(pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) accel.Result {
	cfg := flexminer.DefaultConfig()
	cfg.SetCentric = true
	chip, err := flexminer.NewChipErr(cfg, pes, cacheBytes, g, plans)
	if err != nil {
		panic(fmt.Sprintf("exp: chip construction: %v", err))
	}
	return chip.Run()
}

// newFingersChip constructs a FINGERS chip through the validating
// constructor. The experiment tables only run vetted configurations, so
// a construction failure is a repo defect and panics, matching
// runChip's contract for unexpected simulation errors.
func newFingersChip(cfg fingers.Config, pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) *fingers.Chip {
	chip, err := fingers.NewChipErr(cfg, pes, cacheBytes, g, plans)
	if err != nil {
		panic(fmt.Sprintf("exp: chip construction: %v", err))
	}
	return chip
}

// newFlexChip is newFingersChip for the FlexMiner baseline.
func newFlexChip(pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) *flexminer.Chip {
	chip, err := flexminer.NewChipErr(flexminer.DefaultConfig(), pes, cacheBytes, g, plans)
	if err != nil {
		panic(fmt.Sprintf("exp: chip construction: %v", err))
	}
	return chip
}

// NewRunRecord assembles the machine-readable summary of one simulated
// run for the JSONL run log. ius is 0 for architectures without IUs.
func NewRunRecord(arch, experiment, graphName, patternName string, pes, ius int, cacheBytes int64, g *graph.Graph, res accel.Result, perPE []telemetry.PERecord) telemetry.RunRecord {
	st := graph.ComputeStats(g)
	fp := g.Hybrid().Footprint()
	gi := telemetry.GraphInfo{
		Name:        graphName,
		Vertices:    st.Vertices,
		Edges:       st.Edges,
		AvgDegree:   st.AvgDegree,
		MaxDegree:   st.MaxDegree,
		DenseRows:   fp.DenseRows,
		BitmapRows:  fp.BitmapRows,
		HybridBytes: fp.HybridBytes(),
	}
	return NewRunRecordInfo(arch, experiment, gi, patternName, pes, ius, cacheBytes, res, perPE)
}

// NewRunRecordInfo is NewRunRecord for callers that already hold the
// graph's summary — the service registry computes each graph's stats
// once and reuses them for every job — so the CSR is not re-walked per
// record.
func NewRunRecordInfo(arch, experiment string, gi telemetry.GraphInfo, patternName string, pes, ius int, cacheBytes int64, res accel.Result, perPE []telemetry.PERecord) telemetry.RunRecord {
	if cacheBytes == 0 {
		cacheBytes = mem.DefaultSharedCacheConfig().CapacityBytes
	}
	return telemetry.RunRecord{
		Schema:           telemetry.RunSchema,
		Arch:             arch,
		Experiment:       experiment,
		Graph:            gi,
		Pattern:          patternName,
		PEs:              pes,
		IUs:              ius,
		SharedCacheBytes: cacheBytes,
		Cycles:           res.Cycles,
		Count:            res.Count,
		Tasks:            res.Tasks,
		SharedAccesses:   res.SharedCache.LineAccesses,
		SharedMisses:     res.SharedCache.LineMisses,
		SharedMissRate:   res.SharedCache.MissRate(),
		DRAMAccesses:     res.DRAM.Accesses,
		DRAMBytes:        res.DRAM.BytesMoved,
		Breakdown:        res.Breakdown,
		PerPE:            perPE,
	}
}

// logWrite appends one record to the run log, reporting (not aborting
// on) I/O failures so a full sweep is never lost to a bad disk.
func logWrite(log *telemetry.RunLog, rec telemetry.RunRecord) {
	if err := log.Write(rec); err != nil {
		fmt.Fprintln(os.Stderr, "exp: run log:", err)
	}
}

// runChip executes one chip run on the engine Options selects — the
// serial event loop, or with SimParallel the bounded-lag parallel
// engine — threading Options.Ctx through so a cancelled sweep stops the
// in-flight chip within one cancellation quantum rather than letting it
// run to completion. A cancelled run returns its partial result with
// partial=true; any other simulation error (a recovered engine panic,
// an invalid SimParallel configuration) panics, because it signals a
// defect rather than a shutdown.
func (o Options) runChip(serial func(context.Context) (accel.Result, error), parallel func(context.Context, accel.ParallelConfig) (accel.Result, error)) (res accel.Result, partial bool) {
	ctx := o.ctx()
	var err error
	if o.SimParallel == nil {
		res, err = serial(ctx)
	} else {
		res, err = parallel(ctx, *o.SimParallel)
	}
	if err != nil {
		if ctx.Err() == nil {
			panic(fmt.Sprintf("exp: simulation: %v", err))
		}
		return res, true
	}
	return res, false
}

// simFingers runs one FINGERS cell and, when a run log is attached,
// appends its telemetry record (with IU rates and per-PE breakdowns).
func (o Options) simFingers(experiment, graphName, patternName string, cfg fingers.Config, pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) accel.Result {
	chip := newFingersChip(cfg, pes, cacheBytes, g, plans)
	start := time.Now()
	res, partial := o.runChip(chip.RunCtx, chip.RunParallelCtx)
	wall := time.Since(start)
	if o.Log != nil {
		rec := NewRunRecord("fingers", experiment, graphName, patternName, pes, cfg.NumIUs, cacheBytes, g, res, chip.PERecords())
		rec.Partial = partial
		rec.StartedAt = start.UTC().Format(time.RFC3339Nano)
		rec.WallNS = wall.Nanoseconds()
		iu := chip.AggregateStats()
		rec.IUActiveRate = iu.ActiveRate()
		rec.IUBalanceRate = iu.BalanceRate()
		logWrite(o.Log, rec)
	}
	return res
}

// simFlex runs one FlexMiner cell, logging like simFingers.
func (o Options) simFlex(experiment, graphName, patternName string, pes int, cacheBytes int64, g *graph.Graph, plans []*plan.Plan) accel.Result {
	chip := newFlexChip(pes, cacheBytes, g, plans)
	start := time.Now()
	res, partial := o.runChip(chip.RunCtx, chip.RunParallelCtx)
	wall := time.Since(start)
	if o.Log != nil {
		rec := NewRunRecord("flexminer", experiment, graphName, patternName, pes, 0, cacheBytes, g, res, chip.PERecords())
		rec.Partial = partial
		rec.StartedAt = start.UTC().Format(time.RFC3339Nano)
		rec.WallNS = wall.Nanoseconds()
		logWrite(o.Log, rec)
	}
	return res
}

// SpeedupCell is one (graph, pattern) comparison.
type SpeedupCell struct {
	Graph, Pattern string
	Fingers, Flex  accel.Result
	Speedup        float64
}

// SpeedupGrid is a patterns × graphs speedup table (Figures 9 and 10).
type SpeedupGrid struct {
	Title    string
	Patterns []string
	Graphs   []string
	Cells    map[string]map[string]SpeedupCell // pattern → graph → cell
}

// Mean returns the geometric-mean speedup over all cells.
func (g *SpeedupGrid) Mean() float64 {
	logSum, n := 0.0, 0
	for _, row := range g.Cells {
		for _, c := range row {
			if c.Speedup > 0 {
				logSum += math.Log(c.Speedup)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Max returns the largest cell speedup.
func (g *SpeedupGrid) Max() float64 {
	max := 0.0
	for _, row := range g.Cells {
		for _, c := range row {
			if c.Speedup > max {
				max = c.Speedup
			}
		}
	}
	return max
}

// String renders the grid in the layout of the paper's bar charts: one
// row per pattern, one column per graph.
func (g *SpeedupGrid) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", g.Title)
	fmt.Fprintf(&sb, "%-5s", "")
	for _, gr := range g.Graphs {
		fmt.Fprintf(&sb, "%8s", gr)
	}
	sb.WriteString("\n")
	for _, p := range g.Patterns {
		fmt.Fprintf(&sb, "%-5s", p)
		for _, gr := range g.Graphs {
			c, ok := g.Cells[p][gr]
			if !ok {
				fmt.Fprintf(&sb, "%8s", "-")
				continue
			}
			fmt.Fprintf(&sb, "%7.2fx", c.Speedup)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "geomean %.2fx, max %.2fx\n", g.Mean(), g.Max())
	return sb.String()
}

func newGrid(title string, patterns []string, graphsList []*datasets.Dataset) *SpeedupGrid {
	g := &SpeedupGrid{Title: title, Patterns: patterns, Cells: map[string]map[string]SpeedupCell{}}
	for _, d := range graphsList {
		g.Graphs = append(g.Graphs, d.Name)
	}
	for _, p := range patterns {
		g.Cells[p] = map[string]SpeedupCell{}
	}
	return g
}

func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// runCells evaluates n independent experiment cells on a bounded worker
// pool (Options.Workers wide). Each cell writes only its own slot of a
// preallocated result slice, so the callers need no locking; cancellation
// via Options.Ctx skips cells that have not started. With one worker the
// cells run inline in index order, exactly like the old serial loops.
func (o Options) runCells(n int, cell func(i int)) {
	workers := o.workerCount()
	if workers > n {
		workers = n
	}
	ctx := o.ctx()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			cell(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
}

// gridCell is one (pattern, graph) coordinate of a speedup grid, with the
// pattern's plans compiled once up front (outside the worker pool) so the
// compiler runs per pattern, not per cell.
type gridCell struct {
	pattern string
	plans   []*plan.Plan
	d       *datasets.Dataset
}

func gridCells(patterns []string, graphsList []*datasets.Dataset) []gridCell {
	out := make([]gridCell, 0, len(patterns)*len(graphsList))
	for _, name := range patterns {
		plans, err := PlansFor(name)
		if err != nil {
			panic(err)
		}
		for _, d := range graphsList {
			out = append(out, gridCell{pattern: name, plans: plans, d: d})
		}
	}
	return out
}

// fillGrid copies the computed cells into the grid map, skipping slots a
// cancelled sweep never reached.
func fillGrid(grid *SpeedupGrid, cells []gridCell, out []SpeedupCell, done []bool) {
	for i, c := range cells {
		if done[i] {
			grid.Cells[c.pattern][c.d.Name] = out[i]
		}
	}
}
