package exp

import (
	"fmt"
	"strings"

	"fingers/internal/area"
	"fingers/internal/datasets"
	"fingers/internal/fingers"
	"fingers/internal/mem"
)

// Table1 renders the dataset table (paper Table 1): published originals
// beside the synthetic analogues actually mined here.
func Table1() string { return datasets.Table1() }

// Table2 renders the PE area breakdown and iso-area chip sizing (paper
// Table 2 and §6.1).
func Table2() string { return area.Table2(fingers.DefaultConfig()) }

// Fig9 reproduces Figure 9: single-PE speedup of FINGERS over FlexMiner
// across all benchmark patterns and graphs.
func Fig9(opts Options) *SpeedupGrid {
	grid := newGrid("Figure 9: single-PE speedup, FINGERS vs FlexMiner", opts.patterns(), opts.graphs())
	cells := gridCells(opts.patterns(), opts.graphs())
	out := make([]SpeedupCell, len(cells))
	done := make([]bool, len(cells))
	opts.runCells(len(cells), func(i int) {
		c := cells[i]
		g := c.d.Graph()
		fi := opts.simFingers("fig9", c.d.Name, c.pattern, fingers.DefaultConfig(), 1, opts.cacheBytes(), g, c.plans)
		fm := opts.simFlex("fig9", c.d.Name, c.pattern, 1, opts.cacheBytes(), g, c.plans)
		out[i] = SpeedupCell{
			Graph: c.d.Name, Pattern: c.pattern,
			Fingers: fi, Flex: fm, Speedup: fi.Speedup(fm),
		}
		done[i] = true
	})
	fillGrid(grid, cells, out, done)
	return grid
}

// Fig10 reproduces Figure 10: overall speedup of the 20-PE FINGERS chip
// over the 40-PE FlexMiner chip (iso-area, §6.3).
func Fig10(opts Options) *SpeedupGrid {
	fiPEs, fmPEs := opts.fingersPEs(), opts.flexPEs()
	title := fmt.Sprintf("Figure 10: overall speedup, FINGERS %d PEs vs FlexMiner %d PEs", fiPEs, fmPEs)
	grid := newGrid(title, opts.patterns(), opts.graphs())
	cells := gridCells(opts.patterns(), opts.graphs())
	out := make([]SpeedupCell, len(cells))
	done := make([]bool, len(cells))
	opts.runCells(len(cells), func(i int) {
		c := cells[i]
		g := c.d.Graph()
		fi := opts.simFingers("fig10", c.d.Name, c.pattern, fingers.DefaultConfig(), fiPEs, opts.cacheBytes(), g, c.plans)
		fm := opts.simFlex("fig10", c.d.Name, c.pattern, fmPEs, opts.cacheBytes(), g, c.plans)
		out[i] = SpeedupCell{
			Graph: c.d.Name, Pattern: c.pattern,
			Fingers: fi, Flex: fm, Speedup: fi.Speedup(fm),
		}
		done[i] = true
	})
	fillGrid(grid, cells, out, done)
	return grid
}

// fig11Graphs is the subset shown in Figure 11 (Mi, Pa, Or behave like
// As, Yo, Lj respectively, §6.4).
func fig11Graphs(opts Options) []*datasets.Dataset {
	if opts.Quick {
		return datasets.Small()[:1]
	}
	var out []*datasets.Dataset
	for _, n := range []string{"As", "Yo", "Lj"} {
		d, err := datasets.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, d)
	}
	return out
}

// Fig11 reproduces Figure 11: the speedup contributed by branch-level
// parallelism, measured by toggling the pseudo-DFS task-group order on a
// single FINGERS PE.
func Fig11(opts Options) *SpeedupGrid {
	graphsList := fig11Graphs(opts)
	grid := newGrid("Figure 11: speedup from branch-level parallelism (pseudo-DFS on vs off)",
		opts.patterns(), graphsList)
	off := fingers.DefaultConfig()
	off.PseudoDFS = false
	cells := gridCells(opts.patterns(), graphsList)
	out := make([]SpeedupCell, len(cells))
	done := make([]bool, len(cells))
	opts.runCells(len(cells), func(i int) {
		c := cells[i]
		g := c.d.Graph()
		with := opts.simFingers("fig11", c.d.Name, c.pattern, fingers.DefaultConfig(), 1, opts.cacheBytes(), g, c.plans)
		without := opts.simFingers("fig11-strict-dfs", c.d.Name, c.pattern, off, 1, opts.cacheBytes(), g, c.plans)
		out[i] = SpeedupCell{
			Graph: c.d.Name, Pattern: c.pattern,
			Fingers: with, Flex: without, Speedup: with.Speedup(without),
		}
		done[i] = true
	})
	fillGrid(grid, cells, out, done)
	return grid
}

// Fig12Point is one IU-count measurement of Figure 12.
type Fig12Point struct {
	IUs     int
	SegLen  int
	Speedup float64 // versus the 1-IU iso-area configuration of its series
	Cycles  mem.Cycles
}

// Fig12Series is one pattern's scaling curve.
type Fig12Series struct {
	Pattern   string
	Unlimited bool
	Points    []Fig12Point
}

// Fig12Result is the PE-scalability study of Figure 12 on the Yo graph.
type Fig12Result struct {
	Graph  string
	Series []Fig12Series
}

// Fig12IUCounts is the swept IU counts of Figure 12.
var Fig12IUCounts = []int{1, 2, 4, 8, 16, 24, 48}

// Fig12 reproduces Figure 12: single-PE scalability in the number of IUs
// under the iso-area rule (#IUs × s_l constant) for 4cl, cyc and tt, plus
// the unlimited-area tt series.
func Fig12(opts Options) *Fig12Result {
	d, err := datasets.ByName("Yo")
	if err != nil {
		panic(err)
	}
	if opts.Quick {
		d = datasets.Small()[1] // Mi: fastest graph with real structure
	}
	g := d.Graph()
	res := &Fig12Result{Graph: d.Name}
	type series struct {
		pattern   string
		unlimited bool
	}
	sweeps := []series{{"4cl", false}, {"cyc", false}, {"tt", false}, {"tt", true}}
	if opts.Quick {
		sweeps = []series{{"tt", false}}
	}
	res.Series = make([]Fig12Series, len(sweeps))
	for si, sw := range sweeps {
		res.Series[si] = Fig12Series{
			Pattern:   sw.pattern,
			Unlimited: sw.unlimited,
			Points:    make([]Fig12Point, len(Fig12IUCounts)),
		}
	}
	// Every (series, IU count) simulation is independent; only the
	// speedup normalization needs the 1-IU baseline, so it is derived
	// after the parallel sweep.
	opts.runCells(len(sweeps)*len(Fig12IUCounts), func(i int) {
		sw := sweeps[i/len(Fig12IUCounts)]
		pi := i % len(Fig12IUCounts)
		n := Fig12IUCounts[pi]
		plans, err := PlansFor(sw.pattern)
		if err != nil {
			panic(err)
		}
		var cfg fingers.Config
		if sw.unlimited {
			cfg = fingers.DefaultConfig().WithIUsUnlimited(n)
		} else {
			cfg = fingers.DefaultConfig().WithIUs(n)
		}
		r := opts.simFingers("fig12", d.Name, sw.pattern, cfg, 1, opts.cacheBytes(), g, plans)
		res.Series[i/len(Fig12IUCounts)].Points[pi] = Fig12Point{
			IUs:    n,
			SegLen: cfg.LongSegLen,
			Cycles: r.Cycles,
		}
	})
	for si := range res.Series {
		base := res.Series[si].Points[0].Cycles
		for pi := range res.Series[si].Points {
			if c := res.Series[si].Points[pi].Cycles; base > 0 && c > 0 {
				res.Series[si].Points[pi].Speedup = float64(base) / float64(c)
			}
		}
	}
	return res
}

// String renders the Figure 12 scaling curves.
func (r *Fig12Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12: PE scalability vs #IUs (graph %s, speedup over 1 IU)\n", r.Graph)
	fmt.Fprintf(&sb, "%-14s", "#IUs")
	for _, n := range Fig12IUCounts {
		fmt.Fprintf(&sb, "%8d", n)
	}
	sb.WriteString("\n")
	for _, s := range r.Series {
		label := s.Pattern
		if s.Unlimited {
			label += "-unl"
		}
		fmt.Fprintf(&sb, "%-14s", label)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%7.2fx", p.Speedup)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig13Point is one (capacity, design) miss-rate sample.
type Fig13Point struct {
	PaperCapacityMB float64
	ScaledBytes     int64
	MissRate        float64
}

// Fig13Curve is one graph × design miss curve.
type Fig13Curve struct {
	Graph   string
	Design  string // "FINGERS" or "FlexMiner"
	Points  []Fig13Point
	Pattern string
}

// Fig13Result is the shared-cache study of Figure 13.
type Fig13Result struct {
	Curves []Fig13Curve
}

// Fig13PaperCapacitiesMB is the swept capacities as labeled in the paper;
// the simulated system divides them by datasets.CacheScale to match the
// scaled-down graphs.
var Fig13PaperCapacitiesMB = []float64{2, 4, 8, 16}

// Fig13 reproduces Figure 13: shared-cache miss rate versus capacity for
// the cyc pattern on Mi, Yo and Lj, under both designs at their iso-area
// chip sizes.
func Fig13(opts Options) *Fig13Result {
	graphNames := []string{"Mi", "Yo", "Lj"}
	if opts.Quick {
		graphNames = []string{"Mi"}
	}
	plans, err := PlansFor("cyc")
	if err != nil {
		panic(err)
	}
	res := &Fig13Result{}
	nCaps := len(Fig13PaperCapacitiesMB)
	for _, gn := range graphNames {
		res.Curves = append(res.Curves,
			Fig13Curve{Graph: gn, Design: "FINGERS", Pattern: "cyc", Points: make([]Fig13Point, nCaps)},
			Fig13Curve{Graph: gn, Design: "FlexMiner", Pattern: "cyc", Points: make([]Fig13Point, nCaps)})
	}
	opts.runCells(len(graphNames)*nCaps, func(i int) {
		gn := graphNames[i/nCaps]
		ci := i % nCaps
		d, err := datasets.ByName(gn)
		if err != nil {
			panic(err)
		}
		g := d.Graph()
		mb := Fig13PaperCapacitiesMB[ci]
		scaled := int64(mb * float64(1<<20) / datasets.CacheScale)
		fi := opts.simFingers("fig13", gn, "cyc", fingers.DefaultConfig(), opts.fingersPEs(), scaled, g, plans)
		fm := opts.simFlex("fig13", gn, "cyc", opts.flexPEs(), scaled, g, plans)
		res.Curves[2*(i/nCaps)].Points[ci] = Fig13Point{
			PaperCapacityMB: mb, ScaledBytes: scaled, MissRate: fi.SharedCache.MissRate(),
		}
		res.Curves[2*(i/nCaps)+1].Points[ci] = Fig13Point{
			PaperCapacityMB: mb, ScaledBytes: scaled, MissRate: fm.SharedCache.MissRate(),
		}
	})
	return res
}

// String renders the Figure 13 miss curves.
func (r *Fig13Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 13: shared-cache miss rate vs capacity (cyc pattern)\n")
	fmt.Fprintf(&sb, "%-16s", "capacity (paper)")
	for _, mb := range Fig13PaperCapacitiesMB {
		fmt.Fprintf(&sb, "%7.0fMB", mb)
	}
	sb.WriteString("\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&sb, "%-16s", c.Graph+"-"+c.Design)
		for _, p := range c.Points {
			fmt.Fprintf(&sb, "%8.1f%%", 100*p.MissRate)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table3Row is one pattern's IU utilization on the Mi graph.
type Table3Row struct {
	Pattern     string
	ActiveRate  float64
	BalanceRate float64
}

// Table3Result is the IU utilization study of the paper's Table 3.
type Table3Result struct {
	Graph string
	Rows  []Table3Row
}

// Table3 reproduces Table 3: IU active and balance rates of one FINGERS
// PE running each benchmark on Mi.
func Table3(opts Options) *Table3Result {
	d, err := datasets.ByName("Mi")
	if err != nil {
		panic(err)
	}
	g := d.Graph()
	res := &Table3Result{Graph: d.Name}
	names := opts.patterns()
	res.Rows = make([]Table3Row, len(names))
	opts.runCells(len(names), func(i int) {
		name := names[i]
		plans, err := PlansFor(name)
		if err != nil {
			panic(err)
		}
		chip := newFingersChip(fingers.DefaultConfig(), 1, opts.cacheBytes(), g, plans)
		runRes, _ := opts.runChip(chip.RunCtx, chip.RunParallelCtx)
		st := chip.AggregateStats()
		if opts.Log != nil {
			rec := NewRunRecord("fingers", "table3", d.Name, name, 1, fingers.DefaultConfig().NumIUs, opts.cacheBytes(), g, runRes, chip.PERecords())
			rec.IUActiveRate = st.ActiveRate()
			rec.IUBalanceRate = st.BalanceRate()
			logWrite(opts.Log, rec)
		}
		res.Rows[i] = Table3Row{
			Pattern:     name,
			ActiveRate:  st.ActiveRate(),
			BalanceRate: st.BalanceRate(),
		}
	})
	return res
}

// String renders Table 3.
func (r *Table3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: IU utilization and load balance in one PE with %s\n", r.Graph)
	fmt.Fprintf(&sb, "%-14s", "")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8s", row.Pattern)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-14s", "Active Rate")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%7.1f%%", 100*row.ActiveRate)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-14s", "Balance Rate")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%7.1f%%", 100*row.BalanceRate)
	}
	sb.WriteString("\n")
	return sb.String()
}
