package mine

import (
	"context"
	"errors"
	"testing"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
	"fingers/internal/simerr"
)

// sampleRoots picks a bounded root sample that still exercises every
// kernel class: a stride through the whole ID range (whose subtrees
// touch hub vertices as candidates) plus a few heavier-than-average
// roots, capped at 4× the mean degree so the oracle side of the
// cross-check doesn't spend minutes inside one hub's tree.
func sampleRoots(g *graph.Graph, stride, heavy int) []uint32 {
	n := g.NumVertices()
	var roots []uint32
	step := n / stride
	if step < 1 {
		step = 1
	}
	for v := 0; v < n; v += step {
		roots = append(roots, uint32(v))
	}
	cap := int(4 * g.AvgDegree())
	for _, v := range g.DegreeOrder() {
		if heavy == 0 {
			break
		}
		if g.Degree(v) <= cap {
			roots = append(roots, v)
			heavy--
		}
	}
	return roots
}

// TestAdaptiveMatchesOracleOnDatasets cross-checks the adaptive Counter
// against the reference Engine on every named pattern × every synthetic
// dataset analogue, comparing per-root subtree counts over a root sample
// (full counts over the whole grid would take the oracle minutes).
func TestAdaptiveMatchesOracleOnDatasets(t *testing.T) {
	dsets := datasets.All()
	if testing.Short() {
		dsets = datasets.Small()
	}
	for _, d := range dsets {
		g := d.Graph()
		roots := sampleRoots(g, 12, 4)
		for _, name := range pattern.Names() {
			p, err := pattern.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := plan.Compile(p, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			c := NewCounter(g, pl)
			e := NewEngine(g, pl)
			for _, v := range roots {
				if got, want := c.Root(v), e.CountFromRoot(v); got != want {
					t.Fatalf("%s/%s root %d: adaptive %d, oracle %d",
						d.Name, name, v, got, want)
				}
			}
		}
	}
}

// TestAdaptiveFullCountsMatchOracle compares whole-graph counts on the
// cache-resident datasets for the cheap benchmark patterns, covering the
// root loop itself (not just sampled subtrees).
func TestAdaptiveFullCountsMatchOracle(t *testing.T) {
	for _, d := range datasets.Small() {
		g := d.Graph()
		for _, name := range []string{"tc", "tt", "cyc", "dia"} {
			p, err := pattern.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pl := plan.MustCompile(p, plan.Options{})
			got := Count(g, pl)
			want := CountOracle(g, pl)
			if got != want {
				t.Errorf("%s/%s: adaptive %d, oracle %d", d.Name, name, got, want)
			}
			if par := CountParallel(g, pl, 4); par != want {
				t.Errorf("%s/%s: parallel %d, oracle %d", d.Name, name, par, want)
			}
		}
	}
}

// TestForcedHubKernels lowers the hub threshold so the dense-bitvector
// kernels run on graphs small enough to brute-force, for every named
// pattern and both induced semantics.
func TestForcedHubKernels(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Complete(8),
		gen.Star(12),
		gen.PowerLawCluster(60, 5, 0.6, 7),
		gen.ErdosRenyi(40, 220, 3),
	}
	for gi, g := range graphs {
		hub := graph.NewHubIndex(g, 1) // every vertex gets a row
		for _, name := range pattern.Names() {
			p, err := pattern.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, edgeInduced := range []bool{false, true} {
				pl, err := plan.Compile(p, plan.Options{EdgeInduced: edgeInduced})
				if err != nil {
					t.Fatal(err)
				}
				c := NewCounter(g, pl)
				c.SetHubIndex(hub)
				var got uint64
				for v := 0; v < g.NumVertices(); v++ {
					got += c.Root(uint32(v))
				}
				if want := CountOracle(g, pl); got != want {
					t.Errorf("graph %d %s edgeInduced=%v: forced-bits %d, oracle %d",
						gi, name, edgeInduced, got, want)
				}
				// Edge-induced star/path plans dispatch no set ops at all
				// (init-only schedules); only demand bits where ops ran.
				if st := c.Stats(); st.Total() > 0 && st.Bits+st.CountBits == 0 {
					t.Errorf("graph %d %s edgeInduced=%v: ops ran but bit kernels never dispatched",
						gi, name, edgeInduced)
				}
			}
		}
	}
}

// TestCounterSteadyStateAllocs verifies the tentpole's zero-allocation
// claim: after one warm-up pass grows the scratch arenas, mining any
// root allocates nothing.
func TestCounterSteadyStateAllocs(t *testing.T) {
	g := gen.PowerLawCluster(2000, 8, 0.5, 11)
	for _, name := range []string{"tc", "4cl", "tt", "cyc", "house"} {
		p, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pl := plan.MustCompile(p, plan.Options{})
		c := NewCounter(g, pl)
		for v := 0; v < g.NumVertices(); v++ {
			c.Root(uint32(v)) // warm up arenas
		}
		avg := testing.AllocsPerRun(10, func() {
			for v := 0; v < 200; v++ {
				c.Root(uint32(v))
			}
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per 200 steady-state roots, want 0", name, avg)
		}
	}
}

// TestCountParallelRace drives the work-stealing scheduler with many
// workers and tiny chunks so the race detector sees real contention on
// the shared cursor (CI runs the suite with -race).
func TestCountParallelRace(t *testing.T) {
	g := gen.PowerLawCluster(600, 6, 0.5, 3)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	want := Count(g, pl)
	for _, workers := range []int{2, 4, 16, 1000} {
		if got := CountParallel(g, pl, workers); got != want {
			t.Errorf("workers=%d: %d, want %d", workers, got, want)
		}
	}
}

// TestCountCtxCancellation checks that a cancelled context stops the
// scheduler early and is reported, and that an uncancelled run is exact.
func TestCountCtxCancellation(t *testing.T) {
	g := gen.PowerLawCluster(3000, 8, 0.5, 5)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{})
	want := Count(g, pl)

	for _, workers := range []int{1, 4} {
		got, err := CountCtx(context.Background(), g, pl, workers)
		if err != nil || got != want {
			t.Errorf("workers=%d: count %d err %v, want %d <nil>", workers, got, err, want)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		got, err = CountCtx(ctx, g, pl, workers)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: cancelled err = %v", workers, err)
		}
		if se, ok := simerr.As(err); !ok || se.Engine != "miner" || !se.IsCancellation() {
			t.Errorf("workers=%d: cancelled err = %v, want miner SimError cancellation", workers, err)
		}
		if got > want {
			t.Errorf("workers=%d: partial count %d exceeds total %d", workers, got, want)
		}
	}
}

// TestCountEmptyGraph covers the degenerate scheduler inputs.
func TestCountEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	if got := Count(g, pl); got != 0 {
		t.Errorf("empty graph Count = %d", got)
	}
	if got := CountParallel(g, pl, 8); got != 0 {
		t.Errorf("empty graph CountParallel = %d", got)
	}
}
