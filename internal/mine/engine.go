// Package mine executes compiled plans on input graphs. It provides the
// software reference miner (the correctness oracle and CPU baseline), a
// brute-force enumerator for validation, and — via Engine — the
// task-granular tree walk that both accelerator timing models drive:
// each Extend call is exactly one "task" in the paper's sense (§4, "the
// work to extend a new vertex to the current partial embedding"),
// reporting the distinct set operations and neighbor-list fetches the
// hardware would perform.
package mine

import (
	"fmt"

	"fingers/internal/graph"
	"fingers/internal/plan"
	"fingers/internal/setops"
)

// SetOpExec describes one distinct set operation within a task, after
// common-subexpression sharing (identical updates are computed once,
// paper §3.3).
type SetOpExec struct {
	// Kind is the set operation executed by the compute units.
	Kind setops.Op
	// Short is the partial candidate set input (the short set, §3.4).
	Short []uint32
	// Long is the neighbor-list input (the long set).
	Long []uint32
	// LongVertex is the graph vertex whose neighbor list is Long, for
	// memory-traffic accounting.
	LongVertex uint32
	// Targets lists the plan levels whose candidate sets this operation
	// materializes (several when updates are shared).
	Targets []int
	// Result is the operation's output.
	Result []uint32
}

// TaskInfo reports what one task did, for the timing models. Its slices
// are views into engine-owned scratch that the next Start/Extend call on
// the same engine reuses: consume (or copy) a TaskInfo before issuing the
// engine's next task.
type TaskInfo struct {
	// Level is the tree level the new vertex was added at.
	Level int
	// NewVertex is the vertex extending the embedding.
	NewVertex uint32
	// Ops are the distinct set operations, in dependency order.
	Ops []SetOpExec
	// FetchVertices are the distinct vertices whose neighbor lists the
	// task reads: the new vertex first, then any postponed ancestors.
	FetchVertices []uint32
}

// Node is a search-tree node: a partial embedding with the candidate sets
// materialized so far. Set slices are shared structurally downward — a
// child's sets alias its ancestors' result buffers — so a Node may be
// kept on a stack while siblings are explored (the accelerators'
// pseudo-DFS needs this). Nodes come from a per-engine pool: callers that
// hold many nodes (the PE models) hand exhausted ones back with Release,
// strictly children before parents; callers that never Release (the
// oracle walks) simply allocate fresh nodes, as before.
type Node struct {
	// Level is the index of the deepest chosen vertex (len(Verts)-1).
	Level int
	// Verts holds the chosen vertices for levels 0..Level.
	Verts []uint32
	// sets[j] is the materialized partial candidate set S_j(Level) for
	// j > Level; nil when not yet started.
	sets [][]uint32
	// setID[j] identifies the operation that produced sets[j]; equal IDs
	// mean shared storage (used for common-subexpression detection).
	setID []int32
	// bufs are the result arenas of the extend that produced this node
	// (one per set operation); capacity survives pooling.
	bufs [][]uint32
	nbuf int
}

// claimBuf hands out the node's next result arena, empty.
func (n *Node) claimBuf() []uint32 {
	if n.nbuf == len(n.bufs) {
		n.bufs = append(n.bufs, nil)
	}
	return n.bufs[n.nbuf][:0]
}

// storeBuf records the claimed arena's grown backing for reuse.
func (n *Node) storeBuf(b []uint32) {
	n.bufs[n.nbuf] = b
	n.nbuf++
}

// opGroup is one distinct set operation during action grouping.
type opGroup struct {
	op      plan.OpKind
	pending []int
	srcID   int32
	targets []int
}

// Engine walks one plan's search tree on one graph. An Engine is not safe
// for concurrent use; create one per worker goroutine.
//
// The engine dispatches each set operation adaptively (merge, galloping,
// or dense-bitvector kernels, as the software miner does) — the kernels
// differ per call but the set algebra does not, so results, TaskInfo
// geometry, and therefore modeled timing are bit-identical to the plain
// merge walk.
type Engine struct {
	G      *graph.Graph
	Plan   *plan.Plan
	nextID int32

	hub  *graph.HubIndex
	root *Node // persistent level -1 parent for Start

	// Node pool. While speculating, released nodes are parked instead of
	// freed so a rewind can revive the frames that referenced them; see
	// Speculate.
	free   []*Node
	parked []*Node
	spec   bool

	// Per-task scratch backing TaskInfo; valid until the next task.
	ops     []SetOpExec
	fetch   []uint32
	groups  []opGroup
	ngroups int
}

// NewEngine returns an engine for the plan on g.
func NewEngine(g *graph.Graph, pl *plan.Plan) *Engine {
	e := &Engine{G: g, Plan: pl, hub: g.Hubs()}
	k := pl.K()
	e.root = &Node{
		Level: -1,
		Verts: make([]uint32, 0, k),
		sets:  make([][]uint32, k),
		setID: make([]int32, k),
	}
	return e
}

func (e *Engine) newID() int32 {
	e.nextID++
	return e.nextID
}

// Mark returns the engine's set-ID allocation cursor. Together with
// Rewind it lets a speculatively executed task be rolled back and
// replayed with bit-identical IDs (the accelerator models' parallel
// engine journals PEs around speculative steps).
func (e *Engine) Mark() int32 { return e.nextID }

// Rewind resets the set-ID allocation cursor to a Mark.
func (e *Engine) Rewind(mark int32) { e.nextID = mark }

// newNode takes a node from the pool, or allocates one.
func (e *Engine) newNode() *Node {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free = e.free[:n-1]
		return nd
	}
	k := e.Plan.K()
	return &Node{
		Verts: make([]uint32, 0, k),
		sets:  make([][]uint32, k),
		setID: make([]int32, k),
	}
}

// Release returns n's storage to the engine's pool. The caller must hold
// no live references: in particular every child of n (whose sets alias
// n's buffers) must have been released first — pseudo-DFS pop order
// satisfies this naturally. Releasing nil is a no-op. While the engine is
// speculating, the release is parked rather than made reusable, so a
// rewind that revives n's frame stays safe.
func (e *Engine) Release(n *Node) {
	if n == nil || n == e.root {
		return
	}
	if e.spec {
		e.parked = append(e.parked, n)
		return
	}
	e.free = append(e.free, n)
}

// Speculate toggles journaled-release mode. While on, Release parks nodes
// instead of recycling them; ParkMark/ReviveParked rewind the park log in
// step with the caller's own journal, and FlushParked retires it once the
// speculative work is committed.
func (e *Engine) Speculate(on bool) { e.spec = on }

// ParkMark returns the parked-release cursor, to pair with ReviveParked.
func (e *Engine) ParkMark() int { return len(e.parked) }

// ReviveParked drops releases parked at or after mark: the caller has
// rewound its state to the mark, so those nodes are live again (or
// unreferenced, in which case the garbage collector takes them).
func (e *Engine) ReviveParked(mark int) { e.parked = e.parked[:mark] }

// FlushParked moves every parked release into the free pool — the
// speculative work that released them has committed.
func (e *Engine) FlushParked() {
	e.free = append(e.free, e.parked...)
	for i := range e.parked {
		e.parked[i] = nil
	}
	e.parked = e.parked[:0]
}

// Start creates the root node for u_0 = v0 and performs the level-0 task.
func (e *Engine) Start(v0 uint32) (*Node, TaskInfo) {
	return e.extend(e.root, v0)
}

// Extend performs the task of adding v at level n.Level+1: it applies that
// level's scheduled actions and returns the child node plus the task's
// operations. v must come from Candidates(n).
func (e *Engine) Extend(n *Node, v uint32) (*Node, TaskInfo) {
	if n.Level+1 >= e.Plan.K()-1 {
		panic("mine: Extend beyond the last extending level; use LeafCount")
	}
	return e.extend(n, v)
}

// claimGroup appends a grouping-scratch slot, reusing its targets backing.
func (e *Engine) claimGroup(op plan.OpKind, pending []int, srcID int32) *opGroup {
	if e.ngroups == len(e.groups) {
		e.groups = append(e.groups, opGroup{})
	}
	g := &e.groups[e.ngroups]
	e.ngroups++
	g.op, g.pending, g.srcID = op, pending, srcID
	g.targets = g.targets[:0]
	return g
}

func (e *Engine) findInit(pending []int) *opGroup {
	for i := 0; i < e.ngroups; i++ {
		g := &e.groups[i]
		if g.op != plan.OpInit || len(g.pending) != len(pending) {
			continue
		}
		same := true
		for x := range pending {
			if g.pending[x] != pending[x] {
				same = false
				break
			}
		}
		if same {
			return g
		}
	}
	return e.claimGroup(plan.OpInit, pending, 0)
}

func (e *Engine) findUpdate(op plan.OpKind, srcID int32) *opGroup {
	for i := 0; i < e.ngroups; i++ {
		g := &e.groups[i]
		if g.op == op && g.op != plan.OpInit && g.srcID == srcID {
			return g
		}
	}
	return e.claimGroup(op, nil, srcID)
}

func (e *Engine) extend(n *Node, v uint32) (*Node, TaskInfo) {
	level := n.Level + 1
	child := e.newNode()
	child.Level = level
	child.Verts = append(child.Verts[:0], n.Verts...)
	child.Verts = append(child.Verts, v)
	copy(child.sets, n.sets)
	copy(child.setID, n.setID)
	child.nbuf = 0

	e.ops = e.ops[:0]
	e.fetch = e.fetch[:0]
	e.ngroups = 0

	nv := e.G.Neighbors(v)
	e.fetch = append(e.fetch, v)

	// Group this level's actions so shared updates compute once:
	// initializations keyed by their pending-ancestor list, arithmetic
	// updates keyed by (source set identity, op kind).
	for _, act := range e.Plan.Levels[level].Actions {
		var g *opGroup
		if act.Op == plan.OpInit {
			g = e.findInit(act.Pending)
		} else {
			g = e.findUpdate(act.Op, n.setID[act.Target])
		}
		g.targets = append(g.targets, act.Target)
	}

	for gi := 0; gi < e.ngroups; gi++ {
		g := &e.groups[gi]
		var result []uint32
		id := e.newID()
		switch g.op {
		case plan.OpInit:
			result = nv
			// Postponed anti-subtractions: peel each pending ancestor's
			// neighbor list off N(v) (paper §2.1).
			for _, m := range g.pending {
				anc := child.Verts[m]
				ancN := e.G.Neighbors(anc)
				e.fetch = append(e.fetch, anc)
				// The accumulating candidate loses ancN's members; the IU
				// executes this as a subtraction with the candidate as the
				// short input and the ancestor's neighbor list as the long.
				out := e.subtractInto(child.claimBuf(), result, ancN, anc)
				child.storeBuf(out)
				e.ops = append(e.ops, SetOpExec{
					Kind:       setops.OpSubtract,
					Short:      result,
					Long:       ancN,
					LongVertex: anc,
					Targets:    g.targets,
					Result:     out,
				})
				result = out
			}
		case plan.OpIntersect, plan.OpSubtract:
			src := n.sets[g.targets[0]]
			kind := setops.OpIntersect
			out := child.claimBuf()
			if g.op == plan.OpSubtract {
				kind = setops.OpSubtract
				out = e.subtractInto(out, src, nv, v)
			} else {
				out = e.intersectInto(out, src, nv, v)
			}
			child.storeBuf(out)
			e.ops = append(e.ops, SetOpExec{
				Kind:       kind,
				Short:      src,
				Long:       nv,
				LongVertex: v,
				Targets:    g.targets,
				Result:     out,
			})
			result = out
		default:
			panic(fmt.Sprintf("mine: unexpected op kind %v", g.op))
		}
		for _, t := range g.targets {
			child.sets[t] = result
			child.setID[t] = id
		}
	}
	return child, TaskInfo{Level: level, NewVertex: v, Ops: e.ops, FetchVertices: e.fetch}
}

// intersectInto computes src ∩ N(v) into dst with adaptive dispatch.
func (e *Engine) intersectInto(dst, src, nv []uint32, v uint32) []uint32 {
	switch row := e.hub.Row(v); {
	case row != nil:
		return setops.IntersectBitsInto(dst, src, row)
	case len(nv) >= setops.GallopSkewThreshold*len(src) ||
		len(src) >= setops.GallopSkewThreshold*len(nv):
		return setops.IntersectGallopingInto(dst, src, nv)
	default:
		return setops.IntersectInto(dst, src, nv)
	}
}

// subtractInto computes src − N(v) into dst with adaptive dispatch.
func (e *Engine) subtractInto(dst, src, nv []uint32, v uint32) []uint32 {
	switch row := e.hub.Row(v); {
	case row != nil:
		return setops.SubtractBitsInto(dst, src, row)
	case len(nv) >= setops.GallopSkewThreshold*len(src):
		return setops.SubtractGallopingInto(dst, src, nv)
	default:
		return setops.SubtractInto(dst, src, nv)
	}
}

// bounds computes the symmetry-breaking window (lo, hi) for selecting the
// vertex at the given level: candidates must satisfy lo < v < hi.
func (e *Engine) bounds(n *Node, level int) (lo, hi uint32, hasLo, hasHi bool) {
	for _, r := range e.Plan.Levels[level].Restrictions {
		bound := n.Verts[r.Earlier]
		if r.Greater {
			if !hasLo || bound > lo {
				lo, hasLo = bound, true
			}
		} else {
			if !hasHi || bound < hi {
				hi, hasHi = bound, true
			}
		}
	}
	return
}

// window returns the index range [a, b) of n's candidate set for the next
// level that survives the symmetry-breaking bounds.
func (e *Engine) window(n *Node, set []uint32) (a, b int) {
	lo, hi, hasLo, hasHi := e.bounds(n, n.Level+1)
	a, b = 0, len(set)
	if hasLo {
		a = setops.UpperBound(set, lo)
	}
	if hasHi {
		b = setops.LowerBound(set, hi)
	}
	if b < a {
		b = a
	}
	return a, b
}

// Candidates returns the valid vertices for extending n at the next
// level, with symmetry-breaking restrictions and already-used vertices
// filtered out. The returned slice must not be modified; it stays valid
// while n is live (it aliases n's candidate storage, or is freshly
// allocated on the rare path where chosen vertices intrude).
func (e *Engine) Candidates(n *Node) []uint32 {
	set := n.sets[n.Level+1]
	a, b := e.window(n, set)
	window := set[a:b]
	// Chosen vertices rarely appear in the window; copy only if needed.
	clean := true
	for _, u := range n.Verts {
		if setops.Contains(window, u) {
			clean = false
			break
		}
	}
	if clean {
		return window
	}
	out := make([]uint32, 0, len(window))
	for _, v := range window {
		if !containsVert(n.Verts, v) {
			out = append(out, v)
		}
	}
	return out
}

// LeafCount counts the valid vertices at the final level below n, i.e.
// the embeddings completed through n. n.Level must be K-2.
func (e *Engine) LeafCount(n *Node) uint64 {
	if n.Level != e.Plan.K()-2 {
		panic("mine: LeafCount on non-penultimate node")
	}
	set := n.sets[n.Level+1]
	a, b := e.window(n, set)
	count := b - a
	for _, u := range n.Verts {
		if setops.Contains(set[a:b], u) {
			count--
		}
	}
	return uint64(count)
}

// LeafSet returns the final-level candidate set below n with restrictions
// and used vertices applied, for listing embeddings.
func (e *Engine) LeafSet(n *Node) []uint32 {
	return e.Candidates(n)
}

func containsVert(vs []uint32, v uint32) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}
