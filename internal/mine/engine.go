// Package mine executes compiled plans on input graphs. It provides the
// software reference miner (the correctness oracle and CPU baseline), a
// brute-force enumerator for validation, and — via Engine — the
// task-granular tree walk that both accelerator timing models drive:
// each Extend call is exactly one "task" in the paper's sense (§4, "the
// work to extend a new vertex to the current partial embedding"),
// reporting the distinct set operations and neighbor-list fetches the
// hardware would perform.
package mine

import (
	"fmt"

	"fingers/internal/graph"
	"fingers/internal/plan"
	"fingers/internal/setops"
)

// SetOpExec describes one distinct set operation within a task, after
// common-subexpression sharing (identical updates are computed once,
// paper §3.3).
type SetOpExec struct {
	// Kind is the set operation executed by the compute units.
	Kind setops.Op
	// Short is the partial candidate set input (the short set, §3.4).
	Short []uint32
	// Long is the neighbor-list input (the long set).
	Long []uint32
	// LongVertex is the graph vertex whose neighbor list is Long, for
	// memory-traffic accounting.
	LongVertex uint32
	// Targets lists the plan levels whose candidate sets this operation
	// materializes (several when updates are shared).
	Targets []int
	// Result is the operation's output.
	Result []uint32
}

// TaskInfo reports what one task did, for the timing models.
type TaskInfo struct {
	// Level is the tree level the new vertex was added at.
	Level int
	// NewVertex is the vertex extending the embedding.
	NewVertex uint32
	// Ops are the distinct set operations, in dependency order.
	Ops []SetOpExec
	// FetchVertices are the distinct vertices whose neighbor lists the
	// task reads: the new vertex first, then any postponed ancestors.
	FetchVertices []uint32
}

// Node is a search-tree node: a partial embedding with the candidate sets
// materialized so far. Nodes are immutable; Extend returns fresh nodes and
// set slices are shared structurally, so a Node may be kept on a stack
// while siblings are explored (the accelerators' pseudo-DFS needs this).
type Node struct {
	// Level is the index of the deepest chosen vertex (len(Verts)-1).
	Level int
	// Verts holds the chosen vertices for levels 0..Level.
	Verts []uint32
	// sets[j] is the materialized partial candidate set S_j(Level) for
	// j > Level; nil when not yet started.
	sets [][]uint32
	// setID[j] identifies the operation that produced sets[j]; equal IDs
	// mean shared storage (used for common-subexpression detection).
	setID []int32
}

// Engine walks one plan's search tree on one graph. An Engine is not safe
// for concurrent use; create one per worker goroutine.
type Engine struct {
	G      *graph.Graph
	Plan   *plan.Plan
	nextID int32
}

// NewEngine returns an engine for the plan on g.
func NewEngine(g *graph.Graph, pl *plan.Plan) *Engine {
	return &Engine{G: g, Plan: pl}
}

func (e *Engine) newID() int32 {
	e.nextID++
	return e.nextID
}

// Mark returns the engine's set-ID allocation cursor. Together with
// Rewind it lets a speculatively executed task be rolled back and
// replayed with bit-identical IDs (the accelerator models' parallel
// engine snapshots PEs around speculative steps).
func (e *Engine) Mark() int32 { return e.nextID }

// Rewind resets the set-ID allocation cursor to a Mark.
func (e *Engine) Rewind(mark int32) { e.nextID = mark }

// Start creates the root node for u_0 = v0 and performs the level-0 task.
func (e *Engine) Start(v0 uint32) (*Node, TaskInfo) {
	k := e.Plan.K()
	n := &Node{
		Level: -1,
		Verts: make([]uint32, 0, k),
		sets:  make([][]uint32, k),
		setID: make([]int32, k),
	}
	return e.extend(n, v0)
}

// Extend performs the task of adding v at level n.Level+1: it applies that
// level's scheduled actions and returns the child node plus the task's
// operations. v must come from Candidates(n).
func (e *Engine) Extend(n *Node, v uint32) (*Node, TaskInfo) {
	if n.Level+1 >= e.Plan.K()-1 {
		panic("mine: Extend beyond the last extending level; use LeafCount")
	}
	return e.extend(n, v)
}

func (e *Engine) extend(n *Node, v uint32) (*Node, TaskInfo) {
	level := n.Level + 1
	k := e.Plan.K()
	child := &Node{
		Level: level,
		Verts: append(append(make([]uint32, 0, k), n.Verts...), v),
		sets:  append([][]uint32(nil), n.sets...),
		setID: append([]int32(nil), n.setID...),
	}
	info := TaskInfo{Level: level, NewVertex: v}
	nv := e.G.Neighbors(v)
	info.FetchVertices = append(info.FetchVertices, v)

	// Group this level's actions so shared updates compute once:
	// initializations keyed by their pending-ancestor list, arithmetic
	// updates keyed by (source set identity, op kind).
	type group struct {
		op      plan.OpKind
		pending []int
		srcID   int32
		targets []int
	}
	var groups []group
	findInit := func(pending []int) *group {
		for i := range groups {
			g := &groups[i]
			if g.op != plan.OpInit || len(g.pending) != len(pending) {
				continue
			}
			same := true
			for x := range pending {
				if g.pending[x] != pending[x] {
					same = false
					break
				}
			}
			if same {
				return g
			}
		}
		groups = append(groups, group{op: plan.OpInit, pending: pending})
		return &groups[len(groups)-1]
	}
	findUpdate := func(op plan.OpKind, srcID int32) *group {
		for i := range groups {
			g := &groups[i]
			if g.op == op && g.op != plan.OpInit && g.srcID == srcID {
				return g
			}
		}
		groups = append(groups, group{op: op, srcID: srcID})
		return &groups[len(groups)-1]
	}
	for _, act := range e.Plan.Levels[level].Actions {
		var g *group
		if act.Op == plan.OpInit {
			g = findInit(act.Pending)
		} else {
			g = findUpdate(act.Op, n.setID[act.Target])
		}
		g.targets = append(g.targets, act.Target)
	}

	for _, g := range groups {
		var result []uint32
		id := e.newID()
		switch g.op {
		case plan.OpInit:
			result = nv
			// Postponed anti-subtractions: peel each pending ancestor's
			// neighbor list off N(v) (paper §2.1).
			for _, m := range g.pending {
				anc := child.Verts[m]
				ancN := e.G.Neighbors(anc)
				info.FetchVertices = append(info.FetchVertices, anc)
				// The accumulating candidate loses ancN's members; the IU
				// executes this as a subtraction with the candidate as the
				// short input and the ancestor's neighbor list as the long.
				op := SetOpExec{
					Kind:       setops.OpSubtract,
					Short:      result,
					Long:       ancN,
					LongVertex: anc,
					Targets:    append([]int(nil), g.targets...),
				}
				result = setops.Subtract(result, ancN)
				op.Result = result
				info.Ops = append(info.Ops, op)
			}
		case plan.OpIntersect, plan.OpSubtract:
			src := n.sets[g.targets[0]]
			kind := setops.OpIntersect
			if g.op == plan.OpSubtract {
				kind = setops.OpSubtract
			}
			result = setops.Apply(kind, src, nv)
			info.Ops = append(info.Ops, SetOpExec{
				Kind:       kind,
				Short:      src,
				Long:       nv,
				LongVertex: v,
				Targets:    append([]int(nil), g.targets...),
				Result:     result,
			})
		default:
			panic(fmt.Sprintf("mine: unexpected op kind %v", g.op))
		}
		for _, t := range g.targets {
			child.sets[t] = result
			child.setID[t] = id
		}
	}
	return child, info
}

// bounds computes the symmetry-breaking window (lo, hi) for selecting the
// vertex at the given level: candidates must satisfy lo < v < hi.
func (e *Engine) bounds(n *Node, level int) (lo, hi uint32, hasLo, hasHi bool) {
	for _, r := range e.Plan.Levels[level].Restrictions {
		bound := n.Verts[r.Earlier]
		if r.Greater {
			if !hasLo || bound > lo {
				lo, hasLo = bound, true
			}
		} else {
			if !hasHi || bound < hi {
				hi, hasHi = bound, true
			}
		}
	}
	return
}

// window returns the index range [a, b) of n's candidate set for the next
// level that survives the symmetry-breaking bounds.
func (e *Engine) window(n *Node, set []uint32) (a, b int) {
	lo, hi, hasLo, hasHi := e.bounds(n, n.Level+1)
	a, b = 0, len(set)
	if hasLo {
		a = setops.UpperBound(set, lo)
	}
	if hasHi {
		b = setops.LowerBound(set, hi)
	}
	if b < a {
		b = a
	}
	return a, b
}

// Candidates returns the valid vertices for extending n at the next
// level, with symmetry-breaking restrictions and already-used vertices
// filtered out. The returned slice must not be modified.
func (e *Engine) Candidates(n *Node) []uint32 {
	set := n.sets[n.Level+1]
	a, b := e.window(n, set)
	window := set[a:b]
	// Chosen vertices rarely appear in the window; copy only if needed.
	clean := true
	for _, u := range n.Verts {
		if setops.Contains(window, u) {
			clean = false
			break
		}
	}
	if clean {
		return window
	}
	out := make([]uint32, 0, len(window))
	for _, v := range window {
		if !containsVert(n.Verts, v) {
			out = append(out, v)
		}
	}
	return out
}

// LeafCount counts the valid vertices at the final level below n, i.e.
// the embeddings completed through n. n.Level must be K-2.
func (e *Engine) LeafCount(n *Node) uint64 {
	if n.Level != e.Plan.K()-2 {
		panic("mine: LeafCount on non-penultimate node")
	}
	set := n.sets[n.Level+1]
	a, b := e.window(n, set)
	count := b - a
	for _, u := range n.Verts {
		if setops.Contains(set[a:b], u) {
			count--
		}
	}
	return uint64(count)
}

// LeafSet returns the final-level candidate set below n with restrictions
// and used vertices applied, for listing embeddings.
func (e *Engine) LeafSet(n *Node) []uint32 {
	return e.Candidates(n)
}

func containsVert(vs []uint32, v uint32) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}
