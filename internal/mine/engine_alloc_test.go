package mine

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// releaseWalk mines the subtree under n with pool discipline: children are
// released before their parents, as the PE models' pseudo-DFS does. It is
// a top-level function (not a closure) so AllocsPerRun sees only the
// engine's own allocations.
func releaseWalk(e *Engine, n *Node, penult int) uint64 {
	if n.Level == penult {
		return e.LeafCount(n)
	}
	var total uint64
	for _, c := range e.Candidates(n) {
		child, _ := e.Extend(n, c)
		total += releaseWalk(e, child, penult)
		e.Release(child)
	}
	return total
}

func mineRootPooled(e *Engine, penult int, v uint32) uint64 {
	root, _ := e.Start(v)
	total := releaseWalk(e, root, penult)
	e.Release(root)
	return total
}

// TestEngineSteadyStateAllocs asserts the pooled Extend path allocates
// nothing once node and scratch capacities have warmed up.
func TestEngineSteadyStateAllocs(t *testing.T) {
	g := gen.Complete(12)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{})
	e := NewEngine(g, pl)
	penult := pl.K() - 2
	var warm uint64
	for v := 0; v < g.NumVertices(); v++ {
		warm += mineRootPooled(e, penult, uint32(v))
	}
	if want := CountOracle(g, pl); warm != want {
		t.Fatalf("pooled walk count = %d, oracle %d", warm, want)
	}
	allocs := testing.AllocsPerRun(10, func() {
		mineRootPooled(e, penult, 1)
	})
	if allocs != 0 {
		t.Errorf("steady-state extend allocates %.1f objects per root, want 0", allocs)
	}
}

// TestEngineReleaseParking checks the speculative park log: parked nodes
// are not reused until flushed, and a revive returns them to live use
// without entering the pool.
func TestEngineReleaseParking(t *testing.T) {
	g := gen.Complete(8)
	pl := plan.MustCompile(pattern.Clique(3), plan.Options{})
	e := NewEngine(g, pl)

	root, _ := e.Start(0)
	e.Speculate(true)
	mark := e.ParkMark()
	e.Release(root)
	if got := e.ParkMark(); got != mark+1 {
		t.Fatalf("park cursor = %d, want %d", got, mark+1)
	}
	if len(e.free) != 0 {
		t.Fatalf("speculative release entered the free pool (%d nodes)", len(e.free))
	}
	// A rewind revives the node: it must not surface in the pool.
	e.ReviveParked(mark)
	if len(e.free) != 0 || len(e.parked) != 0 {
		t.Fatalf("revive leaked nodes: free=%d parked=%d", len(e.free), len(e.parked))
	}
	// Committed releases flush to the pool and get reused.
	e.Release(root)
	e.Speculate(false)
	e.FlushParked()
	if len(e.free) != 1 {
		t.Fatalf("flush left free=%d, want 1", len(e.free))
	}
	n2, _ := e.Start(1)
	if n2 != root {
		t.Error("flushed node was not reused")
	}
	if len(e.free) != 0 {
		t.Errorf("pool not drained after reuse: free=%d", len(e.free))
	}
}
