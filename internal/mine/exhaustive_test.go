package mine

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// TestAllSize4PatternsAgainstOracle compiles and mines every connected
// 4-vertex pattern (all six isomorphism classes) on random graphs and
// checks each count against the brute-force oracle — broader than the
// named-pattern tests, this covers pattern shapes with every kind of
// schedule (pure intersects, mixed, postponed subtractions).
func TestAllSize4PatternsAgainstOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed int64
	}{{"er", 31}, {"plc", 32}} {
		var g = gen.ErdosRenyi(15, 45, tc.seed)
		if tc.name == "plc" {
			g = gen.PowerLawCluster(15, 3, 0.7, tc.seed)
		}
		for i, p := range pattern.ConnectedSubpatternsOfSize(4) {
			for _, edgeInduced := range []bool{false, true} {
				pl, err := plan.Compile(p, plan.Options{EdgeInduced: edgeInduced})
				if err != nil {
					t.Fatalf("pattern %d: %v", i, err)
				}
				got := Count(g, pl)
				want := BruteForceUnique(g, p, !edgeInduced)
				if got != want {
					t.Errorf("%s pattern %d (%v) edgeInduced=%v: %d, want %d",
						tc.name, i, p, edgeInduced, got, want)
				}
			}
		}
	}
}

// TestAllSize5PatternsSpotCheck covers the 21 connected 5-vertex classes
// on one small graph (vertex-induced only; size-5 brute force is pricey).
func TestAllSize5PatternsSpotCheck(t *testing.T) {
	g := gen.ErdosRenyi(12, 36, 77)
	for i, p := range pattern.ConnectedSubpatternsOfSize(5) {
		pl, err := plan.Compile(p, plan.Options{})
		if err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		got := Count(g, pl)
		want := BruteForceUnique(g, p, true)
		if got != want {
			t.Errorf("pattern %d (%v): %d, want %d", i, p, got, want)
		}
	}
}

// TestForcedOrdersAllAgree mines the tailed triangle under every valid
// vertex order: the count must be order-independent.
func TestForcedOrdersAllAgree(t *testing.T) {
	g := gen.PowerLawCluster(60, 4, 0.6, 41)
	p := pattern.TailedTriangle()
	want := BruteForceUnique(g, p, true)
	orders := [][]int{
		{0, 1, 2, 3},
		{0, 2, 1, 3},
		{0, 3, 1, 2},
		{1, 0, 2, 3},
		{1, 2, 0, 3},
		{3, 0, 1, 2},
	}
	for _, order := range orders {
		pl, err := plan.Compile(p, plan.Options{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if got := Count(g, pl); got != want {
			t.Errorf("order %v: count %d, want %d", order, got, want)
		}
	}
}

// TestDeterministicRuns re-executes identical workloads and demands
// byte-identical results — the engine has no hidden nondeterminism.
func TestDeterministicRuns(t *testing.T) {
	g := gen.PowerLawCluster(200, 5, 0.5, 51)
	pl := plan.MustCompile(pattern.Diamond(), plan.Options{})
	a, b := Count(g, pl), Count(g, pl)
	if a != b {
		t.Errorf("counts differ across runs: %d vs %d", a, b)
	}
}
