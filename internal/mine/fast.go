package mine

import (
	"fingers/internal/graph"
	"fingers/internal/plan"
	"fingers/internal/setops"
)

// Counter is the adaptive software miner: it walks the same search tree
// as Engine but is built for CPU throughput rather than hardware-model
// fidelity. Three things distinguish it (and are why Count/CountParallel
// route through it):
//
//   - adaptive kernel dispatch: every set operation picks merge,
//     galloping, or dense-bitvector probing per call, from the input size
//     ratio and whether the neighbor-list side belongs to a hub vertex
//     with a precomputed bitset row (graph.HubIndex);
//   - zero steady-state allocation: candidate sets live in per-level
//     scratch buffers that are reused across siblings and roots, so after
//     buffer capacities warm up, mining a root allocates nothing;
//   - leaf counting without materialization: when the last extending
//     level performs a single intersect/subtract, the embedding count is
//     computed directly from counting kernels over the symmetry-breaking
//     window.
//
// A Counter is not safe for concurrent use; create one per worker (it is
// the "per-worker scratch arena" of the work-stealing scheduler).
// Counts are bit-identical to Engine's: the kernels differ, the set
// algebra does not.
type Counter struct {
	g     *graph.Graph
	pl    *plan.Plan
	sched [][]step
	hub   *graph.HubIndex
	adj   *graph.HybridAdj
	k     int

	verts  []uint32
	frames []frame
	stats  KernelStats
}

// frame is one level's scratch arena.
type frame struct {
	// sets[j] is the candidate set for slot j after this level's steps,
	// pointing into a buf below, a shallower frame's buf, or graph
	// storage. Reading sets[st.src] before the step writes its targets
	// yields the parent's value (each slot is written once per level).
	sets [][]uint32
	// alias[j] is the vertex whose raw neighbor list sets[j] aliases
	// (an OpInit step with no postponed ancestors), or -1 once any
	// kernel has rewritten the slot. It lets the leaf fast path
	// recognize N(u) op N(v) shapes and count them entirely on stored
	// rows — the pure-popcount path of the hybrid storage tentpole.
	alias []int64
	// bufs[i] is step i's reusable result buffer; capacity only grows.
	bufs [][]uint32
}

// KernelStats counts kernel-dispatch decisions, split between
// materializing operations and leaf counting. BmProbe/CountBmProbe are
// array×bitmap container probes; CountBmWord is the word-parallel
// popcount leaf path over two stored rows.
type KernelStats struct {
	Merge, Gallop, Bits, BmProbe                    uint64
	CountMerge, CountGallop, CountBits, CountBmProbe uint64
	CountBmWord                                      uint64
}

// Total returns the number of dispatched operations.
func (s KernelStats) Total() uint64 {
	return s.Merge + s.Gallop + s.Bits + s.BmProbe +
		s.CountMerge + s.CountGallop + s.CountBits + s.CountBmProbe +
		s.CountBmWord
}

// NewCounter returns a reusable adaptive miner for the plan on g, using
// the graph's cached adaptive hybrid view: dense rows for hubs,
// compressed bitmaps where the density heuristic approves, CSR arrays
// otherwise.
func NewCounter(g *graph.Graph, pl *plan.Plan) *Counter {
	return NewCounterPolicy(g, pl, graph.StorageAdaptive)
}

// NewCounterPolicy returns a Counter under an explicit storage policy.
// StorageAdaptive shares the graph's cached hybrid view (so parallel
// workers never duplicate rows); the forced policies build a private
// view and exist for differential tests and ablations.
func NewCounterPolicy(g *graph.Graph, pl *plan.Plan, policy graph.StoragePolicy) *Counter {
	c := &Counter{
		g:     g,
		pl:    pl,
		sched: buildSchedule(pl),
		k:     pl.K(),
	}
	switch policy {
	case graph.StorageArray:
		// Pure merge/gallop: no dense rows, no bitmaps.
	case graph.StorageAdaptive:
		c.adj = g.Hybrid()
		c.hub = c.adj.Hub()
	default:
		c.adj = graph.NewHybridAdj(g, policy, 0)
		c.hub = c.adj.Hub()
	}
	c.verts = make([]uint32, c.k)
	c.frames = make([]frame, c.k-1)
	for level := range c.frames {
		c.frames[level].sets = make([][]uint32, c.k)
		c.frames[level].alias = make([]int64, c.k)
		c.frames[level].bufs = make([][]uint32, len(c.sched[level]))
	}
	return c
}

// SetHubIndex overrides the hub index, primarily so tests can force the
// dense bitvector kernels on small graphs; nil disables them. The
// override also detaches the hybrid bitmap tier, so dispatch never
// touches compressed bitmaps.
func (c *Counter) SetHubIndex(h *graph.HubIndex) {
	c.hub = h
	c.adj = nil
}

// SetHybrid overrides the storage view (and with it the hub index),
// letting tests and ablations share one forced-policy view across
// counters; nil detaches both tiers.
func (c *Counter) SetHybrid(adj *graph.HybridAdj) {
	c.adj = adj
	c.hub = adj.Hub()
}

// rows resolves v's stored representations through the cheapest check
// available: the hybrid view's O(1) tier array when one is attached
// (the serving default — no per-dispatch map hash for array-tier
// vertices), or the hub override installed by SetHubIndex.
func (c *Counter) rows(v uint32) ([]uint64, *setops.Bitmap) {
	if c.adj != nil {
		return c.adj.Rows(v)
	}
	return c.hub.Row(v), nil
}

// Stats returns the kernel-dispatch counters accumulated so far.
func (c *Counter) Stats() KernelStats { return c.stats }

// Root mines the search tree rooted at v0 and returns its embedding
// count. After buffer warm-up it performs no heap allocation.
func (c *Counter) Root(v0 uint32) uint64 {
	return c.descend(0, v0)
}

func (c *Counter) descend(level int, v uint32) uint64 {
	c.verts[level] = v
	f := &c.frames[level]
	if level == 0 {
		for i := range f.sets {
			f.sets[i] = nil
			f.alias[i] = -1
		}
	} else {
		copy(f.sets, c.frames[level-1].sets)
		copy(f.alias, c.frames[level-1].alias)
	}
	nv := c.g.Neighbors(v)
	steps := c.sched[level]

	if level == c.k-2 {
		// Leaf fast path: a lone update step materializing only the final
		// slot can be counted without writing the result.
		if len(steps) == 1 && steps[0].op != plan.OpInit {
			return c.leafCountUpdate(&steps[0], f, nv, v)
		}
		c.applySteps(f, steps, nv, v)
		return c.leafCountSet(f.sets[c.k-1])
	}

	c.applySteps(f, steps, nv, v)
	set := f.sets[level+1]
	a, b := c.window(level+1, set)
	used := c.verts[:level+1]
	var total uint64
	for _, w := range set[a:b] {
		if containsVert(used, w) {
			continue
		}
		total += c.descend(level+1, w)
	}
	return total
}

// applySteps executes one level's schedule into the frame's arenas.
func (c *Counter) applySteps(f *frame, steps []step, nv []uint32, v uint32) {
	for si := range steps {
		st := &steps[si]
		var result []uint32
		aliasVert := int64(-1)
		if st.op == plan.OpInit {
			if len(st.pending) == 0 {
				// No postponed ancestors: the slot aliases the (read-only)
				// neighbor list, costing nothing.
				result = nv
				aliasVert = int64(v)
			} else {
				buf := f.bufs[si][:0]
				anc := c.verts[st.pending[0]]
				buf = c.subtractNeighborsInto(buf, nv, anc)
				for _, m := range st.pending[1:] {
					buf = c.subtractNeighborsInPlace(buf, c.verts[m])
				}
				f.bufs[si] = buf
				result = buf
			}
		} else {
			src := f.sets[st.src] // parent's value: targets not yet written
			buf := c.updateInto(st.op, f.bufs[si][:0], src, nv, v)
			f.bufs[si] = buf
			result = buf
		}
		for _, t := range st.targets {
			f.sets[t] = result
			f.alias[t] = aliasVert
		}
	}
}

// updateInto computes op(src, N(v)) into dst with format-aware
// dispatch: dense row, then compressed bitmap row, then the size-skew
// choice between galloping and merge on the raw arrays.
func (c *Counter) updateInto(op plan.OpKind, dst, src, nv []uint32, v uint32) []uint32 {
	row, bm := c.rows(v)
	if op == plan.OpIntersect {
		switch {
		case row != nil:
			c.stats.Bits++
			return setops.IntersectBitsInto(dst, src, row)
		case bm != nil:
			c.stats.BmProbe++
			return setops.IntersectArrayBitmapInto(dst, src, bm)
		case skewed(src, nv):
			c.stats.Gallop++
			return setops.IntersectGallopingInto(dst, src, nv)
		default:
			c.stats.Merge++
			return setops.IntersectInto(dst, src, nv)
		}
	}
	switch {
	case row != nil:
		c.stats.Bits++
		return setops.SubtractBitsInto(dst, src, row)
	case bm != nil:
		c.stats.BmProbe++
		return setops.SubtractArrayBitmapInto(dst, src, bm)
	case len(nv) >= setops.GallopSkewThreshold*len(src):
		c.stats.Gallop++
		return setops.SubtractGallopingInto(dst, src, nv)
	default:
		c.stats.Merge++
		return setops.SubtractInto(dst, src, nv)
	}
}

// subtractNeighborsInto computes a − N(anc) into dst (the postponed
// anti-subtraction of §2.1, candidate side first).
func (c *Counter) subtractNeighborsInto(dst, a []uint32, anc uint32) []uint32 {
	row, bm := c.rows(anc)
	if row != nil {
		c.stats.Bits++
		return setops.SubtractBitsInto(dst, a, row)
	}
	if bm != nil {
		c.stats.BmProbe++
		return setops.SubtractArrayBitmapInto(dst, a, bm)
	}
	ancN := c.g.Neighbors(anc)
	if len(ancN) >= setops.GallopSkewThreshold*len(a) {
		c.stats.Gallop++
	} else {
		c.stats.Merge++
	}
	return setops.SubtractGallopingInto(dst, a, ancN)
}

// subtractNeighborsInPlace compacts a to a − N(anc) in place.
func (c *Counter) subtractNeighborsInPlace(a []uint32, anc uint32) []uint32 {
	row, bm := c.rows(anc)
	if row != nil {
		c.stats.Bits++
		return setops.SubtractBitsInPlace(a, row)
	}
	if bm != nil {
		c.stats.BmProbe++
		return setops.SubtractArrayBitmapInPlace(a, bm)
	}
	ancN := c.g.Neighbors(anc)
	if len(ancN) >= setops.GallopSkewThreshold*len(a) {
		c.stats.Gallop++
	} else {
		c.stats.Merge++
	}
	return setops.SubtractInPlace(a, ancN)
}

// skewed reports whether either input dwarfs the other enough for the
// galloping kernels to engage.
func skewed(a, b []uint32) bool {
	return len(b) >= setops.GallopSkewThreshold*len(a) ||
		len(a) >= setops.GallopSkewThreshold*len(b)
}

// leafCountUpdate counts op(src, N(v)) restricted to the final level's
// symmetry-breaking window, excluding already-used vertices, without
// materializing the result.
func (c *Counter) leafCountUpdate(st *step, f *frame, nv []uint32, v uint32) uint64 {
	src := f.sets[st.src]
	// Pure-popcount path: when the source slot still aliases N(u) and
	// both u and v keep stored rows (dense or bitmap), the whole leaf
	// count happens on container words — no array is even read.
	if au := f.alias[st.src]; au >= 0 {
		if cnt, ok := c.leafCountRows(st.op, uint32(au), v); ok {
			return cnt
		}
	}
	a, b := c.window(c.k-1, src)
	win := src[a:b]
	row, bm := c.rows(v)
	used := c.verts[:c.k-1]
	var cnt int
	if st.op == plan.OpIntersect {
		switch {
		case row != nil:
			c.stats.CountBits++
			cnt = setops.IntersectCountBits(win, row)
		case bm != nil:
			c.stats.CountBmProbe++
			cnt = setops.IntersectArrayBitmapCount(win, bm)
		case skewed(win, nv):
			c.stats.CountGallop++
			cnt = setops.IntersectCountGalloping(win, nv)
		default:
			c.stats.CountMerge++
			cnt = setops.IntersectCount(win, nv)
		}
		for _, u := range used {
			if setops.Contains(win, u) && c.leafMember(nv, row, bm, u) {
				cnt--
			}
		}
	} else {
		switch {
		case row != nil:
			c.stats.CountBits++
			cnt = len(win) - setops.IntersectCountBits(win, row)
		case bm != nil:
			c.stats.CountBmProbe++
			cnt = len(win) - setops.IntersectArrayBitmapCount(win, bm)
		case skewed(win, nv):
			c.stats.CountGallop++
			cnt = len(win) - setops.IntersectCountGalloping(win, nv)
		default:
			c.stats.CountMerge++
			cnt = len(win) - setops.IntersectCount(win, nv)
		}
		for _, u := range used {
			if setops.Contains(win, u) && !c.leafMember(nv, row, bm, u) {
				cnt--
			}
		}
	}
	return uint64(cnt)
}

// leafCountRows counts op(N(u), N(v)) within the leaf window entirely
// on stored rows, returning ok=false when either vertex lacks one. The
// set algebra is identical to the array path: the bounded kernels count
// the same open interval the window() slicing selects, and the
// used-vertex exclusion applies the same membership tests.
func (c *Counter) leafCountRows(op plan.OpKind, u, v uint32) (uint64, bool) {
	uDense, uBm := c.rows(u)
	if uDense == nil && uBm == nil {
		return 0, false
	}
	vDense, vBm := c.rows(v)
	if vDense == nil && vBm == nil {
		return 0, false
	}
	lo, hi, hasLo, hasHi := c.windowBounds(c.k - 1)
	var inter int
	switch {
	case uBm != nil && vBm != nil:
		c.stats.CountBmWord++
		inter = setops.IntersectBitmapsCountBounded(uBm, vBm, lo, hi, hasLo, hasHi)
	case uBm != nil:
		c.stats.CountBmWord++
		inter = setops.IntersectBitmapBitsCountBounded(uBm, vDense, lo, hi, hasLo, hasHi)
	case vBm != nil:
		c.stats.CountBmWord++
		inter = setops.IntersectBitmapBitsCountBounded(vBm, uDense, lo, hi, hasLo, hasHi)
	default:
		// Two dense rows: still the bitvector kernel family, word-parallel.
		c.stats.CountBits++
		inter = setops.IntersectBitsCountBounded(uDense, vDense, lo, hi, hasLo, hasHi)
	}
	cnt := inter
	if op != plan.OpIntersect {
		var total int
		if uBm != nil {
			total = uBm.CountBounded(lo, hi, hasLo, hasHi)
		} else {
			total = setops.CountBitsBounded(uDense, lo, hi, hasLo, hasHi)
		}
		cnt = total - inter
	}
	for _, w := range c.verts[:c.k-1] {
		if hasLo && w <= lo {
			continue
		}
		if hasHi && w >= hi {
			continue
		}
		if !uBm.Contains(w) && !setops.BitsContain(uDense, w) {
			continue
		}
		inV := vBm.Contains(w) || setops.BitsContain(vDense, w)
		if op == plan.OpIntersect {
			if inV {
				cnt--
			}
		} else if !inV {
			cnt--
		}
	}
	return uint64(cnt), true
}

// leafMember reports u ∈ N(v) through the stored row when available.
func (c *Counter) leafMember(nv []uint32, row []uint64, bm *setops.Bitmap, u uint32) bool {
	if row != nil {
		return setops.BitsContain(row, u)
	}
	if bm != nil {
		return bm.Contains(u)
	}
	return setops.Contains(nv, u)
}

// leafCountSet counts a materialized final-level set within its window,
// excluding used vertices (the generic leaf path).
func (c *Counter) leafCountSet(set []uint32) uint64 {
	a, b := c.window(c.k-1, set)
	cnt := b - a
	for _, u := range c.verts[:c.k-1] {
		if setops.Contains(set[a:b], u) {
			cnt--
		}
	}
	return uint64(cnt)
}

// windowBounds resolves the symmetry-breaking restrictions of the given
// level to the open interval (lo, hi): candidates must be strictly
// greater than lo when hasLo and strictly less than hi when hasHi.
func (c *Counter) windowBounds(level int) (lo, hi uint32, hasLo, hasHi bool) {
	for _, r := range c.pl.Levels[level].Restrictions {
		bound := c.verts[r.Earlier]
		if r.Greater {
			if !hasLo || bound > lo {
				lo, hasLo = bound, true
			}
		} else {
			if !hasHi || bound < hi {
				hi, hasHi = bound, true
			}
		}
	}
	return lo, hi, hasLo, hasHi
}

// window returns the index range of set surviving the symmetry-breaking
// restrictions of the given level, mirroring Engine.window.
func (c *Counter) window(level int, set []uint32) (a, b int) {
	lo, hi, hasLo, hasHi := c.windowBounds(level)
	a, b = 0, len(set)
	if hasLo {
		a = setops.UpperBound(set, lo)
	}
	if hasHi {
		b = setops.LowerBound(set, hi)
	}
	if b < a {
		b = a
	}
	return a, b
}
