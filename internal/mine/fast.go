package mine

import (
	"fingers/internal/graph"
	"fingers/internal/plan"
	"fingers/internal/setops"
)

// Counter is the adaptive software miner: it walks the same search tree
// as Engine but is built for CPU throughput rather than hardware-model
// fidelity. Three things distinguish it (and are why Count/CountParallel
// route through it):
//
//   - adaptive kernel dispatch: every set operation picks merge,
//     galloping, or dense-bitvector probing per call, from the input size
//     ratio and whether the neighbor-list side belongs to a hub vertex
//     with a precomputed bitset row (graph.HubIndex);
//   - zero steady-state allocation: candidate sets live in per-level
//     scratch buffers that are reused across siblings and roots, so after
//     buffer capacities warm up, mining a root allocates nothing;
//   - leaf counting without materialization: when the last extending
//     level performs a single intersect/subtract, the embedding count is
//     computed directly from counting kernels over the symmetry-breaking
//     window.
//
// A Counter is not safe for concurrent use; create one per worker (it is
// the "per-worker scratch arena" of the work-stealing scheduler).
// Counts are bit-identical to Engine's: the kernels differ, the set
// algebra does not.
type Counter struct {
	g     *graph.Graph
	pl    *plan.Plan
	sched [][]step
	hub   *graph.HubIndex
	k     int

	verts  []uint32
	frames []frame
	stats  KernelStats
}

// frame is one level's scratch arena.
type frame struct {
	// sets[j] is the candidate set for slot j after this level's steps,
	// pointing into a buf below, a shallower frame's buf, or graph
	// storage. Reading sets[st.src] before the step writes its targets
	// yields the parent's value (each slot is written once per level).
	sets [][]uint32
	// bufs[i] is step i's reusable result buffer; capacity only grows.
	bufs [][]uint32
}

// KernelStats counts kernel-dispatch decisions, split between
// materializing operations and leaf counting.
type KernelStats struct {
	Merge, Gallop, Bits                uint64
	CountMerge, CountGallop, CountBits uint64
}

// Total returns the number of dispatched operations.
func (s KernelStats) Total() uint64 {
	return s.Merge + s.Gallop + s.Bits + s.CountMerge + s.CountGallop + s.CountBits
}

// NewCounter returns a reusable adaptive miner for the plan on g, using
// the graph's default hub index (built and cached on first use).
func NewCounter(g *graph.Graph, pl *plan.Plan) *Counter {
	c := &Counter{
		g:     g,
		pl:    pl,
		sched: buildSchedule(pl),
		hub:   g.Hubs(),
		k:     pl.K(),
	}
	c.verts = make([]uint32, c.k)
	c.frames = make([]frame, c.k-1)
	for level := range c.frames {
		c.frames[level].sets = make([][]uint32, c.k)
		c.frames[level].bufs = make([][]uint32, len(c.sched[level]))
	}
	return c
}

// SetHubIndex overrides the hub index, primarily so tests can force the
// bitvector kernels on small graphs; nil disables them.
func (c *Counter) SetHubIndex(h *graph.HubIndex) { c.hub = h }

// Stats returns the kernel-dispatch counters accumulated so far.
func (c *Counter) Stats() KernelStats { return c.stats }

// Root mines the search tree rooted at v0 and returns its embedding
// count. After buffer warm-up it performs no heap allocation.
func (c *Counter) Root(v0 uint32) uint64 {
	return c.descend(0, v0)
}

func (c *Counter) descend(level int, v uint32) uint64 {
	c.verts[level] = v
	f := &c.frames[level]
	if level == 0 {
		for i := range f.sets {
			f.sets[i] = nil
		}
	} else {
		copy(f.sets, c.frames[level-1].sets)
	}
	nv := c.g.Neighbors(v)
	steps := c.sched[level]

	if level == c.k-2 {
		// Leaf fast path: a lone update step materializing only the final
		// slot can be counted without writing the result.
		if len(steps) == 1 && steps[0].op != plan.OpInit {
			return c.leafCountUpdate(&steps[0], f, nv, v)
		}
		c.applySteps(f, steps, nv, v)
		return c.leafCountSet(f.sets[c.k-1])
	}

	c.applySteps(f, steps, nv, v)
	set := f.sets[level+1]
	a, b := c.window(level+1, set)
	used := c.verts[:level+1]
	var total uint64
	for _, w := range set[a:b] {
		if containsVert(used, w) {
			continue
		}
		total += c.descend(level+1, w)
	}
	return total
}

// applySteps executes one level's schedule into the frame's arenas.
func (c *Counter) applySteps(f *frame, steps []step, nv []uint32, v uint32) {
	for si := range steps {
		st := &steps[si]
		var result []uint32
		if st.op == plan.OpInit {
			if len(st.pending) == 0 {
				// No postponed ancestors: the slot aliases the (read-only)
				// neighbor list, costing nothing.
				result = nv
			} else {
				buf := f.bufs[si][:0]
				anc := c.verts[st.pending[0]]
				buf = c.subtractNeighborsInto(buf, nv, anc)
				for _, m := range st.pending[1:] {
					buf = c.subtractNeighborsInPlace(buf, c.verts[m])
				}
				f.bufs[si] = buf
				result = buf
			}
		} else {
			src := f.sets[st.src] // parent's value: targets not yet written
			buf := c.updateInto(st.op, f.bufs[si][:0], src, nv, v)
			f.bufs[si] = buf
			result = buf
		}
		for _, t := range st.targets {
			f.sets[t] = result
		}
	}
}

// updateInto computes op(src, N(v)) into dst with adaptive dispatch.
func (c *Counter) updateInto(op plan.OpKind, dst, src, nv []uint32, v uint32) []uint32 {
	row := c.hub.Row(v)
	if op == plan.OpIntersect {
		switch {
		case row != nil:
			c.stats.Bits++
			return setops.IntersectBitsInto(dst, src, row)
		case skewed(src, nv):
			c.stats.Gallop++
			return setops.IntersectGallopingInto(dst, src, nv)
		default:
			c.stats.Merge++
			return setops.IntersectInto(dst, src, nv)
		}
	}
	switch {
	case row != nil:
		c.stats.Bits++
		return setops.SubtractBitsInto(dst, src, row)
	case len(nv) >= setops.GallopSkewThreshold*len(src):
		c.stats.Gallop++
		return setops.SubtractGallopingInto(dst, src, nv)
	default:
		c.stats.Merge++
		return setops.SubtractInto(dst, src, nv)
	}
}

// subtractNeighborsInto computes a − N(anc) into dst (the postponed
// anti-subtraction of §2.1, candidate side first).
func (c *Counter) subtractNeighborsInto(dst, a []uint32, anc uint32) []uint32 {
	if row := c.hub.Row(anc); row != nil {
		c.stats.Bits++
		return setops.SubtractBitsInto(dst, a, row)
	}
	ancN := c.g.Neighbors(anc)
	if len(ancN) >= setops.GallopSkewThreshold*len(a) {
		c.stats.Gallop++
	} else {
		c.stats.Merge++
	}
	return setops.SubtractGallopingInto(dst, a, ancN)
}

// subtractNeighborsInPlace compacts a to a − N(anc) in place.
func (c *Counter) subtractNeighborsInPlace(a []uint32, anc uint32) []uint32 {
	if row := c.hub.Row(anc); row != nil {
		c.stats.Bits++
		return setops.SubtractBitsInPlace(a, row)
	}
	ancN := c.g.Neighbors(anc)
	if len(ancN) >= setops.GallopSkewThreshold*len(a) {
		c.stats.Gallop++
	} else {
		c.stats.Merge++
	}
	return setops.SubtractInPlace(a, ancN)
}

// skewed reports whether either input dwarfs the other enough for the
// galloping kernels to engage.
func skewed(a, b []uint32) bool {
	return len(b) >= setops.GallopSkewThreshold*len(a) ||
		len(a) >= setops.GallopSkewThreshold*len(b)
}

// leafCountUpdate counts op(src, N(v)) restricted to the final level's
// symmetry-breaking window, excluding already-used vertices, without
// materializing the result.
func (c *Counter) leafCountUpdate(st *step, f *frame, nv []uint32, v uint32) uint64 {
	src := f.sets[st.src]
	a, b := c.window(c.k-1, src)
	win := src[a:b]
	row := c.hub.Row(v)
	used := c.verts[:c.k-1]
	var cnt int
	if st.op == plan.OpIntersect {
		switch {
		case row != nil:
			c.stats.CountBits++
			cnt = setops.IntersectCountBits(win, row)
		case skewed(win, nv):
			c.stats.CountGallop++
			cnt = setops.IntersectCountGalloping(win, nv)
		default:
			c.stats.CountMerge++
			cnt = setops.IntersectCount(win, nv)
		}
		for _, u := range used {
			if setops.Contains(win, u) && c.leafMember(nv, row, u) {
				cnt--
			}
		}
	} else {
		switch {
		case row != nil:
			c.stats.CountBits++
			cnt = len(win) - setops.IntersectCountBits(win, row)
		case skewed(win, nv):
			c.stats.CountGallop++
			cnt = len(win) - setops.IntersectCountGalloping(win, nv)
		default:
			c.stats.CountMerge++
			cnt = len(win) - setops.IntersectCount(win, nv)
		}
		for _, u := range used {
			if setops.Contains(win, u) && !c.leafMember(nv, row, u) {
				cnt--
			}
		}
	}
	return uint64(cnt)
}

// leafMember reports u ∈ N(v) through the hub row when available.
func (c *Counter) leafMember(nv []uint32, row []uint64, u uint32) bool {
	if row != nil {
		return setops.BitsContain(row, u)
	}
	return setops.Contains(nv, u)
}

// leafCountSet counts a materialized final-level set within its window,
// excluding used vertices (the generic leaf path).
func (c *Counter) leafCountSet(set []uint32) uint64 {
	a, b := c.window(c.k-1, set)
	cnt := b - a
	for _, u := range c.verts[:c.k-1] {
		if setops.Contains(set[a:b], u) {
			cnt--
		}
	}
	return uint64(cnt)
}

// window returns the index range of set surviving the symmetry-breaking
// restrictions of the given level, mirroring Engine.window.
func (c *Counter) window(level int, set []uint32) (a, b int) {
	var lo, hi uint32
	var hasLo, hasHi bool
	for _, r := range c.pl.Levels[level].Restrictions {
		bound := c.verts[r.Earlier]
		if r.Greater {
			if !hasLo || bound > lo {
				lo, hasLo = bound, true
			}
		} else {
			if !hasHi || bound < hi {
				hi, hasHi = bound, true
			}
		}
	}
	a, b = 0, len(set)
	if hasLo {
		a = setops.UpperBound(set, lo)
	}
	if hasHi {
		b = setops.LowerBound(set, hi)
	}
	if b < a {
		b = a
	}
	return a, b
}
