package mine

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// BenchmarkCountTriangles measures the software reference miner on a
// power-law clustered graph.
func BenchmarkCountTriangles(b *testing.B) {
	g := gen.PowerLawCluster(5000, 6, 0.5, 1)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	b.ReportAllocs()
	var count uint64
	for i := 0; i < b.N; i++ {
		count = Count(g, pl)
	}
	b.ReportMetric(float64(count), "triangles")
}

// BenchmarkCountTailedTriangles stresses the subtraction-heavy plan.
func BenchmarkCountTailedTriangles(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pl := plan.MustCompile(pattern.TailedTriangle(), plan.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(g, pl)
	}
}

// BenchmarkCountParallel measures the multi-worker miner.
func BenchmarkCountParallel(b *testing.B) {
	g := gen.PowerLawCluster(5000, 6, 0.5, 1)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountParallel(g, pl, 0)
	}
}
