package mine

import (
	"fingers/internal/graph"
	"fingers/internal/pattern"
)

// BruteForceLabeled counts the injective mappings f from pattern vertices
// to graph vertices that preserve adjacency — and, for vertex-induced
// mining, non-adjacency too. Every automorphic image counts separately
// (the "labeled" count), so it equals the plan-based count compiled with
// NoSymmetryBreaking, and AutSize times the symmetry-broken count.
//
// It is exponential and exists purely as a test oracle for small graphs.
func BruteForceLabeled(g *graph.Graph, p pattern.Pattern, vertexInduced bool) uint64 {
	k := p.Size()
	n := g.NumVertices()
	mapped := make([]uint32, k)
	used := make(map[uint32]bool, k)
	var count uint64
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			count++
			return
		}
		for v := 0; v < n; v++ {
			vv := uint32(v)
			if used[vv] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				adj := g.HasEdge(mapped[j], vv)
				if p.HasEdge(j, i) && !adj {
					ok = false
					break
				}
				if vertexInduced && !p.HasEdge(j, i) && adj {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapped[i] = vv
			used[vv] = true
			rec(i + 1)
			delete(used, vv)
		}
	}
	rec(0)
	return count
}

// BruteForceUnique counts embeddings up to pattern automorphism (each
// subgraph occurrence counted once), matching the symmetry-broken plan
// count.
func BruteForceUnique(g *graph.Graph, p pattern.Pattern, vertexInduced bool) uint64 {
	labeled := BruteForceLabeled(g, p, vertexInduced)
	aut := uint64(len(p.Automorphisms()))
	return labeled / aut
}
