package mine

import (
	"testing"

	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

var oracleGraphs = []struct {
	name string
	g    *graph.Graph
}{
	{"K6", gen.Complete(6)},
	{"ring8", gen.Ring(8)},
	{"star9", gen.Star(9)},
	{"er16", gen.ErdosRenyi(16, 40, 5)},
	{"er20-dense", gen.ErdosRenyi(20, 120, 9)},
	{"plc18", gen.PowerLawCluster(18, 3, 0.6, 2)},
}

var oraclePatterns = []string{"tc", "4cl", "5cl", "tt", "cyc", "dia", "wedge", "house"}

// TestCountMatchesOracle is the central correctness test: for every
// benchmark pattern and several small graphs, the plan-based count must
// equal the brute-force subgraph-isomorphism count, both with symmetry
// breaking (unique embeddings) and without (labeled embeddings), for both
// vertex- and edge-induced semantics.
func TestCountMatchesOracle(t *testing.T) {
	for _, tc := range oracleGraphs {
		for _, name := range oraclePatterns {
			p, err := pattern.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, edgeInduced := range []bool{false, true} {
				pl, err := plan.Compile(p, plan.Options{EdgeInduced: edgeInduced})
				if err != nil {
					t.Fatal(err)
				}
				got := Count(tc.g, pl)
				want := BruteForceUnique(tc.g, p, !edgeInduced)
				if got != want {
					t.Errorf("%s/%s edgeInduced=%v: count = %d, want %d",
						tc.name, name, edgeInduced, got, want)
				}
				plNoSB, err := plan.Compile(p, plan.Options{EdgeInduced: edgeInduced, NoSymmetryBreaking: true})
				if err != nil {
					t.Fatal(err)
				}
				gotLabeled := Count(tc.g, plNoSB)
				wantLabeled := BruteForceLabeled(tc.g, p, !edgeInduced)
				if gotLabeled != wantLabeled {
					t.Errorf("%s/%s edgeInduced=%v labeled: count = %d, want %d",
						tc.name, name, edgeInduced, gotLabeled, wantLabeled)
				}
				if aut := uint64(pl.AutSize); gotLabeled != got*aut {
					t.Errorf("%s/%s: labeled %d != unique %d × |Aut| %d",
						tc.name, name, gotLabeled, got, aut)
				}
			}
		}
	}
}

func TestKnownClosedFormCounts(t *testing.T) {
	// Triangles in K_n = C(n,3); 4-cliques = C(n,4); wedges (induced) = 0.
	k7 := gen.Complete(7)
	cases := []struct {
		pat  string
		want uint64
	}{
		{"tc", 35},  // C(7,3)
		{"4cl", 35}, // C(7,4)
		{"5cl", 21}, // C(7,5)
		{"wedge", 0},
		{"cyc", 0}, // no induced 4-cycles in a clique
		{"dia", 0}, // no induced diamonds in a clique
		{"tt", 0},
	}
	for _, c := range cases {
		p, _ := pattern.ByName(c.pat)
		pl := plan.MustCompile(p, plan.Options{})
		if got := Count(k7, pl); got != c.want {
			t.Errorf("K7/%s = %d, want %d", c.pat, got, c.want)
		}
	}
	// Edge-induced diamonds in K4: each 4-clique contains 6.
	p, _ := pattern.ByName("dia")
	pl := plan.MustCompile(p, plan.Options{EdgeInduced: true})
	if got := Count(gen.Complete(4), pl); got != 6 {
		t.Errorf("edge-induced diamonds in K4 = %d, want 6", got)
	}
	// Wedges in a star with h leaves = C(h,2).
	wp, _ := pattern.ByName("wedge")
	wpl := plan.MustCompile(wp, plan.Options{})
	if got := Count(gen.Star(9), wpl); got != 28 {
		t.Errorf("wedges in star9 = %d, want 28", got)
	}
	// 4-cycles in C8: exactly one 4-cycle? No — C8 has no induced C4. The
	// ring of length 4 has exactly one.
	cp, _ := pattern.ByName("cyc")
	cpl := plan.MustCompile(cp, plan.Options{})
	if got := Count(gen.Ring(4), cpl); got != 1 {
		t.Errorf("4-cycles in ring4 = %d, want 1", got)
	}
	if got := Count(gen.Ring(8), cpl); got != 0 {
		t.Errorf("induced 4-cycles in ring8 = %d, want 0", got)
	}
}

func TestCountParallelMatchesSerial(t *testing.T) {
	g := gen.PowerLawCluster(300, 4, 0.5, 3)
	for _, name := range []string{"tc", "tt", "cyc"} {
		p, _ := pattern.ByName(name)
		pl := plan.MustCompile(p, plan.Options{})
		serial := Count(g, pl)
		for _, workers := range []int{1, 2, 4, 0} {
			if got := CountParallel(g, pl, workers); got != serial {
				t.Errorf("%s workers=%d: %d != %d", name, workers, got, serial)
			}
		}
	}
}

func TestListEnumeratesValidEmbeddings(t *testing.T) {
	g := gen.Complete(5)
	p := pattern.Triangle()
	pl := plan.MustCompile(p, plan.Options{})
	seen := map[[3]uint32]bool{}
	List(g, pl, func(emb []uint32) bool {
		if len(emb) != 3 {
			t.Fatalf("embedding size %d", len(emb))
		}
		var key [3]uint32
		copy(key[:], emb)
		if seen[key] {
			t.Errorf("duplicate embedding %v", emb)
		}
		seen[key] = true
		// Every pair must be adjacent, vertices distinct.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if emb[i] == emb[j] || !g.HasEdge(emb[i], emb[j]) {
					t.Errorf("invalid embedding %v", emb)
				}
			}
		}
		return true
	})
	if len(seen) != 10 { // C(5,3)
		t.Errorf("listed %d triangles, want 10", len(seen))
	}
}

func TestListEarlyStop(t *testing.T) {
	g := gen.Complete(6)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	calls := 0
	List(g, pl, func([]uint32) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("visit called %d times after early stop, want 3", calls)
	}
}

func TestCountMulti3Motif(t *testing.T) {
	mp, err := plan.Motif(3, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// In K4: 4 triangles, 0 induced wedges. In P3: 1 wedge, 0 triangles.
	counts := CountMulti(gen.Complete(4), mp)
	var tri, wedge uint64
	for i, pl := range mp.Plans {
		if pl.Pattern.NumEdges() == 3 {
			tri = counts[i]
		} else {
			wedge = counts[i]
		}
	}
	if tri != 4 || wedge != 0 {
		t.Errorf("K4 3-motif = tri %d wedge %d, want 4/0", tri, wedge)
	}
	counts = CountMulti(gen.Path(3), mp)
	for i, pl := range mp.Plans {
		if pl.Pattern.NumEdges() == 3 {
			tri = counts[i]
		} else {
			wedge = counts[i]
		}
	}
	if tri != 0 || wedge != 1 {
		t.Errorf("P3 3-motif = tri %d wedge %d, want 0/1", tri, wedge)
	}
}

func TestMotifSumEqualsSubsetCount(t *testing.T) {
	// Every connected induced 3-subgraph is either a triangle or a wedge,
	// so the motif counts must sum to the number of connected 3-subsets.
	g := gen.ErdosRenyi(14, 30, 8)
	mp, _ := plan.Motif(3, plan.Options{})
	counts := CountMulti(g, mp)
	var total uint64
	for _, c := range counts {
		total += c
	}
	var want uint64
	n := g.NumVertices()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				ab := g.HasEdge(uint32(a), uint32(b))
				ac := g.HasEdge(uint32(a), uint32(c))
				bc := g.HasEdge(uint32(b), uint32(c))
				edges := 0
				for _, e := range []bool{ab, ac, bc} {
					if e {
						edges++
					}
				}
				if edges >= 2 {
					want++
				}
			}
		}
	}
	if total != want {
		t.Errorf("3-motif total = %d, want %d", total, want)
	}
}

// TestTaskInfoSharing checks the common-subexpression sharing the paper
// describes in §3.3: in a 4-clique all future candidate sets are updated
// by the same intersection and must be computed once.
func TestTaskInfoSharing(t *testing.T) {
	g := gen.Complete(6)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{})
	e := NewEngine(g, pl)
	root, info0 := e.Start(0)
	if len(info0.Ops) != 0 {
		t.Errorf("level 0 of a clique should be pure inits, got %d ops", len(info0.Ops))
	}
	cands := e.Candidates(root)
	if len(cands) == 0 {
		t.Fatal("no candidates at level 1")
	}
	_, info1 := e.Extend(root, cands[0])
	if len(info1.Ops) != 1 {
		t.Fatalf("level 1 of 4-clique should share one intersect, got %d ops", len(info1.Ops))
	}
	if got := len(info1.Ops[0].Targets); got != 2 {
		t.Errorf("shared op covers %d targets, want 2", got)
	}
}

// TestTaskInfoTailedTriangle checks that distinct updates stay distinct:
// at level 1 of the tailed triangle, S2 needs an intersect and S3 a
// subtract.
func TestTaskInfoTailedTriangle(t *testing.T) {
	g := gen.Complete(6)
	pl := plan.MustCompile(pattern.TailedTriangle(), plan.Options{})
	e := NewEngine(g, pl)
	root, _ := e.Start(0)
	_, info := e.Extend(root, e.Candidates(root)[0])
	if len(info.Ops) != 2 {
		t.Fatalf("level 1 ops = %d, want 2", len(info.Ops))
	}
	kinds := map[string]bool{}
	for _, op := range info.Ops {
		kinds[op.Kind.String()] = true
		if op.LongVertex != info.NewVertex {
			t.Errorf("long input should be the new vertex's neighbor list")
		}
	}
	if !kinds["intersect"] || !kinds["subtract"] {
		t.Errorf("ops = %v", kinds)
	}
}

func TestEngineFetchVerticesIncludePending(t *testing.T) {
	// A pattern whose plan postpones: 4-cycle ordered so one level has a
	// pending init. Find any task with more than one fetch across a small
	// clique-ish graph; the postponed anti-subtraction must refetch the
	// ancestor's list.
	g := gen.ErdosRenyi(20, 80, 4)
	pl := plan.MustCompile(pattern.Cycle(4), plan.Options{})
	hasPending := false
	for _, lvl := range pl.Levels {
		for _, a := range lvl.Actions {
			if len(a.Pending) > 0 {
				hasPending = true
			}
		}
	}
	if !hasPending {
		t.Skip("compiler chose an order without postponement")
	}
	e := NewEngine(g, pl)
	found := false
	for v := 0; v < g.NumVertices() && !found; v++ {
		root, _ := e.Start(uint32(v))
		for _, c := range e.Candidates(root) {
			_, info := e.Extend(root, c)
			if len(info.FetchVertices) > 1 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no task fetched a postponed ancestor's neighbor list")
	}
}

func TestLeafCountPanicsOffLevel(t *testing.T) {
	g := gen.Complete(5)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{})
	e := NewEngine(g, pl)
	root, _ := e.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("LeafCount on root of a 4-level plan did not panic")
		}
	}()
	e.LeafCount(root)
}

func TestEmptyGraphCounts(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	if got := Count(g, pl); got != 0 {
		t.Errorf("count on edgeless graph = %d", got)
	}
}
