package mine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"fingers/internal/graph"
	"fingers/internal/plan"
	"fingers/internal/simerr"
)

// Count mines the plan on g and returns the number of embeddings (with
// symmetry breaking applied, each automorphism class counts once). It
// runs the adaptive Counter; the result is bit-identical to CountOracle.
func Count(g *graph.Graph, pl *plan.Plan) uint64 {
	c := NewCounter(g, pl)
	var total uint64
	for v := 0; v < g.NumVertices(); v++ {
		total += c.Root(uint32(v))
	}
	return total
}

// CountOracle mines the plan with the reference Engine — the slow,
// allocation-heavy tree walk the accelerator timing models replay. It
// exists so tests can cross-check the adaptive Counter's kernels against
// an independent implementation.
func CountOracle(g *graph.Graph, pl *plan.Plan) uint64 {
	e := NewEngine(g, pl)
	var total uint64
	for v := 0; v < g.NumVertices(); v++ {
		total += e.CountFromRoot(uint32(v))
	}
	return total
}

// CountFromRoot mines the single search tree rooted at v0 — the unit of
// coarse-grained parallelism the paper distributes across PEs (§3.1).
func (e *Engine) CountFromRoot(v0 uint32) uint64 {
	root, _ := e.Start(v0)
	return e.countSubtree(root)
}

func (e *Engine) countSubtree(n *Node) uint64 {
	if n.Level == e.Plan.K()-2 {
		return e.LeafCount(n)
	}
	var total uint64
	for _, v := range e.Candidates(n) {
		child, _ := e.Extend(n, v)
		total += e.countSubtree(child)
	}
	return total
}

// chunksPerWorker sizes the dynamic chunks: enough chunks per worker
// that a straggler holding one chunk cannot serialize the tail, few
// enough that the shared cursor stays cold.
const chunksPerWorker = 32

// maxRootChunk caps the chunk size so even enormous graphs keep the
// steal granularity fine.
const maxRootChunk = 256

// CountParallel mines the plan with work-stealing dynamic chunking over
// root vertices: workers pull fixed-size chunks of roots off a shared
// atomic cursor, each mining into its own Counter arena (zero
// steady-state allocation), with roots served in descending-degree order
// so the heavy hub trees of power-law graphs are in flight first rather
// than left to straggle at the tail. workers ≤ 0 uses GOMAXPROCS. The
// result is bit-identical to Count.
func CountParallel(g *graph.Graph, pl *plan.Plan, workers int) uint64 {
	n, err := CountCtx(context.Background(), g, pl, workers)
	if err != nil {
		// Unreachable for a background context unless a mining kernel
		// panicked; preserve the crash contract of the ctx-less entry.
		panic(err)
	}
	return n
}

// CountCtx is CountParallel with cancellation and panic recovery: the
// scheduler checks ctx once per chunk and drains early when it fires,
// returning the partial count alongside a *simerr.SimError wrapping
// ctx.Err(). A panic inside a mining kernel likewise returns as a
// *SimError attributed to the worker and root, aborting the remaining
// workers at their next chunk boundary. A nil error means the count is
// complete.
func CountCtx(ctx context.Context, g *graph.Graph, pl *plan.Plan, workers int) (uint64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := int64(g.NumVertices())
	if n == 0 {
		if cerr := ctx.Err(); cerr != nil {
			return 0, simerr.Cancelled("miner", 0, cerr)
		}
		return 0, nil
	}
	if int64(workers) > n {
		workers = int(n)
	}
	if workers == 1 {
		// Serial fast path: no scheduler, but still cancellable and
		// panic-safe. total accumulates outside the closure so the roots
		// mined before a failure are not lost.
		c := NewCounter(g, pl)
		var total uint64
		err := func() (err error) {
			cur := int64(simerr.NoRoot)
			defer func() {
				if r := recover(); r != nil {
					err = simerr.FromPanic("miner", 0, 0, cur, r)
				}
			}()
			for v := int64(0); v < n; v++ {
				if v%maxRootChunk == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return simerr.Cancelled("miner", 0, cerr)
					}
				}
				cur = v
				total += c.Root(uint32(v))
			}
			return nil
		}()
		return total, err
	}

	chunk := n / int64(workers*chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > maxRootChunk {
		chunk = maxRootChunk
	}
	// Degree-descending service order: the most expensive search trees
	// are claimed first, so the makespan tail is a cheap tree, not a hub.
	order := g.DegreeOrder()

	// A worker panic cancels this derived context so its peers stop at
	// their next chunk boundary instead of mining to exhaustion.
	wctx, abort := context.WithCancel(ctx)
	defer abort()

	var cursor atomic.Int64
	var total atomic.Uint64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := NewCounter(g, pl)
			var local uint64
			cur := int64(simerr.NoRoot)
			defer func() {
				// Bank the roots mined so far even when unwinding from a
				// panic: partial counts are part of the partial report.
				total.Add(local)
				if r := recover(); r != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = simerr.FromPanic("miner", id, 0, cur, r)
					}
					errMu.Unlock()
					abort()
				}
			}()
			for {
				base := cursor.Add(chunk) - chunk
				if base >= n || wctx.Err() != nil {
					break
				}
				end := base + chunk
				if end > n {
					end = n
				}
				for _, v := range order[base:end] {
					cur = int64(v)
					local += c.Root(v)
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return total.Load(), firstErr
	}
	if cerr := ctx.Err(); cerr != nil {
		return total.Load(), simerr.Cancelled("miner", 0, cerr)
	}
	return total.Load(), nil
}

// List enumerates every embedding, invoking visit with the mapped
// vertices indexed by plan level. The slice is reused across calls; visit
// returning false stops the enumeration.
func List(g *graph.Graph, pl *plan.Plan, visit func(emb []uint32) bool) {
	e := NewEngine(g, pl)
	emb := make([]uint32, pl.K())
	var rec func(n *Node) bool
	rec = func(n *Node) bool {
		if n.Level == pl.K()-2 {
			copy(emb, n.Verts)
			for _, v := range e.LeafSet(n) {
				emb[pl.K()-1] = v
				if !visit(emb) {
					return false
				}
			}
			return true
		}
		for _, v := range e.Candidates(n) {
			child, _ := e.Extend(n, v)
			if !rec(child) {
				return false
			}
		}
		return true
	}
	for v := 0; v < g.NumVertices(); v++ {
		root, _ := e.Start(uint32(v))
		if !rec(root) {
			return
		}
	}
}

// CountMulti mines every plan of a multi-pattern plan and returns the
// per-pattern counts, in plan order (e.g. 3-motif counting, §5).
func CountMulti(g *graph.Graph, mp *plan.MultiPlan) []uint64 {
	counts, err := CountMultiCtx(context.Background(), g, mp, 1)
	if err != nil {
		// Unreachable for a background context unless a mining kernel
		// panicked; preserve the crash contract of the ctx-less entry.
		panic(err)
	}
	return counts
}

// CountMultiCtx is CountMulti with cancellation and panic recovery,
// parallelized over root vertices within each pattern (workers ≤ 0 uses
// GOMAXPROCS, 1 reproduces CountMulti's serial order). On a failure it
// returns the counts completed so far — later patterns hold their
// partial counts — alongside the *simerr.SimError from CountCtx.
func CountMultiCtx(ctx context.Context, g *graph.Graph, mp *plan.MultiPlan, workers int) ([]uint64, error) {
	counts := make([]uint64, len(mp.Plans))
	for i, pl := range mp.Plans {
		c, err := CountCtx(ctx, g, pl, workers)
		counts[i] = c
		if err != nil {
			return counts, err
		}
	}
	return counts, nil
}
