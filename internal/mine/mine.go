package mine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fingers/internal/graph"
	"fingers/internal/plan"
)

// Count mines the plan on g and returns the number of embeddings (with
// symmetry breaking applied, each automorphism class counts once).
func Count(g *graph.Graph, pl *plan.Plan) uint64 {
	e := NewEngine(g, pl)
	var total uint64
	for v := 0; v < g.NumVertices(); v++ {
		total += e.CountFromRoot(uint32(v))
	}
	return total
}

// CountFromRoot mines the single search tree rooted at v0 — the unit of
// coarse-grained parallelism the paper distributes across PEs (§3.1).
func (e *Engine) CountFromRoot(v0 uint32) uint64 {
	root, _ := e.Start(v0)
	return e.countSubtree(root)
}

func (e *Engine) countSubtree(n *Node) uint64 {
	if n.Level == e.Plan.K()-2 {
		return e.LeafCount(n)
	}
	var total uint64
	for _, v := range e.Candidates(n) {
		child, _ := e.Extend(n, v)
		total += e.countSubtree(child)
	}
	return total
}

// CountParallel mines the plan using workers goroutines over root
// vertices; workers ≤ 0 uses GOMAXPROCS. The result equals Count.
func CountParallel(g *graph.Graph, pl *plan.Plan, workers int) uint64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var next int64 = -1
	var total uint64
	var wg sync.WaitGroup
	n := int64(g.NumVertices())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(g, pl)
			var local uint64
			for {
				v := atomic.AddInt64(&next, 1)
				if v >= n {
					break
				}
				local += e.CountFromRoot(uint32(v))
			}
			atomic.AddUint64(&total, local)
		}()
	}
	wg.Wait()
	return total
}

// List enumerates every embedding, invoking visit with the mapped
// vertices indexed by plan level. The slice is reused across calls; visit
// returning false stops the enumeration.
func List(g *graph.Graph, pl *plan.Plan, visit func(emb []uint32) bool) {
	e := NewEngine(g, pl)
	emb := make([]uint32, pl.K())
	var rec func(n *Node) bool
	rec = func(n *Node) bool {
		if n.Level == pl.K()-2 {
			copy(emb, n.Verts)
			for _, v := range e.LeafSet(n) {
				emb[pl.K()-1] = v
				if !visit(emb) {
					return false
				}
			}
			return true
		}
		for _, v := range e.Candidates(n) {
			child, _ := e.Extend(n, v)
			if !rec(child) {
				return false
			}
		}
		return true
	}
	for v := 0; v < g.NumVertices(); v++ {
		root, _ := e.Start(uint32(v))
		if !rec(root) {
			return
		}
	}
}

// CountMulti mines every plan of a multi-pattern plan and returns the
// per-pattern counts, in plan order (e.g. 3-motif counting, §5).
func CountMulti(g *graph.Graph, mp *plan.MultiPlan) []uint64 {
	counts := make([]uint64, len(mp.Plans))
	for i, pl := range mp.Plans {
		counts[i] = Count(g, pl)
	}
	return counts
}
