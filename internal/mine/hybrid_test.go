package mine

import (
	"testing"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

var storagePolicies = []graph.StoragePolicy{
	graph.StorageAdaptive, graph.StorageArray, graph.StorageBitmap,
}

// TestStoragePoliciesMatchOracleOnDatasets is the hybrid-storage
// acceptance oracle: per-root subtree counts must be bit-identical to
// the reference Engine under every storage policy — forced-array,
// forced-bitmap, and adaptive — across the dataset × pattern grid.
func TestStoragePoliciesMatchOracleOnDatasets(t *testing.T) {
	dsets := datasets.All()
	if testing.Short() {
		dsets = datasets.Small()
	}
	for _, d := range dsets {
		g := d.Graph()
		roots := sampleRoots(g, 12, 4)
		for _, name := range pattern.Names() {
			p, err := pattern.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := plan.Compile(p, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(g, pl)
			want := make([]uint64, len(roots))
			for i, v := range roots {
				want[i] = e.CountFromRoot(v)
			}
			for _, pol := range storagePolicies {
				c := NewCounterPolicy(g, pl, pol)
				for i, v := range roots {
					if got := c.Root(v); got != want[i] {
						t.Fatalf("%s/%s policy %v root %d: got %d, oracle %d",
							d.Name, name, pol, v, got, want[i])
					}
				}
			}
		}
	}
}

// TestStoragePoliciesFullCounts compares whole-graph counts on the
// cache-resident datasets under every policy, covering the root loop.
func TestStoragePoliciesFullCounts(t *testing.T) {
	for _, d := range datasets.Small() {
		g := d.Graph()
		for _, name := range []string{"tc", "tt", "cyc", "dia"} {
			pl := plan.MustCompile(mustPattern(t, name), plan.Options{})
			want := CountOracle(g, pl)
			for _, pol := range storagePolicies {
				c := NewCounterPolicy(g, pl, pol)
				var got uint64
				for v := 0; v < g.NumVertices(); v++ {
					got += c.Root(uint32(v))
				}
				if got != want {
					t.Errorf("%s/%s policy %v: got %d, oracle %d", d.Name, name, pol, got, want)
				}
			}
		}
	}
}

// TestForcedBitmapKernels forces the compressed-bitmap tier on graphs
// small enough to brute-force: every nonempty neighbor list becomes a
// bitmap, so dispatch must route through the bitmap kernel families and
// still match the oracle for every named pattern and both semantics.
func TestForcedBitmapKernels(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Complete(8),
		gen.Star(12),
		gen.PowerLawCluster(60, 5, 0.6, 7),
		gen.ErdosRenyi(40, 220, 3),
	}
	for gi, g := range graphs {
		adj := graph.NewHybridAdj(g, graph.StorageBitmap, 0)
		for _, name := range pattern.Names() {
			p, err := pattern.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, edgeInduced := range []bool{false, true} {
				pl, err := plan.Compile(p, plan.Options{EdgeInduced: edgeInduced})
				if err != nil {
					t.Fatal(err)
				}
				c := NewCounter(g, pl)
				c.SetHybrid(adj)
				var got uint64
				for v := 0; v < g.NumVertices(); v++ {
					got += c.Root(uint32(v))
				}
				if want := CountOracle(g, pl); got != want {
					t.Errorf("graph %d %s edgeInduced=%v: forced-bitmap %d, oracle %d",
						gi, name, edgeInduced, got, want)
				}
				st := c.Stats()
				bm := st.BmProbe + st.CountBmProbe + st.CountBmWord
				if st.Total() > 0 && bm == 0 {
					t.Errorf("graph %d %s edgeInduced=%v: ops ran but bitmap kernels never dispatched",
						gi, name, edgeInduced)
				}
			}
		}
	}
}

// TestLeafPopcountPathEngages checks the tentpole's headline path: on a
// dense graph the triangle leaf count must run word-parallel on stored
// rows (CountBmWord), not on decoded arrays.
func TestLeafPopcountPathEngages(t *testing.T) {
	g := gen.Complete(64)
	pl := plan.MustCompile(pattern.Triangle(), plan.Options{})
	c := NewCounterPolicy(g, pl, graph.StorageBitmap)
	var got uint64
	for v := 0; v < g.NumVertices(); v++ {
		got += c.Root(uint32(v))
	}
	if want := CountOracle(g, pl); got != want {
		t.Fatalf("forced-bitmap count %d, oracle %d", got, want)
	}
	if st := c.Stats(); st.CountBmWord == 0 {
		t.Fatalf("leaf popcount path never engaged: %+v", st)
	}
}

// TestHybridSteadyStateAllocs extends the zero-allocation claim to the
// bitmap tier: once lazy materialization has touched every row, mining
// allocates nothing under forced-bitmap storage either.
func TestHybridSteadyStateAllocs(t *testing.T) {
	g := gen.PowerLawCluster(2000, 8, 0.5, 11)
	pl := plan.MustCompile(mustPattern(t, "tc"), plan.Options{})
	c := NewCounterPolicy(g, pl, graph.StorageBitmap)
	for v := 0; v < g.NumVertices(); v++ {
		c.Root(uint32(v))
	}
	avg := testing.AllocsPerRun(10, func() {
		for v := 0; v < 200; v++ {
			c.Root(uint32(v))
		}
	})
	if avg != 0 {
		t.Errorf("%v allocs per 200 steady-state roots under forced bitmap, want 0", avg)
	}
}

func mustPattern(t *testing.T, name string) pattern.Pattern {
	t.Helper()
	p, err := pattern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
