package mine

import (
	"fmt"
	"testing"

	"fingers/internal/datasets"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// BenchmarkSoftMine is the hot-path suite EXPERIMENTS.md records: the
// software miner on the two densest dataset analogues (Lj, Or) with the
// patterns whose cost is dominated by set operations (tc) and by deep
// candidate reuse (4cl), serial and parallel.
func BenchmarkSoftMine(b *testing.B) {
	for _, gn := range []string{"Lj", "Or"} {
		d, err := datasets.ByName(gn)
		if err != nil {
			b.Fatal(err)
		}
		g := d.Graph()
		for _, pn := range []string{"tc", "4cl"} {
			p, err := pattern.ByName(pn)
			if err != nil {
				b.Fatal(err)
			}
			pl := plan.MustCompile(p, plan.Options{})
			b.Run(fmt.Sprintf("%s/%s/serial", gn, pn), func(b *testing.B) {
				b.ReportAllocs()
				var n uint64
				for i := 0; i < b.N; i++ {
					n = Count(g, pl)
				}
				b.ReportMetric(float64(n), "embeddings")
			})
			b.Run(fmt.Sprintf("%s/%s/parallel", gn, pn), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					CountParallel(g, pl, 0)
				}
			})
		}
	}
}
