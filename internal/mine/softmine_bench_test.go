package mine

import (
	"fmt"
	"testing"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

// benchGraphs are the soft-mine workloads: the two densest dataset
// analogues (Lj, Or) with the patterns whose cost is dominated by set
// operations (tc) and by deep candidate reuse (4cl), plus a genuinely
// dense synthetic ("dense": 1024 vertices at ~38% edge density, tc
// only — every row lands in a stored tier, the hybrid storage layer's
// home turf).
func benchGraphs(b *testing.B) []struct {
	name     string
	g        *graph.Graph
	patterns []string
} {
	b.Helper()
	var out []struct {
		name     string
		g        *graph.Graph
		patterns []string
	}
	for _, gn := range []string{"Lj", "Or"} {
		d, err := datasets.ByName(gn)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, struct {
			name     string
			g        *graph.Graph
			patterns []string
		}{gn, d.Graph(), []string{"tc", "4cl"}})
	}
	out = append(out, struct {
		name     string
		g        *graph.Graph
		patterns []string
	}{"dense", gen.ErdosRenyi(1024, 200000, 7), []string{"tc"}})
	return out
}

// BenchmarkSoftMine is the hot-path suite EXPERIMENTS.md records.
func BenchmarkSoftMine(b *testing.B) {
	for _, w := range benchGraphs(b) {
		gn, g := w.name, w.g
		for _, pn := range w.patterns {
			p, err := pattern.ByName(pn)
			if err != nil {
				b.Fatal(err)
			}
			pl := plan.MustCompile(p, plan.Options{})
			b.Run(fmt.Sprintf("%s/%s/serial", gn, pn), func(b *testing.B) {
				b.ReportAllocs()
				var n uint64
				for i := 0; i < b.N; i++ {
					n = Count(g, pl)
				}
				b.ReportMetric(float64(n), "embeddings")
			})
			b.Run(fmt.Sprintf("%s/%s/parallel", gn, pn), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					CountParallel(g, pl, 0)
				}
			})
			// Storage-policy cells: forced-array is the no-hybrid
			// reference, adaptive is the serving default — the pair is
			// the tentpole's speedup evidence on the dense graphs. The
			// counter is built and warmed outside the timer so the loop
			// measures steady-state mining, not lazy materialization.
			for _, pol := range []graph.StoragePolicy{graph.StorageArray, graph.StorageAdaptive} {
				b.Run(fmt.Sprintf("%s/%s/storage=%v", gn, pn, pol), func(b *testing.B) {
					c := NewCounterPolicy(g, pl, pol)
					for v := 0; v < g.NumVertices(); v++ {
						c.Root(uint32(v))
					}
					b.ReportAllocs()
					b.ResetTimer()
					var n uint64
					for i := 0; i < b.N; i++ {
						n = 0
						for v := 0; v < g.NumVertices(); v++ {
							n += c.Root(uint32(v))
						}
					}
					b.ReportMetric(float64(n), "embeddings")
				})
			}
		}
	}
}
