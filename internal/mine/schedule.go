package mine

import (
	"fmt"

	"fingers/internal/plan"
)

// step is one grouped set operation of a level's schedule: the same
// common-subexpression sharing Engine.extend performs dynamically
// (identical updates compute once, paper §3.3), resolved ahead of time.
type step struct {
	// op is plan.OpInit, plan.OpIntersect or plan.OpSubtract.
	op plan.OpKind
	// pending lists the postponed disconnected-ancestor levels whose
	// neighbor lists are anti-subtracted after an init (only for OpInit).
	pending []int
	// src is the slot whose parent-level set the update reads (only for
	// OpIntersect/OpSubtract; it equals targets[0]).
	src int
	// targets are the levels whose candidate slots receive the result.
	targets []int
}

// buildSchedule resolves the per-level operation groups statically. The
// grouping Engine.extend computes per node depends only on the identity
// structure of the candidate slots — which operation produced each slot's
// set — and that structure evolves identically down every root-to-leaf
// path (levels are always visited 0, 1, 2, …). Simulating the set-ID
// propagation symbolically once therefore yields the exact groups the
// engine would form at every node, letting the hot loop skip the
// per-task grouping work entirely.
func buildSchedule(pl *plan.Plan) [][]step {
	k := pl.K()
	setID := make([]int32, k)
	var nextID int32
	out := make([][]step, k-1)
	for level := 0; level < k-1; level++ {
		type group struct {
			op      plan.OpKind
			pending []int
			srcID   int32
			targets []int
		}
		var groups []group
		findInit := func(pending []int) *group {
			for i := range groups {
				g := &groups[i]
				if g.op != plan.OpInit || len(g.pending) != len(pending) {
					continue
				}
				same := true
				for x := range pending {
					if g.pending[x] != pending[x] {
						same = false
						break
					}
				}
				if same {
					return g
				}
			}
			groups = append(groups, group{op: plan.OpInit, pending: pending})
			return &groups[len(groups)-1]
		}
		findUpdate := func(op plan.OpKind, srcID int32) *group {
			for i := range groups {
				g := &groups[i]
				if g.op == op && g.op != plan.OpInit && g.srcID == srcID {
					return g
				}
			}
			groups = append(groups, group{op: op, srcID: srcID})
			return &groups[len(groups)-1]
		}
		for _, act := range pl.Levels[level].Actions {
			var g *group
			switch act.Op {
			case plan.OpInit:
				g = findInit(act.Pending)
			case plan.OpIntersect, plan.OpSubtract:
				g = findUpdate(act.Op, setID[act.Target])
			default:
				panic(fmt.Sprintf("mine: unexpected op kind %v in schedule", act.Op))
			}
			g.targets = append(g.targets, act.Target)
		}
		seen := make(map[int]bool, k)
		for _, g := range groups {
			nextID++
			st := step{op: g.op, pending: g.pending, targets: g.targets}
			if g.op != plan.OpInit {
				st.src = g.targets[0]
			}
			for _, t := range g.targets {
				// The counter reads update sources from the current frame
				// after copying the parent's slots, which is only the
				// parent's value while each slot is written at most once
				// per level — the invariant the plan compiler maintains.
				if seen[t] {
					panic(fmt.Sprintf("mine: slot %d written twice at level %d", t, level))
				}
				seen[t] = true
				setID[t] = nextID
			}
			out[level] = append(out[level], st)
		}
	}
	return out
}
