package journal

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// FuzzReplayJournal feeds arbitrary segment bytes to the lenient
// replayer alongside the invariants the service layer depends on: no
// panic, every returned record has a positive unique sequence number,
// and an intact valid line embedded in garbage always survives.
func FuzzReplayJournal(f *testing.F) {
	// Seed with the damage shapes the chaos suite cares about: torn
	// tails, duplicates, CRC flips, interleaved garbage.
	valid := func(seq int64, job, event string) []byte {
		body, _ := json.Marshal(Record{Seq: seq, Job: job, Event: event,
			Spec: json.RawMessage(`{"arch":"fingers","graph":"As","pattern":"tc"}`)})
		line, _ := json.Marshal(envelope{CRC: crc32.Checksum(body, castagnoli), R: body})
		return append(line, '\n')
	}
	v1 := valid(1, "job-000001", EventSubmitted)
	v2 := valid(2, "job-000001", EventStarted)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(v1)
	f.Add(append(append([]byte{}, v1...), v2...))
	f.Add(append(append([]byte{}, v1...), v2[:len(v2)/2]...)) // torn tail
	f.Add(append(append([]byte{}, v1...), v1...))             // duplicate seq
	f.Add([]byte(`{"c":12345,"r":{"seq":1,"job":"x","event":"submitted"}}` + "\n"))
	f.Add([]byte(`{"schema":"fingers.run/v1","cycles":5}` + "\n"))
	f.Add(bytes.Replace(append([]byte{}, v1...), []byte("job-000001"), []byte("job-0000ZZ"), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, skips := Replay(bytes.NewReader(data))
		seen := map[int64]bool{}
		for _, r := range recs {
			if r.Seq <= 0 {
				t.Fatalf("replay returned non-positive seq %d", r.Seq)
			}
			if seen[r.Seq] {
				t.Fatalf("replay returned duplicate seq %d", r.Seq)
			}
			seen[r.Seq] = true
		}
		for _, s := range skips {
			if s.Reason == "" {
				t.Fatal("skip without reason")
			}
		}
		// Reduce must tolerate anything Replay returns.
		_ = Reduce(recs)

		// Lenient invariant: append one known-good line after the fuzz
		// payload plus a newline; it must always be recovered (unless
		// its seq collides with a fuzzed record, in which case the
		// duplicate must be reported).
		probe := valid(999999, "job-probe", EventSubmitted)
		combined := append(append(append([]byte{}, data...), '\n'), probe...)
		recs2, skips2 := Replay(bytes.NewReader(combined))
		found := false
		for _, r := range recs2 {
			if r.Job == "job-probe" {
				found = true
			}
		}
		if !found {
			dup := false
			for _, s := range skips2 {
				if s.Reason == "duplicate seq 999999" {
					dup = true
				}
			}
			if !dup {
				t.Fatalf("intact probe line lost: records %+v skips %+v", recs2, skips2)
			}
		}
	})
}
