// Package journal is the crash-safety substrate under the fingersd
// service layer: an append-only, fsync-on-commit write-ahead log of job
// lifecycle transitions. Each record is one JSONL line wrapped in a
// CRC-carrying envelope, so a torn tail from a kill -9 mid-write is
// detected and skipped rather than poisoning replay; segments rotate at
// a size bound so a long-lived daemon never grows one unbounded file;
// and the replayer is lenient in the spirit of the telemetry package's
// ReadRecordsLenient — every intact record survives, every damaged or
// foreign line becomes a reported skip.
//
// The package knows nothing about the service layer's job semantics: a
// Record carries an opaque Spec payload (the service stores the full
// serializable fingers.JobSpec there) plus the small set of typed
// lifecycle fields replay needs to order and deduplicate transitions.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Event is one lifecycle transition kind. The journal itself treats
// events as opaque strings; these constants name the vocabulary the
// service layer writes.
const (
	// EventSubmitted records admission: the record carries the full job
	// spec, so replay can re-enqueue the job without any other state.
	EventSubmitted = "submitted"
	// EventStarted records a worker picking the job up. A job whose last
	// event is started was running when the process died.
	EventStarted = "started"
	// EventRequeued records a retry: the job re-entered the queue after
	// a transient failure, with the attempt counter advanced.
	EventRequeued = "requeued"
	// EventDone, EventCanceled, EventFailed, and EventDeadline are
	// terminal: replay never resurrects these jobs.
	EventDone     = "done"
	EventCanceled = "canceled"
	EventFailed   = "failed"
	EventDeadline = "deadline_exceeded"
	// EventInterrupted marks a job terminated by the daemon without
	// completing — drain grace expiry, or a crash detected at replay
	// time. Interrupted jobs are resumable: a restart re-enqueues them.
	EventInterrupted = "interrupted"
)

// Record is one journaled lifecycle transition.
type Record struct {
	// Seq is the journal-wide sequence number, assigned by Append;
	// replay orders and deduplicates by it.
	Seq int64 `json:"seq"`
	// Job is the job identifier the transition belongs to.
	Job string `json:"job"`
	// Event is the transition kind (see the Event constants).
	Event string `json:"event"`
	// Attempt is the 1-based attempt counter at the transition.
	Attempt int `json:"attempt,omitempty"`
	// Client is the admitting client's identity, carried so replayed
	// jobs keep their admission attribution.
	Client string `json:"client,omitempty"`
	// At is the wall-clock transition time, RFC 3339 (UTC); replay
	// treats it as informational only — ordering is by Seq.
	At string `json:"at,omitempty"`
	// Err is the failure or cancellation message of a terminal event.
	Err string `json:"err,omitempty"`
	// Spec is the full serialized job spec. The service writes it on
	// every submitted and requeued event so any un-terminal job can be
	// reconstructed from its journal suffix alone.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Skip is one line the replayer rejected: which segment, which 1-based
// line, and why (torn JSON, CRC mismatch, duplicate sequence number).
type Skip struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// envelope is the on-disk line format: the record's compact JSON bytes
// plus their CRC-32C. Wrapping (rather than embedding a CRC field in
// the record) keeps the checksummed byte range exact: R is stored and
// checked verbatim, immune to field reordering or re-marshaling drift.
type envelope struct {
	CRC uint32          `json:"c"`
	R   json.RawMessage `json:"r"`
}

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options shapes a journal.
type Options struct {
	// MaxSegmentBytes rotates to a fresh segment file once the current
	// one exceeds this size. Default 4 MiB; records never split across
	// segments.
	MaxSegmentBytes int64
	// NoSync disables the per-append fsync. The default (false) syncs
	// on every commit — the durability contract the recovery invariants
	// assume — so NoSync is for tests and throwaway runs only.
	NoSync bool
	// BeforeAppend, when non-nil, runs before each record is written —
	// the fault-injection seam. Returning an error aborts the append
	// (nothing is written); a panic propagates to the caller.
	BeforeAppend func(rec Record) error
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	return o
}

// Journal is an open write-ahead log rooted at one directory.
type Journal struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File
	size    int64
	segIdx  int
	nextSeq int64

	replayed []Record
	skips    []Skip
}

// segName formats the idx'th segment file name. The zero-padded index
// makes lexical order equal numeric order for any plausible count.
func segName(idx int) string { return fmt.Sprintf("journal-%06d.jsonl", idx) }

// segIndex parses a segment file name; ok is false for foreign files.
func segIndex(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, "journal-%06d.jsonl", &idx); err != nil {
		return 0, false
	}
	if segName(idx) != name {
		return 0, false
	}
	return idx, true
}

// Segments lists the journal segment files under dir in replay order.
func Segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if _, ok := segIndex(e.Name()); ok {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// Open opens (creating if needed) the journal rooted at dir, replaying
// every existing segment first so appends continue the sequence. The
// replayed records and skips are available via Replayed and Skips.
func Open(dir string, opt Options) (*Journal, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	recs, skips, err := ReplayDir(dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opt: opt, replayed: recs, skips: skips, nextSeq: 1}
	for _, r := range recs {
		if r.Seq >= j.nextSeq {
			j.nextSeq = r.Seq + 1
		}
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		j.segIdx, _ = segIndex(last)
		fi, err := os.Stat(filepath.Join(dir, last))
		if err != nil {
			return nil, err
		}
		j.size = fi.Size()
	} else {
		j.segIdx = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(j.segIdx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	return j, nil
}

// Replayed returns the records recovered when the journal was opened,
// in sequence order.
func (j *Journal) Replayed() []Record { return j.replayed }

// Skips returns the lines replay rejected when the journal was opened.
func (j *Journal) Skips() []Skip { return j.skips }

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Append assigns the record its sequence number, writes it as one
// CRC-enveloped JSONL line, and (unless NoSync) fsyncs before
// returning — the write-ahead contract: when Append returns nil, the
// transition survives kill -9. The segment is rotated first when full.
func (j *Journal) Append(rec Record) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, errors.New("journal: closed")
	}
	rec.Seq = j.nextSeq
	if hook := j.opt.BeforeAppend; hook != nil {
		if err := hook(rec); err != nil {
			return 0, fmt.Errorf("journal: append %s/%s: %w", rec.Job, rec.Event, err)
		}
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: marshal: %w", err)
	}
	line, err := json.Marshal(envelope{CRC: crc32.Checksum(body, castagnoli), R: body})
	if err != nil {
		return 0, fmt.Errorf("journal: marshal envelope: %w", err)
	}
	line = append(line, '\n')
	if j.size > 0 && j.size+int64(len(line)) > j.opt.MaxSegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := j.f.Write(line); err != nil {
		return 0, fmt.Errorf("journal: write: %w", err)
	}
	if !j.opt.NoSync {
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.size += int64(len(line))
	j.nextSeq++
	return rec.Seq, nil
}

// rotateLocked closes the current segment and opens the next.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync before rotate: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.segIdx++
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.segIdx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f, j.size = f, 0
	return nil
}

// Close syncs and closes the current segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// ReplayDir leniently replays every segment under dir: records are
// collected across segments, deduplicated by sequence number (first
// occurrence wins), and returned sorted by it. A directory with no
// segments replays to nothing. Only directory-level I/O errors are
// fatal; damaged lines — torn tails, CRC mismatches, duplicates,
// foreign content — become Skips.
func ReplayDir(dir string) ([]Record, []Skip, error) {
	segs, err := Segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	var recs []Record
	var skips []Skip
	seen := map[int64]bool{}
	for _, seg := range segs {
		f, err := os.Open(filepath.Join(dir, seg))
		if err != nil {
			return nil, nil, err
		}
		r, s := replaySegment(f, seg, seen)
		f.Close()
		recs = append(recs, r...)
		skips = append(skips, s...)
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	return recs, skips, nil
}

// Replay leniently reads one segment stream. Exposed for tests and
// tooling; ReplayDir is the directory-level entry point.
func Replay(r io.Reader) ([]Record, []Skip) {
	return replaySegment(r, "", map[int64]bool{})
}

func replaySegment(r io.Reader, name string, seen map[int64]bool) ([]Record, []Skip) {
	var recs []Record
	var skips []Skip
	skip := func(line int, format string, args ...any) {
		skips = append(skips, Skip{File: name, Line: line, Reason: fmt.Sprintf(format, args...)})
	}
	data, err := io.ReadAll(io.LimitReader(r, 1<<30))
	if err != nil {
		skip(0, "read: %v", err)
		return recs, skips
	}
	line := 0
	for len(data) > 0 {
		line++
		var raw []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			raw, data = data, nil
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			skip(line, "torn or foreign line: %v", err)
			continue
		}
		if len(env.R) == 0 {
			skip(line, "envelope without record body")
			continue
		}
		if got := crc32.Checksum(env.R, castagnoli); got != env.CRC {
			skip(line, "crc mismatch: stored %08x, computed %08x", env.CRC, got)
			continue
		}
		var rec Record
		if err := json.Unmarshal(env.R, &rec); err != nil {
			skip(line, "record body: %v", err)
			continue
		}
		if rec.Seq <= 0 {
			skip(line, "record without sequence number")
			continue
		}
		if seen[rec.Seq] {
			skip(line, "duplicate seq %d", rec.Seq)
			continue
		}
		seen[rec.Seq] = true
		recs = append(recs, rec)
	}
	return recs, skips
}

// Terminal reports whether ev is an event replay never resurrects.
// EventInterrupted is deliberately not terminal here: an interrupted
// job is resumable, and a restart re-enqueues it.
func Terminal(ev string) bool {
	switch ev {
	case EventDone, EventCanceled, EventFailed, EventDeadline:
		return true
	}
	return false
}

// JobState is one job's replayed lifecycle summary.
type JobState struct {
	Job     string
	Event   string // last event observed
	Attempt int    // highest attempt observed
	Client  string
	Err     string
	Spec    json.RawMessage // newest non-empty spec payload
	// FirstSeq is the sequence number of the job's first record — the
	// submission-order key re-enqueueing preserves.
	FirstSeq int64
}

// Reduce folds a replayed record stream into per-job final states, in
// submission order (by each job's first record). Records must be in
// sequence order, as ReplayDir returns them.
func Reduce(recs []Record) []JobState {
	byJob := map[string]*JobState{}
	var order []string
	for _, r := range recs {
		st, ok := byJob[r.Job]
		if !ok {
			st = &JobState{Job: r.Job, FirstSeq: r.Seq}
			byJob[r.Job] = st
			order = append(order, r.Job)
		}
		st.Event = r.Event
		if r.Attempt > st.Attempt {
			st.Attempt = r.Attempt
		}
		if r.Client != "" {
			st.Client = r.Client
		}
		st.Err = r.Err
		if len(r.Spec) > 0 {
			st.Spec = r.Spec
		}
	}
	out := make([]JobState, 0, len(order))
	for _, id := range order {
		out = append(out, *byJob[id])
	}
	return out
}
