package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, j *Journal, rec Record) int64 {
	t.Helper()
	seq, err := j.Append(rec)
	if err != nil {
		t.Fatalf("append %s/%s: %v", rec.Job, rec.Event, err)
	}
	return seq
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	spec := json.RawMessage(`{"arch":"fingers","graph":"As","pattern":"tc"}`)
	mustAppend(t, j, Record{Job: "job-000001", Event: EventSubmitted, Attempt: 1, Client: "alice", Spec: spec})
	mustAppend(t, j, Record{Job: "job-000001", Event: EventStarted, Attempt: 1})
	mustAppend(t, j, Record{Job: "job-000002", Event: EventSubmitted, Attempt: 1, Spec: spec})
	mustAppend(t, j, Record{Job: "job-000001", Event: EventDone, Attempt: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, skips, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skips) != 0 {
		t.Fatalf("clean journal replayed with skips: %+v", skips)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Errorf("record %d seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if recs[0].Client != "alice" || !bytes.Equal(recs[0].Spec, spec) {
		t.Errorf("record 0 lost payload: %+v", recs[0])
	}

	states := Reduce(recs)
	if len(states) != 2 {
		t.Fatalf("reduced to %d jobs, want 2", len(states))
	}
	if states[0].Job != "job-000001" || states[0].Event != EventDone {
		t.Errorf("job 1 state %+v", states[0])
	}
	if states[1].Job != "job-000002" || states[1].Event != EventSubmitted {
		t.Errorf("job 2 state %+v", states[1])
	}
	if !Terminal(states[0].Event) || Terminal(states[1].Event) {
		t.Error("terminality misclassified")
	}
}

// TestReopenContinuesSequence closes and reopens a journal and checks
// sequence numbers continue rather than restart (replay depends on
// global uniqueness).
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "a", Event: EventSubmitted})
	mustAppend(t, j, Record{Job: "a", Event: EventStarted})
	j.Close()

	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Replayed()); got != 2 {
		t.Fatalf("reopen replayed %d records, want 2", got)
	}
	seq := mustAppend(t, j2, Record{Job: "a", Event: EventDone})
	if seq != 3 {
		t.Errorf("post-reopen seq %d, want 3", seq)
	}
	j2.Close()
}

// TestTornTailSkipped truncates the last line mid-record — the shape a
// kill -9 mid-write leaves — and checks replay keeps the intact prefix
// and reports exactly one skip.
func TestTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("job-%06d", i+1), Event: EventSubmitted})
	}
	j.Close()

	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// cut >= 2 removes the newline plus at least the closing brace, so
	// the final line is genuinely torn (a cut of exactly 1 only strips
	// the newline and leaves a complete record, which replay keeps).
	for cut := 2; cut < 40; cut += 7 {
		if cut >= len(raw) {
			break
		}
		torn := raw[:len(raw)-cut]
		if err := os.WriteFile(seg, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, skips, err := ReplayDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 4 {
			t.Fatalf("cut %d: replayed %d records, want the 4 intact ones", cut, len(recs))
		}
		if len(skips) != 1 {
			t.Fatalf("cut %d: %d skips, want 1: %+v", cut, len(skips), skips)
		}
	}
}

// TestCRCMismatchSkipped flips one byte inside a record body — the
// envelope still parses, but the checksum must catch the corruption.
func TestCRCMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "job-000001", Event: EventSubmitted, Client: "mallory"})
	mustAppend(t, j, Record{Job: "job-000002", Event: EventSubmitted})
	j.Close()

	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the client name inside line 1 without breaking JSON.
	corrupted := bytes.Replace(raw, []byte("mallory"), []byte("mallorz"), 1)
	if bytes.Equal(corrupted, raw) {
		t.Fatal("corruption target not found")
	}
	if err := os.WriteFile(seg, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skips, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Job != "job-000002" {
		t.Fatalf("recs %+v, want only the intact second record", recs)
	}
	if len(skips) != 1 || !strings.Contains(skips[0].Reason, "crc mismatch") {
		t.Fatalf("skips %+v, want one crc mismatch", skips)
	}
}

// TestSegmentRotation drives the segment size bound and checks records
// span multiple files but replay seamlessly.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, j, Record{Job: fmt.Sprintf("job-%06d", i+1), Event: EventSubmitted,
			Spec: json.RawMessage(`{"arch":"fingers","graph":"As","pattern":"tc"}`)})
	}
	j.Close()

	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", segs)
	}
	recs, skips, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skips) != 0 || len(recs) != n {
		t.Fatalf("replayed %d records %d skips, want %d/0", len(recs), len(skips), n)
	}

	// Reopen appends to the newest segment and keeps rotating.
	j2, err := Open(dir, Options{NoSync: true, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Replayed()); got != n {
		t.Fatalf("reopen replayed %d, want %d", got, n)
	}
	mustAppend(t, j2, Record{Job: "job-000099", Event: EventSubmitted})
	j2.Close()
	recs, _, err = ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n+1 {
		t.Fatalf("after reopen append: %d records, want %d", len(recs), n+1)
	}
}

// TestDuplicateSeqSkipped duplicates a whole line (a replayed segment
// copied into two files, say) and checks the second copy is dropped.
func TestDuplicateSeqSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "job-000001", Event: EventSubmitted})
	j.Close()

	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate into a later segment, simulating interleaved copies.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skips, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	if len(skips) != 1 || !strings.Contains(skips[0].Reason, "duplicate seq") {
		t.Fatalf("skips %+v, want one duplicate-seq skip", skips)
	}
}

func TestForeignAndBlankLines(t *testing.T) {
	dir := t.TempDir()
	content := strings.Join([]string{
		"",
		"not json at all",
		`{"schema":"fingers.run/v1","cycles":5}`, // foreign JSON: no envelope body
		"   ",
	}, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skips, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("foreign content produced records: %+v", recs)
	}
	if len(skips) != 2 {
		t.Fatalf("skips %+v, want 2 (bad line + foreign JSON)", skips)
	}
}

func TestEmptyAndMissingDir(t *testing.T) {
	recs, skips, err := ReplayDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(recs) != 0 || len(skips) != 0 {
		t.Fatalf("missing dir: %v %v %v, want all empty", recs, skips, err)
	}
	recs, skips, err = ReplayDir(t.TempDir())
	if err != nil || len(recs) != 0 || len(skips) != 0 {
		t.Fatalf("empty dir: %v %v %v, want all empty", recs, skips, err)
	}
}

func TestBeforeAppendHookAborts(t *testing.T) {
	dir := t.TempDir()
	fail := false
	j, err := Open(dir, Options{NoSync: true, BeforeAppend: func(rec Record) error {
		if fail {
			return fmt.Errorf("injected")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Job: "a", Event: EventSubmitted})
	fail = true
	if _, err := j.Append(Record{Job: "b", Event: EventSubmitted}); err == nil {
		t.Fatal("hooked append succeeded")
	}
	fail = false
	seq := mustAppend(t, j, Record{Job: "c", Event: EventSubmitted})
	j.Close()
	recs, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The aborted append wrote nothing; its sequence number was not
	// consumed either.
	if len(recs) != 2 || seq != 2 {
		t.Fatalf("recs %+v seq %d, want 2 records and seq 2", recs, seq)
	}
}

func TestAppendAfterClose(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := j.Append(Record{Job: "a", Event: EventSubmitted}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestReduceAttemptAndSpecCarry(t *testing.T) {
	recs := []Record{
		{Seq: 1, Job: "j1", Event: EventSubmitted, Attempt: 1, Client: "c1", Spec: json.RawMessage(`{"a":1}`)},
		{Seq: 2, Job: "j1", Event: EventStarted, Attempt: 1},
		{Seq: 3, Job: "j1", Event: EventRequeued, Attempt: 2, Spec: json.RawMessage(`{"a":1}`)},
		{Seq: 4, Job: "j1", Event: EventStarted, Attempt: 2},
	}
	states := Reduce(recs)
	if len(states) != 1 {
		t.Fatalf("states %+v", states)
	}
	st := states[0]
	if st.Attempt != 2 || st.Client != "c1" || st.Event != EventStarted || len(st.Spec) == 0 || st.FirstSeq != 1 {
		t.Errorf("reduced state %+v", st)
	}
}
