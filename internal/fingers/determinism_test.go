package fingers

import (
	"testing"

	"fingers/internal/flexminer"
	"fingers/internal/graph/gen"
)

// TestSimulationDeterministic re-runs identical chip configurations and
// requires identical cycle counts, counts and cache statistics: the
// event-ordered simulation has no hidden nondeterminism, so experiments
// are exactly reproducible.
func TestSimulationDeterministic(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 71)
	pls := plansFor(t, "tt")
	run := func() (a, b interface{}) {
		fi := mustChip(t, DefaultConfig(), 4, 0, g, pls).Run()
		fm := mustFlexChip(t, flexminer.DefaultConfig(), 4, 0, g, pls).Run()
		return fi, fm
	}
	fi1, fm1 := run()
	fi2, fm2 := run()
	if fi1 != fi2 {
		t.Errorf("FINGERS runs differ:\n%+v\n%+v", fi1, fi2)
	}
	if fm1 != fm2 {
		t.Errorf("FlexMiner runs differ:\n%+v\n%+v", fm1, fm2)
	}
}

// TestTasksMatchAcrossDesigns: both designs execute the same plans, so
// they perform the same number of extension tasks regardless of PE count
// or scheduling order.
func TestTasksMatchAcrossDesigns(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 73)
	for _, name := range []string{"tc", "tt", "cyc"} {
		pls := plansFor(t, name)
		fi1 := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
		fi8 := mustChip(t, DefaultConfig(), 8, 0, g, pls).Run()
		fm := mustFlexChip(t, flexminer.DefaultConfig(), 3, 0, g, pls).Run()
		if fi1.Tasks != fi8.Tasks || fi1.Tasks != fm.Tasks {
			t.Errorf("%s: task counts diverge: %d / %d / %d", name, fi1.Tasks, fi8.Tasks, fm.Tasks)
		}
	}
}

// TestTinyPrivateCacheStillCorrect drives the spill path.
func TestTinyPrivateCacheStillCorrect(t *testing.T) {
	g := gen.PowerLawCluster(300, 8, 0.5, 79)
	pls := plansFor(t, "tt")
	want := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
	cfg := DefaultConfig()
	cfg.PrivateCacheBytes = 64
	small := mustChip(t, cfg, 1, 0, g, pls).Run()
	if small.Count != want.Count {
		t.Fatalf("spill path changed the answer: %d vs %d", small.Count, want.Count)
	}
	if small.Cycles < want.Cycles {
		t.Errorf("spilling should not be faster: %d < %d", small.Cycles, want.Cycles)
	}
}

// TestDegenerateConfigs exercises boundary configurations.
func TestDegenerateConfigs(t *testing.T) {
	g := gen.PowerLawCluster(150, 4, 0.5, 83)
	pls := plansFor(t, "tc")
	want := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run().Count
	cases := []Config{
		DefaultConfig().WithIUs(1),
		DefaultConfig().WithIUsUnlimited(64),
		func() Config { c := DefaultConfig(); c.MaxLoad = 1; return c }(),
		func() Config { c := DefaultConfig(); c.NumDividers = 1; return c }(),
		func() Config { c := DefaultConfig(); c.MaxGroupSize = 1; return c }(),
		func() Config { c := DefaultConfig(); c.LongSegLen = 1; c.ShortSegLen = 1; return c }(),
	}
	for i, cfg := range cases {
		res := mustChip(t, cfg, 2, 0, g, pls).Run()
		if res.Count != want {
			t.Errorf("config %d: count %d, want %d", i, res.Count, want)
		}
		if res.Cycles <= 0 {
			t.Errorf("config %d: no cycles", i)
		}
	}
}
