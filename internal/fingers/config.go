// Package fingers models the FINGERS accelerator (paper §4): each PE
// augments the baseline with many parallel intersect units (IUs) fed by
// task dividers, and exploits all three levels of fine-grained
// parallelism —
//
//   - branch-level, via the pseudo-DFS task-group order that overlaps the
//     neighbor-list fetches of sibling tasks with computation (§4.1);
//   - set-level, by running all of a task's distinct candidate-set updates
//     concurrently on the IU array while streaming the new vertex's
//     neighbor list once (§3.3);
//   - segment-level, by segment-pairing every set operation across IUs
//     with load balancing and bitvector result aggregation (§4.2, §4.3).
//
// The model is functional plus transaction-level timing: embedding counts
// are exact (the same Engine as the software miner), and cycles are
// charged from the segment pipeline geometry, the IU list schedule, and
// the shared memory system.
package fingers

import "fingers/internal/mem"

// dividerLongHeads and dividerShortHeads are the head-list capacities of
// one task divider match (§4.2): 15 long heads (a 240-element neighbor
// list at s_l = 16) against 24 short heads (a 96-element candidate set at
// s_s = 4). Longer head lists are processed in chunks.
const (
	dividerLongHeads  = 15
	dividerShortHeads = 24
)

// Config parameterizes one FINGERS PE. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// NumIUs is the number of intersect units per PE (paper default 24).
	NumIUs int
	// NumDividers is the number of task dividers per PE (default 12).
	NumDividers int
	// LongSegLen is the segment length of vertex neighbor lists (s_l=16).
	LongSegLen int
	// ShortSegLen is the segment length of candidate sets (s_s=4).
	ShortSegLen int
	// MaxLoad is the load-balance threshold: the largest number of short
	// segments one IU workload may carry before being split (§4.2).
	MaxLoad int
	// PrivateCacheBytes is the PE-private cache for candidate sets
	// (default 32 kB); larger sets spill through the shared cache.
	PrivateCacheBytes int64
	// StreamBufferBytes is the segment staging storage in front of the
	// IUs (2 × 8 kB); it bounds nothing in the timing model but is part
	// of the area model.
	StreamBufferBytes int64
	// TaskOverheadCycles is the fixed macro-pipeline cost per task.
	TaskOverheadCycles mem.Cycles
	// GroupSize fixes the pseudo-DFS task-group size; 0 selects it
	// adaptively as the minimum number of tasks that fills the IUs,
	// estimated from running-average set sizes (§4.1).
	GroupSize int
	// MaxGroupSize caps the adaptive group size to bound intermediate
	// data growth (§3.2).
	MaxGroupSize int
	// PseudoDFS enables the task-group order; disabling it degenerates to
	// the strict-DFS single-task schedule (the Figure 11 ablation).
	PseudoDFS bool
}

// DefaultConfig returns the paper's PE configuration (§5).
func DefaultConfig() Config {
	return Config{
		NumIUs:             24,
		NumDividers:        12,
		LongSegLen:         16,
		ShortSegLen:        4,
		MaxLoad:            2,
		PrivateCacheBytes:  32 << 10,
		StreamBufferBytes:  2 * (8 << 10),
		TaskOverheadCycles: 4,
		GroupSize:          0,
		MaxGroupSize:       16,
		PseudoDFS:          true,
	}
}

// WithIUs returns the config rescaled to n IUs under the iso-area rule of
// Figure 12: the product #IUs × s_l is held constant, so more IUs mean
// shorter segments (same stream-buffer area).
func (c Config) WithIUs(n int) Config {
	budget := c.NumIUs * c.LongSegLen
	c.NumIUs = n
	c.LongSegLen = budget / n
	if c.LongSegLen < 1 {
		c.LongSegLen = 1
	}
	return c
}

// WithIUsUnlimited returns the config with n IUs and the segment length
// left unchanged — the tt-unlimited series of Figure 12 where area grows.
func (c Config) WithIUsUnlimited(n int) Config {
	c.NumIUs = n
	return c
}
