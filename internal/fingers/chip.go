package fingers

import (
	"context"
	"fmt"

	"fingers/internal/accel"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/noc"
	"fingers/internal/plan"
	"fingers/internal/telemetry"
)

// Chip assembles a multi-PE FINGERS accelerator over one shared memory
// hierarchy (Figure 5).
type Chip struct {
	PEs  []*PE
	Hier *mem.Hierarchy

	ports    []*noc.Port
	sched    *accel.RootScheduler
	makespan mem.Cycles
}

// NewChip builds a FINGERS chip with numPEs PEs mining the given plans.
// sharedCacheBytes = 0 keeps the paper's 4 MB default.
//
// Deprecated: NewChip panics on a degenerate configuration; prefer
// NewChipErr at any boundary that ingests untrusted configurations.
func NewChip(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans, nil)
}

// NewChipErr is NewChip with validation instead of panics: a
// non-positive PE count, a nil graph, an empty or nil-holding plan list,
// or a plan failing plan.Validate is reported as an error. This is the
// constructor the Simulate façade uses.
func NewChipErr(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) (*Chip, error) {
	if err := validateChipArgs("fingers", numPEs, g, plans); err != nil {
		return nil, err
	}
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans, nil), nil
}

// validateChipArgs checks the chip-construction arguments shared by both
// accelerator models.
func validateChipArgs(model string, numPEs int, g *graph.Graph, plans []*plan.Plan) error {
	if numPEs < 1 {
		return fmt.Errorf("%s: NewChip: number of PEs must be >= 1, got %d", model, numPEs)
	}
	if g == nil {
		return fmt.Errorf("%s: NewChip: graph is nil", model)
	}
	if len(plans) == 0 {
		return fmt.Errorf("%s: NewChip: no plans given", model)
	}
	for i, pl := range plans {
		if err := pl.Validate(); err != nil {
			return fmt.Errorf("%s: NewChip: plan %d: %w", model, i, err)
		}
	}
	return nil
}

// NewChipWithScheduler builds the chip with a custom root scheduler, for
// root-ordering studies (locality and load-balance policies, §6.3); a
// nil scheduler gets the default ID-order handout. Degenerate
// configurations fail fast with a panic: numPEs must be positive (the
// public Simulate façade and NewChipErr report the same condition as an
// error).
func NewChipWithScheduler(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan, sched *accel.RootScheduler) *Chip {
	if numPEs < 1 {
		panic(fmt.Sprintf("fingers: NewChip: number of PEs must be >= 1, got %d", numPEs))
	}
	if sched == nil {
		sched = accel.NewRootScheduler(g.NumVertices())
	}
	hier := mem.NewHierarchy(sharedCacheBytes)
	c := &Chip{Hier: hier, sched: sched}
	net := noc.New(noc.DefaultConfig(), numPEs)
	for i := 0; i < numPEs; i++ {
		port := noc.NewPort(net, i, hier.Shared)
		pe := NewPE(cfg, g, plans, sched, port)
		pe.id = i
		c.PEs = append(c.PEs, pe)
		c.ports = append(c.ports, port)
	}
	return c
}

// RootsTotal returns the number of search-tree roots the chip's
// scheduler was built with.
func (c *Chip) RootsTotal() int { return c.sched.Total() }

// RootsDispatched returns the number of roots handed to PEs so far — the
// completed-root progress measure of a partial run.
func (c *Chip) RootsDispatched() int { return c.sched.Total() - c.sched.Remaining() }

// SetTracer attaches an event tracer to every PE, every NoC port, and
// the DRAM model; nil detaches, restoring the zero-overhead path.
func (c *Chip) SetTracer(t telemetry.Tracer) {
	for _, pe := range c.PEs {
		pe.trc = t
	}
	if t == nil {
		for _, p := range c.ports {
			p.Obs = nil
		}
		c.Hier.DRAM.SetObserver(nil)
		return
	}
	for _, p := range c.ports {
		p.Obs = t
	}
	c.Hier.DRAM.SetObserver(t)
}

// Run simulates the chip to completion.
func (c *Chip) Run() accel.Result { return c.RunWithProgress(0, nil) }

// RunWithProgress simulates the chip to completion, invoking fn with a
// progress snapshot every `every` scheduling quanta (0 disables).
func (c *Chip) RunWithProgress(every int64, fn func(accel.Progress)) accel.Result {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	return c.assemble(accel.RunWithProgress(pes, every, fn))
}

// RunCtx simulates the chip with cancellation and panic recovery: a
// fired context stops the run within accel.CancelCheckQuantum scheduling
// quanta and returns the partial Result assembled from everything
// simulated so far (cycles reached, counts, cache/DRAM state, per-PE
// breakdowns) alongside a *simerr.SimError wrapping ctx.Err(). A panic
// inside a PE step returns the same way instead of crashing.
func (c *Chip) RunCtx(ctx context.Context) (accel.Result, error) {
	return c.RunCtxWithProgress(ctx, 0, nil)
}

// RunCtxWithProgress is RunCtx with the periodic observer of
// RunWithProgress.
func (c *Chip) RunCtxWithProgress(ctx context.Context, every int64, fn func(accel.Progress)) (accel.Result, error) {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan, err := accel.RunCtxWithProgress(ctx, pes, every, fn)
	return c.assemble(makespan), err
}

// RunParallel simulates the chip to completion on the bounded-lag
// parallel engine. Results depend only on pcfg.Window, never on
// pcfg.Workers; Window=1 matches Run exactly (accel.RunParallel).
func (c *Chip) RunParallel(pcfg accel.ParallelConfig) (accel.Result, error) {
	return c.RunParallelWithProgress(pcfg, 0, nil)
}

// RunParallelWithProgress is RunParallel with a progress callback fired
// at epoch barriers, at least every `every` committed quanta.
func (c *Chip) RunParallelWithProgress(pcfg accel.ParallelConfig, every int64, fn func(accel.Progress)) (accel.Result, error) {
	return c.RunParallelCtxWithProgress(context.Background(), pcfg, every, fn)
}

// RunParallelCtx is RunParallel with cancellation and panic recovery: a
// fired context stops the run within one epoch window, returning the
// partial Result of everything committed so far alongside a
// *simerr.SimError wrapping ctx.Err(); engine goroutine panics return
// the same way instead of crashing the host.
func (c *Chip) RunParallelCtx(ctx context.Context, pcfg accel.ParallelConfig) (accel.Result, error) {
	return c.RunParallelCtxWithProgress(ctx, pcfg, 0, nil)
}

// RunParallelCtxWithProgress is RunParallelCtx with the progress
// callback of RunParallelWithProgress.
func (c *Chip) RunParallelCtxWithProgress(ctx context.Context, pcfg accel.ParallelConfig, every int64, fn func(accel.Progress)) (accel.Result, error) {
	pes := make([]accel.SpecPE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan, err := accel.RunParallelCtxWithProgress(ctx, pes, c.Hier, c.ports, pcfg, every, fn)
	if err != nil && makespan == 0 {
		// Config-validation failures happen before any simulation; keep
		// the legacy zero Result so callers can't mistake them for runs.
		return accel.Result{}, err
	}
	return c.assemble(makespan), err
}

// assemble rolls the per-PE outcomes of a completed run into a Result.
func (c *Chip) assemble(makespan mem.Cycles) accel.Result {
	c.makespan = makespan
	res := accel.Result{
		Cycles:      makespan,
		SharedCache: c.Hier.Shared.Stats(),
		DRAM:        c.Hier.DRAM.Stats(),
	}
	for _, pe := range c.PEs {
		res.Count += pe.Count()
		res.Tasks += pe.Tasks()
		res.PEBusy += pe.Time()
		bd := pe.Breakdown()
		bd.Idle = makespan - pe.Time()
		res.Breakdown.Accumulate(bd)
	}
	return res
}

// AggregateStats merges the IU utilization counters of all PEs.
func (c *Chip) AggregateStats() IUStats {
	var out IUStats
	for _, pe := range c.PEs {
		s := pe.Stats()
		out.BusyIUCycles += s.BusyIUCycles
		out.AssignedIUCycles += s.AssignedIUCycles
		out.TotalCycles += s.TotalCycles
		out.BalanceNum += s.BalanceNum
		out.BalanceDen += s.BalanceDen
		out.NumIUs = s.NumIUs
	}
	return out
}

// PERecords returns each PE's telemetry record for the completed run:
// cycle attribution (summing to the makespan), finishing time and work
// counters. Call after Run.
func (c *Chip) PERecords() []telemetry.PERecord {
	out := make([]telemetry.PERecord, len(c.PEs))
	for i, pe := range c.PEs {
		bd := pe.Breakdown()
		bd.Idle = c.makespan - pe.Time()
		out[i] = telemetry.PERecord{
			PE:         i,
			Cycles:     c.makespan,
			FinishedAt: pe.Time(),
			Breakdown:  bd,
			Tasks:      pe.Tasks(),
			Groups:     pe.Groups(),
			Count:      pe.Count(),
		}
	}
	return out
}
