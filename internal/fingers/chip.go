package fingers

import (
	"fmt"

	"fingers/internal/accel"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/noc"
	"fingers/internal/plan"
	"fingers/internal/telemetry"
)

// Chip assembles a multi-PE FINGERS accelerator over one shared memory
// hierarchy (Figure 5).
type Chip struct {
	PEs  []*PE
	Hier *mem.Hierarchy

	ports    []*noc.Port
	makespan mem.Cycles
}

// NewChip builds a FINGERS chip with numPEs PEs mining the given plans.
// sharedCacheBytes = 0 keeps the paper's 4 MB default.
func NewChip(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans,
		accel.NewRootScheduler(g.NumVertices()))
}

// NewChipWithScheduler builds the chip with a custom root scheduler, for
// root-ordering studies (locality and load-balance policies, §6.3).
// Degenerate configurations fail fast: numPEs must be positive (the
// public Simulate façade reports the same condition as an error).
func NewChipWithScheduler(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan, sched *accel.RootScheduler) *Chip {
	if numPEs < 1 {
		panic(fmt.Sprintf("fingers: NewChip: number of PEs must be >= 1, got %d", numPEs))
	}
	hier := mem.NewHierarchy(sharedCacheBytes)
	c := &Chip{Hier: hier}
	net := noc.New(noc.DefaultConfig(), numPEs)
	for i := 0; i < numPEs; i++ {
		port := noc.NewPort(net, i, hier.Shared)
		pe := NewPE(cfg, g, plans, sched, port)
		pe.id = i
		c.PEs = append(c.PEs, pe)
		c.ports = append(c.ports, port)
	}
	return c
}

// SetTracer attaches an event tracer to every PE, every NoC port, and
// the DRAM model; nil detaches, restoring the zero-overhead path.
func (c *Chip) SetTracer(t telemetry.Tracer) {
	for _, pe := range c.PEs {
		pe.trc = t
	}
	if t == nil {
		for _, p := range c.ports {
			p.Obs = nil
		}
		c.Hier.DRAM.SetObserver(nil)
		return
	}
	for _, p := range c.ports {
		p.Obs = t
	}
	c.Hier.DRAM.SetObserver(t)
}

// Run simulates the chip to completion.
func (c *Chip) Run() accel.Result { return c.RunWithProgress(0, nil) }

// RunWithProgress simulates the chip to completion, invoking fn with a
// progress snapshot every `every` scheduling quanta (0 disables).
func (c *Chip) RunWithProgress(every int64, fn func(accel.Progress)) accel.Result {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	return c.assemble(accel.RunWithProgress(pes, every, fn))
}

// RunParallel simulates the chip to completion on the bounded-lag
// parallel engine. Results depend only on pcfg.Window, never on
// pcfg.Workers; Window=1 matches Run exactly (accel.RunParallel).
func (c *Chip) RunParallel(pcfg accel.ParallelConfig) (accel.Result, error) {
	return c.RunParallelWithProgress(pcfg, 0, nil)
}

// RunParallelWithProgress is RunParallel with a progress callback fired
// at epoch barriers, at least every `every` committed quanta.
func (c *Chip) RunParallelWithProgress(pcfg accel.ParallelConfig, every int64, fn func(accel.Progress)) (accel.Result, error) {
	pes := make([]accel.SpecPE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan, err := accel.RunParallelWithProgress(pes, c.Hier, c.ports, pcfg, every, fn)
	if err != nil {
		return accel.Result{}, err
	}
	return c.assemble(makespan), nil
}

// assemble rolls the per-PE outcomes of a completed run into a Result.
func (c *Chip) assemble(makespan mem.Cycles) accel.Result {
	c.makespan = makespan
	res := accel.Result{
		Cycles:      makespan,
		SharedCache: c.Hier.Shared.Stats(),
		DRAM:        c.Hier.DRAM.Stats(),
	}
	for _, pe := range c.PEs {
		res.Count += pe.Count()
		res.Tasks += pe.Tasks()
		res.PEBusy += pe.Time()
		bd := pe.Breakdown()
		bd.Idle = makespan - pe.Time()
		res.Breakdown.Accumulate(bd)
	}
	return res
}

// AggregateStats merges the IU utilization counters of all PEs.
func (c *Chip) AggregateStats() IUStats {
	var out IUStats
	for _, pe := range c.PEs {
		s := pe.Stats()
		out.BusyIUCycles += s.BusyIUCycles
		out.AssignedIUCycles += s.AssignedIUCycles
		out.TotalCycles += s.TotalCycles
		out.BalanceNum += s.BalanceNum
		out.BalanceDen += s.BalanceDen
		out.NumIUs = s.NumIUs
	}
	return out
}

// PERecords returns each PE's telemetry record for the completed run:
// cycle attribution (summing to the makespan), finishing time and work
// counters. Call after Run.
func (c *Chip) PERecords() []telemetry.PERecord {
	out := make([]telemetry.PERecord, len(c.PEs))
	for i, pe := range c.PEs {
		bd := pe.Breakdown()
		bd.Idle = c.makespan - pe.Time()
		out[i] = telemetry.PERecord{
			PE:         i,
			Cycles:     c.makespan,
			FinishedAt: pe.Time(),
			Breakdown:  bd,
			Tasks:      pe.Tasks(),
			Groups:     pe.Groups(),
			Count:      pe.Count(),
		}
	}
	return out
}
