package fingers

import (
	"fingers/internal/accel"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/noc"
	"fingers/internal/plan"
)

// Chip assembles a multi-PE FINGERS accelerator over one shared memory
// hierarchy (Figure 5).
type Chip struct {
	PEs  []*PE
	Hier *mem.Hierarchy
}

// NewChip builds a FINGERS chip with numPEs PEs mining the given plans.
// sharedCacheBytes = 0 keeps the paper's 4 MB default.
func NewChip(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	return NewChipWithScheduler(cfg, numPEs, sharedCacheBytes, g, plans,
		accel.NewRootScheduler(g.NumVertices()))
}

// NewChipWithScheduler builds the chip with a custom root scheduler, for
// root-ordering studies (locality and load-balance policies, §6.3).
func NewChipWithScheduler(cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan, sched *accel.RootScheduler) *Chip {
	hier := mem.NewHierarchy(sharedCacheBytes)
	c := &Chip{Hier: hier}
	net := noc.New(noc.DefaultConfig(), numPEs)
	for i := 0; i < numPEs; i++ {
		c.PEs = append(c.PEs, NewPE(cfg, g, plans, sched, noc.NewPort(net, i, hier.Shared)))
	}
	return c
}

// Run simulates the chip to completion.
func (c *Chip) Run() accel.Result {
	pes := make([]accel.PE, len(c.PEs))
	for i, pe := range c.PEs {
		pes[i] = pe
	}
	makespan := accel.Run(pes)
	res := accel.Result{
		Cycles:      makespan,
		SharedCache: c.Hier.Shared.Stats(),
		DRAM:        c.Hier.DRAM.Stats(),
	}
	for _, pe := range c.PEs {
		res.Count += pe.Count()
		res.Tasks += pe.Tasks()
		res.PEBusy += pe.Time()
	}
	return res
}

// AggregateStats merges the IU utilization counters of all PEs.
func (c *Chip) AggregateStats() IUStats {
	var out IUStats
	for _, pe := range c.PEs {
		s := pe.Stats()
		out.BusyIUCycles += s.BusyIUCycles
		out.AssignedIUCycles += s.AssignedIUCycles
		out.TotalCycles += s.TotalCycles
		out.BalanceNum += s.BalanceNum
		out.BalanceDen += s.BalanceDen
		out.NumIUs = s.NumIUs
	}
	return out
}
