package fingers

import (
	"context"
	"errors"
	"testing"

	"fingers/internal/accel"
	"fingers/internal/graph/gen"
	"fingers/internal/mem"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// panicTracer injects a fault inside PE steps: the first task-group
// event panics, standing in for a defect anywhere in the step path.
type panicTracer struct{ armed bool }

var _ telemetry.Tracer = (*panicTracer)(nil)

func (p *panicTracer) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) {
	if p.armed {
		panic("injected tracer fault")
	}
}
func (p *panicTracer) TaskGroupEnd(pe int, at mem.Cycles) {}
func (p *panicTracer) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
}
func (p *panicTracer) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
}
func (p *panicTracer) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {}

func TestChipRunCtxMatchesRun(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 31)
	pls := plansFor(t, "tt")
	want := mustChip(t, DefaultConfig(), 4, 0, g, pls).Run()
	got, err := mustChip(t, DefaultConfig(), 4, 0, g, pls).RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunCtx result diverges from Run:\n%+v\n%+v", got, want)
	}
}

func TestChipRunCtxAlreadyCancelled(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 31)
	pls := plansFor(t, "tc")
	chip := mustChip(t, DefaultConfig(), 2, 0, g, pls)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := chip.RunCtx(ctx)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	se, ok := simerr.As(err)
	if !ok || se.Engine != "serial" || !se.IsCancellation() {
		t.Errorf("error %v is not a serial-engine cancellation SimError", err)
	}
	if res.Cycles != 0 {
		t.Errorf("cycles before any step = %d, want 0", res.Cycles)
	}
	if chip.RootsDispatched() != 0 {
		t.Errorf("roots dispatched before any step = %d", chip.RootsDispatched())
	}
}

func TestChipRunCtxCancelMidRun(t *testing.T) {
	g := gen.PowerLawCluster(400, 5, 0.6, 37)
	pls := plansFor(t, "tt")
	chip := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps int64
	res, err := chip.RunCtxWithProgress(ctx, 1, func(p accel.Progress) {
		steps = p.Steps
		if steps == 500 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	se, ok := simerr.As(err)
	if !ok || !se.IsCancellation() {
		t.Fatalf("error %v is not a cancellation SimError", err)
	}
	// The engine must stop within one cancellation quantum of the cancel.
	if steps > 500+accel.CancelCheckQuantum {
		t.Errorf("engine ran to step %d, want <= %d", steps, 500+accel.CancelCheckQuantum)
	}
	if res.Cycles == 0 {
		t.Error("partial result is missing its simulated horizon")
	}
	total, done := chip.RootsTotal(), chip.RootsDispatched()
	if total != g.NumVertices() {
		t.Errorf("RootsTotal = %d, want %d", total, g.NumVertices())
	}
	if done == 0 || done >= total {
		t.Errorf("roots dispatched = %d/%d, want a strict partial prefix", done, total)
	}
}

func TestChipRunParallelCtxAlreadyCancelled(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 41)
	pls := plansFor(t, "tc")
	chip := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pcfg := accel.ParallelConfig{Window: 64, Workers: 2}
	_, err := chip.RunParallelCtx(ctx, pcfg)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	se, ok := simerr.As(err)
	if !ok || se.Engine != "parallel" || !se.IsCancellation() {
		t.Errorf("error %v is not a parallel-engine cancellation SimError", err)
	}
}

// TestChipRunParallelCtxCancelMidEpoch cancels from the epoch-barrier
// progress callback while worker goroutines are active; run under -race
// this doubles as the engine-shutdown data-race check.
func TestChipRunParallelCtxCancelMidEpoch(t *testing.T) {
	g := gen.PowerLawCluster(400, 5, 0.6, 43)
	pls := plansFor(t, "tt")
	chip := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	res, err := chip.RunParallelCtxWithProgress(ctx, accel.ParallelConfig{Window: 64, Workers: 4}, 200,
		func(p accel.Progress) {
			if !fired && p.Steps >= 200 {
				fired = true
				cancel()
			}
		})
	if !fired {
		t.Skip("run completed before the cancellation point")
	}
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	se, ok := simerr.As(err)
	if !ok || se.Engine != "parallel" || !se.IsCancellation() {
		t.Fatalf("error %v is not a parallel-engine cancellation SimError", err)
	}
	if res.Cycles == 0 {
		t.Error("partial result is missing its committed horizon")
	}
}

func TestChipPanicSurfacesAsSimErrorSerial(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 47)
	pls := plansFor(t, "tc")
	chip := mustChip(t, DefaultConfig(), 2, 0, g, pls)
	tr := &panicTracer{armed: true}
	chip.SetTracer(tr)
	_, err := chip.RunCtx(context.Background())
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("error %T is not a *simerr.SimError", err)
	}
	if se.Engine != "serial" || se.PE < 0 {
		t.Errorf("SimError = %+v, want serial engine with PE attribution", se)
	}
	if se.IsCancellation() {
		t.Error("a panic must not be classified as cancellation")
	}
}

func TestChipPanicSurfacesAsSimErrorParallel(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 53)
	pls := plansFor(t, "tc")
	chip := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	chip.SetTracer(&panicTracer{armed: true})
	_, err := chip.RunParallelCtx(context.Background(), accel.ParallelConfig{Window: 64, Workers: 4})
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("error %T is not a *simerr.SimError", err)
	}
	if se.Engine != "parallel" {
		t.Errorf("Engine = %q, want parallel", se.Engine)
	}
	if se.IsCancellation() {
		t.Error("a panic must not be classified as cancellation")
	}
}

func TestNewChipErrValidation(t *testing.T) {
	g := gen.PowerLawCluster(50, 3, 0.5, 59)
	pls := plansFor(t, "tc")
	if _, err := NewChipErr(DefaultConfig(), 0, 0, g, pls); err == nil {
		t.Error("0 PEs: expected an error")
	}
	if _, err := NewChipErr(DefaultConfig(), 2, 0, nil, pls); err == nil {
		t.Error("nil graph: expected an error")
	}
	if _, err := NewChipErr(DefaultConfig(), 2, 0, g, nil); err == nil {
		t.Error("no plans: expected an error")
	}
	if c, err := NewChipErr(DefaultConfig(), 2, 0, g, pls); err != nil || c == nil {
		t.Errorf("valid args: err = %v", err)
	}
}
