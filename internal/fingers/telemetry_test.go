package fingers

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/telemetry"
)

// TestBreakdownSumsToMakespan checks the attribution invariant: each
// PE's compute + memory-stall + overhead buckets equal its finishing
// time, and with the rollup's idle bucket they equal the makespan.
func TestBreakdownSumsToMakespan(t *testing.T) {
	g := gen.PowerLawCluster(400, 5, 0.6, 11)
	pls := plansFor(t, "tt")
	chip := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	res := chip.Run()
	if res.Cycles == 0 {
		t.Fatal("empty run")
	}
	recs := chip.PERecords()
	if len(recs) != 4 {
		t.Fatalf("got %d PE records", len(recs))
	}
	var roll telemetry.Breakdown
	for _, r := range recs {
		bd := r.Breakdown
		if busy := bd.Compute + bd.MemStall + bd.Overhead; busy != r.FinishedAt {
			t.Errorf("PE %d: compute+stall+overhead = %d, finishing time %d", r.PE, busy, r.FinishedAt)
		}
		if bd.Total() != res.Cycles || r.Cycles != res.Cycles {
			t.Errorf("PE %d: breakdown total %d != makespan %d", r.PE, bd.Total(), res.Cycles)
		}
		if bd.Compute <= 0 || bd.MemStall < 0 || bd.Overhead < 0 || bd.Idle < 0 {
			t.Errorf("PE %d: implausible buckets %+v", r.PE, bd)
		}
		roll.Accumulate(bd)
	}
	if roll != res.Breakdown {
		t.Errorf("Result.Breakdown %+v != per-PE rollup %+v", res.Breakdown, roll)
	}
}

// TestTracerDoesNotPerturbTiming runs the same configuration with no
// tracer and with a counting tracer: results must be identical (tracing
// is observational) and the tracer must actually see events.
func TestTracerDoesNotPerturbTiming(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 17)
	pls := plansFor(t, "tt")

	plain := mustChip(t, DefaultConfig(), 3, 0, g, pls).Run()

	var cnt telemetry.Counting
	chip := mustChip(t, DefaultConfig(), 3, 0, g, pls)
	chip.SetTracer(&cnt)
	traced := chip.Run()

	if plain != traced {
		t.Errorf("tracer changed the simulation:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
	if cnt.TaskGroups == 0 || cnt.SetOps == 0 || cnt.CacheAccesses == 0 || cnt.DRAMBursts == 0 {
		t.Errorf("tracer saw no events: %+v", cnt)
	}
	if cnt.CacheMisses == 0 || cnt.DRAMBytes == 0 {
		t.Errorf("miss/burst attribution empty: %+v", cnt)
	}
}

// TestNilTracerRecordsNothing checks that detaching the tracer restores
// the silent path: a tracer attached and then detached before Run sees
// zero events, and the run still matches the never-traced result.
func TestNilTracerRecordsNothing(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 17)
	pls := plansFor(t, "tc")

	var cnt telemetry.Counting
	chip := mustChip(t, DefaultConfig(), 2, 0, g, pls)
	chip.SetTracer(&cnt)
	chip.SetTracer(nil)
	res := chip.Run()
	if cnt != (telemetry.Counting{}) {
		t.Errorf("nil tracer still recorded events: %+v", cnt)
	}
	want := mustChip(t, DefaultConfig(), 2, 0, g, pls).Run()
	if res != want {
		t.Errorf("nil-tracer run differs from plain run:\n%+v\n%+v", res, want)
	}
}

// TestChromeTraceHasEventsPerPE drives the Chrome exporter end-to-end
// and requires at least one event on every PE track.
func TestChromeTraceHasEventsPerPE(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 23)
	pls := plansFor(t, "tt")
	const numPEs = 3
	chrome := telemetry.NewChrome()
	chrome.StartProcess("FINGERS")
	chip := mustChip(t, DefaultConfig(), numPEs, 0, g, pls)
	chip.SetTracer(chrome)
	chip.Run()

	perPE := map[int]int{}
	for _, e := range chrome.Events() {
		if e.Phase != "M" && e.Pid == 1 {
			perPE[e.Tid]++
		}
	}
	for pe := 0; pe < numPEs; pe++ {
		if perPE[pe] == 0 {
			t.Errorf("PE %d track has no events", pe)
		}
	}
}

// TestMultiTracerFansOut checks Multi delivers every event to all sinks.
func TestMultiTracerFansOut(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 29)
	pls := plansFor(t, "tc")
	var a, b telemetry.Counting
	chip := mustChip(t, DefaultConfig(), 2, 0, g, pls)
	chip.SetTracer(telemetry.Multi{&a, &b})
	chip.Run()
	if a == (telemetry.Counting{}) || a != b {
		t.Errorf("fan-out mismatch: a=%+v b=%+v", a, b)
	}
}
