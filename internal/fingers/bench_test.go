package fingers

import (
	"testing"

	"fingers/internal/graph/gen"
	"fingers/internal/pattern"
	"fingers/internal/plan"
	"fingers/internal/telemetry"
)

// BenchmarkSinglePE measures the simulator's throughput for one FINGERS
// PE mining tailed triangles on a power-law graph.
func BenchmarkSinglePE(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pls := []*plan.Plan{mustPlan(b, "tt")}
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res := mustChip(b, DefaultConfig(), 1, 0, g, pls).Run()
		cycles = int64(res.Cycles)
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkChip20PE measures the full-chip configuration.
func BenchmarkChip20PE(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pls := []*plan.Plan{mustPlan(b, "tc")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustChip(b, DefaultConfig(), 20, 0, g, pls).Run()
	}
}

func mustPlan(b *testing.B, name string) *plan.Plan {
	b.Helper()
	p, err := pattern.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return plan.MustCompile(p, plan.Options{})
}

// BenchmarkSinglePENilTracer is BenchmarkSinglePE with the telemetry
// hooks explicitly detached: it must stay within noise of the plain
// benchmark, which is the zero-overhead-when-disabled guarantee.
func BenchmarkSinglePENilTracer(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pls := []*plan.Plan{mustPlan(b, "tt")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chip := mustChip(b, DefaultConfig(), 1, 0, g, pls)
		chip.SetTracer(nil)
		chip.Run()
	}
}

// BenchmarkSinglePECountingTracer measures the cost of the cheapest
// real tracer, for comparison against the nil-tracer baseline.
func BenchmarkSinglePECountingTracer(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pls := []*plan.Plan{mustPlan(b, "tt")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chip := mustChip(b, DefaultConfig(), 1, 0, g, pls)
		chip.SetTracer(&telemetry.Counting{})
		chip.Run()
	}
}
