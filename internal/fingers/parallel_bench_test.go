package fingers

import (
	"testing"

	"fingers/internal/accel"
	"fingers/internal/graph/gen"
	"fingers/internal/plan"
)

// BenchmarkChip8PEParallel measures the bounded-lag engine on the same
// workload shape the simbench quick grid uses, for allocation tracking:
// the parallel path's allocs/op must stay within a small factor of the
// serial loop's (see BENCH_sim.json allocs columns).
func BenchmarkChip8PEParallel(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pls := []*plan.Plan{mustPlan(b, "tt")}
	pcfg := accel.ParallelConfig{Window: accel.DefaultWindow, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mustChip(b, DefaultConfig(), 8, 0, g, pls).RunParallel(pcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChip8PESerial is the serial baseline of the same workload.
func BenchmarkChip8PESerial(b *testing.B) {
	g := gen.PowerLawCluster(2000, 6, 0.5, 1)
	pls := []*plan.Plan{mustPlan(b, "tt")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustChip(b, DefaultConfig(), 8, 0, g, pls).Run()
	}
}
