package fingers

import (
	"fingers/internal/accel"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/mine"
	"fingers/internal/plan"
	"fingers/internal/setops"
	"fingers/internal/telemetry"
)

// IUStats reports the utilization measures of Table 3.
type IUStats struct {
	// BusyIUCycles sums, over all IUs, the cycles they executed workloads.
	BusyIUCycles mem.Cycles
	// AssignedIUCycles sums, per compute load, its subset size times its
	// duration — the paper's active-rate numerator (§6.4's worked
	// example: 2 IUs assigned a 10-cycle load in a 20-cycle window on 4
	// IUs is 25% active).
	AssignedIUCycles mem.Cycles
	// TotalCycles is the PE's total running time.
	TotalCycles mem.Cycles
	// NumIUs is the IU count the rates normalize against.
	NumIUs int
	// BalanceNum and BalanceDen accumulate the balance rate: for each
	// compute load (one set operation), the per-IU busy cycles of its
	// assigned subset over the load duration times the subset size.
	BalanceNum float64
	BalanceDen float64
}

// ActiveRate returns the fraction of IU-cycles with workloads assigned
// (§6.4).
func (s IUStats) ActiveRate() float64 {
	if s.TotalCycles == 0 || s.NumIUs == 0 {
		return 0
	}
	return float64(s.AssignedIUCycles) / (float64(s.TotalCycles) * float64(s.NumIUs))
}

// BalanceRate returns how evenly each load's IU subset was used (§6.4).
func (s IUStats) BalanceRate() float64 {
	if s.BalanceDen == 0 {
		return 0
	}
	return s.BalanceNum / s.BalanceDen
}

// frame is one stack entry: a parent node with its remaining unexplored
// sibling candidates — the unit the pseudo-DFS scheduler pops task groups
// from (§4.1).
type frame struct {
	engine int
	node   *mine.Node
	cands  []uint32
	next   int
}

// PE is one FINGERS processing element.
type PE struct {
	cfg     Config
	g       *graph.Graph
	engines []*mine.Engine
	roots   *accel.RootScheduler
	shared  accel.MemPort
	now     mem.Cycles
	count   uint64
	tasks   int64
	groups  int64
	stack   []frame
	stats   IUStats

	// id is the PE's chip index, for telemetry attribution.
	id int
	// trc receives fine-grained events; nil (the default) disables every
	// hook without affecting timing.
	trc telemetry.Tracer
	// bd attributes every local-clock advance: Compute + MemStall +
	// Overhead == now at all times (Idle is filled by the chip rollup).
	bd telemetry.Breakdown

	// Adaptive group sizing: exponential moving average of the IUs one
	// task occupies, from its workload count (§4.1 uses average set sizes;
	// the workload count is exactly that estimate after segmentation).
	emaIUsPerTask float64

	// staged holds a root reservation made at a parallel-engine epoch
	// barrier; Step consumes it before pulling from the shared scheduler.
	staged stagedRoot

	// Undo journal (accel.SpecPE): while jactive, every stack mutation
	// appends its inverse, and SpecSave checkpoints the scalar state.
	jactive bool
	journal []jEntry
	saves   []peSave
	nsaves  int

	// Scratch reused across tasks.
	iuBusy []mem.Cycles
	opBusy []mem.Cycles
	iuWl   []int
	// iuKeys is a binary min-heap of packed (busy<<16 | IU index) keys:
	// plain int64 order is exactly the (busy, index) lexicographic order
	// the list scheduler's first-minimum scan resolves ties by. Only the
	// root's key ever grows, so one sift-down per workload maintains it.
	iuKeys []int64
	opWl   int
	// tkTouched/opTouched list the IUs assigned work this task / this op,
	// so the post-op and post-task scans and resets touch only those
	// instead of sweeping all NumIUs entries per (often tiny) op.
	tkTouched []int
	opTouched []int
	// members/sorted are the task-group scratch: per-candidate fetch
	// geometry probed once, then partitioned cache-hits-first.
	members []member
	sorted  []member
	pairing setops.Pairing
}

// member is one task-group entry: a candidate with its neighbor-list
// fetch geometry and residency.
type member struct {
	v     uint32
	addr  int64
	bytes int64
	ready mem.Cycles
	hit   bool
}

// stagedRoot is a pre-reserved root handout: the result the next root
// request will observe.
type stagedRoot struct {
	set bool
	v   uint32
	ok  bool
}

// NewPE builds a FINGERS PE over the shared cache.
func NewPE(cfg Config, g *graph.Graph, plans []*plan.Plan, roots *accel.RootScheduler, shared accel.MemPort) *PE {
	pe := &PE{
		cfg:           cfg,
		g:             g,
		roots:         roots,
		shared:        shared,
		emaIUsPerTask: float64(cfg.NumIUs),
		iuBusy:        make([]mem.Cycles, cfg.NumIUs),
		opBusy:        make([]mem.Cycles, cfg.NumIUs),
		iuWl:          make([]int, cfg.NumIUs),
		iuKeys:        make([]int64, cfg.NumIUs),
		tkTouched:     make([]int, 0, cfg.NumIUs),
		opTouched:     make([]int, 0, cfg.NumIUs),
	}
	pe.stats.NumIUs = cfg.NumIUs
	for _, pl := range plans {
		pe.engines = append(pe.engines, mine.NewEngine(g, pl))
	}
	return pe
}

// Time returns the PE's local clock.
func (pe *PE) Time() mem.Cycles { return pe.now }

// Count returns the embeddings found so far.
func (pe *PE) Count() uint64 { return pe.count }

// Tasks returns the number of extension tasks executed.
func (pe *PE) Tasks() int64 { return pe.tasks }

// Stats returns the IU utilization counters (finalized with the current
// clock).
func (pe *PE) Stats() IUStats {
	s := pe.stats
	s.TotalCycles = pe.now
	return s
}

// Groups returns the number of task groups executed.
func (pe *PE) Groups() int64 { return pe.groups }

// CurrentRoot reports the root vertex of the search tree the PE is
// mining right now (accel.RootHolder): the first embedded vertex of the
// bottom stack frame. ok is false between search trees, when a failure
// cannot be attributed to any root.
func (pe *PE) CurrentRoot() (uint32, bool) {
	if len(pe.stack) == 0 {
		return 0, false
	}
	n := pe.stack[0].node
	if n == nil || len(n.Verts) == 0 {
		return 0, false
	}
	return n.Verts[0], true
}

// Breakdown returns the PE's cycle attribution so far. Idle is zero; the
// chip rollup fills it in as makespan − Time().
func (pe *PE) Breakdown() telemetry.Breakdown { return pe.bd }

// SetTracer attaches (or, with nil, detaches) an event tracer.
func (pe *PE) SetTracer(t telemetry.Tracer) { pe.trc = t }

// groupSize returns the pseudo-DFS task-group size.
func (pe *PE) groupSize() int {
	if !pe.cfg.PseudoDFS {
		return 1
	}
	if pe.cfg.GroupSize > 0 {
		return pe.cfg.GroupSize
	}
	est := pe.emaIUsPerTask
	if est < 1 {
		est = 1
	}
	g := int(float64(pe.cfg.NumIUs)/est + 0.999)
	if g < 1 {
		g = 1
	}
	if g > pe.cfg.MaxGroupSize {
		g = pe.cfg.MaxGroupSize
	}
	return g
}

// Step processes one task group (or starts a new root tree).
func (pe *PE) Step() bool {
	// Drop exhausted frames, returning their nodes to the engine pool.
	for len(pe.stack) > 0 && pe.stack[len(pe.stack)-1].next >= len(pe.stack[len(pe.stack)-1].cands) {
		fr := pe.stack[len(pe.stack)-1]
		pe.stack = pe.stack[:len(pe.stack)-1]
		if pe.jactive {
			pe.journal = append(pe.journal, jEntry{kind: jPop, fr: fr})
		}
		pe.engines[fr.engine].Release(fr.node)
	}
	if len(pe.stack) == 0 {
		v, ok := pe.takeRoot()
		if !ok {
			return false
		}
		pe.startRoot(v)
		return true
	}
	top := &pe.stack[len(pe.stack)-1]
	g := pe.groupSize()
	n := len(top.cands) - top.next
	if n > g {
		n = g
	}
	group := top.cands[top.next : top.next+n]
	engineIdx := top.engine
	parent := top.node
	if pe.jactive {
		pe.journal = append(pe.journal, jEntry{kind: jNext, idx: int32(len(pe.stack) - 1), next: int32(top.next)})
	}
	top.next += n
	pe.runGroup(engineIdx, parent, group)
	return true
}

// takeRoot returns the PE's next root: the staged reservation when one
// is pending (parallel engine), otherwise straight from the scheduler
// (serial loop).
func (pe *PE) takeRoot() (uint32, bool) {
	if pe.staged.set {
		pe.staged.set = false
		return pe.staged.v, pe.staged.ok
	}
	return pe.roots.Next()
}

// WillTakeRoot reports whether the next Step would request a new root:
// true when every stack frame is exhausted. Pure (accel.SpecPE).
func (pe *PE) WillTakeRoot() bool {
	for i := len(pe.stack) - 1; i >= 0; i-- {
		if pe.stack[i].next < len(pe.stack[i].cands) {
			return false
		}
	}
	return true
}

// StageRoot reserves the PE's next root handout from the shared
// scheduler (accel.SpecPE); a no-op when one is already staged.
func (pe *PE) StageRoot() {
	if pe.staged.set {
		return
	}
	v, ok := pe.roots.Next()
	pe.staged = stagedRoot{set: true, v: v, ok: ok}
}

// StagedRoot reports whether a reserved root is pending (accel.SpecPE).
func (pe *PE) StagedRoot() bool { return pe.staged.set }

// jKind distinguishes journal entries: each records how to undo one
// stack mutation.
type jKind uint8

const (
	jPop  jKind = iota // a frame was popped; undo re-appends fr
	jPush              // a frame was pushed; undo truncates one
	jNext              // frame idx advanced its cursor; undo restores next
)

// jEntry is one undo record. Frame heights replay consistently because
// entries are undone strictly in reverse order.
type jEntry struct {
	kind jKind
	idx  int32
	next int32
	fr   frame
}

// peSave checkpoints the PE's scalar state plus a journal position; the
// stack itself is rewound by replaying the journal, not by copying.
type peSave struct {
	now    mem.Cycles
	count  uint64
	tasks  int64
	groups int64
	stats  IUStats
	bd     telemetry.Breakdown
	ema    float64
	staged stagedRoot
	jlen   int
	marks  []int32
	parks  []int
}

// SpecActivate implements accel.SpecPE: toggles undo journaling on the
// PE and node parking on its engines for a speculative phase.
func (pe *PE) SpecActivate(on bool) {
	pe.jactive = on
	for _, e := range pe.engines {
		e.Speculate(on)
	}
}

// SpecSave implements accel.SpecPE: checkpoints the scalar state and
// marks the current journal position, returning a mark for SpecRewind.
// Saves are stored in a reusable arena indexed by the mark.
func (pe *PE) SpecSave() int {
	idx := pe.nsaves
	if idx == len(pe.saves) {
		pe.saves = append(pe.saves, peSave{})
	}
	pe.nsaves++
	s := &pe.saves[idx]
	s.now, s.count, s.tasks, s.groups = pe.now, pe.count, pe.tasks, pe.groups
	s.stats, s.bd, s.ema, s.staged = pe.stats, pe.bd, pe.emaIUsPerTask, pe.staged
	s.jlen = len(pe.journal)
	s.marks = s.marks[:0]
	s.parks = s.parks[:0]
	for _, e := range pe.engines {
		s.marks = append(s.marks, e.Mark())
		s.parks = append(s.parks, e.ParkMark())
	}
	return idx
}

// SpecRewind implements accel.SpecPE: undoes every stack mutation after
// the mark in reverse order, restores the scalar state, and revives the
// nodes the restored frames reference from the engines' park logs.
func (pe *PE) SpecRewind(mark int) {
	s := &pe.saves[mark]
	for k := len(pe.journal) - 1; k >= s.jlen; k-- {
		en := &pe.journal[k]
		switch en.kind {
		case jPop:
			pe.stack = append(pe.stack, en.fr)
		case jPush:
			pe.stack = pe.stack[:len(pe.stack)-1]
		case jNext:
			pe.stack[en.idx].next = int(en.next)
		}
	}
	pe.journal = pe.journal[:s.jlen]
	pe.now, pe.count, pe.tasks, pe.groups = s.now, s.count, s.tasks, s.groups
	pe.stats, pe.bd, pe.emaIUsPerTask, pe.staged = s.stats, s.bd, s.ema, s.staged
	for i, e := range pe.engines {
		e.Rewind(s.marks[i])
		e.ReviveParked(s.parks[i])
	}
	pe.nsaves = mark
}

// SpecFlush implements accel.SpecPE: retires the journal and save marks
// of a fully committed speculative phase and returns parked nodes to the
// engine pools.
func (pe *PE) SpecFlush() {
	for i := range pe.journal {
		pe.journal[i].fr = frame{}
	}
	pe.journal = pe.journal[:0]
	pe.nsaves = 0
	for _, e := range pe.engines {
		e.FlushParked()
	}
}

// SwapPort implements accel.SpecPE: replaces the PE's shared-memory
// port, returning the previous one.
func (pe *PE) SwapPort(p accel.MemPort) accel.MemPort {
	old := pe.shared
	pe.shared = p
	return old
}

// SwapTracer implements accel.SpecPE: replaces the PE's event tracer,
// returning the previous one.
func (pe *PE) SwapTracer(t telemetry.Tracer) telemetry.Tracer {
	old := pe.trc
	pe.trc = t
	return old
}

// startRoot begins the search tree rooted at v: one task per plan trunk,
// processed as a group so multi-pattern trunks share the root fetch.
func (pe *PE) startRoot(v uint32) {
	start := pe.now
	if pe.trc != nil {
		pe.trc.TaskGroupBegin(pe.id, -1, start, len(pe.engines))
	}
	done := pe.shared.Access(start, pe.g.NeighborAddr(v), pe.g.NeighborBytes(v))
	pe.bd.MemStall += done - start
	t := done
	for i, e := range pe.engines {
		node, info := e.Start(v)
		t = pe.computeTask(t, info)
		pe.finishTask(i, e, node)
	}
	pe.now = t
	pe.groups++
	if pe.trc != nil {
		pe.trc.TaskGroupEnd(pe.id, t)
	}
}

// runGroup executes a pseudo-DFS task group: the neighbor-list fetches of
// all member tasks are issued at once (cache hits return immediately and
// reorder ahead, §4.1), and member tasks compute back-to-back on the IU
// array while later fetches are still in flight.
func (pe *PE) runGroup(engineIdx int, parent *mine.Node, cands []uint32) {
	e := pe.engines[engineIdx]
	start := pe.now
	probed := pe.members[:0]
	for _, v := range cands {
		addr, bytes := pe.g.NeighborAddr(v), pe.g.NeighborBytes(v)
		probed = append(probed, member{v: v, addr: addr, bytes: bytes, hit: pe.shared.Probe(addr, bytes)})
	}
	pe.members = probed
	// Cache-resident tasks are scheduled first — the implicit selection
	// the paper implements by letting hits return immediately. The stable
	// hits-then-misses partition preserves candidate order within each
	// class.
	members := pe.sorted[:0]
	for i := range probed {
		if probed[i].hit {
			members = append(members, probed[i])
		}
	}
	for i := range probed {
		if !probed[i].hit {
			members = append(members, probed[i])
		}
	}
	pe.sorted = members
	if pe.trc != nil {
		pe.trc.TaskGroupBegin(pe.id, engineIdx, start, len(cands))
	}
	for i := range members {
		members[i].ready = pe.shared.Access(start, members[i].addr, members[i].bytes)
	}
	t := start
	for i := range members {
		m := &members[i]
		ready := m.ready
		if t > ready {
			ready = t
		} else {
			// The fetch outlived all overlapped computation: the rest is
			// exposed memory latency.
			pe.bd.MemStall += ready - t
		}
		node, info := e.Extend(parent, m.v)
		t = pe.computeTask(ready, info)
		pe.finishTask(engineIdx, e, node)
	}
	pe.now = t
	pe.groups++
	if pe.trc != nil {
		pe.trc.TaskGroupEnd(pe.id, t)
	}
}

// finishTask counts leaves or pushes the child's frame. Nodes that gain
// no frame (leaves, dead ends) are released to the engine pool at once;
// framed nodes are released when their frame pops.
func (pe *PE) finishTask(engineIdx int, e *mine.Engine, node *mine.Node) {
	if node.Level == e.Plan.K()-2 {
		pe.count += e.LeafCount(node)
		e.Release(node)
		return
	}
	cands := e.Candidates(node)
	if len(cands) == 0 {
		e.Release(node)
		return
	}
	pe.stack = append(pe.stack, frame{engine: engineIdx, node: node, cands: cands})
	if pe.jactive {
		pe.journal = append(pe.journal, jEntry{kind: jPush})
	}
}

// computeTask charges one task's compute phase: every distinct set
// operation is segment-paired by the task dividers and its workloads are
// list-scheduled across the IU array (§4.2, §4.3). Postponed ancestor
// fetches are charged exposed at compute start (they are almost always
// shared-cache hits). Returns the completion time.
//
// The PE is a five-stage macro pipeline (§4), so back-to-back tasks are
// throughput-bound by their slowest stage — the IU occupancy for normal
// tasks, or the divider / round-robin collection time for tiny ones — not
// by the sum of all stage latencies.
func (pe *PE) computeTask(ready mem.Cycles, info mine.TaskInfo) mem.Cycles {
	pe.tasks++
	// iuBusy/iuWl are all-zero here (the previous task reset exactly the
	// entries it touched); zero-busy keys make the identity permutation a
	// valid min-heap.
	for i := range pe.iuKeys {
		pe.iuKeys[i] = int64(i)
	}
	pe.tkTouched = pe.tkTouched[:0]
	fetchStart := ready
	// Extra fetches beyond the new vertex's list (postponed ancestors).
	for _, v := range info.FetchVertices[1:] {
		ready = pe.shared.Access(ready, pe.g.NeighborAddr(v), pe.g.NeighborBytes(v))
	}
	searchSteps := 0
	totalWorkloads := 0
	for _, op := range info.Ops {
		// Candidate sets beyond the private cache spill via shared cache.
		if int64(len(op.Short))*4 > pe.cfg.PrivateCacheBytes {
			ready = pe.shared.Access(ready, pe.g.TotalAdjacencyBytes()+(1<<20), int64(len(op.Short))*4)
		}
		before := totalWorkloads
		searchSteps, totalWorkloads = pe.chargeOp(op, searchSteps, totalWorkloads)
		if pe.trc != nil {
			pe.trc.SetOpIssue(pe.id, ready, op.Kind.String(), len(op.Long), len(op.Short), totalWorkloads-before)
		}
	}
	// Serialized ancestor fetches and spill traffic are exposed latency.
	pe.bd.MemStall += ready - fetchStart
	usedIUs := len(pe.tkTouched)
	var busySum mem.Cycles
	for _, i := range pe.tkTouched {
		busySum += pe.iuBusy[i]
	}
	// Each IU receives inputs and surrenders results through the serial
	// round-robin sweeps (§4.3), whose period is proportional to the
	// number of IUs in flight: an IU's next workload arrives one sweep
	// after its previous one, so its effective occupancy is at least its
	// workload count times the sweep period. This is hidden while
	// workloads run longer than the sweep — the paper's condition
	// s_l + 3·s_s > #IUs — and becomes the bottleneck when iso-area
	// scaling shrinks segments (the Figure 12 drop at 48 IUs).
	rrPeriod := mem.Cycles(usedIUs)
	var maxBusy mem.Cycles
	for _, i := range pe.tkTouched {
		eff := pe.iuBusy[i]
		if rr := mem.Cycles(pe.iuWl[i]) * rrPeriod; rr > eff {
			eff = rr
		}
		if eff > maxBusy {
			maxBusy = eff
		}
		pe.iuBusy[i] = 0
		pe.iuWl[i] = 0
	}
	pe.stats.BusyIUCycles += busySum
	// Divider stage: short heads stream through the long-head tree,
	// spread over the parallel task dividers.
	divider := mem.Cycles((searchSteps + pe.cfg.NumDividers - 1) / pe.cfg.NumDividers)
	// Result-collection tail: the final sweep drains in-flight workloads.
	drain := rrPeriod
	// Update the adaptive group-size estimate.
	iusThisTask := float64(totalWorkloads)
	if iusThisTask > float64(pe.cfg.NumIUs) {
		iusThisTask = float64(pe.cfg.NumIUs)
	}
	if iusThisTask < 1 {
		iusThisTask = 1
	}
	const emaAlpha = 0.05
	pe.emaIUsPerTask = (1-emaAlpha)*pe.emaIUsPerTask + emaAlpha*iusThisTask
	// Pipeline throughput: the slowest stage bounds this task's slot.
	step := maxBusy
	if divider > step {
		step = divider
	}
	if drain > step {
		step = drain
	}
	if pe.cfg.TaskOverheadCycles > step {
		step = pe.cfg.TaskOverheadCycles
	}
	// Attribution: the IU-bound portion is compute; anything the divider,
	// collector sweeps, or fixed task cost add beyond it is overhead.
	pe.bd.Compute += maxBusy
	pe.bd.Overhead += step - maxBusy
	return ready + step
}

// chargeOp segments one set operation, derives its balanced workloads
// (the same geometry Balance produces, without materializing them), and
// list-schedules each onto the earliest-available IU. It returns the
// accumulated divider search steps and workload count.
func (pe *PE) chargeOp(op mine.SetOpExec, searchSteps, totalWorkloads int) (int, int) {
	long := setops.Segment(op.Long, pe.cfg.LongSegLen)
	short := setops.Segment(op.Short, pe.cfg.ShortSegLen)
	setops.PairInto(&pe.pairing, long, short)
	pairing := &pe.pairing
	// A task divider matches up to 15 long heads against up to 24 short
	// heads at a time (§4.2); longer head lists are split into chunks,
	// each short head re-streaming through every long-head chunk. Shorter
	// segments mean longer head lists mean more chunking work.
	longChunks := (long.NumSegments() + dividerLongHeads - 1) / dividerLongHeads
	if longChunks < 1 {
		longChunks = 1
	}
	searchSteps += pairing.SearchSteps * longChunks
	maxLoad := pe.cfg.MaxLoad
	if maxLoad < 1 {
		maxLoad = 1
	}
	// opBusy is all-zero here (the previous op reset its touched entries).
	pe.opTouched = pe.opTouched[:0]
	pe.opWl = 0
	covered := 0 // subtraction: next short segment not yet known unpaired
	for j, ld := range pairing.Loads {
		if ld.ShortCount == 0 {
			if op.Kind == setops.OpAntiSubtract {
				pe.schedule(mem.Cycles(long.SegSize(j)))
			}
			continue
		}
		if op.Kind == setops.OpSubtract {
			// Unpaired short segments before this long's range survive
			// wholesale and become pass-through workloads.
			for ; covered < ld.ShortStart; covered++ {
				pe.schedule(mem.Cycles(short.SegSize(covered)))
			}
			if end := ld.ShortStart + ld.ShortCount; end > covered {
				covered = end
			}
		}
		ll := long.SegSize(j)
		for s := 0; s < ld.ShortCount; s += maxLoad {
			n := ld.ShortCount - s
			if n > maxLoad {
				n = maxLoad
			}
			pe.schedule(mem.Cycles(ll + short.SpanSize(ld.ShortStart+s, n)))
		}
	}
	if op.Kind == setops.OpSubtract {
		for ; covered < short.NumSegments(); covered++ {
			pe.schedule(mem.Cycles(short.SegSize(covered)))
		}
	}
	opWorkloads := pe.opWl
	// Balance-rate bookkeeping for this load's IU subset.
	var dur, sum mem.Cycles
	subset := len(pe.opTouched)
	for _, i := range pe.opTouched {
		b := pe.opBusy[i]
		sum += b
		if b > dur {
			dur = b
		}
		pe.opBusy[i] = 0
	}
	if subset > 0 {
		pe.stats.BalanceNum += float64(sum)
		pe.stats.BalanceDen += float64(dur) * float64(subset)
		pe.stats.AssignedIUCycles += dur * mem.Cycles(subset)
	}
	return searchSteps, totalWorkloads + opWorkloads
}

// schedule assigns one workload to the earliest-available IU: the
// lexicographic (busy, index) minimum, which is exactly the first index a
// linear scan for the least-busy IU would report. Only the chosen IU's
// key grows, so the heap root is the only entry that can violate heap
// order afterwards; the root's new key is sifted down hole-style with
// primitive int64 comparisons.
func (pe *PE) schedule(cycles mem.Cycles) {
	if cycles < 1 {
		cycles = 1
	}
	h := pe.iuKeys
	best := int(h[0] & 0xffff)
	if pe.iuBusy[best] == 0 {
		pe.tkTouched = append(pe.tkTouched, best)
	}
	if pe.opBusy[best] == 0 {
		pe.opTouched = append(pe.opTouched, best)
	}
	pe.iuBusy[best] += cycles
	pe.opBusy[best] += cycles
	pe.iuWl[best]++
	pe.opWl++
	key := h[0] + int64(cycles)<<16
	n := len(h)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[m] >= key {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = key
}
