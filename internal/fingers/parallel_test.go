package fingers

import (
	"fmt"
	"testing"

	"fingers/internal/accel"
	"fingers/internal/graph/gen"
	"fingers/internal/mem"
	"fingers/internal/telemetry"
)

// TestParallelWindow1MatchesSerial is the equivalence oracle: with
// Window=1 the parallel engine must reproduce the serial event loop's
// Result exactly — every field, including cycles, cache/DRAM statistics
// and the cycle breakdown — at any worker count.
func TestParallelWindow1MatchesSerial(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 71)
	for _, name := range []string{"tc", "tt", "cyc"} {
		pls := plansFor(t, name)
		for _, pes := range []int{1, 4, 7} {
			serial := mustChip(t, DefaultConfig(), pes, 0, g, pls).Run()
			for _, workers := range []int{1, 3, 8} {
				par, err := mustChip(t, DefaultConfig(), pes, 0, g, pls).
					RunParallel(accel.ParallelConfig{Window: 1, Workers: workers})
				if err != nil {
					t.Fatalf("%s pes=%d workers=%d: %v", name, pes, workers, err)
				}
				if par != serial {
					t.Errorf("%s pes=%d workers=%d: Window=1 diverges from serial:\nserial %+v\npar    %+v",
						name, pes, workers, serial, par)
				}
			}
		}
	}
}

// TestParallelCountsBitIdenticalAtAllWindows checks the functional half
// of the determinism contract: embedding and task counts never depend on
// the window (or workers) because mining is latency-independent.
func TestParallelCountsBitIdenticalAtAllWindows(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 77)
	pls := plansFor(t, "tt")
	serial := mustChip(t, DefaultConfig(), 6, 0, g, pls).Run()
	for _, win := range []mem.Cycles{1, 7, 64, 500, 4096, 1 << 20} {
		par, err := mustChip(t, DefaultConfig(), 6, 0, g, pls).
			RunParallel(accel.ParallelConfig{Window: win, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Count != serial.Count || par.Tasks != serial.Tasks {
			t.Errorf("window=%d: count/tasks diverge: serial %d/%d, parallel %d/%d",
				win, serial.Count, serial.Tasks, par.Count, par.Tasks)
		}
	}
}

// TestParallelWorkerCountInvariance: the whole Result must be a function
// of the window alone — identical for every worker count.
func TestParallelWorkerCountInvariance(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.6, 83)
	pls := plansFor(t, "cyc")
	for _, win := range []mem.Cycles{16, accel.DefaultWindow} {
		var want accel.Result
		for i, workers := range []int{1, 2, 5, 16} {
			got, err := mustChip(t, DefaultConfig(), 8, 0, g, pls).
				RunParallel(accel.ParallelConfig{Window: win, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("window=%d: workers=%d result differs from workers=1:\n%+v\n%+v",
					win, workers, got, want)
			}
		}
	}
}

// recordingTracer captures every telemetry event as a formatted line, so
// two runs' event streams can be compared for exact equality (order
// included).
type recordingTracer struct{ lines []string }

func (r *recordingTracer) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) {
	r.lines = append(r.lines, fmt.Sprintf("begin pe=%d eng=%d at=%d size=%d", pe, engine, at, size))
}
func (r *recordingTracer) TaskGroupEnd(pe int, at mem.Cycles) {
	r.lines = append(r.lines, fmt.Sprintf("end pe=%d at=%d", pe, at))
}
func (r *recordingTracer) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
	r.lines = append(r.lines, fmt.Sprintf("op pe=%d at=%d %s %d %d %d", pe, at, kind, longLen, shortLen, workloads))
}
func (r *recordingTracer) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
	r.lines = append(r.lines, fmt.Sprintf("cache pe=%d at=%d b=%d l=%d m=%d done=%d", pe, at, bytes, lines, misses, done))
}
func (r *recordingTracer) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {
	r.lines = append(r.lines, fmt.Sprintf("dram %d %d %d %d", start, done, addr, bytes))
}

var _ telemetry.Tracer = (*recordingTracer)(nil)

// TestParallelWindow1TraceMatchesSerial: the merged telemetry stream of
// a Window=1 parallel run must equal the serial stream event for event.
func TestParallelWindow1TraceMatchesSerial(t *testing.T) {
	g := gen.PowerLawCluster(200, 4, 0.5, 91)
	pls := plansFor(t, "tt")

	serialTr := &recordingTracer{}
	chipS := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	chipS.SetTracer(serialTr)
	chipS.Run()

	parTr := &recordingTracer{}
	chipP := mustChip(t, DefaultConfig(), 4, 0, g, pls)
	chipP.SetTracer(parTr)
	if _, err := chipP.RunParallel(accel.ParallelConfig{Window: 1, Workers: 4}); err != nil {
		t.Fatal(err)
	}

	if len(serialTr.lines) != len(parTr.lines) {
		t.Fatalf("event counts differ: serial %d, parallel %d", len(serialTr.lines), len(parTr.lines))
	}
	for i := range serialTr.lines {
		if serialTr.lines[i] != parTr.lines[i] {
			t.Fatalf("event %d differs:\nserial:   %s\nparallel: %s", i, serialTr.lines[i], parTr.lines[i])
		}
	}
}

// TestParallelDefaultWindowDivergenceSmall: at the default window the
// approximate schedule must stay within 1% of the serial makespan on a
// representative cell (the quick-grid geomean is tracked by simbench).
func TestParallelDefaultWindowDivergenceSmall(t *testing.T) {
	g := gen.PowerLawCluster(400, 6, 0.5, 97)
	pls := plansFor(t, "tt")
	serial := mustChip(t, DefaultConfig(), 8, 0, g, pls).Run()
	par, err := mustChip(t, DefaultConfig(), 8, 0, g, pls).RunParallel(accel.DefaultParallelConfig())
	if err != nil {
		t.Fatal(err)
	}
	div := float64(par.Cycles-serial.Cycles) / float64(serial.Cycles)
	if div < 0 {
		div = -div
	}
	if div > 0.01 {
		t.Errorf("default-window makespan diverges %.2f%% (serial %d, parallel %d)",
			100*div, serial.Cycles, par.Cycles)
	}
	if par.Count != serial.Count {
		t.Errorf("counts diverge: %d vs %d", par.Count, serial.Count)
	}
}

// TestParallelRejectsDegenerateConfigs: clear errors, not hangs.
func TestParallelRejectsDegenerateConfigs(t *testing.T) {
	g := gen.PowerLawCluster(50, 3, 0.4, 5)
	pls := plansFor(t, "tc")
	chip := mustChip(t, DefaultConfig(), 2, 0, g, pls)
	for _, cfg := range []accel.ParallelConfig{
		{Window: 0, Workers: 2},
		{Window: -5, Workers: 2},
		{Window: 8, Workers: 0},
		{Window: 8, Workers: -1},
	} {
		if _, err := chip.RunParallel(cfg); err == nil {
			t.Errorf("config %+v: expected an error", cfg)
		}
	}
}

// TestCustomRootOrderOnBothEngines: a chip built with a permuted root
// order finds the same embeddings (counts are order-independent), and
// the parallel engine's root staging honors the custom handout order —
// Window=1 must match the serial run exactly under it.
func TestCustomRootOrderOnBothEngines(t *testing.T) {
	g := gen.PowerLawCluster(250, 4, 0.5, 41)
	pls := plansFor(t, "tt")
	base := mustChip(t, DefaultConfig(), 4, 0, g, pls).Run()

	order := make([]uint32, g.NumVertices())
	for i := range order {
		order[i] = uint32(len(order) - 1 - i) // reverse-ID handout
	}
	mk := func() *Chip {
		return NewChipWithScheduler(DefaultConfig(), 4, 0, g, pls,
			accel.NewRootSchedulerWithOrder(order))
	}
	serial := mk().Run()
	if serial.Count != base.Count {
		t.Errorf("custom order changed the count: %d vs %d", serial.Count, base.Count)
	}
	par, err := mk().RunParallel(accel.ParallelConfig{Window: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par != serial {
		t.Errorf("custom order: Window=1 diverges from serial:\nserial %+v\npar    %+v", serial, par)
	}
}

// TestNewChipRejectsNonPositivePEs: the constructor must fail fast with
// a descriptive message instead of building a chip that silently mines
// nothing.
func TestNewChipRejectsNonPositivePEs(t *testing.T) {
	g := gen.PowerLawCluster(50, 3, 0.4, 7)
	pls := plansFor(t, "tc")
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewChip with %d PEs did not panic", n)
				}
			}()
			NewChip(DefaultConfig(), n, 0, g, pls)
		}()
	}
}
