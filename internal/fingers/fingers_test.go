package fingers

import (
	"testing"

	"fingers/internal/flexminer"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
)

func plansFor(t *testing.T, names ...string) []*plan.Plan {
	t.Helper()
	var out []*plan.Plan
	for _, n := range names {
		p, err := pattern.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, plan.MustCompile(p, plan.Options{}))
	}
	return out
}

// mustChip builds a chip through the validating constructor, failing the
// test on error. Only the panic-contract tests still call the deprecated
// NewChip directly.
func mustChip(tb testing.TB, cfg Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *Chip {
	tb.Helper()
	chip, err := NewChipErr(cfg, numPEs, sharedCacheBytes, g, plans)
	if err != nil {
		tb.Fatal(err)
	}
	return chip
}

func mustFlexChip(tb testing.TB, cfg flexminer.Config, numPEs int, sharedCacheBytes int64, g *graph.Graph, plans []*plan.Plan) *flexminer.Chip {
	tb.Helper()
	chip, err := flexminer.NewChipErr(cfg, numPEs, sharedCacheBytes, g, plans)
	if err != nil {
		tb.Fatal(err)
	}
	return chip
}

var simGraphs = []struct {
	name string
	g    *graph.Graph
}{
	{"plc400", gen.PowerLawCluster(400, 5, 0.5, 13)},
	{"er300", gen.ErdosRenyi(300, 1500, 21)},
	{"star+clique", gen.WithPlantedCliques(gen.Star(200), 6, 5, 4)},
}

// TestChipCountsMatchSoftware is the accelerator's functional correctness
// test: for every pattern and graph the simulated chips must count exactly
// what the software reference miner counts.
func TestChipCountsMatchSoftware(t *testing.T) {
	for _, tc := range simGraphs {
		for _, name := range []string{"tc", "4cl", "tt", "cyc", "dia"} {
			pls := plansFor(t, name)
			want := mine.Count(tc.g, pls[0])
			for _, pes := range []int{1, 4} {
				chip := mustChip(t, DefaultConfig(), pes, 0, tc.g, pls)
				res := chip.Run()
				if res.Count != want {
					t.Errorf("%s/%s FINGERS %d PEs: count = %d, want %d",
						tc.name, name, pes, res.Count, want)
				}
				if res.Cycles <= 0 && want > 0 {
					t.Errorf("%s/%s: no cycles charged", tc.name, name)
				}
			}
		}
	}
}

func TestFlexMinerCountsMatchSoftware(t *testing.T) {
	for _, tc := range simGraphs {
		for _, name := range []string{"tc", "tt", "cyc"} {
			pls := plansFor(t, name)
			want := mine.Count(tc.g, pls[0])
			chip := mustFlexChip(t, flexminer.DefaultConfig(), 4, 0, tc.g, pls)
			res := chip.Run()
			if res.Count != want {
				t.Errorf("%s/%s FlexMiner: count = %d, want %d", tc.name, name, res.Count, want)
			}
		}
	}
}

func TestMultiPatternCounts(t *testing.T) {
	mp, err := plan.Motif(3, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.PowerLawCluster(300, 4, 0.5, 8)
	counts := mine.CountMulti(g, mp)
	var want uint64
	for _, c := range counts {
		want += c
	}
	chip := mustChip(t, DefaultConfig(), 2, 0, g, mp.Plans)
	if res := chip.Run(); res.Count != want {
		t.Errorf("3-motif on chip = %d, want %d", res.Count, want)
	}
	fchip := mustFlexChip(t, flexminer.DefaultConfig(), 2, 0, g, mp.Plans)
	if res := fchip.Run(); res.Count != want {
		t.Errorf("3-motif on FlexMiner = %d, want %d", res.Count, want)
	}
}

// TestSinglePESpeedup checks the paper's headline single-PE claim in
// direction: one FINGERS PE must beat one FlexMiner PE on every pattern
// of a reasonably dense graph (§6.2 reports 6.2× average).
func TestSinglePESpeedup(t *testing.T) {
	g := gen.PowerLawCluster(500, 8, 0.6, 17)
	for _, name := range []string{"tc", "4cl", "tt", "cyc", "dia"} {
		pls := plansFor(t, name)
		fm := mustFlexChip(t, flexminer.DefaultConfig(), 1, 0, g, pls).Run()
		fi := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
		if fi.Count != fm.Count {
			t.Fatalf("%s: counts diverge (%d vs %d)", name, fi.Count, fm.Count)
		}
		speedup := fi.Speedup(fm)
		if speedup <= 1.0 {
			t.Errorf("%s: FINGERS PE speedup = %.2f, want > 1", name, speedup)
		}
	}
}

// TestPseudoDFSHelps reproduces the direction of Figure 11: enabling the
// pseudo-DFS task-group order must not slow the PE down, and should help
// on clique patterns where branch-level parallelism is the main lever.
func TestPseudoDFSHelps(t *testing.T) {
	g := gen.PowerLawCluster(500, 6, 0.6, 23)
	pls := plansFor(t, "tc")
	off := DefaultConfig()
	off.PseudoDFS = false
	resOff := mustChip(t, off, 1, 0, g, pls).Run()
	resOn := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
	if resOn.Count != resOff.Count {
		t.Fatalf("pseudo-DFS changed the answer: %d vs %d", resOn.Count, resOff.Count)
	}
	if resOn.Cycles > resOff.Cycles {
		t.Errorf("pseudo-DFS slowed tc down: %d > %d", resOn.Cycles, resOff.Cycles)
	}
}

func TestGroupSizeAdapts(t *testing.T) {
	g := gen.PowerLawCluster(300, 5, 0.5, 31)
	pls := plansFor(t, "tc")
	chip := mustChip(t, DefaultConfig(), 1, 0, g, pls)
	chip.Run()
	pe := chip.PEs[0]
	if pe.groupSize() < 1 || pe.groupSize() > pe.cfg.MaxGroupSize {
		t.Errorf("group size out of range: %d", pe.groupSize())
	}
	// Fixed group size must be honored.
	cfg := DefaultConfig()
	cfg.GroupSize = 3
	pe2 := mustChip(t, cfg, 1, 0, g, pls).PEs[0]
	if pe2.groupSize() != 3 {
		t.Errorf("fixed group size = %d, want 3", pe2.groupSize())
	}
	// Disabled pseudo-DFS forces single-task groups.
	cfg.PseudoDFS = false
	pe3 := mustChip(t, cfg, 1, 0, g, pls).PEs[0]
	if pe3.groupSize() != 1 {
		t.Errorf("strict DFS group size = %d, want 1", pe3.groupSize())
	}
}

func TestIUStatsSane(t *testing.T) {
	g := gen.PowerLawCluster(400, 6, 0.6, 41)
	pls := plansFor(t, "tt")
	chip := mustChip(t, DefaultConfig(), 1, 0, g, pls)
	chip.Run()
	st := chip.AggregateStats()
	active, balance := st.ActiveRate(), st.BalanceRate()
	if active <= 0 || active > 1 {
		t.Errorf("active rate = %v", active)
	}
	if balance <= 0 || balance > 1.0001 {
		t.Errorf("balance rate = %v", balance)
	}
}

func TestIUStatsZeroValue(t *testing.T) {
	var s IUStats
	if s.ActiveRate() != 0 || s.BalanceRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
}

func TestWithIUsIsoArea(t *testing.T) {
	cfg := DefaultConfig()
	for _, n := range []int{1, 2, 4, 8, 16, 24, 48} {
		c := cfg.WithIUs(n)
		if c.NumIUs*c.LongSegLen > 24*16 {
			t.Errorf("iso-area violated at %d IUs: %d × %d", n, c.NumIUs, c.LongSegLen)
		}
		if c.LongSegLen < 1 {
			t.Errorf("segment length vanished at %d IUs", n)
		}
	}
	u := cfg.WithIUsUnlimited(48)
	if u.LongSegLen != cfg.LongSegLen || u.NumIUs != 48 {
		t.Error("unlimited scaling changed segment length")
	}
}

// TestMorePEsFaster checks coarse-grained scaling: more PEs must not be
// slower on a parallel-rich workload.
func TestMorePEsFaster(t *testing.T) {
	g := gen.PowerLawCluster(600, 6, 0.5, 3)
	pls := plansFor(t, "tc")
	one := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
	eight := mustChip(t, DefaultConfig(), 8, 0, g, pls).Run()
	if eight.Count != one.Count {
		t.Fatalf("PE count changed the answer")
	}
	if eight.Cycles >= one.Cycles {
		t.Errorf("8 PEs (%d cycles) not faster than 1 PE (%d cycles)", eight.Cycles, one.Cycles)
	}
}

// TestMoreIUsFasterWithinPE checks set/segment-level scaling on a pattern
// with large sets (tt): 24 IUs must beat 1 IU under the unlimited-area
// rule.
func TestMoreIUsFasterWithinPE(t *testing.T) {
	g := gen.PowerLawCluster(400, 8, 0.5, 11)
	pls := plansFor(t, "tt")
	slow := mustChip(t, DefaultConfig().WithIUsUnlimited(1), 1, 0, g, pls).Run()
	fast := mustChip(t, DefaultConfig(), 1, 0, g, pls).Run()
	if fast.Count != slow.Count {
		t.Fatalf("IU count changed the answer")
	}
	if fast.Cycles >= slow.Cycles {
		t.Errorf("24 IUs (%d) not faster than 1 IU (%d)", fast.Cycles, slow.Cycles)
	}
}

func TestEmptyGraphRuns(t *testing.T) {
	g := graph.NewBuilder(10).Build()
	pls := plansFor(t, "tc")
	res := mustChip(t, DefaultConfig(), 2, 0, g, pls).Run()
	if res.Count != 0 {
		t.Errorf("count on edgeless graph = %d", res.Count)
	}
}
