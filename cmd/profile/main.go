// Command profile measures the fine-grained parallelism a workload
// exposes at each search-tree level — the branch-, set- and segment-level
// analysis of the paper's §3 — without running a timing simulation.
//
// Usage:
//
//	profile -graph Mi -pattern tt
//	profile -graph soc.txt -pattern 4cl -max-roots 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/pattern"
	"fingers/internal/plan"
	"fingers/internal/profile"
)

func main() {
	graphArg := flag.String("graph", "Mi", "dataset mnemonic or edge-list path")
	patternArg := flag.String("pattern", "tt", "named pattern")
	maxRoots := flag.Int("max-roots", 0, "cap on root vertices walked (0 = all)")
	longSeg := flag.Int("sl", 0, "long segment length (0 = paper default 16)")
	shortSeg := flag.Int("ss", 0, "short segment length (0 = paper default 4)")
	flag.Parse()

	g, err := loadGraph(*graphArg)
	if err != nil {
		fatal(err)
	}
	p, err := pattern.ByName(*patternArg)
	if err != nil {
		fatal(err)
	}
	pl, err := plan.Compile(p, plan.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph %s, pattern %s\n", *graphArg, *patternArg)
	fmt.Printf("plan:\n%v\n", pl)
	prof := profile.Run(g, pl, profile.Config{
		MaxRoots:    *maxRoots,
		LongSegLen:  *longSeg,
		ShortSegLen: *shortSeg,
	})
	fmt.Print(prof)
}

func loadGraph(arg string) (*graph.Graph, error) {
	if d, err := datasets.ByName(arg); err == nil {
		return d.Graph(), nil
	}
	return graph.LoadFile(arg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
