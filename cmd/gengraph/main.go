// Command gengraph generates deterministic synthetic graphs — the same
// generators backing the Table 1 dataset analogues — and writes them as
// text edge lists or binary CSR files.
//
// Usage:
//
//	gengraph -type plc -n 10000 -mper 5 -triad 0.6 -o graph.txt
//	gengraph -dataset Lj -o lj.bin
//	gengraph -type er -n 1000 -m 5000 -o er.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/graph/gen"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	typ := flag.String("type", "plc", "generator: plc, ba, er, complete, star, ring, path")
	dataset := flag.String("dataset", "", "emit a Table 1 analogue instead (As/Mi/Yo/Pa/Lj/Or)")
	n := flag.Uint("n", 1000, "vertex count")
	m := flag.Int("m", 0, "edge count (er)")
	mper := flag.Int("mper", 4, "edges per new vertex (plc/ba)")
	triad := flag.Float64("triad", 0.5, "triad-closure probability (plc)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output path (.bin = binary CSR; required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -o is required")
		return 2
	}
	g, err := build(*typ, *dataset, uint32(*n), *m, *mper, *triad, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		return 1
	}
	if err := graph.SaveFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		return 1
	}
	st := graph.ComputeStats(g)
	fmt.Printf("wrote %s: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		*out, st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	return 0
}

func build(typ, dataset string, n uint32, m, mper int, triad float64, seed int64) (*graph.Graph, error) {
	if dataset != "" {
		d, err := datasets.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Graph(), nil
	}
	switch typ {
	case "plc":
		return gen.PowerLawCluster(n, mper, triad, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, mper, seed), nil
	case "er":
		if m <= 0 {
			return nil, fmt.Errorf("er requires -m > 0")
		}
		return gen.ErdosRenyi(n, m, seed), nil
	case "complete":
		return gen.Complete(n), nil
	case "star":
		return gen.Star(n), nil
	case "ring":
		return gen.Ring(n), nil
	case "path":
		return gen.Path(n), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", typ)
	}
}
