// Command experiments regenerates the tables and figures of the FINGERS
// paper's evaluation on the synthetic dataset analogues.
//
// Usage:
//
//	experiments [flags] <experiment>...
//
// where <experiment> is one of: table1, table2, fig9, fig10, fig11,
// fig12, fig13, table3, all — plus the extensions: ablate (design-choice
// sweeps) and parallelism (the §3 fine-grained parallelism census).
//
// Flags:
//
//	-quick          restrict to small graphs and three patterns (smoke run)
//	-fingers-pes N  FINGERS chip size (default 20, the iso-area point)
//	-flex-pes N     FlexMiner chip size (default 40)
//	-cache-kb N     shared-cache capacity override in kB
//	-workers N      worker pool width for independent cells (0 = all cores)
//	-sim-workers N  run each chip on the parallel engine with N host threads
//	-sim-window Δ   parallel engine epoch width in simulated cycles
//	-sim-shards N   partition roots across N independent engine instances
//	-cpuprofile F   write a CPU profile to F
//	-memprofile F   write a heap profile to F on exit
//
// A first SIGINT or SIGTERM cancels the sweep: the in-flight chip runs
// stop within one cancellation quantum, their partial telemetry records
// are still flushed to -json (flagged partial), partial tables are not
// printed, and the process exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"syscall"
	"time"

	"fingers"
	"fingers/internal/accel"
	"fingers/internal/exp"
	"fingers/internal/telemetry"
)

// main delegates to realMain so deferred cleanup (profiles, the JSONL
// run log) runs before the process exits — including on signal-driven
// cancellation, which os.Exit inside the body would skip.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	quick := flag.Bool("quick", false, "small graphs and pattern subset")
	fiPEs := flag.Int("fingers-pes", 0, "FINGERS chip PE count (0 = paper default 20)")
	fmPEs := flag.Int("flex-pes", 0, "FlexMiner chip PE count (0 = paper default 40)")
	cacheKB := flag.Int64("cache-kb", 0, "shared-cache capacity override (kB)")
	workers := flag.Int("workers", 0, "experiment-cell worker pool width (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "also write per-experiment CSV files into this directory")
	jsonOut := flag.String("json", "", "append one JSONL run record per simulated chip run to this file")
	runTag := flag.String("run-tag", "", "tag stamped into -json records so trend tooling can group this sweep")
	simWorkers := flag.Int("sim-workers", 0, "run each simulated chip on the parallel engine with this many host threads (0 = serial event loop)")
	simWindow := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ in simulated cycles")
	simShards := flag.Int("sim-shards", 0, "partition roots across this many independent engine instances (0/1 = unsharded)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here")
	memProfile := flag.String("memprofile", "", "write a heap profile here on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The engine knobs ride through a JobSpec so the CLI shares the
	// daemon's validation and unit conversions instead of duplicating
	// them.
	spec := fingers.JobSpec{CacheKB: *cacheKB, SimWorkers: *simWorkers}
	if *simWorkers > 0 {
		spec.SimWindow = *simWindow
	}
	if *simShards > 1 {
		spec.SimShards = *simShards
	}
	pcfg, err := spec.ParallelSim()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	opts := exp.Options{
		Quick:            *quick,
		FingersPEs:       *fiPEs,
		FlexPEs:          *fmPEs,
		SharedCacheBytes: spec.CacheBytes(),
		Workers:          *workers,
		Ctx:              ctx,
		SimParallel:      pcfg,
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *jsonOut != "" {
		log, err := telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer log.Close()
		meta := telemetry.HostMeta()
		meta.RunTag = *runTag
		meta.Source = "experiments"
		log.SetMeta(meta)
		opts.Log = log
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1|table2|fig9|fig10|fig11|fig12|fig13|table3|ablate|parallelism|all>")
		return 2
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}
	for _, name := range args {
		if err := run(ctx, name, opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			if ctx.Err() != nil {
				return 130
			}
			return 1
		}
	}
	return 0
}

// csvWriter is any experiment result that can export itself as CSV.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// saveCSV writes one result to <dir>/<name>.csv.
func saveCSV(dir, name string, r csvWriter) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func run(ctx context.Context, name string, opts exp.Options, csvDir string) error {
	started := time.Now()
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted before %s", name)
	}
	var results []any
	switch name {
	case "table1":
		results = append(results, exp.Table1())
	case "table2":
		results = append(results, exp.Table2())
	case "fig9":
		results = append(results, exp.Fig9(opts))
	case "fig10":
		results = append(results, exp.Fig10(opts))
	case "fig11":
		results = append(results, exp.Fig11(opts))
	case "fig12":
		results = append(results, exp.Fig12(opts))
	case "fig13":
		results = append(results, exp.Fig13(opts))
	case "table3":
		results = append(results, exp.Table3(opts))
	case "ablate":
		for _, r := range exp.Ablations(opts) {
			results = append(results, r)
		}
	case "parallelism":
		results = append(results, exp.Parallelism(opts))
	case "all":
		for _, n := range []string{"table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "table3"} {
			if err := run(ctx, n, opts, csvDir); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	// A cancelled sweep returns with unreached cells missing; discard the
	// partial table rather than print misleading holes.
	if ctx.Err() != nil {
		return fmt.Errorf("%s interrupted, partial result discarded", name)
	}
	for i, r := range results {
		fmt.Println(r)
		w, ok := r.(csvWriter)
		if !ok {
			continue
		}
		csvName := name
		if len(results) > 1 {
			csvName = fmt.Sprintf("%s_%d", name, i)
		}
		if err := saveCSV(csvDir, csvName, w); err != nil {
			return err
		}
	}
	fmt.Printf("[%s completed in %v]\n\n", name, time.Since(started).Round(time.Millisecond))
	return nil
}
