// Command experiments regenerates the tables and figures of the FINGERS
// paper's evaluation on the synthetic dataset analogues.
//
// Usage:
//
//	experiments [flags] <experiment>...
//
// where <experiment> is one of: table1, table2, fig9, fig10, fig11,
// fig12, fig13, table3, all — plus the extensions: ablate (design-choice
// sweeps) and parallelism (the §3 fine-grained parallelism census).
//
// Flags:
//
//	-quick          restrict to small graphs and three patterns (smoke run)
//	-fingers-pes N  FINGERS chip size (default 20, the iso-area point)
//	-flex-pes N     FlexMiner chip size (default 40)
//	-cache-kb N     shared-cache capacity override in kB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fingers/internal/exp"
	"fingers/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "small graphs and pattern subset")
	fiPEs := flag.Int("fingers-pes", 0, "FINGERS chip PE count (0 = paper default 20)")
	fmPEs := flag.Int("flex-pes", 0, "FlexMiner chip PE count (0 = paper default 40)")
	cacheKB := flag.Int64("cache-kb", 0, "shared-cache capacity override (kB)")
	csvDir := flag.String("csv", "", "also write per-experiment CSV files into this directory")
	jsonOut := flag.String("json", "", "append one JSONL run record per simulated chip run to this file")
	flag.Parse()

	opts := exp.Options{
		Quick:            *quick,
		FingersPEs:       *fiPEs,
		FlexPEs:          *fmPEs,
		SharedCacheBytes: *cacheKB << 10,
	}
	if *jsonOut != "" {
		log, err := telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer log.Close()
		opts.Log = log
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1|table2|fig9|fig10|fig11|fig12|fig13|table3|ablate|parallelism|all>")
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, name := range args {
		if err := run(name, opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// csvWriter is any experiment result that can export itself as CSV.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// saveCSV writes one result to <dir>/<name>.csv.
func saveCSV(dir, name string, r csvWriter) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func run(name string, opts exp.Options, csvDir string) error {
	started := time.Now()
	switch name {
	case "table1":
		fmt.Println(exp.Table1())
	case "table2":
		fmt.Println(exp.Table2())
	case "fig9":
		r := exp.Fig9(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "fig10":
		r := exp.Fig10(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "fig11":
		r := exp.Fig11(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "fig12":
		r := exp.Fig12(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "fig13":
		r := exp.Fig13(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "table3":
		r := exp.Table3(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "ablate":
		for i, r := range exp.Ablations(opts) {
			fmt.Println(r)
			if err := saveCSV(csvDir, fmt.Sprintf("ablate_%d", i), r); err != nil {
				return err
			}
		}
	case "parallelism":
		r := exp.Parallelism(opts)
		fmt.Println(r)
		if err := saveCSV(csvDir, name, r); err != nil {
			return err
		}
	case "all":
		for _, n := range []string{"table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "table3"} {
			if err := run(n, opts, csvDir); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	fmt.Printf("[%s completed in %v]\n\n", name, time.Since(started).Round(time.Millisecond))
	return nil
}
