package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: fingers/internal/mine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSoftMine/Lj/tc/serial-8     	       5	 100000000 ns/op	  539296 B/op	      26 allocs/op
BenchmarkSoftMine/Lj/tc/serial-8     	       5	 120000000 ns/op	  539296 B/op	      26 allocs/op
BenchmarkSoftMine/Lj/tc/serial-8     	       5	 110000000 ns/op	  539296 B/op	      26 allocs/op
BenchmarkSoftMine/Lj/tc/parallel-8   	       5	  50000000 ns/op	     960 B/op	      18 allocs/op
BenchmarkSoftMine/retired-8          	       5	  10000000 ns/op
PASS
ok  	fingers/internal/mine	10.1s
`

const sampleNew = `BenchmarkSoftMine/Lj/tc/serial-16    	       5	 110000000 ns/op	  539296 B/op	      26 allocs/op
BenchmarkSoftMine/Lj/tc/parallel-16  	       5	  55000000 ns/op	     960 B/op	      18 allocs/op
BenchmarkSoftMine/brandnew-16        	       5	  99000000 ns/op
`

func TestParseBenchMedians(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleOld), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(m), m)
	}
	vals := m["BenchmarkSoftMine/Lj/tc/serial"]
	if len(vals) != 3 {
		t.Fatalf("serial samples = %v, want 3 (procs suffix must merge)", vals)
	}
	if med := median(vals); med != 110000000 {
		t.Errorf("median = %v, want 110000000", med)
	}
	if med := median([]float64{4, 1}); med != 2.5 {
		t.Errorf("even-count median = %v, want 2.5", med)
	}
}

func TestParseBenchOtherMetric(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleOld), "B/op")
	if err != nil {
		t.Fatal(err)
	}
	if got := median(m["BenchmarkSoftMine/Lj/tc/parallel"]); got != 960 {
		t.Errorf("B/op median = %v, want 960", got)
	}
}

func TestGateGeomeanAndSkips(t *testing.T) {
	old, err := parseBench(strings.NewReader(sampleOld), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parseBench(strings.NewReader(sampleNew), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	gm, table, shared := gate(old, cur, "ns/op")
	if shared != 2 {
		t.Fatalf("shared = %d, want 2 (retired and brandnew excluded)", shared)
	}
	// serial 110->110 = 1.0x, parallel 50->55 = 1.1x; geomean = sqrt(1.1).
	if want := math.Sqrt(1.1); math.Abs(gm-want) > 1e-9 {
		t.Errorf("geomean = %v, want %v", gm, want)
	}
	if !strings.Contains(table, "missing from new run") {
		t.Errorf("retired benchmark not flagged:\n%s", table)
	}
	if !strings.Contains(table, "brandnew") || !strings.Contains(table, "not gated") {
		t.Errorf("new benchmark not listed:\n%s", table)
	}
}

func TestTrimProcsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":         "BenchmarkX",
		"BenchmarkX/sub-16":    "BenchmarkX/sub",
		"BenchmarkX/with-dash": "BenchmarkX/with-dash",
		"BenchmarkX":           "BenchmarkX",
	} {
		if got := trimProcsSuffix(in); got != want {
			t.Errorf("trimProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
