// Command benchgate is a benchstat-style regression gate: it parses two
// go-test benchmark outputs (the committed baseline and a fresh run),
// takes the per-benchmark median of the chosen metric across -count
// repetitions, and fails when the geometric mean of the new/old ratios
// regresses past the threshold.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSoftMine -count 5 ./internal/mine/ > new.txt
//	benchgate -old BENCH_softmine.txt -new new.txt [-max-regress-pct 10] [-metric ns/op]
//
// Medians absorb the odd noisy repetition; the geomean gate means one
// slightly slow cell cannot fail the build on its own, while a broad
// slowdown — or a big one in any single cell — does. Benchmarks present
// in only one file are listed but excluded from the geomean, so adding
// or retiring a benchmark never breaks the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseBench collects every value of the metric per benchmark name from
// go-test -bench text output. The trailing -N GOMAXPROCS suffix is
// stripped so outputs from hosts with different core counts compare.
func parseBench(r io.Reader, metric string) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcsSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s value %q", name, metric, fields[i])
			}
			out[name] = append(out[name], v)
		}
	}
	return out, sc.Err()
}

// trimProcsSuffix strips the "-8" style GOMAXPROCS tail go test appends
// to benchmark names.
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func parseFile(path, metric string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := parseBench(f, metric)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no %q benchmark samples found", path, metric)
	}
	return m, nil
}

// gate compares the two sample sets and returns the shared-benchmark
// geomean of new/old medians plus a rendered per-benchmark table.
func gate(old, cur map[string][]float64, metric string) (geomean float64, table string, shared int) {
	names := make([]string, 0, len(old))
	for n := range old {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	logSum := 0.0
	for _, n := range names {
		o := median(old[n])
		vals, ok := cur[n]
		if !ok {
			fmt.Fprintf(&sb, "%-55s %12.0f  (missing from new run; skipped)\n", n, o)
			continue
		}
		c := median(vals)
		ratio := c / o
		logSum += math.Log(ratio)
		shared++
		fmt.Fprintf(&sb, "%-55s %12.0f -> %12.0f  %6.3fx %s\n", n, o, c, ratio, metric)
	}
	extra := make([]string, 0)
	for n := range cur {
		if _, ok := old[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		fmt.Fprintf(&sb, "%-55s (new benchmark; not gated)\n", n)
	}
	if shared == 0 {
		return 0, sb.String(), 0
	}
	return math.Exp(logSum / float64(shared)), sb.String(), shared
}

func main() {
	oldPath := flag.String("old", "", "baseline go-test -bench output (required)")
	newPath := flag.String("new", "", "fresh go-test -bench output (required)")
	metric := flag.String("metric", "ns/op", "benchmark metric to gate on")
	maxRegress := flag.Float64("max-regress-pct", 10, "fail when the shared-benchmark geomean regresses more than this percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	old, err := parseFile(*oldPath, *metric)
	if err != nil {
		fatal(err)
	}
	cur, err := parseFile(*newPath, *metric)
	if err != nil {
		fatal(err)
	}
	gm, table, shared := gate(old, cur, *metric)
	fmt.Print(table)
	if shared == 0 {
		fatal(fmt.Errorf("no benchmarks shared between %s and %s", *oldPath, *newPath))
	}
	fmt.Printf("geomean %s ratio %.3fx over %d shared benchmark(s) (limit %.2fx)\n",
		*metric, gm, shared, 1+*maxRegress/100)
	if gm > 1+*maxRegress/100 {
		fatal(fmt.Errorf("geomean %s regressed %.1f%% (limit %.1f%%)",
			*metric, (gm-1)*100, *maxRegress))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
