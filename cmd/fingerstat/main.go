// fingerstat renders bench-trend and run-record observability reports
// from the JSONL run logs and BENCH_sim.json reports a checkout (or CI
// artifact directory) accumulates. Three outputs from one model: an
// ANSI terminal table with sparkline trends, a self-contained HTML
// page with inline SVG charts, and a machine-readable fingers.trend/v1
// JSON summary.
//
// Exit codes: 0 ok; 1 usage or I/O error; 2 with -strict when any
// input was skipped; 3 with -fail-on-regress when a regression is
// flagged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fingers/internal/trend"
)

type config struct {
	dir           string
	files         []string
	htmlPath      string
	jsonPath      string
	window        int
	maxRegressPct float64
	arch          string
	graph         string
	pattern       string
	tag           string
	last          int
	noColor       bool
	failOnRegress bool
	strict        bool

	// now stamps generated_at; tests pin it for reproducible output.
	now func() time.Time
	// mtime overrides the legacy-report timestamp fallback in tests.
	mtime func(string) (time.Time, error)
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("fingerstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := config{now: time.Now}
	fs.StringVar(&cfg.dir, "dir", "", "directory tree to scan for *.jsonl run logs and *.json simbench reports")
	fs.StringVar(&cfg.htmlPath, "html", "", "write a self-contained HTML report to this path")
	fs.StringVar(&cfg.jsonPath, "json", "", "write a fingers.trend/v1 JSON summary to this path ('-' for stdout)")
	fs.IntVar(&cfg.window, "window", trend.DefaultWindow, "rolling-statistics window in points")
	fs.Float64Var(&cfg.maxRegressPct, "max-regress-pct", trend.DefaultMaxRegressPct, "flag the newest point when it is this % worse than the rolling mean and beyond ±1σ")
	fs.StringVar(&cfg.arch, "arch", "", "keep only this architecture (fingers, flexminer, ...)")
	fs.StringVar(&cfg.graph, "graph", "", "keep only this graph")
	fs.StringVar(&cfg.pattern, "pattern", "", "keep only this pattern")
	fs.StringVar(&cfg.tag, "tag", "", "keep only records and reports with this run_tag")
	fs.IntVar(&cfg.last, "last", 0, "keep only the newest N points per series (0 = all)")
	fs.BoolVar(&cfg.noColor, "no-color", false, "disable ANSI colors in the terminal report")
	fs.BoolVar(&cfg.failOnRegress, "fail-on-regress", false, "exit 3 when any series is flagged")
	fs.BoolVar(&cfg.strict, "strict", false, "exit 2 when any input file or line was skipped")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fingerstat [flags] [file.jsonl|file.json ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.files = fs.Args()
	if cfg.dir == "" && len(cfg.files) == 0 {
		fs.Usage()
		return cfg, fmt.Errorf("nothing to do: pass -dir and/or input files")
	}
	if cfg.window < 1 {
		return cfg, fmt.Errorf("-window must be >= 1 (got %d)", cfg.window)
	}
	if cfg.maxRegressPct <= 0 {
		return cfg, fmt.Errorf("-max-regress-pct must be > 0 (got %g)", cfg.maxRegressPct)
	}
	return cfg, nil
}

// run ingests, builds the model, and renders every requested output.
func run(cfg config, stdout, stderr io.Writer) int {
	var c *trend.Corpus
	scanOpt := trend.ScanOptions{MTime: cfg.mtime}
	if cfg.dir != "" {
		var err error
		c, err = trend.Scan(cfg.dir, scanOpt)
		if err != nil {
			fmt.Fprintf(stderr, "fingerstat: scan %s: %v\n", cfg.dir, err)
			return 1
		}
	} else {
		c = trend.NewCorpus(scanOpt)
	}
	if len(cfg.files) > 0 {
		if err := c.AddFiles(cfg.files); err != nil {
			fmt.Fprintf(stderr, "fingerstat: %v\n", err)
			return 1
		}
	}

	m := trend.Build(c, trend.Options{
		Window:        cfg.window,
		MaxRegressPct: cfg.maxRegressPct,
		Arch:          cfg.arch,
		Graph:         cfg.graph,
		Pattern:       cfg.pattern,
		Tag:           cfg.tag,
		Last:          cfg.last,
	})

	generatedAt := cfg.now().UTC().Format(time.RFC3339)
	renderTerm(stdout, m, colorizer{on: !cfg.noColor})

	if cfg.htmlPath != "" {
		f, err := os.Create(cfg.htmlPath)
		if err != nil {
			fmt.Fprintf(stderr, "fingerstat: %v\n", err)
			return 1
		}
		werr := renderHTML(f, m, generatedAt)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "fingerstat: write %s: %v\n", cfg.htmlPath, werr)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", cfg.htmlPath)
	}
	if cfg.jsonPath != "" {
		sum := m.Summary(generatedAt)
		if cfg.jsonPath == "-" {
			if err := trend.WriteSummary(stdout, sum); err != nil {
				fmt.Fprintf(stderr, "fingerstat: %v\n", err)
				return 1
			}
		} else {
			f, err := os.Create(cfg.jsonPath)
			if err != nil {
				fmt.Fprintf(stderr, "fingerstat: %v\n", err)
				return 1
			}
			werr := trend.WriteSummary(f, sum)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(stderr, "fingerstat: write %s: %v\n", cfg.jsonPath, werr)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", cfg.jsonPath)
		}
	}

	if cfg.strict && len(c.Skips) > 0 {
		fmt.Fprintf(stderr, "fingerstat: -strict: %d input(s) skipped\n", len(c.Skips))
		return 2
	}
	if cfg.failOnRegress && m.Regressions() > 0 {
		fmt.Fprintf(stderr, "fingerstat: -fail-on-regress: %d regression(s) flagged\n", m.Regressions())
		return 3
	}
	return 0
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(1)
	}
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}
