package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fingers/internal/trend"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testMTime is the injected modification-time clock: legacy artifacts
// get fixed timestamps so goldens do not depend on checkout times, and
// everything else must carry its own provenance header.
func testMTime(path string) (time.Time, error) {
	switch filepath.Base(path) {
	case "runs_v1.jsonl":
		return time.Date(2026, 7, 15, 0, 0, 0, 0, time.UTC), nil
	case "bench_old.json":
		return time.Date(2026, 7, 20, 0, 0, 0, 0, time.UTC), nil
	}
	return time.Time{}, fmt.Errorf("no test mtime for %s", path)
}

func buildModel(t *testing.T) *trend.Model {
	t.Helper()
	c, err := trend.Scan("testdata/corpus", trend.ScanOptions{MTime: testMTime})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return trend.Build(c, trend.Options{})
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden; run with -update and review the diff.\n--- got ---\n%s", name, got)
	}
}

func TestGoldenTerminal(t *testing.T) {
	var buf bytes.Buffer
	renderTerm(&buf, buildModel(t), colorizer{on: false})
	out := buf.String()
	if strings.Contains(out, "\x1b[") {
		t.Fatal("colorizer off must not emit ANSI escapes")
	}
	checkGolden(t, "term.txt", buf.Bytes())
}

func TestGoldenHTML(t *testing.T) {
	var buf bytes.Buffer
	if err := renderHTML(&buf, buildModel(t), ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"<script", "http://", "https://", "url("} {
		if strings.Contains(out, banned) {
			t.Errorf("HTML must be self-contained and static: found %q", banned)
		}
	}
	checkGolden(t, "report.html", buf.Bytes())
}

func TestGoldenTrendJSON(t *testing.T) {
	m := buildModel(t)
	var buf bytes.Buffer
	if err := trend.WriteSummary(&buf, m.Summary("")); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trend.json", buf.Bytes())

	// Round-trip: the golden document must parse back into the same
	// summary the model projects.
	raw, err := os.ReadFile(filepath.Join("testdata", "golden", "trend.json"))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := trend.ParseSummary(raw)
	if err != nil {
		t.Fatalf("ParseSummary: %v", err)
	}
	if parsed.Schema != trend.SummarySchema {
		t.Fatalf("schema = %q, want %q", parsed.Schema, trend.SummarySchema)
	}
	if !reflect.DeepEqual(parsed, m.Summary("")) {
		t.Error("summary did not round-trip through fingers.trend/v1 JSON")
	}
}

// TestExpectedRegressions pins the corpus's designed signal: the
// fingers/mico/triangle run series slows from ~500k to 400k cycles/sec
// and the mico/triangle bench cell drops from ~2.05M to 1.5M serial
// cycles/sec; the stable flexminer and wv series must stay unflagged.
func TestExpectedRegressions(t *testing.T) {
	m := buildModel(t)
	if got := m.Regressions(); got != 2 {
		t.Fatalf("Regressions() = %d, want 2", got)
	}
	for _, s := range m.Series {
		flagged := s.Flag != nil
		want := s.Key.Arch == "fingers" && s.Key.Graph == "mico"
		if flagged != want {
			t.Errorf("series %v flagged=%v, want %v", s.Key, flagged, want)
		}
		if flagged && s.Flag.Metric != "cycles_per_sec" {
			t.Errorf("series flag metric = %q, want cycles_per_sec", s.Flag.Metric)
		}
	}
	for _, b := range m.Bench {
		flagged := b.Flag != nil
		want := b.Graph == "mico"
		if flagged != want {
			t.Errorf("bench %s/%s flagged=%v, want %v", b.Graph, b.Pattern, flagged, want)
		}
	}
}

// TestShardColumnsFromMixedCorpus pins the v3 ingest path through the
// committed corpus: the wv/triangle series mixes v1, v2, and v3
// reports, and only its newest (v3) point carries the shard columns.
func TestShardColumnsFromMixedCorpus(t *testing.T) {
	m := buildModel(t)
	for _, b := range m.Bench {
		if b.Graph != "wv" || b.Pattern != "triangle" {
			continue
		}
		n := len(b.Points)
		if n < 2 {
			t.Fatalf("wv/triangle series has %d points", n)
		}
		last := b.Points[n-1]
		if last.Shards != 4 || last.ShardSpeedup != 2.946 {
			t.Errorf("v3 point shard columns: shards=%d speedup=%v, want 4/2.946", last.Shards, last.ShardSpeedup)
		}
		for _, p := range b.Points[:n-1] {
			if p.Shards != 0 || p.ShardSpeedup != 0 {
				t.Errorf("pre-v3 point %s carries shard columns: %+v", p.File, p)
			}
		}
		return
	}
	t.Fatal("wv series missing from corpus")
}

// TestHybridColumnsFromCorpus pins the v4 ingest path through the
// committed corpus: the wv/clique4 cell comes from a lone v4 report
// whose representation-mix columns must survive into the trend point
// and the summary, while the pre-v4 wv/triangle series carries none.
func TestHybridColumnsFromCorpus(t *testing.T) {
	m := buildModel(t)
	var seen bool
	for _, b := range m.Bench {
		last := b.Points[len(b.Points)-1]
		switch {
		case b.Graph == "wv" && b.Pattern == "clique4":
			seen = true
			if last.DenseRows != 18 || last.BitmapRows != 421 || last.HybridBytes != 74496 {
				t.Errorf("v4 representation-mix columns lost: %+v", last)
			}
		case b.Graph == "wv":
			if last.DenseRows != 0 || last.HybridBytes != 0 {
				t.Errorf("pre-v4 series %s/%s carries representation-mix columns: %+v",
					b.Graph, b.Pattern, last)
			}
		}
	}
	if !seen {
		t.Fatal("wv/clique4 v4 series missing from corpus")
	}
	sum := m.Summary("")
	for _, b := range sum.Bench {
		if b.Graph == "wv" && b.Pattern == "clique4" {
			if b.DenseRows != 18 || b.BitmapRows != 421 || b.HybridBytes != 74496 {
				t.Errorf("summary representation-mix columns: %+v", b)
			}
			return
		}
	}
	t.Fatal("wv/clique4 missing from summary")
}

// TestCorpusAccounting pins what the scanner ingested and skipped:
// three run logs (legacy v1, v2, and a daemon-served v3 with retry and
// crash-recovery provenance), five bench reports (one each of schema
// v1/v3/v4, two v2), one foreign JSON file, one foreign JSONL line, and
// one truncated JSONL tail.
func TestCorpusAccounting(t *testing.T) {
	m := buildModel(t)
	c := m.Corpus
	if c.RunFiles != 3 || c.BenchFiles != 5 {
		t.Errorf("files = %d run / %d bench, want 3 / 5", c.RunFiles, c.BenchFiles)
	}
	if c.Records != 14 {
		t.Errorf("records = %d, want 14", c.Records)
	}
	if len(c.Skips) != 3 {
		t.Fatalf("skips = %d (%v), want 3", len(c.Skips), c.Skips)
	}
	var foreignLine, tornTail, foreignFile bool
	for _, s := range c.Skips {
		switch {
		case s.File == "runs_v2.jsonl" && s.Line > 0 && strings.Contains(s.Reason, "foreign schema"):
			foreignLine = true
		case s.File == "runs_v2.jsonl" && s.Line > 0:
			tornTail = true
		case s.File == "events.json" && s.Line == 0:
			foreignFile = true
		}
	}
	if !foreignLine || !tornTail || !foreignFile {
		t.Errorf("skip classification incomplete: foreignLine=%v tornTail=%v foreignFile=%v (%v)",
			foreignLine, tornTail, foreignFile, c.Skips)
	}
}

// TestDaemonProvenanceCarried pins the daemon-served v3 ingest path:
// attempt, client_id, and recovered_from_crash survive into trend
// points, and the series summary counts retried and recovered runs.
func TestDaemonProvenanceCarried(t *testing.T) {
	m := buildModel(t)
	var s *trend.Series
	for _, sr := range m.Series {
		if sr.Key.Arch == "fingers" && sr.Key.Graph == "wv" && sr.Key.Pattern == "triangle" {
			s = sr
		}
	}
	if s == nil {
		t.Fatal("daemon-served series missing")
	}
	if len(s.Points) != 3 {
		t.Fatalf("daemon series has %d points, want 3", len(s.Points))
	}
	if s.Flag != nil {
		t.Errorf("stable daemon series flagged: %+v", s.Flag)
	}
	p := s.Points[1]
	if p.Attempt != 2 || !p.Recovered || p.ClientID != "ci" {
		t.Errorf("retried point provenance lost: %+v", p)
	}
	sum := m.Summary("")
	for _, ss := range sum.Series {
		if ss.Arch == "fingers" && ss.Graph == "wv" && ss.Pattern == "triangle" {
			if ss.Retried != 1 || ss.Recovered != 1 || ss.Partial != 1 {
				t.Errorf("summary counters retried=%d recovered=%d partial=%d, want 1/1/1",
					ss.Retried, ss.Recovered, ss.Partial)
			}
			return
		}
	}
	t.Fatal("daemon series missing from summary")
}

// TestSituationFilters exercises the viewer's slicing flags.
func TestSituationFilters(t *testing.T) {
	c, err := trend.Scan("testdata/corpus", trend.ScanOptions{MTime: testMTime})
	if err != nil {
		t.Fatal(err)
	}
	m := trend.Build(c, trend.Options{Arch: "flexminer"})
	if len(m.Series) != 1 || m.Series[0].Key.Arch != "flexminer" {
		t.Errorf("arch filter: got %d series", len(m.Series))
	}
	// Tag filtering drops the legacy untagged records.
	m = trend.Build(c, trend.Options{Tag: "nightly", Arch: "fingers"})
	if len(m.Series) != 1 {
		t.Fatalf("tag filter: got %d series, want 1", len(m.Series))
	}
	if n := len(m.Series[0].Points); n != 5 {
		t.Errorf("tagged points = %d, want 5 (legacy records are untagged)", n)
	}
	m = trend.Build(c, trend.Options{Last: 2, Arch: "fingers", Graph: "mico"})
	if n := len(m.Series[0].Points); n != 2 {
		t.Errorf("-last 2: got %d points", n)
	}
}

// TestRunExitCodes drives the CLI end to end: render all three outputs
// from the committed corpus, then check the -strict and
// -fail-on-regress gates.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := config{
		dir:           "testdata/corpus",
		htmlPath:      filepath.Join(dir, "report.html"),
		jsonPath:      filepath.Join(dir, "trend.json"),
		window:        trend.DefaultWindow,
		maxRegressPct: trend.DefaultMaxRegressPct,
		noColor:       true,
		now:           func() time.Time { return time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC) },
		mtime:         testMTime,
	}
	var out, errb bytes.Buffer
	if code := run(base, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	for _, p := range []string{base.htmlPath, base.jsonPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("output %s missing or empty (err=%v)", p, err)
		}
	}
	raw, err := os.ReadFile(base.jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := trend.ParseSummary(raw)
	if err != nil {
		t.Fatalf("CLI-written summary does not parse: %v", err)
	}
	if sum.GeneratedAt != "2026-08-06T00:00:00Z" {
		t.Errorf("generated_at = %q", sum.GeneratedAt)
	}

	strict := base
	strict.htmlPath, strict.jsonPath = "", ""
	strict.strict = true
	if code := run(strict, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
		t.Errorf("-strict over a corpus with skips: exit %d, want 2", code)
	}

	gate := base
	gate.htmlPath, gate.jsonPath = "", ""
	gate.failOnRegress = true
	if code := run(gate, &bytes.Buffer{}, &bytes.Buffer{}); code != 3 {
		t.Errorf("-fail-on-regress over a regressed corpus: exit %d, want 3", code)
	}

	// Filtered down to the healthy series, the gate passes.
	clean := gate
	clean.arch = "flexminer"
	clean.graph = "wv"
	clean.pattern = "4-clique"
	if code := run(clean, &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Errorf("-fail-on-regress on healthy slice: exit %d, want 0", code)
	}
}

func TestParseFlagRejects(t *testing.T) {
	var errb bytes.Buffer
	if _, err := parseFlags([]string{}, &errb); err == nil {
		t.Error("no inputs must be an error")
	}
	if _, err := parseFlags([]string{"-dir", "x", "-window", "0"}, &errb); err == nil {
		t.Error("-window 0 must be an error")
	}
	if _, err := parseFlags([]string{"-dir", "x", "-max-regress-pct", "-5"}, &errb); err == nil {
		t.Error("negative -max-regress-pct must be an error")
	}
}
